/**
 * @file
 * The simulated core: owns every component, wires the pipeline, runs
 * the per-cycle loop, and centralizes flush/redirect handling.
 */

#ifndef ELFSIM_SIM_CORE_HH
#define ELFSIM_SIM_CORE_HH

#include <memory>
#include <vector>

#include "backend/backend.hh"
#include "bpred/checkpoint.hh"
#include "common/serialize.hh"
#include "bpred/predictor_bank.hh"
#include "btb/btb.hh"
#include "btb/btb_builder.hh"
#include "cache/hierarchy.hh"
#include "core/elf_controller.hh"
#include "frontend/decode.hh"
#include "frontend/supply.hh"
#include "sim/config.hh"
#include "sim/warm_kernel.hh"
#include "workload/oracle_stream.hh"
#include "workload/program.hh"
#include "workload/wrong_path.hh"

namespace elfsim {

/** Core-level counters (per-kind flush accounting). */
struct CoreStats
{
    Cycle cycles = 0;
    std::uint64_t execFlushes = 0;
    std::uint64_t memOrderFlushes = 0;
    std::uint64_t decodeResteers = 0;
    std::uint64_t divergenceFlushes = 0;
    std::uint64_t pendingFlushWaits = 0; ///< cycles a flush waited on
                                         ///< a checkpoint payload
    std::uint64_t stallResteers = 0;     ///< exec resolutions of
                                         ///< coupled-stalled branches

    /** Sum/count of (first fetch after redirect - redirect cycle) for
     *  branch-misprediction flushes: the measured restart latency
     *  (Figure 3's quantity). */
    std::uint64_t redirectToFetchTotal = 0;
    std::uint64_t redirectToFetchCount = 0;

    double
    avgRedirectToFetch() const
    {
        return redirectToFetchCount
                   ? double(redirectToFetchTotal) /
                         double(redirectToFetchCount)
                   : 0.0;
    }
};

/** The simulated core. */
class Core
{
  public:
    /**
     * @param trace Optional compiled architectural trace for @a prog
     *        (see workload/compiled_trace.hh), shared read-only with
     *        every other core simulating the same content; null keeps
     *        the oracle stream fully lazy. Behaviour-neutral either
     *        way — the compiled stream is the lazy stream.
     */
    Core(const SimConfig &cfg, const Program &prog,
         std::shared_ptr<const CompiledTrace> trace = nullptr);

    /** Advance one cycle. */
    void tick();

    /**
     * Run until @a max_insts instructions have committed (or panic
     * after a generous cycle bound — a deadlock diagnostic).
     */
    void run(InstCount max_insts);

    /**
     * Watchdog/fault-injection poll cadences, one named constant per
     * execution mode so `--stall` detection latency is predictable:
     * the detailed loop polls every runPollCycles cycles; both
     * fast-forward paths (scalar and batch kernel) poll every
     * ffPollInsts instructions on the same call-relative ladder.
     * Both values are load-bearing for fault-injection determinism
     * (armed ticks land on poll points) — change them only with the
     * fault tests in mind.
     */
    static constexpr Cycle runPollCycles = 1024;
    static constexpr InstCount ffPollInsts = 16384;

    Cycle cycles() const { return coreStats.cycles; }
    InstCount committed() const { return backendUnit->stats().committed; }

    // --- component access for reporting ------------------------------
    const Backend &backend() const { return *backendUnit; }
    const ElfController &elf() const { return *controller; }
    const MemHierarchy &memory() const { return *mem; }
    const MultiBtb &btb() const { return *btbHier; }
    const BtbBuilder &btbBuilder() const { return *builder; }
    const DecodeStage &decode() const { return *decodeStage; }
    const InstSupply &supply() const { return *instSupply; }
    const PredictorBank &predictors() const { return *bank; }
    const CoreStats &stats() const { return coreStats; }
    const SimConfig &config() const { return cfg; }

    /** Dump pipeline state to stderr (deadlock diagnostics). */
    void debugDump() const;

    /**
     * Install an observer invoked for every committed instruction in
     * program order (tracing, custom metrics in examples/benches).
     */
    void
    setCommitObserver(std::function<void(const DynInst &)> obs)
    {
        commitObserver = std::move(obs);
    }

    // --- sampled simulation (see sim/runner.cc) ----------------------

    /**
     * Squash everything younger than the last committed instruction
     * and restart the front-end at the next architectural index —
     * a flush into the committed state. Afterwards the pipeline is
     * quiesced: the machine holds only warm structural state.
     */
    void squashToCommitted();

    /**
     * Functional warming: consume @a n architectural instructions,
     * updating only the predictors (TAGE/ITTAGE/BTB/RAS, coupled
     * predictors) and the cache hierarchy — no fetch/rename/ROB/IQ
     * timing. Requires a quiesced pipeline (squashToCommitted).
     * committed() does not advance; consumedInsts() does.
     */
    void fastForward(InstCount n);

    /**
     * Architectural stream position: instructions consumed so far,
     * by detailed commit or by fast-forward.
     */
    InstCount consumedInsts() const { return lastCommitOracleIdx; }

    /** The architectural stream (checkpoint resume bookkeeping). */
    OracleStream &oracleStream() { return *oracle; }

    /**
     * Oracle-generator resume state captured at the end of the last
     * fastForward(), at the exact moment the stream position equaled
     * consumedInsts() (any later access generates ahead and advances
     * the live generator). Valid only when the generator was active
     * there — i.e. past the compiled prefix, or fully lazy.
     */
    bool ffResumeStateValid() const { return ffGenStateValid; }
    const OracleGen &ffResumeState() const { return ffGenState; }

    /** Cumulative functional-warming work counters (see
     *  sim/warm_kernel.hh); monotonic across fastForward() calls. */
    const WarmStats &warmStats() const { return warmStats_; }

    /**
     * Serialize the complete warm state — every structure
     * fastForward() warms plus every cumulative counter the reporters
     * read — such that loadWarmState() on a freshly constructed Core
     * (same config, same program) resumes byte-identically.
     */
    void saveWarmState(Serializer &s) const;

    /**
     * Restore a saveWarmState() payload and reposition the stream so
     * the next instruction consumed is @a position + 1. @a gen_state
     * (nullable) is the checkpointed oracle-generator resume state;
     * required only when @a position lies past the compiled prefix.
     * Throws ParseError on any payload/geometry mismatch — callers
     * treat that as "checkpoint unusable, fast-forward instead".
     */
    void loadWarmState(Deserializer &d, InstCount position,
                       const OracleGen *gen_state);

  private:
    bool cplEngineActiveForDump() const;

  public:

  private:
    void applyRedirect(Redirect r);
    void applyPatches(Redirect &redirect, Cycle now);
    bool historyVisible(const StaticInst &si) const;

    /**
     * Batch functional warming over the compiled-trace side tables
     * (sim/warm_kernel.cc): warm @a kn instructions starting at
     * 0-based stream position @a p0 (== lastCommitOracleIdx), with
     * @a last_line the live I-line dedup register shared with the
     * scalar loop (in/out, for windows straddling the prefix end).
     * State after the call is byte-identical to @a kn scalar
     * fast-forward iterations. @a p0 + @a kn must lie within the
     * compiled prefix.
     */
    void warmKernel(const CompiledTrace &tr, InstCount p0,
                    InstCount kn, Addr &last_line);
    DynInst *findInFlight(SeqNum seq);
    /** findInFlight, falling back to the fetch-to-decode buffer
     *  (binary search — both structures are seq-ordered). */
    DynInst *findAnywhere(SeqNum seq);
    void replayHistory(const Redirect &r);
    void onCommit(const DynInst &di);

    SimConfig cfg;
    const Program &prog;

    std::unique_ptr<OracleStream> oracle;
    std::unique_ptr<WrongPathWalker> walker;
    std::unique_ptr<InstSupply> instSupply;
    std::unique_ptr<MemHierarchy> mem;
    std::unique_ptr<PredictorBank> bank;
    std::unique_ptr<MultiBtb> btbHier;
    std::unique_ptr<BtbBuilder> builder;
    std::unique_ptr<CheckpointQueue> ckpts;
    std::unique_ptr<Faq> faq;
    std::unique_ptr<ElfController> controller;
    std::unique_ptr<DecodeStage> decodeStage;
    std::unique_ptr<MemDepPredictor> memDep;
    std::unique_ptr<Backend> backendUnit;

    std::unique_ptr<BoundedQueue<DynInst>> fetchToDecode;

    /** Per-cycle scratch bundles, reused across ticks so the tick
     *  loop performs no steady-state heap allocation. */
    FetchBundle decodedScratch;
    FetchBundle freshScratch;

    /** A flush waiting for its checkpoint payload (ELF). */
    Redirect heldRedirect;

    /** Cycle of the last applied mispredict flush (restart-latency
     *  measurement); 0 = not measuring. */
    Cycle measureRedirectCycle = 0;

    std::function<void(const DynInst &)> commitObserver;

    /** Last committed instruction (sampling squash/resume points). */
    SeqNum lastCommitSeq = 0;
    SeqNum lastCommitOracleIdx = 0;

    /** See ffResumeState(). */
    OracleGen ffGenState;
    bool ffGenStateValid = false;

    CoreStats coreStats;
    WarmStats warmStats_;
};

} // namespace elfsim

#endif // ELFSIM_SIM_CORE_HH
