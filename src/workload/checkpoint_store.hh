/**
 * @file
 * Process-wide store of warm-state checkpoint artifacts for sampled
 * simulation.
 *
 * A checkpoint captures the complete warm state of a core (predictors,
 * BTB hierarchy, caches, cumulative counters — see Core::saveWarmState)
 * at one architectural stream position of a sampled run, so a re-run of
 * the same (program content x configuration x sampling schedule) can
 * restore each detailed window's starting state instantly instead of
 * fast-forwarding from the beginning of the stream.
 *
 * Artifacts live beside the compiled-trace cache as content-keyed
 * "elfsim-ckpt-v1" files (--ckpt-cache DIR on the benches,
 * $ELFSIM_CKPT_CACHE, or CheckpointStore::setDirectory) and share its
 * robustness contract: atomic temp-file + rename writes, and key /
 * size / checksum validation on load. Any load defect — stale key,
 * torn write, injected corruption (the 'ckptcache' fault site) —
 * demotes the artifact to a transparent fast-forward, never to a
 * failed cell.
 *
 * On-disk format ("elfsim-ckpt-v1", little-endian):
 *
 *   char  magic[16]    "elfsim-ckpt-v1\0\0"
 *   u64   key          content hash (program content + configuration
 *                      fingerprint + sampling schedule + stream
 *                      position + format version)
 *   u64   position     architectural instructions consumed
 *   u64   payloadLen   payload bytes after the header
 *   u64   checksum     FNV-1a of key, position, payloadLen, payload
 *   u8[]  payload      opaque Serializer bytes (Core::saveWarmState
 *                      plus the oracle-generator resume state)
 */

#ifndef ELFSIM_WORKLOAD_CHECKPOINT_STORE_HH
#define ELFSIM_WORKLOAD_CHECKPOINT_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/program.hh"

namespace elfsim {

/** Monotonic counters of checkpoint-store activity (additive). */
struct CkptStats
{
    std::uint64_t hits = 0;         ///< artifacts restored
    std::uint64_t misses = 0;       ///< lookups with no usable artifact
    std::uint64_t saves = 0;        ///< artifacts written
    std::uint64_t loadFailures = 0; ///< corrupt/stale artifacts skipped
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;

    /** Counters accumulated since the @a since snapshot. */
    CkptStats
    delta(const CkptStats &since) const
    {
        CkptStats d;
        d.hits = hits - since.hits;
        d.misses = misses - since.misses;
        d.saves = saves - since.saves;
        d.loadFailures = loadFailures - since.loadFailures;
        d.bytesRead = bytesRead - since.bytesRead;
        d.bytesWritten = bytesWritten - since.bytesWritten;
        return d;
    }
};

/** Process-wide checkpoint artifact store (see file comment). */
class CheckpointStore
{
  public:
    /** The process-wide store, configured from $ELFSIM_CKPT_CACHE
     *  (directory) and $ELFSIM_CKPT (0/off disables) on first use. */
    static CheckpointStore &instance();

    /**
     * Content hash identifying one checkpointable machine state: the
     * program content, the full configuration fingerprint
     * (configFingerprint), the sampling schedule that shaped all
     * earlier execution, the stream position, and the format version.
     */
    static std::uint64_t key(const Program &prog,
                             std::uint64_t config_fp,
                             InstCount sample_period,
                             InstCount sample_length,
                             InstCount sample_warmup,
                             InstCount position);

    /** @return true iff artifacts can be read/written (enabled and a
     *  directory is configured). */
    bool usable() const;

    /**
     * Try to load the payload for @a key. Returns false — never
     * throws — when the store is unusable, the artifact is absent, or
     * it fails validation (which logs a warning and counts a
     * loadFailure). Thread-safe.
     */
    bool load(const std::string &name, std::uint64_t key,
              InstCount position, std::vector<std::uint8_t> &payload);

    /**
     * Persist @a payload under @a key, best-effort: filesystem
     * failures warn and are otherwise ignored (a read-only or full
     * cache directory must not take the run down). Thread-safe.
     */
    void save(const std::string &name, std::uint64_t key,
              InstCount position,
              const std::vector<std::uint8_t> &payload);

    /** Set (or clear, with "") the artifact directory. */
    void setDirectory(std::string dir);
    std::string directory() const;

    /** Globally enable/disable the store. */
    void setEnabled(bool on);
    bool enabled() const;

    /**
     * Artifact path @a name/@a key would use, empty when no directory
     * is configured (tests poison this file to exercise the corrupt-
     * artifact fallback path).
     */
    std::string filePath(const std::string &name,
                         std::uint64_t key) const;

    /** Snapshot of the activity counters. */
    CkptStats stats() const;

    /** Zero the counters (tests). Does not touch on-disk artifacts. */
    void clearStats();

  private:
    /** Reads $ELFSIM_CKPT_CACHE / $ELFSIM_CKPT (see instance()). */
    CheckpointStore();

    std::string pathForKey(const std::string &name,
                           std::uint64_t key) const;

    mutable std::mutex mtx;
    std::string dir;
    bool on = true;
    CkptStats counters;
};

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_CHECKPOINT_STORE_HH
