/**
 * @file
 * The decoupled fetcher's complete prediction infrastructure bundled
 * behind one interface: TAGE (conditional), L0 BTC + ITTAGE
 * (indirect), and the return address stack, with the
 * speculative/architectural history split used for flush recovery.
 *
 * Usage protocol:
 *  - predict*() reads the speculative state without modifying it;
 *  - specBranch() advances the speculative state when the front-end
 *    processes a branch (with the *predicted* outcome);
 *  - commitBranch() advances the architectural state and trains the
 *    tables with the *resolved* outcome at retire;
 *  - on a flush, the core calls resetSpecToArch() and then replays
 *    specBranch() for every still-in-flight older branch with its
 *    resolved outcome.
 */

#ifndef ELFSIM_BPRED_PREDICTOR_BANK_HH
#define ELFSIM_BPRED_PREDICTOR_BANK_HH

#include "bpred/btc.hh"
#include "bpred/ittage.hh"
#include "bpred/ras.hh"
#include "bpred/tage.hh"
#include "isa/static_inst.hh"

namespace elfsim {

/** Parameters of the decoupled prediction infrastructure. */
struct PredictorBankParams
{
    TageParams tage{};
    IttageParams ittage{};
    BtcParams l0Indirect{};       ///< 64-entry, 12-bit tags, 1 cycle
    unsigned rasEntries = 32;
};

/** Bundles the decoupled predictors. */
class PredictorBank
{
  public:
    explicit PredictorBank(const PredictorBankParams &params = {});

    // --- prediction (no state change) -----------------------------------

    /** Conditional direction (speculative history). */
    TagePrediction predictCond(Addr pc) const { return tagePred.predict(pc); }

    /** L1 indirect target via ITTAGE (3-cycle structure). */
    IttagePrediction
    predictIndirect(Addr pc) const
    {
        return ittagePred.predict(pc);
    }

    /** L0 indirect target via the BTC; invalidAddr on miss. */
    Addr predictIndirectL0(Addr pc) const { return l0Ind.predict(pc); }

    /** Predicted return target (speculative RAS top). */
    Addr peekReturn() const { return specRasStack.top(); }

    // --- speculative state advance ---------------------------------------

    /**
     * Advance the speculative state for a branch the front-end just
     * processed with predicted direction @a taken.
     */
    void specBranch(Addr pc, BranchKind kind, bool taken);

    // --- commit ------------------------------------------------------------

    /**
     * Retire a branch: advance the architectural state and train the
     * tables with the resolved outcome.
     *
     * @param tp The TAGE prediction made at fetch; pass a prediction
     *        with valid == false if none was made (coupled fetch) and
     *        training will use the architectural history instead.
     * @param ip Same for the ITTAGE prediction of indirect branches.
     * @param history_visible Push the branch's bit into the
     *        architectural history. Decoupled front-ends only see
     *        BTB-tracked branches at prediction time, so only those
     *        may contribute history bits — the caller applies the
     *        same visibility filter it applies speculatively.
     *        RAS maintenance and table training are unaffected.
     */
    void commitBranch(Addr pc, BranchKind kind, bool taken, Addr target,
                      const TagePrediction &tp,
                      const IttagePrediction &ip,
                      bool history_visible = true);

    // --- flush recovery ------------------------------------------------

    /** Restore all speculative state from the architectural state. */
    void resetSpecToArch();

    // --- access to members -----------------------------------------------

    Tage &tage() { return tagePred; }
    Ittage &ittage() { return ittagePred; }
    BranchTargetCache &indirectL0() { return l0Ind; }
    ReturnAddressStack &specRas() { return specRasStack; }
    const ReturnAddressStack &archRas() const { return archRasStack; }

    /** Total storage in bytes (Table II reporting). */
    double storageBytes() const;

    /** Serialize every predictor's warm state. */
    void
    saveState(Serializer &s) const
    {
        tagePred.saveState(s);
        ittagePred.saveState(s);
        l0Ind.saveState(s);
        specRasStack.saveState(s);
        archRasStack.saveState(s);
    }

    void
    loadState(Deserializer &d)
    {
        tagePred.loadState(d);
        ittagePred.loadState(d);
        l0Ind.loadState(d);
        specRasStack.loadState(d);
        archRasStack.loadState(d);
    }

  private:
    PredictorBankParams params;
    Tage tagePred;
    Ittage ittagePred;
    BranchTargetCache l0Ind;
    ReturnAddressStack specRasStack;
    ReturnAddressStack archRasStack;
};

} // namespace elfsim

#endif // ELFSIM_BPRED_PREDICTOR_BANK_HH
