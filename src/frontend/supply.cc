#include "frontend/supply.hh"

#include <cstdio>

#include "common/logging.hh"

namespace elfsim {

DynInst
InstSupply::make(Addr pc, Cycle now, FetchMode mode)
{
    DynInst di;
    di.seq = ++seqCounter;
    di.mode = mode;
    di.fetchCycle = now;

    if (!wrongPath && pc == oracle.pcAt(oracleCursor)) {
        const OracleInst &oi = oracle.at(oracleCursor);
        di.si = oi.si;
        di.oracleIdx = oracleCursor;
        di.taken = oi.taken;
        di.actualNext = oi.nextPC;
        di.memAddr = oi.memAddr;
        ++oracleCursor;
        return di;
    }

#ifdef ELFSIM_TRACE_REDIRECTS
    if (!wrongPath)
        std::fprintf(stderr,
                     "  wrong-path latch at seq=%llu pc=0x%llx "
                     "(expected 0x%llx, cursor=%llu) mode=%d\n",
                     (unsigned long long)(seqCounter + 0),
                     (unsigned long long)pc,
                     (unsigned long long)oracle.pcAt(oracleCursor),
                     (unsigned long long)oracleCursor, int(mode));
#endif
    // Wrong path (or the very first deviation, which latches it).
    wrongPath = true;
    ++wrongPathCount;
    di.wrongPath = true;
    di.si = walker.instAt(pc);
    ELFSIM_ASSERT(di.si != nullptr, "misaligned fetch pc 0x%llx",
                  (unsigned long long)pc);
    // Wrong-path branches "resolve" to their prediction (no nested
    // wrong-path redirects); default to fall-through until the caller
    // attaches a prediction.
    di.taken = false;
    di.actualNext = di.si->nextPC();
    if (di.si->isMemInst())
        di.memAddr = walker.wrongPathMemAddr(*di.si, di.seq);
    return di;
}

} // namespace elfsim
