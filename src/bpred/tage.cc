#include "bpred/tage.hh"

#include <cmath>

#include "common/logging.hh"

namespace elfsim {

Tage::Tage(const TageParams &params)
    : params(params), useAltOnNA(4, 8), allocRng(params.allocSeed)
{
    ELFSIM_ASSERT(params.numTables >= 1 &&
                      params.numTables <= tageMaxTables,
                  "bad TAGE table count %u", params.numTables);
    ELFSIM_ASSERT(params.maxHist < 1024, "history exceeds GHR storage");

    // Geometric history lengths from minHist to maxHist.
    histLengths.resize(params.numTables);
    const double ratio =
        params.numTables > 1
            ? std::pow(double(params.maxHist) / params.minHist,
                       1.0 / (params.numTables - 1))
            : 1.0;
    double h = params.minHist;
    for (unsigned t = 0; t < params.numTables; ++t) {
        histLengths[t] = std::max<unsigned>(1, unsigned(h + 0.5));
        if (t > 0 && histLengths[t] <= histLengths[t - 1])
            histLengths[t] = histLengths[t - 1] + 1;
        h *= ratio;
    }

    const std::size_t entries = 1ull << params.tableEntriesLog2;
    tables.assign(params.numTables * entries, TaggedEntry{});
    for (auto &e : tables) {
        e.ctr = SatCounter(params.ctrBits, 0);
        e.ctr.resetWeak();
    }

    for (HistState *h2 : {&spec, &arch}) {
        h2->indexFold.resize(params.numTables);
        h2->tagFold0.resize(params.numTables);
        h2->tagFold1.resize(params.numTables);
        for (unsigned t = 0; t < params.numTables; ++t) {
            h2->indexFold[t] =
                FoldedHistory(histLengths[t], params.tableEntriesLog2);
            h2->tagFold0[t] =
                FoldedHistory(histLengths[t], params.tagBits);
            h2->tagFold1[t] =
                FoldedHistory(histLengths[t], params.tagBits - 1);
        }
    }

    base.assign(1ull << params.baseEntriesLog2, SatCounter(2, 1));
}

std::uint32_t
Tage::tableIndex(const HistState &h, Addr pc, unsigned t) const
{
    const std::uint64_t p = pc / instBytes;
    const std::uint64_t v =
        p ^ (p >> (params.tableEntriesLog2 - (t % 4))) ^
        h.indexFold[t].value() ^
        (h.pathHist &
         ((1ull << std::min(16u, histLengths[t])) - 1));
    return v & ((1u << params.tableEntriesLog2) - 1);
}

std::uint16_t
Tage::tableTag(const HistState &h, Addr pc, unsigned t) const
{
    const std::uint64_t p = pc / instBytes;
    const std::uint64_t v =
        p ^ h.tagFold0[t].value() ^ (h.tagFold1[t].value() << 1);
    return v & ((1u << params.tagBits) - 1);
}

TagePrediction
Tage::predictWith(const HistState &h, Addr pc) const
{
    // Lookup memo: checkpoint and commit paths re-predict the same pc
    // against an unchanged history; reuse the indices/tags instead of
    // recomputing every table's fold/hash.
    const bool isSpec = &h == &spec;
    PredMemo &memo = isSpec ? specMemo : archMemo;
    const std::uint64_t gen = isSpec ? specGen : archGen;
    if (memo.pc == pc && memo.gen == gen)
        return memo.pred;

    TagePrediction pred;
    pred.valid = true;
    pred.baseIndex = baseIndexOf(pc);
    pred.baseTaken = base[pred.baseIndex].isTaken();

    for (unsigned t = 0; t < params.numTables; ++t) {
        pred.indices[t] = tableIndex(h, pc, t);
        pred.tags[t] = tableTag(h, pc, t);
    }

    // Provider = hitting table with the longest history; alt = next.
    for (int t = int(params.numTables) - 1; t >= 0; --t) {
        const TaggedEntry &e = entry(t, pred.indices[t]);
        if (e.valid && e.tag == pred.tags[t]) {
            if (pred.provider < 0) {
                pred.provider = t;
            } else {
                pred.alt = t;
                break;
            }
        }
    }

    if (pred.provider >= 0) {
        const TaggedEntry &p =
            entry(pred.provider, pred.indices[pred.provider]);
        const bool providerTaken = p.ctr.isTaken();
        pred.providerWeak = p.ctr.isWeak();
        if (pred.alt >= 0) {
            const TaggedEntry &a =
                entry(pred.alt, pred.indices[pred.alt]);
            pred.altTaken = a.ctr.isTaken();
        } else {
            pred.altTaken = pred.baseTaken;
        }
        // Newly-allocated weak entries may be worse than altpred.
        if (pred.providerWeak && useAltOnNA.isTaken())
            pred.taken = pred.altTaken;
        else
            pred.taken = providerTaken;
    } else {
        pred.altTaken = pred.baseTaken;
        pred.taken = pred.baseTaken;
    }

    memo.pc = pc;
    memo.gen = gen;
    memo.pred = pred;
    return pred;
}

void
Tage::push(HistState &h, Addr pc, bool bit)
{
    for (unsigned t = 0; t < params.numTables; ++t) {
        const unsigned len = histLengths[t];
        const bool old = h.ghr.bitAt(len - 1);
        h.indexFold[t].update(bit, old);
        h.tagFold0[t].update(bit, old);
        h.tagFold1[t].update(bit, old);
    }
    h.ghr.push(bit);
    h.pathHist = (h.pathHist << 1) ^ ((pc / instBytes) & 0x3f);
}

void
Tage::update(Addr pc, const TagePrediction &pred, bool taken)
{
    (void)pc;
    ELFSIM_ASSERT(pred.valid, "training TAGE with an empty prediction");
    ++updateCount;
    ++specGen;
    ++archGen;

    // Periodic aging of useful bits.
    if (updateCount % params.uResetPeriod == 0) {
        for (auto &e : tables)
            e.useful >>= 1;
    }

    const bool mispredicted = pred.taken != taken;

    if (pred.provider >= 0) {
        TaggedEntry &p =
            entry(pred.provider, pred.indices[pred.provider]);
        // Track whether altpred would have been better for weak
        // entries.
        if (pred.providerWeak && pred.altTaken != p.ctr.isTaken()) {
            if (pred.altTaken == taken)
                useAltOnNA.increment();
            else
                useAltOnNA.decrement();
        }
        p.ctr.update(taken);
        // Useful when the final prediction was right and alt wrong.
        if (pred.taken == taken && pred.altTaken != taken) {
            if (p.useful < 3)
                ++p.useful;
        } else if (pred.taken != taken && pred.altTaken == taken) {
            if (p.useful > 0)
                --p.useful;
        }
    } else {
        base[pred.baseIndex].update(taken);
    }

    // Also train the base when it provided the alt prediction.
    if (pred.provider >= 0 && pred.alt < 0)
        base[pred.baseIndex].update(taken);

    // Allocate a new entry in a longer-history table on misprediction.
    if (mispredicted && pred.provider < int(params.numTables) - 1) {
        const unsigned start = pred.provider + 1;
        int chosen = -1;
        unsigned seen = 0;
        for (unsigned t = start; t < params.numTables; ++t) {
            const TaggedEntry &e = entry(t, pred.indices[t]);
            if (!e.valid || e.useful == 0) {
                ++seen;
                // First candidate wins with probability 2/3.
                if (chosen < 0 ||
                    (seen == 2 && allocRng.chance(1.0 / 3)))
                    chosen = int(t);
                if (seen == 2)
                    break;
            }
        }
        if (chosen >= 0) {
            TaggedEntry &e = entry(chosen, pred.indices[chosen]);
            e.valid = true;
            e.tag = pred.tags[chosen];
            e.ctr = SatCounter(params.ctrBits, 0);
            e.ctr.resetWeak();
            e.ctr.update(taken);
            e.useful = 0;
        } else {
            // No victim: age the candidates.
            for (unsigned t = start; t < params.numTables; ++t) {
                TaggedEntry &e = entry(t, pred.indices[t]);
                if (e.useful > 0)
                    --e.useful;
            }
        }
    }
}

void
Tage::saveHist(Serializer &s, const HistState &h) const
{
    h.ghr.saveState(s);
    s.u64(h.pathHist);
    for (unsigned t = 0; t < params.numTables; ++t) {
        s.u32(h.indexFold[t].value());
        s.u32(h.tagFold0[t].value());
        s.u32(h.tagFold1[t].value());
    }
}

void
Tage::loadHist(Deserializer &d, HistState &h)
{
    h.ghr.loadState(d);
    h.pathHist = d.u64();
    for (unsigned t = 0; t < params.numTables; ++t) {
        h.indexFold[t].restore(d.u32());
        h.tagFold0[t].restore(d.u32());
        h.tagFold1[t].restore(d.u32());
    }
}

void
Tage::saveState(Serializer &s) const
{
    s.u64(tables.size());
    for (const TaggedEntry &e : tables) {
        s.u16(e.tag);
        s.u16(std::uint16_t(e.ctr.raw()));
        s.u8(e.useful);
        s.boolean(e.valid);
    }
    s.u64(base.size());
    for (const SatCounter &c : base)
        s.u16(std::uint16_t(c.raw()));
    saveHist(s, spec);
    saveHist(s, arch);
    s.u16(std::uint16_t(useAltOnNA.raw()));
    s.u64(updateCount);
    s.u64(allocRng.rawState());
}

void
Tage::loadState(Deserializer &d)
{
    if (d.u64() != tables.size())
        throw ParseError("tage: tagged-table geometry mismatch");
    for (TaggedEntry &e : tables) {
        e.tag = d.u16();
        e.ctr.set(d.u16());
        e.useful = d.u8();
        e.valid = d.boolean();
    }
    if (d.u64() != base.size())
        throw ParseError("tage: base-table geometry mismatch");
    for (SatCounter &c : base)
        c.set(d.u16());
    loadHist(d, spec);
    loadHist(d, arch);
    useAltOnNA.set(d.u16());
    updateCount = d.u64();
    allocRng.seed(d.u64());
    // The lookup memos cache stale table contents; invalidate them.
    ++specGen;
    ++archGen;
}

double
Tage::storageBytes() const
{
    const double taggedBits =
        double(params.numTables) * double(1ull << params.tableEntriesLog2) *
        (params.tagBits + params.ctrBits + 2 + 1);
    const double baseBits = double(1ull << params.baseEntriesLog2) * 2;
    return (taggedBits + baseBits) / 8.0;
}

} // namespace elfsim
