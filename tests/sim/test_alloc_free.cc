/**
 * @file
 * Steady-state allocation guard for the tick loop.
 *
 * This binary replaces the global allocator with a counting one. The
 * test warms a core up past the point where every reusable buffer
 * (scratch fetch bundles, ROB/IQ/LSQ storage, predictor tables,
 * oracle window, patch lists) has reached its high-water mark, then
 * asserts that continuing to simulate performs ZERO heap allocations.
 * Runs in its own test binary so the allocator override cannot
 * perturb any other test.
 *
 * If this fails after a change, some per-tick container went back to
 * allocating: look for a new std::vector/std::deque constructed (or
 * grown) inside Core::tick's call tree.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/core.hh"
#include "workload/catalog.hh"

namespace {

std::atomic<bool> countingOn{false};
std::atomic<std::uint64_t> allocCount{0};

void *
countedAlloc(std::size_t n)
{
    if (countingOn.load(std::memory_order_relaxed))
        allocCount.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
countedAlignedAlloc(std::size_t n, std::size_t align)
{
    if (countingOn.load(std::memory_order_relaxed))
        allocCount.fetch_add(1, std::memory_order_relaxed);
    // aligned_alloc requires the size to be a multiple of alignment.
    const std::size_t size = (n + align - 1) / align * align;
    void *p = std::aligned_alloc(align, size ? size : align);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void *
operator new(std::size_t n, std::align_val_t a)
{
    return countedAlignedAlloc(n, std::size_t(a));
}
void *
operator new[](std::size_t n, std::align_val_t a)
{
    return countedAlignedAlloc(n, std::size_t(a));
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

using namespace elfsim;

TEST(AllocFree, SteadyStateTickLoopDoesNotAllocate)
{
    const WorkloadSpec *spec = findWorkload("641.leela");
    ASSERT_NE(spec, nullptr);
    const Program prog = buildWorkload(*spec);

    const FrontendVariant variants[] = {FrontendVariant::NoDcf,
                                        FrontendVariant::Dcf,
                                        FrontendVariant::UElf};
    for (FrontendVariant v : variants) {
        Core core(makeConfig(v), prog);
        // Warm up: first flushes, spill growth, cache fills all happen
        // here, bringing every reusable buffer to its high-water mark.
        core.run(30000);

        allocCount.store(0, std::memory_order_relaxed);
        countingOn.store(true, std::memory_order_relaxed);
        core.run(20000);
        countingOn.store(false, std::memory_order_relaxed);

        EXPECT_EQ(allocCount.load(), 0u)
            << variantName(v) << ": steady-state ticks allocated";
    }
}

} // namespace
