/**
 * @file
 * Decoupled fetch engine: consumes FAQ blocks, accesses the L0
 * I-cache, and materializes dynamic instructions with their attached
 * predictions.
 *
 * Up to fetchWidth instructions per cycle, from at most two cache
 * lines that must fall in different L0I set interleaves — which is
 * also what permits fetching across a taken branch in a single cycle
 * when the branch and its target lines sit in different banks and the
 * target block is already in the FAQ (paper Section VI-A).
 */

#ifndef ELFSIM_FRONTEND_FETCH_HH
#define ELFSIM_FRONTEND_FETCH_HH

#include <vector>

#include "bpred/checkpoint.hh"
#include "cache/hierarchy.hh"
#include "frontend/faq.hh"
#include "frontend/pipeline_types.hh"
#include "frontend/supply.hh"

namespace elfsim {

/** Fetch stage parameters. */
struct FetchParams
{
    unsigned width = 8;          ///< instructions per cycle
    Cycle fetchToDecode = 1;     ///< FE -> DEC latency
};

/** Statistics of the decoupled fetch engine. */
struct FetchStats
{
    std::uint64_t insts = 0;
    std::uint64_t wrongPathInsts = 0;
    std::uint64_t icacheStallCycles = 0;
    std::uint64_t faqEmptyCycles = 0;
    std::uint64_t takenCrossFetches = 0; ///< fetched across a taken
                                         ///< branch in one cycle
};

/** The decoupled (FAQ-driven) fetch engine. */
class DecoupledFetchEngine
{
  public:
    DecoupledFetchEngine(const FetchParams &params, MemHierarchy &mem,
                         InstSupply &supply, Faq &faq,
                         CheckpointQueue &ckpts);

    /**
     * Fetch up to width instructions from the FAQ into @a out.
     * @param now Current cycle.
     * @param faq_ready_cycle BP1->FE latency: a block generated at
     *        cycle c is visible to FE from c + faq_ready_cycle.
     * @return instructions fetched this cycle.
     */
    unsigned tick(Cycle now, Cycle faq_ready_cycle,
                  FetchBundle &out);

    /** Reset in-entry progress after a redirect/FAQ flush. */
    void redirect(Cycle now);

    /** Instructions already consumed from the current head entry. */
    unsigned headOffset() const { return offsetInEntry; }

    /** @return true iff an I-cache miss is holding fetch. */
    bool stalled(Cycle now) const { return now < busyUntil; }

    const FetchStats &stats() const { return st; }

  private:
    FetchParams params;
    MemHierarchy &mem;
    InstSupply &supply;
    Faq &faq;
    CheckpointQueue &ckpts;

    unsigned offsetInEntry = 0;
    Cycle busyUntil = 0;
    FetchStats st;
};

/**
 * Attach the FAQ branch info (prediction, training payloads) to a
 * just-materialized instruction and derive its misprediction status.
 * Shared with the coupled engine's post-processing.
 */
void bindPrediction(DynInst &di, const FaqBranch *fb, bool btb_covered);

} // namespace elfsim

#endif // ELFSIM_FRONTEND_FETCH_HH
