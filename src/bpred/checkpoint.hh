/**
 * @file
 * Structural model of the branch-prediction checkpoint queue
 * (Section IV-D of the paper).
 *
 * Functionally, flush recovery in this simulator restores the
 * speculative predictor history from the architectural one and
 * replays the resolved outcomes of in-flight older branches (see
 * PredictorBank). The checkpoint queue is therefore modeled
 * *structurally*: allocation (the front-end stalls when it is full),
 * retirement, squashing, and — the ELF-specific part — the
 * "payload pending" state of checkpoints claimed by instructions
 * fetched in coupled mode, whose payload is only populated once the
 * corresponding FAQ block arrives. An instruction whose checkpoint
 * payload is pending cannot trigger a pipeline flush yet.
 */

#ifndef ELFSIM_BPRED_CHECKPOINT_HH
#define ELFSIM_BPRED_CHECKPOINT_HH

#include <cstdint>

#include "common/queue.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace elfsim {

/** Sentinel id for "no checkpoint". */
constexpr std::uint64_t noCheckpoint = 0;

/** Bounded queue of branch-prediction checkpoints. */
class CheckpointQueue
{
  public:
    explicit CheckpointQueue(std::size_t capacity = 512);

    /** @return true iff no entry can be allocated this cycle. */
    bool full() const { return entries.full(); }

    std::size_t size() const { return entries.size(); }
    std::size_t capacity() const { return cap; }

    /**
     * Allocate a checkpoint for the branch with sequence number
     * @a seq.
     *
     * @param payload_valid False for branches fetched in ELF coupled
     *        mode: the entry is claimed but its payload will only be
     *        populated from FAQ information later (fillPayload).
     * @return the checkpoint id (never noCheckpoint).
     */
    std::uint64_t allocate(SeqNum seq, bool payload_valid = true);

    /** @return true iff @a id is still live in the queue. */
    bool has(std::uint64_t id) const;

    /** @return true iff @a id is live and its payload is populated. */
    bool payloadReady(std::uint64_t id) const;

    /** Populate the payload of a pending checkpoint. */
    void fillPayload(std::uint64_t id);

    /** Populate payloads of all pending checkpoints with seq <= @a seq
     *  (FAQ information has caught up through that point). */
    void fillPayloadsUpTo(SeqNum seq);

    /** Drop entries belonging to squashed instructions (seq > given). */
    void squashYoungerThan(SeqNum seq);

    /** Release entries of retired instructions (seq <= given). */
    void retireUpTo(SeqNum seq);

    /** Drop everything. */
    void clear() { entries.clear(); }

  private:
    struct Entry
    {
        std::uint64_t id;
        SeqNum seq;
        bool payloadValid;
    };

    /** Index of @a id in entries, or -1. */
    long find(std::uint64_t id) const;

    std::size_t cap;
    BoundedQueue<Entry> entries;
    std::uint64_t nextId = 1;
};

} // namespace elfsim

#endif // ELFSIM_BPRED_CHECKPOINT_HH
