/**
 * @file
 * Minimal recursive-descent JSON parser — the read half of the export
 * pipeline (common/export.hh is the write half). Exists so the sweep
 * engine can reload results journaled to a JSONL resume manifest.
 *
 * Numbers keep their raw token text: asU64() re-parses the exact
 * digits (no 53-bit double truncation of 64-bit counters) and
 * asDouble() goes through strtod, which inverts the writer's
 * shortest-round-trip formatting bit-exactly — so a result that is
 * parsed from a manifest and re-serialized is byte-identical to the
 * original export.
 *
 * All parse and type errors throw ParseError (common/error.hh).
 */

#ifndef ELFSIM_COMMON_JSON_HH
#define ELFSIM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace elfsim {
namespace json {

/** One parsed JSON value; a tree of these is a document. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }

    bool asBool() const;
    /** Exact unsigned 64-bit integer; throws on sign/fraction/range. */
    std::uint64_t asU64() const;
    double asDouble() const;
    const std::string &asString() const;

    const std::vector<Value> &array() const;
    std::size_t size() const { return array().size(); }
    const Value &operator[](std::size_t i) const { return array()[i]; }

    /** Object member lookup; nullptr when absent (or not an object). */
    const Value *find(std::string_view key) const;
    /** Object member lookup; throws ParseError when absent. */
    const Value &at(std::string_view key) const;

    /** Object members in document order. */
    const std::vector<std::pair<std::string, Value>> &members() const;

  private:
    friend class Parser;

    Kind k = Kind::Null;
    bool boolean = false;
    std::string text; ///< string value, or a number's raw token
    std::vector<Value> elems;
    std::vector<std::pair<std::string, Value>> fields;
};

/** Parse one complete document; trailing garbage is an error. */
Value parse(std::string_view text);

} // namespace json
} // namespace elfsim

#endif // ELFSIM_COMMON_JSON_HH
