/**
 * @file
 * Distributed-sweep tests: wire-protocol round trips, the crash-safe
 * lease ledger on adversarial JSONL, SweepRunner's subset-merge
 * byte-identity (the invariant the whole layer rests on), the worker
 * endpoints of an in-process service, and full coordinator runs.
 *
 * The scheduling-level cases (kill -9 reassignment, one compile per
 * fleet) drive real `elfsimd --worker` subprocesses found via
 * $ELFSIM_BENCH_DIR — an in-process worker would share this process's
 * TraceCache singleton and fake the compile accounting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/types.h>

#include "common/error.hh"
#include "common/json.hh"
#include "dist/coordinator.hh"
#include "dist/ledger.hh"
#include "dist/spawn.hh"
#include "dist/wire.hh"
#include "service/daemon.hh"
#include "service/http.hh"
#include "sim/export.hh"
#include "sim/sweep.hh"
#include "sim/sweep_spec.hh"
#include "workload/trace_cache.hh"

namespace elfsim {
namespace {

/**
 * A tiny but real grid: micro workloads crossed with two frontend
 * variants. Distinct tests use distinct generator args so the
 * process-wide TraceCache memo of earlier tests never masks a
 * compile this test expected to observe.
 */
SweepSpec
distSpec(const std::string &name,
         const std::vector<std::vector<double>> &microArgs,
         std::uint64_t warmup, std::uint64_t measure)
{
    SweepSpec spec;
    spec.name = name;
    spec.jobs = 1;
    spec.baseSeed = 7;
    spec.run.warmupInsts = warmup;
    spec.run.measureInsts = measure;
    SweepGroup g;
    for (const auto &args : microArgs)
        g.workloads.push_back(
            WorkloadSelector::micro("random_branch_loop", args));
    g.configs.emplace_back(FrontendVariant::Dcf);
    g.configs.emplace_back(FrontendVariant::UElf);
    spec.groups.push_back(std::move(g));
    return spec;
}

/** The single-process answer: the bytes every distributed run of the
 *  same spec must reproduce exactly. */
std::string
referenceBytes(const SweepSpec &spec)
{
    ExpandedSweep ex = expandSweep(spec);
    SweepRunner runner(1);
    runner.setBaseSeed(spec.baseSeed);
    const std::vector<RunResult> results = runner.run(ex.jobs);
    std::ostringstream os;
    writeResultsJson(os, results);
    return os.str();
}

std::string
mergedBytes(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(os, results);
    return os.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

/** elfsimd binary path, or "" when the env var is missing (running
 *  the test binary by hand outside ctest). */
std::string
workerBinary()
{
    const char *dir = std::getenv("ELFSIM_BENCH_DIR");
    return dir ? std::string(dir) + "/elfsimd" : std::string();
}

ManifestEntry
dummyEntry(std::size_t index, const std::string &key)
{
    ManifestEntry e;
    e.index = index;
    e.key = key;
    e.result.workload = "w" + std::to_string(index);
    e.result.variant = "DCF";
    return e;
}

std::string
manifestLine(std::size_t index, const std::string &key)
{
    std::ostringstream os;
    writeManifestLine(os, dummyEntry(index, key));
    return os.str();
}

std::string
leaseLine(std::size_t index, const std::string &key,
          const std::string &worker)
{
    dist::LeaseEvent e;
    e.kind = dist::LeaseEvent::Kind::Lease;
    e.index = index;
    e.key = key;
    e.worker = worker;
    e.leaseSeconds = 30;
    std::ostringstream os;
    dist::writeLeaseLine(os, e);
    return os.str();
}

std::string
expireLine(std::size_t index, const std::string &worker)
{
    dist::LeaseEvent e;
    e.kind = dist::LeaseEvent::Kind::Expire;
    e.index = index;
    e.worker = worker;
    std::ostringstream os;
    dist::writeLeaseLine(os, e);
    return os.str();
}

// ---------------------------------------------------------------- wire

TEST(DistWire, ShardRequestRoundTripsThroughCanonicalSpecText)
{
    const SweepSpec spec = distSpec("wire", {{8, 0.5}, {4, 0.9}},
                                    2000, 4000);
    const std::vector<std::size_t> cells = {3, 0, 2};
    const std::string body = dist::writeShardRequest(spec, cells);

    const dist::ShardRequest req = dist::parseShardRequest(body);
    EXPECT_EQ(req.cells, cells);

    // The embedded spec survives canonically: re-serializing the
    // parsed spec reproduces the exact text the worker's expansion
    // memo keys on.
    std::ostringstream sent, parsed;
    writeSweepSpec(sent, spec);
    writeSweepSpec(parsed, req.spec);
    EXPECT_EQ(parsed.str(), sent.str());

    EXPECT_THROW(dist::parseShardRequest("{\"schema\":\"nope\"}"),
                 SimError);
}

TEST(DistWire, StreamLinesParseBackToTheirKinds)
{
    const dist::ShardLine hb = dist::parseShardLine(
        dist::heartbeatLine().substr(0, dist::heartbeatLine().size() - 1));
    EXPECT_EQ(hb.kind, dist::ShardLine::Kind::Heartbeat);

    std::string done = dist::doneLine(5);
    done.pop_back(); // strip '\n'
    const dist::ShardLine dn = dist::parseShardLine(done);
    EXPECT_EQ(dn.kind, dist::ShardLine::Kind::Done);
    EXPECT_EQ(dn.cells, 5u);

    std::string res = manifestLine(3, "key3");
    res.pop_back();
    const dist::ShardLine rl = dist::parseShardLine(res);
    EXPECT_EQ(rl.kind, dist::ShardLine::Kind::Result);
    EXPECT_EQ(rl.entry.index, 3u);
    EXPECT_EQ(rl.entry.key, "key3");
    EXPECT_EQ(rl.entry.result.workload, "w3");

    EXPECT_THROW(dist::parseShardLine("{\"shard\":\"elfsim-shard-v1\","
                                      "\"event\":\"frobnicate\"}"),
                 SimError);
    EXPECT_THROW(dist::parseShardLine("not json at all"), SimError);
}

// -------------------------------------------------------------- ledger

TEST(DistLedger, LeaseLifecycleReplaysToCompletedAndOutstanding)
{
    std::ostringstream os;
    os << leaseLine(0, "k0", "w0");   // leased ...
    os << manifestLine(0, "k0");      // ... and completed
    os << leaseLine(1, "k1", "w0");   // leased ...
    os << expireLine(1, "w0");        // ... worker died
    os << leaseLine(1, "k1", "w1");   // re-leased, in flight at EOF
    os << leaseLine(2, "k2", "w1");   // in flight at EOF

    std::istringstream is(os.str());
    const dist::LedgerState state = dist::readLedger(is);
    ASSERT_EQ(state.completed.size(), 1u);
    EXPECT_EQ(state.completed[0].index, 0u);
    ASSERT_EQ(state.outstanding.size(), 2u);
    EXPECT_EQ(state.outstanding[0].index, 1u);
    EXPECT_EQ(state.outstanding[0].worker, "w1");
    EXPECT_EQ(state.outstanding[1].index, 2u);
    EXPECT_EQ(state.leaseLines, 4u);
    EXPECT_EQ(state.expireLines, 1u);
    EXPECT_EQ(state.skipped, 0u);
}

TEST(DistLedger, AdversarialLinesAreSkippedNeverFatal)
{
    std::ostringstream os;
    os << manifestLine(0, "first");
    os << leaseLine(1, "k1", "w0");
    os << "this is not json\n";                       // junk
    os << manifestLine(1, "k1");                      // completes 1
    os << "{\"ledger\":\"elfsim-ledger-v1\","
          "\"event\":\"frobnicate\",\"index\":9,"
          "\"worker\":\"w9\"}\n";                     // alien event
    os << "{\"manifest\":\"elfsim-manifest-v9\","
          "\"index\":5,\"key\":\"x\"}\n";             // alien schema
    os << manifestLine(0, "second");                  // duplicate: wins
    // A crash mid-append: the final line is torn in half, no newline.
    const std::string torn = manifestLine(2, "k2");
    os << torn.substr(0, torn.size() / 2);

    std::istringstream is(os.str());
    const dist::LedgerState state = dist::readLedger(is);
    ASSERT_EQ(state.completed.size(), 2u);
    EXPECT_EQ(state.completed[0].index, 0u);
    EXPECT_EQ(state.completed[0].key, "second"); // last line wins
    EXPECT_EQ(state.completed[1].index, 1u);
    EXPECT_TRUE(state.outstanding.empty());
    EXPECT_EQ(state.skipped, 4u);
}

TEST(DistLedger, PlainManifestReaderSurvivesInterleavedLedgerLines)
{
    // A ledger IS a valid resume manifest: the plain manifest reader
    // must skip the scheduling lines (and any torn tail) and still
    // return every completed cell.
    std::ostringstream os;
    os << leaseLine(0, "k0", "w0");
    os << manifestLine(0, "k0");
    os << leaseLine(1, "k1", "w1");
    os << expireLine(1, "w1");
    os << manifestLine(1, "k1");
    os << "garbage line\n";
    const std::string torn = manifestLine(2, "k2");
    os << torn.substr(0, torn.size() / 2);

    std::istringstream is(os.str());
    const std::vector<ManifestEntry> entries = readManifest(is);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].index, 0u);
    EXPECT_EQ(entries[1].index, 1u);
}

// -------------------------------------------- subset-merge invariant

TEST(DistSubset, DisjointSubsetRunsMergeByteIdenticallyToFullRun)
{
    const SweepSpec spec = distSpec("subset", {{8, 0.5}, {4, 0.9}},
                                    2000, 4000);
    const std::string reference = referenceBytes(spec);
    ExpandedSweep ex = expandSweep(spec);

    SweepRunner a(1), b(1);
    a.setBaseSeed(spec.baseSeed);
    b.setBaseSeed(spec.baseSeed);
    const std::vector<RunResult> ra = a.run(ex.jobs, {0, 3});
    const std::vector<RunResult> rb = b.run(ex.jobs, {1, 2});

    std::vector<RunResult> merged(ex.jobs.size());
    merged[0] = ra[0];
    merged[3] = ra[3];
    merged[1] = rb[1];
    merged[2] = rb[2];
    EXPECT_EQ(mergedBytes(merged), reference);
}

// ------------------------------------------------- worker endpoints

TEST(DistWorker, ShardEndpointStreamsManifestLinesAndDone)
{
    const SweepSpec spec = distSpec("shard", {{8, 0.5}, {4, 0.9}},
                                    2000, 4000);
    ExpandedSweep ex = expandSweep(spec);

    service::ServiceConfig cfg;
    cfg.worker = true;
    cfg.jobs = 1;
    cfg.heartbeatMs = 5;
    service::SweepService svc(cfg);
    svc.start();

    const std::vector<std::size_t> cells = {0, 1, 2, 3};
    const service::HttpResponse resp =
        service::httpFetch("127.0.0.1", svc.port(), "POST", "/shard",
                           dist::writeShardRequest(spec, cells));
    ASSERT_EQ(resp.status, 200);

    std::vector<RunResult> merged(ex.jobs.size());
    std::size_t results = 0;
    bool sawDone = false;
    std::uint64_t doneCells = 0;
    for (const std::string &line : splitLines(resp.body)) {
        const dist::ShardLine sl = dist::parseShardLine(line);
        if (sl.kind == dist::ShardLine::Kind::Result) {
            ASSERT_LT(sl.entry.index, merged.size());
            EXPECT_EQ(sl.entry.key,
                      sweepJobKey(ex.jobs[sl.entry.index],
                                  sl.entry.index, spec.baseSeed));
            merged[sl.entry.index] = sl.entry.result;
            ++results;
        } else if (sl.kind == dist::ShardLine::Kind::Done) {
            sawDone = true;
            doneCells = sl.cells;
        }
    }
    EXPECT_EQ(results, cells.size());
    EXPECT_TRUE(sawDone);
    EXPECT_EQ(doneCells, cells.size());
    EXPECT_EQ(mergedBytes(merged), referenceBytes(spec));

    svc.stop();
}

TEST(DistWorker, FleetEndpointsRequireWorkerMode)
{
    service::SweepService svc; // worker = false
    svc.start();
    const SweepSpec spec = distSpec("fleet403", {{8, 0.5}}, 2000, 4000);
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/shard",
                                 dist::writeShardRequest(spec, {0}))
                  .status,
              403);
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/artifact/trace", "junk",
                                 {{"x-elfsim-key", "00000000000000aa"}})
                  .status,
              403);
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/artifact/ckpt", "junk",
                                 {{"x-elfsim-name", "a.eckpt"}})
                  .status,
              403);
    svc.stop();
}

TEST(DistWorker, BadShardsAndCorruptArtifactsAreRejected)
{
    service::ServiceConfig cfg;
    cfg.worker = true;
    cfg.jobs = 1;
    service::SweepService svc(cfg);
    svc.start();

    const SweepSpec spec = distSpec("reject", {{8, 0.5}}, 2000, 4000);
    // Grid has 2 cells (1 micro x 2 variants): index 9 is out of range.
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/shard",
                                 dist::writeShardRequest(spec, {9}))
                  .status,
              400);
    // Empty cell set: a shard that runs nothing is a caller bug.
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/shard",
                                 dist::writeShardRequest(spec, {}))
                  .status,
              400);
    // A corrupt trace image must be rejected, not silently demoted to
    // a local recompile — that would break one-compile-per-fleet.
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/artifact/trace", "not a trace",
                                 {{"x-elfsim-key", "00000000000000aa"},
                                  {"x-elfsim-name", "bad"}})
                  .status,
              400);
    // No checkpoint directory configured: uploads have nowhere to go.
    EXPECT_EQ(service::httpFetch("127.0.0.1", svc.port(), "POST",
                                 "/artifact/ckpt", "junk",
                                 {{"x-elfsim-name", "a.eckpt"}})
                  .status,
              400);
    svc.stop();
}

// ----------------------------------------------------- coordinator

TEST(DistCoordinator, MergesByteIdenticallyAndJournalsTheLedger)
{
    const SweepSpec spec = distSpec("coord", {{8, 0.5}, {4, 0.9}},
                                    2000, 4000);

    service::ServiceConfig wcfg;
    wcfg.worker = true;
    wcfg.jobs = 1;
    service::SweepService w1(wcfg), w2(wcfg);
    w1.start();
    w2.start();

    const std::string ledger = tmpPath("dist_coord_ledger.jsonl");
    std::remove(ledger.c_str());

    dist::CoordinatorConfig cfg;
    cfg.workers = {{"127.0.0.1", w1.port()}, {"127.0.0.1", w2.port()}};
    cfg.ledgerPath = ledger;
    cfg.chunkCells = 1;
    cfg.leaseSeconds = 30;
    dist::SweepCoordinator coord(cfg);
    const std::vector<RunResult> results = coord.run(spec);

    EXPECT_EQ(mergedBytes(results), referenceBytes(spec));
    EXPECT_EQ(coord.stats().cellsTotal, 4u);
    EXPECT_EQ(coord.stats().cellsRun, 4u);
    EXPECT_EQ(coord.stats().cellsAdopted, 0u);
    EXPECT_EQ(coord.stats().cellsSynthFailed, 0u);
    EXPECT_EQ(coord.stats().chunksDispatched, 4u);
    EXPECT_EQ(coord.stats().leasesExpired, 0u);

    // The ledger replays to exactly the completed grid.
    std::ifstream is(ledger);
    ASSERT_TRUE(is.good());
    const dist::LedgerState state = dist::readLedger(is);
    EXPECT_EQ(state.completed.size(), 4u);
    EXPECT_TRUE(state.outstanding.empty());
    EXPECT_EQ(state.leaseLines, 4u);
    EXPECT_EQ(state.skipped, 0u);

    // Resume from the finished ledger: every cell is adopted, no
    // worker is ever contacted (the endpoint below is unreachable).
    dist::CoordinatorConfig rcfg;
    rcfg.workers = {{"127.0.0.1", 9}};
    rcfg.ledgerPath = ledger;
    rcfg.resume = true;
    dist::SweepCoordinator resumed(rcfg);
    const std::vector<RunResult> adopted = resumed.run(spec);
    EXPECT_EQ(mergedBytes(adopted), referenceBytes(spec));
    EXPECT_EQ(resumed.stats().cellsAdopted, 4u);
    EXPECT_EQ(resumed.stats().cellsRun, 0u);

    w1.stop();
    w2.stop();
    std::remove(ledger.c_str());
}

TEST(DistCoordinator, SpawnedFleetMergesByteIdentically)
{
    const std::string bin = workerBinary();
    if (bin.empty())
        GTEST_SKIP() << "ELFSIM_BENCH_DIR not set";

    const SweepSpec spec = distSpec("fleet", {{7, 0.45}, {5, 0.85}},
                                    2000, 4000);
    std::vector<dist::LocalWorker> fleet =
        dist::spawnLocalWorkers(bin, 2, 1);

    dist::CoordinatorConfig cfg;
    for (const dist::LocalWorker &w : fleet)
        cfg.workers.push_back({"127.0.0.1", w.port});
    cfg.leaseSeconds = 30;
    dist::SweepCoordinator coord(cfg);
    std::vector<RunResult> results;
    try {
        results = coord.run(spec);
    } catch (...) {
        dist::stopLocalWorkers(fleet);
        throw;
    }
    dist::stopLocalWorkers(fleet);

    EXPECT_EQ(mergedBytes(results), referenceBytes(spec));
    EXPECT_EQ(coord.stats().cellsRun, 4u);
}

TEST(DistCoordinator, KillNineWorkerExpiresLeasesAndReassignsCells)
{
    const std::string bin = workerBinary();
    if (bin.empty())
        GTEST_SKIP() << "ELFSIM_BENCH_DIR not set";

    // 8 cells so the victim provably completes work before it dies.
    const SweepSpec spec =
        distSpec("kill9",
                 {{10, 0.4}, {6, 0.8}, {12, 0.3}, {5, 0.6}},
                 2000, 4000);
    const std::string reference = referenceBytes(spec);

    std::vector<dist::LocalWorker> fleet =
        dist::spawnLocalWorkers(bin, 2, 1);
    const std::string victimId =
        "127.0.0.1:" + std::to_string(fleet[0].port);
    const pid_t victimPid = fleet[0].pid;

    dist::CoordinatorConfig cfg;
    for (const dist::LocalWorker &w : fleet)
        cfg.workers.push_back({"127.0.0.1", w.port});
    cfg.ledgerPath = tmpPath("dist_kill9_ledger.jsonl");
    std::remove(cfg.ledgerPath.c_str());
    cfg.chunkCells = 1;
    cfg.leaseSeconds = 10;
    // Retire the victim on its first failure so its cells requeue
    // exactly once — the merge must not depend on retry accounting.
    cfg.maxWorkerFailures = 1;
    cfg.maxCellRetries = 16;

    dist::SweepCoordinator coord(cfg);
    std::atomic<unsigned> victimLeases{0};
    coord.setLeaseObserver(
        [&](const std::vector<std::size_t> &, const std::string &id)
        {
            // Let the victim finish its first chunk, then SIGKILL it
            // the moment its second lease is journaled: that lease
            // can only be satisfied by expiry and reassignment.
            if (id == victimId && ++victimLeases == 2)
                ::kill(victimPid, SIGKILL);
        });

    std::vector<RunResult> results;
    try {
        results = coord.run(spec);
    } catch (...) {
        dist::stopLocalWorkers(fleet);
        throw;
    }
    dist::stopLocalWorkers(fleet);

    EXPECT_GE(victimLeases.load(), 2u);
    EXPECT_GE(coord.stats().leasesExpired, 1u);
    EXPECT_EQ(coord.stats().workersDead, 1u);
    EXPECT_EQ(coord.stats().cellsSynthFailed, 0u);
    EXPECT_EQ(coord.stats().cellsRun, 8u);
    EXPECT_EQ(mergedBytes(results), reference);

    // The ledger tells the same story: expiries recorded, every cell
    // completed, nothing outstanding.
    std::ifstream is(cfg.ledgerPath);
    ASSERT_TRUE(is.good());
    const dist::LedgerState state = dist::readLedger(is);
    EXPECT_EQ(state.completed.size(), 8u);
    EXPECT_TRUE(state.outstanding.empty());
    EXPECT_GE(state.expireLines, 1u);
    std::remove(cfg.ledgerPath.c_str());
}

TEST(DistCoordinator, FleetCompilesEachProgramOnce)
{
    const std::string bin = workerBinary();
    if (bin.empty())
        GTEST_SKIP() << "ELFSIM_BENCH_DIR not set";
    if (!TraceCache::instance().enabled())
        GTEST_SKIP() << "trace compilation disabled in this environment";

    // Unique generator args + budget: nothing earlier in this process
    // (or in the fresh workers) has compiled these traces.
    const SweepSpec spec = distSpec("fleetcompile",
                                    {{11, 0.35}, {9, 0.65}},
                                    2500, 4500);

    std::vector<dist::LocalWorker> fleet =
        dist::spawnLocalWorkers(bin, 2, 1);

    dist::CoordinatorConfig cfg;
    for (const dist::LocalWorker &w : fleet)
        cfg.workers.push_back({"127.0.0.1", w.port});
    cfg.chunkCells = 1;
    cfg.leaseSeconds = 30;
    dist::SweepCoordinator coord(cfg);

    const TraceStats before = TraceCache::instance().stats();
    std::vector<RunResult> results;
    std::uint64_t workerCompiles = 0, workerHits = 0, workerShards = 0;
    try {
        results = coord.run(spec);
        for (const dist::LocalWorker &w : fleet) {
            const service::HttpResponse resp = service::httpFetch(
                "127.0.0.1", w.port, "GET", "/stats");
            ASSERT_EQ(resp.status, 200);
            const json::Value doc = json::parse(resp.body);
            workerCompiles +=
                doc.at("trace").at("trace.compiles").asU64();
            workerHits +=
                doc.at("trace").at("trace.cache_hits").asU64();
            workerShards +=
                doc.at("service").at("service.shards").asU64();
        }
    } catch (...) {
        dist::stopLocalWorkers(fleet);
        throw;
    }
    dist::stopLocalWorkers(fleet);
    const TraceStats delta = TraceCache::instance().stats().delta(before);

    EXPECT_EQ(mergedBytes(results), referenceBytes(spec));

    // One compile per distinct program, fleet-wide: both live in the
    // coordinator; the workers only install the shipped images and
    // hit their memos.
    EXPECT_EQ(delta.compiles, 2u);
    EXPECT_EQ(workerCompiles, 0u);
    EXPECT_GE(workerHits, 1u);
    EXPECT_GE(workerShards, 1u);
    EXPECT_EQ(coord.stats().tracesShipped, 4u); // 2 programs x 2 workers
}

} // namespace
} // namespace elfsim
