/**
 * @file
 * Quickstart: build a synthetic workload, simulate it on the baseline
 * decoupled front-end (DCF) and on U-ELF, and print the headline
 * numbers. This is the smallest end-to-end use of the public API.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "sim/runner.hh"
#include "workload/builders.hh"

using namespace elfsim;

int
main()
{
    // 1. Describe a workload: a branchy integer kernel with a mix of
    //    loop, patterned, and data-dependent conditionals.
    CfgParams params;
    params.numFuncs = 16;
    params.fracLoopBranches = 0.3;
    params.fracPatternBranches = 0.35;
    params.randomTakenProb = 0.35;
    params.dataFootprint = 64 << 10;
    Program program = generateCfg(params, /*seed=*/42, "quickstart");

    std::printf("workload: %s (%llu instructions of code)\n\n",
                program.name().c_str(),
                (unsigned long long)program.footprintInsts());

    // 2. Run it through two front-ends. runVariant handles warmup and
    //    the measurement window.
    RunOptions opts;
    opts.warmupInsts = 100000;
    opts.measureInsts = 200000;

    const RunResult dcf = runVariant(program, FrontendVariant::Dcf,
                                     opts);
    const RunResult elf = runVariant(program, FrontendVariant::UElf,
                                     opts);

    // 3. Compare.
    std::printf("%-22s %10s %10s\n", "", "DCF", "U-ELF");
    std::printf("%-22s %10.3f %10.3f\n", "IPC", dcf.ipc, elf.ipc);
    std::printf("%-22s %10.2f %10.2f\n", "branch MPKI",
                dcf.branchMpki, elf.branchMpki);
    std::printf("%-22s %10llu %10llu\n", "mispredict flushes",
                (unsigned long long)dcf.execFlushes,
                (unsigned long long)elf.execFlushes);
    std::printf("%-22s %10s %10.1f\n", "insts/coupled period", "-",
                elf.avgCoupledInsts);
    std::printf("\nU-ELF speedup over DCF: %+.2f%%\n",
                100.0 * (elf.ipc / dcf.ipc - 1.0));
    return 0;
}
