/**
 * @file
 * ELF divergence tracking (paper Section IV-C2): while the fetcher
 * runs in coupled mode, two aligned streams are recorded — what the
 * fetcher actually fetched (populated after Decode) and what the DCF
 * would have fetched (populated from arriving FAQ blocks) — and
 * compared pairwise. The (taken, branch, valid) bitvectors and the
 * taken-branch target queues of the paper are modeled as one queue of
 * per-instruction records per side with the same capacities: a
 * mismatch on (branch, taken) is a bitvector divergence, a mismatch
 * on the target of a taken branch is a target-queue divergence.
 *
 * Winner selection follows the paper: trust the DCF by default; trust
 * the fetcher when the DCF believed the stream was sequential but the
 * fetcher decoded a taken branch (BTB miss), and on direct-branch
 * target mismatches (the decoded target is authoritative).
 */

#ifndef ELFSIM_CORE_DIVERGENCE_HH
#define ELFSIM_CORE_DIVERGENCE_HH

#include <optional>

#include "common/queue.hh"
#include "common/types.hh"
#include "frontend/pipeline_types.hh"

namespace elfsim {

/** Capacities of the divergence-tracking hardware (Table II). */
struct DivergenceParams
{
    unsigned vecEntries = 64;    ///< per-instruction records per side
    unsigned targetEntries = 16; ///< in-flight taken-branch targets
};

/** Who is right about the stream. */
enum class DivergenceVerdict : std::uint8_t {
    TrustDcf,     ///< flush coupled instructions past the point
    TrustFetcher, ///< flush the DCF, continue coupled
};

/** A detected divergence. */
struct Divergence
{
    DivergenceVerdict verdict;
    SeqNum survivorSeq;   ///< the diverging coupled instruction
    SeqNum oracleCursor;  ///< cursor for the redirect (0 = wrong path)
    Addr continuation;    ///< where fetch resumes
    bool targetMismatch;  ///< target-queue (vs bitvector) divergence

    /**
     * When the DCF wins over a coupled branch, the machine now
     * believes the DCF's prediction for it: the in-flight instruction
     * must be re-predicted so execute validates against the new
     * belief (and so commit trains the decoupled predictors).
     */
    bool patchSurvivor = false;
    /** The DCF saw the branch in a BTB slot (its history bit was
     *  pushed speculatively). */
    bool patchFromSlot = false;
    /** The DCF record came from a BTB-miss guess block. */
    bool patchFromMiss = false;
    bool patchTaken = false;
    Addr patchTarget = invalidAddr;
    TagePrediction patchTage{};
    IttagePrediction patchIttage{};
};

/** Tracks and compares the two streams. */
class DivergenceTracker
{
  public:
    explicit DivergenceTracker(const DivergenceParams &params = {});

    /** Record a coupled-fetched instruction at decode. */
    void recordCoupled(const DynInst &di);

    /**
     * Record one instruction implied by an arriving FAQ block.
     *
     * @param is_branch The DCF knows a branch is here.
     * @param taken Predicted taken by the DCF.
     * @param kind Branch kind per the BTB.
     * @param next_pc The DCF's next fetch address after this
     *        instruction (target or fall-through).
     * @param tp TAGE prediction payload for conditionals.
     * @param ip ITTAGE prediction payload for indirects.
     */
    void recordDecoupled(bool is_branch, bool taken, BranchKind kind,
                         Addr pc, Addr next_pc,
                         const TagePrediction &tp = {},
                         const IttagePrediction &ip = {});

    /**
     * Consume matching front pairs; report the first mismatch.
     * Matching pairs are popped; a divergence leaves the queues
     * untouched (the caller resets the period).
     *
     * Two streams *diverge* only when their control flow differs:
     * taken disagreement, or taken-target disagreement. A coupled
     * record whose fetcher stalled (no prediction was made) adopts
     * the DCF's prediction without flushing: an adoption patch is
     * appended to @a adoptions and the pair is consumed.
     */
    std::optional<Divergence>
    compare(std::vector<Divergence> &adoptions);

    /** Free space on the coupled side (fetch stalls when exhausted). */
    unsigned coupledSpace() const;

    /** Drop everything (period reset). */
    void reset();

    std::uint64_t bitvectorDivergences() const { return bitvecDivs; }
    std::uint64_t targetDivergences() const { return targetDivs; }

  private:
    struct Record
    {
        bool isBranch = false;
        bool taken = false;
        bool undecided = false; ///< coupled fetch stalled here
        BranchKind kind = BranchKind::None;
        Addr pc = invalidAddr;
        Addr nextPC = invalidAddr;
        SeqNum seq = 0;        ///< coupled side only
        SeqNum oracleIdx = 0;  ///< coupled side only
        bool wrongPath = false;
        TagePrediction tp{};      ///< decoupled side only
        IttagePrediction ip{};    ///< decoupled side only
    };

    unsigned takenCount(const BoundedQueue<Record> &q) const;

    DivergenceParams params;
    // Fixed rings sized to vecEntries: record traffic is constant in
    // steady state, so a deque would churn heap blocks every cycle.
    BoundedQueue<Record> coupled;
    BoundedQueue<Record> decoupled;
    std::uint64_t bitvecDivs = 0;
    std::uint64_t targetDivs = 0;
};

} // namespace elfsim

#endif // ELFSIM_CORE_DIVERGENCE_HH
