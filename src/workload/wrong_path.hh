/**
 * @file
 * Wrong-path instruction supply.
 *
 * When the front-end runs down a mispredicted path it still fetches
 * real instruction bytes. This walker serves StaticInsts for any PC:
 * mapped addresses return the real static instruction; unmapped
 * addresses (e.g. sequential over-fetch past the image) return a
 * fabricated NOP so the fetch path and its I-cache accesses still
 * happen. Wrong-path memory instructions sample deterministic
 * addresses via MemSpec::wrongPathAddress so D-side pollution is
 * modeled without perturbing architectural behaviour state.
 */

#ifndef ELFSIM_WORKLOAD_WRONG_PATH_HH
#define ELFSIM_WORKLOAD_WRONG_PATH_HH

#include <unordered_map>

#include "common/types.hh"
#include "workload/program.hh"

namespace elfsim {

/** Serves static instructions for arbitrary (possibly unmapped) PCs. */
class WrongPathWalker
{
  public:
    explicit WrongPathWalker(const Program &prog) : prog(prog) {}

    /**
     * @return the static instruction at @a pc; a cached fabricated
     * NOP if the address is not part of the program image. Never
     * nullptr for aligned addresses; nullptr for misaligned ones.
     */
    const StaticInst *instAt(Addr pc);

    /** @return true iff @a pc maps to a real program instruction. */
    bool isMapped(Addr pc) const { return prog.contains(pc); }

    /**
     * Address sampled by a wrong-path execution of memory
     * instruction @a si, salted by the dynamic sequence number.
     */
    Addr wrongPathMemAddr(const StaticInst &si, SeqNum salt) const;

  private:
    const Program &prog;
    std::unordered_map<Addr, StaticInst> fabricated;
};

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_WRONG_PATH_HH
