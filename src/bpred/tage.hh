/**
 * @file
 * TAGE conditional branch predictor (Seznec, "A New Case for the TAGE
 * Branch Predictor", MICRO 2011) — the paper's 32KB decoupled
 * conditional predictor (8 tagged tables backed by a bimodal base).
 *
 * History management follows the standard speculative/architectural
 * split: the *speculative* history is pushed at prediction time and
 * is what predict() uses; the *architectural* history is pushed at
 * commit. On a pipeline flush the core restores the speculative
 * history from the architectural one and replays the resolved
 * outcomes of the still-in-flight older branches (the functional
 * equivalent of restoring a checkpoint-queue entry; the checkpoint
 * queue itself is modeled structurally in bpred/checkpoint.hh).
 */

#ifndef ELFSIM_BPRED_TAGE_HH
#define ELFSIM_BPRED_TAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/history.hh"
#include "common/random.hh"
#include "common/sat_counter.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace elfsim {

/** Compile-time cap on tagged tables (sizes prediction arrays). */
constexpr unsigned tageMaxTables = 12;

/** TAGE parameters. Defaults approximate the paper's 32KB budget. */
struct TageParams
{
    unsigned numTables = 8;        ///< tagged tables
    unsigned baseEntriesLog2 = 14; ///< 16K-entry 2-bit bimodal base
    unsigned tableEntriesLog2 = 10;///< 1K entries per tagged table
    unsigned tagBits = 11;
    unsigned ctrBits = 3;
    unsigned minHist = 4;          ///< shortest history length
    unsigned maxHist = 256;        ///< longest history length
    unsigned uResetPeriod = 1 << 18; ///< useful-bit aging period
    std::uint64_t allocSeed = 0xa11c; ///< allocation-RNG seed
};

/**
 * Everything the consumer needs to carry from predict() to update():
 * the prediction itself, the provider components, and the table
 * indices/tags computed with the at-prediction history.
 */
struct TagePrediction
{
    bool taken = false;        ///< final TAGE prediction
    bool baseTaken = false;    ///< bimodal base prediction (the
                               ///< component used on L0 BTB hits)
    int provider = -1;         ///< providing tagged table; -1 = base
    int alt = -1;              ///< alternate provider; -1 = base
    bool altTaken = false;
    bool providerWeak = false; ///< provider counter near midpoint
    bool valid = false;        ///< a real prediction was made
    std::array<std::uint32_t, tageMaxTables> indices{};
    std::array<std::uint32_t, tageMaxTables> tags{};
    std::uint32_t baseIndex = 0;
};

/** The TAGE predictor. */
class Tage
{
  public:
    explicit Tage(const TageParams &params = {});

    /** Predict @a pc with the current speculative history. */
    TagePrediction predict(Addr pc) const { return predictWith(spec, pc); }

    /**
     * Predict @a pc with the architectural history. Used to train on
     * branches that never received a front-end prediction (e.g.
     * branches fetched in ELF coupled mode): on the correct path the
     * architectural history at commit equals the speculative history
     * the front-end would have used.
     */
    TagePrediction
    predictArch(Addr pc) const
    {
        return predictWith(arch, pc);
    }

    /**
     * Speculatively push one history bit (for every predicted
     * conditional with its predicted direction, and 'true' for every
     * taken non-conditional control transfer).
     */
    void pushSpec(Addr pc, bool bit) { push(spec, pc, bit); ++specGen; }

    /** Push the resolved bit into the architectural history. */
    void pushArch(Addr pc, bool bit) { push(arch, pc, bit); ++archGen; }

    /** Restore the speculative history from the architectural one. */
    void resetSpecToArch() { spec = arch; ++specGen; }

    /**
     * Train with the resolved direction. @a pred must be the
     * prediction object produced for this dynamic branch.
     */
    void update(Addr pc, const TagePrediction &pred, bool taken);

    /** Storage cost in bytes. */
    double storageBytes() const;

    /** Serialize the full warm state (tables, histories, RNG). */
    void saveState(Serializer &s) const;

    /** Restore state written by saveState against the same geometry.
     *  Throws ParseError on any layout mismatch. */
    void loadState(Deserializer &d);

    const TageParams &config() const { return params; }

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        SatCounter ctr;
        std::uint8_t useful = 0;
        bool valid = false;
    };

    /** One complete history state (GHR + path + per-table folds). */
    struct HistState
    {
        GlobalHistory ghr{1024};
        std::uint64_t pathHist = 0;
        std::vector<FoldedHistory> indexFold;
        std::vector<FoldedHistory> tagFold0;
        std::vector<FoldedHistory> tagFold1;
    };

    /** Memoized predictWith result for one (history, pc) lookup. */
    struct PredMemo
    {
        Addr pc = invalidAddr;
        std::uint64_t gen = 0;
        TagePrediction pred;
    };

    TagePrediction predictWith(const HistState &h, Addr pc) const;
    void push(HistState &h, Addr pc, bool bit);
    void saveHist(Serializer &s, const HistState &h) const;
    void loadHist(Deserializer &d, HistState &h);
    std::uint32_t tableIndex(const HistState &h, Addr pc,
                             unsigned t) const;
    std::uint16_t tableTag(const HistState &h, Addr pc,
                           unsigned t) const;
    std::uint32_t
    baseIndexOf(Addr pc) const
    {
        return (pc / instBytes) & ((1u << params.baseEntriesLog2) - 1);
    }

    /** Tagged entry t/idx in the flat table-major array. */
    TaggedEntry &
    entry(unsigned t, std::uint32_t idx)
    {
        return tables[(std::size_t(t) << params.tableEntriesLog2) + idx];
    }
    const TaggedEntry &
    entry(unsigned t, std::uint32_t idx) const
    {
        return tables[(std::size_t(t) << params.tableEntriesLog2) + idx];
    }

    TageParams params;
    std::vector<unsigned> histLengths;
    /** All tagged tables, table-major in one contiguous array. */
    std::vector<TaggedEntry> tables;
    std::vector<SatCounter> base;

    HistState spec;
    HistState arch;

    SatCounter useAltOnNA; ///< prefer altpred for weak new entries
    std::uint64_t updateCount = 0;
    mutable Rng allocRng;

    /** Generation counters invalidating the lookup memos whenever the
     *  matching history or any table content changes. */
    std::uint64_t specGen = 1;
    std::uint64_t archGen = 1;
    mutable PredMemo specMemo;
    mutable PredMemo archMemo;
};

} // namespace elfsim

#endif // ELFSIM_BPRED_TAGE_HH
