/**
 * @file
 * Fixed-capacity FIFO queue used for pipeline decoupling structures
 * (FAQ, fetch buffers, checkpoint queues).
 */

#ifndef ELFSIM_COMMON_QUEUE_HH
#define ELFSIM_COMMON_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace elfsim {

/**
 * Bounded circular FIFO. Indexable from front (0 = oldest) to support
 * structures like the FAQ where the fetcher peeks at the head while
 * prefetch scans older-to-younger.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity)
        : buf(capacity), cap(capacity)
    {
        ELFSIM_ASSERT(capacity > 0, "queue capacity must be non-zero");
    }

    bool empty() const { return count == 0; }
    bool full() const { return count == cap; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return cap; }
    std::size_t freeSlots() const { return cap - count; }

    /** Push a new youngest element. Queue must not be full. */
    void
    push(T v)
    {
        ELFSIM_ASSERT(!full(), "push to full queue");
        buf[(head + count) % cap] = std::move(v);
        ++count;
    }

    /** Pop and return the oldest element. Queue must not be empty. */
    T
    pop()
    {
        ELFSIM_ASSERT(!empty(), "pop from empty queue");
        T v = std::move(buf[head]);
        head = (head + 1) % cap;
        --count;
        return v;
    }

    /** Oldest element. */
    T &front() { ELFSIM_ASSERT(!empty(), "front of empty"); return buf[head]; }
    const T &
    front() const
    {
        ELFSIM_ASSERT(!empty(), "front of empty");
        return buf[head];
    }

    /** Youngest element. */
    T &
    back()
    {
        ELFSIM_ASSERT(!empty(), "back of empty");
        return buf[(head + count - 1) % cap];
    }
    const T &
    back() const
    {
        ELFSIM_ASSERT(!empty(), "back of empty");
        return buf[(head + count - 1) % cap];
    }

    /** Element i positions from the front (0 = oldest). */
    T &
    at(std::size_t i)
    {
        ELFSIM_ASSERT(i < count, "queue index out of range");
        return buf[(head + i) % cap];
    }
    const T &
    at(std::size_t i) const
    {
        ELFSIM_ASSERT(i < count, "queue index out of range");
        return buf[(head + i) % cap];
    }

    /**
     * Buffer position of the element @a i positions from the front.
     * Unlike front-relative indices, a buffer position is *stable*
     * for an element's whole residency: pops at the front do not move
     * it. A position is only reused after its element leaves the
     * queue, so holders of a position must re-validate identity (e.g.
     * by sequence number) before trusting the slot.
     */
    std::size_t
    posOf(std::size_t i) const
    {
        ELFSIM_ASSERT(i < count, "queue index out of range");
        return (head + i) % cap;
    }

    /** Direct access by buffer position (see posOf). */
    T &atPos(std::size_t pos) { return buf[pos]; }
    const T &atPos(std::size_t pos) const { return buf[pos]; }

    /**
     * @return true iff buffer position @a pos currently holds a live
     * element. A popped or squashed slot keeps its stale contents, so
     * holders of a stable position must check liveness (plus seq
     * identity) before trusting it.
     */
    bool
    livePos(std::size_t pos) const
    {
        const std::size_t rel = pos >= head ? pos - head
                                            : pos + cap - head;
        return rel < count;
    }

    /** Push a new youngest element and return its buffer position. */
    std::size_t
    pushPos(T v)
    {
        ELFSIM_ASSERT(!full(), "push to full queue");
        const std::size_t pos = (head + count) % cap;
        buf[pos] = std::move(v);
        ++count;
        return pos;
    }

    /** Drop the oldest element without moving it out. */
    void
    dropFront()
    {
        ELFSIM_ASSERT(!empty(), "dropFront on empty queue");
        head = (head + 1) % cap;
        --count;
    }

    /** Visit every element front-to-back without per-step modulo. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        std::size_t pos = head;
        for (std::size_t i = 0; i < count; ++i) {
            fn(buf[pos]);
            if (++pos == cap)
                pos = 0;
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::size_t pos = head;
        for (std::size_t i = 0; i < count; ++i) {
            fn(buf[pos]);
            if (++pos == cap)
                pos = 0;
        }
    }

    /** Visit every element front-to-back as (element, position). */
    template <typename Fn>
    void
    forEachPos(Fn &&fn)
    {
        std::size_t pos = head;
        for (std::size_t i = 0; i < count; ++i) {
            fn(buf[pos], pos);
            if (++pos == cap)
                pos = 0;
        }
    }

    /** Remove all elements. */
    void
    clear()
    {
        head = 0;
        count = 0;
    }

    /** Drop the youngest n elements (used on pipeline squash). */
    void
    popBack(std::size_t n)
    {
        ELFSIM_ASSERT(n <= count, "popBack more than size");
        count -= n;
    }

  private:
    std::vector<T> buf;
    std::size_t cap;
    std::size_t head = 0;
    std::size_t count = 0;
};

/**
 * Binary search a queue whose elements carry an ascending `seq`
 * member (pipeline buffers are filled in fetch order). Replaces the
 * linear scans the fetch-buffer/ROB lookups used to do.
 * @return the element with that seq, or nullptr.
 */
template <typename T, typename Seq>
T *
findSeqInQueue(BoundedQueue<T> &q, Seq seq)
{
    std::size_t lo = 0, hi = q.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (q.at(mid).seq < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < q.size() && q.at(lo).seq == seq)
        return &q.at(lo);
    return nullptr;
}

} // namespace elfsim

#endif // ELFSIM_COMMON_QUEUE_HH
