#include <gtest/gtest.h>

#include "core/coupled_predictors.hh"
#include "sim/core.hh"
#include "workload/builders.hh"

using namespace elfsim;

TEST(Variant, Predicates)
{
    EXPECT_FALSE(isElf(FrontendVariant::NoDcf));
    EXPECT_FALSE(isElf(FrontendVariant::Dcf));
    EXPECT_TRUE(isElf(FrontendVariant::LElf));
    EXPECT_TRUE(isElf(FrontendVariant::UElf));

    EXPECT_TRUE(hasCoupledRas(FrontendVariant::RetElf));
    EXPECT_TRUE(hasCoupledRas(FrontendVariant::UElf));
    EXPECT_FALSE(hasCoupledRas(FrontendVariant::CondElf));
    EXPECT_FALSE(hasCoupledRas(FrontendVariant::LElf));

    EXPECT_TRUE(hasCoupledBtc(FrontendVariant::IndElf));
    EXPECT_FALSE(hasCoupledBtc(FrontendVariant::RetElf));
    EXPECT_TRUE(hasCoupledBimodal(FrontendVariant::CondElf));
    EXPECT_FALSE(hasCoupledBimodal(FrontendVariant::IndElf));
}

TEST(CoupledPredictors, StorageUnderTwoKb)
{
    // Paper Table II: the total storage cost of U-ELF's coupled
    // predictors is smaller than 2KB.
    CoupledPredictors cp;
    EXPECT_LT(cp.storageBytes(), 2048.0);
}

TEST(CoupledPredictors, TrainsOnlyCoupledModeBranches)
{
    CoupledPredictors cp;
    const Addr pc = 0x400100;
    for (int i = 0; i < 8; ++i) {
        cp.trainCommit(pc, BranchKind::CondDirect, true, 0x500000,
                       FetchMode::Decoupled);
    }
    EXPECT_FALSE(cp.bimodal().saturated(pc) && cp.bimodal().predict(pc))
        << "decoupled-mode commits must not train the coupled bimodal";
    for (int i = 0; i < 8; ++i) {
        cp.trainCommit(pc, BranchKind::CondDirect, true, 0x500000,
                       FetchMode::Coupled);
    }
    EXPECT_TRUE(cp.bimodal().predict(pc));
}

TEST(ElfCoupledPolicy, CondRequiresSaturation)
{
    CoupledPredictors cp;
    ElfCoupledPolicy pol(FrontendVariant::CondElf, cp);
    StaticInst si;
    si.pc = 0x400200;
    si.cls = InstClass::Branch;
    si.branch = BranchKind::CondDirect;
    si.directTarget = 0x500000;
    DynInst di;
    di.si = &si;

    // Unsaturated counter: no speculation.
    cp.bimodal().update(si.pc, true);
    EXPECT_FALSE(pol.predictCond(di));

    for (int i = 0; i < 8; ++i)
        cp.bimodal().update(si.pc, true);
    EXPECT_TRUE(pol.predictCond(di));
    EXPECT_TRUE(di.predTaken);
    EXPECT_EQ(di.predTarget, 0x500000u);
}

TEST(ElfCoupledPolicy, VariantGatesEachPredictor)
{
    CoupledPredictors cp;
    cp.ras().push(0xabcd);
    cp.btc().update(0x400300, 0x600000);
    for (int i = 0; i < 8; ++i)
        cp.bimodal().update(0x400400, true);

    StaticInst ret;
    ret.pc = 0x400310;
    ret.cls = InstClass::Branch;
    ret.branch = BranchKind::Return;
    StaticInst ind;
    ind.pc = 0x400300;
    ind.cls = InstClass::Branch;
    ind.branch = BranchKind::IndirectJump;

    DynInst di;
    di.si = &ret;
    ElfCoupledPolicy retPol(FrontendVariant::RetElf, cp);
    EXPECT_TRUE(retPol.predictReturn(di));
    EXPECT_EQ(di.predTarget, 0xabcdu);
    DynInst di2;
    di2.si = &ind;
    EXPECT_FALSE(retPol.predictIndirect(di2));

    ElfCoupledPolicy indPol(FrontendVariant::IndElf, cp);
    DynInst di3;
    di3.si = &ind;
    EXPECT_TRUE(indPol.predictIndirect(di3));
    EXPECT_EQ(di3.predTarget, 0x600000u);
    DynInst di4;
    di4.si = &ret;
    EXPECT_FALSE(indPol.predictReturn(di4));
}

TEST(ElfController, ModeResidencyAndResync)
{
    // A predictable loop: periods should be rare (few flushes) and
    // short; decoupled mode dominates.
    Program p = microSequentialLoop(30, 16);
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    Core core(cfg, p);
    core.run(60000);
    const ElfStats &st = core.elf().stats();
    EXPECT_GT(st.decoupledCycles, 5 * st.coupledCycles);
    // Every completed period ends with a resynchronization (the run
    // may stop mid-period).
    EXPECT_GE(st.coupledPeriods, st.switches);
    EXPECT_LE(st.coupledPeriods, st.switches + 1);
}

TEST(ElfController, StallsWithoutPredictorsResyncViaFaq)
{
    // Random branches force flushes; L-ELF must stall at each cond
    // and resynchronize through the FAQ counts.
    Program p = microRandomBranchLoop(8, 0.4);
    SimConfig cfg = makeConfig(FrontendVariant::LElf);
    Core core(cfg, p);
    core.run(60000);
    const ElfStats &st = core.elf().stats();
    EXPECT_GT(st.coupledPeriods, 100u);
    EXPECT_GT(core.elf().coupledEngine().stats().controlStalls, 100u);
    EXPECT_GT(st.switches, 100u);
    // The measurement must match DCF's committed behaviour.
    EXPECT_GT(core.committed(), 59999u);
}

TEST(ElfController, CheckpointPayloadsEventuallyFill)
{
    Program p = microRandomBranchLoop(8, 0.4);
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    Core core(cfg, p);
    core.run(60000);
    // Flushes held for pending payloads must be bounded (they fill at
    // resync or the branch reaches the ROB head).
    EXPECT_LT(core.stats().pendingFlushWaits, core.cycles() / 10);
}
