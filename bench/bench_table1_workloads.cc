/**
 * @file
 * Table I equivalent: the workload catalog, with the generator knobs
 * and static characteristics of each synthetic proxy.
 */

#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::warnNoExport(opt, "this bench lists the static catalog; "
                             "it runs no simulations");
    bench::banner("Table I — Applications used in the evaluation",
                  "Synthetic proxies standing in for SPEC2K6/SPEC2K17 "
                  "simpoints and the proprietary server suites");

    std::string suite;
    for (const WorkloadSpec &w : workloadCatalog()) {
        if (w.suite != suite) {
            suite = w.suite;
            std::printf("\n[%s]\n", suite.c_str());
        }
        Program p = buildWorkload(w);
        std::printf("  %-18s code=%5lluKB data=%6lluKB  %s\n",
                    w.name.c_str(),
                    (unsigned long long)(p.footprintBytes() / 1024),
                    (unsigned long long)(w.params.dataFootprint / 1024),
                    w.notes.c_str());
    }
    return 0;
}
