#include "sim/report.hh"

#include <iomanip>

namespace elfsim {

namespace {

void
row(std::ostream &os, const char *name, double value,
    const char *unit = "")
{
    os << "  " << std::left << std::setw(34) << name << std::right
       << std::setw(14) << std::fixed << std::setprecision(3) << value
       << " " << unit << "\n";
}

void
rowu(std::ostream &os, const char *name, std::uint64_t value,
     const char *unit = "")
{
    os << "  " << std::left << std::setw(34) << name << std::right
       << std::setw(14) << value << " " << unit << "\n";
}

} // namespace

void
printSummary(std::ostream &os, const Core &core)
{
    const auto &be = core.backend().stats();
    const double insts = double(be.committed);
    const double kilo = insts / 1000.0;

    os << "=== run summary (" << variantName(core.config().variant)
       << ") ===\n";
    rowu(os, "cycles", core.cycles());
    rowu(os, "instructions", be.committed);
    row(os, "IPC", core.cycles() ? insts / double(core.cycles()) : 0);
    row(os, "branch MPKI",
        kilo > 0 ? (be.condMispredicts + be.targetMispredicts) / kilo
                 : 0);
    rowu(os, "mispredict flushes", core.stats().execFlushes);
    rowu(os, "memory-order flushes", core.stats().memOrderFlushes);
    rowu(os, "decode resteers", core.stats().decodeResteers);
    row(os, "redirect->fetch latency",
        core.stats().avgRedirectToFetch(), "cycles");

    if (isElf(core.config().variant)) {
        const ElfStats &elf = core.elf().stats();
        rowu(os, "coupled periods", elf.coupledPeriods);
        row(os, "insts/coupled period",
            elf.avgCoupledInstsPerPeriod());
        rowu(os, "divergence flushes", elf.divergenceFlushes);
        rowu(os, "payload-held flushes",
             core.stats().pendingFlushWaits);
        rowu(os, "stall resteers", core.stats().stallResteers);
    }
}

void
printFullReport(std::ostream &os, const Core &core)
{
    printSummary(os, core);

    os << "\n=== front end ===\n";
    if (core.config().variant != FrontendVariant::NoDcf) {
        const DcfStats &d = core.elf().dcf().stats();
        rowu(os, "dcf blocks generated", d.blocks);
        rowu(os, "dcf btb-miss blocks", d.btbMissBlocks);
        rowu(os, "dcf taken blocks", d.takenBlocks);
        rowu(os, "dcf bubble cycles", d.bubbleCycles);
        rowu(os, "  .. bimodal overrides", d.bubblesBimodalOverride);
        rowu(os, "  .. bp2 taken resteers", d.bubblesBp2Taken);
        rowu(os, "  .. short-entry proxies", d.bubblesShortEntry);
        rowu(os, "  .. ittage accesses", d.bubblesIndirectL1);
        rowu(os, "  .. l2-btb access", d.bubblesAccess);
        rowu(os, "dcf restarts", d.restarts);
        const FetchStats &f = core.elf().decoupledEngine().stats();
        rowu(os, "fetched (decoupled)", f.insts);
        rowu(os, "  .. wrong path", f.wrongPathInsts);
        rowu(os, "faq-empty cycles", f.faqEmptyCycles);
        rowu(os, "icache-stall cycles", f.icacheStallCycles);
        rowu(os, "taken cross-fetches", f.takenCrossFetches);
    }
    {
        const CoupledStats &c = core.elf().coupledEngine().stats();
        if (c.insts) {
            rowu(os, "fetched (coupled)", c.insts);
            rowu(os, "  .. wrong path", c.wrongPathInsts);
            rowu(os, "coupled control stalls", c.controlStalls);
            rowu(os, "  .. at conditionals", c.stallsCond);
            rowu(os, "  .. at returns", c.stallsReturn);
            rowu(os, "  .. at indirects", c.stallsIndirect);
            rowu(os, "coupled taken bubbles", c.takenBubbleCycles);
        }
    }
    {
        const DecodeStats &d = core.decode().stats();
        rowu(os, "decoded", d.insts);
        rowu(os, "misfetch recoveries", d.resteers);
        rowu(os, "  .. unconditional", d.resteerUncond);
        rowu(os, "  .. conditional", d.resteerCond);
        rowu(os, "  .. return", d.resteerReturn);
        rowu(os, "  .. indirect", d.resteerIndirect);
    }

    os << "\n=== btb ===\n";
    rowu(os, "lookups", core.btb().lookups());
    row(os, "cumulative hit L0", 100 * core.btb().cumulativeHitRate(0),
        "%");
    row(os, "cumulative hit L1", 100 * core.btb().cumulativeHitRate(1),
        "%");
    row(os, "cumulative hit L2", 100 * core.btb().cumulativeHitRate(2),
        "%");
    rowu(os, "entries established", core.btbBuilder().establishments());
    rowu(os, "amendments (splits)", core.btbBuilder().amendments());

    os << "\n=== memory hierarchy ===\n";
    core.memory().dumpStats(os);

    os << "\n=== back end ===\n";
    const auto &b = core.backend().stats();
    rowu(os, "committed branches", b.committedBranches);
    rowu(os, "cond mispredicts", b.condMispredicts);
    rowu(os, "target mispredicts", b.targetMispredicts);
    rowu(os, "coupled-mode committed", b.coupledCommitted);
    rowu(os, "rob-full cycles", b.robFullCycles);
}

} // namespace elfsim
