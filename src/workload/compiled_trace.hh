/**
 * @file
 * Compiled architectural-trace artifact.
 *
 * A CompiledTrace materializes the first N instructions of a
 * workload's dynamic stream — the exact sequence OracleStream would
 * generate lazily — into a flat, index-addressable structure-of-arrays
 * buffer: static-instruction index, taken bitset, next PC, and bound
 * memory address. Building it costs one pass of the shared OracleGen
 * kernel; afterwards every simulation cell of a sweep (and every bench
 * in a campaign, via the on-disk TraceCache) reads the same immutable
 * buffer instead of re-evaluating conditional-outcome specs, indirect
 * target specs, and memory hash chains per instruction per cell.
 *
 * The trace also records the generator state *after* instruction N
 * (PC, call stack, spec instance counters) so a consumer that runs
 * past the compiled prefix resumes lazy generation seamlessly — the
 * compiled and lazy streams are indistinguishable at every index.
 *
 * Besides the per-instruction arrays, compilation derives three
 * *warming side tables* — flat event lists the batch warming kernel
 * (sim/warm_kernel.cc) iterates instead of walking every instruction:
 *
 *   - branch events: one entry per instruction with a branch kind
 *     (taken or not), carrying position, PC, kind + resolved
 *     direction, and the architectural next PC (the commit-training
 *     target);
 *   - runs: maximal sequential regions. A run starts at position 0
 *     and at the target of every taken transfer; within a run the PC
 *     advances by instBytes per instruction, so I-cache line
 *     transitions are pure arithmetic over (runPC, runPos);
 *   - memory events: one entry per memory instruction, carrying
 *     position, PC, bound address, and a packed is-store bitset.
 *
 * On-disk format ("elfsim-trace-v2", native-endian, 8-byte words):
 *
 *   char     magic[16]   "elfsim-trace-v2\0"
 *   u64      key         content hash (program image + behaviour
 *                        specs + instruction count); the key salt is
 *                        frozen at the v1 format string — see key()
 *   u64      count       compiled instructions
 *   u64      callDepth, condN, indN, memN   end-state array lengths
 *   u64      endPC       generator PC after instruction count
 *   u64      nBranch, nRun, nMem            side-table lengths
 *   u64      checksum    FNV-1a of the other header scalars plus
 *                        every section byte after this field
 *   u64[]    callStack, condCount, indCount, memCount  (end state)
 *   u64[]    takenWords  ceil(count / 64) packed outcome bits
 *   u64[]    nextPC      count entries
 *   u64[]    memAddr     count entries (invalidAddr for non-mem ops)
 *   u64[]    branchPC    nBranch entries
 *   u64[]    branchTarget nBranch entries (architectural next PC)
 *   u64[]    runPC       nRun entries (PC at each run start)
 *   u64[]    memPC       nMem entries
 *   u64[]    memEvAddr   nMem entries (bound address per mem event)
 *   u64[]    storeWords  ceil(nMem / 64) packed is-store bits
 *   u32[]    siIdx       count entries (index into the program image)
 *   u32[]    branchPos   nBranch entries (stream positions, ascending)
 *   u32[]    runPos      nRun entries (run start positions, ascending)
 *   u32[]    memPos      nMem entries (stream positions, ascending)
 *   u8[]     branchKind  nBranch entries: BranchKind in the low bits,
 *                        resolved taken direction in bit 7
 *
 * All u64 sections precede the u32 sections, which precede the u8
 * section, so every view is naturally aligned off the 8-aligned
 * header. The file size is fully determined by the header, so
 * truncation is detected before the checksum is even computed; a bad
 * magic (including a stale v1 artifact), a stale key, a size
 * mismatch, or a checksum mismatch all raise ParseError, which the
 * TraceCache treats as "recompile", never as a failed cell — a v1
 * file transparently recompiles into a v2 file at the same path.
 */

#ifndef ELFSIM_WORKLOAD_COMPILED_TRACE_HH
#define ELFSIM_WORKLOAD_COMPILED_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workload/oracle_stream.hh"
#include "workload/program.hh"

namespace elfsim {

/** Immutable compiled prefix of a workload's architectural stream. */
class CompiledTrace
{
  public:
    /** Run the generation kernel for @a count instructions of
     *  @a prog and materialize the results. */
    static std::shared_ptr<const CompiledTrace>
    compile(const Program &prog, InstCount count);

    /**
     * Content hash identifying a (program, instruction count) pair:
     * the static image, every behaviour spec, the entry point, and
     * the requested length. Two programs with identical content share
     * a key (and therefore a cache file) regardless of their names or
     * addresses in memory.
     *
     * The hash is salted with the *original* "elfsim-trace-v1" format
     * string, frozen independently of the file magic: the key names
     * the stream content, not the container layout, and warm-state
     * checkpoint keys (CheckpointStore::key) derive from it — bumping
     * the salt with the container would orphan every elfsim-ckpt-v1
     * artifact for no semantic change. Container-format staleness is
     * caught by the file magic instead.
     */
    static std::uint64_t key(const Program &prog, InstCount count);

    /** Compiled instructions. */
    InstCount size() const { return count_; }

    /** The content hash this trace was compiled (or loaded) under. */
    std::uint64_t cacheKey() const { return key_; }

    // 0-based accessors into the flat buffers (index < size()).
    std::uint32_t siIndex(InstCount i) const { return siIdx_[i]; }
    bool
    taken(InstCount i) const
    {
        return (takenWords_[i >> 6] >> (i & 63)) & 1;
    }
    Addr nextPC(InstCount i) const { return nextPC_[i]; }
    Addr memAddr(InstCount i) const { return memAddr_[i]; }

    /** Generator state after the last compiled instruction (lazy-tail
     *  resume point). */
    const OracleGen &endState() const { return end_; }

    // --- warming side tables (see the file comment) ------------------

    /** Branch events (every instruction whose kind != None). */
    InstCount numBranchEvents() const { return nBranch_; }
    InstCount branchPos(InstCount j) const { return branchPos_[j]; }
    Addr branchPC(InstCount j) const { return branchPC_[j]; }
    Addr branchTarget(InstCount j) const { return branchTarget_[j]; }
    BranchKind
    branchKind(InstCount j) const
    {
        return BranchKind(branchKind_[j] & 0x7f);
    }
    bool branchTaken(InstCount j) const { return branchKind_[j] >> 7; }

    /** Sequential runs delimited by taken transfers. */
    InstCount numRuns() const { return nRun_; }
    InstCount runPos(InstCount j) const { return runPos_[j]; }
    Addr runPC(InstCount j) const { return runPC_[j]; }

    /** Memory events (every memory instruction). */
    InstCount numMemEvents() const { return nMem_; }
    InstCount memPos(InstCount j) const { return memPos_[j]; }
    Addr memPC(InstCount j) const { return memPC_[j]; }
    Addr memEvAddr(InstCount j) const { return memEvAddr_[j]; }
    bool
    memIsStore(InstCount j) const
    {
        return (storeWords_[j >> 6] >> (j & 63)) & 1;
    }

    /** Index of the first branch event at position >= @a pos. */
    InstCount firstBranchAtOrAfter(InstCount pos) const;
    /** Index of the first memory event at position >= @a pos. */
    InstCount firstMemAtOrAfter(InstCount pos) const;
    /** Index of the run containing position @a pos (pos < size()). */
    InstCount runContaining(InstCount pos) const;

    /** Size of the instruction arrays in bytes (stat reporting). */
    std::size_t payloadBytes() const;

    /** Bytes served by a file mapping (0 for compiled/heap-loaded). */
    std::size_t mappedBytes() const { return mappedBytes_; }

    /**
     * Write the trace to @a path atomically (temp file + rename), so
     * concurrent processes sharing one cache directory never observe
     * a torn file. Throws IoError on filesystem failure.
     */
    void save(const std::string &path) const;

    /**
     * The complete elfsim-trace-v2 image (header + sections) as a
     * byte buffer — exactly the bytes save() writes. This is how the
     * distributed coordinator ships a compiled trace to its workers:
     * the wire payload carries the same magic / key / size / checksum
     * envelope as the on-disk cache, so the receiver validates it
     * with the same gate.
     */
    std::vector<char> serialized() const;

    /**
     * Load a trace from @a path, mmap when possible (falling back to
     * a plain read), verifying magic, version, size, checksum, and
     * that the stored key equals @a expect_key. Throws ParseError on
     * any mismatch or corruption, IoError if the file cannot be read.
     */
    static std::shared_ptr<const CompiledTrace>
    load(const std::string &path, std::uint64_t expect_key);

    /**
     * Rebuild a trace from an in-memory elfsim-trace-v2 image (the
     * receive side of serialized()), with the same magic / key / size
     * / checksum validation as load(). @a what names the image in
     * error messages. Throws ParseError on any defect.
     */
    static std::shared_ptr<const CompiledTrace>
    loadBytes(std::vector<char> image, std::uint64_t expect_key,
              const std::string &what);

    CompiledTrace(const CompiledTrace &) = delete;
    CompiledTrace &operator=(const CompiledTrace &) = delete;

  private:
    CompiledTrace() = default;

    /** Validate + adopt one complete elfsim-trace-v2 image (shared by
     *  the file and in-memory load paths); @a backing keeps @a data
     *  alive for the views, @a what names the image in errors. */
    static std::shared_ptr<const CompiledTrace>
    parseImage(const char *data, std::size_t size,
               std::uint64_t expect_key, const std::string &what,
               std::shared_ptr<void> backing, std::size_t mapped_bytes);

    InstCount count_ = 0;
    std::uint64_t key_ = 0;
    OracleGen end_;

    InstCount nBranch_ = 0;
    InstCount nRun_ = 0;
    InstCount nMem_ = 0;

    // Array views: into the owned vectors after compile(), into the
    // backing file (or its heap copy) after load().
    const std::uint64_t *takenWords_ = nullptr;
    const Addr *nextPC_ = nullptr;
    const Addr *memAddr_ = nullptr;
    const std::uint32_t *siIdx_ = nullptr;

    const Addr *branchPC_ = nullptr;
    const Addr *branchTarget_ = nullptr;
    const Addr *runPC_ = nullptr;
    const Addr *memPC_ = nullptr;
    const Addr *memEvAddr_ = nullptr;
    const std::uint64_t *storeWords_ = nullptr;
    const std::uint32_t *branchPos_ = nullptr;
    const std::uint32_t *runPos_ = nullptr;
    const std::uint32_t *memPos_ = nullptr;
    const std::uint8_t *branchKind_ = nullptr;

    std::vector<std::uint64_t> ownTaken_;
    std::vector<Addr> ownNextPC_;
    std::vector<Addr> ownMemAddr_;
    std::vector<std::uint32_t> ownSiIdx_;

    std::vector<Addr> ownBranchPC_;
    std::vector<Addr> ownBranchTarget_;
    std::vector<Addr> ownRunPC_;
    std::vector<Addr> ownMemPC_;
    std::vector<Addr> ownMemEvAddr_;
    std::vector<std::uint64_t> ownStoreWords_;
    std::vector<std::uint32_t> ownBranchPos_;
    std::vector<std::uint32_t> ownRunPos_;
    std::vector<std::uint32_t> ownMemPos_;
    std::vector<std::uint8_t> ownBranchKind_;

    /** Keeps a file mapping (or heap image) alive for the views. */
    std::shared_ptr<void> backing_;
    std::size_t mappedBytes_ = 0;
};

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_COMPILED_TRACE_HH
