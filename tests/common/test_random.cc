#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "common/random.hh"

using namespace elfsim;

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5; loose bound.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Mix64, DistinctInputsDistinctOutputs)
{
    // Sanity: no collisions among a small grid.
    std::set<std::uint64_t> seen;
    for (std::uint64_t a = 0; a < 50; ++a) {
        for (std::uint64_t b = 0; b < 50; ++b)
            seen.insert(mix64(a, b));
    }
    EXPECT_EQ(seen.size(), 2500u);
}
