/**
 * @file
 * Architectural (committed-path) instruction stream generator.
 *
 * The OracleStream produces the dynamic instruction stream the program
 * will actually commit, in program order, binding branch outcomes,
 * branch targets, and memory addresses from the behaviour specs. It
 * keeps a window from the oldest uncommitted instruction to the newest
 * generated one so that pipeline flushes can *replay* already-generated
 * instructions deterministically — the generator state never needs to
 * rewind.
 *
 * Instructions come from one of two backing stores:
 *
 *   - the lazy generator (OracleGen): spec evaluation per instruction,
 *     exactly as the window fills — the reference path;
 *   - a CompiledTrace (workload/compiled_trace.hh): the same stream
 *     materialized once into a flat immutable buffer and shared
 *     read-only by every core simulating the same workload. The hot
 *     path becomes linear reads; past the end of the trace the stream
 *     resumes the lazy generator from the trace's saved end state, so
 *     the two stores are indistinguishable to the consumer.
 *
 * The front-end walks this stream while on the correct path; when a
 * prediction disagrees with the oracle outcome the front-end keeps
 * fetching real wrong-path instructions from the static image (see
 * WrongPathWalker) until the branch resolves in the back-end.
 */

#ifndef ELFSIM_WORKLOAD_ORACLE_STREAM_HH
#define ELFSIM_WORKLOAD_ORACLE_STREAM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/queue.hh"
#include "common/types.hh"
#include "workload/program.hh"

namespace elfsim {

class CompiledTrace;

/** One architectural dynamic instruction. */
struct OracleInst
{
    const StaticInst *si = nullptr;
    /** Branch outcome (true for all taken control transfers). */
    bool taken = false;
    /** Architectural next PC (fall-through or actual target). */
    Addr nextPC = invalidAddr;
    /** Bound memory address (invalidAddr for non-memory ops). */
    Addr memAddr = invalidAddr;
};

/**
 * Resumable architectural-stream generator state: the PC, the call
 * stack, and the per-spec execution-instance counters. step() advances
 * exactly one instruction. This is the single generation kernel —
 * OracleStream's lazy path and CompiledTrace::compile both run it, so
 * a compiled trace is identical to the lazy stream by construction.
 */
struct OracleGen
{
    Addr pc = invalidAddr;
    std::vector<Addr> callStack;
    std::vector<std::uint64_t> condCount;
    std::vector<std::uint64_t> indCount;
    std::vector<std::uint64_t> memCount;

    /** Reset to @a prog's entry with zeroed instance counters. */
    void reset(const Program &prog);

    /** Generate the next architectural instruction and advance. */
    OracleInst step(const Program &prog);

    /** Serialize the resume state (checkpoint artifacts). */
    template <class S>
    void
    saveState(S &s) const
    {
        s.u64(pc);
        s.u64Vec(callStack);
        s.u64Vec(condCount);
        s.u64Vec(indCount);
        s.u64Vec(memCount);
    }

    template <class D>
    void
    loadState(D &d)
    {
        pc = d.u64();
        callStack = d.u64Vec(maxCallDepth);
        callStack.reserve(maxCallDepth);
        condCount = d.u64Vec();
        indCount = d.u64Vec();
        memCount = d.u64Vec();
    }

    static constexpr std::size_t maxCallDepth = 4096;
};

/** Default in-flight window guard (see OracleStream constructor). */
constexpr std::size_t defaultOracleWindowCap = 1u << 16;

/** Replayable architectural instruction window. */
class OracleStream
{
  public:
    /**
     * @param prog Program to execute.
     * @param window_cap Maximum in-flight (uncommitted) window; a
     *        guard against callers forgetting to retire.
     * @param trace Optional compiled backing store for @a prog (same
     *        program content); null generates lazily. The trace is
     *        shared read-only and must cover a prefix of the stream —
     *        beyond its end the stream continues lazily from the
     *        trace's saved generator state.
     */
    explicit OracleStream(
        const Program &prog,
        std::size_t window_cap = defaultOracleWindowCap,
        std::shared_ptr<const CompiledTrace> trace = nullptr);

    ~OracleStream();

    /**
     * Architectural instruction at 1-based index @a idx. Generates
     * forward as needed. @a idx must not be older than the oldest
     * unretired instruction.
     */
    const OracleInst &at(SeqNum idx);

    /** PC of the instruction at @a idx. */
    Addr
    pcAt(SeqNum idx)
    {
        return at(idx).si->pc;
    }

    /** Oldest unretired architectural index. */
    SeqNum oldest() const { return baseIdx; }

    /** Newest generated architectural index (0 if none yet). */
    SeqNum newest() const { return baseIdx + window.size() - 1; }

    /** Retire (drop) all instructions with index <= @a idx. */
    void retireUpTo(SeqNum idx);

    /**
     * Reposition the stream so the next instruction served is the
     * 1-based index @a next_idx. Requires an empty in-flight window
     * and a position covered by the compiled prefix (or position 0).
     */
    void seekTo(SeqNum next_idx);

    /**
     * Reposition to @a next_idx resuming lazy generation from
     * @a state (a checkpointed OracleGen). Inside the compiled prefix
     * the arrays stay authoritative and @a state is ignored.
     */
    void seekTo(SeqNum next_idx, const OracleGen &state);

    /** 0-based position of the next instruction to generate. */
    InstCount genPosition() const { return genCursor; }

    /** True iff the in-flight window is empty (safe to seek). */
    bool windowEmpty() const { return window.empty(); }

    /** True iff genState() is live at genPosition() — the lazy
     *  generator is active (no trace, or the tail was adopted). */
    bool genStateKnown() const { return !trace || tailAdopted; }

    /** The lazy generator's resume state (see genStateKnown()). */
    const OracleGen &genState() const { return gen; }

    /** The program being executed. */
    const Program &program() const { return prog; }

    /** The compiled backing store, or null when fully lazy. */
    const CompiledTrace *backingTrace() const { return trace.get(); }

  private:
    void generateOne();

    const Program &prog;
    std::size_t windowCap;
    /** Ring buffer of the in-flight window (no steady-state heap). */
    BoundedQueue<OracleInst> window;
    SeqNum baseIdx = 1;

    /** Compiled prefix shared across cores (may be null). */
    std::shared_ptr<const CompiledTrace> trace;
    /** 0-based index of the next instruction to generate. */
    InstCount genCursor = 0;
    /** Lazy generator: the whole stream when trace is null, the tail
     *  past the compiled prefix otherwise. */
    OracleGen gen;
    /** Has gen adopted the trace's end state for the tail? */
    bool tailAdopted = false;
};

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_ORACLE_STREAM_HH
