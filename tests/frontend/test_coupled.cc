#include <gtest/gtest.h>

#include "core/coupled_predictors.hh"
#include "frontend/coupled.hh"
#include "frontend/supply.hh"
#include "workload/builders.hh"
#include "workload/oracle_stream.hh"
#include "workload/wrong_path.hh"

using namespace elfsim;

namespace {

struct Rig
{
    Program prog;
    OracleStream oracle;
    WrongPathWalker walker;
    InstSupply supply;
    MemHierarchy mem;
    CheckpointQueue ckpts;
    CoupledPredictors preds;
    ElfCoupledPolicy policy;
    FetchParams params{};
    CoupledFetchEngine eng;

    Rig(Program p, FrontendVariant v)
        : prog(std::move(p)), oracle(prog), walker(prog),
          supply(oracle, walker), mem(), ckpts(512), preds(),
          policy(v, preds), eng(params, mem, supply, ckpts, policy)
    {
        // Warm the first lines so fetch is not I-cache-stalled.
        mem.prefetchInst(prog.entryPC(), 0);
        mem.prefetchInst(prog.entryPC() + 64, 0);
        mem.prefetchInst(prog.entryPC() + 128, 0);
    }
};

} // namespace

TEST(CoupledEngine, FetchesSequentialUntilDecision)
{
    // L-ELF: pure sequential run ending at the loop conditional.
    Rig r(microSequentialLoop(20, 8), FrontendVariant::LElf);
    r.eng.start(r.prog.entryPC(), 399);
    FetchBundle out;
    for (Cycle c = 400; c < 410 && !r.eng.stalledOnControl(); ++c)
        r.eng.tick(c, out);
    ASSERT_TRUE(r.eng.stalledOnControl());
    // 20 filler + the conditional = 21 instructions fetched.
    EXPECT_EQ(out.size(), 21u);
    EXPECT_TRUE(out.back().fetchStalled);
    EXPECT_FALSE(out.back().hasPrediction);
}

TEST(CoupledEngine, FollowsUnconditionalsWithBubble)
{
    // A taken chain: every block's jump is followed at fetch with the
    // 1-cycle taken penalty, so throughput is ~blockLen+1 insts per
    // 2 cycles.
    Rig r(microTakenChain(4, 6), FrontendVariant::LElf);
    for (unsigned i = 0; i < 4; ++i)
        r.mem.prefetchInst(r.prog.entryPC() + 64 * i, 0);
    r.eng.start(r.prog.entryPC(), 399);
    FetchBundle out;
    for (Cycle c = 400; c < 420; ++c)
        r.eng.tick(c, out);
    EXPECT_FALSE(r.eng.stalledOnControl());
    EXPECT_GT(out.size(), 20u);
    // Every 7th instruction is the followed jump.
    EXPECT_TRUE(out[6].isBranch());
    EXPECT_TRUE(out[6].hasPrediction);
    EXPECT_TRUE(out[6].predTaken);
    EXPECT_GT(r.eng.stats().takenBubbleCycles, 0u);
}

TEST(CoupledEngine, UElfSpeculatesPastSaturatedCond)
{
    Rig r(microSequentialLoop(20, 8), FrontendVariant::UElf);
    // Saturate the coupled bimodal for the loop conditional.
    const StaticInst *cond = nullptr;
    for (const StaticInst &si : r.prog.instructions()) {
        if (si.branch == BranchKind::CondDirect)
            cond = &si;
    }
    ASSERT_NE(cond, nullptr);
    for (int i = 0; i < 8; ++i)
        r.preds.bimodal().update(cond->pc, true);

    r.eng.start(r.prog.entryPC(), 399);
    FetchBundle out;
    for (Cycle c = 400; c < 412; ++c)
        r.eng.tick(c, out);
    EXPECT_FALSE(r.eng.stalledOnControl());
    EXPECT_GT(out.size(), 21u) << "must speculate past the loop cond";
}

TEST(CoupledEngine, ChecksStallOnReturnWithoutRas)
{
    Rig r(microRecursion(6, 4), FrontendVariant::CondElf);
    r.eng.start(r.prog.entryPC(), 399);
    FetchBundle out;
    for (Cycle c = 400; c < 430 && !r.eng.stalledOnControl(); ++c)
        r.eng.tick(c, out);
    // COND-ELF has no RAS: the first return (or the recursion guard
    // before bimodal saturation) must stall the engine.
    EXPECT_TRUE(r.eng.stalledOnControl());
}

TEST(CoupledEngine, StopDeactivates)
{
    Rig r(microSequentialLoop(20, 8), FrontendVariant::LElf);
    r.eng.start(r.prog.entryPC(), 399);
    FetchBundle out;
    r.eng.tick(400, out);
    r.eng.stop();
    EXPECT_FALSE(r.eng.active());
    const auto sz = out.size();
    r.eng.tick(401, out);
    EXPECT_EQ(out.size(), sz);
}

TEST(CoupledEngine, ResumeAtClearsStall)
{
    Rig r(microSequentialLoop(20, 8), FrontendVariant::LElf);
    r.eng.start(r.prog.entryPC(), 399);
    FetchBundle out;
    for (Cycle c = 400; c < 410 && !r.eng.stalledOnControl(); ++c)
        r.eng.tick(c, out);
    ASSERT_TRUE(r.eng.stalledOnControl());
    r.eng.resumeAt(r.prog.entryPC(), 420);
    EXPECT_FALSE(r.eng.stalledOnControl());
    const auto sz = out.size();
    r.eng.tick(421, out);
    EXPECT_GT(out.size(), sz);
}

TEST(CoupledEngine, BranchesClaimPendingCheckpoints)
{
    Rig r(microTakenChain(4, 6), FrontendVariant::LElf);
    r.eng.start(r.prog.entryPC(), 399);
    FetchBundle out;
    r.eng.tick(400, out);
    bool sawBranch = false;
    for (const DynInst &di : out) {
        if (di.isBranch()) {
            sawBranch = true;
            EXPECT_NE(di.checkpointId, noCheckpoint);
            EXPECT_FALSE(r.ckpts.payloadReady(di.checkpointId))
                << "coupled checkpoints start payload-pending";
        }
    }
    EXPECT_TRUE(sawBranch);
}
