#include "dist/coordinator.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/logging.hh"
#include "core/variant.hh"
#include "dist/ledger.hh"
#include "dist/wire.hh"
#include "service/http.hh"
#include "sim/export.hh"
#include "sim/sweep.hh"
#include "workload/checkpoint_store.hh"
#include "workload/compiled_trace.hh"
#include "workload/trace_cache.hh"

namespace elfsim {
namespace dist {

namespace {

/** Zeroed result for a cell the fleet could not complete — the same
 *  keep-going degradation SweepRunner applies to a crashing cell. */
RunResult
abandonedResult(const SweepJob &job, const std::string &what,
                unsigned attempts)
{
    RunResult r;
    r.workload = job.program ? job.program->name() : "?";
    r.variant = variantName(job.cfg.variant);
    r.status = JobStatus::Failed;
    r.error = what;
    r.attempts = attempts ? attempts : 1;
    return r;
}

std::string
hex16(std::uint64_t key)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[std::size_t(i)] = digits[key & 0xf];
        key >>= 4;
    }
    return out;
}

/** Checkpoint files above this stay home: the worker's request-body
 *  cap is 16 MiB, and a checkpoint is an optimization, not data. */
constexpr std::uintmax_t kMaxCkptShipBytes = 8u << 20;

} // namespace

/** Everything one run() shares across its worker threads. */
struct SweepCoordinator::Fleet
{
    const SweepSpec *spec = nullptr;
    ExpandedSweep ex;
    std::vector<std::string> keys; ///< jobKey per global index

    std::mutex mtx; ///< guards everything below + the ledger stream
    std::condition_variable cv;
    std::vector<RunResult> results;
    std::vector<char> done;
    std::vector<unsigned> attempts;  ///< lease expiries per cell
    std::deque<std::vector<std::size_t>> chunks;
    std::size_t inflightChunks = 0;
    std::vector<unsigned> workerFailures;
    std::vector<char> workerDead;
    CoordStats stats;

    std::ofstream ledger;
    bool journaling = false;

    void
    journalLine(const std::function<void(std::ostream &)> &write)
    {
        if (!journaling)
            return;
        write(ledger);
        ledger.flush();
    }
};

SweepCoordinator::SweepCoordinator(CoordinatorConfig c)
    : cfg(std::move(c))
{
}

void
SweepCoordinator::shipArtifacts(Fleet &fleet)
{
    // Compile each distinct full-run trace once, locally, and push
    // the image to every worker — the fleet-wide compile count stays
    // at one per distinct program. Sampled cells never use traces;
    // their warm state ships as checkpoints below.
    std::map<std::uint64_t, std::pair<const Program *, InstCount>> want;
    bool anySampled = false;
    for (std::size_t i = 0; i < fleet.ex.jobs.size(); ++i) {
        if (fleet.done[i])
            continue;
        const SweepJob &job = fleet.ex.jobs[i];
        if (!job.program)
            continue;
        if (job.opts.sampled()) {
            anySampled = true;
            continue;
        }
        const InstCount count =
            job.opts.warmupInsts + job.opts.measureInsts;
        want[CompiledTrace::key(*job.program, count)] = {job.program,
                                                         count};
    }

    const auto retire = [&](std::size_t w, const std::string &why) {
        ELFSIM_WARN("worker %s retired during artifact staging: %s",
                    cfg.workers[w].id().c_str(), why.c_str());
        fleet.workerDead[w] = 1;
        ++fleet.stats.workersDead;
    };

    if (TraceCache::instance().enabled()) {
        for (const auto &[key, pc] : want) {
            std::shared_ptr<const CompiledTrace> trace =
                TraceCache::instance().acquire(*pc.first, pc.second);
            if (!trace)
                continue;
            const std::vector<char> image = trace->serialized();
            const std::map<std::string, std::string> headers = {
                {"x-elfsim-key", hex16(trace->cacheKey())},
                {"x-elfsim-name", pc.first->name()},
            };
            for (std::size_t w = 0; w < cfg.workers.size(); ++w) {
                if (fleet.workerDead[w])
                    continue;
                try {
                    const service::HttpResponse resp =
                        service::httpFetch(
                            cfg.workers[w].host, cfg.workers[w].port,
                            "POST", "/artifact/trace",
                            std::string_view(image.data(),
                                             image.size()),
                            headers);
                    if (resp.status != 200) {
                        // A worker that rejects a validated trace
                        // would recompile every shard it runs —
                        // retire it rather than quietly lose the
                        // one-compile-per-fleet guarantee.
                        retire(w, resp.body);
                        continue;
                    }
                    ++fleet.stats.tracesShipped;
                } catch (const SimError &e) {
                    retire(w, e.what());
                }
            }
        }
    }

    // Checkpoints are best-effort: a worker without one fast-forwards.
    const std::string dir = CheckpointStore::instance().directory();
    if (!anySampled || dir.empty())
        return;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec) ||
            entry.path().extension() != ".eckpt")
            continue;
        if (entry.file_size(ec) > kMaxCkptShipBytes) {
            ELFSIM_WARN("checkpoint '%s' too large to ship; workers "
                        "will fast-forward",
                        entry.path().filename().c_str());
            continue;
        }
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream body;
        body << in.rdbuf();
        if (!in)
            continue;
        const std::string bytes = body.str();
        const std::map<std::string, std::string> headers = {
            {"x-elfsim-name", entry.path().filename().string()},
        };
        for (std::size_t w = 0; w < cfg.workers.size(); ++w) {
            if (fleet.workerDead[w])
                continue;
            try {
                const service::HttpResponse resp = service::httpFetch(
                    cfg.workers[w].host, cfg.workers[w].port, "POST",
                    "/artifact/ckpt", bytes, headers);
                if (resp.status == 200)
                    ++fleet.stats.ckptsShipped;
            } catch (const SimError &e) {
                ELFSIM_WARN("checkpoint ship to %s failed: %s",
                            cfg.workers[w].id().c_str(), e.what());
            }
        }
    }
}

bool
SweepCoordinator::runChunk(Fleet &fleet, std::size_t w,
                           const std::vector<std::size_t> &chunk)
{
    const WorkerEndpoint &ep = cfg.workers[w];
    int fd = -1;
    try {
        fd = service::connectTcp(ep.host, ep.port);
    } catch (const SimError &e) {
        ELFSIM_WARN("worker %s unreachable: %s", ep.id().c_str(),
                    e.what());
        return false;
    }
    // The lease timer IS the socket's receive timeout: a worker that
    // produces neither results nor heartbeats for leaseSeconds is
    // dead, and the blocked read fails with EAGAIN.
    struct timeval tv = {long(cfg.leaseSeconds), 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    const std::string body = writeShardRequest(*fleet.spec, chunk);
    std::string head = "POST /shard HTTP/1.1\r\nHost: " + ep.host +
                       "\r\nContent-Type: application/json"
                       "\r\nContent-Length: " +
                       std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    if (!service::writeAll(fd, head) || !service::writeAll(fd, body)) {
        ::close(fd);
        return false;
    }

    int status = 0;
    std::map<std::string, std::string> headers;
    std::string rest, err;
    if (!service::readHttpResponseHead(fd, status, headers, rest,
                                       err)) {
        ELFSIM_WARN("worker %s: %s", ep.id().c_str(), err.c_str());
        ::close(fd);
        return false;
    }
    if (status != 200) {
        ELFSIM_WARN("worker %s refused shard: HTTP %d",
                    ep.id().c_str(), status);
        ::close(fd);
        return false;
    }

    std::vector<char> inChunk(fleet.ex.jobs.size(), 0);
    for (std::size_t i : chunk)
        inChunk[i] = 1;

    ShardStream stream(fd, std::move(rest));
    std::size_t got = 0;
    bool sawDone = false;
    std::string line;
    while (stream.nextLine(line)) {
        ShardLine sl;
        try {
            sl = parseShardLine(line);
        } catch (const SimError &e) {
            ELFSIM_WARN("worker %s: bad stream line: %s",
                        ep.id().c_str(), e.what());
            break;
        }
        if (sl.kind == ShardLine::Kind::Heartbeat)
            continue;
        if (sl.kind == ShardLine::Kind::Done) {
            sawDone = true;
            break;
        }
        const std::size_t i = sl.entry.index;
        if (i >= fleet.ex.jobs.size() || !inChunk[i] ||
            sl.entry.key != fleet.keys[i]) {
            ELFSIM_WARN("worker %s: result for cell it was not "
                        "leased (index %zu)",
                        ep.id().c_str(), i);
            break;
        }
        std::lock_guard<std::mutex> lk(fleet.mtx);
        if (!fleet.done[i]) {
            fleet.results[i] = std::move(sl.entry.result);
            fleet.done[i] = 1;
            ++fleet.stats.cellsRun;
            fleet.journalLine([&](std::ostream &os) {
                writeManifestLine(os, ManifestEntry{i, fleet.keys[i],
                                                    fleet.results[i]});
            });
        }
        ++got;
    }
    ::close(fd);
    if (stream.failed())
        ELFSIM_WARN("worker %s: %s", ep.id().c_str(),
                    stream.error().c_str());
    return sawDone && got == chunk.size();
}

void
SweepCoordinator::workerLoop(Fleet &fleet, std::size_t w)
{
    const std::string id = cfg.workers[w].id();
    for (;;) {
        std::vector<std::size_t> chunk;
        {
            std::unique_lock<std::mutex> lk(fleet.mtx);
            // Wait while the queue is dry but another worker's chunk
            // is still in flight — a failure there requeues cells
            // this worker must be around to adopt (the reassignment
            // path of a killed worker's leases).
            fleet.cv.wait(lk, [&] {
                return !fleet.chunks.empty() ||
                       fleet.inflightChunks == 0;
            });
            if (fleet.chunks.empty())
                return;
            chunk = std::move(fleet.chunks.front());
            fleet.chunks.pop_front();
            ++fleet.inflightChunks;
            ++fleet.stats.chunksDispatched;
            for (std::size_t i : chunk) {
                LeaseEvent e;
                e.kind = LeaseEvent::Kind::Lease;
                e.index = i;
                e.key = fleet.keys[i];
                e.worker = id;
                e.leaseSeconds = cfg.leaseSeconds;
                fleet.journalLine([&](std::ostream &os)
                                  { writeLeaseLine(os, e); });
            }
            if (leaseObserver)
                leaseObserver(chunk, id);
        }

        const bool ok = runChunk(fleet, w, chunk);

        bool retired = false;
        {
            std::lock_guard<std::mutex> lk(fleet.mtx);
            std::vector<std::size_t> requeue;
            for (std::size_t i : chunk) {
                if (fleet.done[i])
                    continue;
                LeaseEvent e;
                e.kind = LeaseEvent::Kind::Expire;
                e.index = i;
                e.worker = id;
                fleet.journalLine([&](std::ostream &os)
                                  { writeLeaseLine(os, e); });
                ++fleet.stats.leasesExpired;
                if (++fleet.attempts[i] > cfg.maxCellRetries) {
                    fleet.results[i] = abandonedResult(
                        fleet.ex.jobs[i],
                        errorf("distributed cell abandoned after %u "
                               "expired leases",
                               fleet.attempts[i]),
                        fleet.attempts[i]);
                    fleet.done[i] = 1;
                    ++fleet.stats.cellsSynthFailed;
                } else {
                    requeue.push_back(i);
                }
            }
            if (!requeue.empty())
                fleet.chunks.push_back(std::move(requeue));
            --fleet.inflightChunks;
            if (!ok && ++fleet.workerFailures[w] >=
                           cfg.maxWorkerFailures) {
                fleet.workerDead[w] = 1;
                ++fleet.stats.workersDead;
                retired = true;
            }
        }
        fleet.cv.notify_all();
        if (retired) {
            ELFSIM_WARN("worker %s retired after %u failed leases",
                        id.c_str(), cfg.maxWorkerFailures);
            return;
        }
    }
}

std::vector<RunResult>
SweepCoordinator::run(const SweepSpec &spec)
{
    if (cfg.workers.empty())
        throw ConfigError("distributed sweep needs at least 1 worker");
    validateSweepSpec(spec);

    Fleet fleet;
    fleet.spec = &spec;
    fleet.ex = expandSweep(spec);
    const std::size_t n = fleet.ex.jobs.size();
    fleet.keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        fleet.keys.push_back(
            sweepJobKey(fleet.ex.jobs[i], i, spec.baseSeed));
    fleet.results.resize(n);
    fleet.done.assign(n, 0);
    fleet.attempts.assign(n, 0);
    fleet.workerFailures.assign(cfg.workers.size(), 0);
    fleet.workerDead.assign(cfg.workers.size(), 0);
    fleet.stats.cellsTotal = n;

    // Adopt the ledger's completed cells (a crashed coordinator's
    // survivors); index + jobKey must match, exactly like a manifest
    // resume, so a stale ledger never contaminates results.
    if (cfg.resume && !cfg.ledgerPath.empty()) {
        std::ifstream in(cfg.ledgerPath);
        if (in) {
            LedgerState state = readLedger(in);
            for (ManifestEntry &e : state.completed) {
                if (e.index >= n || e.key != fleet.keys[e.index] ||
                    !e.result.ok())
                    continue;
                fleet.results[e.index] = std::move(e.result);
                fleet.done[e.index] = 1;
                ++fleet.stats.cellsAdopted;
            }
        }
    }
    if (!cfg.ledgerPath.empty()) {
        fleet.ledger.open(cfg.ledgerPath,
                          cfg.resume ? std::ios::out | std::ios::app
                                     : std::ios::out | std::ios::trunc);
        if (!fleet.ledger)
            throw IoError(errorf("cannot open ledger '%s'",
                                 cfg.ledgerPath.c_str()));
        fleet.journaling = true;
    }

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < n; ++i)
        if (!fleet.done[i])
            pending.push_back(i);
    if (pending.empty()) {
        lastStats = fleet.stats;
        return std::move(fleet.results);
    }

    const auto t0 = std::chrono::steady_clock::now();
    shipArtifacts(fleet);

    std::size_t alive = 0;
    for (char d : fleet.workerDead)
        alive += d ? 0 : 1;
    if (alive == 0)
        throw IoError("every worker failed artifact staging; is the "
                      "fleet up (elfsimd --worker)?");

    std::size_t chunkSize = cfg.chunkCells;
    if (chunkSize == 0)
        chunkSize =
            std::max<std::size_t>(1, pending.size() / (4 * alive));
    for (std::size_t at = 0; at < pending.size(); at += chunkSize)
        fleet.chunks.emplace_back(
            pending.begin() + std::ptrdiff_t(at),
            pending.begin() +
                std::ptrdiff_t(
                    std::min(at + chunkSize, pending.size())));

    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < cfg.workers.size(); ++w)
        if (!fleet.workerDead[w])
            threads.emplace_back(&SweepCoordinator::workerLoop, this,
                                 std::ref(fleet), w);
    for (std::thread &t : threads)
        t.join();

    // Whatever is left had no live worker to run it.
    for (std::size_t i : pending) {
        if (fleet.done[i])
            continue;
        fleet.results[i] = abandonedResult(
            fleet.ex.jobs[i],
            "no live worker (fleet died before this cell ran)",
            fleet.attempts[i]);
        fleet.done[i] = 1;
        ++fleet.stats.cellsSynthFailed;
    }

    fleet.stats.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    lastStats = fleet.stats;

    if (fleet.stats.cellsRun == 0)
        throw IoError("no worker completed any cell; is the fleet up "
                      "(elfsimd --worker)?");
    return std::move(fleet.results);
}

} // namespace dist
} // namespace elfsim
