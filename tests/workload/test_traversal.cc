#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/catalog.hh"
#include "workload/oracle_stream.hh"

using namespace elfsim;

namespace {

struct Traversal
{
    std::size_t distinctPCs = 0;
    double topPcShare = 0;   ///< fraction of the hottest instruction
    double takenFrac = 0;    ///< taken fraction among branches
    double branchFrac = 0;   ///< branches per instruction
};

Traversal
walk(const Program &p, SeqNum n)
{
    OracleStream os(p);
    std::map<Addr, std::uint64_t> hot;
    std::uint64_t branches = 0, taken = 0;
    for (SeqNum i = 1; i <= n; ++i) {
        const OracleInst &oi = os.at(i);
        ++hot[oi.si->pc];
        if (oi.si->isBranchInst()) {
            ++branches;
            taken += oi.taken;
        }
        os.retireUpTo(i);
    }
    Traversal t;
    t.distinctPCs = hot.size();
    std::uint64_t top = 0;
    for (const auto &[pc, c] : hot)
        top = std::max(top, c);
    t.topPcShare = double(top) / double(n);
    t.takenFrac = branches ? double(taken) / double(branches) : 0;
    t.branchFrac = double(branches) / double(n);
    return t;
}

} // namespace

// Regression guards for generator pathologies found during
// calibration: execution trapped in tiny loops (a handful of hot
// PCs), static call-graph cycles (infinite descent touching a sliver
// of the footprint), and implausible taken fractions.

class CatalogTraversal : public ::testing::TestWithParam<std::string>
{};

TEST_P(CatalogTraversal, ExecutionIsWellSpread)
{
    const WorkloadSpec *spec = findWorkload(GetParam());
    ASSERT_NE(spec, nullptr);
    Program p = buildWorkload(*spec);
    const Traversal t = walk(p, 150000);

    EXPECT_GE(t.distinctPCs, 100u) << "trapped in a tiny loop";
    EXPECT_LT(t.topPcShare, 0.10) << "one instruction dominates";
    // Real code takes roughly half its branches; far outside that
    // band means the control structure degenerated.
    EXPECT_GT(t.takenFrac, 0.30);
    EXPECT_LT(t.takenFrac, 0.85);
    EXPECT_GT(t.branchFrac, 0.02);
    EXPECT_LT(t.branchFrac, 0.40);
}

INSTANTIATE_TEST_SUITE_P(
    Relevant, CatalogTraversal,
    ::testing::ValuesIn(elfRelevantWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(CatalogTraversal, Server1SweepsItsFootprint)
{
    // The server-1 story requires the walk to keep touching new code
    // (flat call profile over a footprint beyond BTB/L1I reach).
    Program p = buildWorkload(*findWorkload("srv1.subtest_1"));
    const Traversal t = walk(p, 200000);
    EXPECT_GT(double(t.distinctPCs) / double(p.footprintInsts()), 0.25)
        << "the dispatcher walk collapsed into a static call cycle";
}
