#include "sim/runner.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "workload/trace_cache.hh"

namespace elfsim {

namespace {

/** Derive one timeline row from a per-interval snapshot delta. */
IntervalSample
makeSample(const StatSnapshot &d, InstCount startInst)
{
    IntervalSample s;
    s.startInst = startInst;
    s.insts = d.insts;
    s.cycles = d.cycles;
    s.ipc = d.cycles ? double(d.insts) / double(d.cycles) : 0.0;
    s.condMispredicts = d.condMispredicts;
    s.targetMispredicts = d.targetMispredicts;
    s.execFlushes = d.execFlushes;
    s.memOrderFlushes = d.memOrderFlushes;
    s.decodeResteers = d.decodeResteers;
    s.divergenceFlushes = d.divergenceFlushes;
    s.coupledFrac =
        d.insts ? double(d.coupledCommitted) / double(d.insts) : 0.0;
    return s;
}

} // namespace

StatSnapshot
StatSnapshot::capture(const Core &core)
{
    StatSnapshot s;
    s.cycles = core.cycles();
    s.insts = core.committed();
    s.condMispredicts = core.backend().stats().condMispredicts;
    s.targetMispredicts = core.backend().stats().targetMispredicts;
    s.execFlushes = core.stats().execFlushes;
    s.memOrderFlushes = core.stats().memOrderFlushes;
    s.decodeResteers = core.stats().decodeResteers;
    s.divergenceFlushes = core.stats().divergenceFlushes;
    s.coupledCommitted = core.backend().stats().coupledCommitted;
    s.l1dMisses = core.memory().l1d().misses();
    s.redirectToFetchTotal = core.stats().redirectToFetchTotal;
    s.redirectToFetchCount = core.stats().redirectToFetchCount;
    return s;
}

StatSnapshot
StatSnapshot::delta(const StatSnapshot &since) const
{
    StatSnapshot d;
    d.cycles = cycles - since.cycles;
    d.insts = insts - since.insts;
    d.condMispredicts = condMispredicts - since.condMispredicts;
    d.targetMispredicts = targetMispredicts - since.targetMispredicts;
    d.execFlushes = execFlushes - since.execFlushes;
    d.memOrderFlushes = memOrderFlushes - since.memOrderFlushes;
    d.decodeResteers = decodeResteers - since.decodeResteers;
    d.divergenceFlushes = divergenceFlushes - since.divergenceFlushes;
    d.coupledCommitted = coupledCommitted - since.coupledCommitted;
    d.l1dMisses = l1dMisses - since.l1dMisses;
    d.redirectToFetchTotal =
        redirectToFetchTotal - since.redirectToFetchTotal;
    d.redirectToFetchCount =
        redirectToFetchCount - since.redirectToFetchCount;
    return d;
}

RunResult
runSimulation(const Program &prog, const SimConfig &cfg,
              const RunOptions &opts)
{
    // The trace only needs to cover the committed-instruction budget;
    // fetch-ahead past it falls through to the lazy tail, which is
    // stream-identical by construction.
    std::shared_ptr<const CompiledTrace> trace = opts.trace;
    if (!trace)
        trace = TraceCache::instance().acquire(
            prog, opts.warmupInsts + opts.measureInsts);
    Core core(cfg, prog, std::move(trace));

    // Warmup: predictors, BTB, and caches train; stats that matter
    // are measured as deltas across the measurement window.
    core.run(opts.warmupInsts);
    const StatSnapshot warm = StatSnapshot::capture(core);

    std::vector<IntervalSample> timeline;
    if (opts.intervalInsts > 0 && opts.measureInsts > 0) {
        // Tick the same absolute instruction target as the one-shot
        // path below, pausing every intervalInsts commits to snapshot
        // a delta row. Core::run is resumable, so the chunked run is
        // cycle-for-cycle identical to the unsampled one.
        const InstCount target = core.committed() + opts.measureInsts;
        StatSnapshot prev = warm;
        while (core.committed() < target) {
            const InstCount chunk = std::min<InstCount>(
                opts.intervalInsts, target - core.committed());
            core.run(chunk);
            const StatSnapshot now = StatSnapshot::capture(core);
            timeline.push_back(
                makeSample(now.delta(prev), prev.insts - warm.insts));
            prev = now;
        }
    } else {
        core.run(opts.measureInsts);
    }
    const StatSnapshot d = StatSnapshot::capture(core).delta(warm);

    RunResult r;
    r.workload = prog.name();
    r.variant = variantName(cfg.variant);
    r.cycles = d.cycles;
    r.insts = d.insts;
    r.ipc = r.cycles ? double(r.insts) / double(r.cycles) : 0.0;

    const double kilo = double(r.insts) / 1000.0;
    r.condMpki = kilo > 0 ? double(d.condMispredicts) / kilo : 0;
    r.branchMpki =
        kilo > 0
            ? double(d.condMispredicts + d.targetMispredicts) / kilo
            : 0;

    r.execFlushes = d.execFlushes;
    r.memOrderFlushes = d.memOrderFlushes;
    r.decodeResteers = d.decodeResteers;
    r.divergenceFlushes = d.divergenceFlushes;
    r.pendingFlushWaits = core.stats().pendingFlushWaits;

    r.btbHitL0 = core.btb().cumulativeHitRate(0);
    r.btbHitL1 = core.btb().cumulativeHitRate(1);
    r.btbHitL2 = core.btb().cumulativeHitRate(2);

    const auto &l0i = core.memory().l0i();
    r.l0iMissRate = l0i.accesses()
                        ? double(l0i.misses()) / double(l0i.accesses())
                        : 0;
    r.l1dMpki = kilo > 0 ? double(d.l1dMisses) / kilo : 0;

    r.wrongPathInsts = core.supply().wrongPathInsts();
    r.instPrefetches = core.elf().stats().instPrefetches;

    r.avgRedirectToFetch =
        d.redirectToFetchCount
            ? double(d.redirectToFetchTotal) /
                  double(d.redirectToFetchCount)
            : 0.0;

    r.avgCoupledInsts = core.elf().stats().avgCoupledInstsPerPeriod();
    r.coupledPeriods = core.elf().stats().coupledPeriods;
    r.coupledCommittedFrac =
        r.insts ? double(d.coupledCommitted) / double(r.insts) : 0;

    r.intervalInsts = opts.intervalInsts;
    r.timeline = std::move(timeline);

    return r;
}

RunResult
runVariant(const Program &prog, FrontendVariant variant,
           const RunOptions &opts)
{
    return runSimulation(prog, makeConfig(variant), opts);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        ELFSIM_ASSERT(x > 0, "geomean of non-positive value");
        logSum += std::log(x);
    }
    return std::exp(logSum / double(xs.size()));
}

} // namespace elfsim
