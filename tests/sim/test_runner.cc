#include <gtest/gtest.h>

#include <sstream>

#include "sim/config.hh"
#include "sim/runner.hh"
#include "workload/builders.hh"

using namespace elfsim;

TEST(Runner, MeasurementWindowExcludesWarmup)
{
    Program p = microSequentialLoop(30, 16);
    RunOptions o;
    o.warmupInsts = 50000;
    o.measureInsts = 50000;
    const RunResult r = runVariant(p, FrontendVariant::Dcf, o);
    EXPECT_GE(r.insts, 50000u);
    EXPECT_LT(r.insts, 50020u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_NEAR(r.ipc, double(r.insts) / double(r.cycles), 1e-9);
}

TEST(Runner, ResultFieldsConsistent)
{
    Program p = microRandomBranchLoop(8, 0.4);
    const RunResult r = runVariant(p, FrontendVariant::UElf);
    EXPECT_EQ(r.variant, "U-ELF");
    EXPECT_EQ(r.workload, "micro_random_branch_loop");
    EXPECT_GT(r.branchMpki, 0.0);
    EXPECT_GE(r.branchMpki, r.condMpki);
    EXPECT_GT(r.execFlushes, 0u);
    EXPECT_GT(r.coupledPeriods, 0u);
    EXPECT_GT(r.avgCoupledInsts, 0.0);
    EXPECT_GE(r.btbHitL2, r.btbHitL1);
    EXPECT_GE(r.btbHitL1, r.btbHitL0);
}

TEST(Runner, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({1.0, 1.0, 1.0}), 1.0);
    EXPECT_NEAR(geomean({2.0, 0.5}), 1.0, 1e-12);
    EXPECT_NEAR(geomean({4.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.1, 1.1, 1.1}), 1.1, 1e-12);
}

TEST(Config, MakeConfigSetsVariant)
{
    EXPECT_EQ(makeConfig(FrontendVariant::LElf).variant,
              FrontendVariant::LElf);
    EXPECT_EQ(makeConfig(FrontendVariant::NoDcf).variant,
              FrontendVariant::NoDcf);
}

TEST(Config, PrintConfigMentionsKeyStructures)
{
    std::ostringstream os;
    printConfig(os, makeConfig(FrontendVariant::UElf));
    const std::string s = os.str();
    EXPECT_NE(s.find("TAGE"), std::string::npos);
    EXPECT_NE(s.find("FAQ"), std::string::npos);
    EXPECT_NE(s.find("Coupled bimodal"), std::string::npos);
    EXPECT_NE(s.find("Divergence vectors"), std::string::npos);
    EXPECT_NE(s.find("250 cycles"), std::string::npos);
}

TEST(Config, ElfParamsCarryKnobs)
{
    SimConfig cfg = makeConfig(FrontendVariant::CondElf);
    cfg.payloadPolicy = PayloadPolicy::RobHead;
    cfg.condElfRequireSaturation = false;
    cfg.bp1ToFe = 5;
    const ElfControllerParams p = cfg.elfParams();
    EXPECT_EQ(p.variant, FrontendVariant::CondElf);
    EXPECT_EQ(p.payloadPolicy, PayloadPolicy::RobHead);
    EXPECT_FALSE(p.condRequireSaturation);
    EXPECT_EQ(p.bp1ToFe, 5u);
}

TEST(Isa, NamesAndDisasm)
{
    EXPECT_STREQ(instClassName(InstClass::Load), "ld");
    EXPECT_STREQ(branchKindName(BranchKind::Return), "ret");
    StaticInst si;
    si.pc = 0x400010;
    si.cls = InstClass::Branch;
    si.branch = BranchKind::CondDirect;
    si.directTarget = 0x400100;
    const std::string d = si.disasm();
    EXPECT_NE(d.find("400010"), std::string::npos);
    EXPECT_NE(d.find("b.cond"), std::string::npos);
    EXPECT_NE(d.find("400100"), std::string::npos);
}
