/**
 * @file
 * Shared plumbing for the experiment harnesses: option parsing, table
 * formatting, and machine-readable export. Each bench binary
 * regenerates one table or figure of the paper; rows print as aligned
 * text so paper-vs-measured comparison (EXPERIMENTS.md) is a
 * copy-paste, and `--json` / `--csv` export the same results
 * losslessly for scripts (see sim/export.hh for the schema).
 */

#ifndef ELFSIM_BENCH_BENCH_UTIL_HH
#define ELFSIM_BENCH_BENCH_UTIL_HH

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hh"

#include "sim/export.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/sweep_spec.hh"
#include "workload/catalog.hh"
#include "workload/checkpoint_store.hh"

namespace elfsim {
namespace bench {

/** Common command-line options. */
struct Options
{
    InstCount warmupInsts = 100000;
    InstCount measureInsts = 200000;
    bool quick = false;
    unsigned jobs = 0; ///< sweep threads; 0 = $ELFSIM_JOBS / hardware
    InstCount intervalInsts = 0; ///< timeline sampling period; 0 = off
    std::string jsonPath;        ///< --json target; empty = off
    std::string csvPath;         ///< --csv target; empty = off

    // Fault-tolerance policy (sim/sweep.hh SweepPolicy).
    double deadlineSeconds = 0;  ///< --deadline; per-job limit, 0 = off
    double stallSeconds = 0;     ///< --stall; heartbeat limit, 0 = off
    unsigned maxRetries = 0;     ///< --retries; transient-error retries
    std::string manifestPath;    ///< --manifest / --resume journal
    bool resume = false;         ///< --resume: reuse finished cells

    std::string traceCacheDir;   ///< --trace-cache artifact directory
    bool noTrace = false;        ///< --no-trace: lazy reference path

    // Sampled execution (sim/runner.hh RunOptions sampling fields).
    InstCount samplePeriodInsts = 0; ///< --sample-period; 0 = full run
    InstCount sampleLengthInsts = 0; ///< --sample-length per period
    InstCount sampleWarmupInsts = 0; ///< --sample-warmup per period
    std::string ckptCacheDir;    ///< --ckpt-cache artifact directory
    bool noCkpt = false;         ///< --no-ckpt: always fast-forward

    std::string specPath;     ///< --spec: run this grid instead
    std::string dumpSpecPath; ///< --dump-spec: archive the grid as JSON

    RunOptions
    runOptions() const
    {
        RunOptions o;
        o.warmupInsts = quick ? warmupInsts / 4 : warmupInsts;
        o.measureInsts = quick ? measureInsts / 4 : measureInsts;
        o.intervalInsts = intervalInsts;
        o.samplePeriodInsts = samplePeriodInsts;
        o.sampleLengthInsts = sampleLengthInsts;
        o.sampleWarmupInsts = sampleWarmupInsts;
        return o;
    }
};

/**
 * A bench-specific flag handled inside the common option loop, so it
 * shares the uniform `--help` text and unknown-flag exit-2 semantics
 * (bench_throughput's --stride/--sampled, server_capacity's --hammer).
 */
struct LocalFlag
{
    const char *name;  ///< "--stride"
    bool takesValue = false;
    const char *help;  ///< preformatted usage line(s), '\n'-terminated
    /** Called with the flag's value (null when takesValue is false). */
    std::function<void(const char *value)> apply;
};

/** Print --help text for the common options (+ any bench locals). */
inline void
printUsage(const char *argv0, std::FILE *to,
           const std::vector<LocalFlag> &locals = {})
{
    std::fprintf(
        to,
        "usage: %s [options]\n"
        "  --warmup N      warmup instructions per run (default %llu)\n"
        "  --insts N       measured instructions per run (default "
        "%llu)\n"
        "  --quick         quarter-size windows (smoke run)\n"
        "  --jobs N        sweep threads (default: $ELFSIM_JOBS, then "
        "hardware)\n"
        "  --interval N    capture a timeline sample every N committed "
        "insts (0 = off)\n"
        "  --json PATH     write results + sweep timing as JSON "
        "(elfsim-results-v2)\n"
        "  --csv PATH      write results as CSV (timelines go to "
        "*.timeline.csv)\n"
        "  --deadline S    cancel any job running longer than S "
        "seconds (cell -> timeout)\n"
        "  --stall S       cancel any job whose committed-instruction "
        "heartbeat\n"
        "                  stalls for S seconds (cell -> timeout)\n"
        "  --retries N     re-run a cell up to N extra times on "
        "transient errors\n"
        "  --manifest PATH journal finished cells to a JSONL manifest "
        "(crash-safe)\n"
        "  --resume PATH   like --manifest, but first reuse the ok "
        "cells already in it\n"
        "  --trace-cache D persist compiled workload traces as "
        "content-keyed files in D\n"
        "                  (also $ELFSIM_TRACE_CACHE); campaigns "
        "share one compile\n"
        "  --no-trace      disable trace compilation (lazy "
        "per-instruction generation;\n"
        "                  also $ELFSIM_TRACE=0) — behaviour-"
        "identical, just slower\n"
        "  --sample-period N  sampled execution: partition the total "
        "budget into\n"
        "                  periods of N insts, fast-forwarding "
        "(functional warming)\n"
        "                  between detailed windows (0 = full "
        "detailed run)\n"
        "  --sample-length N  measured detailed insts per period "
        "(required with\n"
        "                  --sample-period; length + warmup must fit "
        "the period)\n"
        "  --sample-warmup N  detailed-but-unmeasured insts before "
        "each measured\n"
        "                  window (drains the post-fast-forward "
        "transient)\n"
        "  --ckpt-cache D  persist warm-state checkpoints as content-"
        "keyed files in D\n"
        "                  (also $ELFSIM_CKPT_CACHE); sampled re-runs "
        "skip fast-forward\n"
        "  --no-ckpt       disable checkpoint artifacts (also "
        "$ELFSIM_CKPT=0) —\n"
        "                  behaviour-identical, just always fast-"
        "forwards\n"
        "  --spec PATH     run the elfsim-sweepspec-v1 grid in PATH "
        "instead of this\n"
        "                  bench's native grid (output becomes a "
        "generic table)\n"
        "  --dump-spec PATH  write the resolved grid as an elfsim-"
        "sweepspec-v1 JSON\n"
        "                  document (re-runnable via --spec or "
        "elfsimd), then run\n",
        argv0, (unsigned long long)Options().warmupInsts,
        (unsigned long long)Options().measureInsts);
    for (const LocalFlag &f : locals)
        std::fputs(f.help, to);
    std::fprintf(
        to,
        "  --help          this text\n"
        "exit status: 0 ok, 1 export I/O error, 2 usage error, "
        "3 failed cells, 130 interrupted\n");
}

/**
 * Strict numeric parse of a flag value: the whole string must be a
 * base-10 non-negative integer that fits the type — a leading sign,
 * trailing junk ("100k"), or overflow is a hard usage error (exit 2)
 * with a one-line message, never a silently truncated value.
 */
inline std::uint64_t
parseCount(const char *argv0, const char *flag, const char *text,
           std::uint64_t max = UINT64_MAX)
{
    const auto die = [&](const char *why) {
        std::fprintf(stderr,
                     "%s: %s expects a non-negative integer "
                     "(%s in '%s')\n",
                     argv0, flag, why, text);
        std::exit(2);
    };
    if (!*text || !std::isdigit(static_cast<unsigned char>(*text)))
        die(*text == '-' ? "negative value" : "not a number");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno == ERANGE || v > max)
        die("value out of range");
    if (*end != '\0')
        die("trailing junk");
    return v;
}

/** Strict non-negative seconds parse (same contract as parseCount). */
inline double
parseSeconds(const char *argv0, const char *flag, const char *text)
{
    const auto die = [&](const char *why) {
        std::fprintf(stderr,
                     "%s: %s expects non-negative seconds "
                     "(%s in '%s')\n",
                     argv0, flag, why, text);
        std::exit(2);
    };
    if (!*text)
        die("empty value");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (errno == ERANGE)
        die("value out of range");
    if (*end != '\0')
        die("trailing junk");
    if (!(v >= 0) || v > 1e12)
        die(v < 0 ? "negative value" : "not a finite value");
    return v;
}

/**
 * Parse the common options, starting from @a defaults (benches with
 * non-standard windows seed their own). Unknown flags, missing values
 * and malformed numbers are hard errors (exit 2); `--help` prints
 * usage and exits 0. @a locals lets a bench add flags that share
 * these semantics.
 */
inline Options
parseOptions(int argc, char **argv, Options defaults = {},
             const std::vector<LocalFlag> &locals = {})
{
    Options o = defaults;
    const auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: option '%s' needs a value\n",
                         argv[0], argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--warmup"))
            o.warmupInsts = parseCount(argv[0], "--warmup", value(i));
        else if (!std::strcmp(argv[i], "--insts"))
            o.measureInsts = parseCount(argv[0], "--insts", value(i));
        else if (!std::strcmp(argv[i], "--quick"))
            o.quick = true;
        else if (!std::strcmp(argv[i], "--jobs"))
            o.jobs = unsigned(
                parseCount(argv[0], "--jobs", value(i), UINT_MAX));
        else if (!std::strcmp(argv[i], "--interval"))
            o.intervalInsts =
                parseCount(argv[0], "--interval", value(i));
        else if (!std::strcmp(argv[i], "--json"))
            o.jsonPath = value(i);
        else if (!std::strcmp(argv[i], "--csv"))
            o.csvPath = value(i);
        else if (!std::strcmp(argv[i], "--deadline"))
            o.deadlineSeconds =
                parseSeconds(argv[0], "--deadline", value(i));
        else if (!std::strcmp(argv[i], "--stall"))
            o.stallSeconds =
                parseSeconds(argv[0], "--stall", value(i));
        else if (!std::strcmp(argv[i], "--retries"))
            o.maxRetries = unsigned(
                parseCount(argv[0], "--retries", value(i), UINT_MAX));
        else if (!std::strcmp(argv[i], "--manifest"))
            o.manifestPath = value(i);
        else if (!std::strcmp(argv[i], "--resume")) {
            o.manifestPath = value(i);
            o.resume = true;
        } else if (!std::strcmp(argv[i], "--trace-cache"))
            o.traceCacheDir = value(i);
        else if (!std::strcmp(argv[i], "--no-trace"))
            o.noTrace = true;
        else if (!std::strcmp(argv[i], "--sample-period"))
            o.samplePeriodInsts =
                parseCount(argv[0], "--sample-period", value(i));
        else if (!std::strcmp(argv[i], "--sample-length"))
            o.sampleLengthInsts =
                parseCount(argv[0], "--sample-length", value(i));
        else if (!std::strcmp(argv[i], "--sample-warmup"))
            o.sampleWarmupInsts =
                parseCount(argv[0], "--sample-warmup", value(i));
        else if (!std::strcmp(argv[i], "--ckpt-cache"))
            o.ckptCacheDir = value(i);
        else if (!std::strcmp(argv[i], "--no-ckpt"))
            o.noCkpt = true;
        else if (!std::strcmp(argv[i], "--spec"))
            o.specPath = value(i);
        else if (!std::strcmp(argv[i], "--dump-spec"))
            o.dumpSpecPath = value(i);
        else if (!std::strcmp(argv[i], "--help") ||
                   !std::strcmp(argv[i], "-h")) {
            printUsage(argv[0], stdout, locals);
            std::exit(0);
        } else {
            const LocalFlag *local = nullptr;
            for (const LocalFlag &f : locals)
                if (!std::strcmp(argv[i], f.name))
                    local = &f;
            if (!local) {
                std::fprintf(stderr, "%s: unknown option '%s'\n",
                             argv[0], argv[i]);
                printUsage(argv[0], stderr, locals);
                std::exit(2);
            }
            local->apply(local->takesValue ? value(i) : nullptr);
        }
    }
    // A contradictory sampling schedule is a usage error, caught here
    // with a precise message rather than deep in the runner.
    const auto usageError = [&](const char *msg) {
        std::fprintf(stderr, "%s: %s\n", argv[0], msg);
        std::exit(2);
    };
    if (o.samplePeriodInsts == 0) {
        if (o.sampleLengthInsts > 0 || o.sampleWarmupInsts > 0)
            usageError("--sample-length/--sample-warmup need "
                       "--sample-period");
    } else {
        if (o.sampleLengthInsts == 0)
            usageError("--sample-period needs --sample-length > 0 "
                       "(the measured window)");
        if (o.sampleLengthInsts > o.samplePeriodInsts)
            usageError("--sample-length exceeds --sample-period: the "
                       "measured window must fit in the period");
        if (o.sampleWarmupInsts >= o.samplePeriodInsts)
            usageError("--sample-warmup must be smaller than "
                       "--sample-period");
        if (o.sampleWarmupInsts + o.sampleLengthInsts >
            o.samplePeriodInsts)
            usageError("--sample-warmup + --sample-length exceed "
                       "--sample-period: the detailed window must fit "
                       "in the period");
        if (o.intervalInsts > 0)
            usageError("--interval and --sample-period are mutually "
                       "exclusive (a sampled run's timeline is its "
                       "measured windows)");
    }
    // Configure the process-wide trace cache here so every bench gets
    // the behaviour without per-harness plumbing.
    if (o.noTrace)
        TraceCache::instance().setEnabled(false);
    if (!o.traceCacheDir.empty())
        TraceCache::instance().setDirectory(o.traceCacheDir);
    if (o.noCkpt)
        CheckpointStore::instance().setEnabled(false);
    if (!o.ckptCacheDir.empty())
        CheckpointStore::instance().setDirectory(o.ckptCacheDir);
    return o;
}

/**
 * Arm a runner with the fault-tolerance policy the flags asked for
 * and install the SIGINT/SIGTERM handlers, so a Ctrl-C mid-sweep
 * degrades to cancelled cells and a partial export instead of losing
 * everything.
 */
inline void
applyFaultPolicy(SweepRunner &runner, const Options &o)
{
    SweepPolicy p;
    p.deadlineSeconds = o.deadlineSeconds;
    p.stallSeconds = o.stallSeconds;
    p.maxRetries = o.maxRetries;
    p.manifestPath = o.manifestPath;
    p.resume = o.resume;
    runner.setPolicy(p);
    SweepRunner::clearInterrupt();
    SweepRunner::installSignalHandlers();
}

/** The SweepPolicy the fault-tolerance flags describe. */
inline SweepPolicy
policyFromOptions(const Options &o)
{
    SweepPolicy p;
    p.deadlineSeconds = o.deadlineSeconds;
    p.stallSeconds = o.stallSeconds;
    p.maxRetries = o.maxRetries;
    p.manifestPath = o.manifestPath;
    p.resume = o.resume;
    return p;
}

/**
 * Resolve the sweep a bench will actually run: its native spec (the
 * bench_specs.hh builder output) with the CLI fault-policy flags
 * folded in — unless `--spec PATH` replaces the whole description
 * (grid, windows AND policy; only execution-side flags like --jobs /
 * --json / --csv / the cache directories still apply). `--dump-spec`
 * then archives whatever was resolved, so the JSON always matches the
 * grid this process is about to run. Load/save problems and invalid
 * specs are usage errors (exit 2) / export errors (exit 1).
 */
inline SweepSpec
finalizeSpec(SweepSpec native, const Options &o, const char *argv0)
{
    SweepSpec spec = std::move(native);
    if (o.specPath.empty()) {
        spec.policy = policyFromOptions(o);
    } else {
        try {
            spec = loadSweepSpec(o.specPath);
            validateSweepSpec(spec);
        } catch (const SimError &e) {
            std::fprintf(stderr, "%s: --spec %s: %s\n", argv0,
                         o.specPath.c_str(), e.what());
            std::exit(2);
        }
    }
    if (!o.dumpSpecPath.empty()) {
        try {
            saveSweepSpec(o.dumpSpecPath, spec);
            std::printf("wrote %s\n", o.dumpSpecPath.c_str());
        } catch (const IoError &e) {
            std::fprintf(stderr, "%s: --dump-spec: %s\n", argv0,
                         e.what());
            std::exit(1);
        }
    }
    return spec;
}

/**
 * Arm a runner for a resolved spec — its policy and base seed, plus
 * the SIGINT/SIGTERM handlers so a Ctrl-C mid-sweep degrades to
 * cancelled cells and a partial export instead of losing everything.
 */
inline void
armRunner(SweepRunner &runner, const SweepSpec &spec)
{
    runner.setPolicy(spec.policy);
    runner.setBaseSeed(spec.baseSeed);
    SweepRunner::clearInterrupt();
    SweepRunner::installSignalHandlers();
}

/** Thread count for a resolved spec: the CLI flag wins, then the
 *  spec's own jobs field, then auto. */
inline unsigned
specJobs(const Options &o, const SweepSpec &spec)
{
    return o.jobs ? o.jobs : spec.jobs;
}

/**
 * Generic results table for a grid the bench does not know the shape
 * of (an externally supplied --spec): one row per cell, labelled with
 * the config row's label when the spec carries one.
 */
inline void
printResultsTable(const std::vector<RunResult> &res,
                  const std::vector<std::string> &labels)
{
    std::printf("%-18s %-10s %-30s %8s %12s %10s\n", "workload",
                "variant", "label", "IPC", "branch MPKI", "status");
    for (std::size_t i = 0; i < res.size(); ++i) {
        const RunResult &r = res[i];
        const char *label =
            i < labels.size() ? labels[i].c_str() : "";
        std::printf("%-18s %-10s %-30.30s %8.3f %12.1f %10s\n",
                    r.workload.c_str(), r.variant.c_str(), label,
                    r.ipc, r.branchMpki, jobStatusName(r.status));
    }
    std::fflush(stdout);
}

/** Write the last sweep wherever --json / --csv asked; an unwritable
 *  path is a hard error (exit 1). */
inline void
exportResults(const Options &o, const SweepRunner &runner)
{
    try {
        if (!o.jsonPath.empty()) {
            runner.writeJson(o.jsonPath);
            std::printf("wrote %s\n", o.jsonPath.c_str());
        }
        if (!o.csvPath.empty()) {
            runner.writeCsv(o.csvPath);
            std::printf("wrote %s\n", o.csvPath.c_str());
        }
    } catch (const IoError &e) {
        std::fprintf(stderr, "export failed: %s\n", e.what());
        std::exit(1);
    }
}

/**
 * Process exit status for a finished sweep: 130 when the sweep was
 * interrupted (partial results were still exported above), 3 when any
 * cell failed (each one listed on stderr), 0 otherwise — so scripts
 * can distinguish "figure is complete" from "figure has holes"
 * without parsing the JSON.
 */
inline int
exitCode(const SweepRunner &runner)
{
    std::size_t bad = 0;
    for (const RunResult &r : runner.results()) {
        if (r.ok())
            continue;
        ++bad;
        std::fprintf(stderr, "cell %s/%s %s after %llu attempt(s): %s\n",
                     r.workload.c_str(), r.variant.c_str(),
                     jobStatusName(r.status),
                     (unsigned long long)r.attempts, r.error.c_str());
    }
    if (SweepRunner::interruptRequested()) {
        std::fprintf(stderr,
                     "interrupted: partial results exported; re-run "
                     "with --resume to finish\n");
        return 130;
    }
    if (bad) {
        std::fprintf(stderr, "%zu of %zu cells did not complete ok\n",
                     bad, runner.results().size());
        return 3;
    }
    return 0;
}

/** For benches with no sweep results: warn if export was requested. */
inline void
warnNoExport(const Options &o, const char *why)
{
    if (!o.jsonPath.empty() || !o.csvPath.empty())
        std::fprintf(stderr,
                     "note: --json/--csv ignored here (%s)\n", why);
    if (!o.specPath.empty() || !o.dumpSpecPath.empty())
        std::fprintf(stderr,
                     "note: --spec/--dump-spec ignored here (%s)\n",
                     why);
}

/** Print the runner's per-sweep timing summary to stdout. */
inline void
printSweepTiming(const SweepRunner &runner)
{
    std::ostringstream os;
    runner.printTimingSummary(os);
    std::printf("\n%s", os.str().c_str());
    std::fflush(stdout);
}

/** Print the experiment banner. */
inline void
banner(const char *experiment, const char *caption)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s\n  %s\n", experiment, caption);
    std::printf("==================================================="
                "=========================\n");
}

} // namespace bench
} // namespace elfsim

#endif // ELFSIM_BENCH_BENCH_UTIL_HH
