/**
 * @file
 * CLI-contract test: every experiment harness (and the daemon, and
 * the examples) exits 0 on `--help` and 2 on an unknown flag — the
 * uniform usage-error semantics scripts and run_all.sh rely on.
 *
 * The binary locations come from the ELFSIM_BENCH_DIR /
 * ELFSIM_EXAMPLES_DIR environment variables, which the ctest
 * registration sets from $<TARGET_FILE_DIR:...> generator
 * expressions.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace {

/** Exit status of `path args`, with stdout/stderr discarded. */
int
runTool(const std::string &path, const char *args)
{
    const std::string cmd =
        path + " " + args + " >/dev/null 2>/dev/null";
    const int rc = std::system(cmd.c_str());
    EXPECT_NE(rc, -1) << "system() failed for " << cmd;
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

void
expectUniformCli(const std::string &dir, const char *name)
{
    const std::string path = dir + "/" + name;
    EXPECT_EQ(runTool(path, "--help"), 0) << name << " --help";
    EXPECT_EQ(runTool(path, "--definitely-not-a-flag"), 2)
        << name << " with an unknown flag";
}

std::string
requiredEnv(const char *name)
{
    const char *v = std::getenv(name);
    EXPECT_NE(v, nullptr)
        << name << " must be set by the ctest registration";
    return v ? v : "";
}

} // namespace

TEST(BenchCli, HelpExitsZeroAndUnknownFlagExitsTwo)
{
    const std::string benchDir = requiredEnv("ELFSIM_BENCH_DIR");
    ASSERT_FALSE(benchDir.empty());
    for (const char *name :
         {"bench_table1_workloads", "bench_table2_config",
          "bench_fig2_timing", "bench_fig3_flush_penalty",
          "bench_fig6_nodcf", "bench_fig7_elf_variants",
          "bench_fig8_lelf_uelf", "bench_fig9_geomean",
          "bench_ablation_elf", "bench_ablation_dcf",
          "bench_throughput", "elfsimd", "elfsim_coord"})
        expectUniformCli(benchDir, name);
}

TEST(BenchCli, CoordRejectsLeaseShorterThanTheHeartbeat)
{
    const std::string benchDir = requiredEnv("ELFSIM_BENCH_DIR");
    ASSERT_FALSE(benchDir.empty());
    const std::string coord = benchDir + "/elfsim_coord";
    // A 1 s lease can never outlive a 1000 ms heartbeat period: the
    // config is rejected up front with the uniform usage-error exit.
    EXPECT_EQ(runTool(coord,
                      "--spec /dev/null --spawn 2 --lease 1"),
              2);
    EXPECT_EQ(runTool(coord,
                      "--spec /dev/null --spawn 2 --lease 2 "
                      "--worker-heartbeat-ms 2000"),
              2);
}

TEST(BenchCli, ExamplesSharingTheParserFollowTheSameContract)
{
    const std::string dir = requiredEnv("ELFSIM_EXAMPLES_DIR");
    ASSERT_FALSE(dir.empty());
    expectUniformCli(dir, "server_capacity");
}
