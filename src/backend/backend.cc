#include "backend/backend.hh"

#include <cstdio>

#include <algorithm>

#include "common/logging.hh"

namespace elfsim {

bool
Backend::laterCycle(const CompletionEvent &a, const CompletionEvent &b)
{
    return a.cycle > b.cycle;
}

Backend::Backend(const BackendParams &params, MemHierarchy &mem,
                 MemDepPredictor &mdp)
    : params(params), mem(mem), mdp(mdp),
      renamePipe(params.robEntries), rob(params.robEntries),
      lastProducer(numArchRegs, 0), lastProducerPos(numArchRegs, 0)
{
    iq.reserve(params.iqEntries);
    lsq.reserve(params.lsqEntries);
    // Stale events of squashed instructions stay queued until their
    // cycle passes (validation drops them), so size the heap for the
    // issue rate times the longest completion latency, not just for
    // the live ROB — steady state must never reallocate.
    compHeap.reserve(std::size_t(params.robEntries) * 16);
    compDue.reserve(std::size_t(params.robEntries) * 16);
}

bool
Backend::canAccept(unsigned n) const
{
    return rob.size() + renamePipe.size() + n <= params.robEntries;
}

void
Backend::accept(DynInst di, Cycle now)
{
    di.readyAt = now + params.decodeToDispatch;
    ELFSIM_ASSERT(renamePipe.empty() || renamePipe.back().seq < di.seq,
                  "out-of-order accept");
    renamePipe.push(std::move(di));
}

DynInst *
Backend::findBySeq(SeqNum seq)
{
    return findSeqInQueue(rob, seq);
}

const DynInst *
Backend::findBySeq(SeqNum seq) const
{
    return const_cast<Backend *>(this)->findBySeq(seq);
}

bool
Backend::sourcesReady(const DynInst &di) const
{
    // The recorded ring position is revisited instead of searching the
    // ROB: if the slot no longer holds the producer's seq, the
    // producer has committed (a squashed producer implies this
    // consumer was squashed too), i.e. the source is ready.
    if (di.srcProducer0 != 0) {
        const DynInst &p = rob.atPos(di.srcPos0);
        if (p.seq == di.srcProducer0 && !p.completed)
            return false;
    }
    if (di.srcProducer1 != 0) {
        const DynInst &p = rob.atPos(di.srcPos1);
        if (p.seq == di.srcProducer1 && !p.completed)
            return false;
    }
    return true;
}

Cycle
Backend::execLatency(const DynInst &di, Cycle now)
{
    switch (di.si->cls) {
      case InstClass::IntMul:
        return params.mulLatency;
      case InstClass::IntDiv:
        return params.divLatency;
      case InstClass::FloatOp:
        return params.fpLatency;
      case InstClass::Load:
        // Address generated at EXE; the access starts there. The
        // load-to-use latency comes from the hierarchy — wrong-path
        // loads access (and pollute) it too.
        return mem.dataAccess(di.pc(), di.memAddr, false,
                              now + params.issueToExec);
      default:
        return 1;
    }
}

void
Backend::dispatch(Cycle now)
{
    unsigned n = 0;
    while (n < params.dispatchWidth && !renamePipe.empty() &&
           renamePipe.front().readyAt <= now) {
        if (rob.size() >= params.robEntries) {
            ++st.robFullCycles;
            return;
        }
        if (iq.size() >= params.iqEntries)
            return;
        DynInst &front = renamePipe.front();
        if (front.si->isMemInst() && lsq.size() >= params.lsqEntries)
            return;

        DynInst di = renamePipe.pop();
        ++n;

        // Record producers (seq + ROB slot) at rename.
        for (unsigned s = 0; s < 2; ++s) {
            const RegIndex r = di.si->srcRegs[s];
            const SeqNum p = r < numArchRegs ? lastProducer[r] : 0;
            const std::uint32_t pos =
                r < numArchRegs ? lastProducerPos[r] : 0;
            if (s == 0) {
                di.srcProducer0 = p;
                di.srcPos0 = pos;
            } else {
                di.srcProducer1 = p;
                di.srcPos1 = pos;
            }
        }

        // Memory-dependence filter: the load waits for the youngest
        // older in-flight store with the recorded PC.
        if (di.isLoad()) {
            const Addr storePC = mdp.storeFor(di.pc());
            if (storePC != invalidAddr) {
                for (std::size_t i = rob.size(); i-- > 0;) {
                    const DynInst &s = rob.at(i);
                    if (s.isStore() && s.pc() == storePC &&
                        !s.completed) {
                        di.waitStore = s.seq;
                        di.waitStorePos =
                            std::uint32_t(rob.posOf(i));
                        break;
                    }
                }
            }
        }

        const SeqNum seq = di.seq;
        di.dispatched = true;
        const std::uint32_t pos =
            std::uint32_t(rob.pushPos(std::move(di)));
        const DynInst &placed = rob.atPos(pos);
        if (placed.si->destReg < numArchRegs) {
            lastProducer[placed.si->destReg] = seq;
            lastProducerPos[placed.si->destReg] = pos;
        }
        if (placed.si->isMemInst())
            lsq.push_back({seq, pos});
        iq.push_back({seq, pos});
    }
}

void
Backend::issue(Cycle now, Redirect &redirect)
{
    (void)redirect;
    unsigned issued = 0;
    unsigned alu = 0, muldiv = 0, ldst = 0, simd = 0;

    // One compacting pass: entries that issue (or turned out stale)
    // are dropped by not copying them to the write cursor — the
    // age-ordered scan and the issue decisions are identical to the
    // old erase-in-place loop, without its O(queue) tail shifts.
    std::size_t w = 0, r = 0;
    const std::size_t n = iq.size();
    for (; r < n && issued < params.issueWidth; ++r) {
        const SeqSlot slot = iq[r];
        DynInst *di = &rob.atPos(slot.pos);
        ELFSIM_ASSERT(di->seq == slot.seq, "IQ entry not in ROB");
        if (di->issued)
            continue;

        if (!sourcesReady(*di)) {
            iq[w++] = slot;
            continue;
        }

        // Memory-dependence wait.
        if (di->isLoad() && di->waitStore != 0) {
            const DynInst &dep = rob.atPos(di->waitStorePos);
            if (dep.seq == di->waitStore && !dep.completed) {
                iq[w++] = slot;
                continue;
            }
            di->waitStore = 0;
        }

        // Functional unit availability.
        bool fuOk = false;
        switch (di->si->cls) {
          case InstClass::IntMul:
          case InstClass::IntDiv:
            fuOk = muldiv < params.numMulDiv && alu < params.numAlu;
            if (fuOk) {
                ++muldiv;
                ++alu;
            }
            break;
          case InstClass::FloatOp:
            fuOk = simd < params.numSimd;
            if (fuOk)
                ++simd;
            break;
          case InstClass::Load:
          case InstClass::Store:
            fuOk = ldst < params.numLdSt;
            if (fuOk)
                ++ldst;
            break;
          default: // ALU, branches, nops
            fuOk = alu < params.numAlu;
            if (fuOk)
                ++alu;
            break;
        }
        if (!fuOk) {
            iq[w++] = slot;
            continue;
        }

        di->issued = true;
        const Cycle lat = di->isStore() ? 1 : execLatency(*di, now);
        di->completeCycle = now + params.issueToExec + lat - 1;
        compHeap.push_back({di->completeCycle, slot.seq, slot.pos});
        std::push_heap(compHeap.begin(), compHeap.end(), laterCycle);
        ++issued;
    }
    for (; r < n; ++r)
        iq[w++] = iq[r];
    iq.resize(w);
}

void
Backend::complete(Cycle now, Redirect &redirect)
{
    // Pop every event due by now. The batch is re-sorted to seq order
    // so instructions complete in exactly the ROB (age) order the old
    // full-ROB scan used.
    compDue.clear();
    while (!compHeap.empty() && compHeap.front().cycle <= now) {
        std::pop_heap(compHeap.begin(), compHeap.end(), laterCycle);
        compDue.push_back(compHeap.back());
        compHeap.pop_back();
    }
    if (compDue.empty())
        return;
    std::sort(compDue.begin(), compDue.end(),
              [](const CompletionEvent &a, const CompletionEvent &b) {
                  return a.seq < b.seq;
              });

    for (const CompletionEvent &ev : compDue) {
        // Validate against the live ROB: squashes leave ghost events,
        // and a squashed-then-replayed instruction can even reuse the
        // same seq and slot with a different completion cycle. Any
        // mismatch means this event's instruction is gone; its
        // replacement (if any) carries its own event.
        if (!rob.livePos(ev.pos))
            continue;
        DynInst &di = rob.atPos(ev.pos);
        if (di.seq != ev.seq || !di.issued || di.completed ||
            di.completeCycle > now)
            continue;
        di.completed = true;

        // Store-to-load order violation check: a younger load that
        // already executed with an overlapping address speculated
        // past this store.
        if (di.isStore() && !di.wrongPath) {
            for (const SeqSlot &l : lsq) {
                if (l.seq <= di.seq)
                    continue;
                const DynInst &ld = rob.atPos(l.pos);
                if (ld.seq != l.seq || !ld.isLoad() || !ld.completed ||
                    ld.wrongPath)
                    continue;
                if (ld.memAddr / 8 == di.memAddr / 8) {
                    mdp.train(ld.pc(), di.pc());
                    ++st.memOrderFlushes;
                    Redirect req;
                    req.kind = RedirectKind::MemOrder;
                    req.survivorSeq = ld.seq - 1;
                    req.targetPC = ld.pc();
                    req.oracleCursor = ld.oracleIdx;
                    req.atCycle = now;
                    mergeRedirect(redirect, req);
                    break;
                }
            }
        }

        // Branch resolution.
        if (di.isBranch() && !di.wrongPath &&
            (di.mispredict || di.fetchStalled)) {
            Redirect req;
            req.kind = RedirectKind::ExecMispredict;
            req.survivorSeq = di.seq;
            req.targetPC = di.actualNext;
            req.oracleCursor = di.oracleIdx + 1;
            req.atCycle = now;
            mergeRedirect(redirect, req);
        }
    }
}

void
Backend::commit(Cycle now)
{
    unsigned n = 0;
    while (n < params.commitWidth && !rob.empty()) {
        DynInst &head = rob.front();
        if (!head.completed)
            break;
        // A flush triggered by this instruction has not been applied
        // yet (ELF payload-pending): it must not retire.
        if (head.flushPending)
            break;
        ELFSIM_ASSERT(!head.wrongPath,
                      "wrong-path instruction reached commit: seq=%llu "
                      "pc=0x%llx mode=%d stalled=%d haspred=%d "
                      "predTaken=%d %s",
                      (unsigned long long)head.seq,
                      (unsigned long long)head.pc(), int(head.mode),
                      int(head.fetchStalled), int(head.hasPrediction),
                      int(head.predTaken), head.si->disasm().c_str());

        if (head.isStore())
            mem.dataAccess(head.pc(), head.memAddr, true, now);

        ++st.committed;
        if (head.mode == FetchMode::Coupled)
            ++st.coupledCommitted;
        if (head.isBranch()) {
            ++st.committedBranches;
            const bool mispredicted =
                head.wasMispredicted || head.mispredict ||
                head.taken != head.predTaken;
            if (head.si->branch == BranchKind::CondDirect) {
                if (mispredicted)
                    ++st.condMispredicts;
            } else if (mispredicted) {
                ++st.targetMispredicts;
            }
        }

#ifdef ELFSIM_TRACE_REDIRECTS
        if (head.seq >= 218840 && head.seq <= 218875) {
            std::fprintf(stderr,
                         "  commit seq=%llu pc=0x%llx mode=%d wp=%d "
                         "hasPred=%d predTaken=%d taken=%d mispred=%d "
                         "stalled=%d ckpt=%llu\n",
                         (unsigned long long)head.seq,
                         (unsigned long long)head.pc(), int(head.mode),
                         int(head.wrongPath), int(head.hasPrediction),
                         int(head.predTaken), int(head.taken),
                         int(head.mispredict), int(head.fetchStalled),
                         (unsigned long long)head.checkpointId);
        }
#endif
        if (commitHook)
            commitHook(head);

        if (!lsq.empty() && lsq.front().seq == head.seq)
            lsq.erase(lsq.begin());
        rob.dropFront();
        ++n;
    }
}

void
Backend::tick(Cycle now, Redirect &redirect)
{
    commit(now);
    complete(now, redirect);
    issue(now, redirect);
    dispatch(now);
}

void
Backend::rebuildScoreboard()
{
    // Only dispatched (ROB) instructions define producers: rename-
    // pipe instructions re-register their destinations when they
    // dispatch, in order — pre-registering them here would make
    // older instructions read younger (or their own) producers.
    std::fill(lastProducer.begin(), lastProducer.end(), 0);
    std::fill(lastProducerPos.begin(), lastProducerPos.end(), 0);
    rob.forEachPos([&](const DynInst &di, std::size_t pos) {
        if (di.si->destReg < numArchRegs) {
            lastProducer[di.si->destReg] = di.seq;
            lastProducerPos[di.si->destReg] = std::uint32_t(pos);
        }
    });
}

void
Backend::squashYoungerThan(SeqNum survivor_seq)
{
    while (!renamePipe.empty() &&
           renamePipe.back().seq > survivor_seq)
        renamePipe.popBack(1);
    while (!rob.empty() && rob.back().seq > survivor_seq)
        rob.popBack(1);
    iq.erase(std::remove_if(iq.begin(), iq.end(),
                            [&](const SeqSlot &s) {
                                return s.seq > survivor_seq;
                            }),
             iq.end());
    lsq.erase(std::remove_if(lsq.begin(), lsq.end(),
                             [&](const SeqSlot &s) {
                                 return s.seq > survivor_seq;
                             }),
              lsq.end());
    rebuildScoreboard();
}

bool
Backend::atRobHead(SeqNum seq) const
{
    return !rob.empty() && rob.front().seq == seq;
}

DynInst *
Backend::findInFlightMutable(SeqNum seq)
{
    if (DynInst *di = findBySeq(seq))
        return di;
    return findSeqInQueue(renamePipe, seq);
}

} // namespace elfsim
