#include "sim/sweep.hh"

#include <chrono>
#include <cstdlib>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace elfsim {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

SweepJob
makeVariantJob(const Program &prog, FrontendVariant variant,
               const RunOptions &opts)
{
    SweepJob j;
    j.program = &prog;
    j.cfg = makeConfig(variant);
    j.opts = opts;
    return j;
}

unsigned
SweepRunner::resolveJobs(unsigned requested)
{
    if (requested)
        return requested;
    if (const char *env = std::getenv("ELFSIM_JOBS")) {
        const unsigned long n = std::strtoul(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
    }
    return ThreadPool::hardwareThreads();
}

SweepRunner::SweepRunner(unsigned threads)
    : threads(resolveJobs(threads))
{
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepJob> &grid)
{
    std::vector<RunResult> results(grid.size());
    jobSeconds.assign(grid.size(), 0.0);

    const auto sweepStart = std::chrono::steady_clock::now();

    auto runOne = [&](std::size_t i) {
        SweepJob job = grid[i];
        if (baseSeed)
            job.cfg.rngSeed = mix64(baseSeed, i + 1);
        const auto jobStart = std::chrono::steady_clock::now();
        results[i] = runSimulation(*job.program, job.cfg, job.opts);
        jobSeconds[i] = secondsSince(jobStart);
    };

    if (threads <= 1 || grid.size() <= 1) {
        for (std::size_t i = 0; i < grid.size(); ++i)
            runOne(i);
    } else {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < grid.size(); ++i)
            pool.submit([&runOne, i] { runOne(i); });
        pool.wait();
    }

    lastTiming = SweepTiming{};
    lastTiming.jobs = static_cast<unsigned>(grid.size());
    lastTiming.threads = threads;
    lastTiming.wallSeconds = secondsSince(sweepStart);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        lastTiming.serialSeconds += jobSeconds[i];
        lastTiming.simCycles += results[i].cycles;
        lastTiming.simInsts += results[i].insts;
    }
    return results;
}

void
SweepRunner::printTimingSummary(std::ostream &os) const
{
    const SweepTiming &t = lastTiming;
    stats::StatGroup g("sweep");
    g.addCounter("jobs", "grid cells simulated") += t.jobs;
    g.addCounter("threads", "worker threads") += t.threads;
    g.addFormula("wall_seconds", "whole-sweep wall-clock",
                 [&t] { return t.wallSeconds; });
    g.addFormula("serial_seconds", "sum of per-job wall-clocks",
                 [&t] { return t.serialSeconds; });
    g.addFormula("speedup", "serial_seconds / wall_seconds",
                 [&t] { return t.speedup(); });
    g.addCounter("sim_cycles", "aggregate measured cycles") +=
        t.simCycles;
    g.addCounter("sim_insts", "aggregate measured instructions") +=
        t.simInsts;
    g.addFormula("sim_cycles_per_second",
                 "simulated cycles per wall-clock second",
                 [&t] { return t.cyclesPerSecond(); });
    stats::Distribution &d =
        g.addDistribution("job_seconds", "per-job wall-clock");
    for (double s : jobSeconds)
        d.sample(s);
    g.dump(os);
}

} // namespace elfsim
