/**
 * @file
 * elfsim-coord — distributed sweep coordinator CLI
 * (dist/coordinator.hh). Shards an elfsim-sweepspec-v1 grid across a
 * fleet of `elfsimd --worker` processes and writes the merged
 * elfsim-results-v2 document — byte-identical to a single-process run
 * of the same spec (`--local` produces the reference bytes).
 *
 *   # one-host fleet: spawn 4 workers on ephemeral ports
 *   elfsim-coord --spec fig9.spec.json --spawn 4 --json fig9.json
 *
 *   # pre-started fleet (possibly remote ports forwarded locally)
 *   elfsimd --worker --port 8401 &   elfsimd --worker --port 8402 &
 *   elfsim-coord --spec fig9.spec.json \
 *       --workers 127.0.0.1:8401,127.0.0.1:8402 \
 *       --ledger fig9.ledger.jsonl --json fig9.json
 *
 *   # single-process reference (same output bytes, no fleet)
 *   elfsim-coord --spec fig9.spec.json --local --json ref.json
 */

#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench_util.hh"
#include "dist/coordinator.hh"
#include "dist/spawn.hh"
#include "service/http.hh"

using namespace elfsim;
using namespace elfsim::bench;

namespace {

void
printCoordUsage(const char *argv0, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s --spec PATH (--workers LIST | --spawn N | --local) "
        "[options]\n"
        "  --spec PATH     elfsim-sweepspec-v1 grid to run (required)\n"
        "  --workers LIST  comma-separated host:port worker "
        "endpoints\n"
        "  --spawn N       spawn N local `elfsimd --worker` processes "
        "on ephemeral\n"
        "                  ports (stopped on exit)\n"
        "  --worker-bin P  elfsimd binary for --spawn (default: "
        "elfsimd next to\n"
        "                  this binary, or $ELFSIM_BENCH_DIR/elfsimd)\n"
        "  --worker-jobs N sweep threads per spawned worker (default "
        "1)\n"
        "  --local         no fleet: run the grid in this process "
        "(reference bytes)\n"
        "  --jobs N        --local only: sweep threads (default: "
        "spec, then auto)\n"
        "  --ledger PATH   journal leases + completed cells (crash-"
        "safe JSONL)\n"
        "  --resume PATH   like --ledger, but first adopt the ok "
        "cells already in it\n"
        "  --lease S       declare a silent worker dead after S "
        "seconds (default 30;\n"
        "                  must exceed the worker heartbeat period)\n"
        "  --chunk N       cells per lease (default: pending / (4 * "
        "workers))\n"
        "  --hedge MS      idle workers duplicate straggler cells "
        "after MS ms\n"
        "                  (first completion wins; default off)\n"
        "  --worker-failures N  chunk failures before a worker is "
        "quarantined\n"
        "                  (default 3)\n"
        "  --cell-retries N  lease expiries before a cell degrades to "
        "failed\n"
        "                  (default 3)\n"
        "  --probes N      health probes before a quarantined worker "
        "is declared\n"
        "                  dead (default 5)\n"
        "  --probe-base-ms MS  probation-probe backoff base (default "
        "100)\n"
        "  --backoff-seed N  seed of the jittered-backoff streams "
        "(replayable)\n"
        "  --worker-heartbeat-ms MS  the fleet's heartbeat period "
        "(default 1000;\n"
        "                  --spawn forwards it to its workers)\n"
        "  --no-fallback   fail leftover cells instead of finishing "
        "them\n"
        "                  in-process when the whole fleet is lost\n"
        "  --json PATH     write the merged elfsim-results-v2 "
        "document\n"
        "  --stats-json PATH  write the scheduling counters "
        "(elfsim-coordstats-v1)\n"
        "  --trace-cache D / --no-trace / --ckpt-cache D / --no-ckpt\n"
        "                  artifact-cache knobs (as in the benches); "
        "--spawn passes\n"
        "                  --ckpt-cache through to its workers\n"
        "  --help          this text\n"
        "exit status: 0 ok, 1 fleet/export error, 2 usage error, "
        "3 failed cells\n",
        argv0);
}

std::vector<dist::WorkerEndpoint>
parseWorkerList(const char *argv0, const std::string &list)
{
    std::vector<dist::WorkerEndpoint> out;
    std::size_t at = 0;
    while (at <= list.size()) {
        std::size_t comma = list.find(',', at);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string item = list.substr(at, comma - at);
        at = comma + 1;
        if (item.empty())
            continue;
        const std::size_t colon = item.rfind(':');
        const unsigned long port =
            colon == std::string::npos
                ? 0
                : std::strtoul(item.c_str() + colon + 1, nullptr, 10);
        if (colon == std::string::npos || colon == 0 || port == 0 ||
            port > 65535) {
            std::fprintf(stderr,
                         "%s: --workers expects host:port entries "
                         "('%s')\n",
                         argv0, item.c_str());
            std::exit(2);
        }
        dist::WorkerEndpoint ep;
        ep.host = item.substr(0, colon);
        ep.port = std::uint16_t(port);
        out.push_back(std::move(ep));
    }
    return out;
}

/** elfsimd for --spawn: next to this binary, else $ELFSIM_BENCH_DIR. */
std::string
defaultWorkerBin(const char *argv0)
{
    const std::string self = argv0;
    const std::size_t slash = self.rfind('/');
    if (slash != std::string::npos)
        return self.substr(0, slash + 1) + "elfsimd";
    if (const char *dir = std::getenv("ELFSIM_BENCH_DIR"))
        return std::string(dir) + "/elfsimd";
    return "elfsimd";
}

/** Sum of trace.compiles over the fleet's /stats documents — the
 *  one-compile-per-fleet evidence printed after a distributed run. */
void
printFleetTraceStats(const std::vector<dist::WorkerEndpoint> &workers)
{
    std::uint64_t compiles = 0, hits = 0;
    bool any = false;
    for (const dist::WorkerEndpoint &ep : workers) {
        try {
            const service::HttpResponse resp = service::httpFetch(
                ep.host, ep.port, "GET", "/stats");
            if (resp.status != 200)
                continue;
            const json::Value doc = json::parse(resp.body);
            compiles += doc.at("trace").at("trace.compiles").asU64();
            hits += doc.at("trace").at("trace.cache_hits").asU64();
            any = true;
        } catch (const SimError &) {
            // A worker that died mid-run has no stats to sum.
        }
    }
    if (any)
        std::printf("fleet trace stats: %llu compile(s), %llu cache "
                    "hit(s) across %zu worker(s)\n",
                    (unsigned long long)compiles,
                    (unsigned long long)hits, workers.size());
}

int
resultsExit(const std::vector<RunResult> &results)
{
    std::size_t bad = 0;
    for (const RunResult &r : results) {
        if (r.ok())
            continue;
        ++bad;
        std::fprintf(stderr,
                     "cell %s/%s %s after %llu attempt(s): %s\n",
                     r.workload.c_str(), r.variant.c_str(),
                     jobStatusName(r.status),
                     (unsigned long long)r.attempts, r.error.c_str());
    }
    if (bad) {
        std::fprintf(stderr, "%zu of %zu cells did not complete ok\n",
                     bad, results.size());
        return 3;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string specPath, workerList, workerBin, ledgerPath, jsonPath;
    std::string statsJsonPath;
    std::string traceCacheDir, ckptCacheDir;
    bool noTrace = false, noCkpt = false;
    bool local = false, resume = false, noFallback = false;
    std::size_t spawnCount = 0, chunkCells = 0;
    unsigned workerJobs = 1, jobs = 0, leaseSeconds = 30;
    unsigned hedgeMs = 0, workerFailures = 3, cellRetries = 3;
    unsigned probes = 5, probeBaseMs = 100, heartbeatMs = 1000;
    bool haveBackoffSeed = false;
    std::uint64_t backoffSeed = 0;

    const auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: option '%s' needs a value\n",
                         argv[0], argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--spec"))
            specPath = value(i);
        else if (!std::strcmp(argv[i], "--workers"))
            workerList = value(i);
        else if (!std::strcmp(argv[i], "--spawn"))
            spawnCount = std::size_t(
                parseCount(argv[0], "--spawn", value(i), 256));
        else if (!std::strcmp(argv[i], "--worker-bin"))
            workerBin = value(i);
        else if (!std::strcmp(argv[i], "--worker-jobs"))
            workerJobs = unsigned(parseCount(argv[0], "--worker-jobs",
                                             value(i), UINT_MAX));
        else if (!std::strcmp(argv[i], "--local"))
            local = true;
        else if (!std::strcmp(argv[i], "--jobs"))
            jobs = unsigned(
                parseCount(argv[0], "--jobs", value(i), UINT_MAX));
        else if (!std::strcmp(argv[i], "--ledger"))
            ledgerPath = value(i);
        else if (!std::strcmp(argv[i], "--resume")) {
            ledgerPath = value(i);
            resume = true;
        } else if (!std::strcmp(argv[i], "--lease"))
            leaseSeconds = unsigned(
                parseCount(argv[0], "--lease", value(i), 86400));
        else if (!std::strcmp(argv[i], "--chunk"))
            chunkCells = std::size_t(
                parseCount(argv[0], "--chunk", value(i)));
        else if (!std::strcmp(argv[i], "--hedge"))
            hedgeMs = unsigned(
                parseCount(argv[0], "--hedge", value(i), 3600000));
        else if (!std::strcmp(argv[i], "--worker-failures"))
            workerFailures = unsigned(parseCount(
                argv[0], "--worker-failures", value(i), UINT_MAX));
        else if (!std::strcmp(argv[i], "--cell-retries"))
            cellRetries = unsigned(parseCount(
                argv[0], "--cell-retries", value(i), UINT_MAX));
        else if (!std::strcmp(argv[i], "--probes"))
            probes = unsigned(
                parseCount(argv[0], "--probes", value(i), UINT_MAX));
        else if (!std::strcmp(argv[i], "--probe-base-ms"))
            probeBaseMs = unsigned(parseCount(
                argv[0], "--probe-base-ms", value(i), 3600000));
        else if (!std::strcmp(argv[i], "--backoff-seed")) {
            backoffSeed = parseCount(argv[0], "--backoff-seed",
                                     value(i));
            haveBackoffSeed = true;
        } else if (!std::strcmp(argv[i], "--worker-heartbeat-ms"))
            heartbeatMs = unsigned(parseCount(
                argv[0], "--worker-heartbeat-ms", value(i), 3600000));
        else if (!std::strcmp(argv[i], "--no-fallback"))
            noFallback = true;
        else if (!std::strcmp(argv[i], "--json"))
            jsonPath = value(i);
        else if (!std::strcmp(argv[i], "--stats-json"))
            statsJsonPath = value(i);
        else if (!std::strcmp(argv[i], "--trace-cache"))
            traceCacheDir = value(i);
        else if (!std::strcmp(argv[i], "--no-trace"))
            noTrace = true;
        else if (!std::strcmp(argv[i], "--ckpt-cache"))
            ckptCacheDir = value(i);
        else if (!std::strcmp(argv[i], "--no-ckpt"))
            noCkpt = true;
        else if (!std::strcmp(argv[i], "--help") ||
                 !std::strcmp(argv[i], "-h")) {
            printCoordUsage(argv[0], stdout);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         argv[i]);
            printCoordUsage(argv[0], stderr);
            return 2;
        }
    }

    if (specPath.empty()) {
        std::fprintf(stderr, "%s: --spec is required\n", argv[0]);
        printCoordUsage(argv[0], stderr);
        return 2;
    }
    const int modes =
        int(local) + int(!workerList.empty()) + int(spawnCount > 0);
    if (modes != 1) {
        std::fprintf(stderr,
                     "%s: pick exactly one of --workers, --spawn, "
                     "--local\n",
                     argv[0]);
        printCoordUsage(argv[0], stderr);
        return 2;
    }
    // A lease the heartbeats can never reset would expire every
    // chunk: reject the configuration instead of thrashing.
    if (!local && std::uint64_t(leaseSeconds) * 1000 <= heartbeatMs) {
        std::fprintf(stderr,
                     "%s: --lease %us must exceed the worker "
                     "heartbeat period (%ums)\n",
                     argv[0], leaseSeconds, heartbeatMs);
        return 2;
    }

    if (noTrace)
        TraceCache::instance().setEnabled(false);
    if (!traceCacheDir.empty())
        TraceCache::instance().setDirectory(traceCacheDir);
    if (noCkpt)
        CheckpointStore::instance().setEnabled(false);
    if (!ckptCacheDir.empty())
        CheckpointStore::instance().setDirectory(ckptCacheDir);

    SweepSpec spec;
    try {
        spec = loadSweepSpec(specPath);
        validateSweepSpec(spec);
    } catch (const SimError &e) {
        std::fprintf(stderr, "%s: --spec %s: %s\n", argv[0],
                     specPath.c_str(), e.what());
        return 2;
    }

    const auto writeMerged = [&](const std::vector<RunResult> &rs) {
        if (jsonPath.empty())
            return true;
        std::ofstream os(jsonPath, std::ios::binary);
        writeResultsJson(os, rs);
        if (!os) {
            std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0],
                         jsonPath.c_str());
            return false;
        }
        std::printf("wrote %s\n", jsonPath.c_str());
        return true;
    };

    if (local) {
        // The reference path: same spec, same merge, one process.
        // Emits the results-only document so its bytes are directly
        // comparable (cmp(1)) with a distributed run's merge.
        ExpandedSweep ex;
        try {
            ex = expandSweep(spec);
        } catch (const SimError &e) {
            std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
            return 2;
        }
        SweepRunner runner(jobs ? jobs : spec.jobs);
        armRunner(runner, spec);
        const std::vector<RunResult> results = runner.run(ex.jobs);
        printResultsTable(results, ex.labels);
        if (!writeMerged(results))
            return 1;
        return resultsExit(results);
    }

    std::vector<dist::LocalWorker> fleet;
    dist::CoordinatorConfig ccfg;
    if (spawnCount > 0) {
        std::vector<std::string> extra;
        if (!ckptCacheDir.empty()) {
            extra.push_back("--ckpt-cache");
            extra.push_back(ckptCacheDir);
        }
        if (noTrace)
            extra.push_back("--no-trace");
        if (heartbeatMs != 1000) {
            extra.push_back("--heartbeat-ms");
            extra.push_back(std::to_string(heartbeatMs));
        }
        try {
            fleet = dist::spawnLocalWorkers(
                workerBin.empty() ? defaultWorkerBin(argv[0])
                                  : workerBin,
                spawnCount, workerJobs, extra);
        } catch (const SimError &e) {
            std::fprintf(stderr, "%s: --spawn: %s\n", argv[0],
                         e.what());
            return 1;
        }
        for (const dist::LocalWorker &w : fleet) {
            dist::WorkerEndpoint ep;
            ep.port = w.port;
            ccfg.workers.push_back(std::move(ep));
        }
    } else {
        ccfg.workers = parseWorkerList(argv[0], workerList);
    }
    ccfg.ledgerPath = ledgerPath;
    ccfg.resume = resume;
    ccfg.leaseSeconds = leaseSeconds;
    ccfg.chunkCells = chunkCells;
    ccfg.hedgeDelayMs = hedgeMs;
    ccfg.maxWorkerFailures = workerFailures;
    ccfg.maxCellRetries = cellRetries;
    ccfg.quarantineProbes = probes;
    ccfg.probeBaseMs = probeBaseMs;
    ccfg.workerHeartbeatMs = heartbeatMs;
    ccfg.localFallback = !noFallback;
    if (haveBackoffSeed)
        ccfg.backoffSeed = backoffSeed;

    dist::SweepCoordinator coord(ccfg);
    int rc = 0;
    try {
        const std::vector<RunResult> results = coord.run(spec);
        const dist::CoordStats &st = coord.stats();
        std::printf("distributed sweep: %zu cells (%zu adopted, %zu "
                    "run, %zu in-process, %zu failed-by-fleet) "
                    "across %zu worker(s) in %.2f s — %.1f cells/s; "
                    "%zu chunk(s), %zu lease(s) expired, %zu "
                    "requeue(s), %zu hedge(s), %zu quarantine(s), "
                    "%zu readmission(s), %zu worker(s) died\n",
                    st.cellsTotal, st.cellsAdopted, st.cellsRun,
                    st.cellsFallback, st.cellsSynthFailed,
                    ccfg.workers.size(), st.wallSeconds,
                    st.cellsPerSecond(), st.chunksDispatched,
                    st.leasesExpired, st.requeues, st.hedges,
                    st.quarantines, st.readmissions, st.workersDead);
        printFleetTraceStats(ccfg.workers);
        if (!statsJsonPath.empty()) {
            std::ofstream os(statsJsonPath, std::ios::binary);
            dist::writeCoordStatsJson(os, st);
            if (!os) {
                std::fprintf(stderr, "%s: cannot write '%s'\n",
                             argv[0], statsJsonPath.c_str());
                rc = 1;
            }
        }
        if (!writeMerged(results))
            rc = 1;
        else if (rc == 0)
            rc = resultsExit(results);
    } catch (const SimError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        rc = 1;
    }
    dist::stopLocalWorkers(fleet);
    return rc;
}
