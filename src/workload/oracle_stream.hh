/**
 * @file
 * Architectural (committed-path) instruction stream generator.
 *
 * The OracleStream lazily produces the dynamic instruction stream the
 * program will actually commit, in program order, binding branch
 * outcomes, branch targets, and memory addresses from the behaviour
 * specs. It keeps a window from the oldest uncommitted instruction to
 * the newest generated one so that pipeline flushes can *replay*
 * already-generated instructions deterministically — the generator
 * state never needs to rewind.
 *
 * The front-end walks this stream while on the correct path; when a
 * prediction disagrees with the oracle outcome the front-end keeps
 * fetching real wrong-path instructions from the static image (see
 * WrongPathWalker) until the branch resolves in the back-end.
 */

#ifndef ELFSIM_WORKLOAD_ORACLE_STREAM_HH
#define ELFSIM_WORKLOAD_ORACLE_STREAM_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/queue.hh"
#include "common/types.hh"
#include "workload/program.hh"

namespace elfsim {

/** One architectural dynamic instruction. */
struct OracleInst
{
    const StaticInst *si = nullptr;
    /** Branch outcome (true for all taken control transfers). */
    bool taken = false;
    /** Architectural next PC (fall-through or actual target). */
    Addr nextPC = invalidAddr;
    /** Bound memory address (invalidAddr for non-memory ops). */
    Addr memAddr = invalidAddr;
};

/** Lazily generated, replayable architectural instruction window. */
class OracleStream
{
  public:
    /**
     * @param prog Program to execute.
     * @param window_cap Maximum in-flight (uncommitted) window; a
     *        guard against callers forgetting to retire.
     */
    explicit OracleStream(const Program &prog,
                          std::size_t window_cap = 1u << 16);

    /**
     * Architectural instruction at 1-based index @a idx. Generates
     * forward as needed. @a idx must not be older than the oldest
     * unretired instruction.
     */
    const OracleInst &at(SeqNum idx);

    /** PC of the instruction at @a idx. */
    Addr
    pcAt(SeqNum idx)
    {
        return at(idx).si->pc;
    }

    /** Oldest unretired architectural index. */
    SeqNum oldest() const { return baseIdx; }

    /** Newest generated architectural index (0 if none yet). */
    SeqNum newest() const { return baseIdx + window.size() - 1; }

    /** Retire (drop) all instructions with index <= @a idx. */
    void retireUpTo(SeqNum idx);

    /** The program being executed. */
    const Program &program() const { return prog; }

  private:
    void generateOne();

    const Program &prog;
    std::size_t windowCap;
    /** Ring buffer of the in-flight window (no steady-state heap). */
    BoundedQueue<OracleInst> window;
    SeqNum baseIdx = 1;

    Addr pc;
    std::vector<Addr> callStack;
    std::vector<std::uint64_t> condCount;
    std::vector<std::uint64_t> indCount;
    std::vector<std::uint64_t> memCount;

    static constexpr std::size_t maxCallDepth = 4096;
};

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_ORACLE_STREAM_HH
