/**
 * @file
 * Cycle-identity guard for the hot-path kernel optimizations.
 *
 * The allocation-free tick loop, the stable-position ROB index, and
 * the flat predictor tables are pure *mechanical* rewrites: they must
 * not change a single simulated cycle. This test pins every frontend
 * variant on three small workloads (one per suite family) against
 * golden cycle/instruction counts captured from the pre-optimization
 * simulator. Any divergence means an optimization changed simulated
 * behavior, not just simulator speed — which is a bug here even if
 * the new behavior were "better".
 *
 * If a future PR *intentionally* changes timing semantics, it must
 * re-capture these goldens and say so in its description.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/catalog.hh"
#include "workload/trace_cache.hh"

using namespace elfsim;

namespace {

struct Golden
{
    const char *workload;
    const char *variant;
    std::uint64_t cycles;
    std::uint64_t insts;
};

// Captured with warmupInsts=20000, measureInsts=50000 on the
// pre-optimization kernel (see EXPERIMENTS.md "Simulator throughput").
constexpr Golden goldens[] = {
    { "641.leela", "NoDCF", 47530ULL, 50002ULL },
    { "641.leela", "DCF", 27300ULL, 50003ULL },
    { "641.leela", "L-ELF", 27065ULL, 50003ULL },
    { "641.leela", "RET-ELF", 27027ULL, 50003ULL },
    { "641.leela", "IND-ELF", 27065ULL, 50003ULL },
    { "641.leela", "COND-ELF", 26969ULL, 50003ULL },
    { "641.leela", "U-ELF", 27307ULL, 50006ULL },
    { "602.gcc", "NoDCF", 42036ULL, 50005ULL },
    { "602.gcc", "DCF", 55115ULL, 50003ULL },
    { "602.gcc", "L-ELF", 55766ULL, 50003ULL },
    { "602.gcc", "RET-ELF", 55432ULL, 50003ULL },
    { "602.gcc", "IND-ELF", 55766ULL, 50003ULL },
    { "602.gcc", "COND-ELF", 56082ULL, 50003ULL },
    { "602.gcc", "U-ELF", 55365ULL, 50003ULL },
    { "srv2.subtest_1", "NoDCF", 39662ULL, 50006ULL },
    { "srv2.subtest_1", "DCF", 41116ULL, 50006ULL },
    { "srv2.subtest_1", "L-ELF", 40466ULL, 50006ULL },
    { "srv2.subtest_1", "RET-ELF", 40006ULL, 50006ULL },
    { "srv2.subtest_1", "IND-ELF", 40466ULL, 50006ULL },
    { "srv2.subtest_1", "COND-ELF", 41729ULL, 50006ULL },
    { "srv2.subtest_1", "U-ELF", 40298ULL, 50006ULL },
};

constexpr FrontendVariant allVariants[] = {
    FrontendVariant::NoDcf,   FrontendVariant::Dcf,
    FrontendVariant::LElf,    FrontendVariant::RetElf,
    FrontendVariant::IndElf,  FrontendVariant::CondElf,
    FrontendVariant::UElf,
};

void
runAllGoldens(const char *mode)
{
    RunOptions opts;
    opts.warmupInsts = 20000;
    opts.measureInsts = 50000;

    std::size_t g = 0;
    for (const char *name :
         {"641.leela", "602.gcc", "srv2.subtest_1"}) {
        const WorkloadSpec *spec = findWorkload(name);
        ASSERT_NE(spec, nullptr) << name;
        const Program prog = buildWorkload(*spec);
        for (FrontendVariant v : allVariants) {
            ASSERT_LT(g, std::size(goldens));
            const Golden &want = goldens[g++];
            const RunResult r = runVariant(prog, v, opts);
            EXPECT_STREQ(r.workload.c_str(), want.workload);
            EXPECT_STREQ(r.variant.c_str(), want.variant);
            EXPECT_EQ(r.cycles, want.cycles)
                << want.workload << " / " << want.variant << " ("
                << mode << ")";
            EXPECT_EQ(r.insts, want.insts)
                << want.workload << " / " << want.variant << " ("
                << mode << ")";
        }
    }
    EXPECT_EQ(g, std::size(goldens));
}

/** RAII enable/disable of the process-wide trace cache. */
struct ScopedTraceEnable
{
    bool prev;
    explicit ScopedTraceEnable(bool on)
        : prev(TraceCache::instance().enabled())
    {
        TraceCache::instance().setEnabled(on);
    }
    ~ScopedTraceEnable() { TraceCache::instance().setEnabled(prev); }
};

// The default path: oracle streams backed by compiled traces (the
// TraceCache is on unless $ELFSIM_TRACE disables it).
TEST(GoldenCycles, EveryVariantMatchesPreOptimizationCounts)
{
    ScopedTraceEnable traces(true);
    runAllGoldens("compiled traces");
}

// The reference path: per-instruction lazy generation. Matching the
// same goldens as the compiled path proves trace compilation is
// behavior-neutral across every variant and workload family.
TEST(GoldenCycles, LazyGenerationMatchesTheSameGoldens)
{
    ScopedTraceEnable traces(false);
    runAllGoldens("lazy generation");
}

} // namespace
