#include "workload/trace_cache.hh"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/logging.hh"

namespace elfsim {

namespace {

/** Keep cache file names shell- and filesystem-friendly. */
std::string
sanitizedName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                        c == '.';
        out.push_back(ok ? c : '_');
    }
    return out.empty() ? std::string("trace") : out;
}

std::string
hexKey(std::uint64_t key)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[std::size_t(i)] = digits[key & 0xf];
        key >>= 4;
    }
    return out;
}

} // namespace

TraceCache::TraceCache()
{
    if (const char *env = std::getenv("ELFSIM_TRACE_CACHE")) {
        if (*env)
            dir = env;
    }
    if (const char *env = std::getenv("ELFSIM_TRACE")) {
        const std::string v = env;
        if (v == "0" || v == "off" || v == "false")
            on = false;
    }
}

TraceCache &
TraceCache::instance()
{
    static TraceCache cache;
    return cache;
}

std::string
TraceCache::pathForKey(const std::string &name, std::uint64_t key) const
{
    return dir + "/" + sanitizedName(name) + "-" + hexKey(key) +
           ".etrace";
}

std::string
TraceCache::filePath(const Program &prog, InstCount count) const
{
    std::lock_guard<std::mutex> lock(mtx);
    if (dir.empty())
        return "";
    return pathForKey(prog.name(), CompiledTrace::key(prog, count));
}

std::shared_ptr<const CompiledTrace>
TraceCache::acquire(const Program &prog, InstCount count)
{
    std::lock_guard<std::mutex> lock(mtx);
    if (!on)
        return nullptr;

    const std::uint64_t key = CompiledTrace::key(prog, count);
    if (auto it = memo.find(key); it != memo.end()) {
        ++counters.cacheHits;
        return it->second;
    }

    // On-disk artifact from an earlier process of the campaign. Any
    // defect — injected corruption, stale key, torn write — demotes
    // the artifact to a recompile, never to a failure.
    if (!dir.empty()) {
        const std::string path = pathForKey(prog.name(), key);
        std::error_code ec;
        if (std::filesystem::exists(path, ec)) {
            try {
                if (FaultInjector::instance().shouldCorruptTraceRead())
                    throw ParseError(errorf(
                        "injected trace-cache corruption reading '%s'",
                        path.c_str()));
                std::shared_ptr<const CompiledTrace> t =
                    CompiledTrace::load(path, key);
                ++counters.cacheHits;
                counters.bytesMapped += t->mappedBytes();
                memo.emplace(key, t);
                return t;
            } catch (const SimError &e) {
                ELFSIM_WARN("trace cache: %s; recompiling '%s'",
                            e.what(), prog.name().c_str());
            }
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<const CompiledTrace> t =
        CompiledTrace::compile(prog, count);
    counters.compileSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0).count();
    ++counters.compiles;
    ++counters.cacheMisses;
    memo.emplace(key, t);

    if (!dir.empty()) {
        // Best-effort persist; a read-only or full cache directory
        // must not take the run down.
        try {
            std::error_code ec;
            std::filesystem::create_directories(dir, ec);
            t->save(pathForKey(prog.name(), key));
        } catch (const SimError &e) {
            ELFSIM_WARN("trace cache: %s (artifact not saved)",
                        e.what());
        }
    }
    return t;
}

void
TraceCache::install(std::shared_ptr<const CompiledTrace> trace)
{
    if (!trace)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    memo.emplace(trace->cacheKey(), std::move(trace));
}

void
TraceCache::setDirectory(std::string d)
{
    std::lock_guard<std::mutex> lock(mtx);
    dir = std::move(d);
}

std::string
TraceCache::directory() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return dir;
}

void
TraceCache::setEnabled(bool enable)
{
    std::lock_guard<std::mutex> lock(mtx);
    on = enable;
}

bool
TraceCache::enabled() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return on;
}

TraceStats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return counters;
}

void
TraceCache::clearMemory()
{
    std::lock_guard<std::mutex> lock(mtx);
    memo.clear();
    counters = TraceStats{};
}

} // namespace elfsim
