#include <gtest/gtest.h>

#include "cache/cache.hh"

using namespace elfsim;

namespace {

CacheParams
smallCache(std::string name, unsigned size = 1024, unsigned assoc = 2,
           unsigned line = 64, Cycle lat = 1)
{
    CacheParams p;
    p.name = std::move(name);
    p.sizeBytes = size;
    p.assoc = assoc;
    p.lineBytes = line;
    p.hitLatency = lat;
    return p;
}

} // namespace

TEST(Cache, MissThenHit)
{
    FixedLatencyMemory mem("mem", 100);
    Cache c(smallCache("c"), &mem);
    const Cycle missLat = c.access(0x1000, false, 0);
    EXPECT_EQ(missLat, 101u); // 100 (mem) + 1 (hit latency)
    const Cycle hitLat = c.access(0x1000, false, missLat);
    EXPECT_EQ(hitLat, 1u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineSharesFill)
{
    FixedLatencyMemory mem("mem", 50);
    Cache c(smallCache("c"), &mem);
    c.access(0x2000, false, 0);
    // Different word in the same 64B line, after the fill completes.
    EXPECT_EQ(c.access(0x2030, false, 100), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, InflightAccessWaitsForFill)
{
    FixedLatencyMemory mem("mem", 100);
    Cache c(smallCache("c"), &mem);
    c.access(0x3000, false, 0); // fill ready at cycle 100
    const Cycle lat = c.access(0x3000, false, 40);
    EXPECT_EQ(lat, 61u); // 60 remaining + 1 hit latency
}

TEST(Cache, LruEviction)
{
    FixedLatencyMemory mem("mem", 10);
    // 2-way, 8 sets of 64B lines: lines 0x0000, 0x2000, 0x4000 map to
    // set 0 (stride = numSets * line = 8 * 64 = 512; use multiples).
    Cache c(smallCache("c", 1024, 2), &mem);
    const Addr a = 0x0000, b = 0x4000, d = 0x8000; // all set 0
    c.access(a, false, 0);
    c.access(b, false, 100);
    c.access(a, false, 200);  // touch a: b becomes LRU
    c.access(d, false, 300);  // evicts b
    EXPECT_TRUE(c.present(a));
    EXPECT_FALSE(c.present(b));
    EXPECT_TRUE(c.present(d));
}

TEST(Cache, PrefetchFillsWithoutHitCount)
{
    FixedLatencyMemory mem("mem", 100);
    Cache c(smallCache("c"), &mem);
    c.prefetch(0x5000, 0);
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.present(0x5000));
    // Demand access after the fill completes: plain hit.
    EXPECT_EQ(c.access(0x5000, false, 200), 1u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, PrefetchToPresentLineDropped)
{
    FixedLatencyMemory mem("mem", 100);
    Cache c(smallCache("c"), &mem);
    c.access(0x6000, false, 0);
    const auto before = mem.accesses();
    c.prefetch(0x6000, 10);
    EXPECT_EQ(mem.accesses(), before);
}

TEST(Cache, ProbeRespectsReadyTime)
{
    FixedLatencyMemory mem("mem", 100);
    Cache c(smallCache("c"), &mem);
    c.prefetch(0x7000, 0);
    EXPECT_FALSE(c.probe(0x7000, 50));
    EXPECT_TRUE(c.probe(0x7000, 150));
}

TEST(Cache, BankInterleaving)
{
    FixedLatencyMemory mem("mem", 10);
    CacheParams p = smallCache("l0i", 24 * 1024, 3);
    p.interleaves = 2;
    Cache c(p, &mem);
    EXPECT_EQ(c.bank(0x0000), 0u);
    EXPECT_EQ(c.bank(0x0040), 1u);
    EXPECT_EQ(c.bank(0x0080), 0u);
    // Same line -> same bank regardless of offset.
    EXPECT_EQ(c.bank(0x0044), 1u);
}

TEST(Cache, InvalidateAllEmpties)
{
    FixedLatencyMemory mem("mem", 10);
    Cache c(smallCache("c"), &mem);
    c.access(0x1000, false, 0);
    c.invalidateAll();
    EXPECT_FALSE(c.present(0x1000));
}

TEST(Cache, ChainedLevelsAccumulateLatency)
{
    FixedLatencyMemory mem("mem", 250);
    Cache l2(smallCache("l2", 4096, 4, 64, 13), &mem);
    Cache l1(smallCache("l1", 1024, 2, 64, 3), &l2);
    // Cold: 250 + 13 + 3.
    EXPECT_EQ(l1.access(0x9000, false, 0), 266u);
    // L1 hit after fill.
    EXPECT_EQ(l1.access(0x9000, false, 300), 3u);
    // L1 miss, L2 hit (different line, same L2 line? use a line that
    // was filled in L2 but evicted from L1).
    l1.invalidateAll();
    EXPECT_EQ(l1.access(0x9000, false, 400), 16u); // 13 + 3
}
