#include "service/http.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hh"

namespace elfsim {
namespace service {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 16 * 1024 * 1024;

std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return char(std::tolower(c));
    });
    return s;
}

std::string
trimmed(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

sockaddr_in
loopbackAddr(const std::string &host, std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw IoError(errorf("bad listen address '%s'", host.c_str()));
    return addr;
}

/** Read up to @a n bytes; 0 on orderly close, -1 on error. */
ssize_t
readSome(int fd, char *buf, std::size_t n)
{
    for (;;) {
        const ssize_t r = ::recv(fd, buf, n, 0);
        if (r < 0 && errno == EINTR)
            continue;
        return r;
    }
}

/** Split "HTTP/1.1 200 OK" / header block parsing shared by the
 *  request and response readers: read until CRLFCRLF. Returns false
 *  on close/overflow; @a head gets the header block, @a rest any
 *  body bytes already read. */
bool
readHead(int fd, std::string &head, std::string &rest)
{
    std::string buf;
    char tmp[4096];
    for (;;) {
        const std::size_t at = buf.find("\r\n\r\n");
        if (at != std::string::npos) {
            head = buf.substr(0, at);
            rest = buf.substr(at + 4);
            return true;
        }
        if (buf.size() > kMaxHeaderBytes)
            return false;
        const ssize_t r = readSome(fd, tmp, sizeof tmp);
        if (r <= 0)
            return false;
        buf.append(tmp, std::size_t(r));
    }
}

/** Parse "Key: value" lines into a lower-cased header map. */
bool
parseHeaderLines(const std::string &head, std::size_t firstLineEnd,
                 std::map<std::string, std::string> &out)
{
    std::size_t pos = firstLineEnd;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos)
            eol = head.size();
        const std::string line = head.substr(pos, eol - pos);
        pos = eol + 2;
        if (line.empty())
            continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            return false;
        out[lowered(trimmed(line.substr(0, colon)))] =
            trimmed(line.substr(colon + 1));
    }
    return true;
}

/** Read exactly @a n more bytes into @a body (which may already hold
 *  a prefix from the header read). */
bool
readBody(int fd, std::string &body, std::size_t n)
{
    if (n > kMaxBodyBytes)
        return false;
    char tmp[4096];
    while (body.size() < n) {
        const std::size_t want =
            std::min(sizeof tmp, n - body.size());
        const ssize_t r = readSome(fd, tmp, want);
        if (r <= 0)
            return false;
        body.append(tmp, std::size_t(r));
    }
    body.resize(n);
    return true;
}

/** De-chunk a Transfer-Encoding: chunked body, reading more bytes
 *  from @a fd as needed; @a raw holds what was already buffered. */
bool
readChunked(int fd, std::string raw, std::string &out)
{
    char tmp[4096];
    std::size_t pos = 0;
    for (;;) {
        // Ensure one full "size CRLF" line is buffered.
        std::size_t eol;
        while ((eol = raw.find("\r\n", pos)) == std::string::npos) {
            const ssize_t r = readSome(fd, tmp, sizeof tmp);
            if (r <= 0)
                return false;
            raw.append(tmp, std::size_t(r));
        }
        char *end = nullptr;
        const unsigned long long n =
            std::strtoull(raw.c_str() + pos, &end, 16);
        if (end == raw.c_str() + pos)
            return false;
        pos = eol + 2;
        if (n == 0)
            return true; // ignore trailers
        if (out.size() + n > kMaxBodyBytes)
            return false;
        while (raw.size() - pos < n + 2) {
            const ssize_t r = readSome(fd, tmp, sizeof tmp);
            if (r <= 0)
                return false;
            raw.append(tmp, std::size_t(r));
        }
        out.append(raw, pos, n);
        pos += n + 2; // skip the chunk's trailing CRLF
    }
}

} // namespace

int
listenTcp(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw IoError(errorf("socket: %s", std::strerror(errno)));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = loopbackAddr(host, port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        const int e = errno;
        ::close(fd);
        throw IoError(errorf("bind %s:%u: %s", host.c_str(),
                             unsigned(port), std::strerror(e)));
    }
    if (::listen(fd, 64) != 0) {
        const int e = errno;
        ::close(fd);
        throw IoError(errorf("listen: %s", std::strerror(e)));
    }
    return fd;
}

std::uint16_t
boundPort(int fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        throw IoError(errorf("getsockname: %s", std::strerror(errno)));
    return ntohs(addr.sin_port);
}

int
connectTcp(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw IoError(errorf("socket: %s", std::strerror(errno)));
    sockaddr_in addr = loopbackAddr(host, port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        const int e = errno;
        ::close(fd);
        throw IoError(errorf("connect %s:%u: %s", host.c_str(),
                             unsigned(port), std::strerror(e)));
    }
    return fd;
}

bool
writeAll(int fd, std::string_view data)
{
    while (!data.empty()) {
        const ssize_t w =
            ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data.remove_prefix(std::size_t(w));
    }
    return true;
}

bool
readHttpRequest(int fd, HttpRequest &out, std::string &err)
{
    std::string head, rest;
    if (!readHead(fd, head, rest)) {
        err = "connection closed or header block too large";
        return false;
    }
    std::size_t eol = head.find("\r\n");
    if (eol == std::string::npos)
        eol = head.size();
    const std::string reqLine = head.substr(0, eol);
    const std::size_t sp1 = reqLine.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : reqLine.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        reqLine.compare(sp2 + 1, 5, "HTTP/") != 0) {
        err = "malformed request line";
        return false;
    }
    out.method = reqLine.substr(0, sp1);
    out.path = reqLine.substr(sp1 + 1, sp2 - sp1 - 1);
    if (!parseHeaderLines(head, eol + 2, out.headers)) {
        err = "malformed header line";
        return false;
    }
    out.body = std::move(rest);
    const auto cl = out.headers.find("content-length");
    if (cl != out.headers.end()) {
        char *end = nullptr;
        const unsigned long long n =
            std::strtoull(cl->second.c_str(), &end, 10);
        if (end == cl->second.c_str() || *end != '\0' ||
            n > kMaxBodyBytes) {
            err = "bad content-length";
            return false;
        }
        if (!readBody(fd, out.body, std::size_t(n))) {
            err = "short request body";
            return false;
        }
    } else if (!out.body.empty()) {
        err = "body without content-length";
        return false;
    }
    return true;
}

bool
writeHttpResponse(int fd, int status, std::string_view reason,
                  std::string_view contentType, std::string_view body)
{
    std::string head;
    head.append("HTTP/1.1 ").append(std::to_string(status));
    head.append(" ").append(reason);
    head.append("\r\nContent-Type: ").append(contentType);
    head.append("\r\nContent-Length: ")
        .append(std::to_string(body.size()));
    head.append("\r\nConnection: close\r\n\r\n");
    return writeAll(fd, head) && writeAll(fd, body);
}

bool
ChunkedResponse::header(int status, std::string_view reason,
                        std::string_view contentType)
{
    if (bad)
        return false;
    std::string head;
    head.append("HTTP/1.1 ").append(std::to_string(status));
    head.append(" ").append(reason);
    head.append("\r\nContent-Type: ").append(contentType);
    head.append("\r\nTransfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n");
    bad = !writeAll(fd, head);
    return !bad;
}

bool
ChunkedResponse::write(std::string_view data)
{
    if (bad)
        return false;
    if (data.empty())
        return true;
    char size[32];
    const int n =
        std::snprintf(size, sizeof size, "%zx\r\n", data.size());
    bad = n <= 0 ||
          !writeAll(fd, std::string_view(size, std::size_t(n))) ||
          !writeAll(fd, data) || !writeAll(fd, "\r\n");
    return !bad;
}

bool
ChunkedResponse::finish()
{
    if (bad)
        return false;
    bad = !writeAll(fd, "0\r\n\r\n");
    return !bad;
}

HttpResponse
readHttpResponse(int fd)
{
    std::string head, rest;
    if (!readHead(fd, head, rest))
        throw IoError("connection closed before a full response");
    std::size_t eol = head.find("\r\n");
    if (eol == std::string::npos)
        eol = head.size();
    const std::string statusLine = head.substr(0, eol);
    HttpResponse resp;
    if (std::sscanf(statusLine.c_str(), "HTTP/%*d.%*d %d",
                    &resp.status) != 1)
        throw IoError(errorf("malformed status line '%s'",
                             statusLine.c_str()));
    if (!parseHeaderLines(head, eol + 2, resp.headers))
        throw IoError("malformed response header");
    const auto te = resp.headers.find("transfer-encoding");
    if (te != resp.headers.end() &&
        lowered(te->second) == "chunked") {
        if (!readChunked(fd, std::move(rest), resp.body))
            throw IoError("malformed chunked response body");
        return resp;
    }
    resp.body = std::move(rest);
    const auto cl = resp.headers.find("content-length");
    if (cl != resp.headers.end()) {
        const std::size_t n =
            std::size_t(std::strtoull(cl->second.c_str(), nullptr, 10));
        if (!readBody(fd, resp.body, n))
            throw IoError("short response body");
    } else {
        // Connection: close framing — read until EOF.
        char tmp[4096];
        for (;;) {
            const ssize_t r = readSome(fd, tmp, sizeof tmp);
            if (r < 0)
                throw IoError("error reading response body");
            if (r == 0)
                break;
            resp.body.append(tmp, std::size_t(r));
        }
    }
    return resp;
}

bool
readHttpResponseHead(int fd, int &status,
                     std::map<std::string, std::string> &headers,
                     std::string &rest, std::string &err)
{
    std::string head;
    if (!readHead(fd, head, rest)) {
        err = "connection closed before a full response head";
        return false;
    }
    std::size_t eol = head.find("\r\n");
    if (eol == std::string::npos)
        eol = head.size();
    const std::string statusLine = head.substr(0, eol);
    if (std::sscanf(statusLine.c_str(), "HTTP/%*d.%*d %d",
                    &status) != 1) {
        err = "malformed status line '" + statusLine + "'";
        return false;
    }
    if (!parseHeaderLines(head, eol + 2, headers)) {
        err = "malformed response header";
        return false;
    }
    return true;
}

HttpResponse
httpFetch(const std::string &host, std::uint16_t port,
          const std::string &method, const std::string &path,
          std::string_view body,
          const std::map<std::string, std::string> &headers)
{
    const int fd = connectTcp(host, port);
    std::string head;
    head.append(method).append(" ").append(path);
    head.append(" HTTP/1.1\r\nHost: ").append(host);
    for (const auto &[k, v] : headers)
        head.append("\r\n").append(k).append(": ").append(v);
    head.append("\r\nContent-Length: ")
        .append(std::to_string(body.size()));
    head.append("\r\nConnection: close\r\n\r\n");
    if (!writeAll(fd, head) || !writeAll(fd, body)) {
        ::close(fd);
        throw IoError("error sending request");
    }
    try {
        HttpResponse resp = readHttpResponse(fd);
        ::close(fd);
        return resp;
    } catch (...) {
        ::close(fd);
        throw;
    }
}

} // namespace service
} // namespace elfsim
