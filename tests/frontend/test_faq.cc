#include <gtest/gtest.h>

#include "frontend/faq.hh"

using namespace elfsim;

namespace {

FaqEntry
makeEntry(Addr start, unsigned n)
{
    FaqEntry e;
    e.startPC = start;
    e.numInsts = static_cast<std::uint8_t>(n);
    e.nextPC = start + instsToBytes(n);
    return e;
}

} // namespace

TEST(Faq, FifoBasics)
{
    Faq q(4);
    EXPECT_TRUE(q.empty());
    q.push(makeEntry(0x1000, 8));
    q.push(makeEntry(0x2000, 4));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.front().startPC, 0x1000u);
    EXPECT_EQ(q.pop().startPC, 0x1000u);
    EXPECT_EQ(q.front().startPC, 0x2000u);
}

TEST(Faq, BranchAtFindsSlotByOffset)
{
    FaqEntry e = makeEntry(0x1000, 16);
    e.branches[0].valid = true;
    e.branches[0].offset = 3;
    e.branches[0].kind = BranchKind::CondDirect;
    e.branches[1].valid = true;
    e.branches[1].offset = 9;
    e.branches[1].kind = BranchKind::UncondDirect;

    EXPECT_EQ(e.branchAt(0), nullptr);
    ASSERT_NE(e.branchAt(3), nullptr);
    EXPECT_EQ(e.branchAt(3)->kind, BranchKind::CondDirect);
    ASSERT_NE(e.branchAt(9), nullptr);
    EXPECT_EQ(e.branchAt(9)->kind, BranchKind::UncondDirect);
}

TEST(Faq, TakenBranchOnlyWhenBlockEndsTaken)
{
    FaqEntry e = makeEntry(0x1000, 10);
    e.branches[0].valid = true;
    e.branches[0].offset = 9;
    e.branches[0].predTaken = true;
    EXPECT_EQ(e.takenBranch(), nullptr); // endCause is Sequential
    e.endCause = FaqBlockEnd::TakenBranch;
    ASSERT_NE(e.takenBranch(), nullptr);
    EXPECT_EQ(e.takenBranch()->offset, 9);
}

TEST(Faq, AdvanceDropsPrefixAndShiftsSlots)
{
    FaqEntry e = makeEntry(0x1000, 12);
    e.branches[0].valid = true;
    e.branches[0].offset = 2;
    e.branches[1].valid = true;
    e.branches[1].offset = 8;

    e.advance(4);
    EXPECT_EQ(e.startPC, 0x1000u + 16);
    EXPECT_EQ(e.numInsts, 8);
    EXPECT_FALSE(e.branches[0].valid); // offset 2 dropped
    EXPECT_TRUE(e.branches[1].valid);
    EXPECT_EQ(e.branches[1].offset, 4); // 8 - 4

    e.advance(20);
    EXPECT_EQ(e.numInsts, 0);
}

TEST(Faq, AdvanceZeroIsNoop)
{
    FaqEntry e = makeEntry(0x1000, 12);
    e.advance(0);
    EXPECT_EQ(e.startPC, 0x1000u);
    EXPECT_EQ(e.numInsts, 12);
}
