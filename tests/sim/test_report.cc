#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.hh"
#include "workload/builders.hh"

using namespace elfsim;

TEST(Report, SummaryContainsHeadlineMetrics)
{
    Program p = microRandomBranchLoop(8, 0.4);
    Core core(makeConfig(FrontendVariant::UElf), p);
    core.run(30000);
    std::ostringstream os;
    printSummary(os, core);
    const std::string s = os.str();
    EXPECT_NE(s.find("IPC"), std::string::npos);
    EXPECT_NE(s.find("branch MPKI"), std::string::npos);
    EXPECT_NE(s.find("coupled periods"), std::string::npos);
    EXPECT_NE(s.find("U-ELF"), std::string::npos);
}

TEST(Report, FullReportCoversComponents)
{
    Program p = microRandomBranchLoop(8, 0.4);
    Core core(makeConfig(FrontendVariant::LElf), p);
    core.run(30000);
    std::ostringstream os;
    printFullReport(os, core);
    const std::string s = os.str();
    EXPECT_NE(s.find("dcf blocks generated"), std::string::npos);
    EXPECT_NE(s.find("fetched (coupled)"), std::string::npos);
    EXPECT_NE(s.find("cumulative hit L0"), std::string::npos);
    EXPECT_NE(s.find("l1d"), std::string::npos);
    EXPECT_NE(s.find("committed branches"), std::string::npos);
}

TEST(Report, NoDcfReportSkipsDcfSections)
{
    Program p = microSequentialLoop(30, 16);
    Core core(makeConfig(FrontendVariant::NoDcf), p);
    core.run(20000);
    std::ostringstream os;
    printFullReport(os, core);
    EXPECT_EQ(os.str().find("dcf blocks"), std::string::npos);
}

TEST(Report, DeprecatedWrappersMatchTextReporter)
{
    Program p = microRandomBranchLoop(8, 0.4);
    Core core(makeConfig(FrontendVariant::UElf), p);
    core.run(30000);

    std::ostringstream oldSum, newSum, oldFull, newFull;
    printSummary(oldSum, core);
    TextReporter().summary(newSum, core);
    printFullReport(oldFull, core);
    TextReporter().fullReport(newFull, core);
    EXPECT_EQ(oldSum.str(), newSum.str());
    EXPECT_EQ(oldFull.str(), newFull.str());
}

TEST(Report, ReporterPolymorphism)
{
    Program p = microSequentialLoop(30, 16);
    Core core(makeConfig(FrontendVariant::Dcf), p);
    core.run(20000);

    TextReporter text;
    JsonReporter json;
    const Reporter *reporters[] = {&text, &json};
    for (const Reporter *r : reporters) {
        std::ostringstream os;
        r->summary(os, core);
        EXPECT_NE(os.str().find("IPC"), std::string::npos);
    }
}
