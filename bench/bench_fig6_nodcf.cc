/**
 * @file
 * Figure 6 equivalent: performance of a pipeline WITHOUT the
 * decoupled fetcher (NoDCF) relative to the DCF baseline, with the
 * branch MPKI on the secondary axis — plus the Server-1 BTB hit rates
 * quoted in Section VI-A.
 */

#include <vector>

#include "bench_specs.hh"
#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner(
        "Figure 6 — NoDCF IPC relative to DCF (plus branch MPKI)",
        "> 1.0 means the workload runs faster WITHOUT the decoupled "
        "fetcher (high-MPKI cases); server 1 collapses without the "
        "FAQ's instruction prefetch");

    const SweepSpec spec = bench::finalizeSpec(
        bench::fig6Spec(opt.runOptions()), opt, argv[0]);
    const ExpandedSweep ex = expandSweep(spec);

    SweepRunner runner(bench::specJobs(opt, spec));
    bench::armRunner(runner, spec);
    const std::vector<RunResult> res = runner.run(ex.jobs);

    if (!opt.specPath.empty()) {
        bench::printResultsTable(res, ex.labels);
    } else {
        std::printf("%-18s %10s %10s %12s %10s\n", "workload",
                    "DCF IPC", "NoDCF rel", "branch MPKI",
                    "BTB L0/L1/L2");
        for (std::size_t i = 0; i + 1 < res.size(); i += 2) {
            const RunResult &dcf = res[i];
            const RunResult &nod = res[i + 1];
            std::printf(
                "%-18s %10.3f %10.3f %12.1f %4.0f/%2.0f/%2.0f%%\n",
                dcf.workload.c_str(), dcf.ipc, nod.ipc / dcf.ipc,
                dcf.branchMpki, 100 * dcf.btbHitL0,
                100 * dcf.btbHitL1, 100 * dcf.btbHitL2);
            std::fflush(stdout);
        }
        std::printf("\npaper shape: NoDCF ~0.6 on server 1 (prefetch "
                    "loss); NoDCF can exceed 1.0 only when MPKI is "
                    "high and the footprint is small.\n");
    }
    bench::exportResults(opt, runner);
    bench::printSweepTiming(runner);
    return bench::exitCode(runner);
}
