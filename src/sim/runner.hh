/**
 * @file
 * One-shot simulation driver: builds a core for a (workload, variant)
 * pair, runs warmup + measurement, and collects the metrics every
 * experiment consumes.
 */

#ifndef ELFSIM_SIM_RUNNER_HH
#define ELFSIM_SIM_RUNNER_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hh"
#include "sim/core.hh"

namespace elfsim {

/**
 * One row of the interval timeline: the measurement-window deltas
 * accumulated over one sampling period of `RunOptions::intervalInsts`
 * committed instructions. Explains *when* within a run cycles went —
 * e.g. coupled-mode occupancy right after flush bursts (the paper's
 * Figure 8 phenomenon, resolved over time).
 */
struct IntervalSample
{
    InstCount startInst = 0; ///< insts committed in the measurement
                             ///< window before this interval began
    InstCount insts = 0;     ///< insts committed in this interval
    Cycle cycles = 0;
    double ipc = 0;

    std::uint64_t condMispredicts = 0;
    std::uint64_t targetMispredicts = 0;
    std::uint64_t execFlushes = 0;
    std::uint64_t memOrderFlushes = 0;
    std::uint64_t decodeResteers = 0;
    std::uint64_t divergenceFlushes = 0;
    double coupledFrac = 0;  ///< fraction of this interval's commits
                             ///< fetched in coupled mode

    /**
     * Visit every field as ("name", member) — the single source of
     * truth the exporters, the manifest loader, and the tests
     * enumerate instead of hand-listing fields. @a self is an
     * IntervalSample (const for export, mutable for loading); @a v
     * must accept (const char *, std::uint64_t) and (const char *,
     * double) — references when @a self is non-const.
     */
    template <typename Self, typename V>
    static void
    visitFields(Self &self, V &&v)
    {
        v("start_inst", self.startInst);
        v("insts", self.insts);
        v("cycles", self.cycles);
        v("ipc", self.ipc);
        v("cond_mispredicts", self.condMispredicts);
        v("target_mispredicts", self.targetMispredicts);
        v("exec_flushes", self.execFlushes);
        v("mem_order_flushes", self.memOrderFlushes);
        v("decode_resteers", self.decodeResteers);
        v("divergence_flushes", self.divergenceFlushes);
        v("coupled_frac", self.coupledFrac);
    }

    template <typename V>
    void
    forEachField(V &&v) const
    {
        visitFields(*this, std::forward<V>(v));
    }
};

/**
 * Extrapolation summary of a sampled run (RunOptions sampling fields).
 * The companion RunResult's `cycles`/`insts`/`ipc` cover only the
 * measured windows; this block scales them to the whole stream and
 * bounds the sampling error: the true whole-run IPC lies within
 * `ipc * (1 ± ipcRelErr95)` with ~95% confidence. The bound is the
 * Student-t confidence half-width on the per-window IPC mean
 * (treating windows as independent draws — valid because window
 * placement is stratified random) plus a systematic allowance for
 * functional-warming infidelity (fast-forward cannot reproduce
 * wrong-path cache and predictor effects), scaled by the
 * fast-forwarded fraction of each period.
 */
struct SamplingInfo
{
    InstCount periodInsts = 0;   ///< sampling period P
    InstCount lengthInsts = 0;   ///< measured window per period (L)
    InstCount warmupInsts = 0;   ///< detailed unmeasured warmup (W)
    std::uint64_t windows = 0;   ///< periods simulated (n)
    InstCount totalInsts = 0;    ///< stream insts covered (n * P)
    InstCount measuredInsts = 0; ///< measured-window insts (n * L)
    double ipcRelErr95 = 0;      ///< 95% relative error bound on IPC
    double estTotalCycles = 0;   ///< cycles extrapolated to totalInsts

    // Checkpoint-store activity for this run (local to the cell, so
    // parallel sweep jobs report deterministic per-cell numbers).
    std::uint64_t ckptHits = 0;
    std::uint64_t ckptMisses = 0;
    std::uint64_t ckptSaves = 0;

    // Functional-warming work split for this run (see
    // sim/warm_kernel.hh). Deterministic for a given (workload,
    // schedule): kernel vs scalar split depends only on the compiled-
    // prefix length, never on thread count or wall-clock, so these
    // are safe in byte-compared result JSON. warmFfInsts counts the
    // total instructions fast-forwarded (kernel + scalar by
    // construction; exported independently so check_results.py can
    // verify the coherence rather than assume it).
    std::uint64_t warmKernelInsts = 0;
    std::uint64_t warmScalarInsts = 0;
    std::uint64_t warmBranchEvents = 0;
    std::uint64_t warmLinesTouched = 0;
    std::uint64_t warmFfInsts = 0;

    /** Field visitor; see IntervalSample::visitFields. */
    template <typename Self, typename V>
    static void
    visitFields(Self &self, V &&v)
    {
        v("period_insts", self.periodInsts);
        v("length_insts", self.lengthInsts);
        v("warmup_insts", self.warmupInsts);
        v("windows", self.windows);
        v("total_insts", self.totalInsts);
        v("measured_insts", self.measuredInsts);
        v("ipc_rel_err_95", self.ipcRelErr95);
        v("est_total_cycles", self.estTotalCycles);
        v("ckpt_hits", self.ckptHits);
        v("ckpt_misses", self.ckptMisses);
        v("ckpt_saves", self.ckptSaves);
        v("warm_kernel_insts", self.warmKernelInsts);
        v("warm_scalar_insts", self.warmScalarInsts);
        v("warm_branch_events", self.warmBranchEvents);
        v("warm_lines_touched", self.warmLinesTouched);
        v("warm_ff_insts", self.warmFfInsts);
    }

    template <typename V>
    void
    forEachField(V &&v) const
    {
        visitFields(*this, std::forward<V>(v));
    }
};

/** Aggregated results of one simulation run (measurement window). */
struct RunResult
{
    std::string workload;
    std::string variant;

    Cycle cycles = 0;
    InstCount insts = 0;
    double ipc = 0;

    double branchMpki = 0;       ///< direction + target, per kilo-inst
    double condMpki = 0;
    std::uint64_t execFlushes = 0;
    std::uint64_t memOrderFlushes = 0;
    std::uint64_t decodeResteers = 0;
    std::uint64_t divergenceFlushes = 0;

    double btbHitL0 = 0;         ///< cumulative per-level hit rates
    double btbHitL1 = 0;
    double btbHitL2 = 0;

    double l0iMissRate = 0;
    double l1dMpki = 0;

    std::uint64_t wrongPathInsts = 0;
    std::uint64_t instPrefetches = 0;

    /** Measured redirect-to-first-fetch restart latency, averaged
     *  over the window's mispredict flushes (Figure 3's quantity). */
    double avgRedirectToFetch = 0;

    // ELF-specific
    double avgCoupledInsts = 0;  ///< per coupled period (Figure 8)
    std::uint64_t coupledPeriods = 0;
    double coupledCommittedFrac = 0;
    std::uint64_t pendingFlushWaits = 0;

    /**
     * Cell outcome under fault-tolerant sweeps (JobStatus::Ok for a
     * clean run). When not ok, the metric fields above are zeroed,
     * `error` carries the failure detail, and `attempts` counts how
     * many times the bounded retry policy ran the cell.
     */
    JobStatus status = JobStatus::Ok;
    std::string error;
    std::uint64_t attempts = 1;

    /** Sampling period the timeline was captured with (0 = off). */
    InstCount intervalInsts = 0;
    /** Per-interval delta rows; empty unless intervalInsts > 0. */
    std::vector<IntervalSample> timeline;

    /**
     * True when this result came from a sampled run: the summary
     * scalars cover only the measured windows, the timeline holds one
     * row per window (startInst = absolute stream position), and
     * `sampling` carries the whole-run extrapolation. Serialized
     * separately from visitFields, like `timeline`.
     */
    bool sampled = false;
    SamplingInfo sampling;

    /**
     * Visit every scalar field as ("name", member) in declaration
     * order — the single source of truth for the JSON/CSV exporters,
     * the bench table formatters, the manifest loader, and
     * test_sweep's determinism check. @a self is a RunResult (const
     * for export, mutable for loading); @a v must accept (const char
     * *, std::string), (const char *, std::uint64_t) and (const char
     * *, double) — references when @a self is non-const. `status`,
     * `intervalInsts` and `timeline` are serialized separately (see
     * sim/export.hh) since they are not summary scalars.
     */
    template <typename Self, typename V>
    static void
    visitFields(Self &self, V &&v)
    {
        v("workload", self.workload);
        v("variant", self.variant);
        v("cycles", self.cycles);
        v("insts", self.insts);
        v("ipc", self.ipc);
        v("branch_mpki", self.branchMpki);
        v("cond_mpki", self.condMpki);
        v("exec_flushes", self.execFlushes);
        v("mem_order_flushes", self.memOrderFlushes);
        v("decode_resteers", self.decodeResteers);
        v("divergence_flushes", self.divergenceFlushes);
        v("btb_hit_l0", self.btbHitL0);
        v("btb_hit_l1", self.btbHitL1);
        v("btb_hit_l2", self.btbHitL2);
        v("l0i_miss_rate", self.l0iMissRate);
        v("l1d_mpki", self.l1dMpki);
        v("wrong_path_insts", self.wrongPathInsts);
        v("inst_prefetches", self.instPrefetches);
        v("avg_redirect_to_fetch", self.avgRedirectToFetch);
        v("avg_coupled_insts", self.avgCoupledInsts);
        v("coupled_periods", self.coupledPeriods);
        v("coupled_committed_frac", self.coupledCommittedFrac);
        v("pending_flush_waits", self.pendingFlushWaits);
        v("error", self.error);
        v("attempts", self.attempts);
    }

    template <typename V>
    void
    forEachField(V &&v) const
    {
        visitFields(*this, std::forward<V>(v));
    }

    /** Did this cell complete (possibly after retries)? */
    bool ok() const { return status == JobStatus::Ok; }
};

/** Options for a run. */
struct RunOptions
{
    InstCount warmupInsts = 100000;
    InstCount measureInsts = 500000;

    /**
     * Capture an IntervalSample every this many committed
     * instructions of the measurement window (the last interval may
     * be shorter). 0 (default) disables timeline capture. Sampling
     * does not perturb the simulation: the core ticks through the
     * exact same sequence either way.
     */
    InstCount intervalInsts = 0;

    /**
     * Sampled execution (SMARTS-style, without stream rewind): > 0
     * partitions the total budget (warmupInsts + measureInsts) into
     * periods of this many instructions. Each period fast-forwards
     * through functional warming (predictors + caches only), then
     * runs `sampleWarmupInsts` detailed unmeasured instructions, then
     * measures `sampleLengthInsts` detailed instructions. Summary
     * stats cover the measured windows; RunResult::sampling carries
     * the whole-run extrapolation and its error bound. Mutually
     * exclusive with intervalInsts. Warm-state checkpoints are
     * saved/restored through CheckpointStore when it is usable, so
     * re-runs skip the fast-forward entirely.
     */
    InstCount samplePeriodInsts = 0;
    /** Measured detailed window per period; required > 0 when
     *  sampling. sampleWarmupInsts + sampleLengthInsts must fit in
     *  the period. */
    InstCount sampleLengthInsts = 0;
    /** Detailed-but-unmeasured pipeline warmup per period (drains the
     *  cold-pipeline transient after the fast-forward). */
    InstCount sampleWarmupInsts = 0;

    /** Is sampled execution enabled? */
    bool sampled() const { return samplePeriodInsts > 0; }

    /**
     * Compiled architectural trace to back the oracle stream with
     * (callers holding one — the sweep engine — pass it so every cell
     * of a workload shares the same buffer). When null, runSimulation
     * asks the process-wide TraceCache, which compiles the stream
     * once per distinct program and is a no-op when trace compilation
     * is disabled. Behaviour-neutral in all cases. Sampled runs ask
     * for at most the first maxSampledTraceInsts instructions (a full
     * 100M-instruction stream would cost gigabytes); the batch
     * warming kernel covers the compiled prefix and the scalar loop
     * the lazy tail.
     */
    std::shared_ptr<const CompiledTrace> trace;
};

/**
 * Cap on the compiled-trace prefix a sampled run acquires for the
 * batch warming kernel (instructions). 2^26 insts is roughly 2 GiB
 * of v2 artifact per distinct workload content — large enough to
 * cover the whole stream for every catalog/bench workload in use,
 * small enough to bound cache-directory growth. Streams longer than this warm the
 * tail with the scalar loop (state-identical either way).
 */
constexpr InstCount maxSampledTraceInsts = InstCount(1) << 26;

/**
 * Point-in-time capture of the core counters that runSimulation
 * reports as deltas across the measurement window. Usage: capture()
 * after warmup, run the measurement window, then delta() against a
 * fresh capture.
 */
struct StatSnapshot
{
    Cycle cycles = 0;
    InstCount insts = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t targetMispredicts = 0;
    std::uint64_t execFlushes = 0;
    std::uint64_t memOrderFlushes = 0;
    std::uint64_t decodeResteers = 0;
    std::uint64_t divergenceFlushes = 0;
    std::uint64_t coupledCommitted = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t redirectToFetchTotal = 0;
    std::uint64_t redirectToFetchCount = 0;

    /** Read every windowed counter off the core. */
    static StatSnapshot capture(const Core &core);

    /** Elementwise `*this - since` (the measurement-window deltas). */
    StatSnapshot delta(const StatSnapshot &since) const;
};

/** Build the program's core and run warmup + measurement. */
RunResult runSimulation(const Program &prog, const SimConfig &cfg,
                        const RunOptions &opts = {});

/** Convenience: run a named variant on a program. */
RunResult runVariant(const Program &prog, FrontendVariant variant,
                     const RunOptions &opts = {});

/** Geometric mean of relative IPCs (paper Figure 9). */
double geomean(const std::vector<double> &xs);

} // namespace elfsim

#endif // ELFSIM_SIM_RUNNER_HH
