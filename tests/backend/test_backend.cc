#include <gtest/gtest.h>

#include <deque>

#include "backend/backend.hh"
#include "workload/program_builder.hh"

using namespace elfsim;

namespace {

/** A small rig that feeds instructions straight into the back-end. */
struct Rig
{
    Program prog;
    MemHierarchy mem;
    MemDepPredictor mdp;
    Backend be;
    SeqNum nextSeq = 1;
    std::vector<DynInst> committed;

    explicit Rig(Program p, BackendParams bp = {})
        : prog(std::move(p)), mem(), mdp(), be(bp, mem, mdp)
    {
        be.setCommitHook([this](const DynInst &di) {
            committed.push_back(di);
        });
    }

    DynInst
    makeInst(const StaticInst *si, Addr mem_addr = invalidAddr)
    {
        DynInst di;
        di.si = si;
        di.seq = nextSeq++;
        di.oracleIdx = di.seq;
        di.memAddr = mem_addr;
        di.taken = false;
        di.actualNext = si->nextPC();
        return di;
    }

    /** Run n cycles starting from `cycle`. */
    Redirect
    run(Cycle &cycle, unsigned n)
    {
        Redirect r;
        for (unsigned i = 0; i < n; ++i)
            be.tick(++cycle, r);
        return r;
    }
};

Program
aluProgram(unsigned chain_len)
{
    ProgramBuilder b;
    b.beginBlock();
    // A dependency chain: each op reads the previous destination.
    for (unsigned i = 0; i < chain_len; ++i)
        b.addOp(InstClass::IntAlu, 1, 1);
    b.endJump(0);
    return b.finalize("alu_chain");
}

Program
independentProgram(unsigned n)
{
    ProgramBuilder b;
    b.beginBlock();
    for (unsigned i = 0; i < n; ++i)
        b.addOp(InstClass::IntAlu, RegIndex(i % 32),
                RegIndex(32 + i % 16));
    b.endJump(0);
    return b.finalize("alu_indep");
}

} // namespace

TEST(Backend, CommitsInOrder)
{
    Rig r(independentProgram(16));
    Cycle cycle = 0;
    for (unsigned i = 0; i < 16; ++i)
        r.be.accept(r.makeInst(&r.prog.instructions()[i]), 1);
    r.run(cycle, 30);
    ASSERT_EQ(r.committed.size(), 16u);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(r.committed[i].seq, i + 1);
}

TEST(Backend, DependencyChainSerializesExecution)
{
    // A chain of N dependent ALU ops takes ~N more cycles than N
    // independent ones.
    Rig chain(aluProgram(32));
    Cycle c1 = 0;
    for (unsigned i = 0; i < 32; ++i)
        chain.be.accept(chain.makeInst(&chain.prog.instructions()[i]),
                        1);
    while (chain.committed.size() < 32 && c1 < 300)
        chain.run(c1, 1);

    Rig indep(independentProgram(32));
    Cycle c2 = 0;
    for (unsigned i = 0; i < 32; ++i)
        indep.be.accept(indep.makeInst(&indep.prog.instructions()[i]),
                        1);
    while (indep.committed.size() < 32 && c2 < 300)
        indep.run(c2, 1);

    EXPECT_GT(c1, c2 + 20);
}

TEST(Backend, MispredictRequestsRedirect)
{
    ProgramBuilder pb;
    pb.beginBlock();
    pb.addFiller(2);
    CondSpec cs;
    pb.endCond(cs, 0);
    Program p = pb.finalize("br");

    Rig r(std::move(p));
    Cycle cycle = 0;
    for (unsigned i = 0; i < 2; ++i)
        r.be.accept(r.makeInst(&r.prog.instructions()[i]), 1);
    DynInst br = r.makeInst(&r.prog.instructions()[2]);
    br.hasPrediction = true;
    br.predTaken = false;
    br.predTarget = br.si->nextPC();
    br.taken = true;
    br.actualNext = br.si->directTarget;
    br.mispredict = true;
    const SeqNum brSeq = br.seq;
    r.be.accept(std::move(br), 1);

    Redirect red;
    for (unsigned i = 0; i < 20 && !red.pending(); ++i)
        r.be.tick(++cycle, red);
    ASSERT_TRUE(red.pending());
    EXPECT_EQ(red.kind, RedirectKind::ExecMispredict);
    EXPECT_EQ(red.survivorSeq, brSeq);
    EXPECT_EQ(red.targetPC, r.prog.instructions()[2].directTarget);
}

TEST(Backend, WrongPathBranchNeverRedirects)
{
    ProgramBuilder pb;
    pb.beginBlock();
    CondSpec cs;
    pb.endCond(cs, 0);
    Program p = pb.finalize("br");
    Rig r(std::move(p));

    // Block commit with a flush-pending head so the wrong-path branch
    // stays in flight (the core squashes wrong-path instructions
    // before they ever reach commit).
    DynInst blocker = r.makeInst(&r.prog.instructions()[0]);
    blocker.flushPending = true;
    r.be.accept(std::move(blocker), 1);
    DynInst br = r.makeInst(&r.prog.instructions()[0]);
    br.wrongPath = true;
    br.mispredict = false; // resolution == prediction on wrong path
    r.be.accept(std::move(br), 1);
    Cycle cycle = 0;
    Redirect red;
    for (unsigned i = 0; i < 15; ++i)
        r.be.tick(++cycle, red);
    EXPECT_FALSE(red.pending());
}

TEST(Backend, MemOrderViolationDetectedAndFiltered)
{
    // Store and a younger load to the same address; the load's source
    // is ready immediately while the store waits on a slow producer,
    // so the load executes first -> violation -> flush at the load;
    // the filter is trained.
    ProgramBuilder pb;
    pb.beginBlock();
    pb.addOp(InstClass::IntDiv, 5, 6); // slow producer of r5
    MemSpec ms;
    ms.regionBase = 0x20000;
    ms.regionSize = 64;
    pb.addStore(ms, 5, 5); // store depends on r5
    pb.addLoad(ms, 7);     // independent load, same region
    pb.addFiller(2);
    pb.endJump(0);
    Program p = pb.finalize("raw");
    Rig r(std::move(p));
    // Warm the data line: a cold load would miss to memory and
    // complete after the store, hiding the violation.
    r.mem.dataAccess(0, 0x20000, false, 0);

    Cycle cycle = 400;
    r.be.accept(r.makeInst(&r.prog.instructions()[0]), cycle); // div
    r.be.accept(r.makeInst(&r.prog.instructions()[1], 0x20000), cycle);
    DynInst load = r.makeInst(&r.prog.instructions()[2], 0x20000);
    const SeqNum loadSeq = load.seq;
    r.be.accept(std::move(load), cycle);

    Redirect red;
    for (unsigned i = 0; i < 40 && !red.pending(); ++i)
        r.be.tick(++cycle, red);
    ASSERT_TRUE(red.pending());
    EXPECT_EQ(red.kind, RedirectKind::MemOrder);
    EXPECT_EQ(red.survivorSeq, loadSeq - 1);
    EXPECT_EQ(r.mdp.storeFor(r.prog.instructions()[2].pc),
              r.prog.instructions()[1].pc);
}

TEST(Backend, FilteredLoadWaitsForStore)
{
    // Same shape, but pre-train the filter: the load must wait and no
    // violation occurs.
    ProgramBuilder pb;
    pb.beginBlock();
    pb.addOp(InstClass::IntDiv, 5, 6);
    MemSpec ms;
    ms.regionBase = 0x20000;
    ms.regionSize = 64;
    pb.addStore(ms, 5, 5);
    pb.addLoad(ms, 7);
    pb.addFiller(2);
    pb.endJump(0);
    Program p = pb.finalize("raw2");
    Rig r(std::move(p));
    r.mdp.train(r.prog.instructions()[2].pc,
                r.prog.instructions()[1].pc);
    r.mem.dataAccess(0, 0x20000, false, 0);

    Cycle cycle = 400;
    r.be.accept(r.makeInst(&r.prog.instructions()[0]), cycle);
    r.be.accept(r.makeInst(&r.prog.instructions()[1], 0x20000), cycle);
    r.be.accept(r.makeInst(&r.prog.instructions()[2], 0x20000), cycle);

    Redirect red;
    for (unsigned i = 0; i < 60; ++i)
        r.be.tick(++cycle, red);
    EXPECT_FALSE(red.pending());
    EXPECT_EQ(r.be.stats().memOrderFlushes, 0u);
    EXPECT_EQ(r.committed.size(), 3u);
}

TEST(Backend, SquashRemovesYoungerAndRebuildsScoreboard)
{
    Rig r(independentProgram(16));
    Cycle cycle = 0;
    for (unsigned i = 0; i < 8; ++i)
        r.be.accept(r.makeInst(&r.prog.instructions()[i]), 1);
    r.run(cycle, 4);
    r.be.squashYoungerThan(4);
    EXPECT_EQ(r.be.robSize(), 4u);
    // New instructions after the squash still flow to commit.
    for (unsigned i = 8; i < 12; ++i)
        r.be.accept(r.makeInst(&r.prog.instructions()[i]), cycle);
    r.run(cycle, 30);
    EXPECT_EQ(r.committed.size(), 8u);
}

TEST(Backend, FlushPendingBlocksCommit)
{
    Rig r(independentProgram(4));
    Cycle cycle = 0;
    DynInst di = r.makeInst(&r.prog.instructions()[0]);
    di.flushPending = true;
    r.be.accept(std::move(di), 1);
    r.run(cycle, 20);
    EXPECT_TRUE(r.committed.empty());
    r.be.findInFlightMutable(1)->flushPending = false;
    r.run(cycle, 10);
    EXPECT_EQ(r.committed.size(), 1u);
}

TEST(Backend, CoupledCommitCounted)
{
    Rig r(independentProgram(4));
    Cycle cycle = 0;
    DynInst di = r.makeInst(&r.prog.instructions()[0]);
    di.mode = FetchMode::Coupled;
    r.be.accept(std::move(di), 1);
    r.run(cycle, 20);
    EXPECT_EQ(r.be.stats().coupledCommitted, 1u);
}

TEST(Backend, SeqSlotIndexSurvivesSquashAndRingWraparound)
{
    // Small ROB so the ring position counter wraps several times; the
    // stable-position seq index handed to the IQ/LSQ must keep
    // re-validating slot seqs across squashes and wraps.
    BackendParams bp;
    bp.robEntries = 8;
    bp.iqEntries = 8;
    bp.lsqEntries = 8;
    Rig r(independentProgram(16), bp);
    Cycle cycle = 0;

    // Fill partway, then squash the younger half before anything
    // commits: seqs 4..6 vanish, 1..3 survive.
    for (unsigned i = 0; i < 6; ++i)
        r.be.accept(r.makeInst(&r.prog.instructions()[i]), cycle);
    EXPECT_EQ(r.be.robSize(), 6u);
    r.be.squashYoungerThan(3);
    EXPECT_EQ(r.be.robSize(), 3u);
    ASSERT_NE(r.be.findInFlightMutable(2), nullptr);
    EXPECT_EQ(r.be.findInFlightMutable(2)->seq, 2u);
    EXPECT_EQ(r.be.findInFlightMutable(5), nullptr);

    // Refill while draining so the 8-entry ring wraps ~5 times.
    unsigned fed = 0;
    while (r.committed.size() < 40 && cycle < 2000) {
        if (fed < 37 && r.be.canAccept(1)) {
            r.be.accept(
                r.makeInst(&r.prog.instructions()[fed % 16]), cycle);
            ++fed;
        }
        r.run(cycle, 1);
    }
    ASSERT_EQ(r.committed.size(), 40u);

    // Strictly increasing seqs, and no squashed seq ever commits.
    SeqNum prev = 0;
    for (const DynInst &di : r.committed) {
        EXPECT_GT(di.seq, prev);
        EXPECT_TRUE(di.seq <= 3 || di.seq >= 7) << di.seq;
        prev = di.seq;
    }
    EXPECT_TRUE(r.be.empty());
}
