#include "sim/core.hh"

#include <cstdio>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace elfsim {

Core::Core(const SimConfig &cfg, const Program &prog,
           std::shared_ptr<const CompiledTrace> trace)
    : cfg(cfg), prog(prog)
{
    // A non-zero run seed re-derives the stochastic-allocation seeds
    // so sweep jobs can decorrelate deterministically.
    if (this->cfg.rngSeed) {
        this->cfg.preds.tage.allocSeed =
            mix64(this->cfg.rngSeed, 0xa11c);
        this->cfg.preds.ittage.allocSeed =
            mix64(this->cfg.rngSeed, 0x17a6);
    }

    oracle = std::make_unique<OracleStream>(
        prog, defaultOracleWindowCap, std::move(trace));
    walker = std::make_unique<WrongPathWalker>(prog);
    instSupply = std::make_unique<InstSupply>(*oracle, *walker);
    mem = std::make_unique<MemHierarchy>(cfg.mem);
    bank = std::make_unique<PredictorBank>(this->cfg.preds);
    btbHier = std::make_unique<MultiBtb>(cfg.btb);
    builder = std::make_unique<BtbBuilder>(prog, *btbHier);
    ckpts = std::make_unique<CheckpointQueue>(cfg.checkpointEntries);
    faq = std::make_unique<Faq>(cfg.faqEntries);
    controller = std::make_unique<ElfController>(
        cfg.elfParams(), *mem, *instSupply, *faq, *ckpts, *bank,
        *btbHier);
    decodeStage = std::make_unique<DecodeStage>(cfg.fetch.width, *bank);
    memDep = std::make_unique<MemDepPredictor>();
    backendUnit = std::make_unique<Backend>(cfg.backend, *mem, *memDep);
    fetchToDecode = std::make_unique<BoundedQueue<DynInst>>(
        cfg.fetchBufferEntries);

    decodeStage->setObserver(controller.get());
    backendUnit->setCommitHook(
        [this](const DynInst &di) { onCommit(di); });

    // Startup behaves like a flush into the entry point.
    controller->applyRedirect(0, prog.entryPC());
}

bool
Core::historyVisible(const StaticInst &si) const
{
    // The NoDCF front-end sees every branch at fetch (pre-decode
    // bits); decoupled front-ends only see BTB-tracked branches, i.e.
    // unconditionals and observed-taken conditionals.
    if (cfg.variant == FrontendVariant::NoDcf)
        return true;
    return isUnconditional(si.branch) || builder->observedTaken(si.pc);
}

void
Core::onCommit(const DynInst &di)
{
    if (di.isBranch()) {
        bank->commitBranch(di.pc(), di.si->branch, di.taken,
                           di.actualNext, di.tagePred, di.ittagePred,
                           di.historyPushed);
        controller->coupledPredictors().trainCommit(
            di.pc(), di.si->branch, di.taken, di.actualNext, di.mode);
    }
    builder->retire(*di.si, di.taken, di.actualNext);
    oracle->retireUpTo(di.oracleIdx);
    ckpts->retireUpTo(di.seq);
    if (commitObserver)
        commitObserver(di);
}

DynInst *
Core::findInFlight(SeqNum seq)
{
    return backendUnit->findInFlightMutable(seq);
}

DynInst *
Core::findAnywhere(SeqNum seq)
{
    if (DynInst *di = findInFlight(seq))
        return di;
    // Still in the fetch-to-decode buffer?
    return findSeqInQueue(*fetchToDecode, seq);
}

void
Core::applyPatches(Redirect &redirect, Cycle now)
{
    // History-visibility corrections first: the prediction patches
    // below carry their own (consistent) coverage flag.
    for (const auto &[seq, covered] : controller->visibilityFixes()) {
        DynInst *di = findAnywhere(seq);
        if (di && di->isBranch() && di->mode == FetchMode::Coupled)
            di->historyPushed = covered;
    }
    controller->clearVisibilityFixes();

    for (const PredPatch &p : controller->patches()) {
        DynInst *di = findAnywhere(p.seq);
        if (!di)
            continue; // squashed meanwhile
#ifdef ELFSIM_TRACE_SEQ
        if (p.seq >= ELFSIM_TRACE_SEQ && p.seq <= ELFSIM_TRACE_SEQ + 200)
            std::fprintf(stderr, "[%llu] patch seq=%llu taken=%d "
                         "completed=%d\n",
                         (unsigned long long)now,
                         (unsigned long long)p.seq, int(p.taken),
                         int(di->completed));
#endif
        di->hasPrediction = true;
        di->predTaken = p.taken;
        di->predTarget = p.target;
        if (p.tage.valid)
            di->tagePred = p.tage;
        if (p.ittage.valid)
            di->ittagePred = p.ittage;
        if (p.clearStall)
            di->fetchStalled = false;
        if (p.historyPushed)
            di->historyPushed = true;
        if (di->wrongPath) {
            di->taken = di->predTaken;
            di->actualNext = di->predTarget;
            di->mispredict = false;
        } else {
            di->mispredict =
                (di->taken != di->predTaken) ||
                (di->taken && di->actualNext != di->predTarget);
        }
        if (p.fromBtbMiss && di->isBranch() && !di->completed) {
            // The resynchronization covered this stalled branch with
            // a BTB-miss guess block: the baseline front-end would
            // have recovered it at decode with the decoupled
            // predictors — do the same, late.
            di->hasPrediction = false;
            Redirect resteer;
            if (decodeStage->recoverMisfetch(now, *di, resteer))
                mergeRedirect(redirect, resteer);
        }
        if (di->completed && di->mispredict && !di->wrongPath) {
            // The branch already executed under its old prediction
            // and found it correct; under the adopted (DCF)
            // prediction it is a misprediction and must flush now.
            Redirect req;
            req.kind = RedirectKind::ExecMispredict;
            req.survivorSeq = di->seq;
            req.targetPC = di->actualNext;
            req.oracleCursor = di->oracleIdx + 1;
            req.atCycle = now;
            mergeRedirect(redirect, req);
        }
    }
    controller->clearPatches();
}

void
Core::replayHistory(const Redirect &r)
{
    bank->resetSpecToArch();
    backendUnit->forEachInFlight([&](const DynInst &di) {
        if (di.seq > r.survivorSeq || !di.isBranch())
            return;
        if (di.historyPushed) {
            bool bit;
            if (di.seq == r.survivorSeq &&
                r.kind == RedirectKind::ExecMispredict) {
                // The resolving branch: push the resolved outcome.
                bit = di.taken;
            } else {
                bit = di.hasPrediction ? di.predTaken : false;
            }
            bank->specBranch(di.pc(), di.si->branch, bit);
        } else if (isCall(di.si->branch)) {
            // RAS maintenance is decode-driven even for branches the
            // DCF never saw; every in-flight instruction here has
            // passed decode.
            bank->specRas().push(di.pc() + instBytes);
        } else if (isReturn(di.si->branch)) {
            bank->specRas().pop();
        }
    });
}

void
Core::applyRedirect(Redirect r)
{
    if (!r.pending())
        return;

    if (r.kind == RedirectKind::ExecMispredict) {
        // ELF: a branch fetched in coupled mode may not flush until
        // its checkpoint payload is populated from FAQ information —
        // unless it reached the ROB head (Section IV-D1). The
        // idealized policy skips the gate entirely.
        DynInst *br = findInFlight(r.survivorSeq);
        if (cfg.payloadPolicy != PayloadPolicy::Ideal && br &&
            br->mode == FetchMode::Coupled &&
            br->checkpointId != noCheckpoint &&
            ckpts->has(br->checkpointId) &&
            !ckpts->payloadReady(br->checkpointId) &&
            !backendUnit->atRobHead(br->seq)) {
            br->flushPending = true;
            heldRedirect = r;
            ++coreStats.pendingFlushWaits;
            return;
        }
        if (br)
            br->flushPending = false;
        if (br && br->seq == r.survivorSeq) {
            // Correct the branch's prediction to its resolution:
            // later flushes replay in-flight history bits from the
            // prediction fields, and this branch's wrong bit must not
            // be re-injected after its own recovery.
            //
            // A branch the coupled fetcher *stalled* on never had a
            // prediction: resolving it at execute is a (costly)
            // resynchronization event, not a misprediction.
            if (br->mispredict && !br->fetchStalled)
                br->wasMispredicted = true;
            if (br->fetchStalled)
                ++coreStats.stallResteers;
            br->hasPrediction = true;
            br->predTaken = br->taken;
            br->predTarget = br->actualNext;
            br->mispredict = false;
            br->fetchStalled = false;
        }
    }

#ifdef ELFSIM_TRACE_REDIRECTS
    std::fprintf(stderr,
                 "[%llu] redirect kind=%d survivor=%llu target=0x%llx "
                 "cursor=%llu mode=%d\n",
                 (unsigned long long)coreStats.cycles, int(r.kind),
                 (unsigned long long)r.survivorSeq,
                 (unsigned long long)r.targetPC,
                 (unsigned long long)r.oracleCursor,
                 int(controller->mode()));
#endif
    switch (r.kind) {
      case RedirectKind::ExecMispredict:
        ++coreStats.execFlushes;
        measureRedirectCycle = coreStats.cycles;
        break;
      case RedirectKind::MemOrder:
        ++coreStats.memOrderFlushes;
        break;
      case RedirectKind::DecodeResteer:
        ++coreStats.decodeResteers;
        // Boomerang-style extension: the bytes of the region that
        // missed the BTB are in the I-cache; pre-decode them into a
        // BTB entry so the next pass through this region does not
        // sequentially guess (and misfetch) again. Also prefill the
        // resteer target for the restarting DCF.
        if (cfg.decodeBtbFill) {
            if (DynInst *br = findInFlight(r.survivorSeq)) {
                if (br->fetchBlockPC != invalidAddr &&
                    !btbHier->present(br->fetchBlockPC))
                    btbHier->insert(
                        builder->buildEntry(br->fetchBlockPC));
            }
            if (!btbHier->present(r.targetPC))
                btbHier->insert(builder->buildEntry(r.targetPC));
        }
        break;
      case RedirectKind::Divergence:
        ++coreStats.divergenceFlushes;
        break;
      default:
        break;
    }

    backendUnit->squashYoungerThan(r.survivorSeq);
    while (!fetchToDecode->empty() &&
           fetchToDecode->back().seq > r.survivorSeq)
        fetchToDecode->popBack(1);
    ckpts->squashYoungerThan(r.survivorSeq);

    replayHistory(r);
    if (r.oracleCursor != 0)
        instSupply->redirect(r.oracleCursor);

    faq->clear();
    controller->applyRedirect(r.atCycle, r.targetPC);
}

void
Core::tick()
{
    ++coreStats.cycles;
    const Cycle now = coreStats.cycles;

    Redirect redirect = heldRedirect;
    heldRedirect = Redirect{};

    backendUnit->tick(now, redirect);

    // Decode (gated by back-end capacity).
    if (backendUnit->canAccept(cfg.fetch.width)) {
        FetchBundle &decoded = decodedScratch;
        decoded.clear();
        Redirect resteer;
        decodeStage->tick(now, *fetchToDecode, decoded, resteer);
        for (DynInst &di : decoded)
            backendUnit->accept(std::move(di), now);
        mergeRedirect(redirect, resteer);
    }

    // Fetch. The controller always ticks (resynchronization and
    // divergence detection must run every cycle); the engines only
    // produce instructions when the buffer has room.
    unsigned fetched = 0;
    {
        const bool canFetch =
            fetchToDecode->freeSlots() >= cfg.fetch.width;
        FetchBundle &fresh = freshScratch;
        fresh.clear();
        fetched = controller->fetchTick(now, fresh, redirect, canFetch);
        for (DynInst &di : fresh) {
            // ELF coupled-mode instances: the catching-up DCF will
            // push history bits for the branches its BTB tracks.
            if (isElf(cfg.variant) && di.mode == FetchMode::Coupled &&
                di.isBranch() && !di.fetchStalled)
                di.historyPushed = historyVisible(*di.si);
            di.readyAt = now + cfg.fetch.fetchToDecode;
            fetchToDecode->push(std::move(di));
        }
    }

    if (fetched > 0 && measureRedirectCycle != 0) {
        coreStats.redirectToFetchTotal += now - measureRedirectCycle;
        ++coreStats.redirectToFetchCount;
        measureRedirectCycle = 0;
    }

    controller->dcfTick(now);
    controller->prefetchTick(now, fetched == 0);
    applyPatches(redirect, now);
    applyRedirect(redirect);
}

void
Core::debugDump() const
{
    std::fprintf(stderr,
                 "core state @%llu: committed=%llu mode=%d faq=%zu "
                 "f2d=%zu rename=%zu rob=%zu iq=%zu lsq=%zu ckpts=%zu "
                 "wrongPath=%d cursor=%llu held=%d\n",
                 (unsigned long long)coreStats.cycles,
                 (unsigned long long)committed(),
                 int(controller->mode()), faq->size(),
                 fetchToDecode->size(), backendUnit->renamePipeSize(),
                 backendUnit->robSize(), backendUnit->iqSize(),
                 backendUnit->lsqSize(), ckpts->size(),
                 int(instSupply->onWrongPath()),
                 (unsigned long long)instSupply->cursor(),
                 int(heldRedirect.pending()));
    if (const DynInst *h = backendUnit->robHead()) {
        std::fprintf(stderr,
                     "  rob head: seq=%llu %s wp=%d issued=%d "
                     "completed=%d flushPending=%d mispred=%d "
                     "stalled=%d mode=%d src=(%llu,%llu) wait=%llu\n",
                     (unsigned long long)h->seq,
                     h->si->disasm().c_str(), int(h->wrongPath),
                     int(h->issued), int(h->completed),
                     int(h->flushPending), int(h->mispredict),
                     int(h->fetchStalled), int(h->mode),
                     (unsigned long long)h->srcProducer0,
                     (unsigned long long)h->srcProducer1,
                     (unsigned long long)h->waitStore);
    }
    if (cplEngineActiveForDump())
        std::fprintf(stderr, "  coupled engine active\n");
}

bool
Core::cplEngineActiveForDump() const
{
    return controller->coupledEngine().active();
}

void
Core::run(InstCount max_insts)
{
    // When a sweep worker installed an ExecContext, poll it every so
    // many cycles: publish the committed-instruction heartbeat, honor
    // cooperative cancellation (watchdog deadline / stall, SIGINT),
    // and give the fault injector its deterministic hook. Polling
    // reads simulator state but never writes it, so a watched run is
    // cycle-for-cycle identical to an unwatched one.
    constexpr Cycle pollInterval = 1024;
    ExecContext *exec = currentExecContext();
    Cycle nextPoll = coreStats.cycles + pollInterval;

    const InstCount target = committed() + max_insts;
    InstCount lastCommitted = committed();
    Cycle lastProgress = coreStats.cycles;
    while (committed() < target) {
        tick();
        if (committed() != lastCommitted) {
            lastCommitted = committed();
            lastProgress = coreStats.cycles;
        } else if (coreStats.cycles - lastProgress > 100000) {
            debugDump();
            ELFSIM_PANIC("no forward progress for 100k cycles "
                         "(workload %s, variant %s)",
                         prog.name().c_str(),
                         variantName(cfg.variant));
        }
        if (exec && coreStats.cycles >= nextPoll) {
            nextPoll = coreStats.cycles + pollInterval;
            exec->poll(coreStats.cycles, committed());
        }
    }
}

} // namespace elfsim
