#include "btb/btb_entry.hh"

namespace elfsim {

const char *
btbTerminationName(BtbTermination t)
{
    switch (t) {
      case BtbTermination::Unconditional: return "uncond";
      case BtbTermination::SlotPressure: return "slot-pressure";
      case BtbTermination::MaxInsts: return "max-insts";
    }
    return "?";
}

} // namespace elfsim
