#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

using namespace elfsim;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);

    std::atomic<int> ran{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};

    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ++ran; });
        pool.wait();
        EXPECT_EQ(ran.load(), 50 * (round + 1));
    }
}

TEST(ThreadPool, WaitOnEmptyPoolReturns)
{
    ThreadPool pool(3);
    pool.wait(); // nothing submitted; must not block
}

TEST(ThreadPool, StealsImbalancedWork)
{
    // Round-robin submission puts the slow tasks on worker 0 and
    // worker 1; with 4 workers the idle ones must steal for the
    // sweep-sized batch to finish promptly.
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&ran, i] {
            if (i % 4 < 2)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            ++ran;
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 40; ++i)
            pool.submit([&ran] { ++ran; });
        // No wait(): the destructor must finish the backlog.
    }
    EXPECT_EQ(ran.load(), 40);
}

TEST(ThreadPool, SubmitFromWorkerThread)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&pool, &ran] {
        for (int i = 0; i < 10; ++i)
            pool.submit([&ran] { ++ran; });
    });
    // The outer task must be counted too once its children exist;
    // wait() covers everything submitted so far plus the nested jobs
    // because submit increments 'unfinished' before wait can see 0.
    while (ran.load() < 10)
        std::this_thread::yield();
    pool.wait();
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}
