#include "bpred/checkpoint.hh"

#include "common/logging.hh"

namespace elfsim {

CheckpointQueue::CheckpointQueue(std::size_t capacity)
    : cap(capacity), entries(capacity)
{
    ELFSIM_ASSERT(capacity > 0, "checkpoint queue needs capacity");
}

std::uint64_t
CheckpointQueue::allocate(SeqNum seq, bool payload_valid)
{
    ELFSIM_ASSERT(!full(), "checkpoint queue overflow");
    ELFSIM_ASSERT(entries.empty() || entries.back().seq <= seq,
                  "checkpoints must be allocated in fetch order");
    const std::uint64_t id = nextId++;
    entries.push(Entry{id, seq, payload_valid});
    return id;
}

long
CheckpointQueue::find(std::uint64_t id) const
{
    if (entries.empty() || id < entries.front().id ||
        id > entries.back().id)
        return -1;
    // Ids are dense within the live window (squash removes a
    // contiguous tail, retire a contiguous head), so index math works.
    const std::size_t off = id - entries.front().id;
    if (off >= entries.size() || entries.at(off).id != id)
        return -1;
    return static_cast<long>(off);
}

bool
CheckpointQueue::has(std::uint64_t id) const
{
    return find(id) >= 0;
}

bool
CheckpointQueue::payloadReady(std::uint64_t id) const
{
    const long i = find(id);
    return i >= 0 && entries.at(std::size_t(i)).payloadValid;
}

void
CheckpointQueue::fillPayload(std::uint64_t id)
{
    const long i = find(id);
    if (i >= 0)
        entries.at(std::size_t(i)).payloadValid = true;
}

void
CheckpointQueue::fillPayloadsUpTo(SeqNum seq)
{
    for (std::size_t i = 0; i < entries.size(); ++i) {
        Entry &e = entries.at(i);
        if (e.seq > seq)
            break;
        e.payloadValid = true;
    }
}

void
CheckpointQueue::squashYoungerThan(SeqNum seq)
{
    while (!entries.empty() && entries.back().seq > seq)
        entries.popBack(1);
    // Reuse the squashed ids so the live window stays dense (their
    // owners are squashed and will never query them again).
    if (!entries.empty())
        nextId = entries.back().id + 1;
}

void
CheckpointQueue::retireUpTo(SeqNum seq)
{
    while (!entries.empty() && entries.front().seq <= seq)
        entries.dropFront();
}

} // namespace elfsim
