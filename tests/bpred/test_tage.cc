#include <gtest/gtest.h>

#include "bpred/tage.hh"
#include "common/random.hh"
#include "workload/behavior.hh"

using namespace elfsim;

namespace {

/** Run branch @a pc through predict/push/commit n times; return
 *  mispredict count. */
unsigned
runBranch(Tage &t, Addr pc, const CondSpec &spec, unsigned n,
          std::uint64_t start = 0)
{
    unsigned mispred = 0;
    for (unsigned i = 0; i < n; ++i) {
        const bool actual = spec.outcome(start + i);
        const TagePrediction p = t.predict(pc);
        if (p.taken != actual)
            ++mispred;
        // Correct path: speculative and architectural pushes agree.
        t.pushSpec(pc, actual);
        t.update(pc, p, actual);
        t.pushArch(pc, actual);
    }
    return mispred;
}

} // namespace

TEST(Tage, LearnsStronglyBiasedBranch)
{
    Tage t;
    CondSpec c;
    c.kind = CondKind::TakenProb;
    c.takenProb = 1.0;
    const unsigned mp = runBranch(t, 0x400100, c, 500);
    EXPECT_LT(mp, 10u);
}

TEST(Tage, LearnsLoopPeriodBeyondBimodal)
{
    // A period-8 loop branch: bimodal floors at ~1/8 mispredicts,
    // TAGE should learn the exit after warmup.
    Tage t;
    CondSpec c;
    c.kind = CondKind::LoopPeriod;
    c.period = 8;
    runBranch(t, 0x400200, c, 2000); // warmup
    const unsigned mp = runBranch(t, 0x400200, c, 2000, 2000);
    EXPECT_LT(mp, 2000u / 8 / 2) << "should beat the bimodal floor";
}

TEST(Tage, LearnsShortPattern)
{
    Tage t;
    CondSpec c;
    c.kind = CondKind::Pattern;
    c.period = 12;
    c.seed = 77;
    runBranch(t, 0x400300, c, 3000);
    const unsigned mp = runBranch(t, 0x400300, c, 1000, 3000);
    EXPECT_LT(mp, 100u);
}

TEST(Tage, RandomBranchNearBiasFloor)
{
    Tage t;
    CondSpec c;
    c.kind = CondKind::TakenProb;
    c.takenProb = 0.5;
    c.seed = 1234;
    runBranch(t, 0x400400, c, 2000);
    const unsigned mp = runBranch(t, 0x400400, c, 2000, 2000);
    // Cannot do better than ~50%; allow a wide band but make sure we
    // are not accidentally clairvoyant or pathological.
    EXPECT_GT(mp, 600u);
    EXPECT_LT(mp, 1400u);
}

TEST(Tage, SpecRestoreAfterWrongPathPushes)
{
    Tage t;
    const Addr pc = 0x400500;
    // Commit a fixed history.
    for (int i = 0; i < 50; ++i) {
        const bool bit = i % 3 == 0;
        t.pushSpec(pc, bit);
        t.pushArch(pc, bit);
    }
    const TagePrediction clean = t.predict(pc);
    // Pollute speculative history (wrong path), then recover.
    for (int i = 0; i < 20; ++i)
        t.pushSpec(pc + 64, i % 2 == 0);
    t.resetSpecToArch();
    const TagePrediction recovered = t.predict(pc);
    EXPECT_EQ(recovered.taken, clean.taken);
    for (unsigned i = 0; i < t.config().numTables; ++i) {
        EXPECT_EQ(recovered.indices[i], clean.indices[i]);
        EXPECT_EQ(recovered.tags[i], clean.tags[i]);
    }
}

TEST(Tage, ArchPredictMatchesSpecOnCorrectPath)
{
    Tage t;
    Rng rng(5);
    const Addr pc = 0x400600;
    for (int i = 0; i < 100; ++i) {
        const bool bit = rng.chance(0.5);
        const TagePrediction sp = t.predict(pc);
        const TagePrediction ap = t.predictArch(pc);
        EXPECT_EQ(sp.indices[0], ap.indices[0]);
        EXPECT_EQ(sp.taken, ap.taken);
        t.pushSpec(pc, bit);
        t.pushArch(pc, bit);
    }
}

TEST(Tage, DistinctHistoriesUseDistinctEntries)
{
    Tage t;
    const Addr pc = 0x400700;
    TagePrediction a = t.predict(pc);
    for (int i = 0; i < 30; ++i)
        t.pushSpec(pc, true);
    TagePrediction b = t.predict(pc);
    bool anyDiff = false;
    for (unsigned i = 0; i < t.config().numTables; ++i)
        anyDiff |= a.indices[i] != b.indices[i];
    EXPECT_TRUE(anyDiff);
}

TEST(Tage, StorageNearBudget)
{
    Tage t;
    // Paper: "32KB TAGE" — our layout should be in that ballpark.
    EXPECT_GT(t.storageBytes(), 16.0 * 1024);
    EXPECT_LT(t.storageBytes(), 48.0 * 1024);
}

TEST(Tage, TrainingWithInvalidPredictionAborts)
{
    Tage t;
    TagePrediction dead;
    EXPECT_DEATH(t.update(0x400800, dead, true), "empty prediction");
}
