/**
 * @file
 * Static instruction model for the abstract fixed-length ISA.
 *
 * The simulator models an ARMv8-like fixed-length ISA at the level of
 * detail the front-end cares about: instruction class, branch kind,
 * direct target, register operands, and (for memory operations) a
 * reference to an address-behaviour generator owned by the workload.
 */

#ifndef ELFSIM_ISA_STATIC_INST_HH
#define ELFSIM_ISA_STATIC_INST_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace elfsim {

/** Execution resource class of an instruction. */
enum class InstClass : std::uint8_t {
    IntAlu,   ///< single-cycle integer op
    IntMul,   ///< integer multiply
    IntDiv,   ///< integer divide
    FloatOp,  ///< scalar FP / SIMD arithmetic
    Load,     ///< memory read
    Store,    ///< memory write
    Branch,   ///< any control transfer
    Nop,      ///< no-operation filler
};

/** Control-transfer kind (BranchKind::None for non-branches). */
enum class BranchKind : std::uint8_t {
    None,
    CondDirect,    ///< conditional, PC-relative target
    UncondDirect,  ///< unconditional jump, PC-relative target
    DirectCall,    ///< call with PC-relative target (pushes return addr)
    IndirectJump,  ///< unconditional register-indirect jump
    IndirectCall,  ///< register-indirect call (pushes return addr)
    Return,        ///< function return (target from link/stack)
};

/** @return true iff the kind is any branch. */
constexpr bool
isBranch(BranchKind k)
{
    return k != BranchKind::None;
}

/** @return true iff the branch is conditional. */
constexpr bool
isConditional(BranchKind k)
{
    return k == BranchKind::CondDirect;
}

/** @return true iff the branch is unconditional (incl. calls/returns). */
constexpr bool
isUnconditional(BranchKind k)
{
    return isBranch(k) && !isConditional(k);
}

/** @return true iff the target comes from the instruction word. */
constexpr bool
isDirect(BranchKind k)
{
    return k == BranchKind::CondDirect || k == BranchKind::UncondDirect ||
           k == BranchKind::DirectCall;
}

/** @return true iff the target is register-indirect (incl. returns). */
constexpr bool
isIndirect(BranchKind k)
{
    return k == BranchKind::IndirectJump || k == BranchKind::IndirectCall ||
           k == BranchKind::Return;
}

/** @return true iff the instruction pushes a return address. */
constexpr bool
isCall(BranchKind k)
{
    return k == BranchKind::DirectCall || k == BranchKind::IndirectCall;
}

/** @return true iff the instruction pops the return address stack. */
constexpr bool
isReturn(BranchKind k)
{
    return k == BranchKind::Return;
}

/** Sentinel for "no behaviour generator attached". */
constexpr std::uint32_t noBehavior = 0xffffffffu;

/**
 * One static instruction in the synthetic program image.
 *
 * Static instructions are immutable after program construction and are
 * referenced by pointer from dynamic instructions; they are stored
 * contiguously per basic block.
 */
struct StaticInst
{
    /** Instruction address (4-byte aligned). */
    Addr pc = invalidAddr;

    /** Resource class. */
    InstClass cls = InstClass::IntAlu;

    /** Branch kind; None unless cls == Branch. */
    BranchKind branch = BranchKind::None;

    /**
     * Direct branch target (valid iff isDirect(branch)). For
     * conditional branches this is the taken target; fall-through is
     * pc + instBytes.
     */
    Addr directTarget = invalidAddr;

    /** Destination register (numArchRegs == none). */
    RegIndex destReg = numArchRegs;

    /** Source registers (numArchRegs == unused slot). */
    std::array<RegIndex, 2> srcRegs = {numArchRegs, numArchRegs};

    /**
     * Behaviour generator id: for Load/Store an address-behaviour id,
     * for CondDirect a condition-behaviour id, for indirect branches a
     * target-behaviour id. noBehavior when not applicable.
     */
    std::uint32_t behavior = noBehavior;

    /** Owning basic block's index in the program (for CFG walking). */
    std::uint32_t blockIndex = 0;

    bool isBranchInst() const { return isBranch(branch); }
    bool isMemInst() const
    {
        return cls == InstClass::Load || cls == InstClass::Store;
    }
    bool isLoad() const { return cls == InstClass::Load; }
    bool isStore() const { return cls == InstClass::Store; }

    /** Sequential successor address. */
    Addr nextPC() const { return pc + instBytes; }

    /** Human-readable one-line disassembly (for traces/debug). */
    std::string disasm() const;
};

/** Name of an instruction class (for traces and stats). */
const char *instClassName(InstClass c);

/** Name of a branch kind. */
const char *branchKindName(BranchKind k);

} // namespace elfsim

#endif // ELFSIM_ISA_STATIC_INST_HH
