#include <gtest/gtest.h>

#include "bpred/predictor_bank.hh"
#include "btb/btb.hh"
#include "btb/btb_builder.hh"
#include "frontend/dcf.hh"
#include "workload/builders.hh"
#include "workload/oracle_stream.hh"

using namespace elfsim;

namespace {

/** Train the BTB by retiring the architectural stream. */
void
warmBtb(const Program &p, MultiBtb &btb, SeqNum n)
{
    BtbBuilder builder(p, btb);
    OracleStream os(p);
    for (SeqNum i = 1; i <= n; ++i) {
        const OracleInst &oi = os.at(i);
        builder.retire(*oi.si, oi.taken, oi.nextPC);
        os.retireUpTo(i);
    }
}

} // namespace

TEST(Dcf, SequentialGuessingOnColdBtb)
{
    Program p = microTakenChain(4, 6);
    MultiBtb btb;
    PredictorBank bank;
    Faq faq(32);
    DecoupledFetcher dcf(btb, bank, faq);

    dcf.restart(p.entryPC(), 0);
    for (Cycle c = 1; c <= 4; ++c)
        dcf.tick(c);

    ASSERT_EQ(faq.size(), 4u);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_TRUE(faq.at(i).fromBtbMiss);
        EXPECT_EQ(faq.at(i).numInsts, btbMaxInsts);
        EXPECT_EQ(faq.at(i).startPC,
                  p.entryPC() + instsToBytes(16 * i));
    }
}

TEST(Dcf, FollowsTakenChainAfterWarmup)
{
    Program p = microTakenChain(4, 6); // blocks of 7 insts
    MultiBtb btb;
    warmBtb(p, btb, 200);
    PredictorBank bank;
    Faq faq(32);
    DecoupledFetcher dcf(btb, bank, faq);

    dcf.restart(p.entryPC(), 0);
    Cycle c = 1;
    while (faq.size() < 4 && c < 40) // bubbles allowed
        dcf.tick(c++);

    ASSERT_GE(faq.size(), 4u);
    // Each block ends in a taken jump to the next block start.
    for (unsigned i = 0; i < 4; ++i) {
        const FaqEntry &e = faq.at(i);
        EXPECT_FALSE(e.fromBtbMiss);
        EXPECT_EQ(e.numInsts, 7);
        EXPECT_EQ(e.endCause, FaqBlockEnd::TakenBranch);
        EXPECT_TRUE(p.contains(e.nextPC));
    }
    // Consecutive blocks chain through targets.
    EXPECT_EQ(faq.at(0).nextPC, faq.at(1).startPC);
}

TEST(Dcf, StopsWhenFaqFull)
{
    Program p = microTakenChain(4, 6);
    MultiBtb btb;
    PredictorBank bank;
    Faq faq(4);
    DecoupledFetcher dcf(btb, bank, faq);
    dcf.restart(p.entryPC(), 0);
    for (Cycle c = 1; c <= 20; ++c)
        dcf.tick(c);
    EXPECT_EQ(faq.size(), 4u);
}

TEST(Dcf, HaltStopsGeneration)
{
    Program p = microTakenChain(4, 6);
    MultiBtb btb;
    PredictorBank bank;
    Faq faq(32);
    DecoupledFetcher dcf(btb, bank, faq);
    dcf.restart(p.entryPC(), 0);
    dcf.tick(1);
    dcf.halt();
    dcf.tick(2);
    EXPECT_EQ(faq.size(), 1u);
    EXPECT_EQ(dcf.bpredPC(), invalidAddr);
}

TEST(Dcf, L0HitAvoidsTakenBubble)
{
    // After repeated lookups the ring promotes into the L0 BTB; taken
    // blocks should then generate back-to-back (no stall cycles).
    Program p = microTakenChain(2, 6);
    MultiBtb btb;
    warmBtb(p, btb, 100);
    PredictorBank bank;
    Faq faq(32);
    DecoupledFetcher dcf(btb, bank, faq);

    dcf.restart(p.entryPC(), 0);
    // Warm the L0 by generating a few blocks first.
    for (Cycle c = 1; c <= 10; ++c)
        dcf.tick(c);
    const auto blocksBefore = dcf.stats().blocks;
    const auto bubblesBefore = dcf.stats().bubbleCycles;
    for (Cycle c = 11; c <= 20; ++c)
        dcf.tick(c);
    // 10 cycles -> 10 blocks once the L0 BTB covers the ring.
    EXPECT_EQ(dcf.stats().blocks - blocksBefore, 10u);
    EXPECT_EQ(dcf.stats().bubbleCycles, bubblesBefore);
}

TEST(Dcf, ShortEntryFallthroughBubbleOnL1Hit)
{
    // A never-taken cond loop: single block of body+cond, entry spans
    // < 16 insts, fall-through path. On an L1 hit (not L0), BP2 must
    // resteer BP1 (1 bubble) because the proxy fall-through is wrong.
    Program p = microSequentialLoop(40, 1000000); // rarely taken
    MultiBtb btb;
    warmBtb(p, btb, 300);
    PredictorBank bank;
    Faq faq(8);
    DecoupledFetcher dcf(btb, bank, faq);
    dcf.restart(p.entryPC(), 0);
    for (Cycle c = 1; c <= 30; ++c) {
        dcf.tick(c);
        if (faq.full())
            faq.pop();
    }
    // Entries of 16/16/10 insts; the 10-inst one is a short entry.
    EXPECT_GT(dcf.stats().blocks, 8u);
}
