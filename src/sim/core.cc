#include "sim/core.hh"

#include <algorithm>
#include <cstdio>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "workload/compiled_trace.hh"

namespace elfsim {

Core::Core(const SimConfig &cfg, const Program &prog,
           std::shared_ptr<const CompiledTrace> trace)
    : cfg(cfg), prog(prog)
{
    // A non-zero run seed re-derives the stochastic-allocation seeds
    // so sweep jobs can decorrelate deterministically.
    if (this->cfg.rngSeed) {
        this->cfg.preds.tage.allocSeed =
            mix64(this->cfg.rngSeed, 0xa11c);
        this->cfg.preds.ittage.allocSeed =
            mix64(this->cfg.rngSeed, 0x17a6);
    }

    oracle = std::make_unique<OracleStream>(
        prog, defaultOracleWindowCap, std::move(trace));
    walker = std::make_unique<WrongPathWalker>(prog);
    instSupply = std::make_unique<InstSupply>(*oracle, *walker);
    mem = std::make_unique<MemHierarchy>(cfg.mem);
    bank = std::make_unique<PredictorBank>(this->cfg.preds);
    btbHier = std::make_unique<MultiBtb>(cfg.btb);
    builder = std::make_unique<BtbBuilder>(prog, *btbHier);
    ckpts = std::make_unique<CheckpointQueue>(cfg.checkpointEntries);
    faq = std::make_unique<Faq>(cfg.faqEntries);
    controller = std::make_unique<ElfController>(
        cfg.elfParams(), *mem, *instSupply, *faq, *ckpts, *bank,
        *btbHier);
    decodeStage = std::make_unique<DecodeStage>(cfg.fetch.width, *bank);
    memDep = std::make_unique<MemDepPredictor>();
    backendUnit = std::make_unique<Backend>(cfg.backend, *mem, *memDep);
    fetchToDecode = std::make_unique<BoundedQueue<DynInst>>(
        cfg.fetchBufferEntries);

    decodeStage->setObserver(controller.get());
    backendUnit->setCommitHook(
        [this](const DynInst &di) { onCommit(di); });

    // Startup behaves like a flush into the entry point.
    controller->applyRedirect(0, prog.entryPC());
}

bool
Core::historyVisible(const StaticInst &si) const
{
    // The NoDCF front-end sees every branch at fetch (pre-decode
    // bits); decoupled front-ends only see BTB-tracked branches, i.e.
    // unconditionals and observed-taken conditionals.
    if (cfg.variant == FrontendVariant::NoDcf)
        return true;
    return isUnconditional(si.branch) || builder->observedTaken(si.pc);
}

void
Core::onCommit(const DynInst &di)
{
    if (di.isBranch()) {
        bank->commitBranch(di.pc(), di.si->branch, di.taken,
                           di.actualNext, di.tagePred, di.ittagePred,
                           di.historyPushed);
        controller->coupledPredictors().trainCommit(
            di.pc(), di.si->branch, di.taken, di.actualNext, di.mode);
    }
    builder->retire(*di.si, di.taken, di.actualNext);
    oracle->retireUpTo(di.oracleIdx);
    ckpts->retireUpTo(di.seq);
    lastCommitSeq = di.seq;
    lastCommitOracleIdx = di.oracleIdx;
    if (commitObserver)
        commitObserver(di);
}

DynInst *
Core::findInFlight(SeqNum seq)
{
    return backendUnit->findInFlightMutable(seq);
}

DynInst *
Core::findAnywhere(SeqNum seq)
{
    if (DynInst *di = findInFlight(seq))
        return di;
    // Still in the fetch-to-decode buffer?
    return findSeqInQueue(*fetchToDecode, seq);
}

void
Core::applyPatches(Redirect &redirect, Cycle now)
{
    // History-visibility corrections first: the prediction patches
    // below carry their own (consistent) coverage flag.
    for (const auto &[seq, covered] : controller->visibilityFixes()) {
        DynInst *di = findAnywhere(seq);
        if (di && di->isBranch() && di->mode == FetchMode::Coupled)
            di->historyPushed = covered;
    }
    controller->clearVisibilityFixes();

    for (const PredPatch &p : controller->patches()) {
        DynInst *di = findAnywhere(p.seq);
        if (!di)
            continue; // squashed meanwhile
#ifdef ELFSIM_TRACE_SEQ
        if (p.seq >= ELFSIM_TRACE_SEQ && p.seq <= ELFSIM_TRACE_SEQ + 200)
            std::fprintf(stderr, "[%llu] patch seq=%llu taken=%d "
                         "completed=%d\n",
                         (unsigned long long)now,
                         (unsigned long long)p.seq, int(p.taken),
                         int(di->completed));
#endif
        di->hasPrediction = true;
        di->predTaken = p.taken;
        di->predTarget = p.target;
        if (p.tage.valid)
            di->tagePred = p.tage;
        if (p.ittage.valid)
            di->ittagePred = p.ittage;
        if (p.clearStall)
            di->fetchStalled = false;
        if (p.historyPushed)
            di->historyPushed = true;
        if (di->wrongPath) {
            di->taken = di->predTaken;
            di->actualNext = di->predTarget;
            di->mispredict = false;
        } else {
            di->mispredict =
                (di->taken != di->predTaken) ||
                (di->taken && di->actualNext != di->predTarget);
        }
        if (p.fromBtbMiss && di->isBranch() && !di->completed) {
            // The resynchronization covered this stalled branch with
            // a BTB-miss guess block: the baseline front-end would
            // have recovered it at decode with the decoupled
            // predictors — do the same, late.
            di->hasPrediction = false;
            Redirect resteer;
            if (decodeStage->recoverMisfetch(now, *di, resteer))
                mergeRedirect(redirect, resteer);
        }
        if (di->completed && di->mispredict && !di->wrongPath) {
            // The branch already executed under its old prediction
            // and found it correct; under the adopted (DCF)
            // prediction it is a misprediction and must flush now.
            Redirect req;
            req.kind = RedirectKind::ExecMispredict;
            req.survivorSeq = di->seq;
            req.targetPC = di->actualNext;
            req.oracleCursor = di->oracleIdx + 1;
            req.atCycle = now;
            mergeRedirect(redirect, req);
        }
    }
    controller->clearPatches();
}

void
Core::replayHistory(const Redirect &r)
{
    bank->resetSpecToArch();
    backendUnit->forEachInFlight([&](const DynInst &di) {
        if (di.seq > r.survivorSeq || !di.isBranch())
            return;
        if (di.historyPushed) {
            bool bit;
            if (di.seq == r.survivorSeq &&
                r.kind == RedirectKind::ExecMispredict) {
                // The resolving branch: push the resolved outcome.
                bit = di.taken;
            } else {
                bit = di.hasPrediction ? di.predTaken : false;
            }
            bank->specBranch(di.pc(), di.si->branch, bit);
        } else if (isCall(di.si->branch)) {
            // RAS maintenance is decode-driven even for branches the
            // DCF never saw; every in-flight instruction here has
            // passed decode.
            bank->specRas().push(di.pc() + instBytes);
        } else if (isReturn(di.si->branch)) {
            bank->specRas().pop();
        }
    });
}

void
Core::applyRedirect(Redirect r)
{
    if (!r.pending())
        return;

    if (r.kind == RedirectKind::ExecMispredict) {
        // ELF: a branch fetched in coupled mode may not flush until
        // its checkpoint payload is populated from FAQ information —
        // unless it reached the ROB head (Section IV-D1). The
        // idealized policy skips the gate entirely.
        DynInst *br = findInFlight(r.survivorSeq);
        if (cfg.payloadPolicy != PayloadPolicy::Ideal && br &&
            br->mode == FetchMode::Coupled &&
            br->checkpointId != noCheckpoint &&
            ckpts->has(br->checkpointId) &&
            !ckpts->payloadReady(br->checkpointId) &&
            !backendUnit->atRobHead(br->seq)) {
            br->flushPending = true;
            heldRedirect = r;
            ++coreStats.pendingFlushWaits;
            return;
        }
        if (br)
            br->flushPending = false;
        if (br && br->seq == r.survivorSeq) {
            // Correct the branch's prediction to its resolution:
            // later flushes replay in-flight history bits from the
            // prediction fields, and this branch's wrong bit must not
            // be re-injected after its own recovery.
            //
            // A branch the coupled fetcher *stalled* on never had a
            // prediction: resolving it at execute is a (costly)
            // resynchronization event, not a misprediction.
            if (br->mispredict && !br->fetchStalled)
                br->wasMispredicted = true;
            if (br->fetchStalled)
                ++coreStats.stallResteers;
            br->hasPrediction = true;
            br->predTaken = br->taken;
            br->predTarget = br->actualNext;
            br->mispredict = false;
            br->fetchStalled = false;
        }
    }

#ifdef ELFSIM_TRACE_REDIRECTS
    std::fprintf(stderr,
                 "[%llu] redirect kind=%d survivor=%llu target=0x%llx "
                 "cursor=%llu mode=%d\n",
                 (unsigned long long)coreStats.cycles, int(r.kind),
                 (unsigned long long)r.survivorSeq,
                 (unsigned long long)r.targetPC,
                 (unsigned long long)r.oracleCursor,
                 int(controller->mode()));
#endif
    switch (r.kind) {
      case RedirectKind::ExecMispredict:
        ++coreStats.execFlushes;
        measureRedirectCycle = coreStats.cycles;
        break;
      case RedirectKind::MemOrder:
        ++coreStats.memOrderFlushes;
        break;
      case RedirectKind::DecodeResteer:
        ++coreStats.decodeResteers;
        // Boomerang-style extension: the bytes of the region that
        // missed the BTB are in the I-cache; pre-decode them into a
        // BTB entry so the next pass through this region does not
        // sequentially guess (and misfetch) again. Also prefill the
        // resteer target for the restarting DCF.
        if (cfg.decodeBtbFill) {
            if (DynInst *br = findInFlight(r.survivorSeq)) {
                if (br->fetchBlockPC != invalidAddr &&
                    !btbHier->present(br->fetchBlockPC))
                    btbHier->insert(
                        builder->buildEntry(br->fetchBlockPC));
            }
            if (!btbHier->present(r.targetPC))
                btbHier->insert(builder->buildEntry(r.targetPC));
        }
        break;
      case RedirectKind::Divergence:
        ++coreStats.divergenceFlushes;
        break;
      default:
        break;
    }

    backendUnit->squashYoungerThan(r.survivorSeq);
    while (!fetchToDecode->empty() &&
           fetchToDecode->back().seq > r.survivorSeq)
        fetchToDecode->popBack(1);
    ckpts->squashYoungerThan(r.survivorSeq);

    replayHistory(r);
    if (r.oracleCursor != 0)
        instSupply->redirect(r.oracleCursor);

    faq->clear();
    controller->applyRedirect(r.atCycle, r.targetPC);
}

void
Core::tick()
{
    ++coreStats.cycles;
    const Cycle now = coreStats.cycles;

    Redirect redirect = heldRedirect;
    heldRedirect = Redirect{};

    backendUnit->tick(now, redirect);

    // Decode (gated by back-end capacity).
    if (backendUnit->canAccept(cfg.fetch.width)) {
        FetchBundle &decoded = decodedScratch;
        decoded.clear();
        Redirect resteer;
        decodeStage->tick(now, *fetchToDecode, decoded, resteer);
        for (DynInst &di : decoded)
            backendUnit->accept(std::move(di), now);
        mergeRedirect(redirect, resteer);
    }

    // Fetch. The controller always ticks (resynchronization and
    // divergence detection must run every cycle); the engines only
    // produce instructions when the buffer has room.
    unsigned fetched = 0;
    {
        const bool canFetch =
            fetchToDecode->freeSlots() >= cfg.fetch.width;
        FetchBundle &fresh = freshScratch;
        fresh.clear();
        fetched = controller->fetchTick(now, fresh, redirect, canFetch);
        for (DynInst &di : fresh) {
            // ELF coupled-mode instances: the catching-up DCF will
            // push history bits for the branches its BTB tracks.
            if (isElf(cfg.variant) && di.mode == FetchMode::Coupled &&
                di.isBranch() && !di.fetchStalled)
                di.historyPushed = historyVisible(*di.si);
            di.readyAt = now + cfg.fetch.fetchToDecode;
            fetchToDecode->push(std::move(di));
        }
    }

    if (fetched > 0 && measureRedirectCycle != 0) {
        coreStats.redirectToFetchTotal += now - measureRedirectCycle;
        ++coreStats.redirectToFetchCount;
        measureRedirectCycle = 0;
    }

    controller->dcfTick(now);
    controller->prefetchTick(now, fetched == 0);
    applyPatches(redirect, now);
    applyRedirect(redirect);
}

void
Core::squashToCommitted()
{
    // A flush whose survivor is the last committed instruction: every
    // in-flight instruction is younger and goes away, so the usual
    // history replay degenerates to resetSpecToArch().
    backendUnit->squashYoungerThan(lastCommitSeq);
    while (!fetchToDecode->empty() &&
           fetchToDecode->back().seq > lastCommitSeq)
        fetchToDecode->popBack(1);
    ckpts->squashYoungerThan(lastCommitSeq);
    bank->resetSpecToArch();
    heldRedirect = Redirect{};
    measureRedirectCycle = 0;
    instSupply->redirect(lastCommitOracleIdx + 1);
    faq->clear();
    controller->applyRedirect(coreStats.cycles,
                              oracle->pcAt(lastCommitOracleIdx + 1));
}

void
Core::fastForward(InstCount n)
{
    ELFSIM_ASSERT(backendUnit->empty() && fetchToDecode->empty(),
                  "fast-forward with in-flight instructions "
                  "(squashToCommitted first)");

    const Addr lineMask = ~(Addr(cfg.mem.l0i.lineBytes) - 1);
    Addr lastLine = invalidAddr;
    Addr resumePC = invalidAddr;

    // Batch warming kernel (sim/warm_kernel.cc): when the window
    // starts inside the compiled prefix, warm as much of it as the
    // prefix covers by iterating the trace's side tables — state-
    // identical to the scalar loop below, at memory-scan speed. The
    // 'warmtab' fault site forces the scalar path, standing in for a
    // side-table defect (recovery = warm the slow, reference way).
    InstCount done = 0;
    if (const CompiledTrace *tr = oracle->backingTrace()) {
        const InstCount p0 = lastCommitOracleIdx;
        const InstCount kn =
            p0 < tr->size() ? std::min(n, tr->size() - p0) : 0;
        if (kn > 0 &&
            !FaultInjector::instance().shouldPoisonWarmTables()) {
            warmKernel(*tr, p0, kn, lastLine);
            done = kn;
            resumePC = tr->nextPC(p0 + kn - 1);
        }
    }
    warmStats_.scalarInsts += n - done;

    // Scalar warming for whatever the kernel did not cover (lazy
    // streams, the tail past the compiled prefix, poisoned tables).
    // Long fast-forwards must stay observable: publish the stream
    // position as the heartbeat and give watchdogs / fault injection
    // their deterministic hook, like Core::run does. The poll ladder
    // is call-relative and shared with the kernel: position i polls
    // iff i is a multiple of ffPollInsts, wherever the prefix ends.
    ExecContext *exec = currentExecContext();

    for (InstCount i = done; i < n; ++i) {
        if (exec && (i & (ffPollInsts - 1)) == 0)
            exec->poll(coreStats.cycles, lastCommitOracleIdx);
        const SeqNum idx = lastCommitOracleIdx + 1;
        const OracleInst &oi = oracle->at(idx);
        const StaticInst &si = *oi.si;

        // One synthetic cycle per instruction: the caches' absolute
        // readyCycle/LRU bookkeeping needs a monotonic clock shared
        // with the detailed windows.
        ++coreStats.cycles;
        const Cycle now = coreStats.cycles;

        // Warm the instruction side once per cache line (sequential
        // fetch within a line is free in the detailed model too).
        const Addr line = si.pc & lineMask;
        if (line != lastLine) {
            mem->instFetch(si.pc, now);
            lastLine = line;
        }
        if (si.isMemInst())
            mem->dataAccess(si.pc, oi.memAddr, si.isStore(), now);

        if (si.branch != BranchKind::None) {
            // Train exactly like commit of an unpredicted branch:
            // invalid TAGE/ITTAGE predictions make commitBranch
            // re-predict on the architectural history before training.
            bank->commitBranch(si.pc, si.branch, oi.taken, oi.nextPC,
                               TagePrediction{}, IttagePrediction{},
                               historyVisible(si));
            controller->coupledPredictors().trainCommit(
                si.pc, si.branch, oi.taken, oi.nextPC,
                FetchMode::Coupled);
            if (oi.taken) {
                // Model the DCF probing the BTB at the target: warms
                // hit/promotion state for the upcoming regions.
                btbHier->lookup(oi.nextPC);
                lastLine = invalidAddr;
            }
        }
        builder->retire(si, oi.taken, oi.nextPC);
        oracle->retireUpTo(idx);
        lastCommitOracleIdx = idx;
        resumePC = oi.nextPC;
    }

    // Capture the generator resume state for checkpointing *now*:
    // this is the only moment the live generator state corresponds
    // exactly to consumedInsts() — the restart below (and any pcAt)
    // generates ahead and advances it.
    ffGenStateValid =
        oracle->windowEmpty() && oracle->genStateKnown();
    if (ffGenStateValid)
        ffGenState = oracle->genState();

    // Restart the front-end at the new position, exactly like a
    // flush into it. Speculative state re-derives from architectural.
    bank->resetSpecToArch();
    instSupply->redirect(lastCommitOracleIdx + 1);
    faq->clear();
    if (resumePC == invalidAddr)
        resumePC = oracle->pcAt(lastCommitOracleIdx + 1);
    controller->applyRedirect(coreStats.cycles, resumePC);
}

void
Core::saveWarmState(Serializer &s) const
{
    // Cumulative counters first. The cycle counter must travel with
    // the caches: their readyCycle values are absolute cycles.
    s.u64(coreStats.cycles);
    s.u64(coreStats.execFlushes);
    s.u64(coreStats.memOrderFlushes);
    s.u64(coreStats.decodeResteers);
    s.u64(coreStats.divergenceFlushes);
    s.u64(coreStats.pendingFlushWaits);
    s.u64(coreStats.stallResteers);
    s.u64(coreStats.redirectToFetchTotal);
    s.u64(coreStats.redirectToFetchCount);

    const BackendStats &bs = backendUnit->stats();
    s.u64(bs.committed);
    s.u64(bs.committedBranches);
    s.u64(bs.condMispredicts);
    s.u64(bs.targetMispredicts);
    s.u64(bs.memOrderFlushes);
    s.u64(bs.robFullCycles);
    s.u64(bs.coupledCommitted);

    const ElfStats &es = controller->stats();
    s.u64(es.coupledCycles);
    s.u64(es.decoupledCycles);
    s.u64(es.coupledPeriods);
    s.u64(es.coupledInsts);
    s.u64(es.switches);
    s.u64(es.divergenceFlushes);
    s.u64(es.trustFetcherFlushes);
    s.u64(es.instPrefetches);

    // The sequence counter salts wrong-path memory addresses; resumed
    // runs must continue it, not restart it.
    s.u64(instSupply->seqCount());
    s.u64(instSupply->wrongPathInsts());

    // Warm structures.
    bank->saveState(s);
    btbHier->saveState(s);
    builder->saveState(s);
    mem->saveState(s);
    memDep->saveState(s);
    controller->coupledPredictors().saveState(s);
}

void
Core::loadWarmState(Deserializer &d, InstCount position,
                    const OracleGen *gen_state)
{
    ELFSIM_ASSERT(backendUnit->empty() && fetchToDecode->empty(),
                  "warm-state restore with in-flight instructions");

    CoreStats cs;
    cs.cycles = d.u64();
    cs.execFlushes = d.u64();
    cs.memOrderFlushes = d.u64();
    cs.decodeResteers = d.u64();
    cs.divergenceFlushes = d.u64();
    cs.pendingFlushWaits = d.u64();
    cs.stallResteers = d.u64();
    cs.redirectToFetchTotal = d.u64();
    cs.redirectToFetchCount = d.u64();

    BackendStats bs;
    bs.committed = d.u64();
    bs.committedBranches = d.u64();
    bs.condMispredicts = d.u64();
    bs.targetMispredicts = d.u64();
    bs.memOrderFlushes = d.u64();
    bs.robFullCycles = d.u64();
    bs.coupledCommitted = d.u64();

    ElfStats es;
    es.coupledCycles = d.u64();
    es.decoupledCycles = d.u64();
    es.coupledPeriods = d.u64();
    es.coupledInsts = d.u64();
    es.switches = d.u64();
    es.divergenceFlushes = d.u64();
    es.trustFetcherFlushes = d.u64();
    es.instPrefetches = d.u64();

    const SeqNum seqCounter = d.u64();
    const std::uint64_t wrongPathInsts = d.u64();

    bank->loadState(d);
    btbHier->loadState(d);
    builder->loadState(d);
    mem->loadState(d);
    memDep->loadState(d);
    controller->coupledPredictors().loadState(d);
    d.expectEnd();

    coreStats = cs;
    backendUnit->restoreStats(bs);
    instSupply->restoreCounters(seqCounter, wrongPathInsts);
    lastCommitSeq = seqCounter;
    lastCommitOracleIdx = position;

    // Reposition the stream and restart the engines exactly like a
    // flush into the checkpoint position. The window may still hold
    // instructions generated ahead of the commit point (fetch runs
    // ahead); drop them — they replay from the new position.
    if (!oracle->windowEmpty())
        oracle->retireUpTo(oracle->newest());
    if (gen_state)
        oracle->seekTo(position + 1, *gen_state);
    else
        oracle->seekTo(position + 1);
    instSupply->redirect(position + 1);
    heldRedirect = Redirect{};
    measureRedirectCycle = 0;
    faq->clear();
    controller->applyRedirect(coreStats.cycles,
                              oracle->pcAt(position + 1));
    // The checkpoint was saved *after* the equivalent restart, so its
    // counters already include that restart's bookkeeping (e.g. the
    // ELF coupled-period bump); restoring them after applyRedirect
    // cancels the double count.
    controller->restoreStats(es);
}

void
Core::debugDump() const
{
    std::fprintf(stderr,
                 "core state @%llu: committed=%llu mode=%d faq=%zu "
                 "f2d=%zu rename=%zu rob=%zu iq=%zu lsq=%zu ckpts=%zu "
                 "wrongPath=%d cursor=%llu held=%d\n",
                 (unsigned long long)coreStats.cycles,
                 (unsigned long long)committed(),
                 int(controller->mode()), faq->size(),
                 fetchToDecode->size(), backendUnit->renamePipeSize(),
                 backendUnit->robSize(), backendUnit->iqSize(),
                 backendUnit->lsqSize(), ckpts->size(),
                 int(instSupply->onWrongPath()),
                 (unsigned long long)instSupply->cursor(),
                 int(heldRedirect.pending()));
    if (const DynInst *h = backendUnit->robHead()) {
        std::fprintf(stderr,
                     "  rob head: seq=%llu %s wp=%d issued=%d "
                     "completed=%d flushPending=%d mispred=%d "
                     "stalled=%d mode=%d src=(%llu,%llu) wait=%llu\n",
                     (unsigned long long)h->seq,
                     h->si->disasm().c_str(), int(h->wrongPath),
                     int(h->issued), int(h->completed),
                     int(h->flushPending), int(h->mispredict),
                     int(h->fetchStalled), int(h->mode),
                     (unsigned long long)h->srcProducer0,
                     (unsigned long long)h->srcProducer1,
                     (unsigned long long)h->waitStore);
    }
    if (cplEngineActiveForDump())
        std::fprintf(stderr, "  coupled engine active\n");
}

bool
Core::cplEngineActiveForDump() const
{
    return controller->coupledEngine().active();
}

void
Core::run(InstCount max_insts)
{
    // When a sweep worker installed an ExecContext, poll it every so
    // many cycles: publish the committed-instruction heartbeat, honor
    // cooperative cancellation (watchdog deadline / stall, SIGINT),
    // and give the fault injector its deterministic hook. Polling
    // reads simulator state but never writes it, so a watched run is
    // cycle-for-cycle identical to an unwatched one.
    ExecContext *exec = currentExecContext();
    Cycle nextPoll = coreStats.cycles + runPollCycles;

    const InstCount target = committed() + max_insts;
    InstCount lastCommitted = committed();
    Cycle lastProgress = coreStats.cycles;
    while (committed() < target) {
        tick();
        if (committed() != lastCommitted) {
            lastCommitted = committed();
            lastProgress = coreStats.cycles;
        } else if (coreStats.cycles - lastProgress > 100000) {
            debugDump();
            ELFSIM_PANIC("no forward progress for 100k cycles "
                         "(workload %s, variant %s)",
                         prog.name().c_str(),
                         variantName(cfg.variant));
        }
        if (exec && coreStats.cycles >= nextPoll) {
            nextPoll = coreStats.cycles + runPollCycles;
            exec->poll(coreStats.cycles, committed());
        }
    }
}

} // namespace elfsim
