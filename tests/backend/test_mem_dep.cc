#include <gtest/gtest.h>

#include "backend/mem_dep.hh"

using namespace elfsim;

TEST(MemDep, ColdMiss)
{
    MemDepPredictor mdp;
    EXPECT_EQ(mdp.storeFor(0x400100), invalidAddr);
}

TEST(MemDep, RecordsViolatingPair)
{
    MemDepPredictor mdp;
    mdp.train(0x400100, 0x400080);
    EXPECT_EQ(mdp.storeFor(0x400100), 0x400080u);
    EXPECT_EQ(mdp.trainings(), 1u);
}

TEST(MemDep, EntryAgesOutAfterUses)
{
    MemDepPredictor mdp(256, 4);
    mdp.train(0x400100, 0x400080);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(mdp.storeFor(0x400100), 0x400080u);
    // The 5th use expires the entry: a single violation must not
    // serialize a hot pair forever.
    EXPECT_EQ(mdp.storeFor(0x400100), invalidAddr);
    EXPECT_EQ(mdp.storeFor(0x400100), invalidAddr);
}

TEST(MemDep, RetrainingResetsAge)
{
    MemDepPredictor mdp(256, 4);
    mdp.train(0x400100, 0x400080);
    mdp.storeFor(0x400100);
    mdp.storeFor(0x400100);
    mdp.train(0x400100, 0x400080); // re-violation
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(mdp.storeFor(0x400100), 0x400080u);
    EXPECT_EQ(mdp.storeFor(0x400100), invalidAddr);
}

TEST(MemDep, DirectMappedConflict)
{
    MemDepPredictor mdp(16);
    const Addr a = 0x400000;
    const Addr b = a + 16 * instBytes; // same slot
    mdp.train(a, 0x111);
    mdp.train(b, 0x222);
    EXPECT_EQ(mdp.storeFor(a), invalidAddr);
    EXPECT_EQ(mdp.storeFor(b), 0x222u);
}

TEST(MemDep, ResetClears)
{
    MemDepPredictor mdp;
    mdp.train(0x400100, 0x400080);
    mdp.reset();
    EXPECT_EQ(mdp.storeFor(0x400100), invalidAddr);
}
