#include "sim/export.hh"

#include <istream>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>

#include "common/logging.hh"

namespace elfsim {

namespace {

/** forEachField visitor writing each ("name", value) as a JSON field. */
struct JsonFieldVisitor
{
    JsonWriter &w;

    void
    operator()(const char *name, const std::string &v) const
    {
        w.field(name, std::string_view(v));
    }
    void
    operator()(const char *name, double v) const
    {
        w.field(name, v);
    }
    void
    operator()(const char *name, std::uint64_t v) const
    {
        w.field(name, v);
    }
};

/** forEachField visitor appending each value as a CSV cell. */
struct CsvCellVisitor
{
    CsvWriter &w;

    void
    operator()(const char *, const std::string &v) const
    {
        w.cell(std::string_view(v));
    }
    void
    operator()(const char *, double v) const
    {
        w.cell(v);
    }
    void
    operator()(const char *, std::uint64_t v) const
    {
        w.cell(v);
    }
};

/**
 * @a with_host appends host metadata (machine CPU count and the
 * effective thread count the run actually used) — only the throughput
 * document asks for it: host facts there make MIPS figures comparable
 * across machines, but they would break the byte-identity guarantee
 * of the results document, whose timing block must stay a pure
 * function of the sweep.
 */
void
writeTiming(JsonWriter &w, const SweepTiming &t, bool with_host = false)
{
    w.beginObject();
    w.field("jobs", std::uint64_t(t.jobs));
    w.field("threads", std::uint64_t(t.threads));
    w.field("wall_seconds", t.wallSeconds);
    w.field("serial_seconds", t.serialSeconds);
    w.field("speedup", t.speedup());
    w.field("sim_cycles", t.simCycles);
    w.field("sim_insts", t.simInsts);
    w.field("sim_cycles_per_second", t.cyclesPerSecond());
    if (with_host) {
        w.field("host_cpus",
                std::uint64_t(std::thread::hardware_concurrency()));
        w.field("host_jobs", std::uint64_t(t.threads));
    }
    w.endObject();
}

void
writeTraceStats(JsonWriter &w, const TraceStats &t)
{
    w.beginObject();
    w.field("compiles", t.compiles);
    w.field("cache_hits", t.cacheHits);
    w.field("cache_misses", t.cacheMisses);
    w.field("bytes_mapped", t.bytesMapped);
    w.field("compile_seconds", t.compileSeconds);
    w.endObject();
}

} // namespace

void
writeRunResult(JsonWriter &w, const RunResult &r)
{
    w.beginObject();
    r.forEachField(JsonFieldVisitor{w});
    w.field("status", jobStatusName(r.status));
    w.field("interval_insts", r.intervalInsts);
    w.key("timeline");
    w.beginArray();
    for (const IntervalSample &s : r.timeline) {
        w.beginObject();
        s.forEachField(JsonFieldVisitor{w});
        w.endObject();
    }
    w.endArray();
    // The extrapolation block exists only for sampled runs, so full
    // runs keep the exact schema they have always had.
    if (r.sampled) {
        w.key("sampling");
        w.beginObject();
        r.sampling.forEachField(JsonFieldVisitor{w});
        w.endObject();
    }
    w.endObject();
}

namespace {

/** visitFields visitor assigning each named member from a parsed
 *  JSON object (the inverse of JsonFieldVisitor). */
struct JsonFieldLoader
{
    const json::Value &obj;

    void
    operator()(const char *name, std::string &v) const
    {
        v = obj.at(name).asString();
    }
    void
    operator()(const char *name, double &v) const
    {
        v = obj.at(name).asDouble();
    }
    void
    operator()(const char *name, std::uint64_t &v) const
    {
        v = obj.at(name).asU64();
    }
};

} // namespace

RunResult
runResultFromJson(const json::Value &obj)
{
    RunResult r;
    RunResult::visitFields(r, JsonFieldLoader{obj});
    if (!parseJobStatus(obj.at("status").asString(), r.status))
        throw ParseError(
            errorf("unknown job status '%s'",
                   obj.at("status").asString().c_str()));
    r.intervalInsts = obj.at("interval_insts").asU64();
    const json::Value &timeline = obj.at("timeline");
    r.timeline.resize(timeline.size());
    for (std::size_t i = 0; i < timeline.size(); ++i)
        IntervalSample::visitFields(r.timeline[i],
                                    JsonFieldLoader{timeline[i]});
    if (const json::Value *sampling = obj.find("sampling")) {
        r.sampled = true;
        SamplingInfo::visitFields(r.sampling,
                                  JsonFieldLoader{*sampling});
    }
    return r;
}

void
writeSweepJson(std::ostream &os, const std::vector<RunResult> &results,
               const SweepTiming *timing, const TraceStats *trace)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "elfsim-results-v2");
    if (timing) {
        w.key("timing");
        writeTiming(w, *timing);
    }
    if (trace) {
        w.key("trace");
        writeTraceStats(w, *trace);
    }
    w.key("results");
    w.beginArray();
    for (const RunResult &r : results)
        writeRunResult(w, r);
    w.endArray();
    w.endObject();
}

ResultsStreamWriter::ResultsStreamWriter(std::ostream &os) : w(os)
{
    w.beginObject();
    w.field("schema", "elfsim-results-v2");
    w.key("results");
    w.beginArray();
}

void
ResultsStreamWriter::add(const RunResult &r)
{
    ELFSIM_ASSERT(!done, "add() on a finished results stream");
    writeRunResult(w, r);
}

void
ResultsStreamWriter::finish()
{
    if (done)
        return;
    done = true;
    w.endArray();
    w.endObject();
}

void
writeResultsJson(std::ostream &os, const std::vector<RunResult> &results)
{
    ResultsStreamWriter s(os);
    for (const RunResult &r : results)
        s.add(r);
    s.finish();
}

void
writeResultsCsv(std::ostream &os, const std::vector<RunResult> &results)
{
    CsvWriter w(os);
    RunResult{}.forEachField(
        [&w](const char *name, const auto &) { w.cell(name); });
    w.cell("status").cell("interval_insts").cell("timeline_samples");
    w.endRow();
    for (const RunResult &r : results) {
        r.forEachField(CsvCellVisitor{w});
        w.cell(jobStatusName(r.status))
            .cell(r.intervalInsts)
            .cell(std::uint64_t(r.timeline.size()));
        w.endRow();
    }
}

void
writeThroughputJson(std::ostream &os,
                    const std::vector<RunResult> &results,
                    const std::vector<double> &job_seconds,
                    const SweepTiming &timing)
{
    ELFSIM_ASSERT(results.size() == job_seconds.size(),
                  "throughput export needs one wall-clock per result");
    // Sampled rows report *effective* throughput: the whole stream the
    // run covered (fast-forward + detailed windows) per host second,
    // and the extrapolated cycle total — that is the quantity sampling
    // buys, and the one the >=50x gate in scripts/perf_smoke.sh reads.
    const auto effInsts = [](const RunResult &r) {
        return r.sampled ? r.sampling.totalInsts : r.insts;
    };
    const auto effCycles = [](const RunResult &r) {
        return r.sampled ? r.sampling.estTotalCycles : r.cycles;
    };
    std::vector<double> mips, okMips;
    mips.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        const double s = job_seconds[i];
        mips.push_back(s > 0 ? double(effInsts(results[i])) / s / 1e6
                             : 0);
        // Failed or resumed cells carry no wall-clock; keep their
        // zeros out of the geomean (which requires positives).
        if (results[i].ok() && mips.back() > 0)
            okMips.push_back(mips.back());
    }

    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "elfsim-throughput-v1");
    w.key("timing");
    writeTiming(w, timing, /*with_host=*/true);
    w.field("geomean_mips", geomean(okMips));
    w.key("throughput");
    w.beginArray();
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        const double s = job_seconds[i];
        w.beginObject();
        w.field("workload", std::string_view(r.workload));
        w.field("variant", std::string_view(r.variant));
        w.field("wall_seconds", s);
        w.field("sim_insts", std::uint64_t(effInsts(r)));
        w.field("sim_cycles", std::uint64_t(effCycles(r)));
        w.field("mips", mips[i]);
        w.field("cycles_per_host_us",
                s > 0 ? double(effCycles(r)) / s / 1e6 : 0);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeManifestLine(std::ostream &os, const ManifestEntry &e)
{
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("manifest", "elfsim-manifest-v1");
    w.field("index", std::uint64_t(e.index));
    w.field("key", std::string_view(e.key));
    w.field("status", jobStatusName(e.result.status));
    w.key("result");
    writeRunResult(w, e.result);
    w.endObject();
    os << '\n';
}

std::vector<ManifestEntry>
readManifest(std::istream &is)
{
    std::vector<ManifestEntry> entries;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        ManifestEntry e;
        try {
            const json::Value doc = json::parse(line);
            if (doc.at("manifest").asString() != "elfsim-manifest-v1")
                throw ParseError("unknown manifest schema");
            e.index = std::size_t(doc.at("index").asU64());
            e.key = doc.at("key").asString();
            e.result = runResultFromJson(doc.at("result"));
        } catch (const SimError &err) {
            // A crash mid-append leaves a truncated last line; the
            // cell it journaled simply re-runs.
            ELFSIM_WARN("manifest line %zu skipped: %s", lineno,
                        err.what());
            continue;
        }
        // Last occurrence of an index wins (resumed sweeps append).
        bool replaced = false;
        for (ManifestEntry &prev : entries) {
            if (prev.index == e.index) {
                prev = std::move(e);
                replaced = true;
                break;
            }
        }
        if (!replaced)
            entries.push_back(std::move(e));
    }
    return entries;
}

void
writeTimelineCsv(std::ostream &os, const std::vector<RunResult> &results)
{
    CsvWriter w(os);
    w.cell("workload").cell("variant");
    IntervalSample{}.forEachField(
        [&w](const char *name, const auto &) { w.cell(name); });
    w.endRow();
    for (const RunResult &r : results) {
        for (const IntervalSample &s : r.timeline) {
            w.cell(std::string_view(r.workload))
                .cell(std::string_view(r.variant));
            s.forEachField(CsvCellVisitor{w});
            w.endRow();
        }
    }
}

} // namespace elfsim
