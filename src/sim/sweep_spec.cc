#include "sim/sweep_spec.hh"

#include <fstream>
#include <sstream>
#include <type_traits>
#include <utility>

#include "common/error.hh"
#include "common/export.hh"
#include "workload/catalog.hh"

namespace elfsim {

namespace {

constexpr const char *kSchema = "elfsim-sweepspec-v1";

// --- enum names -------------------------------------------------------

const FrontendVariant kVariants[] = {
    FrontendVariant::NoDcf,  FrontendVariant::Dcf,
    FrontendVariant::LElf,   FrontendVariant::RetElf,
    FrontendVariant::IndElf, FrontendVariant::CondElf,
    FrontendVariant::UElf,
};

const char *
payloadPolicyName(PayloadPolicy p)
{
    switch (p) {
      case PayloadPolicy::FaqFill: return "faq_fill";
      case PayloadPolicy::RobHead: return "rob_head";
      case PayloadPolicy::Ideal: return "ideal";
    }
    return "?";
}

bool
parsePayloadPolicy(std::string_view name, PayloadPolicy &out)
{
    for (PayloadPolicy p : {PayloadPolicy::FaqFill,
                            PayloadPolicy::RobHead,
                            PayloadPolicy::Ideal}) {
        if (name == payloadPolicyName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

const char *
condKindName(CoupledCondKind k)
{
    switch (k) {
      case CoupledCondKind::Bimodal: return "bimodal";
      case CoupledCondKind::Gshare: return "gshare";
    }
    return "?";
}

bool
parseCondKind(std::string_view name, CoupledCondKind &out)
{
    for (CoupledCondKind k :
         {CoupledCondKind::Bimodal, CoupledCondKind::Gshare}) {
        if (name == condKindName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

// --- CfgParams field enumeration -------------------------------------

/**
 * Visit every generator knob as ("name", member) — the single source
 * of truth for the synthetic selector's "params" object. @a v must
 * accept (const char *, unsigned &), (const char *, double &) and
 * (const char *, std::uint64_t &).
 */
template <typename Self, typename V>
void
visitCfgParams(Self &self, V &&v)
{
    v("num_funcs", self.numFuncs);
    v("blocks_per_func", self.blocksPerFunc);
    v("insts_per_block_min", self.instsPerBlockMin);
    v("insts_per_block_max", self.instsPerBlockMax);
    v("frac_loop_branches", self.fracLoopBranches);
    v("frac_pattern_branches", self.fracPatternBranches);
    v("random_taken_prob", self.randomTakenProb);
    v("loop_period_min", self.loopPeriodMin);
    v("loop_period_max", self.loopPeriodMax);
    v("pattern_len_min", self.patternLenMin);
    v("pattern_len_max", self.patternLenMax);
    v("pattern_bias", self.patternBias);
    v("back_edge_prob", self.backEdgeProb);
    v("call_block_prob", self.callBlockProb);
    v("indirect_call_frac", self.indirectCallFrac);
    v("indirect_fanout", self.indirectFanout);
    v("call_skew", self.callSkew);
    v("recursion_frac", self.recursionFrac);
    v("recursion_depth_period", self.recursionDepthPeriod);
    v("load_frac", self.loadFrac);
    v("store_frac", self.storeFrac);
    v("data_footprint", self.dataFootprint);
    v("chase_frac", self.chaseFrac);
    v("stream_frac", self.streamFrac);
    v("fp_frac", self.fpFrac);
    v("mul_frac", self.mulFrac);
    v("div_frac", self.divFrac);
    v("dep_chain_frac", self.depChainFrac);
}

// --- typed-value helpers ----------------------------------------------

std::uint64_t
wantU64(const std::string &key, const SpecValue &v)
{
    if (v.kind != SpecValue::Kind::U64)
        throw ConfigError(errorf(
            "knob '%s' expects a non-negative integer", key.c_str()));
    return v.u;
}

unsigned
wantUnsigned(const std::string &key, const SpecValue &v)
{
    const std::uint64_t x = wantU64(key, v);
    if (x > 0xffffffffull)
        throw ConfigError(
            errorf("knob '%s' value out of range", key.c_str()));
    return static_cast<unsigned>(x);
}

bool
wantFlag(const std::string &key, const SpecValue &v)
{
    if (v.kind != SpecValue::Kind::Flag)
        throw ConfigError(
            errorf("knob '%s' expects true/false", key.c_str()));
    return v.b;
}

const std::string &
wantText(const std::string &key, const SpecValue &v)
{
    if (v.kind != SpecValue::Kind::Text)
        throw ConfigError(
            errorf("knob '%s' expects a string", key.c_str()));
    return v.s;
}

} // namespace

bool
parseVariantName(std::string_view name, FrontendVariant &out)
{
    for (FrontendVariant v : kVariants) {
        if (name == variantName(v)) {
            out = v;
            return true;
        }
    }
    return false;
}

void
applySimKnob(SimConfig &cfg, const std::string &key, const SpecValue &v)
{
    // Pipeline / decoupling geometry.
    if (key == "bp1_to_fe")
        cfg.bp1ToFe = wantU64(key, v);
    else if (key == "faq_entries")
        cfg.faqEntries = wantUnsigned(key, v);
    else if (key == "checkpoint_entries")
        cfg.checkpointEntries = wantUnsigned(key, v);
    else if (key == "fetch_buffer_entries")
        cfg.fetchBufferEntries = wantUnsigned(key, v);
    else if (key == "max_inst_prefetch")
        cfg.maxInstPrefetch = wantUnsigned(key, v);
    else if (key == "fetch.width")
        cfg.fetch.width = wantUnsigned(key, v);
    else if (key == "fetch.fetch_to_decode")
        cfg.fetch.fetchToDecode = wantU64(key, v);
    // BTB hierarchy geometry.
    else if (key == "btb.l0.entries")
        cfg.btb.l0.entries = wantUnsigned(key, v);
    else if (key == "btb.l0.assoc")
        cfg.btb.l0.assoc = wantUnsigned(key, v);
    else if (key == "btb.l0.latency")
        cfg.btb.l0.latency = wantU64(key, v);
    else if (key == "btb.l1.entries")
        cfg.btb.l1.entries = wantUnsigned(key, v);
    else if (key == "btb.l1.assoc")
        cfg.btb.l1.assoc = wantUnsigned(key, v);
    else if (key == "btb.l1.latency")
        cfg.btb.l1.latency = wantU64(key, v);
    else if (key == "btb.l2.entries")
        cfg.btb.l2.entries = wantUnsigned(key, v);
    else if (key == "btb.l2.assoc")
        cfg.btb.l2.assoc = wantUnsigned(key, v);
    else if (key == "btb.l2.latency")
        cfg.btb.l2.latency = wantU64(key, v);
    // ELF machinery.
    else if (key == "divergence.vec_entries")
        cfg.divergence.vecEntries = wantUnsigned(key, v);
    else if (key == "divergence.target_entries")
        cfg.divergence.targetEntries = wantUnsigned(key, v);
    else if (key == "coupled.bimodal_entries")
        cfg.coupledPreds.bimodal.entries = wantUnsigned(key, v);
    else if (key == "coupled.bimodal_counter_bits")
        cfg.coupledPreds.bimodal.counterBits = wantUnsigned(key, v);
    else if (key == "coupled.ras_entries")
        cfg.coupledPreds.rasEntries = wantUnsigned(key, v);
    else if (key == "coupled.cond_kind") {
        if (!parseCondKind(wantText(key, v),
                           cfg.coupledPreds.condKind))
            throw ConfigError(errorf(
                "knob '%s': unknown predictor kind '%s' "
                "(bimodal, gshare)",
                key.c_str(), v.s.c_str()));
    } else if (key == "payload_policy") {
        if (!parsePayloadPolicy(wantText(key, v), cfg.payloadPolicy))
            throw ConfigError(errorf(
                "knob '%s': unknown policy '%s' "
                "(faq_fill, rob_head, ideal)",
                key.c_str(), v.s.c_str()));
    } else if (key == "cond_elf_require_saturation")
        cfg.condElfRequireSaturation = wantFlag(key, v);
    else if (key == "decode_btb_fill")
        cfg.decodeBtbFill = wantFlag(key, v);
    else if (key == "rng_seed")
        cfg.rngSeed = wantU64(key, v);
    else
        throw ConfigError(
            errorf("unknown SimConfig knob '%s'", key.c_str()));
}

SimConfig
makeSpecConfig(const ConfigSpec &c)
{
    SimConfig cfg = makeConfig(c.variant);
    for (const auto &[key, value] : c.overrides)
        applySimKnob(cfg, key, value);
    return cfg;
}

namespace {

/** Mirror of bench_util's sampling-contradiction checks, phrased for
 *  spec fields and thrown instead of exiting. */
void
checkRunOptions(const RunOptions &o, const char *where)
{
    const auto bad = [&](const char *msg) {
        throw ConfigError(errorf("%s: %s", where, msg));
    };
    if (o.samplePeriodInsts == 0) {
        if (o.sampleLengthInsts > 0 || o.sampleWarmupInsts > 0)
            bad("sample_length_insts/sample_warmup_insts need "
                "sample_period_insts");
        return;
    }
    if (o.sampleLengthInsts == 0)
        bad("sample_period_insts needs sample_length_insts > 0 "
            "(the measured window)");
    if (o.sampleLengthInsts > o.samplePeriodInsts)
        bad("sample_length_insts exceeds sample_period_insts: the "
            "measured window must fit in the period");
    if (o.sampleWarmupInsts >= o.samplePeriodInsts)
        bad("sample_warmup_insts must be smaller than "
            "sample_period_insts");
    if (o.sampleWarmupInsts + o.sampleLengthInsts >
        o.samplePeriodInsts)
        bad("sample_warmup_insts + sample_length_insts exceed "
            "sample_period_insts: the detailed window must fit in "
            "the period");
    if (o.intervalInsts > 0)
        bad("interval_insts and sample_period_insts are mutually "
            "exclusive (a sampled run's timeline is its measured "
            "windows)");
}

/** Resolve a selector to the programs it names (build order is the
 *  catalog/declaration order, matching the legacy bench loops). */
std::vector<Program>
buildSelector(const WorkloadSelector &s)
{
    std::vector<Program> out;
    switch (s.kind) {
      case WorkloadSelector::Kind::Name: {
        const WorkloadSpec *w = findWorkload(s.name);
        if (!w)
            throw ConfigError(errorf("unknown workload '%s'",
                                     s.name.c_str()));
        out.push_back(buildWorkload(*w));
        break;
      }
      case WorkloadSelector::Kind::Set: {
        const unsigned stride = s.stride ? s.stride : 1;
        if (s.name == "catalog") {
            unsigned i = 0;
            for (const WorkloadSpec &w : workloadCatalog())
                if (i++ % stride == 0)
                    out.push_back(buildWorkload(w));
        } else if (s.name == "elf_relevant") {
            unsigned i = 0;
            for (const std::string &n : elfRelevantWorkloads())
                if (i++ % stride == 0)
                    out.push_back(buildWorkload(*findWorkload(n)));
        } else {
            throw ConfigError(errorf(
                "unknown workload set '%s' (catalog, elf_relevant)",
                s.name.c_str()));
        }
        break;
      }
      case WorkloadSelector::Kind::Suite: {
        const std::vector<std::string> names = suiteWorkloads(s.name);
        if (names.empty())
            throw ConfigError(
                errorf("unknown suite '%s'", s.name.c_str()));
        for (const std::string &n : names)
            out.push_back(buildWorkload(*findWorkload(n)));
        break;
      }
      case WorkloadSelector::Kind::Micro: {
        const auto args2 = [&](const char *what) {
            if (s.args.size() != 2)
                throw ConfigError(errorf(
                    "micro generator '%s' expects 2 args (%s)",
                    s.name.c_str(), what));
        };
        const auto u = [&](std::size_t i) {
            return static_cast<unsigned>(s.args[i]);
        };
        if (s.name == "random_branch_loop") {
            args2("block_len, taken_prob");
            out.push_back(microRandomBranchLoop(u(0), s.args[1]));
        } else if (s.name == "taken_chain") {
            args2("n_blocks, block_len");
            out.push_back(microTakenChain(u(0), u(1)));
        } else if (s.name == "sequential_loop") {
            args2("body_insts, period");
            out.push_back(microSequentialLoop(u(0), u(1)));
        } else if (s.name == "recursion") {
            args2("depth, leaf_len");
            out.push_back(microRecursion(u(0), u(1)));
        } else if (s.name == "btb_miss_chain") {
            args2("n_blocks, block_len");
            out.push_back(microBtbMissChain(u(0), u(1)));
        } else {
            throw ConfigError(errorf(
                "unknown micro generator '%s'", s.name.c_str()));
        }
        break;
      }
      case WorkloadSelector::Kind::Synthetic:
        out.push_back(generateCfg(s.params, s.seed, s.name));
        break;
    }
    return out;
}

/** Selector-only validation: everything buildSelector would reject,
 *  minus the cost of building the programs. */
void
checkSelector(const WorkloadSelector &s)
{
    switch (s.kind) {
      case WorkloadSelector::Kind::Name:
        if (!findWorkload(s.name))
            throw ConfigError(errorf("unknown workload '%s'",
                                     s.name.c_str()));
        break;
      case WorkloadSelector::Kind::Set:
        if (s.name != "catalog" && s.name != "elf_relevant")
            throw ConfigError(errorf(
                "unknown workload set '%s' (catalog, elf_relevant)",
                s.name.c_str()));
        break;
      case WorkloadSelector::Kind::Suite:
        if (suiteWorkloads(s.name).empty())
            throw ConfigError(
                errorf("unknown suite '%s'", s.name.c_str()));
        break;
      case WorkloadSelector::Kind::Micro: {
        const bool known = s.name == "random_branch_loop" ||
                           s.name == "taken_chain" ||
                           s.name == "sequential_loop" ||
                           s.name == "recursion" ||
                           s.name == "btb_miss_chain";
        if (!known)
            throw ConfigError(errorf(
                "unknown micro generator '%s'", s.name.c_str()));
        if (s.args.size() != 2)
            throw ConfigError(errorf(
                "micro generator '%s' expects 2 args",
                s.name.c_str()));
        break;
      }
      case WorkloadSelector::Kind::Synthetic:
        if (s.name.empty())
            throw ConfigError(
                "synthetic workload needs a non-empty name");
        break;
    }
}

} // namespace

void
validateSweepSpec(const SweepSpec &spec)
{
    if (spec.groups.empty())
        throw ConfigError("spec has no groups (nothing to sweep)");
    checkRunOptions(spec.run, "run");
    for (std::size_t gi = 0; gi < spec.groups.size(); ++gi) {
        const SweepGroup &g = spec.groups[gi];
        const std::string where =
            "groups[" + std::to_string(gi) + "]";
        if (g.workloads.empty())
            throw ConfigError(
                errorf("%s has no workloads", where.c_str()));
        if (g.configs.empty())
            throw ConfigError(
                errorf("%s has no configs", where.c_str()));
        if (g.hasRun)
            checkRunOptions(g.run, (where + ".run").c_str());
        for (const WorkloadSelector &s : g.workloads)
            checkSelector(s);
        // Config rows fail fast too: build each one once so an
        // unknown knob is rejected before any simulation starts.
        for (const ConfigSpec &c : g.configs)
            (void)makeSpecConfig(c);
    }
}

ExpandedSweep
expandSweep(const SweepSpec &spec)
{
    validateSweepSpec(spec);
    ExpandedSweep ex;
    for (const SweepGroup &g : spec.groups) {
        const RunOptions &opts = g.hasRun ? g.run : spec.run;
        // Workload-major, config-minor: the nested loop every legacy
        // bench ran, so submission indices are unchanged.
        for (const WorkloadSelector &s : g.workloads) {
            for (Program &p : buildSelector(s)) {
                ex.programs.push_back(std::move(p));
                const Program &prog = ex.programs.back();
                for (const ConfigSpec &c : g.configs) {
                    SweepJob j;
                    j.program = &prog;
                    j.cfg = makeSpecConfig(c);
                    j.opts = opts;
                    ex.jobs.push_back(std::move(j));
                    ex.labels.push_back(c.label);
                }
            }
        }
    }
    return ex;
}

// --- JSON parse -------------------------------------------------------

namespace {

std::uint64_t
numberU64(const json::Value &v, const std::string &key)
{
    try {
        return v.asU64();
    } catch (const ParseError &) {
        throw ParseError(errorf(
            "spec field '%s' must be a non-negative integer",
            key.c_str()));
    }
}

/** Reject any member not consumed by the dispatcher: a typo'd field
 *  must never be silently ignored. */
template <typename Fn>
void
forEachMember(const json::Value &obj, const char *what, Fn &&fn)
{
    for (const auto &[key, value] : obj.members()) {
        if (!fn(key, value))
            throw ParseError(errorf("unknown %s field '%s'", what,
                                    key.c_str()));
    }
}

RunOptions
parseRunOptions(const json::Value &v)
{
    RunOptions o;
    forEachMember(v, "run", [&](const std::string &k,
                                const json::Value &val) {
        if (k == "warmup_insts")
            o.warmupInsts = numberU64(val, k);
        else if (k == "measure_insts")
            o.measureInsts = numberU64(val, k);
        else if (k == "interval_insts")
            o.intervalInsts = numberU64(val, k);
        else if (k == "sample_period_insts")
            o.samplePeriodInsts = numberU64(val, k);
        else if (k == "sample_length_insts")
            o.sampleLengthInsts = numberU64(val, k);
        else if (k == "sample_warmup_insts")
            o.sampleWarmupInsts = numberU64(val, k);
        else
            return false;
        return true;
    });
    return o;
}

SweepPolicy
parsePolicy(const json::Value &v)
{
    SweepPolicy p;
    forEachMember(v, "policy", [&](const std::string &k,
                                   const json::Value &val) {
        if (k == "keep_going")
            p.keepGoing = val.asBool();
        else if (k == "deadline_seconds")
            p.deadlineSeconds = val.asDouble();
        else if (k == "stall_seconds")
            p.stallSeconds = val.asDouble();
        else if (k == "max_retries")
            p.maxRetries =
                static_cast<unsigned>(numberU64(val, k));
        else if (k == "manifest_path")
            p.manifestPath = val.asString();
        else if (k == "resume")
            p.resume = val.asBool();
        else
            return false;
        return true;
    });
    return p;
}

CfgParams
parseCfgParams(const json::Value &v)
{
    CfgParams p;
    forEachMember(v, "params", [&](const std::string &k,
                                   const json::Value &val) {
        bool matched = false;
        visitCfgParams(p, [&](const char *name, auto &member) {
            if (matched || k != name)
                return;
            matched = true;
            using T = std::decay_t<decltype(member)>;
            if constexpr (std::is_floating_point_v<T>)
                member = val.asDouble();
            else if constexpr (std::is_same_v<T, std::uint64_t>)
                member = numberU64(val, k);
            else
                member = static_cast<T>(numberU64(val, k));
        });
        return matched;
    });
    return p;
}

WorkloadSelector
parseSelector(const json::Value &v)
{
    WorkloadSelector s;
    bool kindSeen = false;
    const auto setKind = [&](WorkloadSelector::Kind k,
                             const std::string &name) {
        if (kindSeen)
            throw ParseError(
                "workload selector names more than one of "
                "name/set/suite/micro/synthetic");
        kindSeen = true;
        s.kind = k;
        s.name = name;
    };
    bool strideSeen = false, argsSeen = false;
    bool seedSeen = false, paramsSeen = false;
    forEachMember(v, "workload selector",
                  [&](const std::string &k, const json::Value &val) {
        if (k == "name")
            setKind(WorkloadSelector::Kind::Name, val.asString());
        else if (k == "set")
            setKind(WorkloadSelector::Kind::Set, val.asString());
        else if (k == "suite")
            setKind(WorkloadSelector::Kind::Suite, val.asString());
        else if (k == "micro")
            setKind(WorkloadSelector::Kind::Micro, val.asString());
        else if (k == "synthetic")
            setKind(WorkloadSelector::Kind::Synthetic,
                    val.asString());
        else if (k == "stride") {
            s.stride = static_cast<unsigned>(numberU64(val, k));
            strideSeen = true;
        } else if (k == "args") {
            for (std::size_t i = 0; i < val.size(); ++i)
                s.args.push_back(val[i].asDouble());
            argsSeen = true;
        } else if (k == "seed") {
            s.seed = numberU64(val, k);
            seedSeen = true;
        } else if (k == "params") {
            s.params = parseCfgParams(val);
            paramsSeen = true;
        } else
            return false;
        return true;
    });
    if (!kindSeen)
        throw ParseError("workload selector needs one of "
                         "name/set/suite/micro/synthetic");
    // Auxiliary fields are per-kind; a stray one on the wrong kind is
    // a spec mistake the no-silent-ignore contract must surface
    // (e.g. "stride" on a "suite" selector would otherwise quietly
    // select the full suite). Checked after the loop because JSON
    // member order may put them before the kind key.
    const auto rejectForeign = [&](bool seen, const char *field,
                                   WorkloadSelector::Kind only,
                                   const char *kindName) {
        if (seen && s.kind != only)
            throw ParseError(errorf(
                "workload selector field \"%s\" only applies to "
                "\"%s\" selectors", field, kindName));
    };
    rejectForeign(strideSeen, "stride", WorkloadSelector::Kind::Set,
                  "set");
    rejectForeign(argsSeen, "args", WorkloadSelector::Kind::Micro,
                  "micro");
    rejectForeign(seedSeen, "seed",
                  WorkloadSelector::Kind::Synthetic, "synthetic");
    rejectForeign(paramsSeen, "params",
                  WorkloadSelector::Kind::Synthetic, "synthetic");
    if (s.stride == 0)
        s.stride = 1;
    return s;
}

SpecValue
parseSpecValue(const std::string &key, const json::Value &v)
{
    switch (v.kind()) {
      case json::Value::Kind::Bool:
        return SpecValue::ofFlag(v.asBool());
      case json::Value::Kind::String:
        return SpecValue::ofText(v.asString());
      case json::Value::Kind::Number:
        try {
            return SpecValue::ofU64(v.asU64());
        } catch (const ParseError &) {
            return SpecValue::ofReal(v.asDouble());
        }
      default:
        throw ParseError(errorf(
            "override '%s' must be a number, boolean or string",
            key.c_str()));
    }
}

ConfigSpec
parseConfig(const json::Value &v)
{
    ConfigSpec c;
    bool variantSeen = false;
    forEachMember(v, "config", [&](const std::string &k,
                                   const json::Value &val) {
        if (k == "variant") {
            if (!parseVariantName(val.asString(), c.variant))
                throw ParseError(errorf(
                    "unknown variant '%s'",
                    val.asString().c_str()));
            variantSeen = true;
        } else if (k == "label")
            c.label = val.asString();
        else if (k == "overrides") {
            for (const auto &[key, ov] : val.members())
                c.overrides.emplace_back(key,
                                         parseSpecValue(key, ov));
        } else
            return false;
        return true;
    });
    if (!variantSeen)
        throw ParseError("config row needs a \"variant\"");
    return c;
}

SweepGroup
parseGroup(const json::Value &v)
{
    SweepGroup g;
    forEachMember(v, "group", [&](const std::string &k,
                                  const json::Value &val) {
        if (k == "workloads") {
            for (std::size_t i = 0; i < val.size(); ++i)
                g.workloads.push_back(parseSelector(val[i]));
        } else if (k == "configs") {
            for (std::size_t i = 0; i < val.size(); ++i)
                g.configs.push_back(parseConfig(val[i]));
        } else if (k == "run") {
            g.hasRun = true;
            g.run = parseRunOptions(val);
        } else
            return false;
        return true;
    });
    return g;
}

} // namespace

SweepSpec
parseSweepSpec(const json::Value &doc)
{
    SweepSpec spec;
    bool schemaSeen = false;
    // Top-level "workloads"/"configs" are accepted as an implicit
    // single group (hand-written request convenience); the canonical
    // writer always emits "groups".
    SweepGroup shorthand;
    bool shorthandUsed = false;
    bool groupsUsed = false;
    forEachMember(doc, "spec", [&](const std::string &k,
                                   const json::Value &val) {
        if (k == "schema") {
            if (val.asString() != kSchema)
                throw ParseError(errorf(
                    "expected schema \"%s\", got \"%s\"", kSchema,
                    val.asString().c_str()));
            schemaSeen = true;
        } else if (k == "name")
            spec.name = val.asString();
        else if (k == "jobs")
            spec.jobs = static_cast<unsigned>(numberU64(val, k));
        else if (k == "base_seed")
            spec.baseSeed = numberU64(val, k);
        else if (k == "run")
            spec.run = parseRunOptions(val);
        else if (k == "policy")
            spec.policy = parsePolicy(val);
        else if (k == "groups") {
            groupsUsed = true;
            for (std::size_t i = 0; i < val.size(); ++i)
                spec.groups.push_back(parseGroup(val[i]));
        } else if (k == "workloads") {
            shorthandUsed = true;
            for (std::size_t i = 0; i < val.size(); ++i)
                shorthand.workloads.push_back(parseSelector(val[i]));
        } else if (k == "configs") {
            shorthandUsed = true;
            for (std::size_t i = 0; i < val.size(); ++i)
                shorthand.configs.push_back(parseConfig(val[i]));
        } else
            return false;
        return true;
    });
    if (!schemaSeen)
        throw ParseError(
            errorf("spec is missing \"schema\": \"%s\"", kSchema));
    if (shorthandUsed) {
        if (groupsUsed)
            throw ParseError("spec mixes top-level workloads/configs "
                             "with explicit groups");
        spec.groups.push_back(std::move(shorthand));
    }
    return spec;
}

SweepSpec
parseSweepSpec(std::string_view text)
{
    return parseSweepSpec(json::parse(text));
}

SweepSpec
loadSweepSpec(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw IoError(
            errorf("cannot read spec '%s'", path.c_str()));
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseSweepSpec(std::string_view(ss.str()));
}

// --- JSON write -------------------------------------------------------

namespace {

void
writeRunOptions(JsonWriter &w, const RunOptions &o)
{
    w.beginObject();
    w.field("warmup_insts", std::uint64_t(o.warmupInsts));
    w.field("measure_insts", std::uint64_t(o.measureInsts));
    w.field("interval_insts", std::uint64_t(o.intervalInsts));
    w.field("sample_period_insts",
            std::uint64_t(o.samplePeriodInsts));
    w.field("sample_length_insts",
            std::uint64_t(o.sampleLengthInsts));
    w.field("sample_warmup_insts",
            std::uint64_t(o.sampleWarmupInsts));
    w.endObject();
}

void
writePolicy(JsonWriter &w, const SweepPolicy &p)
{
    w.beginObject();
    w.field("keep_going", p.keepGoing);
    w.field("deadline_seconds", p.deadlineSeconds);
    w.field("stall_seconds", p.stallSeconds);
    w.field("max_retries", std::uint64_t(p.maxRetries));
    w.field("manifest_path", std::string_view(p.manifestPath));
    w.field("resume", p.resume);
    w.endObject();
}

void
writeSelector(JsonWriter &w, const WorkloadSelector &s)
{
    w.beginObject();
    switch (s.kind) {
      case WorkloadSelector::Kind::Name:
        w.field("name", std::string_view(s.name));
        break;
      case WorkloadSelector::Kind::Set:
        w.field("set", std::string_view(s.name));
        w.field("stride", std::uint64_t(s.stride));
        break;
      case WorkloadSelector::Kind::Suite:
        w.field("suite", std::string_view(s.name));
        break;
      case WorkloadSelector::Kind::Micro:
        w.field("micro", std::string_view(s.name));
        w.key("args");
        w.beginArray();
        for (double a : s.args)
            w.value(a);
        w.endArray();
        break;
      case WorkloadSelector::Kind::Synthetic: {
        w.field("synthetic", std::string_view(s.name));
        w.field("seed", s.seed);
        w.key("params");
        w.beginObject();
        visitCfgParams(s.params, [&w](const char *name,
                                      const auto &member) {
            using T = std::decay_t<decltype(member)>;
            if constexpr (std::is_floating_point_v<T>)
                w.field(name, double(member));
            else
                w.field(name, std::uint64_t(member));
        });
        w.endObject();
        break;
      }
    }
    w.endObject();
}

void
writeConfig(JsonWriter &w, const ConfigSpec &c)
{
    w.beginObject();
    w.field("variant", variantName(c.variant));
    if (!c.label.empty())
        w.field("label", std::string_view(c.label));
    if (!c.overrides.empty()) {
        w.key("overrides");
        w.beginObject();
        for (const auto &[key, v] : c.overrides) {
            w.key(key);
            switch (v.kind) {
              case SpecValue::Kind::U64:
                w.value(v.u);
                break;
              case SpecValue::Kind::Real:
                w.value(v.d);
                break;
              case SpecValue::Kind::Flag:
                w.value(v.b);
                break;
              case SpecValue::Kind::Text:
                w.value(std::string_view(v.s));
                break;
            }
        }
        w.endObject();
    }
    w.endObject();
}

} // namespace

void
writeSweepSpec(std::ostream &os, const SweepSpec &spec)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", kSchema);
    w.field("name", std::string_view(spec.name));
    w.field("jobs", std::uint64_t(spec.jobs));
    w.field("base_seed", spec.baseSeed);
    w.key("run");
    writeRunOptions(w, spec.run);
    w.key("policy");
    writePolicy(w, spec.policy);
    w.key("groups");
    w.beginArray();
    for (const SweepGroup &g : spec.groups) {
        w.beginObject();
        w.key("workloads");
        w.beginArray();
        for (const WorkloadSelector &s : g.workloads)
            writeSelector(w, s);
        w.endArray();
        w.key("configs");
        w.beginArray();
        for (const ConfigSpec &c : g.configs)
            writeConfig(w, c);
        w.endArray();
        if (g.hasRun) {
            w.key("run");
            writeRunOptions(w, g.run);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
saveSweepSpec(const std::string &path, const SweepSpec &spec)
{
    std::ofstream os(path);
    if (!os)
        throw IoError(
            errorf("cannot open '%s' for writing", path.c_str()));
    writeSweepSpec(os, spec);
    os << '\n';
    if (!os)
        throw IoError(errorf("error writing '%s'", path.c_str()));
}

} // namespace elfsim
