/**
 * @file
 * Ablation study of ELF's design choices (DESIGN.md's per-experiment
 * index calls these out; the paper discusses each):
 *
 *  1. Checkpoint payload policy (Section IV-D1): populate payloads
 *     from FAQ information (proposed) vs. wait for the ROB head
 *     (simple) vs. idealized free checkpoints.
 *  2. The COND-ELF saturation filter (Section VI-B): speculate only
 *     past saturated bimodal counters, or always.
 *  3. Coupled bimodal size (the paper limits it to 2K x 3-bit).
 *  4. Divergence-tracking capacity (64-entry bitvectors / 16-entry
 *     target queues in Table II).
 *  5. FAQ depth (32 in Table II).
 *
 * The rows live in bench_specs.hh::ablationElfSpec as ConfigSpec
 * overrides.
 */

#include <vector>

#include "bench_specs.hh"
#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("Ablations — ELF design choices",
                  "U-ELF IPC relative to the default U-ELF "
                  "configuration, on the high-MPKI MCTS proxy");

    const SweepSpec spec = bench::finalizeSpec(
        bench::ablationElfSpec(opt.runOptions()), opt, argv[0]);
    const ExpandedSweep ex = expandSweep(spec);

    SweepRunner runner(bench::specJobs(opt, spec));
    bench::armRunner(runner, spec);
    const std::vector<RunResult> res = runner.run(ex.jobs);

    if (!opt.specPath.empty()) {
        bench::printResultsTable(res, ex.labels);
    } else {
        const double baseIpc = res[0].ipc;
        std::printf("%-44s %10s\n", "configuration", "rel. IPC");
        for (std::size_t i = 0; i < res.size(); ++i)
            std::printf("%-44s %10.3f\n", ex.labels[i].c_str(),
                        res[i].ipc / baseIpc);
    }
    bench::exportResults(opt, runner);
    bench::printSweepTiming(runner);
    return bench::exitCode(runner);
}
