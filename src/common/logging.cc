#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

#include "common/error.hh"

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define ELFSIM_HAVE_BACKTRACE 1
#endif
#endif

namespace elfsim {

namespace {

thread_local bool panicThrowsFlag = false;

void
vreport(const char *prefix, const char *file, int line, const char *fmt,
        va_list args)
{
    std::fflush(stdout);
    if (file)
        std::fprintf(stderr, "%s: %s:%d: ", prefix, file, line);
    else
        std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

std::string
vformat(const char *prefix, const char *file, int line, const char *fmt,
        va_list args)
{
    char msg[1024];
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    return errorf("%s: %s:%d: %s", prefix, file, line, msg);
}

/** Best-effort raw stack dump straight to stderr (signal-safe-ish:
 *  backtrace_symbols_fd allocates nothing). No-op where execinfo.h is
 *  unavailable. */
void
dumpBacktrace()
{
#ifdef ELFSIM_HAVE_BACKTRACE
    void *frames[64];
    const int n = backtrace(frames, 64);
    if (n > 0) {
        std::fprintf(stderr, "backtrace (%d frames):\n", n);
        std::fflush(stderr);
        backtrace_symbols_fd(frames, n, /*stderr=*/2);
    }
#endif
}

} // namespace

bool
setPanicThrows(bool enable)
{
    const bool prev = panicThrowsFlag;
    panicThrowsFlag = enable;
    return prev;
}

bool
panicThrows()
{
    return panicThrowsFlag;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    if (panicThrowsFlag) {
        std::string msg = vformat("panic", file, line, fmt, args);
        va_end(args);
        throw InternalError(msg);
    }
    vreport("panic", file, line, fmt, args);
    va_end(args);
    dumpBacktrace();
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    if (panicThrowsFlag) {
        std::string msg = vformat("fatal", file, line, fmt, args);
        va_end(args);
        throw ConfigError(msg);
    }
    vreport("fatal", file, line, fmt, args);
    va_end(args);
    dumpBacktrace();
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", nullptr, 0, fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", nullptr, 0, fmt, args);
    va_end(args);
}

} // namespace elfsim
