#include "core/divergence.hh"

#include "common/logging.hh"

namespace elfsim {

DivergenceTracker::DivergenceTracker(const DivergenceParams &params)
    : params(params), coupled(params.vecEntries),
      decoupled(params.vecEntries)
{
}

unsigned
DivergenceTracker::takenCount(const BoundedQueue<Record> &q) const
{
    unsigned n = 0;
    q.forEach([&n](const Record &r) {
        n += (r.isBranch && r.taken) ? 1 : 0;
    });
    return n;
}

unsigned
DivergenceTracker::coupledSpace() const
{
    if (coupled.size() >= params.vecEntries)
        return 0;
    if (takenCount(coupled) >= params.targetEntries)
        return 0;
    return params.vecEntries - static_cast<unsigned>(coupled.size());
}

void
DivergenceTracker::recordCoupled(const DynInst &di)
{
    ELFSIM_ASSERT(coupled.size() < params.vecEntries,
                  "coupled bitvector overflow");
    Record r;
    r.isBranch = di.isBranch();
    r.undecided = di.fetchStalled && !di.hasPrediction;
    r.taken = di.isBranch() &&
              (di.hasPrediction ? di.predTaken : false);
    r.kind = di.si->branch;
    r.pc = di.pc();
    r.nextPC = r.taken ? di.predTarget : di.pc() + instBytes;
    r.seq = di.seq;
    r.oracleIdx = di.oracleIdx;
    r.wrongPath = di.wrongPath;
    coupled.push(r);
}

void
DivergenceTracker::recordDecoupled(bool is_branch, bool taken,
                                   BranchKind kind, Addr pc,
                                   Addr next_pc,
                                   const TagePrediction &tp,
                                   const IttagePrediction &ip)
{
    ELFSIM_ASSERT(decoupled.size() < params.vecEntries,
                  "decoupled bitvector overflow");
    Record r;
    r.isBranch = is_branch;
    r.taken = taken;
    r.kind = kind;
    r.pc = pc;
    r.nextPC = next_pc;
    r.tp = tp;
    r.ip = ip;
    decoupled.push(r);
}

std::optional<Divergence>
DivergenceTracker::compare(std::vector<Divergence> &adoptions)
{
    while (!coupled.empty() && !decoupled.empty()) {
        const Record &c = coupled.front();
        const Record &d = decoupled.front();

        auto patchFromDcf = [&](Divergence &out) {
            if (!c.isBranch)
                return;
            out.patchSurvivor = true;
            out.patchFromSlot = d.isBranch;
            out.patchTaken = d.taken;
            out.patchTarget =
                d.taken ? d.nextPC : c.pc + instBytes;
            out.patchTage = d.tp;
            out.patchIttage = d.ip;
        };

        if (c.pc != d.pc) {
            // The streams are positionally misaligned (the catching-up
            // DCF guessed sequentially through a taken branch): none
            // of the pairwise rules apply. Trust the fetcher's real
            // instructions; the DCF restarts behind them.
            ++bitvecDivs;
            Divergence div{};
            div.verdict = DivergenceVerdict::TrustFetcher;
            div.survivorSeq = c.seq;
            div.oracleCursor = c.wrongPath ? 0 : c.oracleIdx + 1;
            div.continuation = c.nextPC;
            div.targetMismatch = false;
            return div;
        }

        if (c.undecided) {
            // The fetcher made no call here (it stalled): adopt the
            // DCF's prediction — no control-flow divergence, since
            // nothing was fetched past this instruction.
            Divergence adopt{};
            adopt.verdict = DivergenceVerdict::TrustDcf;
            adopt.survivorSeq = c.seq;
            adopt.oracleCursor = 0;
            adopt.continuation = invalidAddr;
            adopt.targetMismatch = false;
            patchFromDcf(adopt);
            adopt.patchFromMiss = !d.isBranch;
            if (adopt.patchSurvivor)
                adoptions.push_back(adopt);
            coupled.dropFront();
            decoupled.dropFront();
            continue;
        }

        // Control flow diverges only on a taken disagreement or a
        // taken-target disagreement; branch-bit-only differences with
        // both sides falling through continue identically.
        const bool takenMatch = c.taken == d.taken;
        const bool targetsMatch =
            !(c.taken && d.taken) || c.nextPC == d.nextPC;

        if (takenMatch && targetsMatch) {
            coupled.dropFront();
            decoupled.dropFront();
            continue;
        }

        Divergence div{};
        div.survivorSeq = c.seq;
        div.oracleCursor = c.wrongPath ? 0 : c.oracleIdx + 1;
        div.targetMismatch = takenMatch && !targetsMatch;

        if (!takenMatch) {
            ++bitvecDivs;
            if (c.taken && isUnconditional(c.kind)) {
                // The DCF did not follow an unconditional the fetcher
                // decoded (BTB miss through it): fetcher wins
                // (paper IV-C2 case 1).
                div.verdict = DivergenceVerdict::TrustFetcher;
                div.continuation = c.nextPC;
            } else if (d.taken && !c.isBranch) {
                // The DCF believes a taken branch lives where the
                // fetcher decoded a non-branch: stale BTB content
                // (self-modifying code); the decoded instruction is
                // authoritative (paper IV-C2 case 2).
                div.verdict = DivergenceVerdict::TrustFetcher;
                div.continuation = c.nextPC;
            } else {
                // Conditional direction disagreement: trust the DCF
                // and its complex predictors; the in-flight branch
                // adopts the DCF's prediction.
                div.verdict = DivergenceVerdict::TrustDcf;
                div.continuation = d.nextPC;
                patchFromDcf(div);
            }
        } else {
            ++targetDivs;
            // Both predicted taken but to different targets. The
            // decoded target of a direct branch is authoritative; for
            // indirect branches the DCF (ITTAGE) wins (paper IV-C2).
            if (isDirect(c.kind)) {
                div.verdict = DivergenceVerdict::TrustFetcher;
                div.continuation = c.nextPC;
            } else {
                div.verdict = DivergenceVerdict::TrustDcf;
                div.continuation = d.nextPC;
                patchFromDcf(div);
            }
        }
        return div;
    }
    return std::nullopt;
}

void
DivergenceTracker::reset()
{
    coupled.clear();
    decoupled.clear();
}

} // namespace elfsim
