/**
 * @file
 * Set-associative cache model with a simple latency-based timing
 * scheme.
 *
 * Each line records the cycle at which its data becomes available
 * (readyCycle). An access that hits a ready line costs the hit
 * latency; an access that hits an in-flight line waits for the fill;
 * a miss recursively accesses the next level and allocates the line.
 * There is no bandwidth or MSHR-count model — the paper's effects are
 * latency effects (taken-branch bubbles, miss exposure), which this
 * captures.
 */

#ifndef ELFSIM_CACHE_CACHE_HH
#define ELFSIM_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace elfsim {

/** Anything that can serve memory accesses with a latency. */
class MemoryLevel
{
  public:
    virtual ~MemoryLevel() = default;

    /**
     * Access @a addr at time @a now.
     *
     * @param addr Byte address.
     * @param write True for stores.
     * @param now Current cycle.
     * @param is_prefetch True when issued by a prefetcher (counted
     *        separately; still fills lines).
     * @return Number of cycles until the data is available.
     */
    virtual Cycle access(Addr addr, bool write, Cycle now,
                         bool is_prefetch = false) = 0;

    /** Component name (for stats/traces). */
    virtual const std::string &name() const = 0;
};

/** Fixed-latency backing memory. */
class FixedLatencyMemory : public MemoryLevel
{
  public:
    FixedLatencyMemory(std::string name, Cycle latency);

    Cycle access(Addr addr, bool write, Cycle now,
                 bool is_prefetch = false) override;
    const std::string &name() const override { return memName; }

    /** Access statistics. */
    const stats::StatGroup &statGroup() const { return statsGroup; }
    std::uint64_t accesses() const { return accessCount.raw(); }

    /** Serialize the access counter (warm-state checkpoints). */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    std::string memName;
    Cycle latency;
    stats::StatGroup statsGroup;
    stats::Counter &accessCount;
};

/** Geometry and timing parameters of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
    Cycle hitLatency = 1;
    /**
     * Number of set interleaves (banks selected by low line-address
     * bits). The L0 I-cache uses 2-way set interleaving, which lets
     * the fetcher fetch across a taken branch in a single cycle when
     * branch and target lines fall in different interleaves.
     */
    unsigned interleaves = 1;
};

/** One set-associative cache level with LRU replacement. */
class Cache : public MemoryLevel
{
  public:
    /**
     * @param params Geometry/timing.
     * @param next Next level (not owned; must outlive this cache).
     */
    Cache(const CacheParams &params, MemoryLevel *next);

    Cycle access(Addr addr, bool write, Cycle now,
                 bool is_prefetch = false) override;

    /**
     * Start filling the line containing @a addr (no latency returned
     * to a consumer). Used for FAQ-directed instruction prefetch and
     * the D-side stride prefetcher.
     */
    void prefetch(Addr addr, Cycle now);

    /** @return true iff the line is present and ready at @a now. */
    bool probe(Addr addr, Cycle now) const;

    /** @return true iff the line is present (ready or in flight). */
    bool present(Addr addr) const;

    /** Interleave (bank) index of the line containing @a addr. */
    unsigned
    bank(Addr addr) const
    {
        return unsigned(lineAddr(addr) % params.interleaves);
    }

    /** Invalidate the whole cache (used between benchmark runs). */
    void invalidateAll();

    const std::string &name() const override { return params.name; }
    const CacheParams &config() const { return params; }

    const stats::StatGroup &statGroup() const { return statsGroup; }
    std::uint64_t hits() const { return hitCount.raw(); }
    std::uint64_t misses() const { return missCount.raw(); }
    std::uint64_t accesses() const
    {
        return hitCount.raw() + missCount.raw();
    }

    /** Serialize contents, recency state, and statistics. readyCycle
     *  values are absolute cycles, so the consumer must checkpoint the
     *  core cycle counter alongside. */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    struct Line
    {
        Addr tag = invalidAddr;
        bool valid = false;
        Cycle readyCycle = 0;
        std::uint64_t lastUse = 0;
    };

    /**
     * Line number / set index, on every lookup. Line size and set
     * count are powers of two in every shipped configuration, so the
     * hot path is a shift and a mask; the division fallback keeps
     * odd geometries correct.
     */
    Addr
    lineAddr(Addr addr) const
    {
        return lineShift >= 0 ? addr >> lineShift
                              : addr / params.lineBytes;
    }
    Addr
    setIndex(Addr line) const
    {
        return setMaskValid ? line & setMask : line % numSets;
    }

    /** Find the line; nullptr on miss. */
    Line *findLine(Addr line);
    const Line *findLine(Addr line) const;

    /** Choose a victim way in the set of @a line. */
    Line &victim(Addr line);

    CacheParams params;
    MemoryLevel *nextLevel;
    std::uint64_t numSets;
    /** log2(lineBytes), or -1 when lineBytes is not a power of two. */
    int lineShift = -1;
    /** numSets - 1 when numSets is a power of two (see setMaskValid). */
    Addr setMask = 0;
    bool setMaskValid = false;
    std::vector<Line> lines; // numSets * assoc, set-major
    std::uint64_t useTick = 0;

    stats::StatGroup statsGroup;
    stats::Counter &hitCount;
    stats::Counter &missCount;
    stats::Counter &inflightHitCount;
    stats::Counter &prefetchCount;
    stats::Counter &prefetchUnusedDropCount;
};

} // namespace elfsim

#endif // ELFSIM_CACHE_CACHE_HH
