#include <gtest/gtest.h>

#include "bpred/predictor_bank.hh"
#include "cache/hierarchy.hh"
#include "frontend/decode.hh"
#include "frontend/fetch.hh"
#include "frontend/supply.hh"
#include "workload/builders.hh"
#include "workload/oracle_stream.hh"
#include "workload/wrong_path.hh"

using namespace elfsim;

namespace {

/** Everything a front-end slice needs. */
struct Rig
{
    Program prog;
    OracleStream oracle;
    WrongPathWalker walker;
    InstSupply supply;
    MemHierarchy mem;
    CheckpointQueue ckpts;
    Faq faq;
    FetchParams params{};
    DecoupledFetchEngine fetch;

    explicit Rig(Program p)
        : prog(std::move(p)), oracle(prog), walker(prog),
          supply(oracle, walker), mem(), ckpts(512), faq(32),
          fetch(params, mem, supply, faq, ckpts)
    {
    }

    /** Push a sequential FAQ block visible immediately. */
    void
    pushBlock(Addr start, unsigned n, Cycle gen = 0)
    {
        FaqEntry e;
        e.genCycle = gen;
        e.startPC = start;
        e.numInsts = static_cast<std::uint8_t>(n);
        e.nextPC = start + instsToBytes(n);
        faq.push(e);
    }
};

} // namespace

TEST(FetchEngine, FetchesWidthFromOneBlock)
{
    Rig r(microSequentialLoop(40, 16));
    r.pushBlock(r.prog.entryPC(), 16);
    // Warm the L0I first (cold access stalls).
    r.mem.prefetchInst(r.prog.entryPC(), 0);
    r.mem.prefetchInst(r.prog.entryPC() + 64, 0);

    FetchBundle out;
    const unsigned n = r.fetch.tick(400, 0, out);
    EXPECT_EQ(n, 8u);
    for (unsigned i = 0; i < n; ++i) {
        EXPECT_EQ(out[i].pc(), r.prog.entryPC() + instsToBytes(i));
        EXPECT_FALSE(out[i].wrongPath);
        EXPECT_EQ(out[i].mode, FetchMode::Decoupled);
    }
}

TEST(FetchEngine, ColdMissStallsFetch)
{
    Rig r(microSequentialLoop(40, 16));
    r.pushBlock(r.prog.entryPC(), 16);
    FetchBundle out;
    EXPECT_EQ(r.fetch.tick(1, 0, out), 0u);
    EXPECT_TRUE(r.fetch.stalled(2));
}

TEST(FetchEngine, RespectsFaqVisibilityLatency)
{
    Rig r(microSequentialLoop(40, 16));
    r.pushBlock(r.prog.entryPC(), 16, /*gen=*/400);
    r.mem.prefetchInst(r.prog.entryPC(), 0); // fill completes ~301
    FetchBundle out;
    // At cycle 401 the block (gen 400, BP1->FE 3) is not yet visible.
    EXPECT_EQ(r.fetch.tick(401, 3, out), 0u);
    EXPECT_GT(r.fetch.tick(403, 3, out), 0u);
}

TEST(FetchEngine, WrongPathLatchesOnDivergentBlock)
{
    // Two contiguous blocks of 7 insts; the wrap-around jump at
    // instruction 13 goes back to the entry, so a sequential FAQ
    // block diverges from the oracle right after it.
    Rig r(microTakenChain(2, 6));
    r.pushBlock(r.prog.entryPC(), 16);
    r.mem.prefetchInst(r.prog.entryPC(), 0);
    r.mem.prefetchInst(r.prog.entryPC() + 64, 0);
    FetchBundle out;
    r.fetch.tick(400, 0, out);
    r.fetch.tick(401, 0, out);
    ASSERT_GE(out.size(), 15u);
    EXPECT_FALSE(out[13].wrongPath);
    EXPECT_TRUE(out[13].taken);
    EXPECT_TRUE(out[14].wrongPath);
    EXPECT_TRUE(r.supply.onWrongPath());
}

TEST(FetchEngine, MispredictFlaggedAgainstOracle)
{
    Rig r(microTakenChain(2, 2));
    // The block's branch (offset 2) predicted NOT taken although the
    // oracle says taken.
    FaqEntry e;
    e.startPC = r.prog.entryPC();
    e.numInsts = 16;
    e.nextPC = e.startPC + instsToBytes(16);
    e.branches[0].valid = true;
    e.branches[0].offset = 2;
    e.branches[0].kind = BranchKind::UncondDirect;
    e.branches[0].predTaken = false;
    r.faq.push(e);
    r.mem.prefetchInst(r.prog.entryPC(), 0);

    FetchBundle out;
    r.fetch.tick(400, 0, out);
    ASSERT_GE(out.size(), 3u);
    EXPECT_TRUE(out[2].isBranch());
    EXPECT_TRUE(out[2].hasPrediction);
    EXPECT_TRUE(out[2].mispredict);
}

TEST(FetchEngine, ChecksCheckpointCapacity)
{
    Rig small(microTakenChain(8, 0)); // branch-only ring
    // Exhaust the checkpoint queue first.
    while (!small.ckpts.full())
        small.ckpts.allocate(1);
    small.pushBlock(small.prog.entryPC(), 8);
    small.mem.prefetchInst(small.prog.entryPC(), 0);
    FetchBundle out;
    EXPECT_EQ(small.fetch.tick(300, 0, out), 0u);
}

TEST(DecodeStage, ResteersOnUncoveredUncond)
{
    Rig r(microTakenChain(2, 4)); // 5-inst blocks
    PredictorBank bank;
    DecodeStage dec(8, bank);

    // Fetch through a BTB-miss sequential block: the jump at offset 4
    // is uncovered.
    r.pushBlock(r.prog.entryPC(), 16);
    r.faq.front().fromBtbMiss = true;
    r.mem.prefetchInst(r.prog.entryPC(), 0);
    r.mem.prefetchInst(r.prog.entryPC() + 64, 0);
    FetchBundle fetched;
    r.fetch.tick(400, 0, fetched);
    r.fetch.tick(401, 0, fetched);

    BoundedQueue<DynInst> buf(24);
    for (DynInst &di : fetched) {
        di.readyAt = 402;
        buf.push(std::move(di));
    }

    FetchBundle decoded;
    Redirect resteer;
    dec.tick(402, buf, decoded, resteer);
    ASSERT_TRUE(resteer.pending());
    EXPECT_EQ(resteer.kind, RedirectKind::DecodeResteer);
    // The jump sits at offset 4; its decoded target is block 1.
    EXPECT_EQ(resteer.targetPC,
              r.prog.entryPC() + instsToBytes(5));
    // Decode stopped at the resteering branch.
    EXPECT_TRUE(decoded.back().isBranch());
    EXPECT_TRUE(decoded.back().hasPrediction);
    EXPECT_FALSE(decoded.back().mispredict);
}

TEST(DecodeStage, NoResteerForCoveredBranches)
{
    Rig r(microTakenChain(2, 4));
    PredictorBank bank;
    DecodeStage dec(8, bank);

    FaqEntry e;
    e.startPC = r.prog.entryPC();
    e.numInsts = 5;
    e.endCause = FaqBlockEnd::TakenBranch;
    e.branches[0].valid = true;
    e.branches[0].offset = 4;
    e.branches[0].kind = BranchKind::UncondDirect;
    e.branches[0].predTaken = true;
    e.branches[0].target = r.prog.entryPC() + instsToBytes(5);
    e.nextPC = e.branches[0].target;
    r.faq.push(e);
    r.mem.prefetchInst(r.prog.entryPC(), 0);

    FetchBundle fetched;
    r.fetch.tick(400, 0, fetched);
    BoundedQueue<DynInst> buf(24);
    for (DynInst &di : fetched) {
        di.readyAt = 401;
        buf.push(std::move(di));
    }
    FetchBundle decoded;
    Redirect resteer;
    dec.tick(401, buf, decoded, resteer);
    EXPECT_FALSE(resteer.pending());
}
