#include "dist/ledger.hh"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.hh"
#include "common/export.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace elfsim {
namespace dist {

namespace {

constexpr const char *kLedgerSchema = "elfsim-ledger-v1";

void
dropOutstanding(std::vector<LeaseEvent> &outstanding, std::size_t index)
{
    outstanding.erase(
        std::remove_if(outstanding.begin(), outstanding.end(),
                       [index](const LeaseEvent &e)
                       { return e.index == index; }),
        outstanding.end());
}

} // namespace

void
writeLeaseLine(std::ostream &os, const LeaseEvent &e)
{
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("ledger", kLedgerSchema);
    w.field("event",
            e.kind == LeaseEvent::Kind::Lease ? "lease" : "expire");
    w.field("index", std::uint64_t(e.index));
    if (e.kind == LeaseEvent::Kind::Lease)
        w.field("key", e.key);
    w.field("worker", e.worker);
    if (e.kind == LeaseEvent::Kind::Lease)
        w.field("lease_seconds", e.leaseSeconds);
    if (e.hedge)
        w.field("hedge", true);
    w.endObject();
    os << '\n';
}

LedgerState
readLedger(std::istream &is)
{
    LedgerState state;
    // Last manifest line per index wins, but completion order of the
    // first sighting is preserved (same policy as readManifest).
    std::map<std::size_t, std::size_t> completedAt;

    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        try {
            const json::Value doc = json::parse(line);
            if (const json::Value *schema = doc.find("ledger")) {
                if (schema->asString() != kLedgerSchema)
                    throw ParseError(
                        errorf("unknown ledger schema '%s'",
                               schema->asString().c_str()));
                LeaseEvent e;
                const std::string &event = doc.at("event").asString();
                e.index = std::size_t(doc.at("index").asU64());
                e.worker = doc.at("worker").asString();
                if (const json::Value *h = doc.find("hedge"))
                    e.hedge = h->asBool();
                if (event == "lease") {
                    e.kind = LeaseEvent::Kind::Lease;
                    e.key = doc.at("key").asString();
                    e.leaseSeconds = doc.at("lease_seconds").asU64();
                    ++state.leaseLines;
                    // Hedge lines never touch the outstanding set:
                    // the primary lease is the cell's scheduling
                    // truth, a hedge is a redundant racer.
                    if (e.hedge)
                        continue;
                    dropOutstanding(state.outstanding, e.index);
                    // An already-completed cell never goes back in
                    // flight: a re-lease after completion would be a
                    // writer bug, replay keeps the completion.
                    if (!completedAt.count(e.index))
                        state.outstanding.push_back(std::move(e));
                } else if (event == "expire") {
                    e.kind = LeaseEvent::Kind::Expire;
                    ++state.expireLines;
                    if (e.hedge)
                        continue;
                    dropOutstanding(state.outstanding, e.index);
                } else {
                    throw ParseError(errorf(
                        "unknown ledger event '%s'", event.c_str()));
                }
                continue;
            }

            // Anything else must be a manifest completion line.
            if (doc.at("manifest").asString() != "elfsim-manifest-v1")
                throw ParseError("unknown manifest schema");
            ManifestEntry e;
            e.index = std::size_t(doc.at("index").asU64());
            e.key = doc.at("key").asString();
            e.result = runResultFromJson(doc.at("result"));
            dropOutstanding(state.outstanding, e.index);
            if (auto it = completedAt.find(e.index);
                it != completedAt.end()) {
                state.completed[it->second] = std::move(e);
            } else {
                completedAt.emplace(e.index, state.completed.size());
                state.completed.push_back(std::move(e));
            }
        } catch (const SimError &err) {
            ++state.skipped;
            ELFSIM_WARN("ledger line %zu skipped: %s", lineNo,
                        err.what());
        }
    }
    return state;
}

} // namespace dist
} // namespace elfsim
