/**
 * @file
 * Gshare conditional predictor — an optional upgrade for the ELF
 * coupled predictor (the paper's conclusion calls for "a better
 * conditional predictor and/or filtering scheme" as future work for
 * COND-ELF).
 *
 * To stay within ELF's no-checkpoint constraint for coupled
 * predictors (Section IV-C1), the global history register here is
 * updated only at commit: it is never speculative, so it never needs
 * restoring. The history is therefore a few branches stale at
 * prediction time — an accuracy/complexity trade-off this module
 * makes explicit.
 */

#ifndef ELFSIM_BPRED_GSHARE_HH
#define ELFSIM_BPRED_GSHARE_HH

#include <vector>

#include "common/error.hh"
#include "common/sat_counter.hh"
#include "common/types.hh"

namespace elfsim {

/** Gshare parameters. */
struct GshareParams
{
    unsigned entries = 2048;   ///< counter table size
    unsigned counterBits = 3;
    unsigned historyBits = 8;  ///< commit-time global history length
};

/** Commit-history gshare predictor. */
class Gshare
{
  public:
    explicit Gshare(const GshareParams &params = {})
        : params(params),
          table(params.entries, SatCounter(params.counterBits, 0))
    {
        for (SatCounter &c : table)
            c.resetWeak();
    }

    /** Predicted direction for @a pc under the commit history. */
    bool predict(Addr pc) const { return entry(pc).isTaken(); }

    /** @return true iff the counter for @a pc is saturated (the
     *  COND-ELF speculation filter). */
    bool saturated(Addr pc) const { return entry(pc).isSaturated(); }

    /** Train at commit: update the counter and push the history. */
    void
    update(Addr pc, bool taken)
    {
        entry(pc).update(taken);
        history = ((history << 1) | (taken ? 1 : 0)) &
                  ((1u << params.historyBits) - 1);
    }

    /** Reset counters and history. */
    void
    reset()
    {
        for (SatCounter &c : table) {
            c = SatCounter(params.counterBits, 0);
            c.resetWeak();
        }
        history = 0;
    }

    double
    storageBytes() const
    {
        return params.entries * params.counterBits / 8.0;
    }

    /** Serialize counters and the commit-time history. */
    template <class S>
    void
    saveState(S &s) const
    {
        s.u64(table.size());
        for (const SatCounter &c : table)
            s.u16(std::uint16_t(c.raw()));
        s.u32(history);
    }

    template <class D>
    void
    loadState(D &d)
    {
        if (d.u64() != table.size())
            throw ParseError("gshare: geometry mismatch");
        for (SatCounter &c : table)
            c.set(d.u16());
        history = d.u32() & ((1u << params.historyBits) - 1);
    }

  private:
    std::size_t
    index(Addr pc) const
    {
        return ((pc / instBytes) ^ history) % params.entries;
    }
    SatCounter &entry(Addr pc) { return table[index(pc)]; }
    const SatCounter &entry(Addr pc) const { return table[index(pc)]; }

    GshareParams params;
    std::vector<SatCounter> table;
    std::uint32_t history = 0;
};

} // namespace elfsim

#endif // ELFSIM_BPRED_GSHARE_HH
