#!/usr/bin/env bash
# Chaos soak: seeded fault-injection rounds against a spawned
# 2-worker fleet, each byte-diffed against a --local run.
#
#   scripts/chaos_soak.sh                # 3 rounds per fault class
#   scripts/chaos_soak.sh --rounds 2     # repeat every class sweep
#   scripts/chaos_soak.sh --out DIR      # artifacts (default
#                                        # build/chaos-soak)
#
# Every round arms one $ELFSIM_FAULT site (connect refusal,
# mid-stream disconnect, truncation at a byte offset, corrupted
# artifact payload, dropped heartbeat, slow sends), runs the grid on
# a spawned fleet, and requires:
#
#   1. exit 0 — recovery (backoff, requeue, re-upload) finished the
#      grid without degrading a cell;
#   2. the merged elfsim-results-v2 document is byte-identical to the
#      fault-free --local reference;
#   3. the lease ledger replays coherently
#      (scripts/check_results.py --ledger).
#
# Three scenario rounds additionally assert the scheduling counters:
# quarantine + probation re-admission, hedged-dispatch dedup, and
# whole-fleet loss falling back in-process.
#
# Faults and backoff schedules are seeded (the site grammar is
# deterministic, --backoff-seed pins the jitter), so any failing
# round replays with the printed command line.
set -uo pipefail
cd "$(dirname "$0")/.."

ROUNDS=1
OUT=build/chaos-soak
COORD=build/bench/elfsim_coord
while [ $# -gt 0 ]; do
    case "$1" in
        --rounds)
            ROUNDS="$2"
            shift 2
            ;;
        --out)
            OUT="$2"
            shift 2
            ;;
        *)
            echo "usage: $0 [--rounds N] [--out DIR]" >&2
            exit 2
            ;;
    esac
done

if [ ! -x "$COORD" ]; then
    echo "$COORD not built (cmake --build build)" >&2
    exit 1
fi
mkdir -p "$OUT"

# A small but real grid: 3 generated programs x {DCF, U-ELF}; jobs=1
# keeps every run (local and worker-side) single-threaded so wall
# time stays honest. Cells 0..5 in spec order; with the trace cache
# on, each worker receives one artifact upload per program before its
# first shard, so droppable-event ordinals 1..3 are uploads and the
# first stream event of a worker is ordinal 4.
SPEC="$OUT/chaos.spec.json"
cat > "$SPEC" <<'EOF'
{
  "schema": "elfsim-sweepspec-v1",
  "name": "chaos_soak",
  "jobs": 1,
  "base_seed": 7,
  "run": { "warmup_insts": 2000, "measure_insts": 4000 },
  "groups": [
    {
      "workloads": [
        { "micro": "random_branch_loop", "args": [10, 0.5] },
        { "micro": "random_branch_loop", "args": [14, 0.35] },
        { "micro": "random_branch_loop", "args": [7, 0.65] }
      ],
      "configs": [ { "variant": "DCF" }, { "variant": "U-ELF" } ]
    }
  ]
}
EOF

# The hedge scenario gets a longer 2-cell grid: both primaries start
# together and the injected sleeps (every matching 'slow' entry fires
# per poll) make cell 1 straggle by ~100 ms, far beyond scheduling
# noise, so the idle worker reliably duplicates it. 'slow' burns wall
# time only — the reference bytes do not change.
HSPEC="$OUT/hedge.spec.json"
cat > "$HSPEC" <<'EOF'
{
  "schema": "elfsim-sweepspec-v1",
  "name": "chaos_hedge",
  "jobs": 1,
  "base_seed": 7,
  "run": { "warmup_insts": 2000, "measure_insts": 48000 },
  "groups": [
    {
      "workloads": [
        { "micro": "random_branch_loop", "args": [12, 0.45] }
      ],
      "configs": [ { "variant": "DCF" }, { "variant": "U-ELF" } ]
    }
  ]
}
EOF

echo "== local reference runs"
"$COORD" --spec "$SPEC" --local --json "$OUT/ref.json" >/dev/null
"$COORD" --spec "$HSPEC" --local --json "$OUT/ref.hedge.json" \
    >/dev/null

PASS=0
FAILED=()

# run_round NAME FAULT SPEC REF SEED [extra coordinator args...]
run_round() {
    local name="$1" fault="$2" spec="$3" ref="$4" seed="$5"
    shift 5
    local json="$OUT/$name.json"
    local ledger="$OUT/$name.ledger.jsonl"
    local stats="$OUT/$name.stats.json"
    local log="$OUT/$name.log"
    rm -f "$ledger"
    local status=0
    ELFSIM_FAULT="$fault" "$COORD" --spec "$spec" --spawn 2 \
        --chunk 1 --backoff-seed "$seed" --ledger "$ledger" \
        --json "$json" --stats-json "$stats" "$@" \
        >"$log" 2>&1 || status=$?
    if [ "$status" -ne 0 ]; then
        FAILED+=("$name: exit $status (fault '$fault', see $log)")
        return 1
    fi
    if ! cmp -s "$json" "$ref"; then
        FAILED+=("$name: merged bytes differ from the local run")
        return 1
    fi
    if ! python3 scripts/check_results.py --ledger "$ledger" \
        >/dev/null; then
        FAILED+=("$name: ledger incoherent ($ledger)")
        return 1
    fi
    PASS=$((PASS + 1))
    echo "   ok: $name (fault '$fault', seed $seed)"
    return 0
}

# expect_counter NAME COUNTER MIN [MAX]
expect_counter() {
    local name="$1" counter="$2" min="$3" max="${4:-}"
    if ! python3 - "$OUT/$name.stats.json" "$counter" "$min" \
        "$max" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
got = doc["dist"]["dist." + sys.argv[2]]
lo = int(sys.argv[3])
hi = int(sys.argv[4]) if sys.argv[4] else None
if got < lo or (hi is not None and got > hi):
    want = f">= {lo}" if hi is None else f"in [{lo}, {hi}]"
    sys.exit(f"{sys.argv[2]} = {got}, want {want}")
PY
    then
        FAILED+=("$name: counter $counter out of range")
        return 1
    fi
    return 0
}

for r in $(seq 1 "$ROUNDS"); do
    echo "== round set $r/$ROUNDS: one sweep per network fault class"
    s=$((1000 * r))
    # Refused connects: first N attempts bounce; the seeded backoff
    # reconnects and the grid still completes.
    run_round "r${r}_netrefuse_a" "netrefuse:0:1" "$SPEC" \
        "$OUT/ref.json" $((s + 1)) || true
    run_round "r${r}_netrefuse_b" "netrefuse:1:2" "$SPEC" \
        "$OUT/ref.json" $((s + 2)) || true
    run_round "r${r}_netrefuse_c" "netrefuse:0:3" "$SPEC" \
        "$OUT/ref.json" $((s + 3)) || true
    # Mid-stream disconnect: ordinal 1 = an artifact upload, 4 = the
    # worker's first shard stream line, 6 = deep in the stream.
    run_round "r${r}_netdrop_a" "netdrop:0:1" "$SPEC" \
        "$OUT/ref.json" $((s + 4)) || true
    run_round "r${r}_netdrop_b" "netdrop:0:4" "$SPEC" \
        "$OUT/ref.json" $((s + 5)) || true
    run_round "r${r}_netdrop_c" "netdrop:1:6" "$SPEC" \
        "$OUT/ref.json" $((s + 6)) || true
    # Truncation at a raw byte offset: 0 = nothing arrives, then two
    # cuts inside the response framing / first result line.
    run_round "r${r}_nettrunc_a" "nettrunc:0:0" "$SPEC" \
        "$OUT/ref.json" $((s + 7)) || true
    run_round "r${r}_nettrunc_b" "nettrunc:1:25" "$SPEC" \
        "$OUT/ref.json" $((s + 8)) || true
    run_round "r${r}_nettrunc_c" "nettrunc:0:300" "$SPEC" \
        "$OUT/ref.json" $((s + 9)) || true
    # Corrupted artifact payload: the worker's checksum rejects the
    # Nth upload and the coordinator re-sends it.
    run_round "r${r}_netcorrupt_a" "netcorrupt:0:1" "$SPEC" \
        "$OUT/ref.json" $((s + 10)) || true
    run_round "r${r}_netcorrupt_b" "netcorrupt:1:2" "$SPEC" \
        "$OUT/ref.json" $((s + 11)) || true
    run_round "r${r}_netcorrupt_c" "netcorrupt:0:3" "$SPEC" \
        "$OUT/ref.json" $((s + 12)) || true
    # Dropped heartbeat: the receive timeout fires as if the worker
    # went silent for a whole lease; the chunk requeues.
    run_round "r${r}_nethb_a" "nethb:0:4" "$SPEC" \
        "$OUT/ref.json" $((s + 13)) || true
    run_round "r${r}_nethb_b" "nethb:1:4" "$SPEC" \
        "$OUT/ref.json" $((s + 14)) || true
    run_round "r${r}_nethb_c" "nethb:0:5" "$SPEC" \
        "$OUT/ref.json" $((s + 15)) || true
    # Slow sends: latency, not loss — nothing should requeue.
    run_round "r${r}_netslow_a" "netslow:0:0" "$SPEC" \
        "$OUT/ref.json" $((s + 16)) || true
    run_round "r${r}_netslow_b" "netslow:1:3" "$SPEC" \
        "$OUT/ref.json" $((s + 17)) || true
    run_round "r${r}_netslow_c" "netslow:*:1" "$SPEC" \
        "$OUT/ref.json" $((s + 18)) || true

    echo "== round set $r/$ROUNDS: recovery scenarios"
    # Quarantine + probation: one dropped stream quarantines worker 0
    # (failure budget 1); the health probe re-admits it and it
    # finishes real work afterwards.
    if run_round "r${r}_quarantine" "netdrop:0:4" "$SPEC" \
        "$OUT/ref.json" $((s + 19)) \
        --worker-failures 1 --probe-base-ms 50; then
        expect_counter "r${r}_quarantine" quarantines 1 || true
        expect_counter "r${r}_quarantine" readmissions 1 || true
        expect_counter "r${r}_quarantine" workers_dead 0 0 || true
    fi
    # Hedged dispatch: cell 1 straggles ~100 ms; the idle worker
    # duplicates it after 2 ms, first completion wins, and the
    # loser's lease expires without a requeue.
    if run_round "r${r}_hedge" \
        "slow:1:0,slow:1:0,slow:1:0,slow:1:0,slow:1:0,slow:1:0" \
        "$HSPEC" "$OUT/ref.hedge.json" $((s + 20)) --hedge 2; then
        expect_counter "r${r}_hedge" hedges 1 || true
        expect_counter "r${r}_hedge" requeues 0 0 || true
    fi
    # Fleet loss: every connect to every worker refused; both drain
    # their probe budgets, die, and the coordinator finishes the grid
    # in-process — still byte-identical to --local.
    if run_round "r${r}_fleetloss" "netrefuse:*:0" "$SPEC" \
        "$OUT/ref.json" $((s + 21)) \
        --worker-failures 1 --probes 2 --probe-base-ms 50; then
        expect_counter "r${r}_fleetloss" cells_fallback 6 6 || true
        expect_counter "r${r}_fleetloss" workers_dead 2 2 || true
        expect_counter "r${r}_fleetloss" cells_run 0 0 || true
    fi
done

TOTAL=$((ROUNDS * 21))
echo "== chaos soak: $PASS/$TOTAL rounds ok"
if [ ${#FAILED[@]} -gt 0 ]; then
    printf 'FAILED %s\n' "${FAILED[@]}" >&2
    exit 1
fi
