/**
 * @file
 * Batch functional-warming kernel identity tests: fast-forwarding
 * over the compiled-trace side tables (sim/warm_kernel.cc) must leave
 * the core in EXACTLY the state the scalar per-instruction loop
 * produces — verified byte-for-byte on the serialized warm state for
 * every catalog workload, for windows that straddle the compiled
 * prefix end (mixed kernel + scalar), and end-to-end on sampled-run
 * results when an injected warmtab fault degrades the whole run to
 * the scalar path.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "common/serialize.hh"
#include "sim/config.hh"
#include "sim/export.hh"
#include "sim/runner.hh"
#include "workload/builders.hh"
#include "workload/catalog.hh"
#include "workload/checkpoint_store.hh"
#include "workload/compiled_trace.hh"

using namespace elfsim;

namespace {

// Sanitizer builds run several times slower; subsample the catalog
// there (same idiom as test_sampling).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr unsigned kCatalogStride = 5;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr unsigned kCatalogStride = 5;
#else
constexpr unsigned kCatalogStride = 1;
#endif
#else
constexpr unsigned kCatalogStride = 1;
#endif

/** Arm the process-wide injector for one scope (test_fault idiom). */
struct ArmedFaults
{
    explicit ArmedFaults(const std::string &spec)
    {
        FaultInjector::instance().arm(FaultInjector::parse(spec));
    }
    ~ArmedFaults() { FaultInjector::instance().disarm(); }
};

/** Disable the checkpoint store for one scope. */
class ScopedCkptOff
{
  public:
    ScopedCkptOff() : prev(CheckpointStore::instance().enabled())
    {
        CheckpointStore::instance().setEnabled(false);
    }
    ~ScopedCkptOff() { CheckpointStore::instance().setEnabled(prev); }

  private:
    bool prev;
};

std::vector<std::uint8_t>
warmBytes(const Core &core)
{
    Serializer s;
    core.saveWarmState(s);
    return s.data();
}

std::string
toJson(const RunResult &r)
{
    std::ostringstream os;
    JsonWriter w(os);
    writeRunResult(w, r);
    return os.str();
}

/**
 * Fast-forward @a n instructions on a fresh core over @a trace, with
 * the batch kernel either live or disabled via an injected warmtab
 * fault, and return the serialized warm state. The fast-forward is
 * split in two with an intervening quiesce so cursor initialization
 * mid-stream (not just at position 0) is exercised every time.
 */
std::vector<std::uint8_t>
warmedState(const SimConfig &cfg, const Program &prog,
            const std::shared_ptr<const CompiledTrace> &trace,
            InstCount n, bool force_scalar)
{
    Core core(cfg, prog, trace);
    std::optional<ArmedFaults> armed;
    if (force_scalar)
        armed.emplace("warmtab:*:0");
    // Split in two with an intervening quiesce so mid-stream cursor
    // initialization (not just position 0) is exercised every time.
    const InstCount first = n / 3;
    core.squashToCommitted();
    core.fastForward(first);
    core.squashToCommitted();
    core.fastForward(n - first);
    armed.reset();
    if (force_scalar) {
        EXPECT_EQ(core.warmStats().kernelInsts, 0u);
        EXPECT_EQ(core.warmStats().scalarInsts, n);
    } else {
        EXPECT_EQ(core.warmStats().kernelInsts, n);
        EXPECT_EQ(core.warmStats().scalarInsts, 0u);
    }
    EXPECT_EQ(core.consumedInsts(), n);
    return warmBytes(core);
}

} // namespace

// The hard guarantee behind the batch kernel: for every catalog
// workload and on both a DCF and a no-DCF frontend, the serialized
// warm state after a kernel fast-forward is byte-identical to the
// scalar loop's — TAGE/ITTAGE/bimodal/RAS, both BTB levels, the BTB
// builder, caches, memory-dependence state, and every cumulative
// counter, all at once.
TEST(WarmKernel, ByteIdenticalToScalarAcrossCatalog)
{
    // > 5 poll chunks of ffPollInsts, and strictly inside the prefix.
    const InstCount n = 100000;
    unsigned wi = 0;
    for (const WorkloadSpec &w : workloadCatalog()) {
        if (wi++ % kCatalogStride != 0)
            continue;
        const Program p = buildWorkload(w);
        const auto trace = CompiledTrace::compile(p, n + 2048);
        for (FrontendVariant v :
             {FrontendVariant::UElf, FrontendVariant::NoDcf}) {
            const SimConfig cfg = makeConfig(v);
            const auto kernel = warmedState(cfg, p, trace, n, false);
            const auto scalar = warmedState(cfg, p, trace, n, true);
            ASSERT_EQ(kernel, scalar)
                << w.name << " variant " << int(v);
        }
    }
}

// A fast-forward window that straddles the compiled prefix end warms
// the covered part with the kernel and the tail with the scalar loop;
// the result — including the oracle-generator resume state the
// checkpoint writer captures — must still match an all-scalar run.
TEST(WarmKernel, PrefixStraddleMixesKernelAndScalar)
{
    const Program p = microBtbMissChain(512, 6);
    const InstCount prefix = 50000;
    const InstCount n = 120000;
    const auto trace = CompiledTrace::compile(p, prefix);
    const SimConfig cfg = makeConfig(FrontendVariant::UElf);

    Core kernel(cfg, p, trace);
    kernel.squashToCommitted();
    kernel.fastForward(n);
    EXPECT_EQ(kernel.warmStats().kernelInsts, prefix);
    EXPECT_EQ(kernel.warmStats().scalarInsts, n - prefix);

    Core scalar(cfg, p, trace);
    {
        ArmedFaults armed("warmtab:*:0");
        scalar.squashToCommitted();
        scalar.fastForward(n);
    }
    EXPECT_EQ(scalar.warmStats().kernelInsts, 0u);
    EXPECT_EQ(scalar.warmStats().scalarInsts, n);

    EXPECT_EQ(kernel.consumedInsts(), scalar.consumedInsts());
    EXPECT_EQ(warmBytes(kernel), warmBytes(scalar));

    // Both runs ended past the prefix: the generator resume state is
    // live on both paths and must agree bit for bit.
    ASSERT_TRUE(kernel.ffResumeStateValid());
    ASSERT_TRUE(scalar.ffResumeStateValid());
    Serializer ka, sa;
    kernel.ffResumeState().saveState(ka);
    scalar.ffResumeState().saveState(sa);
    EXPECT_EQ(ka.data(), sa.data());
}

// Inside the prefix neither path may expose generator resume state:
// the scalar loop leaves the stream window populated, the kernel
// reseeks — either way the checkpoint writer must see "not valid"
// so it never persists a stale generator.
TEST(WarmKernel, NoResumeStateInsidePrefixOnEitherPath)
{
    const Program p = microBtbMissChain(512, 6);
    const auto trace = CompiledTrace::compile(p, 60000);
    const SimConfig cfg = makeConfig(FrontendVariant::UElf);

    Core kernel(cfg, p, trace);
    kernel.squashToCommitted();
    kernel.fastForward(40000);
    EXPECT_FALSE(kernel.ffResumeStateValid());

    Core scalar(cfg, p, trace);
    {
        ArmedFaults armed("warmtab:*:0");
        scalar.squashToCommitted();
        scalar.fastForward(40000);
    }
    EXPECT_FALSE(scalar.ffResumeStateValid());
    EXPECT_EQ(warmBytes(kernel), warmBytes(scalar));
}

// End-to-end degradation: an injected warmtab fault forces a whole
// sampled run onto the scalar path. The run must not fail — and must
// produce the exact same result JSON as the kernel-backed run, with
// only the warm.* work-split counters differing.
TEST(WarmKernel, PoisonedSideTablesDegradeToScalarWithIdenticalResult)
{
    ScopedCkptOff off;
    const Program p = buildWorkload(workloadCatalog().front());

    RunOptions so;
    so.warmupInsts = 0;
    so.measureInsts = 150000;
    so.samplePeriodInsts = 5000;
    so.sampleLengthInsts = 2000;
    so.sampleWarmupInsts = 500;

    const RunResult a = runVariant(p, FrontendVariant::UElf, so);
    RunResult b;
    {
        ArmedFaults armed("warmtab:*:0");
        b = runVariant(p, FrontendVariant::UElf, so);
    }

    // The healthy run used the kernel for every fast-forwarded inst
    // (the whole schedule sits inside the capped compiled prefix);
    // the poisoned run used none. Both splits must sum to the same
    // fast-forward total.
    EXPECT_GT(a.sampling.warmFfInsts, 0u);
    EXPECT_EQ(a.sampling.warmKernelInsts, a.sampling.warmFfInsts);
    EXPECT_EQ(a.sampling.warmScalarInsts, 0u);
    EXPECT_EQ(b.sampling.warmKernelInsts, 0u);
    EXPECT_EQ(b.sampling.warmScalarInsts, b.sampling.warmFfInsts);
    EXPECT_EQ(a.sampling.warmFfInsts, b.sampling.warmFfInsts);

    RunResult ja = a, jb = b;
    ja.sampling.warmKernelInsts = jb.sampling.warmKernelInsts = 0;
    ja.sampling.warmScalarInsts = jb.sampling.warmScalarInsts = 0;
    ja.sampling.warmBranchEvents = jb.sampling.warmBranchEvents = 0;
    ja.sampling.warmLinesTouched = jb.sampling.warmLinesTouched = 0;
    EXPECT_EQ(toJson(ja), toJson(jb));
}
