#include "sim/runner.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "workload/checkpoint_store.hh"
#include "workload/trace_cache.hh"

namespace elfsim {

namespace {

/** Derive one timeline row from a per-interval snapshot delta. */
IntervalSample
makeSample(const StatSnapshot &d, InstCount startInst)
{
    IntervalSample s;
    s.startInst = startInst;
    s.insts = d.insts;
    s.cycles = d.cycles;
    s.ipc = d.cycles ? double(d.insts) / double(d.cycles) : 0.0;
    s.condMispredicts = d.condMispredicts;
    s.targetMispredicts = d.targetMispredicts;
    s.execFlushes = d.execFlushes;
    s.memOrderFlushes = d.memOrderFlushes;
    s.decodeResteers = d.decodeResteers;
    s.divergenceFlushes = d.divergenceFlushes;
    s.coupledFrac =
        d.insts ? double(d.coupledCommitted) / double(d.insts) : 0.0;
    return s;
}

/** Elementwise acc += d, for summing measured-window deltas. */
void
accumulate(StatSnapshot &acc, const StatSnapshot &d)
{
    acc.cycles += d.cycles;
    acc.insts += d.insts;
    acc.condMispredicts += d.condMispredicts;
    acc.targetMispredicts += d.targetMispredicts;
    acc.execFlushes += d.execFlushes;
    acc.memOrderFlushes += d.memOrderFlushes;
    acc.decodeResteers += d.decodeResteers;
    acc.divergenceFlushes += d.divergenceFlushes;
    acc.coupledCommitted += d.coupledCommitted;
    acc.l1dMisses += d.l1dMisses;
    acc.redirectToFetchTotal += d.redirectToFetchTotal;
    acc.redirectToFetchCount += d.redirectToFetchCount;
}

/** Two-sided 95% Student-t interval multiplier for @a dof degrees of
 *  freedom; converges to the normal quantile past the table. */
double
t95(std::size_t dof)
{
    static const double tab[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (dof == 0)
        return 0.0;
    if (dof <= sizeof(tab) / sizeof(tab[0]))
        return tab[dof - 1];
    return 1.96;
}

/**
 * Relative systematic-error allowance for functional warming, per
 * fully fast-forwarded instruction fraction. Fast-forward trains
 * predictors and caches on the committed path only: it cannot
 * reproduce wrong-path fetches and fills, so detailed windows start
 * from slightly cleaner caches than the full machine would have and
 * measure slightly fast. Empirically the effect tops out near 5% of
 * IPC on the branchy / large-footprint catalog workloads when nearly
 * the whole stream is skipped, and shrinks as detailed coverage
 * grows, so it is scaled by the skipped fraction. A variance bound
 * alone cannot see this bias — it is the same in every window.
 */
constexpr double warmingBiasAllowance = 0.05;

/**
 * 95% relative error bound on the sampled IPC estimate: the Student-t
 * confidence half-width on the mean of the per-window IPCs @a xs
 * (sample variance, n - 1; the t quantile matters at the 10-30
 * windows typical here) plus the functional-warming bias allowance
 * for the fraction @a ffFraction of each period that is only
 * functionally warmed. 0 when fewer than two windows — no variance
 * estimate exists.
 */
double
relErr95(const std::vector<double> &xs, double ffFraction)
{
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    const double mean = sum / double(n);
    if (mean <= 0.0)
        return 0.0;
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= double(n - 1);
    return t95(n - 1) * std::sqrt(var / double(n)) / mean +
           warmingBiasAllowance * ffFraction;
}

/** Does the compiled trace (if any) cover stream position @a pos, so
 *  the oracle can reseek there with no generator resume state? */
bool
streamCovers(const std::shared_ptr<const CompiledTrace> &trace,
             InstCount pos)
{
    return trace && pos <= trace->size();
}

/** Fill the summary fields every run shape shares: the accumulated
 *  measurement-window deltas plus the cumulative end-of-run rates. */
void
fillSummary(RunResult &r, const Core &core, const StatSnapshot &d)
{
    r.cycles = d.cycles;
    r.insts = d.insts;
    r.ipc = r.cycles ? double(r.insts) / double(r.cycles) : 0.0;

    const double kilo = double(r.insts) / 1000.0;
    r.condMpki = kilo > 0 ? double(d.condMispredicts) / kilo : 0;
    r.branchMpki =
        kilo > 0
            ? double(d.condMispredicts + d.targetMispredicts) / kilo
            : 0;

    r.execFlushes = d.execFlushes;
    r.memOrderFlushes = d.memOrderFlushes;
    r.decodeResteers = d.decodeResteers;
    r.divergenceFlushes = d.divergenceFlushes;
    r.pendingFlushWaits = core.stats().pendingFlushWaits;

    r.btbHitL0 = core.btb().cumulativeHitRate(0);
    r.btbHitL1 = core.btb().cumulativeHitRate(1);
    r.btbHitL2 = core.btb().cumulativeHitRate(2);

    const auto &l0i = core.memory().l0i();
    r.l0iMissRate = l0i.accesses()
                        ? double(l0i.misses()) / double(l0i.accesses())
                        : 0;
    r.l1dMpki = kilo > 0 ? double(d.l1dMisses) / kilo : 0;

    r.wrongPathInsts = core.supply().wrongPathInsts();
    r.instPrefetches = core.elf().stats().instPrefetches;

    r.avgRedirectToFetch =
        d.redirectToFetchCount
            ? double(d.redirectToFetchTotal) /
                  double(d.redirectToFetchCount)
            : 0.0;

    r.avgCoupledInsts = core.elf().stats().avgCoupledInstsPerPeriod();
    r.coupledPeriods = core.elf().stats().coupledPeriods;
    r.coupledCommittedFrac =
        r.insts ? double(d.coupledCommitted) / double(r.insts) : 0;
}

/**
 * Sampled execution: partition the total instruction budget into
 * periods of P instructions, run W unmeasured + L measured detailed
 * instructions at the *start* of each period, fast-forward
 * (functional warming) across the remainder, and extrapolate.
 *
 * Window placement is stratified random: each period draws a
 * deterministic pseudo-random offset in [0, P-W-L] for its detailed
 * window and fast-forwards around it. Fixed anchoring is measurably
 * biased here — end-anchored windows never measure the cold-start
 * region at all (IPC estimate biased high on short streams),
 * start-anchored ones extrapolate the coldest slice to a whole period
 * (biased low), and any fixed offset can resonate with periodic phase
 * behavior. Random placement within each stratum is unbiased for the
 * stream average and is what makes the CLT error bound on the
 * per-window IPC spread actually valid. The offset stream is seeded
 * from the schedule alone, so a re-run of the same (program, config,
 * schedule) measures identical positions — results stay bit-exact
 * reproducible and checkpoints keep hitting.
 *
 * Warm-state checkpoints at each detailed-window start are
 * restored/saved through the CheckpointStore, so a re-run of the same
 * (program content, config, schedule) skips every fast-forward.
 */
RunResult
runSampled(const Program &prog, const SimConfig &cfg,
           const RunOptions &opts)
{
    const InstCount P = opts.samplePeriodInsts;
    const InstCount L = opts.sampleLengthInsts;
    const InstCount W = opts.sampleWarmupInsts;
    if (L == 0)
        throw ConfigError("sampled run needs a measured window: "
                          "sample length must be > 0");
    if (W + L > P)
        throw ConfigError(
            "sampling schedule does not fit: sample warmup (" +
            std::to_string(W) + ") + length (" + std::to_string(L) +
            ") exceed the period (" + std::to_string(P) + ")");
    if (opts.intervalInsts > 0)
        throw ConfigError("interval timeline capture and sampled "
                          "execution are mutually exclusive");
    const std::uint64_t windows =
        (opts.warmupInsts + opts.measureInsts) / P;
    if (windows == 0)
        throw ConfigError(
            "total instruction budget (" +
            std::to_string(opts.warmupInsts + opts.measureInsts) +
            ") smaller than one sampling period (" +
            std::to_string(P) + ")");

    const InstCount ffInsts = P - W - L;
    const std::uint64_t cfgFp = configFingerprint(cfg);
    CheckpointStore &store = CheckpointStore::instance();

    // Back the stream with a compiled trace so fast-forward runs the
    // batch warming kernel over the compiled prefix instead of the
    // scalar per-instruction loop (state-identical either way). The
    // acquisition is capped — streams longer than the cap warm their
    // tail scalar — and a no-op when trace compilation is disabled.
    std::shared_ptr<const CompiledTrace> trace = opts.trace;
    if (!trace)
        trace = TraceCache::instance().acquire(
            prog, std::min(opts.warmupInsts + opts.measureInsts,
                           maxSampledTraceInsts));

    // Two attempts: the second only runs if a checkpoint passed every
    // artifact-level check yet its payload failed mid-restore (layout
    // drift), leaving the core half-loaded. That run restarts from
    // scratch with checkpoints disabled — correctness never depends
    // on the cache.
    for (int attempt = 0; attempt < 2; ++attempt) {
        const bool useCkpts = attempt == 0 && store.usable();
        Core core(cfg, prog, trace);
        // Per-window placement offsets; re-seeded per attempt so a
        // checkpoint-pollution restart measures the same positions.
        Rng offsetRng(mix64(P, mix64(L, W)));

        StatSnapshot acc{};
        std::vector<IntervalSample> timeline;
        std::vector<double> ipcs;
        timeline.reserve(windows);
        ipcs.reserve(windows);
        std::uint64_t ckptHits = 0, ckptMisses = 0, ckptSaves = 0;
        std::uint64_t ffTotal = 0; ///< insts fast-forwarded (coherence
                                   ///< witness for the warm counters)
        bool polluted = false;

        for (std::uint64_t w = 0; w < windows; ++w) {
            const InstCount offset =
                ffInsts ? InstCount(offsetRng.below(ffInsts + 1)) : 0;
            const InstCount detailedStart = w * P + offset;
            // Quiesce: drop in-flight work, keep only warm state.
            core.squashToCommitted();

            // A W+L == P schedule has no fast-forward to skip and so
            // never benefits from an artifact.
            const bool ckptHere =
                useCkpts && detailedStart > 0 && ffInsts > 0;
            bool restored = false;
            std::uint64_t key = 0;
            if (ckptHere) {
                key = CheckpointStore::key(prog, cfgFp, P, L, W,
                                           detailedStart);
                std::vector<std::uint8_t> payload;
                if (store.load(prog.name(), key, detailedStart,
                               payload)) {
                    bool coreTouched = false;
                    try {
                        Deserializer d(payload);
                        const bool hasGen = d.boolean();
                        OracleGen gen;
                        if (hasGen)
                            gen.loadState(d);
                        if (hasGen ||
                            streamCovers(trace, detailedStart)) {
                            coreTouched = true;
                            core.loadWarmState(
                                d, detailedStart,
                                hasGen ? &gen : nullptr);
                            restored = true;
                        }
                        // else: artifact carries no generator resume
                        // state and no trace covers the position —
                        // unusable here; fast-forward instead.
                    } catch (const ParseError &e) {
                        if (coreTouched) {
                            // Checksum passed but the layout drifted
                            // mid-load: the core is polluted. Restart
                            // the whole run without checkpoints.
                            ELFSIM_WARN(
                                "checkpoint restore failed mid-load "
                                "(%s); restarting run without "
                                "checkpoints", e.what());
                            polluted = true;
                        } else {
                            ELFSIM_WARN(
                                "checkpoint payload unusable (%s); "
                                "falling back to fast-forward",
                                e.what());
                        }
                    }
                }
            }
            if (polluted)
                break;

            if (restored) {
                ++ckptHits;
            } else {
                if (ckptHere)
                    ++ckptMisses;
                ELFSIM_ASSERT(core.consumedInsts() <= detailedStart,
                              "sampled run overran the window start");
                if (detailedStart > core.consumedInsts()) {
                    ffTotal += detailedStart - core.consumedInsts();
                    core.fastForward(detailedStart -
                                     core.consumedInsts());
                }
                if (ckptHere) {
                    Serializer s;
                    // Persist the generator resume state only when it
                    // is live *and* needed: inside a compiled prefix
                    // the reseek is array-backed.
                    const bool hasGen =
                        core.ffResumeStateValid() &&
                        !streamCovers(trace, detailedStart);
                    s.boolean(hasGen);
                    if (hasGen)
                        core.ffResumeState().saveState(s);
                    core.saveWarmState(s);
                    store.save(prog.name(), key, detailedStart,
                               s.data());
                    ++ckptSaves;
                }
            }

            // Detailed window: unmeasured pipeline warmup, then the
            // measured interval. Both also warm predictors/caches.
            core.run(W);
            const StatSnapshot start = StatSnapshot::capture(core);
            core.run(L);
            const StatSnapshot d =
                StatSnapshot::capture(core).delta(start);
            accumulate(acc, d);
            timeline.push_back(makeSample(d, detailedStart + W));
            ipcs.push_back(timeline.back().ipc);
        }
        if (polluted)
            continue;

        RunResult r;
        r.workload = prog.name();
        r.variant = variantName(cfg.variant);
        fillSummary(r, core, acc);

        // One timeline row per measured window, so the tiling
        // invariants (sum of row insts == r.insts, cycles likewise)
        // hold exactly as they do for interval capture.
        r.intervalInsts = L;
        r.timeline = std::move(timeline);

        r.sampled = true;
        r.sampling.periodInsts = P;
        r.sampling.lengthInsts = L;
        r.sampling.warmupInsts = W;
        r.sampling.windows = windows;
        r.sampling.totalInsts = windows * P;
        r.sampling.measuredInsts = acc.insts;
        r.sampling.ipcRelErr95 =
            relErr95(ipcs, double(ffInsts) / double(P));
        r.sampling.estTotalCycles =
            acc.insts ? double(acc.cycles) *
                            double(r.sampling.totalInsts) /
                            double(acc.insts)
                      : 0.0;
        r.sampling.ckptHits = ckptHits;
        r.sampling.ckptMisses = ckptMisses;
        r.sampling.ckptSaves = ckptSaves;

        // Functional-warming work split (counted on the core; the
        // independent ffTotal witnesses kernel + scalar == ff).
        const WarmStats &wd = core.warmStats();
        r.sampling.warmKernelInsts = wd.kernelInsts;
        r.sampling.warmScalarInsts = wd.scalarInsts;
        r.sampling.warmBranchEvents = wd.branchEvents;
        r.sampling.warmLinesTouched = wd.linesTouched;
        r.sampling.warmFfInsts = ffTotal;
        recordWarmStats(wd);
        return r;
    }
    throw ParseError("sampled run failed twice; checkpoint store and "
                     "fallback both unusable");
}

} // namespace

StatSnapshot
StatSnapshot::capture(const Core &core)
{
    StatSnapshot s;
    s.cycles = core.cycles();
    s.insts = core.committed();
    s.condMispredicts = core.backend().stats().condMispredicts;
    s.targetMispredicts = core.backend().stats().targetMispredicts;
    s.execFlushes = core.stats().execFlushes;
    s.memOrderFlushes = core.stats().memOrderFlushes;
    s.decodeResteers = core.stats().decodeResteers;
    s.divergenceFlushes = core.stats().divergenceFlushes;
    s.coupledCommitted = core.backend().stats().coupledCommitted;
    s.l1dMisses = core.memory().l1d().misses();
    s.redirectToFetchTotal = core.stats().redirectToFetchTotal;
    s.redirectToFetchCount = core.stats().redirectToFetchCount;
    return s;
}

StatSnapshot
StatSnapshot::delta(const StatSnapshot &since) const
{
    StatSnapshot d;
    d.cycles = cycles - since.cycles;
    d.insts = insts - since.insts;
    d.condMispredicts = condMispredicts - since.condMispredicts;
    d.targetMispredicts = targetMispredicts - since.targetMispredicts;
    d.execFlushes = execFlushes - since.execFlushes;
    d.memOrderFlushes = memOrderFlushes - since.memOrderFlushes;
    d.decodeResteers = decodeResteers - since.decodeResteers;
    d.divergenceFlushes = divergenceFlushes - since.divergenceFlushes;
    d.coupledCommitted = coupledCommitted - since.coupledCommitted;
    d.l1dMisses = l1dMisses - since.l1dMisses;
    d.redirectToFetchTotal =
        redirectToFetchTotal - since.redirectToFetchTotal;
    d.redirectToFetchCount =
        redirectToFetchCount - since.redirectToFetchCount;
    return d;
}

RunResult
runSimulation(const Program &prog, const SimConfig &cfg,
              const RunOptions &opts)
{
    if (opts.sampled())
        return runSampled(prog, cfg, opts);
    if (opts.sampleLengthInsts > 0 || opts.sampleWarmupInsts > 0)
        throw ConfigError("sample length/warmup require a sample "
                          "period");

    // The trace only needs to cover the committed-instruction budget;
    // fetch-ahead past it falls through to the lazy tail, which is
    // stream-identical by construction.
    std::shared_ptr<const CompiledTrace> trace = opts.trace;
    if (!trace)
        trace = TraceCache::instance().acquire(
            prog, opts.warmupInsts + opts.measureInsts);
    Core core(cfg, prog, std::move(trace));

    // Warmup: predictors, BTB, and caches train; stats that matter
    // are measured as deltas across the measurement window.
    core.run(opts.warmupInsts);
    const StatSnapshot warm = StatSnapshot::capture(core);

    std::vector<IntervalSample> timeline;
    if (opts.intervalInsts > 0 && opts.measureInsts > 0) {
        // Tick the same absolute instruction target as the one-shot
        // path below, pausing every intervalInsts commits to snapshot
        // a delta row. Core::run is resumable, so the chunked run is
        // cycle-for-cycle identical to the unsampled one.
        const InstCount target = core.committed() + opts.measureInsts;
        StatSnapshot prev = warm;
        while (core.committed() < target) {
            const InstCount chunk = std::min<InstCount>(
                opts.intervalInsts, target - core.committed());
            core.run(chunk);
            const StatSnapshot now = StatSnapshot::capture(core);
            timeline.push_back(
                makeSample(now.delta(prev), prev.insts - warm.insts));
            prev = now;
        }
    } else {
        core.run(opts.measureInsts);
    }
    const StatSnapshot d = StatSnapshot::capture(core).delta(warm);

    RunResult r;
    r.workload = prog.name();
    r.variant = variantName(cfg.variant);
    fillSummary(r, core, d);

    r.intervalInsts = opts.intervalInsts;
    r.timeline = std::move(timeline);

    return r;
}

RunResult
runVariant(const Program &prog, FrontendVariant variant,
           const RunOptions &opts)
{
    return runSimulation(prog, makeConfig(variant), opts);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        ELFSIM_ASSERT(x > 0, "geomean of non-positive value");
        logSum += std::log(x);
    }
    return std::exp(logSum / double(xs.size()));
}

} // namespace elfsim
