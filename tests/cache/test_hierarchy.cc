#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

using namespace elfsim;

TEST(MemHierarchy, DefaultsMatchTableII)
{
    MemHierarchy h;
    EXPECT_EQ(h.l0i().config().sizeBytes, 24u * 1024);
    EXPECT_EQ(h.l0i().config().assoc, 3u);
    EXPECT_EQ(h.l0i().config().hitLatency, 1u);
    EXPECT_EQ(h.l0i().config().interleaves, 2u);
    EXPECT_EQ(h.l1i().config().sizeBytes, 64u * 1024);
    EXPECT_EQ(h.l1i().config().hitLatency, 3u);
    EXPECT_EQ(h.l1d().config().sizeBytes, 32u * 1024);
    EXPECT_EQ(h.l2().config().sizeBytes, 512u * 1024);
    EXPECT_EQ(h.l2().config().hitLatency, 13u);
    EXPECT_EQ(h.l2().config().lineBytes, 128u);
    EXPECT_EQ(h.l3().config().sizeBytes, 16u * 1024 * 1024);
    EXPECT_EQ(h.l3().config().hitLatency, 35u);
}

TEST(MemHierarchy, InstFetchWarmsL0)
{
    MemHierarchy h;
    const Cycle cold = h.instFetch(0x400000, 0);
    EXPECT_GT(cold, 250u); // goes to memory
    const Cycle warm = h.instFetch(0x400000, cold + 1);
    EXPECT_EQ(warm, 1u);
}

TEST(MemHierarchy, InstPrefetchHidesLatency)
{
    MemHierarchy h;
    h.prefetchInst(0x400100, 0);
    // Well after the fill completes, the demand fetch is an L0 hit.
    EXPECT_TRUE(h.l0iReady(0x400100, 1000));
    EXPECT_EQ(h.instFetch(0x400100, 1000), 1u);
}

TEST(MemHierarchy, DataAccessSeparateFromInstSide)
{
    MemHierarchy h;
    h.dataAccess(0x400000, 0x10000000, false, 0);
    // The I-side never saw that line.
    EXPECT_FALSE(h.l0i().present(0x10000000));
    EXPECT_TRUE(h.l1d().present(0x10000000));
    // Both share L2.
    EXPECT_TRUE(h.l2().present(0x10000000));
}

TEST(MemHierarchy, StridePrefetcherKicksIn)
{
    MemHierarchy h;
    // March a strided stream from one PC; after training, lines ahead
    // should be present in L1D before demand touches them.
    const Addr pc = 0x400020;
    Addr a = 0x20000000;
    Cycle now = 0;
    for (int i = 0; i < 8; ++i) {
        h.dataAccess(pc, a, false, now);
        a += 64;
        now += 300;
    }
    EXPECT_GT(h.stridePrefetcher()->issued(), 0u);
    // The next strided line should already be present.
    EXPECT_TRUE(h.l1d().present(a));
}

TEST(MemHierarchy, NoPrefetchWhenDisabled)
{
    MemHierarchyParams p;
    p.dataPrefetch = false;
    MemHierarchy h(p);
    EXPECT_EQ(h.stridePrefetcher(), nullptr);
}

TEST(StridePrefetcher, RandomStreamDoesNotTrigger)
{
    MemHierarchy h;
    const Addr pc = 0x400040;
    Cycle now = 0;
    // Irregular strides: confidence never saturates.
    const Addr seq[] = {0x30000000, 0x30004040, 0x30000780, 0x30003000,
                        0x30001980, 0x30006540};
    for (Addr a : seq) {
        h.dataAccess(pc, a, false, now);
        now += 300;
    }
    EXPECT_EQ(h.stridePrefetcher()->issued(), 0u);
}
