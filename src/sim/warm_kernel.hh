/**
 * @file
 * Batch functional-warming kernel statistics.
 *
 * The kernel itself is Core::warmKernel (warm_kernel.cc): it replays
 * a window of the compiled-trace SoA through the warm structures —
 * predictors, BTB hierarchy, caches — using the elfsim-trace-v2
 * warming side tables (branch events, sequential runs, memory
 * events) instead of the scalar per-instruction loop, with
 * bit-identical training semantics (see DESIGN.md, "Batch warming
 * kernel"). This header carries the counters it reports and the
 * process-wide accumulator the sweep timing summary reads.
 */

#ifndef ELFSIM_SIM_WARM_KERNEL_HH
#define ELFSIM_SIM_WARM_KERNEL_HH

#include <cstdint>

namespace elfsim {

/**
 * Functional-warming work counters. Per-core instances accumulate
 * across fastForward() calls; recordWarmStats() folds per-run deltas
 * into a process-wide instance for the sweep timing summary.
 *
 * Every field except kernelSeconds is deterministic for a given
 * (workload, schedule) — they are exported per result row.
 * kernelSeconds is wall-clock and stays process-wide only, so result
 * JSON remains byte-identical across thread counts and machines.
 */
struct WarmStats
{
    std::uint64_t kernelInsts = 0;   ///< insts warmed by the kernel
    std::uint64_t scalarInsts = 0;   ///< insts warmed by the scalar loop
    std::uint64_t branchEvents = 0;  ///< branch events replayed
    std::uint64_t linesTouched = 0;  ///< I-side line fetches issued
    double kernelSeconds = 0.0;      ///< wall time inside the kernel

    void
    add(const WarmStats &o)
    {
        kernelInsts += o.kernelInsts;
        scalarInsts += o.scalarInsts;
        branchEvents += o.branchEvents;
        linesTouched += o.linesTouched;
        kernelSeconds += o.kernelSeconds;
    }

    /** This instance minus @a since (counters are monotonic). */
    WarmStats
    delta(const WarmStats &since) const
    {
        WarmStats d;
        d.kernelInsts = kernelInsts - since.kernelInsts;
        d.scalarInsts = scalarInsts - since.scalarInsts;
        d.branchEvents = branchEvents - since.branchEvents;
        d.linesTouched = linesTouched - since.linesTouched;
        d.kernelSeconds = kernelSeconds - since.kernelSeconds;
        return d;
    }
};

/** Fold a per-run delta into the process-wide accumulator
 *  (thread-safe — sweep jobs run concurrently). */
void recordWarmStats(const WarmStats &d);

/** Snapshot of the process-wide accumulator. */
WarmStats processWarmStats();

} // namespace elfsim

#endif // ELFSIM_SIM_WARM_KERNEL_HH
