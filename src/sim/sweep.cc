#include "sim/sweep.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "sim/export.hh"

namespace elfsim {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

SweepJob
makeVariantJob(const Program &prog, FrontendVariant variant,
               const RunOptions &opts)
{
    SweepJob j;
    j.program = &prog;
    j.cfg = makeConfig(variant);
    j.opts = opts;
    return j;
}

unsigned
SweepRunner::resolveJobs(unsigned requested)
{
    if (requested)
        return requested;
    if (const char *env = std::getenv("ELFSIM_JOBS")) {
        const unsigned long n = std::strtoul(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
    }
    return ThreadPool::hardwareThreads();
}

SweepRunner::SweepRunner(unsigned threads)
    : threads(resolveJobs(threads))
{
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepJob> &grid)
{
    std::vector<RunResult> results(grid.size());
    jobSeconds.assign(grid.size(), 0.0);

    const auto sweepStart = std::chrono::steady_clock::now();

    auto runOne = [&](std::size_t i) {
        SweepJob job = grid[i];
        if (baseSeed)
            job.cfg.rngSeed = mix64(baseSeed, i + 1);
        const auto jobStart = std::chrono::steady_clock::now();
        results[i] = runSimulation(*job.program, job.cfg, job.opts);
        jobSeconds[i] = secondsSince(jobStart);
    };

    if (threads <= 1 || grid.size() <= 1) {
        for (std::size_t i = 0; i < grid.size(); ++i)
            runOne(i);
    } else {
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < grid.size(); ++i)
            pool.submit([&runOne, i] { runOne(i); });
        pool.wait();
    }

    lastTiming = SweepTiming{};
    lastTiming.jobs = static_cast<unsigned>(grid.size());
    lastTiming.threads = threads;
    lastTiming.wallSeconds = secondsSince(sweepStart);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        lastTiming.serialSeconds += jobSeconds[i];
        lastTiming.simCycles += results[i].cycles;
        lastTiming.simInsts += results[i].insts;
    }
    lastResults = results;
    return results;
}

namespace {

std::ofstream
openOrDie(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        ELFSIM_PANIC("cannot open '%s' for writing", path.c_str());
    return os;
}

} // namespace

void
SweepRunner::writeJson(const std::string &path) const
{
    std::ofstream os = openOrDie(path);
    writeSweepJson(os, lastResults, &lastTiming);
}

void
SweepRunner::writeCsv(const std::string &path) const
{
    std::ofstream os = openOrDie(path);
    writeResultsCsv(os, lastResults);

    bool anyTimeline = false;
    for (const RunResult &r : lastResults)
        anyTimeline = anyTimeline || !r.timeline.empty();
    if (!anyTimeline)
        return;

    std::string tpath = path;
    const std::string suffix = ".csv";
    if (tpath.size() >= suffix.size() &&
        tpath.compare(tpath.size() - suffix.size(), suffix.size(),
                      suffix) == 0) {
        tpath.resize(tpath.size() - suffix.size());
    }
    tpath += ".timeline.csv";
    std::ofstream ts = openOrDie(tpath);
    writeTimelineCsv(ts, lastResults);
}

void
SweepRunner::printTimingSummary(std::ostream &os) const
{
    const SweepTiming &t = lastTiming;
    stats::StatGroup g("sweep");
    g.addCounter("jobs", "grid cells simulated") += t.jobs;
    g.addCounter("threads", "worker threads") += t.threads;
    g.addFormula("wall_seconds", "whole-sweep wall-clock",
                 [&t] { return t.wallSeconds; });
    g.addFormula("serial_seconds", "sum of per-job wall-clocks",
                 [&t] { return t.serialSeconds; });
    g.addFormula("speedup", "serial_seconds / wall_seconds",
                 [&t] { return t.speedup(); });
    g.addCounter("sim_cycles", "aggregate measured cycles") +=
        t.simCycles;
    g.addCounter("sim_insts", "aggregate measured instructions") +=
        t.simInsts;
    g.addFormula("sim_cycles_per_second",
                 "simulated cycles per wall-clock second",
                 [&t] { return t.cyclesPerSecond(); });
    stats::Distribution &d =
        g.addDistribution("job_seconds", "per-job wall-clock");
    for (double s : jobSeconds)
        d.sample(s);
    g.dump(os);
}

} // namespace elfsim
