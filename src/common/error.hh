/**
 * @file
 * Structured simulation errors.
 *
 * The fatal()/panic() reporting in logging.hh kills the whole process,
 * which is the right behavior for a single run but destroys all
 * completed work when one cell of a 90-job sweep grid goes bad. This
 * header gives every failure a type, so the sweep engine can catch a
 * per-job error, record it as a JobStatus on the cell's RunResult, and
 * keep the rest of the grid running:
 *
 *   - ConfigError     user error (bad option, bad fault spec)
 *   - IoError         filesystem failure (export target, manifest)
 *   - ParseError      malformed JSON (resume manifests)
 *   - InternalError   simulator invariant violation (recoverable
 *                     panic; see setPanicThrows in logging.hh)
 *   - TimeoutError    watchdog: wall-clock deadline or progress stall
 *   - CancelledError  cooperative cancellation (SIGINT)
 *   - TransientError  retry-eligible failure (bounded retry policy)
 *   - InjectedError   raised by the fault-injection harness
 *
 * JobStatus is the per-cell outcome those errors map onto in the
 * elfsim-results-v2 export schema.
 */

#ifndef ELFSIM_COMMON_ERROR_HH
#define ELFSIM_COMMON_ERROR_HH

#include <stdexcept>
#include <string>
#include <string_view>

namespace elfsim {

/** Failure classification carried by every SimError. */
enum class ErrorKind
{
    Config,    ///< user error: bad option / spec / parameter
    Io,        ///< filesystem or stream failure
    Parse,     ///< malformed structured input (JSON)
    Internal,  ///< simulator invariant violation (recoverable panic)
    Timeout,   ///< watchdog deadline or progress stall
    Cancelled, ///< cooperative cancellation (interrupt)
    Transient, ///< retry-eligible failure
    Injected,  ///< raised by the fault-injection harness
};

/** Stable lower-case name of an ErrorKind ("config", "timeout", ...). */
const char *errorKindName(ErrorKind k);

/** Base of the typed error hierarchy. */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorKind kind, const std::string &msg)
        : std::runtime_error(msg), errKind(kind)
    {
    }

    ErrorKind kind() const { return errKind; }

    /** Eligible for the sweep engine's bounded retry policy? */
    bool retryable() const { return errKind == ErrorKind::Transient; }

  private:
    ErrorKind errKind;
};

#define ELFSIM_DEFINE_ERROR(Name, Kind)                                \
    class Name : public SimError                                       \
    {                                                                  \
      public:                                                          \
        explicit Name(const std::string &msg)                          \
            : SimError(ErrorKind::Kind, msg)                           \
        {                                                              \
        }                                                              \
    }

ELFSIM_DEFINE_ERROR(ConfigError, Config);
ELFSIM_DEFINE_ERROR(IoError, Io);
ELFSIM_DEFINE_ERROR(ParseError, Parse);
ELFSIM_DEFINE_ERROR(InternalError, Internal);
ELFSIM_DEFINE_ERROR(TimeoutError, Timeout);
ELFSIM_DEFINE_ERROR(CancelledError, Cancelled);
ELFSIM_DEFINE_ERROR(TransientError, Transient);
ELFSIM_DEFINE_ERROR(InjectedError, Injected);

#undef ELFSIM_DEFINE_ERROR

/** printf-style formatting into a std::string (error messages). */
std::string errorf(const char *fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/**
 * Outcome of one sweep cell, exported as the "status" field of the
 * elfsim-results-v2 schema. Anything but Ok means the cell's metrics
 * are absent (zeroed) and "error" carries the detail.
 */
enum class JobStatus
{
    Ok,        ///< completed normally (possibly after retries)
    Failed,    ///< threw (invariant violation, injected throw, ...)
    Timeout,   ///< watchdog-cancelled: deadline or progress stall
    Cancelled, ///< interrupted before/while running (SIGINT)
};

/** Stable schema name of a JobStatus ("ok", "failed", ...). */
const char *jobStatusName(JobStatus s);

/** Inverse of jobStatusName; returns false on an unknown name. */
bool parseJobStatus(std::string_view name, JobStatus &out);

/** Map the error that killed a job to its cell status. */
JobStatus jobStatusForError(const SimError &e);

} // namespace elfsim

#endif // ELFSIM_COMMON_ERROR_HH
