#!/usr/bin/env python3
"""Validate elfsim-results-v2 JSON artifacts.

Usage:
    scripts/check_results.py FILE [FILE ...]
        Schema-check each exported results document. Any cell whose
        "status" is not "ok" fails the check unless --allow-failed N
        grants that many non-ok cells per document.

    scripts/check_results.py --compare A B
        Assert two documents carry identical simulated results,
        ignoring the wall-clock-dependent "timing" and "trace"
        blocks and each result's "sampling" block (its ckpt_* counters
        depend on checkpoint-cache warmth, not on the simulation).
        Use this to confirm --jobs 1 and --jobs N exports of the same
        grid match.

    scripts/check_results.py --throughput FILE [--baseline BASE]
        Schema-check an elfsim-throughput-v1 document (written by
        bench_throughput). With --baseline, additionally fail if
        geomean simulated MIPS regressed more than 10% versus the
        committed baseline document.

    scripts/check_results.py --spec FILE [FILE ...]
        Schema-check elfsim-sweepspec-v1 documents (a bench's
        --dump-spec archive, or a request body for elfsimd).

    scripts/check_results.py --stream FILE [FILE ...]
        Validate a possibly-truncated elfsim-results-v2 stream, as
        captured from an interrupted `POST /sweep` response: the
        prefix up to the last complete result object must be a valid
        document. A complete stream gets the full results check.

    scripts/check_results.py --ledger FILE [FILE ...]
        Validate an elfsim-ledger-v1 lease ledger (the distributed
        coordinator's scheduling journal, --ledger on elfsim_coord):
        every line must be a well-formed lease/expire event or an
        elfsim-manifest-v1 completion line. A torn final line is
        tolerated (a crash mid-append); torn interior lines are not.
        The lease/expire replay must also cohere: no cell may be
        leased twice without an intervening expire, an expire needs
        an active lease to expire, and every expired lease must be
        resolved — requeued under a later lease, or completed by a
        manifest line. Hedge lines ("hedge": true) are redundant
        racers and exempt from the overlap rules. Leases still
        active at end of file are fine (a crash tolerates them).

Exits non-zero on the first violation. Stdlib only.
"""

import argparse
import json
import sys

SCHEMA = "elfsim-results-v2"
THROUGHPUT_SCHEMA = "elfsim-throughput-v1"
LEDGER_SCHEMA = "elfsim-ledger-v1"
MANIFEST_SCHEMA = "elfsim-manifest-v1"
# A >10% geomean-MIPS drop vs the committed baseline fails the gate;
# smaller swings are host noise.
REGRESSION_TOLERANCE = 0.10

THROUGHPUT_STR_FIELDS = ("workload", "variant")
THROUGHPUT_NUM_FIELDS = (
    "wall_seconds", "sim_insts", "sim_cycles", "mips",
    "cycles_per_host_us",
)

# Per-result scalar fields (RunResult::forEachField order).
RESULT_STR_FIELDS = ("workload", "variant", "error")
RESULT_NUM_FIELDS = (
    "cycles", "insts", "ipc", "branch_mpki", "cond_mpki",
    "exec_flushes", "mem_order_flushes", "decode_resteers",
    "divergence_flushes", "btb_hit_l0", "btb_hit_l1", "btb_hit_l2",
    "l0i_miss_rate", "l1d_mpki", "wrong_path_insts", "inst_prefetches",
    "avg_redirect_to_fetch", "avg_coupled_insts", "coupled_periods",
    "coupled_committed_frac", "pending_flush_waits", "attempts",
)
# v2 per-result status (sim/export.hh); non-ok cells carry zeroed
# metrics and a non-empty "error".
RESULT_STATUSES = ("ok", "failed", "timeout", "cancelled")
TIMELINE_FIELDS = (
    "start_inst", "insts", "cycles", "ipc", "cond_mispredicts",
    "target_mispredicts", "exec_flushes", "mem_order_flushes",
    "decode_resteers", "divergence_flushes", "coupled_frac",
)
# Optional trace-compilation activity block (sweep-wide, like timing).
TRACE_FIELDS = (
    "compiles", "cache_hits", "cache_misses", "bytes_mapped",
    "compile_seconds",
)
# Optional per-result sampled-execution block (present iff the cell
# ran in sampled mode; sim/runner.hh SamplingInfo).
SAMPLING_FIELDS = (
    "period_insts", "length_insts", "warmup_insts", "windows",
    "total_insts", "measured_insts", "ipc_rel_err_95",
    "est_total_cycles", "ckpt_hits", "ckpt_misses", "ckpt_saves",
    "warm_kernel_insts", "warm_scalar_insts", "warm_branch_events",
    "warm_lines_touched", "warm_ff_insts",
)


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_document(path, doc, allow_failed=0, quiet=False):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(path, f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(path, "missing or empty 'results' array")

    n_not_ok = 0
    for i, r in enumerate(results):
        where = f"results[{i}]"
        for k in RESULT_STR_FIELDS:
            if not isinstance(r.get(k), str):
                fail(path, f"{where}.{k} missing or not a string")
        for k in RESULT_NUM_FIELDS:
            if not isinstance(r.get(k), (int, float)):
                fail(path, f"{where}.{k} missing or not a number")
        status = r.get("status")
        if status not in RESULT_STATUSES:
            fail(path, f"{where}.status is {status!r}, expected one of "
                       f"{RESULT_STATUSES}")
        ok = status == "ok"
        if ok and r["error"]:
            fail(path, f"{where}: ok cell carries an error string")
        if ok and r["attempts"] < 1:
            fail(path, f"{where}: ok cell with attempts < 1")
        if not ok:
            n_not_ok += 1
            if not r["error"]:
                fail(path, f"{where}: {status} cell without an error")
        interval = r.get("interval_insts")
        timeline = r.get("timeline")
        if not isinstance(interval, int) or not isinstance(timeline, list):
            fail(path, f"{where}: bad interval_insts/timeline")
        if not ok:
            # A degraded cell carries no metrics; the tiling
            # invariants below only hold for completed runs.
            continue
        if interval > 0 and r["insts"] > 0 and not timeline:
            fail(path, f"{where}: interval sampling on but timeline empty")
        if interval == 0 and timeline:
            fail(path, f"{where}: timeline present without interval_insts")
        for j, row in enumerate(timeline):
            for k in TIMELINE_FIELDS:
                if not isinstance(row.get(k), (int, float)):
                    fail(path, f"{where}.timeline[{j}].{k} missing")
        if timeline:
            # The samples must tile the measurement window exactly.
            if sum(row["insts"] for row in timeline) != r["insts"]:
                fail(path, f"{where}: timeline insts do not sum to insts")
            if sum(row["cycles"] for row in timeline) != r["cycles"]:
                fail(path, f"{where}: timeline cycles do not sum to cycles")

        sampling = r.get("sampling")
        if sampling is not None:
            for k in SAMPLING_FIELDS:
                if not isinstance(sampling.get(k), (int, float)):
                    fail(path, f"{where}.sampling.{k} missing")
                if sampling[k] < 0:
                    fail(path, f"{where}.sampling.{k} is negative")
            if sampling["windows"] < 1:
                fail(path, f"{where}.sampling: no measured windows")
            if (sampling["length_insts"] == 0 or
                    sampling["warmup_insts"] + sampling["length_insts"]
                    > sampling["period_insts"]):
                fail(path, f"{where}.sampling: schedule does not fit "
                           "its period")
            if (sampling["total_insts"] !=
                    sampling["windows"] * sampling["period_insts"]):
                fail(path, f"{where}.sampling: total_insts is not "
                           "windows * period_insts")
            if sampling["measured_insts"] != r["insts"]:
                fail(path, f"{where}.sampling: measured_insts does "
                           "not match the result's insts")
            if (sampling["warm_kernel_insts"] +
                    sampling["warm_scalar_insts"]
                    != sampling["warm_ff_insts"]):
                fail(path, f"{where}.sampling: warm kernel/scalar "
                           "split does not sum to the fast-forward "
                           "total")
            if interval != sampling["length_insts"]:
                fail(path, f"{where}: interval_insts does not match "
                           "the sample length")
            if len(timeline) != sampling["windows"]:
                fail(path, f"{where}: one timeline row per measured "
                           "window expected")
            if sampling["est_total_cycles"] < r["cycles"]:
                fail(path, f"{where}.sampling: extrapolated cycles "
                           "below the measured cycles")

    timing = doc.get("timing")
    if timing is not None:
        for k in ("jobs", "threads", "wall_seconds"):
            if not isinstance(timing.get(k), (int, float)):
                fail(path, f"timing.{k} missing or not a number")

    trace = doc.get("trace")
    if trace is not None:
        for k in TRACE_FIELDS:
            if not isinstance(trace.get(k), (int, float)):
                fail(path, f"trace.{k} missing or not a number")
            if trace[k] < 0:
                fail(path, f"trace.{k} is negative")

    if n_not_ok > allow_failed:
        for r in results:
            if r["status"] != "ok":
                print(f"{path}: {r['workload']}/{r['variant']} "
                      f"{r['status']}: {r['error']}", file=sys.stderr)
        fail(path, f"{n_not_ok} cells not ok (allowed {allow_failed})")

    if quiet:
        return
    n_timelines = sum(1 for r in results if r["timeline"])
    note = f", {n_not_ok} not ok" if n_not_ok else ""
    print(f"{path}: OK ({len(results)} results, "
          f"{n_timelines} with timelines{note})")


SPEC_SCHEMA = "elfsim-sweepspec-v1"
SPEC_RUN_FIELDS = (
    "warmup_insts", "measure_insts", "interval_insts",
    "sample_period_insts", "sample_length_insts",
    "sample_warmup_insts",
)
SPEC_POLICY_FIELDS = {
    "keep_going": bool, "deadline_seconds": (int, float),
    "stall_seconds": (int, float), "max_retries": int,
    "manifest_path": str, "resume": bool,
}
# A selector carries exactly one of these keys (plus its modifiers).
SPEC_SELECTOR_KINDS = ("name", "set", "suite", "micro", "synthetic")


def check_spec_run(path, where, run):
    if not isinstance(run, dict):
        fail(path, f"{where} is not an object")
    for k, v in run.items():
        if k not in SPEC_RUN_FIELDS:
            fail(path, f"{where}.{k}: unknown field")
        if not isinstance(v, int) or v < 0:
            fail(path, f"{where}.{k} is not a non-negative integer")
    period = run.get("sample_period_insts", 0)
    length = run.get("sample_length_insts", 0)
    warmup = run.get("sample_warmup_insts", 0)
    if period > 0 and (length == 0 or warmup + length > period):
        fail(path, f"{where}: sampling schedule does not fit its "
                   "period")
    if period == 0 and (length or warmup):
        fail(path, f"{where}: sample length/warmup without a period")


def check_spec_selector(path, where, sel):
    if not isinstance(sel, dict):
        fail(path, f"{where} is not an object")
    kinds = [k for k in SPEC_SELECTOR_KINDS if k in sel]
    if len(kinds) != 1:
        fail(path, f"{where}: need exactly one of "
                   f"{SPEC_SELECTOR_KINDS}, got {kinds}")
    kind = kinds[0]
    if not isinstance(sel[kind], str) or not sel[kind]:
        fail(path, f"{where}.{kind} is not a non-empty string")
    allowed = {kind}
    if kind == "set":
        allowed.add("stride")
    elif kind == "micro":
        allowed.add("args")
    elif kind == "synthetic":
        allowed.update(("params", "seed"))
    for k in sel:
        if k not in allowed:
            fail(path, f"{where}.{k}: unknown field for a "
                       f"'{kind}' selector")
    if "stride" in sel and (not isinstance(sel["stride"], int) or
                            sel["stride"] < 1):
        fail(path, f"{where}.stride is not a positive integer")
    if kind == "micro":
        args = sel.get("args")
        if (not isinstance(args, list) or
                not all(isinstance(a, (int, float)) for a in args)):
            fail(path, f"{where}.args missing or not a number array")
    if kind == "synthetic":
        params = sel.get("params")
        if not isinstance(params, dict):
            fail(path, f"{where}.params missing or not an object")
        for k, v in params.items():
            if not isinstance(v, (int, float)):
                fail(path, f"{where}.params.{k} is not a number")
        if "seed" in sel and not isinstance(sel["seed"], int):
            fail(path, f"{where}.seed is not an integer")


def check_spec_config(path, where, cfg):
    if not isinstance(cfg, dict):
        fail(path, f"{where} is not an object")
    if not isinstance(cfg.get("variant"), str):
        fail(path, f"{where}.variant missing or not a string")
    for k in cfg:
        if k not in ("variant", "label", "overrides"):
            fail(path, f"{where}.{k}: unknown field")
    if "label" in cfg and not isinstance(cfg["label"], str):
        fail(path, f"{where}.label is not a string")
    overrides = cfg.get("overrides", {})
    if not isinstance(overrides, dict):
        fail(path, f"{where}.overrides is not an object")
    for k, v in overrides.items():
        if not isinstance(v, (bool, int, float, str)):
            fail(path, f"{where}.overrides.{k} is not a scalar")


def check_spec_document(path, doc):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != SPEC_SCHEMA:
        fail(path, f"schema is {doc.get('schema')!r}, "
                   f"expected {SPEC_SCHEMA!r}")
    for k in doc:
        if k not in ("schema", "name", "jobs", "base_seed", "run",
                     "policy", "groups", "workloads", "configs"):
            fail(path, f"{k}: unknown top-level field")
    if "name" in doc and not isinstance(doc["name"], str):
        fail(path, "name is not a string")
    for k in ("jobs", "base_seed"):
        if k in doc and (not isinstance(doc[k], int) or doc[k] < 0):
            fail(path, f"{k} is not a non-negative integer")
    if "run" in doc:
        check_spec_run(path, "run", doc["run"])
    if "policy" in doc:
        policy = doc["policy"]
        if not isinstance(policy, dict):
            fail(path, "policy is not an object")
        for k, v in policy.items():
            want = SPEC_POLICY_FIELDS.get(k)
            if want is None:
                fail(path, f"policy.{k}: unknown field")
            # bool is an int subtype in Python; keep them distinct.
            if (not isinstance(v, want) or
                    (want is int and isinstance(v, bool))):
                fail(path, f"policy.{k} has the wrong type")

    groups = doc.get("groups")
    if groups is not None and ("workloads" in doc or
                               "configs" in doc):
        fail(path, "spec mixes top-level workloads/configs with "
                   "explicit groups")
    if groups is None:
        # Shorthand: top-level workloads/configs form one group.
        groups = [{k: doc[k] for k in ("workloads", "configs")
                   if k in doc}]
    if not isinstance(groups, list) or not groups:
        fail(path, "missing or empty 'groups'")
    n_workloads = n_configs = 0
    for gi, g in enumerate(groups):
        where = f"groups[{gi}]"
        if not isinstance(g, dict):
            fail(path, f"{where} is not an object")
        for k in g:
            if k not in ("workloads", "configs", "run"):
                fail(path, f"{where}.{k}: unknown field")
        workloads = g.get("workloads")
        configs = g.get("configs")
        if not isinstance(workloads, list) or not workloads:
            fail(path, f"{where}: missing or empty 'workloads'")
        if not isinstance(configs, list) or not configs:
            fail(path, f"{where}: missing or empty 'configs'")
        for i, sel in enumerate(workloads):
            check_spec_selector(path, f"{where}.workloads[{i}]", sel)
        for i, cfg in enumerate(configs):
            check_spec_config(path, f"{where}.configs[{i}]", cfg)
        if "run" in g:
            check_spec_run(path, f"{where}.run", g["run"])
        n_workloads += len(workloads)
        n_configs += len(configs)
    print(f"{path}: OK (sweepspec {doc.get('name', '')!r}, "
          f"{len(groups)} groups, {n_workloads} workload selectors x "
          f"{n_configs} config rows)")


def check_stream_document(path, text):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if doc is not None:
        check_document(path, doc)
        return
    # Truncated mid-stream: repair by closing the results array after
    # the last complete result object and re-validating the prefix.
    # A stream cut before the first cell completed ends right after
    # the opening of the array — closing it directly handles that.
    try:
        doc = json.loads(text.rstrip().rstrip(",") + "]}")
    except json.JSONDecodeError:
        for i in range(len(text) - 1, -1, -1):
            if text[i] != "}":
                continue
            try:
                doc = json.loads(text[:i + 1] + "]}")
                break
            except json.JSONDecodeError:
                continue
    if doc is None or not isinstance(doc, dict):
        fail(path, "no valid elfsim-results-v2 prefix found")
    if doc.get("schema") != SCHEMA:
        fail(path, f"stream prefix schema is {doc.get('schema')!r}, "
                   f"expected {SCHEMA!r}")
    results = doc.get("results")
    if not isinstance(results, list):
        fail(path, "stream prefix carries no 'results' array")
    if results:
        # The complete prefix must satisfy every per-result invariant
        # (truncated cells may legitimately be failed/cancelled).
        check_document(path, doc, allow_failed=len(results),
                       quiet=True)
    print(f"{path}: OK (truncated stream, {len(results)} complete "
          f"results)")


def check_ledger_line(path, no, obj):
    """One ledger scheduling line ({"ledger": ...}); returns the
    (event, index, hedge) triple for the replay bookkeeping."""
    where = f"line {no}"
    event = obj.get("event")
    if event not in ("lease", "expire"):
        fail(path, f"{where}: ledger event is {event!r}, expected "
                   f"'lease' or 'expire'")
    index = obj.get("index")
    if not isinstance(index, int) or isinstance(index, bool) or index < 0:
        fail(path, f"{where}: index is not a non-negative integer")
    worker = obj.get("worker")
    if not isinstance(worker, str) or not worker:
        fail(path, f"{where}: worker missing or empty")
    hedge = obj.get("hedge", False)
    if not isinstance(hedge, bool):
        fail(path, f"{where}: hedge is not a boolean")
    allowed = {"ledger", "event", "index", "worker", "hedge"}
    if event == "lease":
        key = obj.get("key")
        if not isinstance(key, str) or not key:
            fail(path, f"{where}: lease without a job key")
        secs = obj.get("lease_seconds")
        if not isinstance(secs, int) or isinstance(secs, bool) or secs <= 0:
            fail(path, f"{where}: lease_seconds is not a positive "
                       f"integer")
        allowed |= {"key", "lease_seconds"}
    for k in obj:
        if k not in allowed:
            fail(path, f"{where}: unknown ledger field {k!r}")
    return event, index, hedge


def check_ledger_manifest_line(path, no, obj):
    """One completion line — the exact elfsim-manifest-v1 schema, so
    a ledger doubles as a resume manifest. Returns the cell index."""
    where = f"line {no}"
    index = obj.get("index")
    if not isinstance(index, int) or isinstance(index, bool) or index < 0:
        fail(path, f"{where}: index is not a non-negative integer")
    if not isinstance(obj.get("key"), str) or not obj["key"]:
        fail(path, f"{where}: key missing or empty")
    if obj.get("status") not in RESULT_STATUSES:
        fail(path, f"{where}: status is {obj.get('status')!r}, "
                   f"expected one of {RESULT_STATUSES}")
    if not isinstance(obj.get("result"), dict):
        fail(path, f"{where}: missing 'result' object")
    return index


def check_ledger_file(path, text):
    lines = text.split("\n")
    completed = set()
    outstanding = {}       # index -> line no of the active lease
    unresolved = {}        # index -> line no of an unresolved expire
    n_lease = n_expire = n_hedge = 0
    torn_tail = False
    for no, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if no == len(lines):
                # A crash mid-append tears at most the final line.
                torn_tail = True
                continue
            fail(path, f"line {no}: malformed JSON before the final "
                       f"line (torn interior line)")
        if not isinstance(obj, dict):
            fail(path, f"line {no}: not an object")
        if obj.get("ledger") is not None:
            if obj["ledger"] != LEDGER_SCHEMA:
                fail(path, f"line {no}: ledger schema is "
                           f"{obj['ledger']!r}, expected "
                           f"{LEDGER_SCHEMA!r}")
            event, index, hedge = check_ledger_line(path, no, obj)
            if hedge:
                # A hedge duplicates a cell another worker already
                # holds; it never owns the cell's scheduling state,
                # so it is exempt from the overlap rules.
                n_hedge += 1
                continue
            if event == "lease":
                n_lease += 1
                if index in outstanding:
                    fail(path, f"line {no}: cell {index} leased "
                               f"twice without an intervening expire "
                               f"(active lease at line "
                               f"{outstanding[index]})")
                if index in completed:
                    fail(path, f"line {no}: cell {index} leased "
                               f"after completion")
                # A re-lease is the requeue that resolves an expire.
                unresolved.pop(index, None)
                outstanding[index] = no
            else:
                n_expire += 1
                if index not in outstanding:
                    fail(path, f"line {no}: expire for cell {index} "
                               f"without an active lease")
                outstanding.pop(index)
                unresolved[index] = no
        elif obj.get("manifest") is not None:
            if obj["manifest"] != MANIFEST_SCHEMA:
                fail(path, f"line {no}: manifest schema is "
                           f"{obj['manifest']!r}, expected "
                           f"{MANIFEST_SCHEMA!r}")
            index = check_ledger_manifest_line(path, no, obj)
            completed.add(index)
            outstanding.pop(index, None)
            # A degraded (synth-failed) cell resolves its final
            # expire with a manifest line instead of a requeue.
            unresolved.pop(index, None)
        else:
            fail(path, f"line {no}: neither a ledger event nor a "
                       f"manifest completion line")
    if unresolved:
        index, no = next(iter(unresolved.items()))
        fail(path, f"{len(unresolved)} expired lease(s) neither "
                   f"requeued nor completed (first: cell {index}, "
                   f"expired at line {no})")
    print(f"{path}: OK ({len(completed)} completed cells, "
          f"{n_lease} leases, {n_expire} expiries, "
          f"{n_hedge} hedge lines, {len(outstanding)} outstanding"
          f"{', torn final line' if torn_tail else ''})")


def check_throughput_document(path, doc):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != THROUGHPUT_SCHEMA:
        fail(path, f"schema is {doc.get('schema')!r}, "
                   f"expected {THROUGHPUT_SCHEMA!r}")
    geomean = doc.get("geomean_mips")
    if not isinstance(geomean, (int, float)) or geomean <= 0:
        fail(path, "geomean_mips missing or not positive")
    rows = doc.get("throughput")
    if not isinstance(rows, list) or not rows:
        fail(path, "missing or empty 'throughput' array")
    for i, r in enumerate(rows):
        where = f"throughput[{i}]"
        for k in THROUGHPUT_STR_FIELDS:
            if not isinstance(r.get(k), str):
                fail(path, f"{where}.{k} missing or not a string")
        for k in THROUGHPUT_NUM_FIELDS:
            if not isinstance(r.get(k), (int, float)):
                fail(path, f"{where}.{k} missing or not a number")
        if r["wall_seconds"] <= 0 or r["mips"] <= 0:
            fail(path, f"{where}: non-positive wall_seconds/mips")
    timing = doc.get("timing")
    if not isinstance(timing, dict):
        fail(path, "missing 'timing' block")
    for k in ("jobs", "threads", "wall_seconds"):
        if not isinstance(timing.get(k), (int, float)):
            fail(path, f"timing.{k} missing or not a number")
    # Host metadata (host_cpus / host_jobs) is optional — older
    # documents predate it — but when present it must be sane.
    for k in ("host_cpus", "host_jobs"):
        if k in timing and (not isinstance(timing[k], int)
                            or timing[k] <= 0):
            fail(path, f"timing.{k} is not a positive integer")
    print(f"{path}: OK ({len(rows)} throughput rows, "
          f"geomean {geomean:.3f} MIPS)")


def row_geomean(doc, keys):
    import math
    vals = [r["mips"] for r in doc["throughput"]
            if (r["workload"], r["variant"]) in keys]
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def compare_throughput(base_path, base, new_path, new):
    # Compare geomean MIPS over the rows present in BOTH documents, so
    # a strided smoke run (bench_throughput --stride N) gates against
    # the full-grid committed baseline without bias.
    keys = ({(r["workload"], r["variant"]) for r in base["throughput"]} &
            {(r["workload"], r["variant"]) for r in new["throughput"]})
    if not keys:
        fail(new_path, f"no rows in common with baseline {base_path}")
    old_g, new_g = row_geomean(base, keys), row_geomean(new, keys)
    ratio = new_g / old_g
    if ratio < 1.0 - REGRESSION_TOLERANCE:
        fail(new_path,
             f"geomean MIPS regressed {100 * (1 - ratio):.1f}% over "
             f"{len(keys)} common rows ({old_g:.3f} -> {new_g:.3f}, "
             f"baseline {base_path}); tolerance is "
             f"{100 * REGRESSION_TOLERANCE:.0f}%")
    print(f"baseline: geomean {old_g:.3f} -> {new_g:.3f} MIPS over "
          f"{len(keys)} common rows ({100 * (ratio - 1):+.1f}%) "
          f"within tolerance")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, str(e))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", metavar="FILE")
    ap.add_argument("--compare", action="store_true",
                    help="compare exactly two documents, ignoring "
                         "the 'timing', 'trace' and per-result "
                         "'sampling' blocks")
    ap.add_argument("--throughput", action="store_true",
                    help="validate elfsim-throughput-v1 documents "
                         "instead of results documents")
    ap.add_argument("--spec", action="store_true",
                    help="validate elfsim-sweepspec-v1 documents "
                         "instead of results documents")
    ap.add_argument("--stream", action="store_true",
                    help="validate possibly-truncated elfsim-results-"
                         "v2 streams (elfsimd /sweep captures)")
    ap.add_argument("--ledger", action="store_true",
                    help="validate elfsim-ledger-v1 lease ledgers "
                         "(elfsim_coord scheduling journals)")
    ap.add_argument("--baseline", metavar="BASE",
                    help="with --throughput: fail on a >10%% geomean "
                         "MIPS regression versus this baseline")
    ap.add_argument("--allow-failed", type=int, default=0, metavar="N",
                    help="tolerate up to N non-ok cells per results "
                         "document (default 0)")
    args = ap.parse_args()

    if args.baseline and not args.throughput:
        ap.error("--baseline requires --throughput")
    if sum((args.throughput, args.spec, args.stream, args.ledger,
            args.compare)) > 1:
        ap.error("--throughput/--spec/--stream/--ledger/--compare "
                 "are mutually exclusive")

    if args.spec:
        for path in args.files:
            check_spec_document(path, load(path))
        return

    if args.stream:
        for path in args.files:
            try:
                with open(path) as f:
                    check_stream_document(path, f.read())
            except OSError as e:
                fail(path, str(e))
        return

    if args.ledger:
        for path in args.files:
            try:
                with open(path) as f:
                    check_ledger_file(path, f.read())
            except OSError as e:
                fail(path, str(e))
        return

    if args.throughput:
        for path in args.files:
            doc = load(path)
            check_throughput_document(path, doc)
            if args.baseline:
                base = load(args.baseline)
                check_throughput_document(args.baseline, base)
                compare_throughput(args.baseline, base, path, doc)
        return

    docs = {p: load(p) for p in args.files}
    for path, doc in docs.items():
        check_document(path, doc, allow_failed=args.allow_failed)

    if args.compare:
        if len(args.files) != 2:
            ap.error("--compare takes exactly two files")
        a, b = (dict(docs[p]) for p in args.files)
        for d in (a, b):
            d.pop("timing", None)
            d.pop("trace", None)
            # ckpt_* counters track cache warmth, not simulation.
            for r in d.get("results", []):
                r.pop("sampling", None)
        if a != b:
            fail(args.files[1],
                 f"results differ from {args.files[0]} "
                 "(after ignoring 'timing', 'trace' and 'sampling')")
        print(f"compare: identical results ({args.files[0]} vs "
              f"{args.files[1]})")


if __name__ == "__main__":
    main()
