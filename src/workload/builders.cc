#include "workload/builders.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "workload/program_builder.hh"

namespace elfsim {

namespace {

/** Pick an instruction class for a body instruction. */
InstClass
pickBodyClass(Rng &rng, const CfgParams &p)
{
    const double u = rng.uniform();
    double acc = p.loadFrac;
    if (u < acc)
        return InstClass::Load;
    acc += p.storeFrac;
    if (u < acc)
        return InstClass::Store;
    acc += p.fpFrac;
    if (u < acc)
        return InstClass::FloatOp;
    acc += p.mulFrac;
    if (u < acc)
        return InstClass::IntMul;
    acc += p.divFrac;
    if (u < acc)
        return InstClass::IntDiv;
    return InstClass::IntAlu;
}

/** Build a MemSpec for a load/store per the workload's memory mix. */
MemSpec
pickMemSpec(Rng &rng, const CfgParams &p, bool is_load)
{
    MemSpec m;
    m.regionBase = defaultDataBase;
    m.regionSize = std::max<std::uint64_t>(p.dataFootprint, 64);
    m.seed = rng.next();

    const double u = rng.uniform();
    if (is_load && u < p.chaseFrac) {
        m.kind = MemKind::PointerChase;
    } else if (u < p.chaseFrac + p.streamFrac) {
        m.kind = MemKind::Stride;
        static const Addr strides[] = {8, 16, 32, 64};
        m.stride = strides[rng.below(4)];
    } else {
        m.kind = MemKind::Random;
    }
    return m;
}

/** Emit a block body of n random instructions. */
void
emitBody(ProgramBuilder &b, Rng &rng, const CfgParams &p, unsigned n)
{
    // Dependency chains: with probability depChainFrac an instruction
    // reads the most recent destination, which bounds the extractable
    // ILP like real dataflow does.
    RegIndex lastDst = static_cast<RegIndex>(rng.below(32));
    for (unsigned i = 0; i < n; ++i) {
        const InstClass cls = pickBodyClass(rng, p);
        const RegIndex dst = static_cast<RegIndex>(rng.below(32));
        const RegIndex s0 =
            rng.chance(p.depChainFrac)
                ? lastDst
                : static_cast<RegIndex>(rng.below(32));
        const RegIndex s1 = static_cast<RegIndex>(rng.below(32));
        switch (cls) {
          case InstClass::Load:
            b.addLoad(pickMemSpec(rng, p, true), dst, s0);
            break;
          case InstClass::Store:
            b.addStore(pickMemSpec(rng, p, false), s0, s1);
            break;
          default:
            b.addOp(cls, dst, s0, s1);
            break;
        }
        lastDst = dst;
    }
}

/** Skewed callee pick: low indices are hot; skew 0 is uniform. */
unsigned
pickCallee(Rng &rng, unsigned num_funcs, unsigned self, double skew)
{
    if (num_funcs <= 2)
        return num_funcs - 1; // only one possible non-main callee
    const double u = rng.uniform();
    const double k = 1.0 + 4.0 * std::clamp(skew, 0.0, 1.0);
    // Callable functions are 1..num_funcs-1 (0 is the main loop).
    unsigned idx = 1 + static_cast<unsigned>(
        std::pow(u, k) * static_cast<double>(num_funcs - 1));
    if (idx >= num_funcs)
        idx = num_funcs - 1;
    if (idx == self)
        idx = 1 + idx % (num_funcs - 1);
    return idx;
}

} // namespace

Program
generateCfg(const CfgParams &p, std::uint64_t seed, std::string name)
{
    ELFSIM_ASSERT(p.numFuncs >= 1, "need at least one function");
    ELFSIM_ASSERT(p.blocksPerFunc >= 2, "need at least two blocks/func");
    ELFSIM_ASSERT(p.instsPerBlockMax >= p.instsPerBlockMin,
                  "bad block size range");

    Rng rng(seed);
    ProgramBuilder b;

    // Each function is a chain of loop segments:
    //
    //   H:  header               (fall-through)
    //   B1: body + cond skip     (pattern/random, taken = skip B2)
    //   B2: skippable body       (fall-through)
    //   B3: body + optional call (call returns to L)
    //   L:  latch + loop cond    (LoopPeriod, taken = back to H)
    //
    // The latch provides the predictable taken back-edge of a real
    // loop; the body conditional provides the pattern/data-dependent
    // behaviour that sets the workload's MPKI; loops always terminate
    // so execution sweeps the whole function. Recursive functions
    // prepend a guard + self-call pair. Function 0 is the main loop,
    // calling the others forever with a configurable hot/cold skew.
    constexpr unsigned blocksPerSegment = 5;
    const unsigned segments =
        std::max(1u, p.blocksPerFunc / blocksPerSegment);

    std::vector<bool> recursive(p.numFuncs, false);
    for (unsigned f = 1; f < p.numFuncs; ++f)
        recursive[f] = rng.chance(p.recursionFrac);

    // Block budget per function (for forward references).
    std::vector<std::uint32_t> funcFirstBlock(p.numFuncs);
    std::vector<unsigned> funcNumBlocks(p.numFuncs);
    std::uint32_t next = 0;
    const unsigned mainBlocks =
        std::max(2u, 1 + p.numFuncs / 2); // call sites + loop-back
    for (unsigned f = 0; f < p.numFuncs; ++f) {
        funcFirstBlock[f] = next;
        funcNumBlocks[f] =
            f == 0 ? mainBlocks
                   : segments * blocksPerSegment +
                         (recursive[f] ? 2 : 0) + 1; // + return blk
        next += funcNumBlocks[f];
    }

    const unsigned bodyRange =
        p.instsPerBlockMax - p.instsPerBlockMin + 1;
    auto bodyLen = [&]() {
        return p.instsPerBlockMin +
               static_cast<unsigned>(rng.below(bodyRange));
    };

    auto bodyCond = [&]() {
        CondSpec c;
        c.seed = rng.next();
        const double patFrac =
            p.fracPatternBranches /
            std::max(0.0001,
                     p.fracPatternBranches +
                         (1.0 - p.fracLoopBranches -
                          p.fracPatternBranches));
        if (rng.chance(patFrac)) {
            c.kind = CondKind::Pattern;
            c.period = p.patternLenMin +
                       static_cast<unsigned>(rng.below(
                           p.patternLenMax - p.patternLenMin + 1));
            // Body conditionals skip forward: mostly not taken, with
            // a patterned taken minority.
            c.patternBias = 1.0 - p.patternBias;
        } else {
            c.kind = CondKind::TakenProb;
            c.takenProb = p.randomTakenProb;
        }
        return c;
    };

    auto emitCall = [&](unsigned f) {
        // Terminate the current block with a (possibly indirect) call.
        if (rng.chance(p.indirectCallFrac) && p.numFuncs > 2) {
            IndirectSpec spec;
            spec.seed = rng.next();
            const double v = rng.uniform();
            spec.kind = v < 0.4   ? IndirectKind::Phased
                        : v < 0.8 ? IndirectKind::RoundRobin
                                  : IndirectKind::Random;
            spec.period = 16;
            std::vector<std::uint32_t> cands;
            for (unsigned t = 0; t < p.indirectFanout; ++t) {
                cands.push_back(funcFirstBlock[pickCallee(
                    rng, p.numFuncs, f, p.callSkew)]);
            }
            b.endIndirectCall(spec, std::move(cands));
        } else {
            b.endCall(funcFirstBlock[pickCallee(rng, p.numFuncs, f,
                                                p.callSkew)]);
        }
    };

    for (unsigned f = 0; f < p.numFuncs; ++f) {
        const std::uint32_t first = funcFirstBlock[f];

        if (f == 0) {
            // Main: a ring of call blocks.
            for (unsigned i = 0; i + 1 < funcNumBlocks[0]; ++i) {
                b.beginBlock();
                b.addFiller(2 + unsigned(rng.below(4)));
                if (p.numFuncs > 1)
                    emitCall(0);
                else
                    b.endFallthrough();
            }
            b.beginBlock();
            b.endJump(first);
            continue;
        }

        std::uint32_t blk = first;

        for (unsigned s = 0; s < segments; ++s) {
            const std::uint32_t header = b.beginBlock();
            ELFSIM_ASSERT(header == blk, "layout drift");
            emitBody(b, rng, p, bodyLen());
            b.endFallthrough();

            b.beginBlock(); // B1: body conditional, taken skips B2
            emitBody(b, rng, p, bodyLen());
            b.endCond(bodyCond(), blk + 3);

            b.beginBlock(); // B2: skippable
            emitBody(b, rng, p, bodyLen());
            b.endFallthrough();

            b.beginBlock(); // B3: optional call site
            emitBody(b, rng, p, bodyLen());
            if (rng.chance(p.callBlockProb) && p.numFuncs > 2)
                emitCall(f);
            else
                b.endFallthrough();

            b.beginBlock(); // L: loop latch
            b.addFiller(1 + unsigned(rng.below(3)));
            CondSpec latch;
            latch.kind = CondKind::LoopPeriod;
            latch.period =
                p.loopPeriodMin +
                static_cast<unsigned>(rng.below(
                    p.loopPeriodMax - p.loopPeriodMin + 1));
            latch.seed = rng.next();
            b.endCond(latch, header);
            blk += blocksPerSegment;
        }

        if (recursive[f]) {
            // Body first, recursion last: the base case (guard taken)
            // jumps straight to the epilogue, and the self-call's
            // return address IS the epilogue — so base cases trigger
            // chains of consecutive returns (the unwind), the shape
            // that makes RET-ELF shine.
            const std::uint32_t guard = b.beginBlock();
            ELFSIM_ASSERT(guard == blk, "layout drift");
            emitBody(b, rng, p, bodyLen());
            CondSpec c;
            c.kind = CondKind::TakenProb;
            c.takenProb = 1.0 / std::max(1u, p.recursionDepthPeriod);
            c.seed = rng.next();
            b.endCond(c, blk + 2); // taken = base case -> epilogue
            b.beginBlock();        // self-call; returns to epilogue
            b.addFiller(2);
            b.endCall(first);
            blk += 2;
        }

        b.beginBlock(); // epilogue
        b.addFiller(2);
        b.endReturn();
    }

    return b.finalize(std::move(name));
}

Program
microSequentialLoop(unsigned body_insts, unsigned period)
{
    ProgramBuilder b;
    const std::uint32_t loop = b.beginBlock();
    b.addFiller(body_insts);
    CondSpec c;
    c.kind = CondKind::LoopPeriod;
    c.period = period;
    b.endCond(c, loop);
    b.beginBlock();
    b.endJump(loop);
    return b.finalize("micro_sequential_loop");
}

Program
microTakenChain(unsigned n_blocks, unsigned block_len)
{
    ELFSIM_ASSERT(n_blocks >= 1, "need at least one block");
    ProgramBuilder b;
    for (unsigned i = 0; i < n_blocks; ++i) {
        b.beginBlock();
        b.addFiller(block_len);
        b.endJump((i + 1) % n_blocks);
    }
    return b.finalize("micro_taken_chain");
}

Program
microRandomBranchLoop(unsigned block_len, double taken_prob)
{
    ProgramBuilder b;
    const std::uint32_t head = b.beginBlock();
    b.addFiller(block_len);
    CondSpec c;
    c.kind = CondKind::TakenProb;
    c.takenProb = taken_prob;
    c.seed = 0x1234;
    b.endCond(c, 2);
    b.beginBlock(); // fall-through path
    b.addFiller(block_len);
    b.endJump(head);
    b.beginBlock(); // taken path
    b.addFiller(block_len);
    b.endJump(head);
    return b.finalize("micro_random_branch_loop");
}

Program
microRecursion(unsigned depth, unsigned leaf_len)
{
    ProgramBuilder b;
    const std::uint32_t main_blk = b.beginBlock(); // 0
    b.addFiller(4);
    b.endCall(2);
    b.beginBlock(); // 1: after the call returns, loop forever
    b.endJump(main_blk);
    b.beginBlock(); // 2: recursive function entry (guard)
    b.addFiller(leaf_len);
    CondSpec c;
    c.kind = CondKind::TakenProb;
    c.takenProb = 1.0 / std::max(1u, depth);
    c.seed = 0xbeef;
    b.endCond(c, 4); // taken = base case, skip the self-call
    b.beginBlock(); // 3: self-call
    b.endCall(2);
    b.beginBlock(); // 4: epilogue
    b.addFiller(2);
    b.endReturn();
    return b.finalize("micro_recursion");
}

Program
microIndirect(unsigned fanout, IndirectKind kind, unsigned block_len)
{
    ELFSIM_ASSERT(fanout >= 1, "need at least one target");
    ProgramBuilder b;
    const std::uint32_t head = b.beginBlock();
    b.addFiller(block_len);
    IndirectSpec spec;
    spec.kind = kind;
    spec.seed = 0x5151;
    spec.period = 32;
    std::vector<std::uint32_t> targets;
    for (unsigned i = 0; i < fanout; ++i)
        targets.push_back(1 + i);
    b.endIndirectJump(spec, std::move(targets));
    for (unsigned i = 0; i < fanout; ++i) {
        b.beginBlock();
        b.addFiller(block_len);
        b.endJump(head);
    }
    return b.finalize("micro_indirect");
}

Program
microBtbMissChain(unsigned n_blocks, unsigned block_len)
{
    Program p = microTakenChain(n_blocks, block_len);
    return p;
}

Program
microMemoryStream(std::uint64_t footprint, MemKind kind,
                  unsigned block_len)
{
    ProgramBuilder b;
    const std::uint32_t loop = b.beginBlock();
    for (unsigned i = 0; i < block_len; ++i) {
        MemSpec m;
        m.kind = kind;
        m.regionBase = defaultDataBase;
        m.regionSize = std::max<std::uint64_t>(footprint, 64);
        m.stride = 64;
        m.seed = 0x77 + i;
        if (i % 3 == 2)
            b.addStore(m, static_cast<RegIndex>(i % 16));
        else
            b.addLoad(m, static_cast<RegIndex>(i % 16));
    }
    b.endJump(loop);
    return b.finalize("micro_memory_stream");
}

} // namespace elfsim
