/**
 * @file
 * Distributed sweep coordinator: shards one SweepSpec grid across a
 * fleet of `elfsimd --worker` processes and merges the partial result
 * streams back into the exact result set — byte for byte — that a
 * single-process run of the same spec would produce.
 *
 * How the guarantee holds: expansion is deterministic, every worker
 * expands the same spec and runs only its cells with their *global*
 * indices preserved (SweepRunner's subset path), per-cell RunResult
 * JSON round trips byte-exactly, and the coordinator assembles the
 * final document in submission order. Scheduling — which worker ran
 * which cell, in what order, with how many lease expiries — cannot
 * leak into the output bytes.
 *
 * Scheduling is lease-based over the crash-safe ledger
 * (dist/ledger.hh): cells are handed out in contiguous chunks; each
 * chunk is journaled as leased before dispatch, its completions are
 * journaled as manifest lines the moment they stream back, and a
 * dead worker (torn connection, or heartbeat silence past the lease
 * timeout) gets its unfinished cells journaled as expired and
 * requeued for the survivors. A kill -9'd worker therefore costs the
 * fleet only its in-flight cells' work; the merged bytes do not
 * change. A coordinator crash loses nothing either: `resume` adopts
 * the ledger's completed cells (index + jobKey must match) and
 * re-runs the rest.
 *
 * Compile-once-per-fleet: before dispatching any shard, the
 * coordinator compiles each distinct full-run program trace once
 * (through its own TraceCache) and ships the elfsim-trace-v2 image to
 * every worker (POST /artifact/trace, content-hash validated), so
 * fleet-wide trace.compiles stays at one per distinct program instead
 * of one per program per worker. Sampled grids ship warm-state
 * checkpoints (elfsim-ckpt-v1) the same way.
 *
 * Failure handling (the chaos-hardening layer):
 *
 *   - Connects retry with seeded exponential backoff (decorrelated
 *     jitter drawn from a per-worker xorshift stream, so two workers
 *     never thunder in lockstep and a given seed replays exactly).
 *   - A worker that trips maxWorkerFailures is QUARANTINED, not
 *     retired: its thread probes GET /healthz with the same jittered
 *     backoff and re-admits the worker on a 200 (artifacts are
 *     re-shipped first), or declares it dead when the probe budget
 *     runs out. Transient blips cost a probation lap, not capacity.
 *   - Tail stragglers: when the chunk queue runs dry, an idle worker
 *     that stays idle for hedgeDelayMs duplicates another worker's
 *     in-flight cells (a HEDGE: journaled with "hedge":true, first
 *     completion wins, the done[] set dedupes, a losing hedge expires
 *     without requeueing anything). Off by default.
 *   - Whole-fleet loss: when every worker is dead and cells remain,
 *     the coordinator finishes them in-process (localFallback) with
 *     the same subset-run path a worker would use — the merged bytes
 *     stay identical to a --local run; only the wall clock suffers.
 *
 * Every one of those paths is reachable deterministically through the
 * ELFSIM_FAULT net sites (common/fault.hh) and replayed by
 * scripts/chaos_soak.sh.
 */

#ifndef ELFSIM_DIST_COORDINATOR_HH
#define ELFSIM_DIST_COORDINATOR_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/sweep_spec.hh"

namespace elfsim {

class Rng;

namespace dist {

/** One worker address. */
struct WorkerEndpoint
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    std::string
    id() const
    {
        return host + ":" + std::to_string(port);
    }
};

/** Coordinator configuration. */
struct CoordinatorConfig
{
    std::vector<WorkerEndpoint> workers;

    /** Lease ledger path; empty disables journaling (no resume, no
     *  crash safety — fine for tests and throwaway runs). */
    std::string ledgerPath;

    /** Adopt completed cells recorded in ledgerPath (index and jobKey
     *  must both match) and run only the rest. */
    bool resume = false;

    /** Lease length: how long a shard stream may stay silent (no
     *  result, no heartbeat) before the worker is declared dead and
     *  the lease expires. Must exceed the workers' heartbeat period;
     *  it bounds detection latency, not cell runtime. */
    unsigned leaseSeconds = 30;

    /** Cells per lease; 0 picks pending / (4 * workers), floored at
     *  1 — small enough to rebalance, large enough to amortize the
     *  per-chunk spec re-send. */
    std::size_t chunkCells = 0;

    /** Chunk failures before a worker is quarantined (probed via
     *  GET /healthz; re-admitted on recovery, dead only when the
     *  probe budget runs out). */
    unsigned maxWorkerFailures = 3;

    /** Lease expiries before a cell stops being requeued and degrades
     *  to a failed result ("lease expired ... times"). */
    unsigned maxCellRetries = 3;

    /** Seed of the backoff-jitter streams (per-worker, decorrelated);
     *  the same seed replays the same sleep schedule. */
    std::uint64_t backoffSeed = 0x1e57ab1e;

    /** Connect attempts per dispatch before the chunk counts as a
     *  worker failure (refused connects back off in between). */
    unsigned connectAttempts = 3;

    /** Reconnect backoff bounds (decorrelated jitter in between). */
    unsigned reconnectBaseMs = 20;
    unsigned reconnectCapMs = 1000;

    /** Health probes granted to a quarantined worker before it is
     *  declared dead. */
    unsigned quarantineProbes = 5;

    /** Probation-probe backoff bounds. */
    unsigned probeBaseMs = 100;
    unsigned probeCapMs = 2000;

    /** Idle milliseconds before a dry worker hedges another worker's
     *  in-flight cells; 0 disables hedged dispatch. */
    unsigned hedgeDelayMs = 0;

    /** The fleet's worker heartbeat period (elfsimd --heartbeat-ms).
     *  leaseSeconds must exceed it or every lease would expire
     *  spuriously; run() rejects such a config (ConfigError). */
    unsigned workerHeartbeatMs = 1000;

    /** Upload attempts per artifact before the worker is quarantined
     *  (transient disconnects and corrupt-payload 400s retry). */
    unsigned artifactAttempts = 3;

    /** Finish leftover cells in-process when the whole fleet is lost
     *  (merged bytes stay identical to --local); disabling restores
     *  the old throw-on-dead-fleet behavior. */
    bool localFallback = true;
};

/** Scheduling counters of the last run() (not part of the merged
 *  output — the output must not depend on scheduling). */
struct CoordStats
{
    std::size_t cellsTotal = 0;
    std::size_t cellsAdopted = 0;  ///< taken from the resume ledger
    std::size_t cellsRun = 0;      ///< completed by the fleet
    std::size_t cellsFallback = 0; ///< finished in-process (fleet lost)
    std::size_t cellsSynthFailed = 0; ///< degraded by the coordinator
    std::size_t chunksDispatched = 0;
    std::size_t leasesExpired = 0;
    std::size_t requeues = 0;      ///< cells requeued after an expiry
    std::size_t hedges = 0;        ///< hedge chunks dispatched
    std::size_t quarantines = 0;   ///< quarantine entries
    std::size_t readmissions = 0;  ///< probation re-admissions
    std::size_t connectRetries = 0; ///< reconnect attempts (backoff)
    std::size_t artifactRetries = 0; ///< artifact uploads retried
    std::size_t workersDead = 0;
    std::size_t tracesShipped = 0; ///< trace uploads (per worker)
    std::size_t ckptsShipped = 0;  ///< checkpoint uploads (per worker)
    double wallSeconds = 0;

    double
    cellsPerSecond() const
    {
        return wallSeconds > 0
                   ? double(cellsRun + cellsFallback) / wallSeconds
                   : 0;
    }
};

/** Serialize the counters through the uniform StatGroup walk as one
 *  elfsim-coordstats-v1 document ({"schema":...,"dist":{...}}). */
void writeCoordStatsJson(std::ostream &os, const CoordStats &s);

/** The coordinator (see file comment). */
class SweepCoordinator
{
  public:
    explicit SweepCoordinator(CoordinatorConfig cfg);

    /**
     * Expand @a spec, shard it across the fleet, and return the
     * merged results in submission order. Cells no live worker could
     * complete are finished in-process (localFallback, byte-identical
     * to --local) or, with fallback disabled, come back as failed
     * cells (keep-going semantics). run() itself only throws for
     * pre-dispatch problems: an invalid spec or a lease that cannot
     * outlive the worker heartbeat (ConfigError), or an unwritable
     * ledger (IoError). With localFallback off, a fleet where *no*
     * worker ever accepted work also throws IoError — that is a
     * deployment error, not a degraded sweep.
     */
    std::vector<RunResult> run(const SweepSpec &spec);

    const CoordStats &stats() const { return lastStats; }

    /** Test hook: invoked (serialized) as each chunk is leased, with
     *  the chunk's global indices and the worker id. */
    void
    setLeaseObserver(std::function<void(const std::vector<std::size_t> &,
                                        const std::string &)> fn)
    {
        leaseObserver = std::move(fn);
    }

  private:
    struct Fleet; ///< per-run shared state (coordinator.cc)

    void shipArtifacts(Fleet &fleet);
    bool shipArtifactsToWorker(Fleet &fleet, std::size_t w);
    void workerLoop(Fleet &fleet, std::size_t w);
    bool runChunk(Fleet &fleet, std::size_t w,
                  const std::vector<std::size_t> &chunk, Rng &rng);
    int connectWithBackoff(Fleet &fleet, std::size_t w, Rng &rng);
    bool quarantineLoop(Fleet &fleet, std::size_t w, Rng &rng);
    std::vector<std::size_t> pickHedge(Fleet &fleet, std::size_t w);
    void runFallback(Fleet &fleet,
                     const std::vector<std::size_t> &pending);

    CoordinatorConfig cfg;
    CoordStats lastStats;
    std::function<void(const std::vector<std::size_t> &,
                       const std::string &)> leaseObserver;
};

} // namespace dist
} // namespace elfsim

#endif // ELFSIM_DIST_COORDINATOR_HH
