/**
 * @file
 * Machine-readable export of simulation results: RunResult (summary +
 * interval timeline) and sweep grids as JSON documents or flat CSV
 * tables. Field enumeration comes from RunResult::forEachField /
 * IntervalSample::forEachField, so exporters never drift from the
 * structs; doubles serialize with shortest-round-trip precision, so a
 * deterministic sweep exports to byte-identical output regardless of
 * thread count.
 *
 * JSON schema (validated by scripts/check_results.py):
 *
 *   {
 *     "schema": "elfsim-results-v1",
 *     "timing": { ... SweepTiming ... },      // optional
 *     "results": [
 *       { "workload": ..., "variant": ..., <summary scalars>,
 *         "interval_insts": N,
 *         "timeline": [ { <IntervalSample fields> }, ... ] },
 *       ...
 *     ]
 *   }
 */

#ifndef ELFSIM_SIM_EXPORT_HH
#define ELFSIM_SIM_EXPORT_HH

#include <ostream>
#include <vector>

#include "common/export.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"

namespace elfsim {

/** Serialize one result (summary + timeline) as a JSON object. */
void writeRunResult(JsonWriter &w, const RunResult &r);

/**
 * Serialize a whole result set as the elfsim-results-v1 document.
 * @a timing may be null; everything else in the document depends only
 * on the simulated results, so two deterministic sweeps of the same
 * grid serialize byte-identically when timing is omitted.
 */
void writeSweepJson(std::ostream &os,
                    const std::vector<RunResult> &results,
                    const SweepTiming *timing = nullptr);

/** Results-only convenience: writeSweepJson without timing. */
void writeResultsJson(std::ostream &os,
                      const std::vector<RunResult> &results);

/** Flat CSV: header from forEachField, one row per result. */
void writeResultsCsv(std::ostream &os,
                     const std::vector<RunResult> &results);

/** Timeline CSV: one row per (result, interval sample). */
void writeTimelineCsv(std::ostream &os,
                      const std::vector<RunResult> &results);

/**
 * Serialize a simulator-throughput measurement as an
 * elfsim-throughput-v1 document (validated by
 * scripts/check_results.py --throughput):
 *
 *   {
 *     "schema": "elfsim-throughput-v1",
 *     "timing": { ... SweepTiming ... },
 *     "geomean_mips": G,
 *     "throughput": [
 *       { "workload": ..., "variant": ..., "wall_seconds": ...,
 *         "sim_insts": ..., "sim_cycles": ..., "mips": ...,
 *         "cycles_per_host_us": ... }, ...
 *     ]
 *   }
 *
 * @a job_seconds must parallel @a results (SweepRunner::perJobSeconds).
 */
void writeThroughputJson(std::ostream &os,
                         const std::vector<RunResult> &results,
                         const std::vector<double> &job_seconds,
                         const SweepTiming &timing);

} // namespace elfsim

#endif // ELFSIM_SIM_EXPORT_HH
