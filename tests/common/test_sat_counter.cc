#include <gtest/gtest.h>

#include "common/sat_counter.hh"

using namespace elfsim;

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.raw(), 3u);
    EXPECT_TRUE(c.isTaken());
    EXPECT_TRUE(c.isSaturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.raw(), 0u);
    EXPECT_FALSE(c.isTaken());
    EXPECT_TRUE(c.isSaturated());
}

TEST(SatCounter, TakenThreshold)
{
    // 3-bit counter: values 0..7; taken iff > 3.
    SatCounter c(3, 3);
    EXPECT_FALSE(c.isTaken());
    c.increment();
    EXPECT_TRUE(c.isTaken());
}

TEST(SatCounter, UpdateDirection)
{
    SatCounter c(2, 2);
    c.update(true);
    EXPECT_EQ(c.raw(), 3u);
    c.update(false);
    c.update(false);
    EXPECT_EQ(c.raw(), 1u);
}

TEST(SatCounter, WeakDetection)
{
    SatCounter c(2, 1);
    EXPECT_TRUE(c.isWeak());
    c.increment();
    EXPECT_TRUE(c.isWeak());
    c.increment();
    EXPECT_FALSE(c.isWeak());
}

TEST(SatCounter, ResetWeak)
{
    SatCounter c(3, 7);
    c.resetWeak();
    EXPECT_EQ(c.raw(), 3u);
    EXPECT_FALSE(c.isTaken());
}

TEST(SatCounter, SetClamped)
{
    SatCounter c(2, 0);
    c.set(100);
    EXPECT_EQ(c.raw(), 3u);
}

class SatCounterWidth : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SatCounterWidth, MaxMatchesWidth)
{
    const unsigned bits = GetParam();
    SatCounter c(bits, 0);
    EXPECT_EQ(c.max(), (1u << bits) - 1);
    for (unsigned i = 0; i < c.max() + 5; ++i)
        c.increment();
    EXPECT_EQ(c.raw(), c.max());
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 12u));
