#!/usr/bin/env python3
"""Validate elfsim-results-v1 JSON artifacts.

Usage:
    scripts/check_results.py FILE [FILE ...]
        Schema-check each exported results document.

    scripts/check_results.py --compare A B
        Assert two documents carry identical simulated results,
        ignoring the wall-clock-dependent "timing" block. Use this to
        confirm --jobs 1 and --jobs N exports of the same grid match.

Exits non-zero on the first violation. Stdlib only.
"""

import argparse
import json
import sys

SCHEMA = "elfsim-results-v1"

# Per-result scalar fields (RunResult::forEachField order).
RESULT_STR_FIELDS = ("workload", "variant")
RESULT_NUM_FIELDS = (
    "cycles", "insts", "ipc", "branch_mpki", "cond_mpki",
    "exec_flushes", "mem_order_flushes", "decode_resteers",
    "divergence_flushes", "btb_hit_l0", "btb_hit_l1", "btb_hit_l2",
    "l0i_miss_rate", "l1d_mpki", "wrong_path_insts", "inst_prefetches",
    "avg_redirect_to_fetch", "avg_coupled_insts", "coupled_periods",
    "coupled_committed_frac", "pending_flush_waits",
)
TIMELINE_FIELDS = (
    "start_inst", "insts", "cycles", "ipc", "cond_mispredicts",
    "target_mispredicts", "exec_flushes", "mem_order_flushes",
    "decode_resteers", "divergence_flushes", "coupled_frac",
)


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_document(path, doc):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(path, f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(path, "missing or empty 'results' array")

    for i, r in enumerate(results):
        where = f"results[{i}]"
        for k in RESULT_STR_FIELDS:
            if not isinstance(r.get(k), str):
                fail(path, f"{where}.{k} missing or not a string")
        for k in RESULT_NUM_FIELDS:
            if not isinstance(r.get(k), (int, float)):
                fail(path, f"{where}.{k} missing or not a number")
        interval = r.get("interval_insts")
        timeline = r.get("timeline")
        if not isinstance(interval, int) or not isinstance(timeline, list):
            fail(path, f"{where}: bad interval_insts/timeline")
        if interval > 0 and r["insts"] > 0 and not timeline:
            fail(path, f"{where}: interval sampling on but timeline empty")
        if interval == 0 and timeline:
            fail(path, f"{where}: timeline present without interval_insts")
        for j, row in enumerate(timeline):
            for k in TIMELINE_FIELDS:
                if not isinstance(row.get(k), (int, float)):
                    fail(path, f"{where}.timeline[{j}].{k} missing")
        if timeline:
            # The samples must tile the measurement window exactly.
            if sum(row["insts"] for row in timeline) != r["insts"]:
                fail(path, f"{where}: timeline insts do not sum to insts")
            if sum(row["cycles"] for row in timeline) != r["cycles"]:
                fail(path, f"{where}: timeline cycles do not sum to cycles")

    timing = doc.get("timing")
    if timing is not None:
        for k in ("jobs", "threads", "wall_seconds"):
            if not isinstance(timing.get(k), (int, float)):
                fail(path, f"timing.{k} missing or not a number")

    n_timelines = sum(1 for r in results if r["timeline"])
    print(f"{path}: OK ({len(results)} results, "
          f"{n_timelines} with timelines)")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, str(e))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", metavar="FILE")
    ap.add_argument("--compare", action="store_true",
                    help="compare exactly two documents, ignoring "
                         "the 'timing' block")
    args = ap.parse_args()

    docs = {p: load(p) for p in args.files}
    for path, doc in docs.items():
        check_document(path, doc)

    if args.compare:
        if len(args.files) != 2:
            ap.error("--compare takes exactly two files")
        a, b = (dict(docs[p]) for p in args.files)
        a.pop("timing", None)
        b.pop("timing", None)
        if a != b:
            fail(args.files[1],
                 f"results differ from {args.files[0]} "
                 "(after ignoring 'timing')")
        print(f"compare: identical results ({args.files[0]} vs "
              f"{args.files[1]})")


if __name__ == "__main__":
    main()
