/**
 * @file
 * elfsimd — sweep-as-a-service. A long-running daemon that accepts
 * declarative SweepSpec requests (sim/sweep_spec.hh) over a local
 * HTTP/1.1 socket, queues them onto one shared SweepRunner, and
 * streams each request's elfsim-results-v2 document back
 * incrementally as cells complete.
 *
 * Endpoints:
 *
 *   GET  /healthz   liveness probe; 200 "ok"
 *   GET  /stats     elfsimd-stats-v1 JSON: request/queue/cell
 *                   counters plus the process-wide TraceCache and
 *                   CheckpointStore counters (the cross-request
 *                   cache-sharing evidence), all through the
 *                   StatGroup walk
 *   POST /sweep     body = elfsim-sweepspec-v1 JSON. Responds 200
 *                   with a chunked elfsim-results-v2 stream: the
 *                   document opens immediately and one result object
 *                   is appended per completed cell in submission
 *                   order — the accumulated bytes equal a CLI
 *                   writeResultsJson() of the same spec, byte for
 *                   byte. A malformed or semantically invalid spec
 *                   gets 400 with a one-line error body.
 *
 * Worker mode (`--worker` / ServiceConfig::worker) adds the
 * distributed-fleet endpoints (schemas in dist/wire.hh):
 *
 *   POST /shard           run a subset of a fleet-wide grid; chunked
 *                         JSONL response (manifest lines, heartbeats,
 *                         terminal done event)
 *   POST /artifact/trace  install a coordinator-compiled
 *                         elfsim-trace-v2 image into the TraceCache
 *                         (validated against the x-elfsim-key hash)
 *   POST /artifact/ckpt   drop an elfsim-ckpt-v1 file into the
 *                         checkpoint directory (x-elfsim-name)
 *
 * Without worker mode these answer 403 — a plain sweep service never
 * accepts binary uploads.
 *
 * Execution model: request handlers only parse and enqueue; a single
 * executor thread drains the queue through one SweepRunner, so
 * concurrent clients serialize at sweep granularity and every request
 * shares the same process-wide warm TraceCache/CheckpointStore (the
 * second client's compile becomes a cache hit). Within one sweep the
 * runner's thread pool still parallelizes cells.
 *
 * Fault handling per request: the spec's own SweepPolicy applies
 * (deadline/stall/retries), except journaling — manifest_path/resume
 * are CLI-side concerns and are ignored here — and keep_going, which
 * is forced on: strict mode would let one failing cell's exception
 * escape the executor thread and kill the daemon. A client disconnect
 * (detected before the run, or by a failed chunk write during it)
 * raises the request's private SweepPolicy::cancelFlag: in-flight
 * cells cancel cooperatively, queued cells degrade to cancelled, and
 * the daemon moves on to the next request.
 */

#ifndef ELFSIM_SERVICE_DAEMON_HH
#define ELFSIM_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "service/http.hh"
#include "sim/sweep.hh"
#include "sim/sweep_spec.hh"

namespace elfsim {
namespace service {

/** Daemon configuration. */
struct ServiceConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral (port() reports it)
    unsigned jobs = 0;      ///< sweep threads; 0 = auto

    /** Enable the distributed-worker endpoints (POST /shard,
     *  POST /artifact/trace, POST /artifact/ckpt). Off by default: a
     *  plain sweep service refuses artifact uploads with 403. */
    bool worker = false;

    /** SO_SNDTIMEO on response sockets (`--send-timeout`): how long a
     *  chunk write may stall on a non-reading client before the sweep
     *  degrades to cancelled. */
    long sendTimeoutSec = 30;

    /** Liveness-tick period of a /shard response stream. The
     *  coordinator's lease timeout (its SO_RCVTIMEO) must exceed
     *  this, or healthy workers look dead between cells. */
    unsigned heartbeatMs = 1000;
};

/** The sweep service (see file comment). */
class SweepService
{
  public:
    explicit SweepService(ServiceConfig cfg = {});
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /** Bind, listen, and spawn the accept + executor threads.
     *  Throws IoError when the address cannot be bound. */
    void start();

    /** Stop accepting, cancel the in-flight sweep, drain the queue
     *  with 503s, and join every thread. Idempotent. */
    void stop();

    /** The bound port (after start()). */
    std::uint16_t port() const { return boundPort_; }

    const ServiceConfig &config() const { return cfg; }

    /** Point-in-time service counters (what /stats serializes). */
    struct Counters
    {
        std::uint64_t requests = 0;      ///< HTTP requests accepted
        std::uint64_t badRequests = 0;   ///< 4xx responses
        std::uint64_t sweeps = 0;        ///< sweep runs completed
        std::uint64_t shards = 0;        ///< shard runs completed
        std::uint64_t artifacts = 0;     ///< artifacts installed
        std::uint64_t cellsOk = 0;
        std::uint64_t cellsFailed = 0;
        std::uint64_t cellsCancelled = 0;
        std::uint64_t queueDepth = 0;    ///< sweeps waiting
        std::uint64_t inflightCells = 0; ///< cells of the running sweep
                                         ///< not yet completed
        double lastCellsPerSec = 0;      ///< last finished sweep
    };

    Counters counters() const;

    /** The /stats document (elfsimd-stats-v1). */
    std::string statsJson() const;

  private:
    /** One queued sweep request; owns the client socket. */
    struct Pending
    {
        int fd = -1;
        SweepSpec spec;
        std::shared_ptr<std::atomic<bool>> cancel;
        bool shard = false;             ///< POST /shard (worker mode)
        std::vector<std::size_t> cells; ///< shard only: global indices
    };

    void acceptLoop();
    void handleConnection(int fd);
    void handleArtifact(int fd, const HttpRequest &req);
    void executorLoop();
    void executeSweep(Pending req);
    void executeShard(Pending req);

    /** Expand a shard's spec, memoizing on the canonical spec text:
     *  every chunk of one fleet-wide sweep re-sends the same spec, and
     *  expansion (program generation) dominates small shards.
     *  Executor-thread only. */
    const ExpandedSweep &expandShardSpec(const SweepSpec &spec);

    ServiceConfig cfg;
    /** Atomic: stop() retires the fd while acceptLoop still reads
     *  it to unblock the accept(2) call. */
    std::atomic<int> listenFd{-1};
    std::uint16_t boundPort_ = 0;

    std::thread acceptThread;
    std::thread executorThread;
    std::atomic<bool> stopping{false};
    std::atomic<unsigned> activeHandlers{0};

    mutable std::mutex queueMtx; ///< also guards currentCancel
    std::condition_variable queueCv;
    std::deque<Pending> queue;

    /** Cancel flag of the sweep the executor is running right now
     *  (null when idle); stop() raises it. */
    std::shared_ptr<std::atomic<bool>> currentCancel;

    SweepRunner runner; ///< shared across every request (executor only)

    // Shard spec-expansion memo (executor thread only).
    std::string cachedSpecText_;
    ExpandedSweep cachedEx_;

    // Stats (atomics: written by handlers + executor, read by /stats).
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> badRequests{0};
    std::atomic<std::uint64_t> sweeps{0};
    std::atomic<std::uint64_t> shards{0};
    std::atomic<std::uint64_t> artifacts{0};
    std::atomic<std::uint64_t> cellsOk{0};
    std::atomic<std::uint64_t> cellsFailed{0};
    std::atomic<std::uint64_t> cellsCancelled{0};
    std::atomic<std::uint64_t> inflightCells{0};
    std::atomic<double> lastCellsPerSec{0};
};

} // namespace service
} // namespace elfsim

#endif // ELFSIM_SERVICE_DAEMON_HH
