#include "sim/config.hh"

#include <iomanip>

namespace elfsim {

SimConfig
makeConfig(FrontendVariant variant)
{
    SimConfig cfg;
    cfg.variant = variant;
    return cfg;
}

void
printConfig(std::ostream &os, const SimConfig &cfg)
{
    auto row = [&](const char *k, const std::string &v) {
        os << "  " << std::left << std::setw(26) << k << v << "\n";
    };
    auto kb = [](double bytes) {
        return std::to_string(bytes / 1024.0).substr(0, 5) + "KB";
    };

    os << "Pipeline configuration (" << variantName(cfg.variant)
       << ")\n";
    row("Front-end", std::string(variantName(cfg.variant)));
    row("BTB L0",
        std::to_string(cfg.btb.l0.entries) + "-entry fully-assoc, " +
            std::to_string(cfg.btb.l0.latency) + " cycle");
    row("BTB L1",
        std::to_string(cfg.btb.l1.entries) + "-entry " +
            std::to_string(cfg.btb.l1.assoc) + "-way, " +
            std::to_string(cfg.btb.l1.latency) + " cycle");
    row("BTB L2",
        std::to_string(cfg.btb.l2.entries) + "-entry " +
            std::to_string(cfg.btb.l2.assoc) + "-way, " +
            std::to_string(cfg.btb.l2.latency) + " cycle");
    row("BTB entry",
        std::to_string(btbMaxInsts) + " insts, up to " +
            std::to_string(btbMaxBranches) + " taken branches");

    {
        Tage t(cfg.preds.tage);
        Ittage it(cfg.preds.ittage);
        row("Cond. pred", std::to_string(cfg.preds.tage.numTables) +
                              "-table TAGE, " + kb(t.storageBytes()));
        row("Ind. pred",
            "64-entry L0 BTC + " +
                std::to_string(cfg.preds.ittage.numTables) +
                "-table ITTAGE, " + kb(it.storageBytes()));
    }
    row("RAS", std::to_string(cfg.preds.rasEntries) + " entries");
    row("FAQ", std::to_string(cfg.faqEntries) + "-entry FIFO");
    row("BP1 to FE", std::to_string(cfg.bp1ToFe) + " cycles");
    row("Fetch width", std::to_string(cfg.fetch.width) + " insts");
    row("Issue width",
        std::to_string(cfg.backend.issueWidth) + " insts");
    row("Commit width",
        std::to_string(cfg.backend.commitWidth) + " insts");
    row("ROB/IQ/LSQ",
        std::to_string(cfg.backend.robEntries) + "/" +
            std::to_string(cfg.backend.iqEntries) + "/" +
            std::to_string(cfg.backend.lsqEntries));
    row("L0I", kb(cfg.mem.l0i.sizeBytes) + " " +
                   std::to_string(cfg.mem.l0i.assoc) + "-way, " +
                   std::to_string(cfg.mem.l0i.hitLatency) +
                   "c, 2-way intlv");
    row("L1I", kb(cfg.mem.l1i.sizeBytes) + " " +
                   std::to_string(cfg.mem.l1i.assoc) + "-way, " +
                   std::to_string(cfg.mem.l1i.hitLatency) + "c");
    row("L1D", kb(cfg.mem.l1d.sizeBytes) + " " +
                   std::to_string(cfg.mem.l1d.assoc) + "-way, " +
                   std::to_string(cfg.mem.l1d.hitLatency) + "c");
    row("L2", kb(cfg.mem.l2.sizeBytes) + " unified, " +
                  std::to_string(cfg.mem.l2.hitLatency) + "c");
    row("L3", kb(cfg.mem.l3.sizeBytes) + " unified, " +
                  std::to_string(cfg.mem.l3.hitLatency) + "c");
    row("Memory", std::to_string(cfg.mem.memLatency) + " cycles");

    if (isElf(cfg.variant)) {
        CoupledPredictors cp(cfg.coupledPreds);
        row("Coupled bimodal",
            std::to_string(cfg.coupledPreds.bimodal.entries) +
                " x 3-bit");
        row("Coupled BTC",
            std::to_string(cfg.coupledPreds.btc.entries) + " entries");
        row("Coupled RAS",
            std::to_string(cfg.coupledPreds.rasEntries) + " entries");
        row("Divergence vectors",
            std::to_string(cfg.divergence.vecEntries) +
                " x 2-bit x 2 + " +
                std::to_string(cfg.divergence.targetEntries) +
                "-entry target queues x 2");
        row("ELF total storage", kb(cp.storageBytes()));
    }
}

} // namespace elfsim
