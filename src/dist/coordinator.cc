#include "dist/coordinator.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/export.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "core/variant.hh"
#include "dist/ledger.hh"
#include "dist/wire.hh"
#include "service/http.hh"
#include "sim/export.hh"
#include "sim/sweep.hh"
#include "workload/checkpoint_store.hh"
#include "workload/compiled_trace.hh"
#include "workload/trace_cache.hh"

namespace elfsim {
namespace dist {

namespace {

/** Zeroed result for a cell the fleet could not complete — the same
 *  keep-going degradation SweepRunner applies to a crashing cell. */
RunResult
abandonedResult(const SweepJob &job, const std::string &what,
                unsigned attempts)
{
    RunResult r;
    r.workload = job.program ? job.program->name() : "?";
    r.variant = variantName(job.cfg.variant);
    r.status = JobStatus::Failed;
    r.error = what;
    r.attempts = attempts ? attempts : 1;
    return r;
}

std::string
hex16(std::uint64_t key)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[std::size_t(i)] = digits[key & 0xf];
        key >>= 4;
    }
    return out;
}

/** Checkpoint files above this stay home: the worker's request-body
 *  cap is 16 MiB, and a checkpoint is an optimization, not data. */
constexpr std::uintmax_t kMaxCkptShipBytes = 8u << 20;

/** The ledger's worker id for cells the coordinator ran itself after
 *  losing the fleet. */
constexpr const char *kFallbackWorker = "local-fallback";

void
sleepMs(unsigned ms)
{
    if (ms)
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/**
 * Decorrelated-jitter backoff (sleep in [base, prev*3], capped): the
 * retry schedule is drawn from a seeded per-worker Rng stream, so it
 * neither thunders in lockstep across workers nor varies between two
 * runs with the same seed.
 */
unsigned
nextBackoffMs(Rng &rng, unsigned prevMs, unsigned baseMs,
              unsigned capMs)
{
    const std::uint64_t lo = std::max(1u, baseMs);
    const std::uint64_t hi =
        std::max<std::uint64_t>(lo + 1, std::uint64_t(prevMs) * 3);
    const std::uint64_t pick = lo + rng.below(hi - lo);
    return unsigned(std::min<std::uint64_t>(pick, capMs));
}

} // namespace

void
writeCoordStatsJson(std::ostream &os, const CoordStats &s)
{
    stats::StatGroup dist("dist");
    dist.addCounter("cells_total", "cells in the grid") +=
        s.cellsTotal;
    dist.addCounter("cells_adopted", "cells adopted from the ledger") +=
        s.cellsAdopted;
    dist.addCounter("cells_run", "cells completed by the fleet") +=
        s.cellsRun;
    dist.addCounter("cells_fallback",
                    "cells finished in-process after fleet loss") +=
        s.cellsFallback;
    dist.addCounter("cells_synth_failed",
                    "cells degraded to failed results") +=
        s.cellsSynthFailed;
    dist.addCounter("chunks", "chunks dispatched") +=
        s.chunksDispatched;
    dist.addCounter("leases_expired", "leases expired") +=
        s.leasesExpired;
    dist.addCounter("requeues", "cells requeued after an expiry") +=
        s.requeues;
    dist.addCounter("hedges", "hedge chunks dispatched") += s.hedges;
    dist.addCounter("quarantines", "worker quarantine entries") +=
        s.quarantines;
    dist.addCounter("readmissions", "probation re-admissions") +=
        s.readmissions;
    dist.addCounter("connect_retries",
                    "reconnect attempts (backoff)") += s.connectRetries;
    dist.addCounter("artifact_retries", "artifact uploads retried") +=
        s.artifactRetries;
    dist.addCounter("workers_dead", "workers declared dead") +=
        s.workersDead;
    dist.addCounter("traces_shipped", "trace uploads") +=
        s.tracesShipped;
    dist.addCounter("ckpts_shipped", "checkpoint uploads") +=
        s.ckptsShipped;
    dist.addFormula("wall_seconds", "wall clock of the run",
                    [&s] { return s.wallSeconds; });
    dist.addFormula("cells_per_sec", "fleet throughput",
                    [&s] { return s.cellsPerSecond(); });

    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "elfsim-coordstats-v1");
    w.key("dist");
    stats::writeJson(w, dist);
    w.endObject();
    os << '\n';
}

/** Everything one run() shares across its worker threads. */
struct SweepCoordinator::Fleet
{
    /** Worker life cycle: Alive -> Quarantined (probation probes) ->
     *  back to Alive on a healthy probe, or Dead when the budget runs
     *  out. */
    enum WorkerState
    {
        Alive,
        Quarantined,
        Dead,
    };

    /** One artifact staged for shipping (kept so probation
     *  re-admission can re-ship without recompiling). */
    struct TraceArtifact
    {
        std::string key;  ///< x-elfsim-key content hash (hex16)
        std::string name; ///< display name
        std::vector<char> image;
    };
    struct CkptArtifact
    {
        std::string name;
        std::string bytes;
    };

    const SweepSpec *spec = nullptr;
    ExpandedSweep ex;
    std::vector<std::string> keys; ///< jobKey per global index

    std::vector<TraceArtifact> traceArts;
    std::vector<CkptArtifact> ckptArts;

    std::mutex mtx; ///< guards everything below + the ledger stream
    std::condition_variable cv;
    std::vector<RunResult> results;
    std::vector<char> done;
    std::vector<unsigned> attempts;  ///< lease expiries per cell
    std::vector<char> hedged;        ///< cell has a hedge in flight
    std::deque<std::vector<std::size_t>> chunks;
    std::size_t inflightChunks = 0;
    std::vector<unsigned> workerFailures;
    std::vector<int> workerState; ///< WorkerState per worker
    std::vector<std::vector<std::size_t>> currentChunk; ///< per worker
    CoordStats stats;

    std::ofstream ledger;
    bool journaling = false;

    void
    journalLine(const std::function<void(std::ostream &)> &write)
    {
        if (!journaling)
            return;
        write(ledger);
        ledger.flush();
    }

    /** Nothing queued and nothing in flight: the run is settling. */
    bool
    noWorkLeft() const
    {
        return chunks.empty() && inflightChunks == 0;
    }
};

SweepCoordinator::SweepCoordinator(CoordinatorConfig c)
    : cfg(std::move(c))
{
}

void
SweepCoordinator::shipArtifacts(Fleet &fleet)
{
    // Compile each distinct trace once, locally, and stage the image
    // — the fleet-wide compile count stays at one per distinct
    // program, and probation re-admission can re-ship from the staged
    // copy without recompiling. Sampled cells stage a capped prefix
    // (the batch warming kernel fast-forwards over it); their warm
    // state additionally stages as checkpoints below.
    std::map<std::uint64_t, std::pair<const Program *, InstCount>> want;
    bool anySampled = false;
    for (std::size_t i = 0; i < fleet.ex.jobs.size(); ++i) {
        if (fleet.done[i])
            continue;
        const SweepJob &job = fleet.ex.jobs[i];
        if (!job.program)
            continue;
        InstCount count = job.opts.warmupInsts + job.opts.measureInsts;
        if (job.opts.sampled()) {
            anySampled = true;
            count = std::min(count, maxSampledTraceInsts);
        }
        want[CompiledTrace::key(*job.program, count)] = {job.program,
                                                         count};
    }

    if (TraceCache::instance().enabled()) {
        for (const auto &[key, pc] : want) {
            std::shared_ptr<const CompiledTrace> trace =
                TraceCache::instance().acquire(*pc.first, pc.second);
            if (!trace)
                continue;
            fleet.traceArts.push_back(Fleet::TraceArtifact{
                hex16(trace->cacheKey()), pc.first->name(),
                trace->serialized()});
        }
    }

    // Checkpoints are best-effort: a worker without one fast-forwards.
    const std::string dir = CheckpointStore::instance().directory();
    if (anySampled && !dir.empty()) {
        std::error_code ec;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir, ec)) {
            if (!entry.is_regular_file(ec) ||
                entry.path().extension() != ".eckpt")
                continue;
            if (entry.file_size(ec) > kMaxCkptShipBytes) {
                ELFSIM_WARN("checkpoint '%s' too large to ship; "
                            "workers will fast-forward",
                            entry.path().filename().c_str());
                continue;
            }
            std::ifstream in(entry.path(), std::ios::binary);
            std::ostringstream body;
            body << in.rdbuf();
            if (!in)
                continue;
            fleet.ckptArts.push_back(Fleet::CkptArtifact{
                entry.path().filename().string(), body.str()});
        }
    }

    for (std::size_t w = 0; w < cfg.workers.size(); ++w) {
        if (shipArtifactsToWorker(fleet, w))
            continue;
        // Staging failures quarantine rather than retire: the
        // worker's thread starts in the probation loop and re-ships
        // on a healthy probe.
        ELFSIM_WARN("worker %s quarantined during artifact staging",
                    cfg.workers[w].id().c_str());
        std::lock_guard<std::mutex> lk(fleet.mtx);
        fleet.workerState[w] = Fleet::Quarantined;
        ++fleet.stats.quarantines;
    }
}

bool
SweepCoordinator::shipArtifactsToWorker(Fleet &fleet, std::size_t w)
{
    const WorkerEndpoint &ep = cfg.workers[w];
    FaultInjector &inj = FaultInjector::instance();
    // A distinct jitter stream from the dispatch loop's, so upload
    // retries during probation do not perturb reconnect schedules.
    Rng rng(mix64(cfg.backoffSeed ^ 0xa27f, w));

    const auto post =
        [&](const char *path,
            const std::map<std::string, std::string> &headers,
            std::string body) -> int {
        if (inj.armed()) {
            if (inj.netRefuseConnect(w))
                throw IoError("connection refused (injected)");
            switch (inj.netEventFault(w)) {
              case NetEventFault::Drop:
                throw IoError(
                    "connection closed mid-upload (injected)");
              case NetEventFault::Timeout:
                throw IoError(
                    "receive timeout during upload (injected)");
              case NetEventFault::None:
                break;
            }
            if (inj.netCorruptArtifact(w) && !body.empty())
                body[body.size() / 2] ^= 0x20;
            sleepMs(inj.netSendDelayMs(w));
        }
        return service::httpFetch(ep.host, ep.port, "POST", path,
                                  body, headers)
            .status;
    };

    for (const Fleet::TraceArtifact &art : fleet.traceArts) {
        const std::map<std::string, std::string> headers = {
            {"x-elfsim-key", art.key},
            {"x-elfsim-name", art.name},
        };
        bool ok = false;
        unsigned delay = cfg.reconnectBaseMs;
        for (unsigned a = 0; a < cfg.artifactAttempts && !ok; ++a) {
            if (a > 0) {
                {
                    std::lock_guard<std::mutex> lk(fleet.mtx);
                    ++fleet.stats.artifactRetries;
                }
                sleepMs(delay);
                delay = nextBackoffMs(rng, delay, cfg.reconnectBaseMs,
                                      cfg.reconnectCapMs);
            }
            try {
                // A non-200 means the worker rejected the payload
                // (e.g. an injected corrupt body failed its checksum)
                // — the retry re-sends the intact staged image, so a
                // worker can never silently fall back to recompiling
                // every shard.
                const int status =
                    post("/artifact/trace", headers,
                         std::string(art.image.data(),
                                     art.image.size()));
                if (status == 200)
                    ok = true;
                else
                    ELFSIM_WARN("worker %s rejected trace '%s' "
                                "(HTTP %d)",
                                ep.id().c_str(), art.name.c_str(),
                                status);
            } catch (const SimError &e) {
                ELFSIM_WARN("trace ship to %s failed: %s",
                            ep.id().c_str(), e.what());
            }
        }
        if (!ok)
            return false;
        std::lock_guard<std::mutex> lk(fleet.mtx);
        ++fleet.stats.tracesShipped;
    }

    for (const Fleet::CkptArtifact &art : fleet.ckptArts) {
        const std::map<std::string, std::string> headers = {
            {"x-elfsim-name", art.name},
        };
        try {
            if (post("/artifact/ckpt", headers, art.bytes) == 200) {
                std::lock_guard<std::mutex> lk(fleet.mtx);
                ++fleet.stats.ckptsShipped;
            }
        } catch (const SimError &e) {
            ELFSIM_WARN("checkpoint ship to %s failed: %s",
                        ep.id().c_str(), e.what());
        }
    }
    return true;
}

int
SweepCoordinator::connectWithBackoff(Fleet &fleet, std::size_t w,
                                     Rng &rng)
{
    const WorkerEndpoint &ep = cfg.workers[w];
    FaultInjector &inj = FaultInjector::instance();
    unsigned delay = cfg.reconnectBaseMs;
    for (unsigned a = 0;; ++a) {
        if (!(inj.armed() && inj.netRefuseConnect(w))) {
            try {
                return service::connectTcp(ep.host, ep.port);
            } catch (const SimError &e) {
                ELFSIM_WARN("worker %s unreachable: %s",
                            ep.id().c_str(), e.what());
            }
        } else {
            ELFSIM_WARN("worker %s unreachable: connection refused "
                        "(injected)",
                        ep.id().c_str());
        }
        if (a + 1 >= cfg.connectAttempts)
            return -1;
        {
            std::lock_guard<std::mutex> lk(fleet.mtx);
            ++fleet.stats.connectRetries;
        }
        sleepMs(delay);
        delay = nextBackoffMs(rng, delay, cfg.reconnectBaseMs,
                              cfg.reconnectCapMs);
    }
}

bool
SweepCoordinator::runChunk(Fleet &fleet, std::size_t w,
                           const std::vector<std::size_t> &chunk,
                           Rng &rng)
{
    const WorkerEndpoint &ep = cfg.workers[w];
    const int fd = connectWithBackoff(fleet, w, rng);
    if (fd < 0)
        return false;
    // The lease timer IS the socket's receive timeout: a worker that
    // produces neither results nor heartbeats for leaseSeconds is
    // dead, and the blocked read fails with EAGAIN.
    struct timeval tv = {long(cfg.leaseSeconds), 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    {
        FaultInjector &inj = FaultInjector::instance();
        if (inj.armed())
            sleepMs(inj.netSendDelayMs(w));
    }
    const std::string body = writeShardRequest(*fleet.spec, chunk);
    std::string head = "POST /shard HTTP/1.1\r\nHost: " + ep.host +
                       "\r\nContent-Type: application/json"
                       "\r\nContent-Length: " +
                       std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    if (!service::writeAll(fd, head) || !service::writeAll(fd, body)) {
        ::close(fd);
        return false;
    }

    int status = 0;
    std::map<std::string, std::string> headers;
    std::string rest, err;
    if (!service::readHttpResponseHead(fd, status, headers, rest,
                                       err)) {
        ELFSIM_WARN("worker %s: %s", ep.id().c_str(), err.c_str());
        ::close(fd);
        return false;
    }
    if (status != 200) {
        ELFSIM_WARN("worker %s refused shard: HTTP %d",
                    ep.id().c_str(), status);
        ::close(fd);
        return false;
    }

    std::vector<char> inChunk(fleet.ex.jobs.size(), 0);
    for (std::size_t i : chunk)
        inChunk[i] = 1;

    ShardStream stream(fd, std::move(rest), w);
    std::size_t got = 0;
    bool sawDone = false;
    std::string line;
    while (stream.nextLine(line)) {
        ShardLine sl;
        try {
            sl = parseShardLine(line);
        } catch (const SimError &e) {
            ELFSIM_WARN("worker %s: bad stream line: %s",
                        ep.id().c_str(), e.what());
            break;
        }
        if (sl.kind == ShardLine::Kind::Heartbeat)
            continue;
        if (sl.kind == ShardLine::Kind::Done) {
            sawDone = true;
            break;
        }
        const std::size_t i = sl.entry.index;
        if (i >= fleet.ex.jobs.size() || !inChunk[i] ||
            sl.entry.key != fleet.keys[i]) {
            ELFSIM_WARN("worker %s: result for cell it was not "
                        "leased (index %zu)",
                        ep.id().c_str(), i);
            break;
        }
        std::lock_guard<std::mutex> lk(fleet.mtx);
        if (!fleet.done[i]) {
            fleet.results[i] = std::move(sl.entry.result);
            fleet.done[i] = 1;
            ++fleet.stats.cellsRun;
            fleet.journalLine([&](std::ostream &os) {
                writeManifestLine(os, ManifestEntry{i, fleet.keys[i],
                                                    fleet.results[i]});
            });
        }
        ++got;
    }
    ::close(fd);
    if (stream.failed())
        ELFSIM_WARN("worker %s: %s", ep.id().c_str(),
                    stream.error().c_str());
    return sawDone && got == chunk.size();
}

std::vector<std::size_t>
SweepCoordinator::pickHedge(Fleet &fleet, std::size_t w)
{
    // Duplicate the lowest-indexed busy worker's in-flight cells that
    // are neither done nor already hedged. Scanning in worker order
    // keeps hedge placement deterministic for a given interleaving.
    for (std::size_t v = 0; v < cfg.workers.size(); ++v) {
        if (v == w || fleet.currentChunk[v].empty())
            continue;
        std::vector<std::size_t> cells;
        for (std::size_t i : fleet.currentChunk[v])
            if (!fleet.done[i] && !fleet.hedged[i])
                cells.push_back(i);
        if (cells.empty())
            continue;
        for (std::size_t i : cells)
            fleet.hedged[i] = 1;
        return cells;
    }
    return {};
}

bool
SweepCoordinator::quarantineLoop(Fleet &fleet, std::size_t w, Rng &rng)
{
    const std::string id = cfg.workers[w].id();
    FaultInjector &inj = FaultInjector::instance();
    unsigned delay = cfg.probeBaseMs;
    for (unsigned probe = 0; probe < cfg.quarantineProbes; ++probe) {
        {
            // Sleep between probes, but let run completion cut the
            // probation short: a quarantined worker with nothing left
            // to help with just leaves.
            std::unique_lock<std::mutex> lk(fleet.mtx);
            if (fleet.noWorkLeft())
                return false;
            fleet.cv.wait_for(lk, std::chrono::milliseconds(delay),
                              [&] { return fleet.noWorkLeft(); });
            if (fleet.noWorkLeft())
                return false;
        }
        delay = nextBackoffMs(rng, delay, cfg.probeBaseMs,
                              cfg.probeCapMs);
        bool healthy = false;
        if (!(inj.armed() && inj.netRefuseConnect(w))) {
            try {
                healthy = service::httpFetch(cfg.workers[w].host,
                                             cfg.workers[w].port,
                                             "GET", "/healthz", "", {})
                              .status == 200;
            } catch (const SimError &) {
            }
        }
        if (!healthy)
            continue;
        // Healthy again. Re-ship artifacts first (the worker may have
        // restarted with a cold cache); a failed re-ship keeps it in
        // probation rather than re-admitting a worker that would
        // recompile every shard.
        if (!shipArtifactsToWorker(fleet, w))
            continue;
        {
            std::lock_guard<std::mutex> lk(fleet.mtx);
            fleet.workerState[w] = Fleet::Alive;
            fleet.workerFailures[w] = 0;
            ++fleet.stats.readmissions;
        }
        ELFSIM_WARN("worker %s re-admitted after probation",
                    id.c_str());
        return true;
    }
    {
        std::lock_guard<std::mutex> lk(fleet.mtx);
        fleet.workerState[w] = Fleet::Dead;
        ++fleet.stats.workersDead;
    }
    fleet.cv.notify_all();
    ELFSIM_WARN("worker %s dead after %u failed probes", id.c_str(),
                cfg.quarantineProbes);
    return false;
}

void
SweepCoordinator::workerLoop(Fleet &fleet, std::size_t w)
{
    const std::string id = cfg.workers[w].id();
    Rng rng(mix64(cfg.backoffSeed, w));

    {
        std::unique_lock<std::mutex> lk(fleet.mtx);
        const bool quarantined =
            fleet.workerState[w] == Fleet::Quarantined;
        lk.unlock();
        // A worker quarantined during artifact staging starts life in
        // probation; it joins the fleet only after a healthy probe.
        if (quarantined && !quarantineLoop(fleet, w, rng))
            return;
    }

    for (;;) {
        std::vector<std::size_t> chunk;
        bool hedge = false;
        {
            std::unique_lock<std::mutex> lk(fleet.mtx);
            for (;;) {
                if (!fleet.chunks.empty()) {
                    chunk = std::move(fleet.chunks.front());
                    fleet.chunks.pop_front();
                    // A requeued cell can complete in the meantime (a
                    // winning hedge); dispatching it again would only
                    // burn worker time.
                    chunk.erase(std::remove_if(
                                    chunk.begin(), chunk.end(),
                                    [&](std::size_t i)
                                    { return bool(fleet.done[i]); }),
                                chunk.end());
                    if (chunk.empty())
                        continue;
                    break;
                }
                if (fleet.inflightChunks == 0)
                    return;
                // The queue is dry but another worker's chunk is
                // still in flight — a failure there requeues cells
                // this worker must be around to adopt (the
                // reassignment path of a killed worker's leases).
                if (cfg.hedgeDelayMs == 0) {
                    fleet.cv.wait(lk, [&] {
                        return !fleet.chunks.empty() ||
                               fleet.inflightChunks == 0;
                    });
                    continue;
                }
                // Hedged dispatch: give the fleet hedgeDelayMs to
                // produce a queue entry, then duplicate a straggler's
                // cells (first completion wins; done[] dedupes).
                fleet.cv.wait_for(
                    lk, std::chrono::milliseconds(cfg.hedgeDelayMs),
                    [&] {
                        return !fleet.chunks.empty() ||
                               fleet.inflightChunks == 0;
                    });
                if (!fleet.chunks.empty() ||
                    fleet.inflightChunks == 0)
                    continue;
                chunk = pickHedge(fleet, w);
                if (chunk.empty())
                    continue;
                hedge = true;
                break;
            }
            ++fleet.inflightChunks;
            if (hedge)
                ++fleet.stats.hedges;
            else
                ++fleet.stats.chunksDispatched;
            fleet.currentChunk[w] = chunk;
            for (std::size_t i : chunk) {
                LeaseEvent e;
                e.kind = LeaseEvent::Kind::Lease;
                e.index = i;
                e.key = fleet.keys[i];
                e.worker = id;
                e.leaseSeconds = cfg.leaseSeconds;
                e.hedge = hedge;
                fleet.journalLine([&](std::ostream &os)
                                  { writeLeaseLine(os, e); });
            }
            if (leaseObserver)
                leaseObserver(chunk, id);
        }

        const bool ok = runChunk(fleet, w, chunk, rng);

        bool quarantined = false;
        {
            std::lock_guard<std::mutex> lk(fleet.mtx);
            fleet.currentChunk[w].clear();
            std::vector<std::size_t> requeue;
            for (std::size_t i : chunk) {
                if (hedge)
                    fleet.hedged[i] = 0;
                if (fleet.done[i])
                    continue;
                LeaseEvent e;
                e.kind = LeaseEvent::Kind::Expire;
                e.index = i;
                e.worker = id;
                e.hedge = hedge;
                fleet.journalLine([&](std::ostream &os)
                                  { writeLeaseLine(os, e); });
                // A losing or failed hedge expires quietly: the
                // primary lease still owns the cell, so nothing is
                // requeued and the cell's retry budget is untouched.
                if (hedge)
                    continue;
                ++fleet.stats.leasesExpired;
                if (++fleet.attempts[i] > cfg.maxCellRetries) {
                    fleet.results[i] = abandonedResult(
                        fleet.ex.jobs[i],
                        errorf("distributed cell abandoned after %u "
                               "expired leases",
                               fleet.attempts[i]),
                        fleet.attempts[i]);
                    fleet.done[i] = 1;
                    ++fleet.stats.cellsSynthFailed;
                    fleet.journalLine([&](std::ostream &os) {
                        writeManifestLine(
                            os, ManifestEntry{i, fleet.keys[i],
                                              fleet.results[i]});
                    });
                } else {
                    requeue.push_back(i);
                    ++fleet.stats.requeues;
                }
            }
            if (!requeue.empty())
                fleet.chunks.push_back(std::move(requeue));
            --fleet.inflightChunks;
            if (!ok && ++fleet.workerFailures[w] >=
                           cfg.maxWorkerFailures) {
                fleet.workerState[w] = Fleet::Quarantined;
                ++fleet.stats.quarantines;
                quarantined = true;
            }
        }
        fleet.cv.notify_all();
        if (quarantined) {
            ELFSIM_WARN("worker %s quarantined after %u failed "
                        "leases",
                        id.c_str(), cfg.maxWorkerFailures);
            if (!quarantineLoop(fleet, w, rng))
                return;
        }
    }
}

void
SweepCoordinator::runFallback(Fleet &fleet,
                              const std::vector<std::size_t> &pending)
{
    std::vector<std::size_t> remaining;
    for (std::size_t i : pending)
        if (!fleet.done[i])
            remaining.push_back(i);
    if (remaining.empty())
        return;
    ELFSIM_WARN("fleet lost; finishing %zu cells in-process",
                remaining.size());

    for (std::size_t i : remaining) {
        LeaseEvent e;
        e.kind = LeaseEvent::Kind::Lease;
        e.index = i;
        e.key = fleet.keys[i];
        e.worker = kFallbackWorker;
        e.leaseSeconds = cfg.leaseSeconds;
        fleet.journalLine([&](std::ostream &os)
                          { writeLeaseLine(os, e); });
    }

    // The same subset-run path a worker would use, with the same
    // policy shape (journaling stripped, keep-going forced): global
    // indices, seeds and RunResult bytes match a --local run exactly.
    SweepRunner runner(fleet.spec->jobs);
    SweepPolicy pol = fleet.spec->policy;
    pol.manifestPath.clear();
    pol.resume = false;
    pol.keepGoing = true;
    runner.setPolicy(std::move(pol));
    runner.setBaseSeed(fleet.spec->baseSeed);
    runner.setCellObserver([&](std::size_t i, const RunResult &r) {
        std::lock_guard<std::mutex> lk(fleet.mtx);
        fleet.journalLine([&](std::ostream &os) {
            writeManifestLine(os, ManifestEntry{i, fleet.keys[i], r});
        });
    });
    std::vector<RunResult> rs = runner.run(fleet.ex.jobs, remaining);
    for (std::size_t i : remaining) {
        fleet.results[i] = std::move(rs[i]);
        fleet.done[i] = 1;
        ++fleet.stats.cellsFallback;
    }
}

std::vector<RunResult>
SweepCoordinator::run(const SweepSpec &spec)
{
    if (cfg.workers.empty())
        throw ConfigError("distributed sweep needs at least 1 worker");
    if (std::uint64_t(cfg.leaseSeconds) * 1000 <=
        cfg.workerHeartbeatMs)
        throw ConfigError(errorf(
            "lease (%us) must exceed the worker heartbeat period "
            "(%ums): heartbeats could never reset the lease timer",
            cfg.leaseSeconds, cfg.workerHeartbeatMs));
    validateSweepSpec(spec);

    Fleet fleet;
    fleet.spec = &spec;
    fleet.ex = expandSweep(spec);
    const std::size_t n = fleet.ex.jobs.size();
    fleet.keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        fleet.keys.push_back(
            sweepJobKey(fleet.ex.jobs[i], i, spec.baseSeed));
    fleet.results.resize(n);
    fleet.done.assign(n, 0);
    fleet.attempts.assign(n, 0);
    fleet.hedged.assign(n, 0);
    fleet.workerFailures.assign(cfg.workers.size(), 0);
    fleet.workerState.assign(cfg.workers.size(), Fleet::Alive);
    fleet.currentChunk.assign(cfg.workers.size(), {});
    fleet.stats.cellsTotal = n;

    // Adopt the ledger's completed cells (a crashed coordinator's
    // survivors); index + jobKey must match, exactly like a manifest
    // resume, so a stale ledger never contaminates results.
    if (cfg.resume && !cfg.ledgerPath.empty()) {
        std::ifstream in(cfg.ledgerPath);
        if (in) {
            LedgerState state = readLedger(in);
            for (ManifestEntry &e : state.completed) {
                if (e.index >= n || e.key != fleet.keys[e.index] ||
                    !e.result.ok())
                    continue;
                fleet.results[e.index] = std::move(e.result);
                fleet.done[e.index] = 1;
                ++fleet.stats.cellsAdopted;
            }
        }
    }
    if (!cfg.ledgerPath.empty()) {
        fleet.ledger.open(cfg.ledgerPath,
                          cfg.resume ? std::ios::out | std::ios::app
                                     : std::ios::out | std::ios::trunc);
        if (!fleet.ledger)
            throw IoError(errorf("cannot open ledger '%s'",
                                 cfg.ledgerPath.c_str()));
        fleet.journaling = true;
    }

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < n; ++i)
        if (!fleet.done[i])
            pending.push_back(i);
    if (pending.empty()) {
        lastStats = fleet.stats;
        return std::move(fleet.results);
    }

    const auto t0 = std::chrono::steady_clock::now();
    shipArtifacts(fleet);

    std::size_t alive = 0;
    for (int s : fleet.workerState)
        alive += s == Fleet::Alive ? 1 : 0;
    if (alive == 0 && !cfg.localFallback)
        throw IoError("every worker failed artifact staging; is the "
                      "fleet up (elfsimd --worker)?");

    std::size_t chunkSize = cfg.chunkCells;
    if (chunkSize == 0)
        chunkSize = std::max<std::size_t>(
            1, pending.size() / (4 * std::max<std::size_t>(1, alive)));
    for (std::size_t at = 0; at < pending.size(); at += chunkSize)
        fleet.chunks.emplace_back(
            pending.begin() + std::ptrdiff_t(at),
            pending.begin() +
                std::ptrdiff_t(
                    std::min(at + chunkSize, pending.size())));

    // Quarantined workers get a thread too: theirs starts in the
    // probation loop and joins the fleet on a healthy probe.
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < cfg.workers.size(); ++w)
        threads.emplace_back(&SweepCoordinator::workerLoop, this,
                             std::ref(fleet), w);
    for (std::thread &t : threads)
        t.join();

    // Whatever is left had no live worker to run it: finish it
    // in-process (byte-identical to --local) or degrade it.
    if (cfg.localFallback) {
        runFallback(fleet, pending);
    } else {
        for (std::size_t i : pending) {
            if (fleet.done[i])
                continue;
            fleet.results[i] = abandonedResult(
                fleet.ex.jobs[i],
                "no live worker (fleet died before this cell ran)",
                fleet.attempts[i]);
            fleet.done[i] = 1;
            ++fleet.stats.cellsSynthFailed;
        }
    }

    fleet.stats.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    lastStats = fleet.stats;

    if (fleet.stats.cellsRun == 0 && fleet.stats.cellsFallback == 0 &&
        !cfg.localFallback)
        throw IoError("no worker completed any cell; is the fleet up "
                      "(elfsimd --worker)?");
    return std::move(fleet.results);
}

} // namespace dist
} // namespace elfsim
