#include "sim/report.hh"

#include <iomanip>
#include <map>

#include "common/export.hh"

namespace elfsim {

// ---------------------------------------------------------------------
// The shared stat-walk: every metric of the report is enumerated here,
// exactly once; all reporters are renderings of this sequence.
// ---------------------------------------------------------------------

void
walkSummary(const Core &core, ReportVisitor &v)
{
    const auto &be = core.backend().stats();
    const double insts = double(be.committed);
    const double kilo = insts / 1000.0;

    v.beginSection("summary");
    v.rowCount("cycles", core.cycles());
    v.rowCount("instructions", be.committed);
    v.row("IPC", core.cycles() ? insts / double(core.cycles()) : 0);
    v.row("branch MPKI",
          kilo > 0 ? (be.condMispredicts + be.targetMispredicts) / kilo
                   : 0);
    v.rowCount("mispredict flushes", core.stats().execFlushes);
    v.rowCount("memory-order flushes", core.stats().memOrderFlushes);
    v.rowCount("decode resteers", core.stats().decodeResteers);
    v.row("redirect->fetch latency", core.stats().avgRedirectToFetch(),
          "cycles");

    if (isElf(core.config().variant)) {
        const ElfStats &elf = core.elf().stats();
        v.rowCount("coupled periods", elf.coupledPeriods);
        v.row("insts/coupled period", elf.avgCoupledInstsPerPeriod());
        v.rowCount("divergence flushes", elf.divergenceFlushes);
        v.rowCount("payload-held flushes",
                   core.stats().pendingFlushWaits);
        v.rowCount("stall resteers", core.stats().stallResteers);
    }
}

void
walkFullReport(const Core &core, ReportVisitor &v)
{
    walkSummary(core, v);

    v.beginSection("frontend");
    if (core.config().variant != FrontendVariant::NoDcf) {
        const DcfStats &d = core.elf().dcf().stats();
        v.rowCount("dcf blocks generated", d.blocks);
        v.rowCount("dcf btb-miss blocks", d.btbMissBlocks);
        v.rowCount("dcf taken blocks", d.takenBlocks);
        v.rowCount("dcf bubble cycles", d.bubbleCycles);
        v.rowCount("  .. bimodal overrides", d.bubblesBimodalOverride);
        v.rowCount("  .. bp2 taken resteers", d.bubblesBp2Taken);
        v.rowCount("  .. short-entry proxies", d.bubblesShortEntry);
        v.rowCount("  .. ittage accesses", d.bubblesIndirectL1);
        v.rowCount("  .. l2-btb access", d.bubblesAccess);
        v.rowCount("dcf restarts", d.restarts);
        const FetchStats &f = core.elf().decoupledEngine().stats();
        v.rowCount("fetched (decoupled)", f.insts);
        v.rowCount("  .. wrong path", f.wrongPathInsts);
        v.rowCount("faq-empty cycles", f.faqEmptyCycles);
        v.rowCount("icache-stall cycles", f.icacheStallCycles);
        v.rowCount("taken cross-fetches", f.takenCrossFetches);
    }
    {
        const CoupledStats &c = core.elf().coupledEngine().stats();
        if (c.insts) {
            v.rowCount("fetched (coupled)", c.insts);
            v.rowCount("  .. wrong path", c.wrongPathInsts);
            v.rowCount("coupled control stalls", c.controlStalls);
            v.rowCount("  .. at conditionals", c.stallsCond);
            v.rowCount("  .. at returns", c.stallsReturn);
            v.rowCount("  .. at indirects", c.stallsIndirect);
            v.rowCount("coupled taken bubbles", c.takenBubbleCycles);
        }
    }
    {
        const DecodeStats &d = core.decode().stats();
        v.rowCount("decoded", d.insts);
        v.rowCount("misfetch recoveries", d.resteers);
        v.rowCount("  .. unconditional", d.resteerUncond);
        v.rowCount("  .. conditional", d.resteerCond);
        v.rowCount("  .. return", d.resteerReturn);
        v.rowCount("  .. indirect", d.resteerIndirect);
    }

    v.beginSection("btb");
    v.rowCount("lookups", core.btb().lookups());
    v.row("cumulative hit L0", 100 * core.btb().cumulativeHitRate(0),
          "%");
    v.row("cumulative hit L1", 100 * core.btb().cumulativeHitRate(1),
          "%");
    v.row("cumulative hit L2", 100 * core.btb().cumulativeHitRate(2),
          "%");
    v.rowCount("entries established",
               core.btbBuilder().establishments());
    v.rowCount("amendments (splits)", core.btbBuilder().amendments());

    v.beginSection("memory");
    core.memory().forEachStatGroup(
        [&v](const stats::StatGroup &g) { v.group(g); });

    v.beginSection("backend");
    const auto &b = core.backend().stats();
    v.rowCount("committed branches", b.committedBranches);
    v.rowCount("cond mispredicts", b.condMispredicts);
    v.rowCount("target mispredicts", b.targetMispredicts);
    v.rowCount("coupled-mode committed", b.coupledCommitted);
    v.rowCount("rob-full cycles", b.robFullCycles);
}

// ---------------------------------------------------------------------
// Text rendering (the classic aligned report).
// ---------------------------------------------------------------------

namespace {

class TextVisitor : public ReportVisitor
{
  public:
    TextVisitor(std::ostream &os, const Core &core)
        : os(os), core(core)
    {}

    void
    beginSection(const std::string &key) override
    {
        std::string title = key;
        if (key == "summary") {
            title = std::string("run summary (") +
                    variantName(core.config().variant) + ")";
        } else if (key == "frontend") {
            title = "front end";
        } else if (key == "memory") {
            title = "memory hierarchy";
        } else if (key == "backend") {
            title = "back end";
        }
        if (!first)
            os << "\n";
        first = false;
        os << "=== " << title << " ===\n";
    }

    void
    row(const std::string &label, double value,
        const std::string &unit) override
    {
        os << "  " << std::left << std::setw(34) << label << std::right
           << std::setw(14) << std::fixed << std::setprecision(3)
           << value << " " << unit << "\n";
    }

    void
    rowCount(const std::string &label, std::uint64_t value,
             const std::string &unit) override
    {
        os << "  " << std::left << std::setw(34) << label << std::right
           << std::setw(14) << value << " " << unit << "\n";
    }

    void
    group(const stats::StatGroup &g) override
    {
        g.dump(os);
    }

  private:
    std::ostream &os;
    const Core &core;
    bool first = true;
};

// ---------------------------------------------------------------------
// JSON rendering.
// ---------------------------------------------------------------------

/** Strip the "  .. " sub-row decoration off a text label so it can be
 *  a clean JSON key; disambiguate repeats within a section. */
class JsonVisitor : public ReportVisitor
{
  public:
    explicit JsonVisitor(JsonWriter &w) : w(w) {}

    void
    beginSection(const std::string &key) override
    {
        finishSection();
        w.key(key);
        w.beginObject();
        open = true;
        seen.clear();
    }

    void
    row(const std::string &label, double value,
        const std::string &unit) override
    {
        (void)unit;
        w.field(uniqueKey(label), value);
    }

    void
    rowCount(const std::string &label, std::uint64_t value,
             const std::string &unit) override
    {
        (void)unit;
        w.field(uniqueKey(label), value);
    }

    void
    group(const stats::StatGroup &g) override
    {
        w.key(uniqueKey(g.name()));
        stats::writeJson(w, g);
    }

    /** Close the trailing section object. */
    void
    finishSection()
    {
        if (open)
            w.endObject();
        open = false;
    }

  private:
    std::string
    uniqueKey(const std::string &label)
    {
        std::string key = label;
        const std::size_t start = key.find_first_not_of(' ');
        key.erase(0, start == std::string::npos ? key.size() : start);
        if (key.rfind("..", 0) == 0) {
            key.erase(0, 2);
            key.erase(0, key.find_first_not_of(' '));
        }
        const int n = ++seen[key];
        if (n > 1)
            key += "_" + std::to_string(n);
        return key;
    }

    JsonWriter &w;
    std::map<std::string, int> seen;
    bool open = false;
};

void
jsonReport(std::ostream &os, const Core &core, bool full)
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "elfsim-report-v1");
    w.field("variant", variantName(core.config().variant));
    w.key("sections");
    w.beginObject();
    JsonVisitor v(w);
    if (full)
        walkFullReport(core, v);
    else
        walkSummary(core, v);
    v.finishSection();
    w.endObject();
    w.endObject();
}

} // namespace

void
TextReporter::summary(std::ostream &os, const Core &core) const
{
    TextVisitor v(os, core);
    walkSummary(core, v);
}

void
TextReporter::fullReport(std::ostream &os, const Core &core) const
{
    TextVisitor v(os, core);
    walkFullReport(core, v);
}

void
JsonReporter::summary(std::ostream &os, const Core &core) const
{
    jsonReport(os, core, false);
}

void
JsonReporter::fullReport(std::ostream &os, const Core &core) const
{
    jsonReport(os, core, true);
}

void
printSummary(std::ostream &os, const Core &core)
{
    TextReporter().summary(os, core);
}

void
printFullReport(std::ostream &os, const Core &core)
{
    TextReporter().fullReport(os, core);
}

} // namespace elfsim
