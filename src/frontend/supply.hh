/**
 * @file
 * Instruction materialization shared by the decoupled and coupled
 * fetch paths: given a fetch address, produce a DynInst bound either
 * to the architectural (oracle) stream or to the wrong path.
 *
 * The supply tracks the architectural cursor: while the fetch address
 * equals the next architectural PC, instructions are correct-path and
 * carry their resolved outcome; the first deviation latches
 * wrong-path mode until the next redirect. This is the standard
 * oracle-assisted wrong-path model — wrong-path instructions are real
 * instructions from the static image (or fabricated NOPs off the
 * image) and access the caches before being squashed.
 */

#ifndef ELFSIM_FRONTEND_SUPPLY_HH
#define ELFSIM_FRONTEND_SUPPLY_HH

#include "common/stats.hh"
#include "frontend/pipeline_types.hh"
#include "workload/oracle_stream.hh"
#include "workload/wrong_path.hh"

namespace elfsim {

/** Materializes DynInsts for fetch addresses. */
class InstSupply
{
  public:
    InstSupply(OracleStream &oracle, WrongPathWalker &walker)
        : oracle(oracle), walker(walker)
    {}

    /**
     * Materialize the instruction at @a pc.
     *
     * Correct-path instructions get their resolved outcome
     * (taken/target/memory address) from the oracle; wrong-path
     * instructions resolve branches to "whatever was predicted" (set
     * by the caller) and sample wrong-path memory addresses.
     *
     * @return the instruction, or std::nullopt for a misaligned pc.
     */
    DynInst make(Addr pc, Cycle now, FetchMode mode);

    /** @return true iff the supply is latched on the wrong path. */
    bool onWrongPath() const { return wrongPath; }

    /** Next architectural index to fetch. */
    SeqNum cursor() const { return oracleCursor; }

    /** PC the correct path resumes at (for redirects). */
    Addr correctPC() { return oracle.pcAt(oracleCursor); }

    /**
     * Redirect: resume the correct path at architectural index
     * @a cursor (clears the wrong-path latch).
     */
    void
    redirect(SeqNum cursor)
    {
        oracleCursor = cursor;
        wrongPath = false;
    }

    /** Sequence number that the next materialized inst will get. */
    SeqNum nextSeq() const { return seqCounter + 1; }

    /** Total wrong-path instructions materialized. */
    std::uint64_t wrongPathInsts() const { return wrongPathCount; }

    /**
     * Restore counters from a warm-state checkpoint. The sequence
     * counter salts wrong-path memory addresses, so byte-identical
     * resumed runs must restore it, not just the cursor.
     */
    void
    restoreCounters(SeqNum seq_counter, std::uint64_t wrong_path_insts)
    {
        seqCounter = seq_counter;
        wrongPathCount = wrong_path_insts;
    }

    /** Raw sequence counter (checkpoint payload; see restoreCounters). */
    SeqNum seqCount() const { return seqCounter; }

  private:
    OracleStream &oracle;
    WrongPathWalker &walker;
    SeqNum seqCounter = 0;
    SeqNum oracleCursor = 1;
    bool wrongPath = false;
    std::uint64_t wrongPathCount = 0;
};

} // namespace elfsim

#endif // ELFSIM_FRONTEND_SUPPLY_HH
