/**
 * @file
 * elfsimd — the sweep-as-a-service daemon (service/daemon.hh). Binds
 * a loopback HTTP endpoint, then serves /healthz, /stats, and POST
 * /sweep (elfsim-sweepspec-v1 in, streamed elfsim-results-v2 out)
 * until SIGINT/SIGTERM.
 *
 *   elfsimd --port 8371 &
 *   curl -s http://127.0.0.1:8371/healthz
 *   curl -s --data-binary @fig7.spec.json http://127.0.0.1:8371/sweep
 *   curl -s http://127.0.0.1:8371/stats
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_util.hh"
#include "service/daemon.hh"

using namespace elfsim;
using namespace elfsim::bench;

namespace {

void
printDaemonUsage(const char *argv0, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s [options]\n"
        "  --host A        bind address (default 127.0.0.1)\n"
        "  --port N        listen port (default 0 = ephemeral; the "
        "bound port is printed)\n"
        "  --jobs N        sweep threads (default: $ELFSIM_JOBS, then "
        "hardware)\n"
        "  --worker        enable the distributed-fleet endpoints "
        "(POST /shard,\n"
        "                  /artifact/trace, /artifact/ckpt) for an "
        "elfsim-coord\n"
        "  --send-timeout S  response-write stall limit in seconds "
        "(default 30);\n"
        "                  a client that stops reading for S seconds "
        "cancels its sweep\n"
        "  --heartbeat-ms N  shard-stream liveness tick period "
        "(default 1000);\n"
        "                  must stay under the coordinator's --lease\n"
        "  --trace-cache D persist compiled workload traces as "
        "content-keyed files in D\n"
        "  --no-trace      disable trace compilation (lazy "
        "per-instruction generation)\n"
        "  --ckpt-cache D  persist warm-state checkpoints as content-"
        "keyed files in D\n"
        "  --no-ckpt       disable checkpoint artifacts\n"
        "  --help          this text\n"
        "exit status: 0 ok, 1 bind/serve error, 2 usage error, "
        "130 interrupted\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServiceConfig cfg;
    std::string traceCacheDir, ckptCacheDir;
    bool noTrace = false, noCkpt = false;

    const auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: option '%s' needs a value\n",
                         argv[0], argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--host"))
            cfg.host = value(i);
        else if (!std::strcmp(argv[i], "--port"))
            cfg.port = std::uint16_t(
                parseCount(argv[0], "--port", value(i), 65535));
        else if (!std::strcmp(argv[i], "--jobs"))
            cfg.jobs = unsigned(
                parseCount(argv[0], "--jobs", value(i), UINT_MAX));
        else if (!std::strcmp(argv[i], "--worker"))
            cfg.worker = true;
        else if (!std::strcmp(argv[i], "--send-timeout"))
            cfg.sendTimeoutSec = long(parseCount(
                argv[0], "--send-timeout", value(i), 86400));
        else if (!std::strcmp(argv[i], "--heartbeat-ms"))
            cfg.heartbeatMs = unsigned(parseCount(
                argv[0], "--heartbeat-ms", value(i), 3600000));
        else if (!std::strcmp(argv[i], "--trace-cache"))
            traceCacheDir = value(i);
        else if (!std::strcmp(argv[i], "--no-trace"))
            noTrace = true;
        else if (!std::strcmp(argv[i], "--ckpt-cache"))
            ckptCacheDir = value(i);
        else if (!std::strcmp(argv[i], "--no-ckpt"))
            noCkpt = true;
        else if (!std::strcmp(argv[i], "--help") ||
                 !std::strcmp(argv[i], "-h")) {
            printDaemonUsage(argv[0], stdout);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         argv[i]);
            printDaemonUsage(argv[0], stderr);
            return 2;
        }
    }

    if (noTrace)
        TraceCache::instance().setEnabled(false);
    if (!traceCacheDir.empty())
        TraceCache::instance().setDirectory(traceCacheDir);
    if (noCkpt)
        CheckpointStore::instance().setEnabled(false);
    if (!ckptCacheDir.empty())
        CheckpointStore::instance().setDirectory(ckptCacheDir);

    service::SweepService svc(cfg);
    try {
        svc.start();
    } catch (const SimError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
    std::printf("elfsimd listening on %s:%u\n", cfg.host.c_str(),
                unsigned(svc.port()));
    std::fflush(stdout);

    // Serve until SIGINT/SIGTERM raises the process-wide interrupt
    // flag (the same mechanism the sweep benches use for Ctrl-C).
    SweepRunner::clearInterrupt();
    SweepRunner::installSignalHandlers();
    while (!SweepRunner::interruptRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::printf("elfsimd shutting down\n");
    svc.stop();
    return 130;
}
