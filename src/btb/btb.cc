#include "btb/btb.hh"

#include "common/logging.hh"

namespace elfsim {

BtbLevel::BtbLevel(const BtbLevelParams &params)
    : params(params),
      assoc_(params.assoc == 0 ? params.entries : params.assoc),
      ways(params.entries)
{
    ELFSIM_ASSERT(params.entries % assoc_ == 0,
                  "BTB '%s': %u entries not divisible by %u ways",
                  params.name.c_str(), params.entries, assoc_);
}

const BtbEntry *
BtbLevel::lookup(Addr pc)
{
    const unsigned set = setOf(pc);
    ++useTick;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways[set * assoc_ + w];
        if (way.entry.valid && way.entry.startPC == pc) {
            way.lastUse = useTick;
            ++hitCount;
            return &way.entry;
        }
    }
    ++missCount;
    return nullptr;
}

void
BtbLevel::insert(const BtbEntry &entry)
{
    const unsigned set = setOf(entry.startPC);
    ++useTick;
    Way *victim = nullptr;
    // Overwrite in place (amendment/split), else an invalid way, else
    // the LRU way.
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways[set * assoc_ + w];
        if (way.entry.valid && way.entry.startPC == entry.startPC) {
            victim = &way;
            break;
        }
    }
    if (!victim) {
        for (unsigned w = 0; w < assoc_; ++w) {
            Way &way = ways[set * assoc_ + w];
            if (!way.entry.valid) {
                victim = &way;
                break;
            }
        }
    }
    if (!victim) {
        victim = &ways[set * assoc_];
        for (unsigned w = 1; w < assoc_; ++w) {
            Way &way = ways[set * assoc_ + w];
            if (way.lastUse < victim->lastUse)
                victim = &way;
        }
    }
    victim->entry = entry;
    victim->lastUse = useTick;
}

bool
BtbLevel::present(Addr pc) const
{
    const unsigned set = setOf(pc);
    for (unsigned w = 0; w < assoc_; ++w) {
        const Way &way = ways[set * assoc_ + w];
        if (way.entry.valid && way.entry.startPC == pc)
            return true;
    }
    return false;
}

bool
BtbLevel::updateIfPresent(const BtbEntry &entry)
{
    const unsigned set = setOf(entry.startPC);
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = ways[set * assoc_ + w];
        if (way.entry.valid && way.entry.startPC == entry.startPC) {
            way.entry = entry;
            return true;
        }
    }
    return false;
}

void
BtbLevel::reset()
{
    for (Way &w : ways)
        w = Way{};
    hitCount = missCount = 0;
}

namespace {

void
saveEntry(Serializer &s, const BtbEntry &e)
{
    s.boolean(e.valid);
    s.u64(e.startPC);
    s.u8(e.numInsts);
    s.u8(std::uint8_t(e.termination));
    for (const BtbSlot &slot : e.slots) {
        s.boolean(slot.valid);
        s.u8(slot.offset);
        s.u8(std::uint8_t(slot.kind));
        s.u64(slot.target);
    }
}

void
loadEntry(Deserializer &d, BtbEntry &e)
{
    e.valid = d.boolean();
    e.startPC = d.u64();
    e.numInsts = d.u8();
    const std::uint8_t term = d.u8();
    if (term > std::uint8_t(BtbTermination::MaxInsts))
        throw ParseError("btb: bad termination byte");
    e.termination = BtbTermination(term);
    for (BtbSlot &slot : e.slots) {
        slot.valid = d.boolean();
        slot.offset = d.u8();
        const std::uint8_t kind = d.u8();
        if (kind > std::uint8_t(BranchKind::Return))
            throw ParseError("btb: bad branch kind byte");
        slot.kind = BranchKind(kind);
        slot.target = d.u64();
    }
}

} // namespace

void
BtbLevel::saveState(Serializer &s) const
{
    s.u64(ways.size());
    for (const Way &w : ways) {
        saveEntry(s, w.entry);
        s.u64(w.lastUse);
    }
    s.u64(useTick);
    s.u64(hitCount);
    s.u64(missCount);
}

void
BtbLevel::loadState(Deserializer &d)
{
    if (d.u64() != ways.size())
        throw ParseError("btb: level geometry mismatch");
    for (Way &w : ways) {
        loadEntry(d, w.entry);
        w.lastUse = d.u64();
    }
    useTick = d.u64();
    hitCount = d.u64();
    missCount = d.u64();
}

void
MultiBtb::saveState(Serializer &s) const
{
    for (const BtbLevel &l : levels)
        l.saveState(s);
    s.u64(lookupCount);
    for (std::uint64_t h : levelHitCount)
        s.u64(h);
}

void
MultiBtb::loadState(Deserializer &d)
{
    for (BtbLevel &l : levels)
        l.loadState(d);
    lookupCount = d.u64();
    for (std::uint64_t &h : levelHitCount)
        h = d.u64();
}

MultiBtb::MultiBtb(const MultiBtbParams &params) : params(params)
{
    levels.emplace_back(params.l0);
    levels.emplace_back(params.l1);
    levels.emplace_back(params.l2);
}

BtbLookupResult
MultiBtb::lookup(Addr pc)
{
    ++lookupCount;
    BtbLookupResult res;
    for (unsigned l = 0; l < levels.size(); ++l) {
        if (const BtbEntry *e = levels[l].lookup(pc)) {
            res.hit = true;
            res.level = static_cast<int>(l);
            res.latency = levels[l].config().latency;
            res.entry = *e;
            ++levelHitCount[l];
            // Promote into the inner levels.
            for (unsigned inner = 0; inner < l; ++inner)
                levels[inner].insert(*e);
            return res;
        }
    }
    return res;
}

void
MultiBtb::insert(const BtbEntry &entry)
{
    ELFSIM_ASSERT(entry.valid && entry.numInsts >= 1 &&
                      entry.numInsts <= btbMaxInsts,
                  "inserting malformed BTB entry");
    // Keep the L0 coherent if it already caches this entry
    // (amendment/split must not leave a stale copy inside).
    levels[0].updateIfPresent(entry);
    levels[1].insert(entry);
    levels[2].insert(entry);
}

bool
MultiBtb::present(Addr pc) const
{
    for (const BtbLevel &l : levels) {
        if (l.present(pc))
            return true;
    }
    return false;
}

void
MultiBtb::reset()
{
    for (BtbLevel &l : levels)
        l.reset();
    lookupCount = 0;
    levelHitCount = {};
}

double
MultiBtb::cumulativeHitRate(unsigned l) const
{
    if (lookupCount == 0)
        return 0.0;
    std::uint64_t hits = 0;
    for (unsigned i = 0; i <= l && i < 3; ++i)
        hits += levelHitCount[i];
    return static_cast<double>(hits) /
           static_cast<double>(lookupCount);
}

} // namespace elfsim
