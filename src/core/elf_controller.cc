#include "core/elf_controller.hh"

#include "common/logging.hh"

#include <cstdio>

namespace elfsim {

ElfController::ElfController(const ElfControllerParams &params,
                             MemHierarchy &mem, InstSupply &supply,
                             Faq &faq, CheckpointQueue &ckpts,
                             PredictorBank &bank, MultiBtb &btb)
    : params(params), mem(mem), supply(supply), faq(faq), ckpts(ckpts),
      bank(bank), coupledPreds(params.coupledPreds),
      divTracker(params.divergence),
      prefetchInflight(params.maxInstPrefetch ? params.maxInstPrefetch
                                              : 1)
{
    if (params.variant == FrontendVariant::NoDcf) {
        policy = std::make_unique<NoDcfPolicy>(bank);
    } else {
        policy = std::make_unique<ElfCoupledPolicy>(
            params.variant, coupledPreds,
            params.condRequireSaturation);
    }

    if (params.variant != FrontendVariant::NoDcf) {
        dcfEngine = std::make_unique<DecoupledFetcher>(btb, bank, faq);
        decEng = std::make_unique<DecoupledFetchEngine>(
            params.fetch, mem, supply, faq, ckpts);
    }
    cplEng = std::make_unique<CoupledFetchEngine>(
        params.fetch, mem, supply, ckpts, *policy);

    curMode = params.variant == FrontendVariant::Dcf
                  ? FetchMode::Decoupled
                  : FetchMode::Coupled;
}

void
ElfController::dcfTick(Cycle now)
{
    if (dcfEngine)
        dcfEngine->tick(now);
}

void
ElfController::expandDecoupledRecords(const FaqEntry &e, unsigned first,
                                      unsigned count)
{
    for (unsigned i = first; i < first + count; ++i) {
        const Addr pc = e.startPC + instsToBytes(i);
        const FaqBranch *fb = e.branchAt(i);
        // Whether the DCF pushed a history bit for this instance is
        // exactly whether it sits in a BTB slot of this block; the
        // core corrects the in-flight instruction's flag so commit
        // pushes (or skips) the matching architectural bit.
        visFixes.emplace_back(
            periodStartSeq + decoupledCount + (i - first),
            fb != nullptr);
        if (fb) {
            divTracker.recordDecoupled(
                true, fb->predTaken, fb->kind, pc,
                fb->predTaken ? fb->target : pc + instBytes,
                fb->tagePred, fb->ittagePred);
        } else {
            divTracker.recordDecoupled(false, false, BranchKind::None,
                                       pc, pc + instBytes);
        }
    }
}

void
ElfController::patchFromFaq(const FaqEntry &e, unsigned offset,
                            SeqNum seq)
{
    PredPatch p;
    p.seq = seq;
    p.clearStall = true;
    const FaqBranch *fb = e.branchAt(offset);
    if (fb) {
        p.historyPushed = true;
        p.taken = fb->predTaken;
        p.target = fb->predTaken
                       ? fb->target
                       : e.startPC + instsToBytes(offset + 1);
        p.tage = fb->tagePred;
        p.ittage = fb->ittagePred;
    } else {
        // The DCF has no branch information here; if the block was a
        // BTB-miss guess the core re-runs decode-style recovery.
        p.taken = false;
        p.target = e.startPC + instsToBytes(offset + 1);
        p.fromBtbMiss = e.fromBtbMiss;
#ifdef ELFSIM_TRACE_ADOPT
        std::fprintf(stderr,
                     "adopt-null: seq=%llu entry=0x%llx+%u miss=%d "
                     "n=%u\n",
                     (unsigned long long)seq,
                     (unsigned long long)e.startPC, offset,
                     int(e.fromBtbMiss), e.numInsts);
#endif
    }
    patchList.push_back(p);
}

void
ElfController::switchToDecoupled(Cycle now)
{
    ELFSIM_ASSERT(!faq.empty(), "switch without a FAQ block");
    FaqEntry &head = faq.front();

    ELFSIM_ASSERT(fetchCoupledCount >= decoupledCount,
                  "count inversion at switch");
    const unsigned consumed =
        static_cast<unsigned>(fetchCoupledCount - decoupledCount);
    ELFSIM_ASSERT(consumed <= head.numInsts,
                  "switch consumed more than the head block");

    // The consumed prefix covers coupled-fetched instructions: they
    // still flow to decode, so their divergence records are needed.
    expandDecoupledRecords(head, 0, consumed);

    // The DCF caught up: every coupled checkpoint payload can now be
    // populated from FAQ information (Section IV-D1).
    if (params.payloadPolicy == PayloadPolicy::FaqFill)
        ckpts.fillPayloadsUpTo(supply.nextSeq() - 1);

    // A branch the coupled engine stalled on is covered by the FAQ
    // now: adopt the DCF's prediction for it — but only if the block
    // really lines up with the coupled stream (the catching-up DCF
    // may have guessed sequentially through a taken branch, in which
    // case divergence detection recovers instead).
    if (stalledSeq != 0 && stalledPos >= decoupledCount &&
        stalledPos < decoupledCount + consumed) {
        const unsigned off =
            static_cast<unsigned>(stalledPos - decoupledCount);
        if (head.startPC + instsToBytes(off) == stalledPC) {
            patchFromFaq(head, off, stalledSeq);
            stalledSeq = 0;
        }
    }

    decoupledCount += consumed;
    head.advance(consumed);
    if (head.numInsts == 0)
        faq.pop();

    curMode = FetchMode::Decoupled;
    cplEng->stop();
    decEng->redirect(now);
    draining = true;
    ++st.switches;
    (void)now;
}

void
ElfController::processFaqWhileCoupled(Cycle now)
{
    while (!faq.empty() &&
           faq.front().genCycle + params.bp1ToFe <= now) {
        const FaqEntry &head = faq.front();

        // Rule 3 (Figure 5): the FAQ (including this block) now
        // covers at least everything fetched in coupled mode — the
        // DCF has caught up; switch to decoupled mode. This is also
        // how a coupled fetcher stalled at an unpredictable decision
        // resumes: the FAQ covers the decision and drives past it.
        if (decoupledCount + head.numInsts >= fetchCoupledCount) {
            switchToDecoupled(now);
            return;
        }

        // Rule 1/2: the fetcher already fetched (and decoded) every
        // instruction of this block: it can be popped safely.
        if (decodeCoupledCount >= decoupledCount + head.numInsts) {
            expandDecoupledRecords(head, 0, head.numInsts);
            decoupledCount += head.numInsts;
            if (params.payloadPolicy == PayloadPolicy::FaqFill)
                ckpts.fillPayloadsUpTo(periodStartSeq +
                                       decoupledCount - 1);
            faq.pop();
            continue;
        }
        break;
    }
}

unsigned
ElfController::fetchTick(Cycle now, FetchBundle &out,
                         Redirect &redirect, bool can_fetch)
{
    const std::size_t before = out.size();
    unsigned n = 0;

    if (params.variant == FrontendVariant::NoDcf) {
        return can_fetch ? cplEng->tick(now, out) : 0;
    }
    if (params.variant == FrontendVariant::Dcf) {
        return can_fetch ? decEng->tick(now, params.bp1ToFe, out) : 0;
    }

    if (curMode == FetchMode::Coupled) {
        ++st.coupledCycles;
        // Respect the finite bitvectors/target queues: account for
        // coupled instructions fetched but not yet recorded at decode.
        const std::uint64_t unrecorded =
            coupledFetched - decodeCoupledCount;
        if (can_fetch && divTracker.coupledSpace() >
                             unrecorded + params.fetch.width) {
            n = cplEng->tick(now, out);
        }
        for (std::size_t i = before; i < out.size(); ++i) {
            const DynInst &di = out[i];
            if (di.fetchStalled) {
                stalledSeq = di.seq;
                stalledPC = di.pc();
                stalledPos = coupledFetched + (di.seq - out[before].seq);
            }
        }
        fetchCoupledCount += n;
        coupledFetched += n;
        st.coupledInsts += n;
        processFaqWhileCoupled(now);
    } else {
        ++st.decoupledCycles;
        if (can_fetch)
            n = decEng->tick(now, params.bp1ToFe, out);
        // The coupled RAS is updated even in decoupled mode (IV-D2).
        if (hasCoupledRas(params.variant)) {
            for (std::size_t i = before; i < out.size(); ++i) {
                const DynInst &di = out[i];
                if (isCall(di.si->branch))
                    coupledPreds.ras().push(di.pc() + instBytes);
                else if (isReturn(di.si->branch))
                    coupledPreds.ras().pop();
            }
        }
    }

    // Divergence detection (runs during coupled mode and while the
    // last coupled instructions drain through decode). Stalled
    // branches adopt the DCF's prediction without flushing.
    adoptScratch.clear();
    const auto div = divTracker.compare(adoptScratch);
    for (const Divergence &a : adoptScratch) {
        PredPatch p;
        p.seq = a.survivorSeq;
        p.taken = a.patchTaken;
        p.target = a.patchTarget;
        p.tage = a.patchTage;
        p.ittage = a.patchIttage;
        p.clearStall = true;
        p.historyPushed = a.patchFromSlot;
        p.fromBtbMiss = a.patchFromMiss;
        patchList.push_back(p);
    }
    if (!div && drainComplete) {
        // Every coupled instruction decoded and compared clean: the
        // resynchronization is fully done.
        endPeriodTracking();
    }
    if (div) {
        Redirect req;
        req.kind = RedirectKind::Divergence;
        req.survivorSeq = div->survivorSeq;
        req.targetPC = div->continuation;
        req.oracleCursor = div->oracleCursor;
        req.atCycle = now;
        mergeRedirect(redirect, req);
        ++st.divergenceFlushes;
        if (div->verdict == DivergenceVerdict::TrustFetcher)
            ++st.trustFetcherFlushes;
        if (div->patchSurvivor) {
            PredPatch p;
            p.seq = div->survivorSeq;
            p.taken = div->patchTaken;
            p.target = div->patchTarget;
            p.tage = div->patchTage;
            p.ittage = div->patchIttage;
            p.clearStall = true;
            p.historyPushed = div->patchFromSlot;
            patchList.push_back(p);
        }
    }
    return n;
}

void
ElfController::onDecoded(const DynInst &di)
{
    if (!isElf(params.variant))
        return;
    if (di.mode != FetchMode::Coupled || di.seq < periodStartSeq)
        return;
    ++decodeCoupledCount;
    divTracker.recordCoupled(di);
    // Do not reset the bitvectors here even if decode has caught up:
    // the record just added still needs to be compared against the
    // decoupled stream (paper IV-C3). fetchTick() finishes the period
    // after a clean comparison.
    if (draining && decodeCoupledCount >= coupledFetched)
        drainComplete = true;
}

void
ElfController::endPeriodTracking()
{
    draining = false;
    drainComplete = false;
    divTracker.reset();
    fetchCoupledCount = 0;
    decodeCoupledCount = 0;
    decoupledCount = 0;
    coupledFetched = 0;
    stalledSeq = 0;
}

void
ElfController::applyRedirect(Cycle now, Addr target_pc)
{
    switch (params.variant) {
      case FrontendVariant::NoDcf:
        cplEng->resumeAt(target_pc, now);
        return;
      case FrontendVariant::Dcf:
        dcfEngine->restart(target_pc, now);
        decEng->redirect(now);
        return;
      default:
        break;
    }

    // ELF: enter coupled mode at the corrected PC while the DCF
    // restarts from BP1 behind the fetcher.
    dcfEngine->restart(target_pc, now);
    decEng->redirect(now);
    cplEng->start(target_pc, now);
    curMode = FetchMode::Coupled;
    draining = false;
    drainComplete = false;
    divTracker.reset();
    fetchCoupledCount = 0;
    decodeCoupledCount = 0;
    decoupledCount = 0;
    coupledFetched = 0;
    stalledSeq = 0;
    periodStartSeq = supply.nextSeq();
    coupledPreds.syncRasFrom(bank.specRas());
    ++st.coupledPeriods;
}

void
ElfController::prefetchTick(Cycle now, bool fetch_was_idle)
{
    if (params.variant == FrontendVariant::NoDcf)
        return;
    if (!fetch_was_idle)
        return;
    while (!prefetchInflight.empty() && prefetchInflight.front() <= now)
        prefetchInflight.pop();
    if (prefetchInflight.size() >= params.maxInstPrefetch)
        return;

    // Oldest-to-youngest scan of the FAQ for the first block whose
    // line is not already in the L0I.
    for (std::size_t i = 0; i < faq.size(); ++i) {
        const FaqEntry &e = faq.at(i);
        if (!mem.l0i().present(e.startPC)) {
            mem.prefetchInst(e.startPC, now);
            prefetchInflight.push(now + 8);
            ++st.instPrefetches;
            return;
        }
    }
}

} // namespace elfsim
