#include "sim/runner.hh"

#include <cmath>

#include "common/logging.hh"

namespace elfsim {

RunResult
runSimulation(const Program &prog, const SimConfig &cfg,
              const RunOptions &opts)
{
    Core core(cfg, prog);

    // Warmup: predictors, BTB, and caches train; stats that matter
    // are measured as deltas across the measurement window.
    core.run(opts.warmupInsts);

    const Cycle cycles0 = core.cycles();
    const InstCount insts0 = core.committed();
    const std::uint64_t cond0 = core.backend().stats().condMispredicts;
    const std::uint64_t tgt0 = core.backend().stats().targetMispredicts;
    const std::uint64_t exec0 = core.stats().execFlushes;
    const std::uint64_t mem0 = core.stats().memOrderFlushes;
    const std::uint64_t dec0 = core.stats().decodeResteers;
    const std::uint64_t div0 = core.stats().divergenceFlushes;
    const std::uint64_t cpl0 = core.backend().stats().coupledCommitted;
    const std::uint64_t l1dMiss0 = core.memory().l1d().misses();

    core.run(opts.measureInsts);

    RunResult r;
    r.workload = prog.name();
    r.variant = variantName(cfg.variant);
    r.cycles = core.cycles() - cycles0;
    r.insts = core.committed() - insts0;
    r.ipc = r.cycles ? double(r.insts) / double(r.cycles) : 0.0;

    const double kilo = double(r.insts) / 1000.0;
    const std::uint64_t cond =
        core.backend().stats().condMispredicts - cond0;
    const std::uint64_t tgt =
        core.backend().stats().targetMispredicts - tgt0;
    r.condMpki = kilo > 0 ? double(cond) / kilo : 0;
    r.branchMpki = kilo > 0 ? double(cond + tgt) / kilo : 0;

    r.execFlushes = core.stats().execFlushes - exec0;
    r.memOrderFlushes = core.stats().memOrderFlushes - mem0;
    r.decodeResteers = core.stats().decodeResteers - dec0;
    r.divergenceFlushes = core.stats().divergenceFlushes - div0;
    r.pendingFlushWaits = core.stats().pendingFlushWaits;

    r.btbHitL0 = core.btb().cumulativeHitRate(0);
    r.btbHitL1 = core.btb().cumulativeHitRate(1);
    r.btbHitL2 = core.btb().cumulativeHitRate(2);

    const auto &l0i = core.memory().l0i();
    r.l0iMissRate = l0i.accesses()
                        ? double(l0i.misses()) / double(l0i.accesses())
                        : 0;
    r.l1dMpki = kilo > 0 ? double(core.memory().l1d().misses() -
                                  l1dMiss0) /
                               kilo
                         : 0;

    r.wrongPathInsts = core.supply().wrongPathInsts();
    r.instPrefetches = core.elf().stats().instPrefetches;

    r.avgCoupledInsts = core.elf().stats().avgCoupledInstsPerPeriod();
    r.coupledPeriods = core.elf().stats().coupledPeriods;
    const std::uint64_t cpl =
        core.backend().stats().coupledCommitted - cpl0;
    r.coupledCommittedFrac =
        r.insts ? double(cpl) / double(r.insts) : 0;

    return r;
}

RunResult
runVariant(const Program &prog, FrontendVariant variant,
           const RunOptions &opts)
{
    return runSimulation(prog, makeConfig(variant), opts);
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        ELFSIM_ASSERT(x > 0, "geomean of non-positive value");
        logSum += std::log(x);
    }
    return std::exp(logSum / double(xs.size()));
}

} // namespace elfsim
