/**
 * @file
 * Simulator-throughput benchmark: how fast the simulator itself runs,
 * not what it predicts. Sweeps the Table I workload catalog across the
 * NoDCF / DCF / U-ELF kernels (coupled-only, decoupled-only, and the
 * full elastic machinery — the three distinct hot paths) and reports
 * per-job wall-clock, simulated MIPS, and simulated cycles per host
 * microsecond, plus the geomean MIPS that the perf regression gate
 * (scripts/check_results.py --throughput) compares against the
 * committed baseline.
 *
 * Run from the repo root so the default --json target lands at
 * ./BENCH_throughput.json (what the checker and docs expect); compare
 * like with like: Release build, default flags, --jobs 1.
 */

#include <fstream>
#include <vector>

#include "bench_specs.hh"
#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    bench::Options defaults;
    defaults.warmupInsts = 50000;
    defaults.measureInsts = 150000;
    defaults.jsonPath = "BENCH_throughput.json";

    // --stride N: simulate every Nth catalog workload. Full-size
    // windows on a subset keep per-run MIPS comparable with the
    // committed full-grid baseline (shrinking the windows instead
    // would bias MIPS low: per-run setup stops being amortized). The
    // regression checker matches rows by (workload, variant), so a
    // strided document compares cleanly. scripts/perf_smoke.sh uses
    // this for its ~15 s gate.
    //
    // --sampled: append U-ELF sampled-mode rows for the slowest
    // catalog workloads over a 10M-instruction stream (period 1M /
    // length 5000 / warmup 1000). Their rows carry the "/sampled"
    // variant suffix and report *effective* MIPS — whole stream
    // covered per host second — which is what the >=50x sampled gate
    // in scripts/perf_smoke.sh compares against the same workload's
    // detailed row.
    unsigned stride = 1;
    bool sampled = false;
    const std::vector<bench::LocalFlag> locals = {
        {"--stride", true,
         "  --stride N      simulate every Nth catalog workload "
         "(perf_smoke subset)\n",
         [&](const char *v) {
             const std::uint64_t n =
                 bench::parseCount(argv[0], "--stride", v, UINT_MAX);
             stride = n > 1 ? unsigned(n) : 1;
         }},
        {"--sampled", false,
         "  --sampled       append sampled-mode rows for the slowest "
         "workloads\n",
         [&](const char *) { sampled = true; }},
    };
    const bench::Options opt =
        bench::parseOptions(argc, argv, defaults, locals);
    bench::banner(
        "Simulator throughput — wall-clock cost of the tick kernel",
        "Table I workloads x {NoDCF, DCF, U-ELF}; per-job simulated "
        "MIPS and cycles per host microsecond");

    const SweepSpec spec = bench::finalizeSpec(
        bench::throughputSpec(opt.runOptions(), stride, sampled,
                              opt.quick),
        opt, argv[0]);
    const ExpandedSweep ex = expandSweep(spec);

    SweepRunner runner(bench::specJobs(opt, spec));
    bench::armRunner(runner, spec);
    std::vector<RunResult> res = runner.run(ex.jobs);
    // Sampled rows get their own (workload, variant) identity so the
    // regression checker never compares effective MIPS against a
    // detailed row of the same cell.
    for (RunResult &r : res)
        if (r.sampled)
            r.variant += "/sampled";
    const std::vector<double> &secs = runner.perJobSeconds();

    std::printf("  %-18s %-13s %9s %10s %14s\n", "workload", "variant",
                "wall s", "sim MIPS", "cycles/host-us");
    std::vector<double> mips;
    mips.reserve(res.size());
    for (std::size_t i = 0; i < res.size(); ++i) {
        const RunResult &r = res[i];
        const double s = secs[i];
        if (!r.ok()) {
            std::printf("  %-18s %-13s (%s: %s)\n", r.workload.c_str(),
                        r.variant.c_str(), jobStatusName(r.status),
                        r.error.c_str());
            continue;
        }
        // Sampled rows: effective throughput over the whole covered
        // stream (matches writeThroughputJson).
        const double insts =
            double(r.sampled ? r.sampling.totalInsts : r.insts);
        const double cycles =
            double(r.sampled ? r.sampling.estTotalCycles : r.cycles);
        const double m = s > 0 ? insts / s / 1e6 : 0;
        if (m > 0)
            mips.push_back(m);
        std::printf("  %-18s %-13s %9.3f %10.3f %14.3f\n",
                    r.workload.c_str(), r.variant.c_str(), s, m,
                    s > 0 ? cycles / s / 1e6 : 0);
    }
    std::printf("\n  geomean %.3f simulated MIPS over %zu runs "
                "(%.1f s wall)\n",
                geomean(mips), res.size(),
                runner.timing().wallSeconds);

    if (!opt.jsonPath.empty()) {
        std::ofstream os(opt.jsonPath);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.jsonPath.c_str());
            return 1;
        }
        writeThroughputJson(os, res, secs, runner.timing());
        std::printf("wrote %s\n", opt.jsonPath.c_str());
    }
    if (!opt.csvPath.empty()) {
        runner.writeCsv(opt.csvPath);
        std::printf("wrote %s\n", opt.csvPath.c_str());
    }
    bench::printSweepTiming(runner);
    return bench::exitCode(runner);
}
