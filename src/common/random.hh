/**
 * @file
 * Small deterministic PRNG used by workload generators and predictors.
 *
 * xoshiro-style 64-bit generator: fast, reproducible across platforms,
 * and independent of the C++ standard library's unspecified
 * distributions.
 */

#ifndef ELFSIM_COMMON_RANDOM_HH
#define ELFSIM_COMMON_RANDOM_HH

#include <cstdint>

namespace elfsim {

/** Deterministic xorshift64* pseudo-random number generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Geometric-ish integer: 1 + floor(exponential tail), capped. */
    std::uint64_t
    geometric(double p, std::uint64_t cap)
    {
        std::uint64_t n = 1;
        while (n < cap && !chance(p))
            ++n;
        return n;
    }

    /** Reseed the generator. */
    void
    seed(std::uint64_t s)
    {
        state = s ? s : 0x9e3779b97f4a7c15ull;
    }

    /**
     * Raw generator state, for warm-state checkpoints. xorshift64*
     * state is never zero, so seed(rawState()) is an exact restore.
     */
    std::uint64_t rawState() const { return state; }

  private:
    std::uint64_t state;
};

/** Mix two 64-bit values into one (for derived seeds / hash indexing). */
inline std::uint64_t
mix64(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a + 0x9e3779b97f4a7c15ull + (b << 6) + (b >> 2);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace elfsim

#endif // ELFSIM_COMMON_RANDOM_HH
