/**
 * @file
 * Fault-tolerant sweep execution: deterministic fault injection,
 * recoverable panics, watchdog timeouts, bounded retries, and
 * crash-safe manifest resume. The multi-thread hang test doubles as
 * the TSan workout for the watchdog monitor (see CMakePresets.json).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/fault.hh"
#include "sim/export.hh"
#include "sim/sweep.hh"
#include "workload/builders.hh"
#include "workload/trace_cache.hh"

using namespace elfsim;

namespace {

RunOptions
smallWindow()
{
    RunOptions o;
    o.warmupInsts = 20000;
    o.measureInsts = 30000;
    return o;
}

/** Arm the process-wide injector for one test, disarm on exit. */
class ArmedFaults
{
  public:
    explicit ArmedFaults(const std::string &spec)
    {
        FaultInjector::instance().arm(FaultInjector::parse(spec));
    }
    ~ArmedFaults() { FaultInjector::instance().disarm(); }
};

std::string
asJson(const RunResult &r)
{
    std::ostringstream os;
    JsonWriter w(os);
    writeRunResult(w, r);
    return os.str();
}

/** Exact comparison, doubles included (see test_sweep.cc). */
void
expectIdentical(const RunResult &x, const RunResult &y)
{
    EXPECT_EQ(asJson(x), asJson(y));
}

std::vector<SweepJob>
sixJobGrid(const Program &a, const Program &b, const Program &c)
{
    const RunOptions o = smallWindow();
    return {
        makeVariantJob(a, FrontendVariant::Dcf, o),
        makeVariantJob(a, FrontendVariant::UElf, o),
        makeVariantJob(b, FrontendVariant::Dcf, o),
        makeVariantJob(b, FrontendVariant::UElf, o),
        makeVariantJob(c, FrontendVariant::Dcf, o),
        makeVariantJob(c, FrontendVariant::UElf, o),
    };
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

} // namespace

TEST(FaultSpec, ParseAcceptsValidSpecs)
{
    const auto one = FaultInjector::parse("throw:3:5000");
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].kind, FaultKind::Throw);
    EXPECT_EQ(one[0].job, 3u);
    EXPECT_FALSE(one[0].anyJob);
    EXPECT_EQ(one[0].tick, 5000u);

    const auto many =
        FaultInjector::parse("hang:*:0,transient:1:200,slow:2:9");
    ASSERT_EQ(many.size(), 3u);
    EXPECT_EQ(many[0].kind, FaultKind::Hang);
    EXPECT_TRUE(many[0].anyJob);
    EXPECT_EQ(many[1].kind, FaultKind::Transient);
    EXPECT_EQ(many[2].kind, FaultKind::Slow);
    EXPECT_EQ(many[2].tick, 9u);

    const auto tc = FaultInjector::parse("tracecache:*:0");
    ASSERT_EQ(tc.size(), 1u);
    EXPECT_EQ(tc[0].kind, FaultKind::TraceCache);
    EXPECT_TRUE(tc[0].anyJob);
}

TEST(FaultSpec, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(FaultInjector::parse("bogus:1:2"), ConfigError);
    EXPECT_THROW(FaultInjector::parse("throw:1"), ConfigError);
    EXPECT_THROW(FaultInjector::parse("throw:x:1"), ConfigError);
    EXPECT_THROW(FaultInjector::parse("throw:1:-5"), ConfigError);
    EXPECT_THROW(FaultInjector::parse("throw:1:2junk"), ConfigError);
    EXPECT_THROW(FaultInjector::parse("throw:1:2,,"), ConfigError);
}

TEST(Fault, JobControlFirstReasonWins)
{
    JobControl c;
    EXPECT_FALSE(c.cancelled());
    c.requestCancel(CancelReason::Stalled);
    c.requestCancel(CancelReason::Deadline);
    EXPECT_TRUE(c.cancelled());
    EXPECT_EQ(c.cancelReason(), CancelReason::Stalled);
    c.reset();
    EXPECT_FALSE(c.cancelled());
    EXPECT_EQ(c.cancelReason(), CancelReason::None);
}

TEST(Fault, InjectedThrowDegradesOneCellOnly)
{
    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    Program c = microBtbMissChain(512, 6);
    const std::vector<SweepJob> grid = sixJobGrid(a, b, c);

    SweepRunner clean(1);
    const std::vector<RunResult> expect = clean.run(grid);

    ArmedFaults armed("throw:1:5000");
    SweepRunner runner(1);
    const std::vector<RunResult> got = runner.run(grid);

    ASSERT_EQ(got.size(), grid.size());
    EXPECT_EQ(got[1].status, JobStatus::Failed);
    EXPECT_NE(got[1].error.find("injected throw"), std::string::npos);
    EXPECT_EQ(got[1].attempts, 1u);
    EXPECT_EQ(got[1].insts, 0u);
    EXPECT_EQ(runner.failedCells(), 1u);
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (i == 1)
            continue;
        expectIdentical(got[i], expect[i]);
    }
}

TEST(Fault, RecoverablePanicBecomesFailedCell)
{
    Program a = microRandomBranchLoop(8, 0.4);
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::Dcf, smallWindow())};

    ArmedFaults armed("panic:0:2000");
    SweepRunner runner(1);
    const std::vector<RunResult> got = runner.run(grid);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].status, JobStatus::Failed);
    EXPECT_NE(got[0].error.find("injected panic"), std::string::npos);
}

TEST(Fault, TransientFaultRetriesToOk)
{
    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    Program c = microBtbMissChain(512, 6);
    const std::vector<SweepJob> grid = sixJobGrid(a, b, c);

    SweepRunner clean(1);
    const std::vector<RunResult> expect = clean.run(grid);

    ArmedFaults armed("transient:2:2000");
    SweepRunner runner(1);
    SweepPolicy pol;
    pol.maxRetries = 1;
    runner.setPolicy(pol);
    const std::vector<RunResult> got = runner.run(grid);

    EXPECT_EQ(runner.failedCells(), 0u);
    EXPECT_EQ(got[2].status, JobStatus::Ok);
    EXPECT_EQ(got[2].attempts, 2u);
    // The retried cell's metrics must match the clean run exactly —
    // a fresh attempt starts from a fresh core.
    RunResult normalized = got[2];
    normalized.attempts = 1;
    expectIdentical(normalized, expect[2]);
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (i == 2)
            continue;
        expectIdentical(got[i], expect[i]);
    }
}

TEST(Fault, TransientFaultFailsWithoutRetryBudget)
{
    Program a = microRandomBranchLoop(8, 0.4);
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::Dcf, smallWindow())};

    ArmedFaults armed("transient:0:2000");
    SweepRunner runner(1);
    const std::vector<RunResult> got = runner.run(grid);
    EXPECT_EQ(got[0].status, JobStatus::Failed);
    EXPECT_EQ(got[0].attempts, 1u);
}

// The TSan workout: four workers, the watchdog monitor, and the
// injector all run concurrently; an injected hang must degrade to a
// timeout cell while every surviving cell stays byte-identical to a
// clean serial run.
TEST(Fault, InjectedHangTimesOutAcrossFourThreads)
{
    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    Program c = microBtbMissChain(512, 6);
    const std::vector<SweepJob> grid = sixJobGrid(a, b, c);

    SweepRunner clean(1);
    const std::vector<RunResult> expect = clean.run(grid);

    ArmedFaults armed("hang:3:2000");
    SweepRunner runner(4);
    ASSERT_EQ(runner.threadCount(), 4u);
    SweepPolicy pol;
    // Generous: under TSan with four workers oversubscribed on one
    // CPU, a healthy job can sit unscheduled for hundreds of ms. The
    // hung job's heartbeat stops forever, so any threshold finds it.
    pol.stallSeconds = 2.0;
    runner.setPolicy(pol);
    const std::vector<RunResult> got = runner.run(grid);

    EXPECT_EQ(got[3].status, JobStatus::Timeout);
    EXPECT_NE(got[3].error.find("heartbeat stalled"),
              std::string::npos);
    EXPECT_EQ(runner.failedCells(), 1u);
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (i == 3)
            continue;
        expectIdentical(got[i], expect[i]);
    }
}

TEST(Fault, DeadlineCancelsHungJob)
{
    Program a = microRandomBranchLoop(8, 0.4);
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::Dcf, smallWindow())};

    ArmedFaults armed("hang:0:1000");
    SweepRunner runner(1);
    SweepPolicy pol;
    pol.deadlineSeconds = 0.2;
    runner.setPolicy(pol);
    const std::vector<RunResult> got = runner.run(grid);
    EXPECT_EQ(got[0].status, JobStatus::Timeout);
    EXPECT_NE(got[0].error.find("wall-clock deadline"),
              std::string::npos);
}

TEST(Fault, StrictModePropagatesTheError)
{
    Program a = microRandomBranchLoop(8, 0.4);
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::Dcf, smallWindow())};

    ArmedFaults armed("throw:0:2000");
    SweepRunner runner(1);
    SweepPolicy pol;
    pol.keepGoing = false;
    runner.setPolicy(pol);
    EXPECT_THROW(runner.run(grid), InjectedError);
}

TEST(Manifest, RoundTripSkipsGarbageAndKeepsLastIndex)
{
    Program a = microRandomBranchLoop(8, 0.4);
    RunOptions o = smallWindow();
    o.intervalInsts = 10000; // timelines must survive the round trip
    const RunResult real =
        runSimulation(a, makeConfig(FrontendVariant::UElf), o);

    RunResult failed;
    failed.workload = "w";
    failed.variant = "DCF";
    failed.status = JobStatus::Timeout;
    failed.error = "watchdog: committed-instruction heartbeat stalled";
    failed.attempts = 2;

    std::ostringstream os;
    writeManifestLine(os, ManifestEntry{0, "k0", failed});
    os << "this is not json\n";
    writeManifestLine(os, ManifestEntry{1, "k1", real});
    // Re-journaled index 0 (a resumed sweep appends): last wins.
    writeManifestLine(os, ManifestEntry{0, "k0b", real});
    // Truncated final line: a crash mid-append.
    os << R"({"manifest":"elfsim-manifest-v1","index":2,)";

    std::istringstream is(os.str());
    const std::vector<ManifestEntry> entries = readManifest(is);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].index, 0u);
    EXPECT_EQ(entries[0].key, "k0b");
    expectIdentical(entries[0].result, real);
    EXPECT_EQ(entries[1].index, 1u);
    expectIdentical(entries[1].result, real);
}

TEST(Manifest, ResumeReRunsOnlyUnfinishedCells)
{
    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    Program c = microBtbMissChain(512, 6);
    const std::vector<SweepJob> grid = sixJobGrid(a, b, c);
    const std::string manifest = tempPath("elfsim_resume.jsonl");
    std::remove(manifest.c_str());

    SweepRunner clean(1);
    const std::vector<RunResult> expect = clean.run(grid);

    {
        ArmedFaults armed("throw:2:3000");
        SweepRunner first(1);
        SweepPolicy pol;
        pol.manifestPath = manifest;
        first.setPolicy(pol);
        const std::vector<RunResult> got = first.run(grid);
        EXPECT_EQ(got[2].status, JobStatus::Failed);
        EXPECT_EQ(first.failedCells(), 1u);
    }

    SweepRunner second(1);
    SweepPolicy pol;
    pol.manifestPath = manifest;
    pol.resume = true;
    second.setPolicy(pol);
    const std::vector<RunResult> got = second.run(grid);

    EXPECT_EQ(second.failedCells(), 0u);
    for (std::size_t i = 0; i < got.size(); ++i)
        expectIdentical(got[i], expect[i]);
    // Only the failed cell actually re-ran; reused cells carry no
    // fresh wall-clock.
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (i == 2)
            EXPECT_GT(second.perJobSeconds()[i], 0.0);
        else
            EXPECT_EQ(second.perJobSeconds()[i], 0.0);
    }
    std::remove(manifest.c_str());
}

TEST(Manifest, StaleKeyIsNotReused)
{
    Program a = microRandomBranchLoop(8, 0.4);
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::Dcf, smallWindow())};
    const std::string manifest = tempPath("elfsim_stale.jsonl");

    // A manifest whose key does not match this grid (different
    // window) must be ignored, not adopted.
    RunResult bogus;
    bogus.workload = "other";
    bogus.variant = "DCF";
    {
        std::ofstream os(manifest);
        writeManifestLine(os, ManifestEntry{0, "other|key", bogus});
    }
    SweepRunner runner(1);
    SweepPolicy pol;
    pol.manifestPath = manifest;
    pol.resume = true;
    runner.setPolicy(pol);
    const std::vector<RunResult> got = runner.run(grid);
    EXPECT_EQ(got[0].status, JobStatus::Ok);
    EXPECT_GT(got[0].insts, 0u);
    EXPECT_NE(got[0].workload, "other");
    std::remove(manifest.c_str());
}

TEST(Fault, InterruptCancelsQueuedJobs)
{
    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    Program c = microBtbMissChain(512, 6);
    const std::vector<SweepJob> grid = sixJobGrid(a, b, c);

    SweepRunner::installSignalHandlers();
    SweepRunner::clearInterrupt();
    std::raise(SIGINT);
    EXPECT_TRUE(SweepRunner::interruptRequested());

    SweepRunner runner(1);
    const std::vector<RunResult> got = runner.run(grid);
    SweepRunner::clearInterrupt();

    ASSERT_EQ(got.size(), grid.size());
    for (const RunResult &r : got) {
        EXPECT_EQ(r.status, JobStatus::Cancelled);
        EXPECT_EQ(r.attempts, 0u);
    }
    EXPECT_EQ(runner.failedCells(), grid.size());
}

// A poisoned on-disk trace cache must degrade to a transparent
// recompile — slower, never a failed cell, and cycle-identical output.
TEST(Fault, PoisonedTraceCacheRecompilesInsteadOfFailing)
{
    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::Dcf, smallWindow()),
        makeVariantJob(b, FrontendVariant::UElf, smallWindow()),
    };

    TraceCache &cache = TraceCache::instance();
    const std::string prevDir = cache.directory();
    const std::string dir = testing::TempDir() + "elfsim_poisoned_tc";
    {
        // Start cold even if a previous run left artifacts behind.
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
    cache.setDirectory(dir);
    cache.clearMemory();

    // Clean reference sweep; also populates the on-disk artifacts.
    SweepRunner clean(1);
    const std::vector<RunResult> expect = clean.run(grid);
    EXPECT_EQ(clean.traceStats().compiles, 2u);

    // Every subsequent acquisition must now see the injected
    // corruption on its disk read (the memo is dropped so the disk
    // path actually runs).
    cache.clearMemory();
    ArmedFaults armed("tracecache:*:0");
    SweepRunner runner(1);
    const std::vector<RunResult> got = runner.run(grid);

    EXPECT_EQ(runner.failedCells(), 0u);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectIdentical(got[i], expect[i]);
    // The corrupted reads were demoted to recompiles, not hits.
    EXPECT_EQ(runner.traceStats().compiles, 2u);
    EXPECT_EQ(runner.traceStats().bytesMapped, 0u);

    cache.setDirectory(prevDir);
    cache.clearMemory();
}

TEST(Export, FailedCellsSurviveTheV2Document)
{
    Program a = microRandomBranchLoop(8, 0.4);
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::Dcf, smallWindow()),
        makeVariantJob(a, FrontendVariant::UElf, smallWindow()),
    };
    ArmedFaults armed("throw:0:2000");
    SweepRunner runner(1);
    runner.run(grid);

    std::ostringstream os;
    writeSweepJson(os, runner.results(), nullptr);
    const json::Value doc = json::parse(os.str());
    EXPECT_EQ(doc.at("schema").asString(), "elfsim-results-v2");
    EXPECT_EQ(doc.at("results")[0].at("status").asString(), "failed");
    EXPECT_NE(doc.at("results")[0].at("error").asString().find(
                  "injected throw"),
              std::string::npos);
    EXPECT_EQ(doc.at("results")[1].at("status").asString(), "ok");
}
