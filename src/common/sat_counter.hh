/**
 * @file
 * Saturating up/down counter, the workhorse of branch predictors.
 */

#ifndef ELFSIM_COMMON_SAT_COUNTER_HH
#define ELFSIM_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace elfsim {

/**
 * An n-bit saturating counter. The counter saturates at 0 and
 * (2^bits - 1). For direction prediction the MSB is the taken bit.
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param bits Counter width in bits (1..16).
     * @param initial Initial counter value.
     */
    explicit SatCounter(unsigned bits, unsigned initial = 0)
        : maxVal((1u << bits) - 1), value(initial)
    {
        ELFSIM_ASSERT(bits >= 1 && bits <= 16, "bad counter width");
        ELFSIM_ASSERT(initial <= maxVal, "initial value out of range");
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value < maxVal)
            ++value;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    /** Move the counter towards taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** @return true iff the MSB is set (predict taken). */
    bool isTaken() const { return value > maxVal / 2; }

    /** @return true iff the counter is at either saturation point. */
    bool isSaturated() const { return value == 0 || value == maxVal; }

    /** @return true iff the counter is weakly confident (mid values). */
    bool
    isWeak() const
    {
        return value == maxVal / 2 || value == maxVal / 2 + 1;
    }

    /** Raw counter value. */
    unsigned raw() const { return value; }

    /** Directly set the raw value (clamped to range). */
    void
    set(unsigned v)
    {
        value = v > maxVal ? maxVal : v;
    }

    /** Reset to the weakly-not-taken midpoint. */
    void resetWeak() { value = maxVal / 2; }

    /** Maximum representable value. */
    unsigned max() const { return maxVal; }

  private:
    unsigned maxVal = 3;
    unsigned value = 0;
};

} // namespace elfsim

#endif // ELFSIM_COMMON_SAT_COUNTER_HH
