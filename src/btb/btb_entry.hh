/**
 * @file
 * BTB entry format (paper Section III-A, after AMD Zen): an entry
 * tracks up to 16 sequential instructions and up to 2 "observed taken
 * before" branches, with direct targets stored inline. An entry ends
 * when (1) an unconditional branch is encountered, (2) a third
 * tracked conditional would be needed, or (3) it spans 16
 * instructions.
 */

#ifndef ELFSIM_BTB_BTB_ENTRY_HH
#define ELFSIM_BTB_BTB_ENTRY_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/static_inst.hh"

namespace elfsim {

/** Maximum sequential instructions tracked per BTB entry. */
constexpr unsigned btbMaxInsts = 16;

/** Maximum tracked ("observed taken before") branches per entry. */
constexpr unsigned btbMaxBranches = 2;

/** Why the entry construction stopped. */
enum class BtbTermination : std::uint8_t {
    Unconditional, ///< ends with an unconditional branch (slot used)
    SlotPressure,  ///< a third tracked conditional did not fit
    MaxInsts,      ///< spans the full 16 instructions
};

/** One tracked branch inside a BTB entry. */
struct BtbSlot
{
    bool valid = false;
    std::uint8_t offset = 0;  ///< instruction offset from startPC
    BranchKind kind = BranchKind::None;
    Addr target = invalidAddr; ///< direct targets only

    /** PC of the tracked branch given the entry start. */
    Addr pc(Addr start_pc) const { return start_pc + instsToBytes(offset); }
};

/** A BTB entry. */
struct BtbEntry
{
    bool valid = false;
    Addr startPC = invalidAddr;
    std::uint8_t numInsts = 0;   ///< 1..16 sequential instructions
    BtbTermination termination = BtbTermination::MaxInsts;
    std::array<BtbSlot, btbMaxBranches> slots{};

    /** Number of valid tracked branches. */
    unsigned
    numSlots() const
    {
        unsigned n = 0;
        for (const BtbSlot &s : slots)
            n += s.valid ? 1 : 0;
        return n;
    }

    /** Fall-through address past the tracked instructions. */
    Addr fallthrough() const { return startPC + instsToBytes(numInsts); }

    /**
     * @return true iff the entry tracks the full 16 instructions, so
     * the speculative proxy fall-through access at PC + 16
     * instructions is correct in the absence of a taken branch
     * (paper Section III-B.2).
     */
    bool tracksMaxInsts() const { return numInsts == btbMaxInsts; }

    /** The terminating unconditional slot, or nullptr. */
    const BtbSlot *
    terminatingUncond() const
    {
        if (termination != BtbTermination::Unconditional)
            return nullptr;
        for (const BtbSlot &s : slots) {
            if (s.valid && isUnconditional(s.kind))
                return &s;
        }
        return nullptr;
    }
};

/** Name of a termination cause (traces/stats). */
const char *btbTerminationName(BtbTermination t);

} // namespace elfsim

#endif // ELFSIM_BTB_BTB_ENTRY_HH
