#include <gtest/gtest.h>

#include "bpred/ittage.hh"

using namespace elfsim;

TEST(Ittage, ColdMiss)
{
    Ittage it;
    const IttagePrediction p = it.predict(0x400100);
    EXPECT_EQ(p.target, invalidAddr);
    EXPECT_EQ(p.provider, -1);
    EXPECT_FALSE(p.baseHit);
}

TEST(Ittage, LearnsMonomorphicTarget)
{
    Ittage it;
    const Addr pc = 0x400200, target = 0x500000;
    for (int i = 0; i < 10; ++i) {
        const IttagePrediction p = it.predict(pc);
        it.update(pc, p, target);
        it.pushSpec(pc, true);
        it.pushArch(pc, true);
    }
    EXPECT_EQ(it.predict(pc).target, target);
}

TEST(Ittage, LearnsHistoryCorrelatedTargets)
{
    // Target alternates with a preceding conditional's direction: a
    // round-robin over 2 targets where history disambiguates.
    Ittage it;
    const Addr condPc = 0x400300, indPc = 0x400310;
    const Addr t0 = 0x500000, t1 = 0x600000;
    unsigned wrong = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool dir = (i % 2) == 0;
        it.pushSpec(condPc, dir);
        it.pushArch(condPc, dir);
        const Addr target = dir ? t0 : t1;
        const IttagePrediction p = it.predict(indPc);
        if (i > 2000 && p.target != target)
            ++wrong;
        it.update(indPc, p, target);
        it.pushSpec(indPc, true);
        it.pushArch(indPc, true);
    }
    EXPECT_LT(wrong, 200u);
}

TEST(Ittage, SpecRecoveryMatchesArch)
{
    Ittage it;
    const Addr pc = 0x400400;
    for (int i = 0; i < 40; ++i) {
        it.pushSpec(pc, i % 2 == 0);
        it.pushArch(pc, i % 2 == 0);
    }
    const IttagePrediction clean = it.predict(pc);
    for (int i = 0; i < 10; ++i)
        it.pushSpec(pc + 4, true); // wrong path
    it.resetSpecToArch();
    const IttagePrediction rec = it.predict(pc);
    EXPECT_EQ(rec.indices[0], clean.indices[0]);
    EXPECT_EQ(rec.tags[0], clean.tags[0]);
}

TEST(Ittage, RecoverFromSingleTargetGlitch)
{
    // A dominant target with one glitch observation: the predictor
    // must re-converge to the dominant target quickly.
    Ittage it;
    const Addr pc = 0x400500;
    for (int i = 0; i < 6; ++i) {
        const IttagePrediction p = it.predict(pc);
        it.update(pc, p, 0xaaa0);
        it.pushSpec(pc, true);
        it.pushArch(pc, true);
    }
    const IttagePrediction glitch = it.predict(pc);
    it.update(pc, glitch, 0xbbb0); // single wrong observation
    it.pushSpec(pc, true);
    it.pushArch(pc, true);
    unsigned wrong = 0;
    for (int i = 0; i < 8; ++i) {
        const IttagePrediction p = it.predict(pc);
        if (p.target != 0xaaa0)
            ++wrong;
        it.update(pc, p, 0xaaa0);
        it.pushSpec(pc, true);
        it.pushArch(pc, true);
    }
    EXPECT_LE(wrong, 2u);
}

TEST(Ittage, StorageReported)
{
    Ittage it;
    EXPECT_GT(it.storageBytes(), 8.0 * 1024);
    EXPECT_LT(it.storageBytes(), 64.0 * 1024);
}
