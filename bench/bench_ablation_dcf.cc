/**
 * @file
 * Ablation study of the decoupled fetcher itself — quantifying the
 * trade-offs the paper's introduction describes:
 *
 *  1. Decoupling depth (BP1->FE): deeper pipelines expose more flush
 *     latency (the cost ELF exists to hide).
 *  2. The L0 BTB: without it every taken branch pays the BP2 resteer
 *     bubble even in steady state.
 *  3. FAQ-directed instruction prefetch: the mechanism behind the
 *     paper's "server 1 improves 40% with DCF".
 *  4. FAQ depth: how much run-ahead the prefetcher and bubble-hiding
 *     can exploit.
 *
 * Run on the high-MPKI MCTS proxy (flush-sensitive) and the server-1
 * proxy (footprint-sensitive). The rows live in
 * bench_specs.hh::ablationDcfSpec as ConfigSpec overrides.
 */

#include <vector>

#include "bench_specs.hh"
#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("Ablations — decoupled fetcher design choices",
                  "DCF IPC relative to the Table II baseline");

    const SweepSpec spec = bench::finalizeSpec(
        bench::ablationDcfSpec(opt.runOptions()), opt, argv[0]);
    const ExpandedSweep ex = expandSweep(spec);

    SweepRunner runner(bench::specJobs(opt, spec));
    bench::armRunner(runner, spec);
    const std::vector<RunResult> res = runner.run(ex.jobs);

    if (!opt.specPath.empty()) {
        bench::printResultsTable(res, ex.labels);
        bench::exportResults(opt, runner);
        bench::printSweepTiming(runner);
        return bench::exitCode(runner);
    }

    // One grid covers both workloads; rows per workload = the config
    // rows of the native spec's single group.
    const std::size_t nRows = spec.groups[0].configs.size();
    for (std::size_t s = 0; s * nRows < res.size(); ++s) {
        const std::size_t first = s * nRows;
        const double baseIpc = res[first].ipc;
        std::printf("\n[%s]  baseline DCF IPC %.3f\n",
                    res[first].workload.c_str(), baseIpc);
        std::printf("  %-42s %10s\n", "configuration", "rel. IPC");
        for (std::size_t i = 1; i < nRows; ++i)
            std::printf("  %-42s %10.3f\n",
                        ex.labels[first + i].c_str(),
                        res[first + i].ipc / baseIpc);
    }

    std::printf("\nreading guide: the BP1->FE sweep is the cost ELF "
                "hides; the no-prefetch row is\nthe paper's server-1 "
                "'DCF +40%%' mechanism; the no-L0-BTB row is the "
                "steady-state\ntaken-branch bubble the decoupled L0 "
                "BTB removes.\n");
    bench::exportResults(opt, runner);
    bench::printSweepTiming(runner);
    return bench::exitCode(runner);
}
