#include "common/stats.hh"

#include <iomanip>

namespace elfsim {
namespace stats {

void
Stat::print(std::ostream &os) const
{
    os << std::left << std::setw(44) << name() << " "
       << std::right << std::setw(16) << value()
       << "    # " << desc() << "\n";
}

void
Distribution::print(std::ostream &os) const
{
    os << std::left << std::setw(44) << (name() + "::mean") << " "
       << std::right << std::setw(16) << mean()
       << "    # " << desc() << " (mean)\n";
    os << std::left << std::setw(44) << (name() + "::samples") << " "
       << std::right << std::setw(16) << samples()
       << "    # " << desc() << " (samples)\n";
    os << std::left << std::setw(44) << (name() + "::min") << " "
       << std::right << std::setw(16) << minimum()
       << "    # " << desc() << " (min)\n";
    os << std::left << std::setw(44) << (name() + "::max") << " "
       << std::right << std::setw(16) << maximum()
       << "    # " << desc() << " (max)\n";
}

Counter &
StatGroup::addCounter(const std::string &name, const std::string &desc)
{
    counterPool.emplace_back(groupName + "." + name, desc);
    order.push_back(&counterPool.back());
    return counterPool.back();
}

Distribution &
StatGroup::addDistribution(const std::string &name,
                           const std::string &desc)
{
    distPool.emplace_back(groupName + "." + name, desc);
    order.push_back(&distPool.back());
    return distPool.back();
}

Formula &
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    formulaPool.emplace_back(groupName + "." + name, desc, std::move(fn));
    order.push_back(&formulaPool.back());
    return formulaPool.back();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Stat *s : order)
        s->print(os);
}

void
StatGroup::forEach(const std::function<void(const Stat &)> &fn) const
{
    for (const Stat *s : order)
        fn(*s);
}

void
StatGroup::resetAll()
{
    for (Stat *s : order)
        s->reset();
}

const Stat *
StatGroup::find(const std::string &name) const
{
    for (const Stat *s : order) {
        if (s->name() == name || s->name() == groupName + "." + name)
            return s;
    }
    return nullptr;
}

} // namespace stats
} // namespace elfsim
