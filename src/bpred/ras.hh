/**
 * @file
 * Return Address Stack with O(1) checkpoint/restore.
 *
 * The snapshot saves the top-of-stack pointer *and* the top value so
 * that the common corruption case (a speculative push overwrote the
 * entry a restored pointer points at) is repaired on restore.
 */

#ifndef ELFSIM_BPRED_RAS_HH
#define ELFSIM_BPRED_RAS_HH

#include <vector>

#include "common/error.hh"
#include "common/types.hh"

namespace elfsim {

/** Circular return address stack. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned entries = 32)
        : stack(entries, invalidAddr), numEntries(entries)
    {}

    /** Push a return address (on calls). */
    void
    push(Addr ret_addr)
    {
        tos = (tos + 1) % numEntries;
        stack[tos] = ret_addr;
        if (depth < numEntries)
            ++depth;
    }

    /** Pop the predicted return target (on returns). */
    Addr
    pop()
    {
        if (depth == 0)
            return invalidAddr;
        const Addr a = stack[tos];
        tos = (tos + numEntries - 1) % numEntries;
        --depth;
        return a;
    }

    /** Peek without popping. */
    Addr top() const { return depth ? stack[tos] : invalidAddr; }

    /** Current speculative depth (saturates at capacity). */
    unsigned size() const { return depth; }
    bool empty() const { return depth == 0; }
    unsigned capacity() const { return numEntries; }

    /** Checkpoint state. */
    struct Snapshot
    {
        unsigned tos = 0;
        unsigned depth = 0;
        Addr topValue = invalidAddr;
    };

    Snapshot
    snapshot() const
    {
        return {tos, depth, depth ? stack[tos] : invalidAddr};
    }

    void
    restore(const Snapshot &s)
    {
        tos = s.tos;
        depth = s.depth;
        if (depth)
            stack[tos] = s.topValue;
    }

    /** Empty the stack. */
    void
    reset()
    {
        tos = 0;
        depth = 0;
    }

    /** Storage cost in bytes (64-bit addresses). */
    double storageBytes() const { return numEntries * 8.0; }

    /** Serialize the whole stack (warm-state checkpoints need every
     *  entry, unlike the O(1) pipeline Snapshot). */
    template <class S>
    void
    saveState(S &s) const
    {
        s.u64(stack.size());
        for (Addr a : stack)
            s.u64(a);
        s.u32(tos);
        s.u32(depth);
    }

    template <class D>
    void
    loadState(D &d)
    {
        if (d.u64() != stack.size())
            throw ParseError("ras: geometry mismatch");
        for (Addr &a : stack)
            a = d.u64();
        tos = d.u32() % numEntries;
        depth = d.u32();
        if (depth > numEntries)
            throw ParseError("ras: depth out of range");
    }

  private:
    std::vector<Addr> stack;
    unsigned numEntries;
    unsigned tos = 0;
    unsigned depth = 0;
};

} // namespace elfsim

#endif // ELFSIM_BPRED_RAS_HH
