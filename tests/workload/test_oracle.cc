#include <gtest/gtest.h>

#include "workload/builders.hh"
#include "workload/oracle_stream.hh"
#include "workload/program_builder.hh"
#include "workload/wrong_path.hh"

using namespace elfsim;

TEST(OracleStream, FollowsTakenChain)
{
    Program p = microTakenChain(3, 2); // blocks of 3 insts (2 + jump)
    OracleStream os(p);
    // Walk 9 instructions: should visit blocks 0,1,2 in order.
    for (SeqNum i = 1; i <= 9; ++i) {
        const OracleInst &oi = os.at(i);
        ASSERT_NE(oi.si, nullptr);
        if (oi.si->isBranchInst()) {
            EXPECT_TRUE(oi.taken);
            EXPECT_EQ(oi.nextPC, oi.si->directTarget);
        } else {
            EXPECT_EQ(oi.nextPC, oi.si->nextPC());
        }
    }
    // Instruction 10 wraps back to block 0.
    EXPECT_EQ(os.at(10).si->pc, p.entryPC());
}

TEST(OracleStream, LoopConditionalOutcomes)
{
    // Loop body of 4 insts + cond (period 3): taken twice, then exit.
    Program p = microSequentialLoop(4, 3);
    OracleStream os(p);
    int takenSeen = 0, notTakenSeen = 0;
    for (SeqNum i = 1; i <= 40; ++i) {
        const OracleInst &oi = os.at(i);
        if (oi.si->branch == BranchKind::CondDirect) {
            if (oi.taken) {
                ++takenSeen;
                EXPECT_EQ(oi.nextPC, oi.si->directTarget);
            } else {
                ++notTakenSeen;
                EXPECT_EQ(oi.nextPC, oi.si->nextPC());
            }
        }
    }
    EXPECT_GT(takenSeen, 0);
    EXPECT_GT(notTakenSeen, 0);
    EXPECT_NEAR(takenSeen, 2 * notTakenSeen, 2);
}

TEST(OracleStream, CallsAndReturnsMatch)
{
    Program p = microRecursion(4, 3);
    OracleStream os(p);
    std::vector<Addr> shadowStack;
    for (SeqNum i = 1; i <= 5000; ++i) {
        const OracleInst &oi = os.at(i);
        if (isCall(oi.si->branch))
            shadowStack.push_back(oi.si->nextPC());
        if (isReturn(oi.si->branch)) {
            ASSERT_FALSE(shadowStack.empty());
            EXPECT_EQ(oi.nextPC, shadowStack.back());
            shadowStack.pop_back();
        }
        os.retireUpTo(i > 10 ? i - 10 : 0);
    }
}

TEST(OracleStream, ReplayWindowIsStable)
{
    Program p = microRandomBranchLoop(6, 0.5);
    OracleStream os(p);
    // Generate forward, record, then re-read the same range: the
    // window must return identical instructions (flush replay).
    std::vector<std::pair<Addr, bool>> first;
    for (SeqNum i = 1; i <= 200; ++i) {
        const OracleInst &oi = os.at(i);
        first.emplace_back(oi.si->pc, oi.taken);
    }
    for (SeqNum i = 1; i <= 200; ++i) {
        const OracleInst &oi = os.at(i);
        EXPECT_EQ(oi.si->pc, first[i - 1].first);
        EXPECT_EQ(oi.taken, first[i - 1].second);
    }
}

TEST(OracleStream, RetireShrinksWindow)
{
    Program p = microTakenChain(4, 3);
    OracleStream os(p);
    os.at(100);
    EXPECT_EQ(os.oldest(), 1u);
    os.retireUpTo(50);
    EXPECT_EQ(os.oldest(), 51u);
    // Still able to read unretired and newer entries.
    EXPECT_NE(os.at(51).si, nullptr);
    EXPECT_NE(os.at(150).si, nullptr);
}

TEST(OracleStream, MemAddressesBound)
{
    Program p = microMemoryStream(4096, MemKind::Stride, 6);
    OracleStream os(p);
    bool sawMem = false;
    for (SeqNum i = 1; i <= 50; ++i) {
        const OracleInst &oi = os.at(i);
        if (oi.si->isMemInst()) {
            sawMem = true;
            EXPECT_NE(oi.memAddr, invalidAddr);
            EXPECT_GE(oi.memAddr, defaultDataBase);
            EXPECT_LT(oi.memAddr, defaultDataBase + 4096);
        } else {
            EXPECT_EQ(oi.memAddr, invalidAddr);
        }
    }
    EXPECT_TRUE(sawMem);
}

TEST(OracleStream, TwoStreamsIndependent)
{
    Program p = microRandomBranchLoop(4, 0.3);
    OracleStream a(p), b(p);
    a.at(500); // advance a far ahead
    for (SeqNum i = 1; i <= 100; ++i)
        EXPECT_EQ(a.at(i).si->pc, b.at(i).si->pc);
}

TEST(WrongPathWalker, ServesRealAndFabricated)
{
    Program p = microTakenChain(2, 2);
    WrongPathWalker w(p);
    const StaticInst *real = w.instAt(p.entryPC());
    ASSERT_NE(real, nullptr);
    EXPECT_TRUE(w.isMapped(p.entryPC()));

    const Addr off = p.codeLimit() + 0x100;
    const StaticInst *fake = w.instAt(off);
    ASSERT_NE(fake, nullptr);
    EXPECT_EQ(fake->cls, InstClass::Nop);
    EXPECT_EQ(fake->pc, off);
    EXPECT_FALSE(w.isMapped(off));
    // Cached: same pointer next time.
    EXPECT_EQ(w.instAt(off), fake);
}

TEST(WrongPathWalker, MisalignedIsNull)
{
    Program p = microTakenChain(2, 2);
    WrongPathWalker w(p);
    EXPECT_EQ(w.instAt(p.entryPC() + 1), nullptr);
}

TEST(WrongPathWalker, WrongPathMemAddrInRegion)
{
    Program p = microMemoryStream(8192, MemKind::Random, 4);
    WrongPathWalker w(p);
    for (const StaticInst &si : p.instructions()) {
        if (si.isMemInst()) {
            const Addr a = w.wrongPathMemAddr(si, 12345);
            EXPECT_GE(a, defaultDataBase);
            EXPECT_LT(a, defaultDataBase + 8192);
        }
    }
}
