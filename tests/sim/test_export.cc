/**
 * @file
 * Export-layer tests: a minimal recursive-descent JSON parser
 * validates that the machine-readable pipeline (a) round-trips every
 * RunResult field losslessly, (b) is byte-identical across sweep
 * thread counts, (c) captures interval timelines that exactly tile
 * the measurement window without perturbing the simulation, and that
 * the Reporter backends (sim/report.hh) emit well-formed output.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/json.hh"
#include "sim/export.hh"
#include "sim/report.hh"
#include "sim/sweep.hh"
#include "workload/builders.hh"
#include "workload/checkpoint_store.hh"

using namespace elfsim;

namespace {

// ---------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, literals).
// Doubles parse via strtod, so shortest-round-trip output compares
// bit-exactly against the original values.
// ---------------------------------------------------------------------

struct JVal
{
    enum Kind { Null, Bool, Num, Str, Obj, Arr } kind = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::map<std::string, JVal> obj;
    std::vector<JVal> arr;

    bool has(const std::string &k) const { return obj.count(k) > 0; }
    const JVal &
    at(const std::string &k) const
    {
        auto it = obj.find(k);
        EXPECT_NE(it, obj.end()) << "missing key: " << k;
        static const JVal none;
        return it == obj.end() ? none : it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string text) : s(std::move(text)) {}

    JVal
    parse()
    {
        JVal v = parseValue();
        skipWs();
        EXPECT_EQ(pos, s.size()) << "trailing garbage after JSON";
        return v;
    }

    bool ok() const { return !failed; }

  private:
    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\n' || s[pos] == '\t' ||
                s[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        return pos < s.size() ? s[pos] : '\0';
    }

    void
    expect(char c)
    {
        skipWs();
        if (pos >= s.size() || s[pos] != c) {
            ADD_FAILURE() << "expected '" << c << "' at offset " << pos;
            failed = true;
            return;
        }
        ++pos;
    }

    JVal
    parseValue()
    {
        if (failed)
            return {};
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            JVal v;
            v.kind = JVal::Str;
            v.str = parseString();
            return v;
        }
        if (c == 't' || c == 'f') {
            JVal v;
            v.kind = JVal::Bool;
            v.b = (c == 't');
            pos += v.b ? 4 : 5;
            return v;
        }
        if (c == 'n') {
            pos += 4;
            return {};
        }
        return parseNumber();
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\' && pos + 1 < s.size()) {
                ++pos;
                switch (s[pos]) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'u':
                    // Only \u00XX escapes are emitted by JsonWriter.
                    out += char(std::strtol(
                        s.substr(pos + 1, 4).c_str(), nullptr, 16));
                    pos += 4;
                    break;
                  default: out += s[pos];
                }
                ++pos;
            } else {
                out += s[pos++];
            }
        }
        expect('"');
        return out;
    }

    JVal
    parseNumber()
    {
        skipWs();
        const char *start = s.c_str() + pos;
        char *end = nullptr;
        JVal v;
        v.kind = JVal::Num;
        v.num = std::strtod(start, &end);
        if (end == start) {
            ADD_FAILURE() << "bad number at offset " << pos;
            failed = true;
            return v;
        }
        pos += std::size_t(end - start);
        return v;
    }

    JVal
    parseObject()
    {
        JVal v;
        v.kind = JVal::Obj;
        expect('{');
        if (peek() == '}') {
            expect('}');
            return v;
        }
        while (!failed) {
            const std::string k = parseString();
            expect(':');
            v.obj[k] = parseValue();
            if (peek() != ',')
                break;
            expect(',');
        }
        expect('}');
        return v;
    }

    JVal
    parseArray()
    {
        JVal v;
        v.kind = JVal::Arr;
        expect('[');
        if (peek() == ']') {
            expect(']');
            return v;
        }
        while (!failed) {
            v.arr.push_back(parseValue());
            if (peek() != ',')
                break;
            expect(',');
        }
        expect(']');
        return v;
    }

    const std::string s;
    std::size_t pos = 0;
    bool failed = false;
};

RunOptions
smallWindow(InstCount interval = 0)
{
    RunOptions o;
    o.warmupInsts = 20000;
    o.measureInsts = 30000;
    o.intervalInsts = interval;
    return o;
}

std::string
toJson(const RunResult &r)
{
    std::ostringstream os;
    JsonWriter w(os);
    writeRunResult(w, r);
    return os.str();
}

} // namespace

TEST(Export, RoundTripsEveryRunResultField)
{
    Program p = microRandomBranchLoop(8, 0.4);
    const RunResult r = runSimulation(
        p, makeConfig(FrontendVariant::UElf), smallWindow(5000));

    JsonParser parser(toJson(r));
    const JVal doc = parser.parse();
    ASSERT_TRUE(parser.ok());
    ASSERT_EQ(doc.kind, JVal::Obj);

    // Every scalar of the single-source-of-truth walk survives the
    // round trip exactly — strings as strings, numbers bit-identical
    // (shortest-round-trip formatting + strtod).
    std::size_t fields = 0;
    r.forEachField([&doc, &fields](const char *name, const auto &val) {
        SCOPED_TRACE(name);
        ++fields;
        ASSERT_TRUE(doc.has(name));
        using T = std::decay_t<decltype(val)>;
        if constexpr (std::is_same_v<T, std::string>) {
            EXPECT_EQ(doc.at(name).str, val);
        } else {
            EXPECT_EQ(doc.at(name).num, double(val));
        }
    });
    EXPECT_GE(fields, 23u);

    ASSERT_TRUE(doc.has("interval_insts"));
    EXPECT_EQ(doc.at("interval_insts").num, 5000.0);
    ASSERT_TRUE(doc.has("timeline"));
    ASSERT_EQ(doc.at("timeline").arr.size(), r.timeline.size());
    for (std::size_t i = 0; i < r.timeline.size(); ++i) {
        const JVal &row = doc.at("timeline").arr[i];
        r.timeline[i].forEachField(
            [&row](const char *name, const auto &val) {
                SCOPED_TRACE(name);
                ASSERT_TRUE(row.has(name));
                EXPECT_EQ(row.at(name).num, double(val));
            });
    }
}

TEST(Export, SamplingBlockPresentOnlyForSampledRuns)
{
    // Hermetic: counters must not depend on ambient cache warmth.
    const bool prevCkpt = CheckpointStore::instance().enabled();
    CheckpointStore::instance().setEnabled(false);

    Program p = microRandomBranchLoop(8, 0.4);
    RunOptions so;
    so.warmupInsts = 0;
    so.measureInsts = 100000;
    so.samplePeriodInsts = 10000;
    so.sampleLengthInsts = 2500;
    so.sampleWarmupInsts = 500;
    const RunResult s =
        runSimulation(p, makeConfig(FrontendVariant::UElf), so);
    const RunResult f = runSimulation(
        p, makeConfig(FrontendVariant::UElf), smallWindow());
    CheckpointStore::instance().setEnabled(prevCkpt);

    // A full run emits the exact pre-sampling schema: no block.
    {
        JsonParser parser(toJson(f));
        const JVal doc = parser.parse();
        ASSERT_TRUE(parser.ok());
        EXPECT_FALSE(doc.has("sampling"));
    }

    JsonParser parser(toJson(s));
    const JVal doc = parser.parse();
    ASSERT_TRUE(parser.ok());
    ASSERT_TRUE(doc.has("sampling"));
    const JVal &blk = doc.at("sampling");
    ASSERT_EQ(blk.kind, JVal::Obj);
    // Every extrapolation field survives with its exported name and
    // value, bit-exact.
    std::size_t fields = 0;
    s.sampling.forEachField(
        [&blk, &fields](const char *name, const auto &val) {
            SCOPED_TRACE(name);
            ++fields;
            ASSERT_TRUE(blk.has(name));
            EXPECT_EQ(blk.at(name).num, double(val));
        });
    EXPECT_GE(fields, 11u);
    EXPECT_EQ(blk.at("period_insts").num, 10000.0);
    EXPECT_EQ(blk.at("length_insts").num, 2500.0);
    EXPECT_EQ(blk.at("warmup_insts").num, 500.0);
    EXPECT_EQ(blk.at("windows").num, 10.0);
    EXPECT_EQ(blk.at("total_insts").num, 100000.0);
    EXPECT_EQ(blk.at("measured_insts").num, double(s.insts));
}

TEST(Export, SamplingBlockRoundTripsThroughRunResultFromJson)
{
    const bool prevCkpt = CheckpointStore::instance().enabled();
    CheckpointStore::instance().setEnabled(false);

    Program p = microSequentialLoop(30, 16);
    RunOptions so;
    so.warmupInsts = 0;
    so.measureInsts = 100000;
    so.samplePeriodInsts = 10000;
    so.sampleLengthInsts = 2500;
    so.sampleWarmupInsts = 500;
    const RunResult s =
        runSimulation(p, makeConfig(FrontendVariant::UElf), so);
    const RunResult f = runSimulation(
        p, makeConfig(FrontendVariant::UElf), smallWindow());
    CheckpointStore::instance().setEnabled(prevCkpt);

    // Parse the export back: the restored result re-exports
    // byte-identically, sampled flag and extrapolation block intact.
    const RunResult s2 = runResultFromJson(json::parse(toJson(s)));
    EXPECT_TRUE(s2.sampled);
    EXPECT_EQ(toJson(s2), toJson(s));

    const RunResult f2 = runResultFromJson(json::parse(toJson(f)));
    EXPECT_FALSE(f2.sampled);
    EXPECT_EQ(toJson(f2), toJson(f));
}

TEST(Export, SweepJsonIsThreadCountInvariant)
{
    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::Dcf, smallWindow(10000)),
        makeVariantJob(a, FrontendVariant::UElf, smallWindow(10000)),
        makeVariantJob(b, FrontendVariant::Dcf, smallWindow(10000)),
        makeVariantJob(b, FrontendVariant::UElf, smallWindow(10000)),
    };

    SweepRunner serial(1);
    SweepRunner parallel(4);
    const std::vector<RunResult> rs = serial.run(grid);
    const std::vector<RunResult> rp = parallel.run(grid);

    std::ostringstream osSerial, osParallel;
    writeResultsJson(osSerial, rs);
    writeResultsJson(osParallel, rp);
    // Byte-identical documents, timelines included: the merged
    // results depend only on the grid, never on the thread count.
    EXPECT_EQ(osSerial.str(), osParallel.str());

    JsonParser parser(osSerial.str());
    const JVal doc = parser.parse();
    ASSERT_TRUE(parser.ok());
    EXPECT_EQ(doc.at("schema").str, "elfsim-results-v2");
    ASSERT_EQ(doc.at("results").arr.size(), grid.size());
}

TEST(Export, TimelineTilesTheMeasurementWindow)
{
    Program p = microRandomBranchLoop(8, 0.4);
    const RunResult r = runSimulation(
        p, makeConfig(FrontendVariant::UElf), smallWindow(5000));

    ASSERT_FALSE(r.timeline.empty());
    InstCount insts = 0;
    Cycle cycles = 0;
    InstCount expectStart = 0;
    for (const IntervalSample &s : r.timeline) {
        EXPECT_EQ(s.startInst, expectStart);
        EXPECT_GT(s.insts, 0u);
        if (s.cycles) {
            EXPECT_EQ(s.ipc, double(s.insts) / double(s.cycles));
        }
        expectStart += s.insts;
        insts += s.insts;
        cycles += s.cycles;
    }
    // The samples tile the window exactly: per-interval insts and
    // cycles sum to the summary's measurement-window totals.
    EXPECT_EQ(insts, r.insts);
    EXPECT_EQ(cycles, r.cycles);
}

TEST(Export, IntervalSamplingDoesNotPerturbTheRun)
{
    Program p = microRandomBranchLoop(8, 0.4);
    const SimConfig cfg = makeConfig(FrontendVariant::UElf);
    RunResult plain = runSimulation(p, cfg, smallWindow());
    RunResult sampled = runSimulation(p, cfg, smallWindow(4000));

    EXPECT_TRUE(plain.timeline.empty());
    EXPECT_FALSE(sampled.timeline.empty());

    // Chunked ticking is cycle-for-cycle identical to one-shot
    // ticking: every summary scalar matches bit-exactly.
    sampled.intervalInsts = plain.intervalInsts;
    sampled.timeline = plain.timeline;
    EXPECT_EQ(toJson(plain), toJson(sampled));
}

TEST(Export, CsvHasHeaderAndOneRowPerResult)
{
    Program p = microSequentialLoop(30, 16);
    const std::vector<SweepJob> grid = {
        makeVariantJob(p, FrontendVariant::Dcf, smallWindow(10000)),
        makeVariantJob(p, FrontendVariant::UElf, smallWindow(10000)),
    };
    SweepRunner runner(1);
    const std::vector<RunResult> rs = runner.run(grid);

    std::ostringstream os;
    writeResultsCsv(os, rs);
    std::istringstream in(os.str());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 1 + rs.size());
    EXPECT_NE(lines[0].find("workload,variant,cycles"),
              std::string::npos);
    EXPECT_NE(lines[0].find("interval_insts"), std::string::npos);

    std::ostringstream ts;
    writeTimelineCsv(ts, rs);
    std::istringstream tin(ts.str());
    std::size_t trows = 0;
    while (std::getline(tin, line))
        ++trows;
    std::size_t samples = 0;
    for (const RunResult &r : rs)
        samples += r.timeline.size();
    ASSERT_GT(samples, 0u);
    EXPECT_EQ(trows, 1 + samples);
}

TEST(Export, StatGroupJsonIsLossless)
{
    stats::StatGroup g("grp");
    g.addCounter("hits", "hit count") += 42;
    stats::Distribution &d = g.addDistribution("lat", "latency");
    d.sample(1.5);
    d.sample(4.25);
    g.addFormula("ratio", "fixed ratio", [] { return 0.375; });

    std::ostringstream os;
    JsonWriter w(os);
    stats::writeJson(w, g);
    JsonParser parser(os.str());
    const JVal doc = parser.parse();
    ASSERT_TRUE(parser.ok());

    EXPECT_EQ(doc.at("grp.hits").num, 42.0);
    EXPECT_EQ(doc.at("grp.ratio").num, 0.375);
    const JVal &lat = doc.at("grp.lat");
    EXPECT_EQ(lat.at("samples").num, 2.0);
    EXPECT_EQ(lat.at("sum").num, 5.75);
    EXPECT_EQ(lat.at("min").num, 1.5);
    EXPECT_EQ(lat.at("max").num, 4.25);
    EXPECT_EQ(lat.at("mean").num, 2.875);
}

TEST(Export, JsonReporterEmitsParsableReport)
{
    Program p = microRandomBranchLoop(8, 0.4);
    Core core(makeConfig(FrontendVariant::UElf), p);
    core.run(30000);

    std::ostringstream os;
    JsonReporter().fullReport(os, core);
    JsonParser parser(os.str());
    const JVal doc = parser.parse();
    ASSERT_TRUE(parser.ok());

    EXPECT_EQ(doc.at("schema").str, "elfsim-report-v1");
    EXPECT_EQ(doc.at("variant").str, "U-ELF");
    const JVal &sections = doc.at("sections");
    ASSERT_TRUE(sections.has("summary"));
    ASSERT_TRUE(sections.has("frontend"));
    ASSERT_TRUE(sections.has("btb"));
    ASSERT_TRUE(sections.has("memory"));
    ASSERT_TRUE(sections.has("backend"));
    EXPECT_GT(sections.at("summary").at("IPC").num, 0.0);
    EXPECT_TRUE(sections.at("summary").has("coupled periods"));
    // The two "wrong path" sub-rows of the frontend section stay
    // distinct keys.
    EXPECT_TRUE(sections.at("frontend").has("wrong path"));
    EXPECT_TRUE(sections.at("frontend").has("wrong path_2"));
    // Memory-hierarchy StatGroups serialize through the stats walk.
    EXPECT_TRUE(sections.at("memory").has("l1d"));
    EXPECT_GE(sections.at("memory").at("l1d").obj.size(), 1u);

    std::ostringstream sos;
    JsonReporter().summary(sos, core);
    JsonParser sparser(sos.str());
    const JVal sdoc = sparser.parse();
    ASSERT_TRUE(sparser.ok());
    EXPECT_TRUE(sdoc.at("sections").has("summary"));
    EXPECT_FALSE(sdoc.at("sections").has("backend"));
}
