/**
 * @file
 * Lightweight statistics package.
 *
 * Components own a StatGroup; scalar counters, distributions and
 * derived formulas register themselves with the group and can be
 * dumped uniformly at end of simulation.
 */

#ifndef ELFSIM_COMMON_STATS_HH
#define ELFSIM_COMMON_STATS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace elfsim {
namespace stats {

/** What a Stat is; lets serializers walk a group without casts. */
enum class StatKind { Counter, Distribution, Formula };

/** Base class for a named, self-describing statistic. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : statName(std::move(name)), statDesc(std::move(desc))
    {}
    virtual ~Stat() = default;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Which concrete kind this stat is. */
    virtual StatKind kind() const = 0;

    /** Current value as a double (for formulas and dumping). */
    virtual double value() const = 0;

    /** Reset to the initial state. */
    virtual void reset() = 0;

    /** Print "name value # desc" to the stream. */
    virtual void print(std::ostream &os) const;

  private:
    std::string statName;
    std::string statDesc;
};

/** Monotonic event counter. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++() { ++count; return *this; }
    Counter &
    operator+=(std::uint64_t n)
    {
        count += n;
        return *this;
    }

    std::uint64_t raw() const { return count; }
    StatKind kind() const override { return StatKind::Counter; }
    double value() const override { return static_cast<double>(count); }
    void reset() override { count = 0; }

  private:
    std::uint64_t count = 0;
};

/** Sampled distribution: tracks count, sum, min, max (mean derived). */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    /** Record one sample. */
    void
    sample(double v)
    {
        ++n;
        sum += v;
        if (v < mn)
            mn = v;
        if (v > mx)
            mx = v;
    }

    std::uint64_t samples() const { return n; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    double total() const { return sum; }
    double minimum() const { return n ? mn : 0.0; }
    double maximum() const { return n ? mx : 0.0; }

    StatKind kind() const override { return StatKind::Distribution; }

    /** value() is the mean, so formulas can consume distributions. */
    double value() const override { return mean(); }

    void
    reset() override
    {
        n = 0;
        sum = 0;
        mn = std::numeric_limits<double>::max();
        mx = std::numeric_limits<double>::lowest();
    }

    void print(std::ostream &os) const override;

  private:
    std::uint64_t n = 0;
    double sum = 0;
    double mn = std::numeric_limits<double>::max();
    double mx = std::numeric_limits<double>::lowest();
};

/** Derived statistic computed on demand from other stats. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), func(std::move(fn))
    {}

    StatKind kind() const override { return StatKind::Formula; }
    double value() const override { return func ? func() : 0.0; }
    void reset() override {}

  private:
    std::function<double()> func;
};

/**
 * A named collection of statistics. Components create their stats
 * through the group so dumping and resetting can be done centrally.
 * Stats are stored by unique_ptr-like ownership inside the group;
 * references returned remain valid for the group's lifetime.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : groupName(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Create and register a counter. */
    Counter &addCounter(const std::string &name, const std::string &desc);

    /** Create and register a distribution. */
    Distribution &addDistribution(const std::string &name,
                                  const std::string &desc);

    /** Create and register a formula. */
    Formula &addFormula(const std::string &name, const std::string &desc,
                        std::function<double()> fn);

    /** Dump all stats in registration order. */
    void dump(std::ostream &os) const;

    /**
     * Visit every stat in registration order. The visitor sees the
     * abstract Stat (name/desc/kind/value); Distribution visitors can
     * recover count/sum/min/max after a kind() check. This is the
     * walk the JSON/CSV serializers (common/export.hh) are built on.
     */
    void forEach(const std::function<void(const Stat &)> &fn) const;

    /** Number of registered stats. */
    std::size_t size() const { return order.size(); }

    /** Reset all stats. */
    void resetAll();

    /** Look up a stat by name; nullptr if absent. */
    const Stat *find(const std::string &name) const;

    const std::string &name() const { return groupName; }

  private:
    std::string groupName;
    std::vector<Stat *> order;
    // Deques keep references to elements stable across growth.
    std::deque<Counter> counterPool;
    std::deque<Distribution> distPool;
    std::deque<Formula> formulaPool;
};

} // namespace stats
} // namespace elfsim

#endif // ELFSIM_COMMON_STATS_HH
