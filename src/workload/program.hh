/**
 * @file
 * Static synthetic program image.
 *
 * A Program is a contiguous, immutable array of StaticInsts laid out
 * from a fixed code base address (so PC-to-instruction lookup is O(1)
 * arithmetic, like real contiguous code). Control flow is expressed by
 * branch instructions; dynamic behaviour (conditional outcomes,
 * indirect targets, memory addresses) is described by behaviour
 * *specs* stored alongside the image and evaluated by runtime state
 * owned by the OracleStream.
 */

#ifndef ELFSIM_WORKLOAD_PROGRAM_HH
#define ELFSIM_WORKLOAD_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/static_inst.hh"
#include "workload/behavior.hh"

namespace elfsim {

/** Default base address for synthetic code images. */
constexpr Addr defaultCodeBase = 0x400000;

/** Default base address for synthetic data regions. */
constexpr Addr defaultDataBase = 0x10000000;

/** Metadata for one basic block (instructions are in the flat image). */
struct BlockInfo
{
    std::uint32_t firstInst = 0;  ///< index of first instruction
    std::uint32_t numInsts = 0;   ///< block length in instructions
};

/**
 * An immutable synthetic program. Built by ProgramBuilder; consumed by
 * the OracleStream (architectural path) and the wrong-path walker.
 */
class Program
{
  public:
    Program() = default;

    /** @return instruction at @a pc, or nullptr if pc is unmapped. */
    const StaticInst *
    instAt(Addr pc) const
    {
        if (pc < base || pc >= base + instsToBytes(image.size()))
            return nullptr;
        if (pc % instBytes != 0)
            return nullptr;
        return &image[bytesToInsts(pc - base)];
    }

    /** @return true iff @a pc maps to an instruction. */
    bool contains(Addr pc) const { return instAt(pc) != nullptr; }

    /** Program entry point. */
    Addr entryPC() const { return entry; }

    /** First code address. */
    Addr codeBase() const { return base; }

    /** One past the last code address. */
    Addr codeLimit() const { return base + instsToBytes(image.size()); }

    /** Static code footprint in instructions. */
    InstCount footprintInsts() const { return image.size(); }

    /** Static code footprint in bytes. */
    Addr footprintBytes() const { return instsToBytes(image.size()); }

    /** Behaviour specs (conditional outcomes, indirect targets, mem). */
    const BehaviorSet &behaviors() const { return behaviorSet; }

    /** Basic-block table. */
    const std::vector<BlockInfo> &blocks() const { return blockTable; }

    /** Flat instruction image (debug/tests). */
    const std::vector<StaticInst> &instructions() const { return image; }

    /** Human-readable name (set by the catalog/builders). */
    const std::string &name() const { return progName; }

  private:
    friend class ProgramBuilder;

    Addr base = defaultCodeBase;
    Addr entry = defaultCodeBase;
    std::vector<StaticInst> image;
    std::vector<BlockInfo> blockTable;
    BehaviorSet behaviorSet;
    std::string progName = "anonymous";
};

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_PROGRAM_HH
