/**
 * @file
 * Decode stage. Besides handing instructions to the back-end, decode
 * performs misfetch recovery (paper Section III-C): when a branch
 * arrives that the DCF could not predict (BTB miss), decode resteers
 * the front-end using the decoded target (unconditional direct), the
 * RAS (returns, with an explicit stall), the conditional predictor
 * (if it predicts taken), or the indirect target predictor.
 */

#ifndef ELFSIM_FRONTEND_DECODE_HH
#define ELFSIM_FRONTEND_DECODE_HH

#include <vector>

#include "bpred/predictor_bank.hh"
#include "common/queue.hh"
#include "frontend/pipeline_types.hh"

namespace elfsim {

/** Observer hook for ELF (decode-side counts and bitvectors). */
class DecodeObserver
{
  public:
    virtual ~DecodeObserver() = default;

    /** Called for every instruction leaving decode, in order. */
    virtual void onDecoded(const DynInst &di) = 0;
};

/** Decode statistics. */
struct DecodeStats
{
    std::uint64_t insts = 0;
    std::uint64_t resteers = 0;         ///< misfetch recoveries
    std::uint64_t resteerUncond = 0;
    std::uint64_t resteerCond = 0;
    std::uint64_t resteerReturn = 0;
    std::uint64_t resteerIndirect = 0;
};

/** The decode stage. */
class DecodeStage
{
  public:
    DecodeStage(unsigned width, PredictorBank &bank);

    /**
     * Decode up to width instructions whose readyAt has passed from
     * @a in into @a out.
     *
     * If a misfetch recovery is needed, @a resteer is filled (kind
     * DecodeResteer) and decoding stops at the resteering branch;
     * younger instructions are left for the core to squash.
     *
     * @return instructions decoded.
     */
    unsigned tick(Cycle now, BoundedQueue<DynInst> &in,
                  FetchBundle &out, Redirect &resteer);

    /** Attach the ELF observer (may be nullptr). */
    void setObserver(DecodeObserver *obs) { observer = obs; }

    /**
     * Handle an unpredicted branch: predict it with the decoupled
     * predictors and fill @a resteer if the front-end must be
     * redirected. Called from tick() for decoupled-mode misfetches,
     * and by the core as *late* recovery when an ELF
     * resynchronization reveals that a coupled-stalled branch was
     * covered only by a BTB-miss guess block (the baseline would
     * have recovered it at decode).
     * @return true if a resteer was requested.
     */
    bool recoverMisfetch(Cycle now, DynInst &di, Redirect &resteer);

    const DecodeStats &stats() const { return st; }

  private:

    unsigned width;
    PredictorBank &bank;
    DecodeObserver *observer = nullptr;
    DecodeStats st;
};

} // namespace elfsim

#endif // ELFSIM_FRONTEND_DECODE_HH
