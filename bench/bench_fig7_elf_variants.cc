/**
 * @file
 * Figure 7 equivalent: IPC of L-ELF and the restricted U-ELF variants
 * (RET/IND/COND-ELF) relative to the DCF baseline.
 */

#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner(
        "Figure 7 — L/RET/IND/COND-ELF IPC relative to DCF",
        "COND-ELF generally wins; RET-ELF shines on recursion "
        "(srv2.subtest_2); COND-ELF can lose on bimodal-hostile "
        "patterns (620.omnetpp)");

    std::printf("%-18s %8s %8s %8s %8s %8s\n", "workload", "DCF IPC",
                "L-ELF", "RET", "IND", "COND");

    for (const std::string &name : elfRelevantWorkloads()) {
        const WorkloadSpec *w = findWorkload(name);
        Program p = buildWorkload(*w);
        const RunResult dcf =
            runVariant(p, FrontendVariant::Dcf, opt.runOptions());
        const RunResult l =
            runVariant(p, FrontendVariant::LElf, opt.runOptions());
        const RunResult ret =
            runVariant(p, FrontendVariant::RetElf, opt.runOptions());
        const RunResult ind =
            runVariant(p, FrontendVariant::IndElf, opt.runOptions());
        const RunResult cond =
            runVariant(p, FrontendVariant::CondElf, opt.runOptions());
        std::printf("%-18s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                    name.c_str(), dcf.ipc, l.ipc / dcf.ipc,
                    ret.ipc / dcf.ipc, ind.ipc / dcf.ipc,
                    cond.ipc / dcf.ipc);
        std::fflush(stdout);
    }
    return 0;
}
