#include "frontend/dcf.hh"

#include <algorithm>

#include "common/logging.hh"

namespace elfsim {

DecoupledFetcher::DecoupledFetcher(MultiBtb &btb, PredictorBank &bank,
                                   Faq &faq)
    : btb(btb), bank(bank), faq(faq)
{
}

void
DecoupledFetcher::restart(Addr new_pc, Cycle now)
{
    pc = new_pc;
    stallUntil = now; // BP1 can probe with the new PC next cycle
    ++st.restarts;
}

unsigned
DecoupledFetcher::processEntry(const BtbLookupResult &res, FaqEntry &out)
{
    const BtbEntry &e = res.entry;
    const bool l0Hit = res.level == 0;
    // Extra pipeline cycles beyond the 1-cycle L1 access (L2 = 3).
    const unsigned accessExtra =
        res.latency > 1 ? unsigned(res.latency - 1) : 0;

    out.startPC = e.startPC;
    out.numInsts = e.numInsts;
    out.fromBtbMiss = false;
    out.endCause = FaqBlockEnd::Sequential;
    out.nextPC = e.fallthrough();

    unsigned bubbles = accessExtra;
    st.bubblesAccess += accessExtra;
    unsigned slotIdx = 0;

    // Process the tracked branches in offset order.
    std::array<const BtbSlot *, btbMaxBranches> order{};
    unsigned n = 0;
    for (const BtbSlot &s : e.slots) {
        if (s.valid)
            order[n++] = &s;
    }
    std::sort(order.begin(), order.begin() + n,
              [](const BtbSlot *a, const BtbSlot *b) {
                  return a->offset < b->offset;
              });

    for (unsigned i = 0; i < n; ++i) {
        const BtbSlot &s = *order[i];
        const Addr brPC = s.pc(e.startPC);
        FaqBranch &fb = out.branches[slotIdx++];
        fb.valid = true;
        fb.offset = s.offset;
        fb.kind = s.kind;

        if (s.kind == BranchKind::CondDirect) {
            fb.tagePred = bank.predictCond(brPC);
            fb.predTaken = fb.tagePred.taken;
            fb.target = s.target;
            bank.specBranch(brPC, s.kind, fb.predTaken);
            if (fb.predTaken) {
                out.endCause = FaqBlockEnd::TakenBranch;
                out.nextPC = s.target;
                out.numInsts = s.offset + 1;
                if (l0Hit) {
                    // 0 bubbles when the bimodal agreed; 1 when the
                    // tagged components override it in BP2.
                    if (fb.tagePred.taken != fb.tagePred.baseTaken) {
                        bubbles += 1;
                        ++st.bubblesBimodalOverride;
                    }
                } else {
                    bubbles += 1; // BP2 resteers BP1
                    ++st.bubblesBp2Taken;
                }
                return bubbles;
            }
            // Not taken: continue scanning. On an L0 hit the bimodal
            // drives the next address; disagreement costs one bubble
            // even when the final direction is not-taken.
            if (l0Hit && fb.tagePred.taken != fb.tagePred.baseTaken) {
                bubbles += 1;
                ++st.bubblesBimodalOverride;
            }
            continue;
        }

        // Unconditional branch: always taken, terminates the entry.
        fb.predTaken = true;
        out.endCause = FaqBlockEnd::TakenBranch;
        out.numInsts = s.offset + 1;

        switch (s.kind) {
          case BranchKind::UncondDirect:
          case BranchKind::DirectCall:
            fb.target = s.target;
            if (!l0Hit) {
                bubbles += 1;
                ++st.bubblesBp2Taken;
            }
            break;
          case BranchKind::Return: {
            const Addr t = bank.peekReturn();
            fb.target = t != invalidAddr ? t : e.fallthrough();
            if (!l0Hit) {
                bubbles += 1; // RAS hidden only behind an L0 BTB hit
                ++st.bubblesBp2Taken;
            }
            break;
          }
          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall: {
            const Addr l0t = bank.predictIndirectL0(brPC);
            fb.ittagePred = bank.predictIndirect(brPC);
            if (l0t != invalidAddr) {
                fb.target = l0t;
                if (!l0Hit) {
                    bubbles += 1;
                    ++st.bubblesBp2Taken;
                }
            } else {
                // Fall back to the 3-cycle ITTAGE.
                fb.target = fb.ittagePred.target != invalidAddr
                                ? fb.ittagePred.target
                                : e.fallthrough();
                bubbles += 3;
                st.bubblesIndirectL1 += 3;
            }
            break;
          }
          default:
            ELFSIM_PANIC("unexpected slot kind");
        }
        out.nextPC = fb.target;
        bank.specBranch(brPC, s.kind, true);
        return bubbles;
    }

    // No taken branch: sequential fall-through. The speculative proxy
    // fall-through access (PC + 16 insts) was only correct if the
    // entry tracks the maximum; otherwise BP2 resteers BP1.
    if (!l0Hit && !e.tracksMaxInsts()) {
        bubbles += 1;
        ++st.bubblesShortEntry;
    }
    return bubbles;
}

void
DecoupledFetcher::tick(Cycle now)
{
    if (pc == invalidAddr || now < stallUntil || faq.full())
        return;

    const BtbLookupResult res = btb.lookup(pc);
    FaqEntry entry;
    entry.genCycle = now;

    if (!res.hit) {
        // Full BTB miss: queue sequential guesses, one block/cycle.
        entry.startPC = pc;
        entry.numInsts = btbMaxInsts;
        entry.fromBtbMiss = true;
        entry.endCause = FaqBlockEnd::Sequential;
        entry.nextPC = pc + instsToBytes(btbMaxInsts);
        faq.push(entry);
        ++st.blocks;
        ++st.btbMissBlocks;
        pc = entry.nextPC;
        return;
    }

    const unsigned bubbles = processEntry(res, entry);
    faq.push(entry);
    ++st.blocks;
    if (entry.endCause == FaqBlockEnd::TakenBranch)
        ++st.takenBlocks;
    st.bubbleCycles += bubbles;
    pc = entry.nextPC;
    stallUntil = now + 1 + bubbles;
}

} // namespace elfsim
