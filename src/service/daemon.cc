#include "service/daemon.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/export.hh"
#include "common/logging.hh"
#include "service/http.hh"
#include "sim/export.hh"

namespace elfsim {
namespace service {

namespace {

/** A handler blocked on a silent client must not wedge the daemon
 *  forever: requests that take longer than this to arrive fail. */
constexpr long kRequestTimeoutSec = 10;

/** A client that stops *reading* must not wedge the daemon either:
 *  chunk writes happen on the executor thread, so a blocked send()
 *  would stall every queued sweep. A send that cannot make progress
 *  for this long fails; the failed-write path then raises the
 *  request's cancel flag and the sweep degrades to cancelled. */
constexpr long kResponseTimeoutSec = 30;

/** Has the peer torn the connection down? Only a hard error counts:
 *  an orderly FIN (recv == 0) is indistinguishable from the common
 *  request/response idiom of shutdown(SHUT_WR) after sending the
 *  request, where the client's read side is still open and waiting
 *  for the stream. Genuinely dead clients are caught by the failed
 *  chunk-write path, which raises the request's cancel flag. */
bool
peerGone(int fd)
{
    char b;
    const ssize_t n = ::recv(fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
    return n < 0 && (errno == ECONNRESET || errno == EPIPE);
}

} // namespace

SweepService::SweepService(ServiceConfig c)
    : cfg(std::move(c)), runner(cfg.jobs)
{
}

SweepService::~SweepService()
{
    stop();
}

void
SweepService::start()
{
    const int fd = listenTcp(cfg.host, cfg.port);
    boundPort_ = service::boundPort(fd);
    listenFd.store(fd, std::memory_order_release);
    stopping.store(false, std::memory_order_release);
    acceptThread = std::thread(&SweepService::acceptLoop, this);
    executorThread = std::thread(&SweepService::executorLoop, this);
}

void
SweepService::stop()
{
    if (stopping.exchange(true, std::memory_order_acq_rel))
        return;
    // Closing the listening socket unblocks accept().
    const int lfd = listenFd.exchange(-1, std::memory_order_acq_rel);
    if (lfd >= 0) {
        ::shutdown(lfd, SHUT_RDWR);
        ::close(lfd);
    }
    if (acceptThread.joinable())
        acceptThread.join();
    // Wait out in-flight connection handlers (they are quick: parse
    // and enqueue); they hold raw `this`.
    while (activeHandlers.load(std::memory_order_acquire) > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    {
        // Cancel the sweep the executor is running right now, if any.
        std::lock_guard<std::mutex> lk(queueMtx);
        if (currentCancel)
            currentCancel->store(true, std::memory_order_release);
    }
    queueCv.notify_all();
    if (executorThread.joinable())
        executorThread.join();
    // Turn away everything still queued.
    std::deque<Pending> leftovers;
    {
        std::lock_guard<std::mutex> lk(queueMtx);
        leftovers.swap(queue);
    }
    for (Pending &p : leftovers) {
        writeHttpResponse(p.fd, 503, "Service Unavailable",
                          "text/plain", "shutting down\n");
        ::close(p.fd);
    }
}

void
SweepService::acceptLoop()
{
    while (!stopping.load(std::memory_order_acquire)) {
        const int lfd = listenFd.load(std::memory_order_acquire);
        if (lfd < 0)
            break;
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listening socket closed by stop()
        }
        struct timeval rcv = {kRequestTimeoutSec, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv, sizeof(rcv));
        struct timeval snd = {kResponseTimeoutSec, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof(snd));
        activeHandlers.fetch_add(1, std::memory_order_acq_rel);
        std::thread([this, fd] {
            handleConnection(fd);
            activeHandlers.fetch_sub(1, std::memory_order_acq_rel);
        }).detach();
    }
}

void
SweepService::handleConnection(int fd)
{
    HttpRequest req;
    std::string err;
    if (!readHttpRequest(fd, req, err)) {
        badRequests.fetch_add(1, std::memory_order_relaxed);
        writeHttpResponse(fd, 400, "Bad Request", "text/plain",
                          err + "\n");
        ::close(fd);
        return;
    }
    requests.fetch_add(1, std::memory_order_relaxed);

    if (req.method == "GET" && req.path == "/healthz") {
        writeHttpResponse(fd, 200, "OK", "text/plain", "ok\n");
        ::close(fd);
        return;
    }
    if (req.method == "GET" && req.path == "/stats") {
        writeHttpResponse(fd, 200, "OK", "application/json",
                          statsJson());
        ::close(fd);
        return;
    }
    if (req.method == "POST" && req.path == "/sweep") {
        Pending p;
        try {
            p.spec = parseSweepSpec(std::string_view(req.body));
            validateSweepSpec(p.spec);
        } catch (const SimError &e) {
            badRequests.fetch_add(1, std::memory_order_relaxed);
            writeHttpResponse(fd, 400, "Bad Request", "text/plain",
                              std::string(e.what()) + "\n");
            ::close(fd);
            return;
        }
        p.fd = fd;
        p.cancel = std::make_shared<std::atomic<bool>>(false);
        {
            std::lock_guard<std::mutex> lk(queueMtx);
            if (stopping.load(std::memory_order_acquire)) {
                writeHttpResponse(fd, 503, "Service Unavailable",
                                  "text/plain", "shutting down\n");
                ::close(fd);
                return;
            }
            queue.push_back(std::move(p)); // fd ownership moves too
        }
        queueCv.notify_one();
        return;
    }

    badRequests.fetch_add(1, std::memory_order_relaxed);
    writeHttpResponse(fd, 404, "Not Found", "text/plain",
                      "unknown endpoint\n");
    ::close(fd);
}

void
SweepService::executorLoop()
{
    for (;;) {
        Pending p;
        {
            std::unique_lock<std::mutex> lk(queueMtx);
            queueCv.wait(lk, [this] {
                return !queue.empty() ||
                       stopping.load(std::memory_order_acquire);
            });
            if (queue.empty())
                return; // stopping; stop() flushes leftovers
            p = std::move(queue.front());
            queue.pop_front();
            currentCancel = p.cancel;
        }
        executeSweep(std::move(p));
        {
            std::lock_guard<std::mutex> lk(queueMtx);
            currentCancel.reset();
        }
        if (stopping.load(std::memory_order_acquire))
            return;
    }
}

void
SweepService::executeSweep(Pending req)
{
    // The client may have hung up while queued; don't burn a sweep on
    // a stream nobody reads.
    if (peerGone(req.fd)) {
        ::close(req.fd);
        return;
    }

    ExpandedSweep ex;
    try {
        ex = expandSweep(req.spec);
    } catch (const SimError &e) {
        // validateSweepSpec passed at enqueue time, so this is rare
        // (e.g. a workload generator failure) — still pre-stream, so
        // a clean error response is possible.
        badRequests.fetch_add(1, std::memory_order_relaxed);
        writeHttpResponse(req.fd, 400, "Bad Request", "text/plain",
                          std::string(e.what()) + "\n");
        ::close(req.fd);
        return;
    }

    // The request's own policy applies, minus journaling: manifests
    // and resume are CLI-side concerns, and a remote spec must not be
    // able to scribble files onto the server. keep_going is forced:
    // strict mode lets a failing cell's exception escape run() and
    // skips the watchdog monitor that observes cancelFlag, so one
    // legal request could kill the daemon and defeat cancellation.
    SweepPolicy pol = req.spec.policy;
    pol.manifestPath.clear();
    pol.resume = false;
    pol.keepGoing = true;
    pol.cancelFlag = req.cancel;
    runner.setPolicy(std::move(pol));
    runner.setBaseSeed(req.spec.baseSeed);

    ChunkedResponse stream(req.fd);
    stream.header(200, "OK", "application/json");

    // Completed cells arrive in completion order; buffer them and
    // release the in-order prefix, so the accumulated stream is byte-
    // identical to writeResultsJson() over the merged results.
    std::ostringstream buf;
    ResultsStreamWriter writer(buf);
    std::mutex streamMtx;
    std::map<std::size_t, RunResult> held;
    std::size_t next = 0;

    const auto flushChunk = [&] {
        std::string out = buf.str();
        if (out.empty())
            return;
        buf.str(std::string());
        if (!stream.write(out))
            req.cancel->store(true, std::memory_order_release);
    };

    // The observer captures this frame's locals; it must be detached
    // before they go out of scope on *every* path, including a throw
    // from run() below.
    struct ObserverGuard
    {
        SweepService &svc;
        ~ObserverGuard()
        {
            svc.runner.setCellObserver(nullptr);
            svc.inflightCells.store(0, std::memory_order_release);
        }
    } observerGuard{*this};

    inflightCells.store(ex.jobs.size(), std::memory_order_release);
    runner.setCellObserver([&](std::size_t i, const RunResult &r) {
        std::lock_guard<std::mutex> lk(streamMtx);
        inflightCells.fetch_sub(1, std::memory_order_acq_rel);
        held.emplace(i, r);
        while (!held.empty() && held.begin()->first == next) {
            writer.add(held.begin()->second);
            held.erase(held.begin());
            ++next;
        }
        flushChunk();
    });

    try {
        runner.run(ex.jobs);
    } catch (const std::exception &e) {
        // Keep-going mode degrades per-cell failures, but pre-run
        // machinery (trace compilation, pool setup) can still throw.
        // The stream is already open, so no clean error response is
        // possible — truncate it (the client sees a framing error)
        // and keep the daemon alive for the next request.
        ELFSIM_WARN("sweep aborted before completion: %s", e.what());
        cellsFailed.fetch_add(1, std::memory_order_relaxed);
        ::close(req.fd);
        return;
    }

    {
        std::lock_guard<std::mutex> lk(streamMtx);
        writer.finish();
        flushChunk();
    }
    stream.finish();
    ::close(req.fd);

    for (const RunResult &r : runner.results()) {
        if (r.ok())
            cellsOk.fetch_add(1, std::memory_order_relaxed);
        else if (r.status == JobStatus::Cancelled)
            cellsCancelled.fetch_add(1, std::memory_order_relaxed);
        else
            cellsFailed.fetch_add(1, std::memory_order_relaxed);
    }
    sweeps.fetch_add(1, std::memory_order_relaxed);
    const SweepTiming &t = runner.timing();
    lastCellsPerSec.store(
        t.wallSeconds > 0 ? double(t.jobs) / t.wallSeconds : 0,
        std::memory_order_relaxed);
}

SweepService::Counters
SweepService::counters() const
{
    Counters c;
    c.requests = requests.load(std::memory_order_relaxed);
    c.badRequests = badRequests.load(std::memory_order_relaxed);
    c.sweeps = sweeps.load(std::memory_order_relaxed);
    c.cellsOk = cellsOk.load(std::memory_order_relaxed);
    c.cellsFailed = cellsFailed.load(std::memory_order_relaxed);
    c.cellsCancelled = cellsCancelled.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(queueMtx);
        c.queueDepth = queue.size();
    }
    c.inflightCells = inflightCells.load(std::memory_order_relaxed);
    c.lastCellsPerSec = lastCellsPerSec.load(std::memory_order_relaxed);
    return c;
}

std::string
SweepService::statsJson() const
{
    const Counters c = counters();
    const TraceStats ts = TraceCache::instance().stats();
    const CkptStats ks = CheckpointStore::instance().stats();

    // Everything leaves through the uniform StatGroup walk, so the
    // document's shape matches every other stats export.
    stats::StatGroup service("service");
    service.addCounter("requests", "HTTP requests accepted") +=
        c.requests;
    service.addCounter("bad_requests", "4xx responses") +=
        c.badRequests;
    service.addCounter("sweeps", "sweep runs completed") += c.sweeps;
    service.addCounter("cells_ok", "cells completed ok") += c.cellsOk;
    service.addCounter("cells_failed", "cells failed") +=
        c.cellsFailed;
    service.addCounter("cells_cancelled", "cells cancelled") +=
        c.cellsCancelled;
    service.addCounter("queue_depth", "sweeps waiting") +=
        c.queueDepth;
    service.addCounter("inflight_cells",
                       "cells of the running sweep not yet done") +=
        c.inflightCells;
    service.addFormula("cells_per_sec",
                       "throughput of the last finished sweep",
                       [&c] { return c.lastCellsPerSec; });

    stats::StatGroup trace("trace");
    trace.addCounter("compiles", "traces compiled") += ts.compiles;
    trace.addCounter("cache_hits", "trace-cache hits") += ts.cacheHits;
    trace.addCounter("cache_misses", "trace-cache misses") +=
        ts.cacheMisses;
    trace.addCounter("bytes_mapped", "trace bytes mapped") +=
        ts.bytesMapped;
    trace.addFormula("compile_seconds", "wall-clock spent compiling",
                     [&ts] { return ts.compileSeconds; });

    stats::StatGroup ckpt("ckpt");
    ckpt.addCounter("hits", "checkpoints restored") += ks.hits;
    ckpt.addCounter("misses", "checkpoint lookups missed") +=
        ks.misses;
    ckpt.addCounter("saves", "checkpoints written") += ks.saves;
    ckpt.addCounter("load_failures", "corrupt artifacts skipped") +=
        ks.loadFailures;
    ckpt.addCounter("bytes_read", "checkpoint bytes read") +=
        ks.bytesRead;
    ckpt.addCounter("bytes_written", "checkpoint bytes written") +=
        ks.bytesWritten;

    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", "elfsimd-stats-v1");
    w.key("service");
    stats::writeJson(w, service);
    w.key("trace");
    stats::writeJson(w, trace);
    w.key("ckpt");
    stats::writeJson(w, ckpt);
    w.endObject();
    os << '\n';
    return os.str();
}

} // namespace service
} // namespace elfsim
