/**
 * @file
 * Dynamic-behaviour specifications for synthetic programs.
 *
 * A behaviour spec is an immutable description of how a static
 * instruction behaves dynamically: the outcome sequence of a
 * conditional branch, the target sequence of an indirect branch, or
 * the address sequence of a memory instruction. Specs are evaluated
 * as pure functions of an execution-instance counter, so the
 * architectural stream is fully deterministic and replayable, and
 * wrong-path accesses can sample addresses without perturbing
 * architectural state.
 */

#ifndef ELFSIM_WORKLOAD_BEHAVIOR_HH
#define ELFSIM_WORKLOAD_BEHAVIOR_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace elfsim {

/** How a conditional branch's outcome sequence is produced. */
enum class CondKind : std::uint8_t {
    /**
     * Outcome is a deterministic pseudo-random draw with fixed taken
     * probability. History predictors cannot learn it beyond the
     * bias; models data-dependent branches.
     */
    TakenProb,
    /**
     * Loop-style: taken (backward) for period-1 instances, then not
     * taken once. Highly predictable by history predictors when the
     * period fits in history.
     */
    LoopPeriod,
    /**
     * Fixed repeating taken/not-taken pattern of a given length
     * derived from the seed. Learnable by TAGE when the length is
     * modest; a bimodal only captures the bias.
     */
    Pattern,
};

/** Conditional-branch behaviour spec. */
struct CondSpec
{
    CondKind kind = CondKind::TakenProb;
    double takenProb = 0.5;       ///< for TakenProb
    std::uint32_t period = 16;    ///< for LoopPeriod / Pattern length
    std::uint64_t seed = 1;       ///< draw/pattern seed
    /**
     * Fraction of taken positions in a Pattern (real conditionals are
     * usually heavily biased; 0.5 gives an unbiased pattern).
     */
    double patternBias = 0.7;

    /** Outcome for the n-th architectural execution (n is 0-based). */
    bool
    outcome(std::uint64_t n) const
    {
        switch (kind) {
          case CondKind::TakenProb: {
            const std::uint64_t h = mix64(seed, n);
            return static_cast<double>(h >> 11) *
                       (1.0 / 9007199254740992.0) < takenProb;
          }
          case CondKind::LoopPeriod:
            return period <= 1 ? false : (n % period) != (period - 1);
          case CondKind::Pattern: {
            const std::uint32_t p = period ? period : 1;
            const std::uint64_t h = mix64(seed, n % p);
            return static_cast<double>(h >> 11) *
                       (1.0 / 9007199254740992.0) < patternBias;
          }
        }
        return false;
    }
};

/** How an indirect branch selects among its candidate targets. */
enum class IndirectKind : std::uint8_t {
    RoundRobin,  ///< cycles through targets; monomorphic if 1 target
    Random,      ///< deterministic pseudo-random pick per instance
    Phased,      ///< sticks to one target for 'period' instances
};

/** Indirect-branch behaviour spec. Targets filled in at finalize. */
struct IndirectSpec
{
    IndirectKind kind = IndirectKind::RoundRobin;
    std::uint32_t period = 64;    ///< for Phased
    std::uint64_t seed = 1;
    std::vector<Addr> targets;

    /** Target for the n-th architectural execution. */
    Addr
    target(std::uint64_t n) const
    {
        if (targets.empty())
            return invalidAddr;
        switch (kind) {
          case IndirectKind::RoundRobin:
            return targets[n % targets.size()];
          case IndirectKind::Random:
            return targets[mix64(seed, n) % targets.size()];
          case IndirectKind::Phased: {
            const std::uint32_t p = period ? period : 1;
            return targets[(n / p) % targets.size()];
          }
        }
        return targets[0];
    }
};

/** Memory address sequence shape. */
enum class MemKind : std::uint8_t {
    Stride,       ///< base + (n * stride) % size
    Random,       ///< deterministic pseudo-random within the region
    PointerChase, ///< pseudo-random permutation walk (cache-hostile)
};

/** Memory-instruction behaviour spec. */
struct MemSpec
{
    MemKind kind = MemKind::Stride;
    Addr regionBase = 0;
    Addr regionSize = 4096;      ///< bytes; addresses stay inside
    Addr stride = 64;            ///< for Stride
    std::uint64_t seed = 1;

    /** Byte address accessed by the n-th architectural execution. */
    Addr
    address(std::uint64_t n) const
    {
        const Addr span = regionSize ? regionSize : 64;
        switch (kind) {
          case MemKind::Stride:
            return regionBase + (n * stride) % span;
          case MemKind::Random:
            return regionBase + (mix64(seed, n) % span) / 8 * 8;
          case MemKind::PointerChase: {
            // Walk a pseudo-random permutation: the address depends on
            // the previous index through a hash chain, reconstructed
            // from n via iterated mixing of a compressed state. One
            // mix per access keeps it O(1) while remaining
            // deterministic and cache-hostile.
            const std::uint64_t idx = mix64(seed ^ 0xc4ceb9fe1a85ec53ull,
                                            mix64(seed, n));
            return regionBase + (idx % span) / 64 * 64;
          }
        }
        return regionBase;
    }

    /**
     * Address sampled by a wrong-path execution: a distinct
     * deterministic draw so speculative pollution is repeatable but
     * does not advance (or match) architectural instances.
     */
    Addr
    wrongPathAddress(std::uint64_t salt) const
    {
        const Addr span = regionSize ? regionSize : 64;
        return regionBase +
               (mix64(seed ^ 0x5851f42d4c957f2dull, salt) % span) / 8 * 8;
    }
};

/**
 * All behaviour specs of a program, indexed by the ids stored in
 * StaticInst::behavior. Immutable after program construction.
 */
class BehaviorSet
{
  public:
    std::uint32_t
    addCond(const CondSpec &s)
    {
        conds.push_back(s);
        return static_cast<std::uint32_t>(conds.size() - 1);
    }
    std::uint32_t
    addIndirect(const IndirectSpec &s)
    {
        indirects.push_back(s);
        return static_cast<std::uint32_t>(indirects.size() - 1);
    }
    std::uint32_t
    addMem(const MemSpec &s)
    {
        mems.push_back(s);
        return static_cast<std::uint32_t>(mems.size() - 1);
    }

    const CondSpec &cond(std::uint32_t id) const { return conds[id]; }
    const IndirectSpec &
    indirect(std::uint32_t id) const
    {
        return indirects[id];
    }
    const MemSpec &mem(std::uint32_t id) const { return mems[id]; }

    IndirectSpec &indirectMutable(std::uint32_t id) { return indirects[id]; }

    std::size_t numConds() const { return conds.size(); }
    std::size_t numIndirects() const { return indirects.size(); }
    std::size_t numMems() const { return mems.size(); }

  private:
    std::vector<CondSpec> conds;
    std::vector<IndirectSpec> indirects;
    std::vector<MemSpec> mems;
};

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_BEHAVIOR_HH
