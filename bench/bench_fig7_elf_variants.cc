/**
 * @file
 * Figure 7 equivalent: IPC of L-ELF and the restricted U-ELF variants
 * (RET/IND/COND-ELF) relative to the DCF baseline.
 */

#include <vector>

#include "bench_specs.hh"
#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner(
        "Figure 7 — L/RET/IND/COND-ELF IPC relative to DCF",
        "COND-ELF generally wins; RET-ELF shines on recursion "
        "(srv2.subtest_2); COND-ELF can lose on bimodal-hostile "
        "patterns (620.omnetpp)");

    const SweepSpec spec = bench::finalizeSpec(
        bench::fig7Spec(opt.runOptions()), opt, argv[0]);
    const ExpandedSweep ex = expandSweep(spec);

    SweepRunner runner(bench::specJobs(opt, spec));
    bench::armRunner(runner, spec);
    const std::vector<RunResult> res = runner.run(ex.jobs);

    if (!opt.specPath.empty()) {
        bench::printResultsTable(res, ex.labels);
    } else {
        std::printf("%-18s %8s %8s %8s %8s %8s\n", "workload",
                    "DCF IPC", "L-ELF", "RET", "IND", "COND");
        for (std::size_t i = 0; i + 4 < res.size(); i += 5) {
            const RunResult &dcf = res[i];
            std::printf("%-18s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                        dcf.workload.c_str(), dcf.ipc,
                        res[i + 1].ipc / dcf.ipc,
                        res[i + 2].ipc / dcf.ipc,
                        res[i + 3].ipc / dcf.ipc,
                        res[i + 4].ipc / dcf.ipc);
            std::fflush(stdout);
        }
    }
    bench::exportResults(opt, runner);
    bench::printSweepTiming(runner);
    return bench::exitCode(runner);
}
