/**
 * @file
 * The ELastic Fetching controller — the paper's primary contribution.
 *
 * Owns the front-end's two fetch-address engines (decoupled/FAQ and
 * coupled) and arbitrates between them:
 *
 *  - NoDCF: coupled engine only, driven by the full predictor bank;
 *  - DCF:   decoupled engine only (the Table II baseline);
 *  - ELF:   decoupled in steady state; after every pipeline flush or
 *    misfetch recovery the fetcher enters Coupled mode at the correct
 *    PC while the DCF restarts from BP1 behind it, hiding the BP1/
 *    BP2/FAQ pipeline depth. Resynchronization uses the instruction
 *    counts of Section IV-B/Figure 5 (Fetch Coupled Count, Decode
 *    Coupled Count, Decoupled Count); U-ELF additionally runs the
 *    bitvector/target-queue divergence tracking of Section IV-C.
 */

#ifndef ELFSIM_CORE_ELF_CONTROLLER_HH
#define ELFSIM_CORE_ELF_CONTROLLER_HH

#include <memory>
#include <utility>
#include <vector>

#include "common/queue.hh"
#include "core/coupled_predictors.hh"
#include "core/divergence.hh"
#include "core/variant.hh"
#include "frontend/coupled.hh"
#include "frontend/dcf.hh"
#include "frontend/decode.hh"
#include "frontend/fetch.hh"

namespace elfsim {

/** Controller parameters. */
struct ElfControllerParams
{
    FrontendVariant variant = FrontendVariant::Dcf;
    FetchParams fetch{};
    Cycle bp1ToFe = 3;           ///< BP1 -> FE pipeline depth
    unsigned maxInstPrefetch = 4;///< in-flight FAQ-directed prefetches
    DivergenceParams divergence{};
    CoupledPredictorParams coupledPreds{};
    PayloadPolicy payloadPolicy = PayloadPolicy::FaqFill;
    /** COND/U-ELF: require the bimodal counter to be saturated before
     *  speculating past a conditional (the paper's filter). */
    bool condRequireSaturation = true;
};

/** A prediction patch the core must apply to an in-flight inst. */
struct PredPatch
{
    SeqNum seq = 0;
    bool taken = false;
    Addr target = invalidAddr;
    bool clearStall = false;
    /** The DCF covered this branch with a BTB slot and pushed its
     *  speculative-history bit; commit must push the architectural
     *  bit to keep the two streams identical. */
    bool historyPushed = false;
    /** The covering FAQ block was a BTB-miss sequential guess: the
     *  core should run decode-style misfetch recovery instead of
     *  accepting the implicit fall-through. */
    bool fromBtbMiss = false;
    TagePrediction tage{};
    IttagePrediction ittage{};
};

/** ELF statistics (drives Figure 8's coupled-instruction counts). */
struct ElfStats
{
    std::uint64_t coupledCycles = 0;
    std::uint64_t decoupledCycles = 0;
    std::uint64_t coupledPeriods = 0;
    std::uint64_t coupledInsts = 0;    ///< fetched in coupled mode
    std::uint64_t switches = 0;        ///< coupled -> decoupled
    std::uint64_t divergenceFlushes = 0;
    std::uint64_t trustFetcherFlushes = 0;
    std::uint64_t instPrefetches = 0;

    double
    avgCoupledInstsPerPeriod() const
    {
        return coupledPeriods
                   ? double(coupledInsts) / double(coupledPeriods)
                   : 0.0;
    }
};

/** The front-end orchestrator. */
class ElfController : public DecodeObserver
{
  public:
    ElfController(const ElfControllerParams &params, MemHierarchy &mem,
                  InstSupply &supply, Faq &faq, CheckpointQueue &ckpts,
                  PredictorBank &bank, MultiBtb &btb);

    /** BP1 address-generation cycle (no-op for NoDCF). */
    void dcfTick(Cycle now);

    /**
     * Fetch cycle: produce instructions, run the resynchronization
     * count rules, and run divergence detection. A divergence flush
     * request is merged into @a redirect.
     * @return instructions fetched.
     */
    unsigned fetchTick(Cycle now, FetchBundle &out,
                       Redirect &redirect, bool can_fetch = true);

    /** DecodeObserver: decode-side counts/records. */
    void onDecoded(const DynInst &di) override;

    /**
     * The core applied a front-end redirect (flush, decode resteer,
     * or divergence): restart the engines at @a target_pc. Must be
     * called after the FAQ has been cleared and the predictor bank's
     * speculative state restored.
     */
    void applyRedirect(Cycle now, Addr target_pc);

    /** FAQ-directed instruction prefetch on idle L0I cycles. */
    void prefetchTick(Cycle now, bool fetch_was_idle);

    /**
     * Prediction patches for the core to apply, then discard with
     * clearPatches(). The drain is split into a read and a clear (no
     * move-out) so the vector's capacity is reused cycle after cycle
     * instead of reallocated.
     */
    const std::vector<PredPatch> &patches() const { return patchList; }
    void clearPatches() { patchList.clear(); }

    /**
     * History-visibility fixes: (seq, covered) pairs telling the core
     * whether the catching-up DCF actually saw each coupled-fetched
     * branch in a BTB slot. The speculative and architectural history
     * streams must record exactly the same per-instance bits, and
     * only the FAQ knows the truth. Read, then clearVisibilityFixes().
     */
    const std::vector<std::pair<SeqNum, bool>> &
    visibilityFixes() const
    {
        return visFixes;
    }
    void clearVisibilityFixes() { visFixes.clear(); }

    FetchMode mode() const { return curMode; }
    FrontendVariant variant() const { return params.variant; }

    // --- resynchronization counts (Figure 5), for traces/tests -------
    std::uint64_t fetchCoupled() const { return fetchCoupledCount; }
    std::uint64_t decodeCoupled() const { return decodeCoupledCount; }
    std::uint64_t decoupled() const { return decoupledCount; }
    bool drainingCoupled() const { return draining; }

    CoupledPredictors &coupledPredictors() { return coupledPreds; }
    DecoupledFetcher &dcf() { return *dcfEngine; }
    const DecoupledFetcher &dcf() const { return *dcfEngine; }
    const DecoupledFetchEngine &decoupledEngine() const { return *decEng; }
    const CoupledFetchEngine &coupledEngine() const { return *cplEng; }
    const DivergenceTracker &divergence() const { return divTracker; }
    const ElfStats &stats() const { return st; }

    /** Overwrite the cumulative statistics (warm-state restore; the
     *  engines are restarted via applyRedirect at the boundary). */
    void restoreStats(const ElfStats &stats) { st = stats; }

  private:
    void processFaqWhileCoupled(Cycle now);
    void switchToDecoupled(Cycle now);
    void expandDecoupledRecords(const FaqEntry &e, unsigned first,
                                unsigned count);
    void patchFromFaq(const FaqEntry &e, unsigned offset, SeqNum seq);
    void endPeriodTracking();

    ElfControllerParams params;
    MemHierarchy &mem;
    InstSupply &supply;
    Faq &faq;
    CheckpointQueue &ckpts;
    PredictorBank &bank;

    CoupledPredictors coupledPreds;
    std::unique_ptr<CoupledPolicy> policy;
    std::unique_ptr<DecoupledFetcher> dcfEngine;
    std::unique_ptr<DecoupledFetchEngine> decEng;
    std::unique_ptr<CoupledFetchEngine> cplEng;
    DivergenceTracker divTracker;

    FetchMode curMode;

    // --- resynchronization state (Figure 5) -------------------------
    std::uint64_t fetchCoupledCount = 0;   ///< speculative
    std::uint64_t decodeCoupledCount = 0;  ///< non-speculative
    std::uint64_t decoupledCount = 0;      ///< FAQ coverage
    std::uint64_t coupledFetched = 0;      ///< total this period
    SeqNum periodStartSeq = 1;
    bool draining = false;
    bool drainComplete = false;

    /** Stalled-branch bookkeeping: seq, pc and period position. */
    SeqNum stalledSeq = 0;
    Addr stalledPC = invalidAddr;
    std::uint64_t stalledPos = 0;

    std::vector<PredPatch> patchList;
    std::vector<std::pair<SeqNum, bool>> visFixes;

    /** Scratch for divergence comparison, reused every fetchTick. */
    std::vector<Divergence> adoptScratch;

    /** In-flight FAQ-directed prefetch completion times. */
    BoundedQueue<Cycle> prefetchInflight;

    ElfStats st;
};

} // namespace elfsim

#endif // ELFSIM_CORE_ELF_CONTROLLER_HH
