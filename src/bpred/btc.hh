/**
 * @file
 * Branch Target Cache: small direct-mapped, partially-tagged target
 * table. Used as the L0 indirect target predictor of the decoupled
 * fetcher (64 entries, 12-bit tags, 1 cycle) and as the IND-ELF
 * coupled predictor.
 */

#ifndef ELFSIM_BPRED_BTC_HH
#define ELFSIM_BPRED_BTC_HH

#include <cstdint>
#include <vector>

#include "common/error.hh"
#include "common/types.hh"

namespace elfsim {

/** BTC parameters. */
struct BtcParams
{
    unsigned entries = 64;
    unsigned tagBits = 12;
};

/** Direct-mapped partially-tagged branch target cache. */
class BranchTargetCache
{
  public:
    explicit BranchTargetCache(const BtcParams &params = {})
        : params(params), table(params.entries)
    {}

    /** @return predicted target, or invalidAddr on miss. */
    Addr
    predict(Addr pc) const
    {
        const Entry &e = table[index(pc)];
        return (e.valid && e.tag == tag(pc)) ? e.target : invalidAddr;
    }

    /** Install/update the target for @a pc. */
    void
    update(Addr pc, Addr target)
    {
        Entry &e = table[index(pc)];
        e.valid = true;
        e.tag = tag(pc);
        e.target = target;
    }

    /** Invalidate everything. */
    void
    reset()
    {
        for (Entry &e : table)
            e = Entry{};
    }

    /** Storage cost in bytes (target + tag per entry). */
    double
    storageBytes() const
    {
        return params.entries * (8.0 + params.tagBits / 8.0);
    }

    /** Serialize the full table (warm-state checkpoints). */
    template <class S>
    void
    saveState(S &s) const
    {
        s.u64(table.size());
        for (const Entry &e : table) {
            s.boolean(e.valid);
            s.u32(e.tag);
            s.u64(e.target);
        }
    }

    template <class D>
    void
    loadState(D &d)
    {
        if (d.u64() != table.size())
            throw ParseError("btc: geometry mismatch");
        for (Entry &e : table) {
            e.valid = d.boolean();
            e.tag = d.u32();
            e.target = d.u64();
        }
    }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        Addr target = invalidAddr;
    };

    std::size_t
    index(Addr pc) const
    {
        return (pc / instBytes) % params.entries;
    }
    std::uint32_t
    tag(Addr pc) const
    {
        return (pc / instBytes / params.entries) &
               ((1u << params.tagBits) - 1);
    }

    BtcParams params;
    std::vector<Entry> table;
};

} // namespace elfsim

#endif // ELFSIM_BPRED_BTC_HH
