/**
 * @file
 * Non-speculative BTB entry establishment at retire (paper §III-A).
 *
 * The builder follows the committed instruction stream. Each time the
 * stream reaches a fresh region start (the target of a taken branch,
 * or the fall-through of the previous entry), it constructs the entry
 * by walking the *static* code image forward — gated by the dynamic
 * "observed taken before" knowledge that decides which conditionals
 * claim branch slots — and inserts it into the BTB. When a
 * never-taken conditional first retires taken, the covering entry is
 * rebuilt, which naturally shortens/splits it (the paper's
 * amendment/split case).
 */

#ifndef ELFSIM_BTB_BTB_BUILDER_HH
#define ELFSIM_BTB_BTB_BUILDER_HH

#include <unordered_set>

#include "btb/btb.hh"
#include "workload/program.hh"

namespace elfsim {

/** Builds BTB entries from the retire stream. */
class BtbBuilder
{
  public:
    BtbBuilder(const Program &prog, MultiBtb &btb);

    /**
     * Observe one retired instruction.
     *
     * @param si The retired static instruction.
     * @param taken Resolved direction (false for non-branches).
     * @param next_pc Architectural next PC.
     */
    void retire(const StaticInst &si, bool taken, Addr next_pc);

    /**
     * Observe @a n retired non-branch instructions starting at
     * @a start_pc and advancing sequentially by instBytes — the batch
     * equivalent of n retire() calls with taken=false on a
     * branch-free region. Non-branch retires only ever establish
     * entries (at the very first instruction, or wherever the stream
     * crosses nextEstablishPC), so the batch walks establishment
     * points directly instead of testing every instruction. State
     * after the call is identical to the scalar sequence.
     */
    void retireSequentialRange(Addr start_pc, InstCount n);

    /**
     * Construct the entry starting at @a start_pc from the static
     * image and the observed-taken knowledge (exposed for tests and
     * for ELF's FAQ-block reconstruction).
     */
    BtbEntry buildEntry(Addr start_pc) const;

    /** @return true iff @a pc has ever retired as a taken branch. */
    bool
    observedTaken(Addr pc) const
    {
        return takenBefore.count(pc) != 0;
    }

    /** Number of entries established so far. */
    std::uint64_t establishments() const { return establishCount; }

    /** Number of amendment rebuilds (split case). */
    std::uint64_t amendments() const { return amendCount; }

    /** Serialize the observed-taken set and region-tracking state. */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    void establish(Addr start_pc);

    const Program &prog;
    MultiBtb &btb;
    std::unordered_set<Addr> takenBefore;

    Addr nextEstablishPC = invalidAddr;
    Addr currentStart = invalidAddr;   ///< start of the live region
    Addr currentEnd = invalidAddr;     ///< fall-through of live region

    std::uint64_t establishCount = 0;
    std::uint64_t amendCount = 0;
};

} // namespace elfsim

#endif // ELFSIM_BTB_BTB_BUILDER_HH
