#include <gtest/gtest.h>

#include "common/queue.hh"

using namespace elfsim;

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, FullAndFree)
{
    BoundedQueue<int> q(2);
    EXPECT_EQ(q.freeSlots(), 2u);
    q.push(1);
    q.push(2);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.freeSlots(), 0u);
}

TEST(BoundedQueue, WrapsAround)
{
    BoundedQueue<int> q(3);
    for (int round = 0; round < 10; ++round) {
        q.push(round);
        q.push(round + 100);
        EXPECT_EQ(q.pop(), round);
        EXPECT_EQ(q.pop(), round + 100);
    }
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, IndexedAccess)
{
    BoundedQueue<int> q(4);
    q.push(10);
    q.push(20);
    q.push(30);
    q.pop();
    q.push(40); // storage wrapped
    EXPECT_EQ(q.at(0), 20);
    EXPECT_EQ(q.at(1), 30);
    EXPECT_EQ(q.at(2), 40);
    EXPECT_EQ(q.front(), 20);
    EXPECT_EQ(q.back(), 40);
}

TEST(BoundedQueue, PopBackSquashesYoungest)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.push(i);
    q.popBack(4);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.back(), 1);
    // Pushing after a squash reuses the space.
    q.push(99);
    EXPECT_EQ(q.back(), 99);
}

TEST(BoundedQueue, ClearEmpties)
{
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push(7);
    EXPECT_EQ(q.front(), 7);
}
