#include "workload/compiled_trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/error.hh"
#include "common/hash.hh"
#include "common/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define ELFSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace elfsim {

namespace {

constexpr char traceMagic[16] = "elfsim-trace-v2"; // includes the NUL

/**
 * Content-key salt, frozen at the original format string. The key
 * names the *stream* (program content + length), not the container
 * layout; CheckpointStore keys derive from it, so the salt must
 * survive container-format bumps. Staleness of the container itself
 * is caught by the magic above — a v1 file fails the memcmp and
 * recompiles into a v2 file under the same key and path.
 */
constexpr char traceKeySalt[] = "elfsim-trace-v1";

/** Fixed-size part of the file, through the checksum field. */
constexpr std::size_t headerBytes = 16 + 11 * 8;

/** Header scalar fields, in file order (after the magic). */
struct TraceHeader
{
    std::uint64_t key = 0;
    std::uint64_t count = 0;
    std::uint64_t callDepth = 0;
    std::uint64_t condN = 0;
    std::uint64_t indN = 0;
    std::uint64_t memN = 0;
    std::uint64_t endPC = 0;
    std::uint64_t nBranch = 0;
    std::uint64_t nRun = 0;
    std::uint64_t nMem = 0;
    std::uint64_t checksum = 0;
};

std::uint64_t
takenWordsFor(std::uint64_t count)
{
    return (count + 63) / 64;
}

/** Total file size implied by the header (no overflow for the
 *  sanity-capped field values enforced by the loader). */
std::uint64_t
expectedFileSize(const TraceHeader &h)
{
    const std::uint64_t u64s = h.callDepth + h.condN + h.indN + h.memN +
                               takenWordsFor(h.count) + 2 * h.count +
                               2 * h.nBranch + h.nRun + 2 * h.nMem +
                               takenWordsFor(h.nMem);
    const std::uint64_t u32s =
        h.count + h.nBranch + h.nRun + h.nMem;
    return headerBytes + 8 * u64s + 4 * u32s + h.nBranch;
}

/**
 * Checksum of the semantic content: every header scalar except the
 * checksum itself, then the raw section bytes. @a sections is the
 * contiguous region following the header.
 */
std::uint64_t
contentChecksum(const TraceHeader &h, const void *sections,
                std::size_t section_bytes)
{
    Fnv1a hash;
    hash.u64(h.key)
        .u64(h.count)
        .u64(h.callDepth)
        .u64(h.condN)
        .u64(h.indN)
        .u64(h.memN)
        .u64(h.endPC)
        .u64(h.nBranch)
        .u64(h.nRun)
        .u64(h.nMem);
    hash.bytes(sections, section_bytes);
    return hash.value();
}

/** RAII holder keeping a loaded file image alive for the views. */
struct FileBacking
{
    void *map = nullptr;       ///< mmap base (null for heap images)
    std::size_t mapLen = 0;
    std::vector<char> heap;    ///< read() fallback image

    const char *
    data() const
    {
        return map ? static_cast<const char *>(map) : heap.data();
    }
    std::size_t size() const { return map ? mapLen : heap.size(); }

    ~FileBacking()
    {
#ifdef ELFSIM_HAVE_MMAP
        if (map)
            ::munmap(map, mapLen);
#endif
    }
};

/** Map (or read) a whole file; null result means "cannot open". */
std::shared_ptr<FileBacking>
openFileImage(const std::string &path)
{
    auto backing = std::make_shared<FileBacking>();
#ifdef ELFSIM_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        struct stat st;
        if (::fstat(fd, &st) == 0 && st.st_size > 0) {
            void *p = ::mmap(nullptr, std::size_t(st.st_size), PROT_READ,
                             MAP_PRIVATE, fd, 0);
            if (p != MAP_FAILED) {
                backing->map = p;
                backing->mapLen = std::size_t(st.st_size);
                ::close(fd);
                return backing;
            }
        }
        ::close(fd);
    }
#endif
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return nullptr;
    in.seekg(0, std::ios::end);
    const std::streamoff len = in.tellg();
    in.seekg(0, std::ios::beg);
    backing->heap.resize(len > 0 ? std::size_t(len) : 0);
    if (len > 0 &&
        !in.read(backing->heap.data(), std::streamsize(len)))
        return nullptr;
    return backing;
}

} // namespace

std::uint64_t
CompiledTrace::key(const Program &prog, InstCount count)
{
    Fnv1a h;
    h.str(traceKeySalt); // frozen stream-content salt, NOT the magic
    h.u64(prog.codeBase()).u64(prog.entryPC()).u64(count);

    const std::vector<StaticInst> &image = prog.instructions();
    h.u64(image.size());
    for (const StaticInst &si : image) {
        h.u64(si.pc)
            .u64(std::uint64_t(si.cls))
            .u64(std::uint64_t(si.branch))
            .u64(si.directTarget)
            .u64(si.destReg)
            .u64(si.srcRegs[0])
            .u64(si.srcRegs[1])
            .u64(si.behavior);
    }

    const BehaviorSet &b = prog.behaviors();
    h.u64(b.numConds());
    for (std::size_t i = 0; i < b.numConds(); ++i) {
        const CondSpec &c = b.cond(std::uint32_t(i));
        h.u64(std::uint64_t(c.kind))
            .f64(c.takenProb)
            .u64(c.period)
            .u64(c.seed)
            .f64(c.patternBias);
    }
    h.u64(b.numIndirects());
    for (std::size_t i = 0; i < b.numIndirects(); ++i) {
        const IndirectSpec &t = b.indirect(std::uint32_t(i));
        h.u64(std::uint64_t(t.kind)).u64(t.period).u64(t.seed);
        h.u64(t.targets.size());
        for (Addr a : t.targets)
            h.u64(a);
    }
    h.u64(b.numMems());
    for (std::size_t i = 0; i < b.numMems(); ++i) {
        const MemSpec &m = b.mem(std::uint32_t(i));
        h.u64(std::uint64_t(m.kind))
            .u64(m.regionBase)
            .u64(m.regionSize)
            .u64(m.stride)
            .u64(m.seed);
    }
    return h.value();
}

std::shared_ptr<const CompiledTrace>
CompiledTrace::compile(const Program &prog, InstCount count)
{
    std::shared_ptr<CompiledTrace> t(new CompiledTrace);
    t->count_ = count;
    t->key_ = key(prog, count);

    t->ownTaken_.assign(takenWordsFor(count), 0);
    t->ownNextPC_.resize(count);
    t->ownMemAddr_.resize(count);
    t->ownSiIdx_.resize(count);

    const StaticInst *imageBase = prog.instructions().data();
    OracleGen gen;
    gen.reset(prog);
    // Warming side-table derivation runs inline with the generation
    // pass: a new sequential run opens at position 0 and after every
    // taken transfer; every branch-kinded and memory instruction
    // contributes one event in stream order.
    bool newRun = true;
    Addr fallThrough = invalidAddr;
    for (InstCount i = 0; i < count; ++i) {
        const OracleInst oi = gen.step(prog);
        const StaticInst &si = *oi.si;
        t->ownSiIdx_[i] = std::uint32_t(oi.si - imageBase);
        if (oi.taken)
            t->ownTaken_[i >> 6] |= std::uint64_t(1) << (i & 63);
        t->ownNextPC_[i] = oi.nextPC;
        t->ownMemAddr_[i] = oi.memAddr;

        if (newRun) {
            t->ownRunPos_.push_back(std::uint32_t(i));
            t->ownRunPC_.push_back(si.pc);
        } else {
            ELFSIM_ASSERT(si.pc == fallThrough,
                          "non-sequential PC inside a run");
        }
        if (si.branch != BranchKind::None) {
            t->ownBranchPos_.push_back(std::uint32_t(i));
            t->ownBranchPC_.push_back(si.pc);
            t->ownBranchTarget_.push_back(oi.nextPC);
            t->ownBranchKind_.push_back(
                std::uint8_t(std::uint64_t(si.branch)) |
                (oi.taken ? std::uint8_t(0x80) : std::uint8_t(0)));
        }
        if (si.isMemInst()) {
            const std::size_t j = t->ownMemPos_.size();
            if ((j & 63) == 0)
                t->ownStoreWords_.push_back(0);
            if (si.isStore())
                t->ownStoreWords_[j >> 6] |=
                    std::uint64_t(1) << (j & 63);
            t->ownMemPos_.push_back(std::uint32_t(i));
            t->ownMemPC_.push_back(si.pc);
            t->ownMemEvAddr_.push_back(oi.memAddr);
        }
        newRun = oi.taken;
        fallThrough = si.pc + instBytes;
    }
    t->end_ = std::move(gen);
    t->nBranch_ = t->ownBranchPos_.size();
    t->nRun_ = t->ownRunPos_.size();
    t->nMem_ = t->ownMemPos_.size();

    t->takenWords_ = t->ownTaken_.data();
    t->nextPC_ = t->ownNextPC_.data();
    t->memAddr_ = t->ownMemAddr_.data();
    t->siIdx_ = t->ownSiIdx_.data();
    t->branchPC_ = t->ownBranchPC_.data();
    t->branchTarget_ = t->ownBranchTarget_.data();
    t->runPC_ = t->ownRunPC_.data();
    t->memPC_ = t->ownMemPC_.data();
    t->memEvAddr_ = t->ownMemEvAddr_.data();
    t->storeWords_ = t->ownStoreWords_.data();
    t->branchPos_ = t->ownBranchPos_.data();
    t->runPos_ = t->ownRunPos_.data();
    t->memPos_ = t->ownMemPos_.data();
    t->branchKind_ = t->ownBranchKind_.data();
    return t;
}

std::size_t
CompiledTrace::payloadBytes() const
{
    return 8 * (takenWordsFor(count_) + 2 * count_ + 2 * nBranch_ +
                nRun_ + 2 * nMem_ + takenWordsFor(nMem_)) +
           4 * (count_ + nBranch_ + nRun_ + nMem_) + nBranch_;
}

std::vector<char>
CompiledTrace::serialized() const
{
    TraceHeader h;
    h.key = key_;
    h.count = count_;
    h.callDepth = end_.callStack.size();
    h.condN = end_.condCount.size();
    h.indN = end_.indCount.size();
    h.memN = end_.memCount.size();
    h.endPC = end_.pc;
    h.nBranch = nBranch_;
    h.nRun = nRun_;
    h.nMem = nMem_;

    // Assemble the whole image once so the checksum and every
    // consumer (the file write, the wire payload) see the exact same
    // bytes: header first, then the contiguous section region.
    std::vector<char> image;
    image.reserve(std::size_t(expectedFileSize(h)));
    image.resize(headerBytes);
    const auto appendRaw = [&image](const void *p, std::size_t bytes) {
        if (bytes == 0)
            return; // empty sections may have null views
        const char *raw = static_cast<const char *>(p);
        image.insert(image.end(), raw, raw + bytes);
    };
    const auto appendU64s = [&appendRaw](const std::uint64_t *p,
                                         std::size_t n) {
        appendRaw(p, 8 * n);
    };
    appendU64s(end_.callStack.data(), h.callDepth);
    appendU64s(end_.condCount.data(), h.condN);
    appendU64s(end_.indCount.data(), h.indN);
    appendU64s(end_.memCount.data(), h.memN);
    appendU64s(takenWords_, takenWordsFor(count_));
    appendU64s(nextPC_, count_);
    appendU64s(memAddr_, count_);
    appendU64s(branchPC_, nBranch_);
    appendU64s(branchTarget_, nBranch_);
    appendU64s(runPC_, nRun_);
    appendU64s(memPC_, nMem_);
    appendU64s(memEvAddr_, nMem_);
    appendU64s(storeWords_, takenWordsFor(nMem_));
    appendRaw(siIdx_, 4 * count_);
    appendRaw(branchPos_, 4 * nBranch_);
    appendRaw(runPos_, 4 * nRun_);
    appendRaw(memPos_, 4 * nMem_);
    appendRaw(branchKind_, nBranch_);

    h.checksum = contentChecksum(h, image.data() + headerBytes,
                                 image.size() - headerBytes);

    std::memcpy(image.data(), traceMagic, sizeof(traceMagic));
    const std::uint64_t scalars[] = {
        h.key,  h.count,   h.callDepth, h.condN, h.indN,    h.memN,
        h.endPC, h.nBranch, h.nRun,     h.nMem,  h.checksum};
    std::memcpy(image.data() + 16, scalars, sizeof(scalars));
    return image;
}

void
CompiledTrace::save(const std::string &path) const
{
    const std::vector<char> image = serialized();

    // Write to a private temp file and rename into place: readers of
    // a shared cache directory only ever see complete files.
    const std::string tmp =
        path + ".tmp." + std::to_string(
#ifdef ELFSIM_HAVE_MMAP
                              std::uint64_t(::getpid())
#else
                              std::uint64_t(0)
#endif
        );
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw IoError(errorf("cannot open '%s' for writing",
                                 tmp.c_str()));
        os.write(image.data(), std::streamsize(image.size()));
        if (!os)
            throw IoError(errorf("write to '%s' failed", tmp.c_str()));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw IoError(errorf("cannot rename '%s' into '%s'",
                             tmp.c_str(), path.c_str()));
    }
}

std::shared_ptr<const CompiledTrace>
CompiledTrace::load(const std::string &path, std::uint64_t expect_key)
{
    std::shared_ptr<FileBacking> backing = openFileImage(path);
    if (!backing)
        throw IoError(errorf("cannot read trace file '%s'",
                             path.c_str()));
    const char *data = backing->data();
    const std::size_t size = backing->size();
    const std::size_t mapped = backing->map ? backing->mapLen : 0;
    return parseImage(data, size, expect_key,
                      errorf("trace file '%s'", path.c_str()),
                      std::move(backing), mapped);
}

std::shared_ptr<const CompiledTrace>
CompiledTrace::loadBytes(std::vector<char> image,
                         std::uint64_t expect_key,
                         const std::string &what)
{
    // vector<char> (not string): the heap allocation is suitably
    // aligned for the u64 section views.
    auto holder = std::make_shared<std::vector<char>>(std::move(image));
    const char *data = holder->data();
    const std::size_t size = holder->size();
    return parseImage(data, size, expect_key, what, std::move(holder),
                      0);
}

std::shared_ptr<const CompiledTrace>
CompiledTrace::parseImage(const char *data, std::size_t size,
                          std::uint64_t expect_key,
                          const std::string &what,
                          std::shared_ptr<void> backing,
                          std::size_t mapped_bytes)
{
    if (size < headerBytes)
        throw ParseError(errorf("%s truncated "
                                "(%zu bytes, header needs %zu)",
                                what.c_str(), size, headerBytes));
    if (std::memcmp(data, traceMagic, sizeof(traceMagic)) != 0)
        throw ParseError(errorf("%s has a bad magic "
                                "(not an elfsim-trace-v2 image)",
                                what.c_str()));

    TraceHeader h;
    std::memcpy(&h.key, data + 16, 11 * 8); // scalars are contiguous
    if (h.key != expect_key)
        throw ParseError(errorf(
            "%s is stale: key %016llx, expected %016llx",
            what.c_str(), (unsigned long long)h.key,
            (unsigned long long)expect_key));

    // Field sanity before any size arithmetic (caps far above real
    // values keep a corrupt length from overflowing the size check).
    // Side-table lengths are bounded by the instruction count: every
    // event maps to one instruction, and a run needs a first one.
    constexpr std::uint64_t fieldCap = std::uint64_t(1) << 32;
    if (h.count >= fieldCap || h.callDepth > OracleGen::maxCallDepth ||
        h.condN >= fieldCap || h.indN >= fieldCap || h.memN >= fieldCap)
        throw ParseError(errorf("%s has implausible "
                                "section lengths", what.c_str()));
    if (h.nBranch > h.count || h.nMem > h.count || h.nRun > h.count ||
        (h.count > 0) != (h.nRun > 0))
        throw ParseError(errorf("%s has implausible "
                                "side-table lengths", what.c_str()));
    if (size != expectedFileSize(h))
        throw ParseError(errorf(
            "%s size mismatch (%zu bytes, header "
            "implies %llu)", what.c_str(), size,
            (unsigned long long)expectedFileSize(h)));

    const char *sections = data + headerBytes;
    const std::size_t sectionBytes = size - headerBytes;
    if (contentChecksum(h, sections, sectionBytes) != h.checksum)
        throw ParseError(errorf("%s failed its checksum "
                                "(corrupt or torn write)",
                                what.c_str()));

    std::shared_ptr<CompiledTrace> t(new CompiledTrace);
    t->count_ = h.count;
    t->key_ = h.key;
    t->backing_ = std::move(backing);
    t->mappedBytes_ = mapped_bytes;

    const std::uint64_t *u64s =
        reinterpret_cast<const std::uint64_t *>(sections);
    const auto takeU64s = [&u64s](std::vector<std::uint64_t> &out,
                                  std::size_t n) {
        out.assign(u64s, u64s + n);
        u64s += n;
    };
    t->end_.pc = h.endPC;
    t->end_.callStack.reserve(OracleGen::maxCallDepth);
    t->end_.callStack.assign(u64s, u64s + h.callDepth);
    u64s += h.callDepth;
    takeU64s(t->end_.condCount, h.condN);
    takeU64s(t->end_.indCount, h.indN);
    takeU64s(t->end_.memCount, h.memN);

    t->nBranch_ = h.nBranch;
    t->nRun_ = h.nRun;
    t->nMem_ = h.nMem;

    t->takenWords_ = u64s;
    u64s += takenWordsFor(h.count);
    t->nextPC_ = u64s;
    u64s += h.count;
    t->memAddr_ = u64s;
    u64s += h.count;
    t->branchPC_ = u64s;
    u64s += h.nBranch;
    t->branchTarget_ = u64s;
    u64s += h.nBranch;
    t->runPC_ = u64s;
    u64s += h.nRun;
    t->memPC_ = u64s;
    u64s += h.nMem;
    t->memEvAddr_ = u64s;
    u64s += h.nMem;
    t->storeWords_ = u64s;
    u64s += takenWordsFor(h.nMem);

    const std::uint32_t *u32s =
        reinterpret_cast<const std::uint32_t *>(u64s);
    t->siIdx_ = u32s;
    u32s += h.count;
    t->branchPos_ = u32s;
    u32s += h.nBranch;
    t->runPos_ = u32s;
    u32s += h.nRun;
    t->memPos_ = u32s;
    u32s += h.nMem;
    t->branchKind_ = reinterpret_cast<const std::uint8_t *>(u32s);
    return t;
}

InstCount
CompiledTrace::firstBranchAtOrAfter(InstCount pos) const
{
    const std::uint32_t *it = std::lower_bound(
        branchPos_, branchPos_ + nBranch_, std::uint32_t(pos));
    return InstCount(it - branchPos_);
}

InstCount
CompiledTrace::firstMemAtOrAfter(InstCount pos) const
{
    const std::uint32_t *it = std::lower_bound(
        memPos_, memPos_ + nMem_, std::uint32_t(pos));
    return InstCount(it - memPos_);
}

InstCount
CompiledTrace::runContaining(InstCount pos) const
{
    ELFSIM_ASSERT(pos < count_, "run lookup past the compiled prefix");
    const std::uint32_t *it = std::upper_bound(
        runPos_, runPos_ + nRun_, std::uint32_t(pos));
    return InstCount(it - runPos_) - 1; // runPos_[0] == 0 always
}

} // namespace elfsim
