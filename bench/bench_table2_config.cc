/**
 * @file
 * Table II equivalent: the baseline pipeline configuration and the
 * ELF structure sizes/storage costs.
 */

#include <iostream>

#include "bench_util.hh"
#include "sim/config.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::warnNoExport(opt, "this bench prints the static "
                             "configuration; it runs no simulations");
    bench::banner("Table II — Baseline pipeline configuration",
                  "Defaults of this simulator; ELF adds < 2KB of "
                  "coupled-predictor storage");
    printConfig(std::cout, makeConfig(FrontendVariant::Dcf));
    std::cout << "\n";
    printConfig(std::cout, makeConfig(FrontendVariant::UElf));
    return 0;
}
