#include "bpred/ittage.hh"

#include <cmath>

#include "common/logging.hh"

namespace elfsim {

Ittage::Ittage(const IttageParams &params)
    : params(params), allocRng(params.allocSeed)
{
    ELFSIM_ASSERT(params.numTables >= 1 &&
                      params.numTables <= ittageMaxTables,
                  "bad ITTAGE table count %u", params.numTables);

    histLengths.resize(params.numTables);
    const double ratio =
        params.numTables > 1
            ? std::pow(double(params.maxHist) / params.minHist,
                       1.0 / (params.numTables - 1))
            : 1.0;
    double h = params.minHist;
    for (unsigned t = 0; t < params.numTables; ++t) {
        histLengths[t] = std::max<unsigned>(1, unsigned(h + 0.5));
        if (t > 0 && histLengths[t] <= histLengths[t - 1])
            histLengths[t] = histLengths[t - 1] + 1;
        h *= ratio;
    }

    const std::size_t entries = 1ull << params.tableEntriesLog2;
    tables.assign(params.numTables * entries, Entry{});
    for (auto &e : tables)
        e.conf = SatCounter(2, 0);

    for (HistState *hs : {&spec, &arch}) {
        hs->indexFold.resize(params.numTables);
        hs->tagFold.resize(params.numTables);
        for (unsigned t = 0; t < params.numTables; ++t) {
            hs->indexFold[t] =
                FoldedHistory(histLengths[t], params.tableEntriesLog2);
            hs->tagFold[t] = FoldedHistory(histLengths[t], params.tagBits);
        }
    }

    base.assign(1ull << params.baseEntriesLog2, Entry{});
    for (auto &e : base)
        e.conf = SatCounter(2, 0);
}

std::uint32_t
Ittage::tableIndex(const HistState &h, Addr pc, unsigned t) const
{
    const std::uint64_t p = pc / instBytes;
    const std::uint64_t v =
        p ^ (p >> (1 + t)) ^ h.indexFold[t].value() ^
        (h.pathHist & ((1ull << std::min(16u, histLengths[t])) - 1));
    return v & ((1u << params.tableEntriesLog2) - 1);
}

std::uint16_t
Ittage::tableTag(const HistState &h, Addr pc, unsigned t) const
{
    const std::uint64_t p = pc / instBytes;
    return (p ^ (h.tagFold[t].value() << 1) ^ h.tagFold[t].value()) &
           ((1u << params.tagBits) - 1);
}

IttagePrediction
Ittage::predictWith(const HistState &h, Addr pc) const
{
    // Lookup memo: see Tage::predictWith.
    const bool isSpec = &h == &spec;
    PredMemo &memo = isSpec ? specMemo : archMemo;
    const std::uint64_t gen = isSpec ? specGen : archGen;
    if (memo.pc == pc && memo.gen == gen)
        return memo.pred;

    IttagePrediction pred;
    pred.valid = true;
    pred.baseIndex =
        (pc / instBytes) & ((1u << params.baseEntriesLog2) - 1);

    for (unsigned t = 0; t < params.numTables; ++t) {
        pred.indices[t] = tableIndex(h, pc, t);
        pred.tags[t] = tableTag(h, pc, t);
    }

    for (int t = int(params.numTables) - 1; t >= 0; --t) {
        const Entry &e = entry(t, pred.indices[t]);
        if (e.valid && e.tag == pred.tags[t]) {
            pred.provider = t;
            pred.target = e.target;
            break;
        }
    }

    if (pred.provider < 0) {
        const Entry &b = base[pred.baseIndex];
        if (b.valid) {
            pred.baseHit = true;
            pred.target = b.target;
        }
    }

    memo.pc = pc;
    memo.gen = gen;
    memo.pred = pred;
    return pred;
}

void
Ittage::push(HistState &h, Addr pc, bool bit)
{
    for (unsigned t = 0; t < params.numTables; ++t) {
        const unsigned len = histLengths[t];
        const bool old = h.ghr.bitAt(len - 1);
        h.indexFold[t].update(bit, old);
        h.tagFold[t].update(bit, old);
    }
    h.ghr.push(bit);
    h.pathHist = (h.pathHist << 2) ^ ((pc / instBytes) & 0xff);
}

void
Ittage::update(Addr pc, const IttagePrediction &pred, Addr target)
{
    (void)pc;
    ELFSIM_ASSERT(pred.valid, "training ITTAGE with empty prediction");
    ++updateCount;
    ++specGen;
    ++archGen;
    if (updateCount % params.uResetPeriod == 0) {
        for (auto &e : tables)
            e.useful >>= 1;
    }

    const bool correct =
        pred.target != invalidAddr && pred.target == target;

    if (pred.provider >= 0) {
        Entry &e = entry(pred.provider, pred.indices[pred.provider]);
        if (e.target == target) {
            e.conf.increment();
            if (e.useful < 3)
                ++e.useful;
        } else {
            if (e.conf.raw() == 0) {
                e.target = target;
                e.conf.increment();
            } else {
                e.conf.decrement();
            }
            if (e.useful > 0)
                --e.useful;
        }
    } else {
        Entry &b = base[pred.baseIndex];
        if (!b.valid) {
            b.valid = true;
            b.target = target;
            b.conf = SatCounter(2, 1);
        } else if (b.target == target) {
            b.conf.increment();
        } else if (b.conf.raw() == 0) {
            b.target = target;
            b.conf = SatCounter(2, 1);
        } else {
            b.conf.decrement();
        }
    }

    // Allocate in a longer-history table on a wrong/missing target.
    if (!correct && pred.provider < int(params.numTables) - 1) {
        const unsigned start = pred.provider + 1;
        int chosen = -1;
        unsigned seen = 0;
        for (unsigned t = start; t < params.numTables; ++t) {
            const Entry &e = entry(t, pred.indices[t]);
            if (!e.valid || e.useful == 0) {
                ++seen;
                if (chosen < 0 ||
                    (seen == 2 && allocRng.chance(1.0 / 3)))
                    chosen = int(t);
                if (seen == 2)
                    break;
            }
        }
        if (chosen >= 0) {
            Entry &e = entry(chosen, pred.indices[chosen]);
            e.valid = true;
            e.tag = pred.tags[chosen];
            e.target = target;
            e.conf = SatCounter(2, 1);
            e.useful = 0;
        } else {
            for (unsigned t = start; t < params.numTables; ++t) {
                Entry &e = entry(t, pred.indices[t]);
                if (e.useful > 0)
                    --e.useful;
            }
        }
    }
}

void
Ittage::saveHist(Serializer &s, const HistState &h) const
{
    h.ghr.saveState(s);
    s.u64(h.pathHist);
    for (unsigned t = 0; t < params.numTables; ++t) {
        s.u32(h.indexFold[t].value());
        s.u32(h.tagFold[t].value());
    }
}

void
Ittage::loadHist(Deserializer &d, HistState &h)
{
    h.ghr.loadState(d);
    h.pathHist = d.u64();
    for (unsigned t = 0; t < params.numTables; ++t) {
        h.indexFold[t].restore(d.u32());
        h.tagFold[t].restore(d.u32());
    }
}

void
Ittage::saveEntries(Serializer &s, const std::vector<Entry> &v) const
{
    s.u64(v.size());
    for (const Entry &e : v) {
        s.u16(e.tag);
        s.u64(e.target);
        s.u16(std::uint16_t(e.conf.raw()));
        s.u8(e.useful);
        s.boolean(e.valid);
    }
}

void
Ittage::loadEntries(Deserializer &d, std::vector<Entry> &v,
                    const char *what)
{
    if (d.u64() != v.size())
        throw ParseError(std::string("ittage: ") + what +
                         " geometry mismatch");
    for (Entry &e : v) {
        e.tag = d.u16();
        e.target = d.u64();
        e.conf.set(d.u16());
        e.useful = d.u8();
        e.valid = d.boolean();
    }
}

void
Ittage::saveState(Serializer &s) const
{
    saveEntries(s, tables);
    saveEntries(s, base);
    saveHist(s, spec);
    saveHist(s, arch);
    s.u64(updateCount);
    s.u64(allocRng.rawState());
}

void
Ittage::loadState(Deserializer &d)
{
    loadEntries(d, tables, "tagged tables");
    loadEntries(d, base, "base table");
    loadHist(d, spec);
    loadHist(d, arch);
    updateCount = d.u64();
    allocRng.seed(d.u64());
    // The lookup memos cache stale table contents; invalidate them.
    ++specGen;
    ++archGen;
}

double
Ittage::storageBytes() const
{
    const double perEntryBits = params.tagBits + 64 + 2 + 2 + 1;
    const double taggedBits = double(params.numTables) *
                              double(1ull << params.tableEntriesLog2) *
                              perEntryBits;
    const double baseBits =
        double(1ull << params.baseEntriesLog2) * (64 + 2 + 1);
    return (taggedBits + baseBits) / 8.0;
}

} // namespace elfsim
