#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "sim/export.hh"
#include "sim/sweep.hh"
#include "workload/builders.hh"

using namespace elfsim;

namespace {

RunOptions
smallWindow()
{
    RunOptions o;
    o.warmupInsts = 20000;
    o.measureInsts = 30000;
    return o;
}

/** The 6-job (workload × variant) grid used by the determinism tests. */
std::vector<SweepJob>
sixJobGrid(const Program &a, const Program &b, const Program &c)
{
    const RunOptions o = smallWindow();
    return {
        makeVariantJob(a, FrontendVariant::Dcf, o),
        makeVariantJob(a, FrontendVariant::UElf, o),
        makeVariantJob(b, FrontendVariant::Dcf, o),
        makeVariantJob(b, FrontendVariant::UElf, o),
        makeVariantJob(c, FrontendVariant::Dcf, o),
        makeVariantJob(c, FrontendVariant::UElf, o),
    };
}

/**
 * Every field of RunResult, compared exactly (doubles included:
 * parallel runs must be bit-identical to serial ones). Fields are
 * enumerated by RunResult::forEachField — the same single source of
 * truth the exporters use — plus the timeline, so a new field can
 * never silently escape the determinism check. The JSON comparison
 * is exact because doubles serialize with round-trip precision.
 */
void
expectIdentical(const RunResult &x, const RunResult &y)
{
    const auto asJson = [](const RunResult &r) {
        std::ostringstream os;
        JsonWriter w(os);
        writeRunResult(w, r);
        return os.str();
    };
    EXPECT_EQ(asJson(x), asJson(y));
}

} // namespace

TEST(Sweep, ParallelMatchesSerialBitIdentical)
{
    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    Program c = microBtbMissChain(512, 6);
    const std::vector<SweepJob> grid = sixJobGrid(a, b, c);

    SweepRunner serial(1);
    SweepRunner parallel(4);
    ASSERT_EQ(serial.threadCount(), 1u);
    ASSERT_EQ(parallel.threadCount(), 4u);

    const std::vector<RunResult> rs = serial.run(grid);
    const std::vector<RunResult> rp = parallel.run(grid);
    ASSERT_EQ(rs.size(), grid.size());
    ASSERT_EQ(rp.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i)
        expectIdentical(rs[i], rp[i]);
}

TEST(Sweep, PerJobSeedsAreThreadCountInvariant)
{
    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    Program c = microBtbMissChain(512, 6);
    const std::vector<SweepJob> grid = sixJobGrid(a, b, c);

    SweepRunner serial(1);
    serial.setBaseSeed(0xfeed);
    SweepRunner parallel(4);
    parallel.setBaseSeed(0xfeed);

    const std::vector<RunResult> rs = serial.run(grid);
    const std::vector<RunResult> rp = parallel.run(grid);
    for (std::size_t i = 0; i < grid.size(); ++i)
        expectIdentical(rs[i], rp[i]);
}

TEST(Sweep, ResultsMergeInSubmissionOrder)
{
    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    Program c = microBtbMissChain(512, 6);
    const std::vector<SweepJob> grid = sixJobGrid(a, b, c);

    SweepRunner runner(4);
    const std::vector<RunResult> res = runner.run(grid);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(res[i].workload, grid[i].program->name());
        EXPECT_EQ(res[i].variant, variantName(grid[i].cfg.variant));
    }
}

TEST(Sweep, TimingSummaryPopulated)
{
    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    Program c = microBtbMissChain(512, 6);

    SweepRunner runner(2);
    runner.run(sixJobGrid(a, b, c));
    const SweepTiming &t = runner.timing();
    EXPECT_EQ(t.jobs, 6u);
    EXPECT_EQ(t.threads, 2u);
    EXPECT_GT(t.wallSeconds, 0.0);
    EXPECT_GE(t.serialSeconds, 0.0);
    EXPECT_GT(t.simCycles, 0u);
    EXPECT_GT(t.simInsts, 0u);
    EXPECT_GT(t.cyclesPerSecond(), 0.0);

    std::ostringstream os;
    runner.printTimingSummary(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("sweep.jobs"), std::string::npos);
    EXPECT_NE(s.find("sweep.threads"), std::string::npos);
    EXPECT_NE(s.find("sweep.wall_seconds"), std::string::npos);
    EXPECT_NE(s.find("sweep.sim_cycles_per_second"),
              std::string::npos);
    EXPECT_NE(s.find("sweep.job_seconds"), std::string::npos);
}

TEST(Sweep, ResolveJobsPrecedence)
{
    // Explicit request wins.
    EXPECT_EQ(SweepRunner::resolveJobs(3), 3u);

    // Then the environment variable.
    ::setenv("ELFSIM_JOBS", "5", 1);
    EXPECT_EQ(SweepRunner::resolveJobs(0), 5u);
    EXPECT_EQ(SweepRunner(0).threadCount(), 5u);

    // Garbage / unset falls back to hardware concurrency (>= 1).
    ::setenv("ELFSIM_JOBS", "zero", 1);
    EXPECT_GE(SweepRunner::resolveJobs(0), 1u);
    ::unsetenv("ELFSIM_JOBS");
    EXPECT_GE(SweepRunner::resolveJobs(0), 1u);
}

TEST(Sweep, SeededSweepStillDeterministicAcrossRepeats)
{
    Program a = microRandomBranchLoop(8, 0.4);
    const RunOptions o = smallWindow();
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::UElf, o),
        makeVariantJob(a, FrontendVariant::UElf, o),
    };

    SweepRunner r1(2), r2(2);
    r1.setBaseSeed(0x5eed);
    r2.setBaseSeed(0x5eed);
    const std::vector<RunResult> x = r1.run(grid);
    const std::vector<RunResult> y = r2.run(grid);
    for (std::size_t i = 0; i < grid.size(); ++i)
        expectIdentical(x[i], y[i]);
}
