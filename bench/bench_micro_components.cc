/**
 * @file
 * google-benchmark microbenchmarks of the simulator's components:
 * predictor lookup/update throughput, BTB probe, cache access, and
 * whole-core simulation speed (host MIPS).
 */

#include <benchmark/benchmark.h>

#include "bpred/predictor_bank.hh"
#include "btb/btb.hh"
#include "cache/hierarchy.hh"
#include "sim/core.hh"
#include "workload/catalog.hh"

using namespace elfsim;

namespace {

void
BM_TagePredict(benchmark::State &state)
{
    Tage tage;
    Addr pc = 0x400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tage.predict(pc));
        tage.pushSpec(pc, (pc >> 4) & 1);
        pc += instBytes * 7;
        if (pc > 0x500000)
            pc = 0x400000;
    }
}
BENCHMARK(BM_TagePredict);

void
BM_TageUpdate(benchmark::State &state)
{
    Tage tage;
    Addr pc = 0x400000;
    for (auto _ : state) {
        const TagePrediction p = tage.predict(pc);
        tage.update(pc, p, (pc >> 3) & 1);
        tage.pushSpec(pc, (pc >> 3) & 1);
        tage.pushArch(pc, (pc >> 3) & 1);
        pc += instBytes * 5;
        if (pc > 0x480000)
            pc = 0x400000;
    }
}
BENCHMARK(BM_TageUpdate);

void
BM_BtbLookup(benchmark::State &state)
{
    MultiBtb btb;
    for (unsigned i = 0; i < 512; ++i) {
        BtbEntry e;
        e.valid = true;
        e.startPC = 0x400000 + instsToBytes(16 * i);
        e.numInsts = 16;
        btb.insert(e);
    }
    Addr pc = 0x400000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(btb.lookup(pc));
        pc += instsToBytes(16 * 37);
        if (pc >= 0x400000 + instsToBytes(16 * 512))
            pc = 0x400000 + (pc % instsToBytes(16 * 512)) /
                                instsToBytes(16) * instsToBytes(16);
    }
}
BENCHMARK(BM_BtbLookup);

void
BM_CacheAccess(benchmark::State &state)
{
    MemHierarchy mem;
    Addr a = 0x10000000;
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.dataAccess(0x400000, a, false,
                                                ++now));
        a += 64;
        if (a > 0x10000000 + (1 << 20))
            a = 0x10000000;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_CoreSimulation(benchmark::State &state)
{
    const WorkloadSpec *w = findWorkload("641.leela");
    Program p = buildWorkload(*w);
    SimConfig cfg = makeConfig(
        static_cast<FrontendVariant>(state.range(0)));
    Core core(cfg, p);
    core.run(50000); // warm
    for (auto _ : state) {
        const InstCount before = core.committed();
        core.run(10000);
        benchmark::DoNotOptimize(core.committed() - before);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(core.committed()));
}
BENCHMARK(BM_CoreSimulation)
    ->Arg(static_cast<int>(FrontendVariant::Dcf))
    ->Arg(static_cast<int>(FrontendVariant::UElf))
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
