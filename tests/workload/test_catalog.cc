#include <gtest/gtest.h>

#include <set>

#include "workload/catalog.hh"
#include "workload/oracle_stream.hh"

using namespace elfsim;

TEST(Catalog, NonEmptyAndUniqueNames)
{
    const auto &cat = workloadCatalog();
    EXPECT_GE(cat.size(), 25u);
    std::set<std::string> names;
    for (const auto &w : cat)
        names.insert(w.name);
    EXPECT_EQ(names.size(), cat.size());
}

TEST(Catalog, FindByName)
{
    EXPECT_NE(findWorkload("641.leela"), nullptr);
    EXPECT_NE(findWorkload("srv1.subtest_1"), nullptr);
    EXPECT_EQ(findWorkload("nonexistent"), nullptr);
}

TEST(Catalog, ElfRelevantSubsetExists)
{
    for (const std::string &n : elfRelevantWorkloads())
        EXPECT_NE(findWorkload(n), nullptr) << n;
}

TEST(Catalog, SuitesCoverCatalog)
{
    std::size_t total = 0;
    for (const std::string &s : catalogSuites())
        total += suiteWorkloads(s).size();
    EXPECT_EQ(total, workloadCatalog().size());
}

TEST(Catalog, Server1HasLargeFootprint)
{
    const WorkloadSpec *srv = findWorkload("srv1.subtest_1");
    ASSERT_NE(srv, nullptr);
    Program p = buildWorkload(*srv);
    // Server 1 must exceed the 64KB L1I reach by a wide margin.
    EXPECT_GT(p.footprintBytes(), 3u * 64 * 1024);

    const WorkloadSpec *leela = findWorkload("641.leela");
    ASSERT_NE(leela, nullptr);
    Program q = buildWorkload(*leela);
    EXPECT_LT(q.footprintBytes(), p.footprintBytes());
}

class CatalogBuild : public ::testing::TestWithParam<std::string>
{};

TEST_P(CatalogBuild, BuildsAndRunsArchitecturally)
{
    const WorkloadSpec *spec = findWorkload(GetParam());
    ASSERT_NE(spec, nullptr);
    Program p = buildWorkload(*spec);
    EXPECT_GT(p.footprintInsts(), 50u);

    // The architectural stream must be able to run a while without
    // leaving the image, and must contain branches.
    OracleStream os(p);
    unsigned branches = 0;
    for (SeqNum i = 1; i <= 20000; ++i) {
        const OracleInst &oi = os.at(i);
        ASSERT_NE(oi.si, nullptr);
        branches += oi.si->isBranchInst() ? 1 : 0;
        os.retireUpTo(i);
    }
    EXPECT_GT(branches, 500u);
}

INSTANTIATE_TEST_SUITE_P(
    AllElfRelevant, CatalogBuild,
    ::testing::ValuesIn(elfRelevantWorkloads()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });
