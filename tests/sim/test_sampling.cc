/**
 * @file
 * Sampled-execution tests: the sampled IPC estimate stays within its
 * own reported error bound against a full detailed run across the
 * workload catalog, checkpointed re-runs are byte-identical to cold
 * runs (and actually hit), corrupt or injected-fault checkpoint
 * artifacts fall back to fast-forward transparently, bad schedules
 * are rejected up front, and a sampled sweep exports identically at
 * any thread count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "sim/config.hh"
#include "sim/export.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "workload/builders.hh"
#include "workload/catalog.hh"
#include "workload/checkpoint_store.hh"

using namespace elfsim;

namespace {

// Sanitizer builds run the simulator several times slower; subsample
// the catalog sweep there so the asan/tsan presets stay practical.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr unsigned kCatalogStride = 5;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr unsigned kCatalogStride = 5;
#else
constexpr unsigned kCatalogStride = 1;
#endif
#else
constexpr unsigned kCatalogStride = 1;
#endif

/** Arm the process-wide injector for one scope (test_fault idiom). */
struct ArmedFaults
{
    explicit ArmedFaults(const std::string &spec)
    {
        FaultInjector::instance().arm(FaultInjector::parse(spec));
    }
    ~ArmedFaults() { FaultInjector::instance().disarm(); }
};

/** Point the process-wide checkpoint store at a fresh directory for
 *  one scope; restores the previous configuration on exit. */
class ScopedCkptDir
{
  public:
    explicit ScopedCkptDir(const std::string &name)
        : prevDir(CheckpointStore::instance().directory()),
          prevEnabled(CheckpointStore::instance().enabled()),
          dir(testing::TempDir() + name)
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        CheckpointStore &s = CheckpointStore::instance();
        s.setEnabled(true);
        s.setDirectory(dir);
    }
    ~ScopedCkptDir()
    {
        CheckpointStore &s = CheckpointStore::instance();
        s.setDirectory(prevDir);
        s.setEnabled(prevEnabled);
    }

    const std::string &path() const { return dir; }

  private:
    std::string prevDir;
    bool prevEnabled;
    std::string dir;
};

/** Disable the checkpoint store for one scope. */
class ScopedCkptOff
{
  public:
    ScopedCkptOff() : prev(CheckpointStore::instance().enabled())
    {
        CheckpointStore::instance().setEnabled(false);
    }
    ~ScopedCkptOff() { CheckpointStore::instance().setEnabled(prev); }

  private:
    bool prev;
};

std::string
toJson(const RunResult &r)
{
    std::ostringstream os;
    JsonWriter w(os);
    writeRunResult(w, r);
    return os.str();
}

RunOptions
sampledOpts(InstCount total, InstCount period, InstCount length,
            InstCount warmup)
{
    RunOptions o;
    o.warmupInsts = 0;
    o.measureInsts = total;
    o.samplePeriodInsts = period;
    o.sampleLengthInsts = length;
    o.sampleWarmupInsts = warmup;
    return o;
}

} // namespace

TEST(Sampling, RejectsContradictorySchedules)
{
    Program p = microSequentialLoop(30, 16);
    // Measured window larger than the period.
    EXPECT_THROW(
        runVariant(p, FrontendVariant::UElf,
                   sampledOpts(100000, 10000, 10001, 0)),
        ConfigError);
    // Warmup + length overflow the period.
    EXPECT_THROW(
        runVariant(p, FrontendVariant::UElf,
                   sampledOpts(100000, 10000, 8000, 3000)),
        ConfigError);
    // No measured window at all.
    EXPECT_THROW(runVariant(p, FrontendVariant::UElf,
                            sampledOpts(100000, 10000, 0, 1000)),
                 ConfigError);
    // Budget smaller than one period.
    EXPECT_THROW(runVariant(p, FrontendVariant::UElf,
                            sampledOpts(5000, 10000, 2000, 500)),
                 ConfigError);
    // Sample length/warmup without a period.
    EXPECT_THROW(runVariant(p, FrontendVariant::UElf,
                            sampledOpts(100000, 0, 2000, 500)),
                 ConfigError);
    // Interval timeline capture is mutually exclusive with sampling.
    RunOptions o = sampledOpts(100000, 10000, 2000, 500);
    o.intervalInsts = 1000;
    EXPECT_THROW(runVariant(p, FrontendVariant::UElf, o), ConfigError);
}

TEST(Sampling, SampledIpcWithinReportedBoundAcrossCatalog)
{
    ScopedCkptOff off;

    RunOptions full;
    full.warmupInsts = 0;
    full.measureInsts = 150000;
    const RunOptions so = sampledOpts(150000, 5000, 2000, 500);

    unsigned wi = 0;
    for (const WorkloadSpec &w : workloadCatalog()) {
        if (wi++ % kCatalogStride != 0)
            continue;
        Program p = buildWorkload(w);
        const RunResult f = runVariant(p, FrontendVariant::UElf, full);
        const RunResult s = runVariant(p, FrontendVariant::UElf, so);

        ASSERT_GT(f.ipc, 0.0) << w.name;
        ASSERT_TRUE(s.sampled) << w.name;
        const double err = std::fabs(s.ipc - f.ipc) / f.ipc;
        EXPECT_LE(err, s.sampling.ipcRelErr95)
            << w.name << ": sampled " << s.ipc << " vs full " << f.ipc;

        // Extrapolation-block coherence.
        EXPECT_FALSE(f.sampled) << w.name;
        EXPECT_EQ(s.sampling.windows, 30u) << w.name;
        EXPECT_EQ(s.sampling.totalInsts,
                  s.sampling.windows * s.sampling.periodInsts)
            << w.name;
        EXPECT_EQ(s.sampling.measuredInsts, s.insts) << w.name;
        EXPECT_EQ(s.intervalInsts, s.sampling.lengthInsts) << w.name;
        EXPECT_EQ(s.timeline.size(), s.sampling.windows) << w.name;
        EXPECT_GE(s.sampling.estTotalCycles, double(s.cycles))
            << w.name;
        EXPECT_GT(s.sampling.ipcRelErr95, 0.0) << w.name;
        // One timeline row per measured window, tiling the measured
        // instruction budget exactly.
        InstCount tlInsts = 0;
        for (const IntervalSample &row : s.timeline)
            tlInsts += row.insts;
        EXPECT_EQ(tlInsts, s.insts) << w.name;
        // Checkpoints were off: no store activity reported.
        EXPECT_EQ(s.sampling.ckptHits, 0u) << w.name;
        EXPECT_EQ(s.sampling.ckptSaves, 0u) << w.name;
    }
}

TEST(Sampling, CheckpointedRerunIsByteIdenticalAndSkipsFastForward)
{
    ScopedCkptDir dir("elfsim_sampling_rt");
    Program p = buildWorkload(workloadCatalog().front());
    const RunOptions so = sampledOpts(150000, 15000, 2500, 500);

    const CkptStats before = CheckpointStore::instance().stats();
    const RunResult cold = runVariant(p, FrontendVariant::UElf, so);
    EXPECT_GT(cold.sampling.ckptSaves, 0u);
    EXPECT_EQ(cold.sampling.ckptHits, 0u);

    const RunResult warm = runVariant(p, FrontendVariant::UElf, so);
    EXPECT_EQ(warm.sampling.ckptHits, cold.sampling.ckptSaves);
    EXPECT_EQ(warm.sampling.ckptMisses, 0u);
    EXPECT_EQ(warm.sampling.ckptSaves, 0u);

    const CkptStats d =
        CheckpointStore::instance().stats().delta(before);
    EXPECT_EQ(d.hits, warm.sampling.ckptHits);
    EXPECT_EQ(d.saves, cold.sampling.ckptSaves);
    EXPECT_GT(d.bytesWritten, 0u);
    EXPECT_GT(d.bytesRead, 0u);
    EXPECT_EQ(d.loadFailures, 0u);

    // The warm run must reproduce the cold run bit-exactly —
    // everything but the checkpoint traffic counters and the
    // functional-warming work split (a checkpointed rerun skips the
    // fast-forward entirely, so its warm.* counters are zero).
    RunResult a = cold, b = warm;
    a.sampling.ckptHits = b.sampling.ckptHits = 0;
    a.sampling.ckptMisses = b.sampling.ckptMisses = 0;
    a.sampling.ckptSaves = b.sampling.ckptSaves = 0;
    EXPECT_EQ(warm.sampling.warmFfInsts, 0u);
    a.sampling.warmKernelInsts = b.sampling.warmKernelInsts = 0;
    a.sampling.warmScalarInsts = b.sampling.warmScalarInsts = 0;
    a.sampling.warmBranchEvents = b.sampling.warmBranchEvents = 0;
    a.sampling.warmLinesTouched = b.sampling.warmLinesTouched = 0;
    a.sampling.warmFfInsts = b.sampling.warmFfInsts = 0;
    EXPECT_EQ(toJson(a), toJson(b));
}

TEST(Sampling, CorruptCheckpointsFallBackToFastForward)
{
    ScopedCkptDir dir("elfsim_sampling_corrupt");
    Program p = microRandomBranchLoop(8, 0.4);
    const RunOptions so = sampledOpts(100000, 10000, 2500, 500);

    const RunResult cold = runVariant(p, FrontendVariant::UElf, so);
    ASSERT_GT(cold.sampling.ckptSaves, 0u);

    // (a) Injected read corruption: the 'ckptcache' fault site flips
    // bytes on every artifact read. Loads fail validation, the run
    // fast-forwards instead, and the result is unchanged.
    {
        const CkptStats before = CheckpointStore::instance().stats();
        ArmedFaults armed("ckptcache:*:0");
        const RunResult got = runVariant(p, FrontendVariant::UElf, so);
        const CkptStats d =
            CheckpointStore::instance().stats().delta(before);
        EXPECT_GT(d.loadFailures, 0u);
        EXPECT_EQ(d.hits, 0u);
        EXPECT_EQ(toJson(got), toJson(cold));
    }

    // (b) On-disk truncation/garbage: overwrite every artifact in the
    // store directory, then re-run. Same transparent fallback, and
    // the re-run repopulates the artifacts.
    {
        unsigned clobbered = 0;
        for (const auto &e :
             std::filesystem::recursive_directory_iterator(dir.path()))
            if (e.is_regular_file()) {
                std::ofstream os(e.path(), std::ios::trunc);
                os << "not a checkpoint";
                ++clobbered;
            }
        ASSERT_GT(clobbered, 0u);

        const CkptStats before = CheckpointStore::instance().stats();
        const RunResult got = runVariant(p, FrontendVariant::UElf, so);
        const CkptStats d =
            CheckpointStore::instance().stats().delta(before);
        EXPECT_GT(d.loadFailures, 0u);
        EXPECT_EQ(d.hits, 0u);
        EXPECT_EQ(d.saves, cold.sampling.ckptSaves);
        EXPECT_EQ(toJson(got), toJson(cold));

        // And the repopulated artifacts hit again. Counters differ
        // (got re-saved, warm hit), so compare with them zeroed.
        RunResult warm = runVariant(p, FrontendVariant::UElf, so);
        EXPECT_EQ(warm.sampling.ckptHits, cold.sampling.ckptSaves);
        RunResult g = got;
        g.sampling.ckptHits = warm.sampling.ckptHits = 0;
        g.sampling.ckptMisses = warm.sampling.ckptMisses = 0;
        g.sampling.ckptSaves = warm.sampling.ckptSaves = 0;
        g.sampling.warmKernelInsts = warm.sampling.warmKernelInsts = 0;
        g.sampling.warmScalarInsts = warm.sampling.warmScalarInsts = 0;
        g.sampling.warmBranchEvents = warm.sampling.warmBranchEvents =
            0;
        g.sampling.warmLinesTouched = warm.sampling.warmLinesTouched =
            0;
        g.sampling.warmFfInsts = warm.sampling.warmFfInsts = 0;
        EXPECT_EQ(toJson(g), toJson(warm));
    }
}

TEST(Sampling, SweepExportIsByteIdenticalAcrossJobCounts)
{
    Program a = microSequentialLoop(30, 16);
    Program b = microRandomBranchLoop(8, 0.4);
    const RunOptions so = sampledOpts(100000, 10000, 2500, 500);
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::UElf, so),
        makeVariantJob(a, FrontendVariant::Dcf, so),
        makeVariantJob(b, FrontendVariant::UElf, so),
        makeVariantJob(b, FrontendVariant::Dcf, so),
    };

    // Separate cold stores per run: checkpoint traffic counters are
    // part of the export, so both sweeps must start equally cold.
    std::string one, four;
    {
        ScopedCkptDir dir("elfsim_sampling_jobs1");
        SweepRunner runner(1);
        const std::vector<RunResult> res = runner.run(grid);
        EXPECT_EQ(runner.failedCells(), 0u);
        std::ostringstream os;
        writeResultsJson(os, res);
        one = os.str();
    }
    {
        ScopedCkptDir dir("elfsim_sampling_jobs4");
        SweepRunner runner(4);
        const std::vector<RunResult> res = runner.run(grid);
        EXPECT_EQ(runner.failedCells(), 0u);
        std::ostringstream os;
        writeResultsJson(os, res);
        four = os.str();
    }
    EXPECT_EQ(one, four);
}

TEST(Sampling, SampledSweepReportsCkptStats)
{
    ScopedCkptDir dir("elfsim_sampling_sweepstats");
    Program a = microSequentialLoop(30, 16);
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::UElf,
                       sampledOpts(100000, 10000, 2500, 500)),
    };
    SweepRunner runner(1);
    runner.run(grid);
    EXPECT_GT(runner.ckptStats().saves, 0u);
    EXPECT_EQ(runner.ckptStats().hits, 0u);

    SweepRunner again(1);
    again.run(grid);
    EXPECT_GT(again.ckptStats().hits, 0u);
    EXPECT_EQ(again.ckptStats().saves, 0u);
}
