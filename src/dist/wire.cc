#include "dist/wire.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <sys/socket.h>

#include "common/error.hh"
#include "common/export.hh"
#include "common/fault.hh"
#include "common/json.hh"

namespace elfsim {
namespace dist {

namespace {

constexpr const char *kShardSchema = "elfsim-shard-v1";

} // namespace

std::string
writeShardRequest(const SweepSpec &spec,
                  const std::vector<std::size_t> &cells)
{
    // Assembled by hand so the spec document keeps its canonical
    // writeSweepSpec() serialization: workers memoize grid expansion
    // on the exact spec text, and every chunk of one sweep must hit
    // that memo.
    std::ostringstream os;
    os << "{\"schema\":\"" << kShardSchema << "\",\"cells\":[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os << ',';
        os << cells[i];
    }
    os << "],\"spec\":";
    writeSweepSpec(os, spec);
    os << "}";
    return os.str();
}

ShardRequest
parseShardRequest(std::string_view body)
{
    const json::Value doc = json::parse(body);
    if (doc.at("schema").asString() != kShardSchema)
        throw ParseError(errorf("unknown shard schema '%s'",
                                doc.at("schema").asString().c_str()));
    ShardRequest req;
    const json::Value &cells = doc.at("cells");
    req.cells.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        req.cells.push_back(std::size_t(cells[i].asU64()));
    req.spec = parseSweepSpec(doc.at("spec"));
    return req;
}

ShardLine
parseShardLine(const std::string &line)
{
    const json::Value doc = json::parse(line);
    ShardLine out;
    if (doc.find("manifest")) {
        if (doc.at("manifest").asString() != "elfsim-manifest-v1")
            throw ParseError("unknown manifest schema in shard stream");
        out.kind = ShardLine::Kind::Result;
        out.entry.index = std::size_t(doc.at("index").asU64());
        out.entry.key = doc.at("key").asString();
        out.entry.result = runResultFromJson(doc.at("result"));
        return out;
    }
    if (doc.at("shard").asString() != kShardSchema)
        throw ParseError("unknown shard-event schema");
    const std::string &event = doc.at("event").asString();
    if (event == "heartbeat") {
        out.kind = ShardLine::Kind::Heartbeat;
    } else if (event == "done") {
        out.kind = ShardLine::Kind::Done;
        out.cells = doc.at("cells").asU64();
    } else {
        throw ParseError(errorf("unknown shard event '%s'",
                                event.c_str()));
    }
    return out;
}

std::string
heartbeatLine()
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("shard", kShardSchema);
    w.field("event", "heartbeat");
    w.endObject();
    os << '\n';
    return os.str();
}

std::string
doneLine(std::uint64_t cells)
{
    std::ostringstream os;
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("shard", kShardSchema);
    w.field("event", "done");
    w.field("cells", cells);
    w.endObject();
    os << '\n';
    return os.str();
}

bool
ShardStream::fail(const char *why)
{
    bad = true;
    err = why;
    return false;
}

bool
ShardStream::fill()
{
    if (cutPending)
        return fail("connection closed mid-stream (injected cut)");
    // Compact the consumed prefix before growing the buffer.
    if (rawPos > 0) {
        raw.erase(0, rawPos);
        rawPos = 0;
    }
    char tmp[4096];
    for (;;) {
        const ssize_t r = ::recv(fd, tmp, sizeof tmp, 0);
        if (r < 0 && errno == EINTR)
            continue;
        if (r == 0)
            return fail("connection closed mid-stream");
        if (r < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return fail("receive timeout (lease expired)");
            return fail(std::strerror(errno));
        }
        std::size_t allow = std::size_t(r);
        if (worker != kNoWorker) {
            FaultInjector &inj = FaultInjector::instance();
            if (inj.armed())
                allow = inj.netTruncAllow(worker, rawSeen,
                                          std::size_t(r));
        }
        if (allow < std::size_t(r)) {
            // 'nettrunc' fired inside this read: deliver the prefix
            // up to the cut point, then fail the next refill as a
            // torn connection so a partial line can never parse.
            cutPending = true;
            if (allow == 0)
                return fail(
                    "connection closed mid-stream (injected cut)");
        }
        raw.append(tmp, allow);
        rawSeen += allow;
        return true;
    }
}

bool
ShardStream::nextLine(std::string &line)
{
    for (;;) {
        const std::size_t nl = out.find('\n');
        if (nl != std::string::npos) {
            // A complete line is a "droppable event" for the netdrop
            // / nethb sites: the Nth delivered line is torn away with
            // the rest of the stream, exercising the same recovery as
            // a real mid-stream disconnect or heartbeat silence.
            if (worker != kNoWorker) {
                FaultInjector &inj = FaultInjector::instance();
                if (inj.armed()) {
                    switch (inj.netEventFault(worker)) {
                      case NetEventFault::Drop:
                        return fail("connection closed mid-stream "
                                    "(injected)");
                      case NetEventFault::Timeout:
                        return fail("receive timeout (lease expired) "
                                    "(injected)");
                      case NetEventFault::None:
                        break;
                    }
                }
            }
            line = out.substr(0, nl);
            out.erase(0, nl + 1);
            return true;
        }
        if (final_ || bad)
            return false;

        // De-chunk whatever is buffered; fill when it runs dry.
        if (skipCrlf > 0) {
            const std::size_t n =
                std::min<std::size_t>(skipCrlf, raw.size() - rawPos);
            rawPos += n;
            skipCrlf -= unsigned(n);
            if (skipCrlf > 0) {
                if (!fill())
                    return false;
            }
            continue;
        }
        if (chunkLeft > 0) {
            const std::size_t avail = raw.size() - rawPos;
            if (avail == 0) {
                if (!fill())
                    return false;
                continue;
            }
            const std::size_t n = std::min(chunkLeft, avail);
            out.append(raw, rawPos, n);
            rawPos += n;
            chunkLeft -= n;
            if (chunkLeft == 0)
                skipCrlf = 2; // the chunk's trailing CRLF
            continue;
        }
        // At a chunk-size line ("<hex>\r\n").
        const std::size_t eol = raw.find("\r\n", rawPos);
        if (eol == std::string::npos) {
            if (raw.size() - rawPos > 64)
                return fail("malformed chunk-size line");
            if (!fill())
                return false;
            continue;
        }
        char *end = nullptr;
        const unsigned long long n =
            std::strtoull(raw.c_str() + rawPos, &end, 16);
        if (end == raw.c_str() + rawPos)
            return fail("malformed chunk size");
        rawPos = eol + 2;
        if (n == 0) {
            final_ = true; // terminator; trailers are ignored
            continue;
        }
        chunkLeft = std::size_t(n);
    }
}

} // namespace dist
} // namespace elfsim
