#include "cache/cache.hh"

#include "common/logging.hh"

namespace elfsim {

FixedLatencyMemory::FixedLatencyMemory(std::string name, Cycle latency)
    : memName(std::move(name)), latency(latency), statsGroup(memName),
      accessCount(statsGroup.addCounter("accesses", "total accesses"))
{
}

Cycle
FixedLatencyMemory::access(Addr, bool, Cycle, bool)
{
    ++accessCount;
    return latency;
}

Cache::Cache(const CacheParams &params, MemoryLevel *next)
    : params(params), nextLevel(next),
      numSets(params.sizeBytes / (params.lineBytes * params.assoc)),
      lines(numSets * params.assoc),
      statsGroup(params.name),
      hitCount(statsGroup.addCounter("hits", "ready-line hits")),
      missCount(statsGroup.addCounter("misses", "line fills required")),
      inflightHitCount(statsGroup.addCounter(
          "inflight_hits", "hits on lines still being filled")),
      prefetchCount(statsGroup.addCounter("prefetches",
                                          "prefetch fills issued")),
      prefetchUnusedDropCount(statsGroup.addCounter(
          "prefetch_drops", "prefetches to already-present lines"))
{
    ELFSIM_ASSERT(nextLevel != nullptr, "cache '%s' has no next level",
                  params.name.c_str());
    ELFSIM_ASSERT(numSets >= 1 &&
                      numSets * params.lineBytes * params.assoc ==
                          params.sizeBytes,
                  "cache '%s': size %llu not divisible by %u-way x %uB",
                  params.name.c_str(),
                  (unsigned long long)params.sizeBytes, params.assoc,
                  params.lineBytes);
    ELFSIM_ASSERT(params.interleaves >= 1, "need >= 1 interleave");

    if (params.lineBytes > 0 &&
        (params.lineBytes & (params.lineBytes - 1)) == 0) {
        lineShift = 0;
        while ((1u << lineShift) < params.lineBytes)
            ++lineShift;
    }
    if ((numSets & (numSets - 1)) == 0) {
        setMask = numSets - 1;
        setMaskValid = true;
    }
}

Cache::Line *
Cache::findLine(Addr line)
{
    const Addr set = setIndex(line);
    for (unsigned w = 0; w < params.assoc; ++w) {
        Line &l = lines[set * params.assoc + w];
        if (l.valid && l.tag == line)
            return &l;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line) const
{
    return const_cast<Cache *>(this)->findLine(line);
}

Cache::Line &
Cache::victim(Addr line)
{
    const Addr set = setIndex(line);
    Line *lru = &lines[set * params.assoc];
    for (unsigned w = 1; w < params.assoc; ++w) {
        Line &l = lines[set * params.assoc + w];
        if (!l.valid)
            return l;
        if (l.lastUse < lru->lastUse)
            lru = &l;
    }
    return *lru;
}

Cycle
Cache::access(Addr addr, bool write, Cycle now, bool is_prefetch)
{
    const Addr line = lineAddr(addr);
    ++useTick;

    if (Line *l = findLine(line)) {
        l->lastUse = useTick;
        if (l->readyCycle <= now) {
            ++hitCount;
            return params.hitLatency;
        }
        // Line is in flight (e.g. filled by a prefetch): wait for it.
        ++inflightHitCount;
        return (l->readyCycle - now) + params.hitLatency;
    }

    ++missCount;
    const Cycle below = nextLevel->access(addr, write, now, is_prefetch);
    Line &v = victim(line);
    v.valid = true;
    v.tag = line;
    v.lastUse = useTick;
    v.readyCycle = now + below;
    return below + params.hitLatency;
}

void
Cache::prefetch(Addr addr, Cycle now)
{
    const Addr line = lineAddr(addr);
    if (findLine(line)) {
        ++prefetchUnusedDropCount;
        return;
    }
    ++prefetchCount;
    const Cycle below = nextLevel->access(addr, false, now, true);
    ++useTick;
    Line &v = victim(line);
    v.valid = true;
    v.tag = line;
    v.lastUse = useTick;
    v.readyCycle = now + below;
}

bool
Cache::probe(Addr addr, Cycle now) const
{
    const Line *l = findLine(lineAddr(addr));
    return l != nullptr && l->readyCycle <= now;
}

bool
Cache::present(Addr addr) const
{
    return findLine(lineAddr(addr)) != nullptr;
}

void
Cache::invalidateAll()
{
    for (Line &l : lines)
        l = Line{};
}

namespace {

void
saveCounter(Serializer &s, const stats::Counter &c)
{
    s.u64(c.raw());
}

void
loadCounter(Deserializer &d, stats::Counter &c)
{
    c.reset();
    c += d.u64();
}

} // namespace

void
FixedLatencyMemory::saveState(Serializer &s) const
{
    saveCounter(s, accessCount);
}

void
FixedLatencyMemory::loadState(Deserializer &d)
{
    loadCounter(d, accessCount);
}

void
Cache::saveState(Serializer &s) const
{
    s.u64(lines.size());
    for (const Line &l : lines) {
        s.u64(l.tag);
        s.boolean(l.valid);
        s.u64(l.readyCycle);
        s.u64(l.lastUse);
    }
    s.u64(useTick);
    saveCounter(s, hitCount);
    saveCounter(s, missCount);
    saveCounter(s, inflightHitCount);
    saveCounter(s, prefetchCount);
    saveCounter(s, prefetchUnusedDropCount);
}

void
Cache::loadState(Deserializer &d)
{
    if (d.u64() != lines.size())
        throw ParseError("cache: geometry mismatch");
    for (Line &l : lines) {
        l.tag = d.u64();
        l.valid = d.boolean();
        l.readyCycle = d.u64();
        l.lastUse = d.u64();
    }
    useTick = d.u64();
    loadCounter(d, hitCount);
    loadCounter(d, missCount);
    loadCounter(d, inflightHitCount);
    loadCounter(d, prefetchCount);
    loadCounter(d, prefetchUnusedDropCount);
}

} // namespace elfsim
