#include "workload/checkpoint_store.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "workload/compiled_trace.hh"

namespace elfsim {

namespace {

constexpr char ckptMagic[16] = "elfsim-ckpt-v1"; // NUL-padded to 16

/** Fixed-size part of the file, through the checksum field. */
constexpr std::size_t headerBytes = 16 + 4 * 8;

/** Far above any real payload; caps corrupt length fields. */
constexpr std::uint64_t payloadCap = std::uint64_t(1) << 34;

std::uint64_t
contentChecksum(std::uint64_t key, std::uint64_t position,
                std::uint64_t payload_len, const void *payload)
{
    Fnv1a h;
    h.u64(key).u64(position).u64(payload_len);
    h.bytes(payload, std::size_t(payload_len));
    return h.value();
}

/** Keep artifact file names shell- and filesystem-friendly. */
std::string
sanitizedName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                        c == '.';
        out.push_back(ok ? c : '_');
    }
    return out.empty() ? std::string("ckpt") : out;
}

std::string
hexKey(std::uint64_t key)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[std::size_t(i)] = digits[key & 0xf];
        key >>= 4;
    }
    return out;
}

} // namespace

CheckpointStore::CheckpointStore()
{
    if (const char *env = std::getenv("ELFSIM_CKPT_CACHE")) {
        if (*env)
            dir = env;
    }
    if (const char *env = std::getenv("ELFSIM_CKPT")) {
        const std::string v = env;
        if (v == "0" || v == "off" || v == "false")
            on = false;
    }
}

CheckpointStore &
CheckpointStore::instance()
{
    static CheckpointStore store;
    return store;
}

std::uint64_t
CheckpointStore::key(const Program &prog, std::uint64_t config_fp,
                     InstCount sample_period, InstCount sample_length,
                     InstCount sample_warmup, InstCount position)
{
    Fnv1a h;
    h.str(ckptMagic); // format version participates in the key
    // Program *content* (count 0: the pure image/behaviour hash), so
    // identically-built programs share artifacts regardless of name.
    h.u64(CompiledTrace::key(prog, 0));
    h.u64(config_fp);
    // The warm state at a position depends on the entire earlier
    // execution schedule, which the sampling parameters determine.
    h.u64(sample_period).u64(sample_length).u64(sample_warmup);
    h.u64(position);
    return h.value();
}

std::string
CheckpointStore::pathForKey(const std::string &name,
                            std::uint64_t key) const
{
    return dir + "/" + sanitizedName(name) + "-" + hexKey(key) +
           ".eckpt";
}

std::string
CheckpointStore::filePath(const std::string &name,
                          std::uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mtx);
    if (dir.empty())
        return "";
    return pathForKey(name, key);
}

bool
CheckpointStore::usable() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return on && !dir.empty();
}

bool
CheckpointStore::load(const std::string &name, std::uint64_t key,
                      InstCount position,
                      std::vector<std::uint8_t> &payload)
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (!on || dir.empty())
            return false;
        path = pathForKey(name, key);
    }

    const auto miss = [&] {
        std::lock_guard<std::mutex> lock(mtx);
        ++counters.misses;
        return false;
    };
    const auto failure = [&](const char *what) {
        ELFSIM_WARN("checkpoint store: %s '%s'; falling back to "
                    "fast-forward", what, path.c_str());
        std::lock_guard<std::mutex> lock(mtx);
        ++counters.loadFailures;
        ++counters.misses;
        return false;
    };

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return miss(); // absent: the common cold-cache case

    if (FaultInjector::instance().shouldCorruptCkptRead())
        return failure("injected corruption reading");

    in.seekg(0, std::ios::end);
    const std::streamoff len = in.tellg();
    in.seekg(0, std::ios::beg);
    if (len < std::streamoff(headerBytes))
        return failure("truncated artifact");

    char magic[16];
    std::uint64_t scalars[4]; // key, position, payloadLen, checksum
    if (!in.read(magic, sizeof(magic)) ||
        !in.read(reinterpret_cast<char *>(scalars), sizeof(scalars)))
        return failure("unreadable artifact");
    if (std::memcmp(magic, ckptMagic, sizeof(magic)) != 0)
        return failure("bad magic in");
    if (scalars[0] != key)
        return failure("stale key in");
    if (scalars[1] != position)
        return failure("wrong position in");
    if (scalars[2] > payloadCap ||
        std::uint64_t(len) != headerBytes + scalars[2])
        return failure("size mismatch in");

    payload.resize(std::size_t(scalars[2]));
    if (!payload.empty() &&
        !in.read(reinterpret_cast<char *>(payload.data()),
                 std::streamsize(payload.size())))
        return failure("unreadable payload in");
    if (contentChecksum(scalars[0], scalars[1], scalars[2],
                        payload.data()) != scalars[3])
        return failure("checksum mismatch in");

    std::lock_guard<std::mutex> lock(mtx);
    ++counters.hits;
    counters.bytesRead += headerBytes + payload.size();
    return true;
}

void
CheckpointStore::save(const std::string &name, std::uint64_t key,
                      InstCount position,
                      const std::vector<std::uint8_t> &payload)
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (!on || dir.empty())
            return;
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        path = pathForKey(name, key);
    }

    // Write to a private temp file and rename into place: readers of
    // a shared cache directory only ever see complete files.
    const std::string tmp =
        path + ".tmp." +
        std::to_string(std::uint64_t(
            std::hash<std::thread::id>{}(std::this_thread::get_id())));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            ELFSIM_WARN("checkpoint store: cannot open '%s' for "
                        "writing (artifact not saved)", tmp.c_str());
            return;
        }
        const std::uint64_t scalars[4] = {
            key, position, payload.size(),
            contentChecksum(key, position, payload.size(),
                            payload.data())};
        os.write(ckptMagic, sizeof(ckptMagic));
        os.write(reinterpret_cast<const char *>(scalars),
                 sizeof(scalars));
        if (!payload.empty())
            os.write(reinterpret_cast<const char *>(payload.data()),
                     std::streamsize(payload.size()));
        if (!os) {
            ELFSIM_WARN("checkpoint store: write to '%s' failed "
                        "(artifact not saved)", tmp.c_str());
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        ELFSIM_WARN("checkpoint store: cannot rename '%s' into '%s' "
                    "(artifact not saved)", tmp.c_str(), path.c_str());
        return;
    }

    std::lock_guard<std::mutex> lock(mtx);
    ++counters.saves;
    counters.bytesWritten += headerBytes + payload.size();
}

void
CheckpointStore::setDirectory(std::string d)
{
    std::lock_guard<std::mutex> lock(mtx);
    dir = std::move(d);
}

std::string
CheckpointStore::directory() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return dir;
}

void
CheckpointStore::setEnabled(bool enable)
{
    std::lock_guard<std::mutex> lock(mtx);
    on = enable;
}

bool
CheckpointStore::enabled() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return on;
}

CkptStats
CheckpointStore::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return counters;
}

void
CheckpointStore::clearStats()
{
    std::lock_guard<std::mutex> lock(mtx);
    counters = CkptStats{};
}

} // namespace elfsim
