/**
 * @file
 * Global history register and folded-history helpers for TAGE-style
 * predictors.
 */

#ifndef ELFSIM_COMMON_HISTORY_HH
#define ELFSIM_COMMON_HISTORY_HH

#include <cstdint>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"

namespace elfsim {

/**
 * A long global branch history register stored as a shift register of
 * bits, with O(1) speculative update and pointer-based checkpointing.
 *
 * The history is stored in a circular bit buffer; a "pointer" marks the
 * position of the youngest bit. Checkpointing the predictor state is
 * then just saving the pointer (plus folded-history snapshots), which
 * mirrors the "pointer to Global History Register bit" checkpoint
 * payload mentioned in the paper (Section IV-D).
 */
class GlobalHistory
{
  public:
    explicit GlobalHistory(unsigned length)
        : len(length)
    {
        ELFSIM_ASSERT(length > 0, "history length must be non-zero");
        // Power-of-two storage so the hot push/bitAt paths are a
        // masked add instead of an integer divide.
        unsigned cap = 1;
        while (cap < length)
            cap <<= 1;
        mask = cap - 1;
        bits.assign(cap, 0);
    }

    /** Shift in a new youngest bit. */
    void
    push(bool taken)
    {
        ptr = (ptr + 1) & mask;
        bits[ptr] = taken ? 1 : 0;
    }

    /** Bit i positions back from the youngest (0 = youngest). */
    bool
    bitAt(unsigned i) const
    {
        ELFSIM_ASSERT(i < len, "history index out of range");
        return bits[(ptr - i) & mask] != 0;
    }

    /** Current youngest-bit pointer (checkpoint payload). */
    unsigned pointer() const { return ptr; }

    /**
     * Restore the pointer to a checkpointed position. Bits younger
     * than the checkpoint are simply abandoned; the underlying storage
     * still holds the correct older bits because pushes only overwrite
     * the slot at the new pointer.
     */
    void restore(unsigned p) { ptr = p & mask; }

    unsigned length() const { return len; }

    /** Serialize the full bit buffer and pointer (warm-state
     *  checkpoints need the bits, not just the pointer). */
    template <class S>
    void
    saveState(S &s) const
    {
        s.u32(ptr);
        s.u64(bits.size());
        for (std::uint8_t b : bits)
            s.u8(b);
    }

    template <class D>
    void
    loadState(D &d)
    {
        ptr = d.u32() & mask;
        std::uint64_t n = d.u64();
        if (n != bits.size())
            throw ParseError("checkpoint: history geometry mismatch");
        for (auto &b : bits)
            b = d.u8();
    }

  private:
    std::vector<std::uint8_t> bits;
    unsigned len;
    unsigned mask = 0;
    unsigned ptr = 0;
};

/**
 * Folded history: compresses the most recent @a origLen history bits
 * into @a foldedLen bits by XOR-folding, maintained incrementally as
 * bits are pushed/retired. Used to form TAGE indices and tags cheaply.
 */
class FoldedHistory
{
  public:
    FoldedHistory() = default;

    FoldedHistory(unsigned orig_len, unsigned folded_len)
        : origLen(orig_len), foldedLen(folded_len),
          outPoint(orig_len % folded_len)
    {
        ELFSIM_ASSERT(folded_len > 0 && folded_len <= 32,
                      "bad folded length");
    }

    /**
     * Incorporate the new youngest bit and expire the bit that just
     * fell off the end of the original-length window.
     *
     * @param new_bit The bit shifted into the global history.
     * @param old_bit The bit at distance origLen before this push.
     */
    void
    update(bool new_bit, bool old_bit)
    {
        comp = (comp << 1) | (new_bit ? 1u : 0u);
        comp ^= (old_bit ? 1u : 0u) << outPoint;
        comp ^= comp >> foldedLen;
        comp &= (1u << foldedLen) - 1;
    }

    /** Current folded value. */
    std::uint32_t value() const { return comp; }

    /** Restore from a checkpoint. */
    void restore(std::uint32_t v) { comp = v & ((1u << foldedLen) - 1); }

    unsigned originalLength() const { return origLen; }
    unsigned foldedLength() const { return foldedLen; }

  private:
    unsigned origLen = 0;
    unsigned foldedLen = 1;
    unsigned outPoint = 0;
    std::uint32_t comp = 0;
};

} // namespace elfsim

#endif // ELFSIM_COMMON_HISTORY_HH
