/**
 * @file
 * elfsimd sweep-service tests: request/stream framing, byte identity
 * of streamed results against an in-process SweepRunner, concurrent
 * clients sharing the warm trace cache, thread-count independence,
 * malformed-request rejection, client-disconnect survival, and fault
 * injection flowing through the daemon's keep-going policy.
 *
 * Every test binds an ephemeral loopback port (ServiceConfig.port=0),
 * so tests never collide with each other or a real daemon.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/json.hh"
#include "service/daemon.hh"
#include "service/http.hh"
#include "sim/export.hh"
#include "sim/sweep_spec.hh"

using namespace elfsim;
using service::HttpResponse;
using service::ServiceConfig;
using service::SweepService;

namespace {

/** A fast four-cell sweep: two micro-programs x two frontends. */
SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.name = "svc_test";
    spec.run.warmupInsts = 2000;
    spec.run.measureInsts = 4000;
    SweepGroup g;
    g.workloads = {
        WorkloadSelector::micro("random_branch_loop", {8, 0.5}),
        WorkloadSelector::micro("random_branch_loop", {4, 0.9}),
    };
    g.configs = {ConfigSpec(FrontendVariant::Dcf),
                 ConfigSpec(FrontendVariant::UElf)};
    spec.groups.push_back(std::move(g));
    return spec;
}

std::string
specBody(const SweepSpec &spec)
{
    std::ostringstream os;
    writeSweepSpec(os, spec);
    return os.str();
}

/** The bytes a CLI run of @a spec would export. */
std::string
referenceBytes(const SweepSpec &spec)
{
    const ExpandedSweep ex = expandSweep(spec);
    SweepRunner runner(1);
    runner.setPolicy(spec.policy);
    runner.setBaseSeed(spec.baseSeed);
    const std::vector<RunResult> res = runner.run(ex.jobs);
    std::ostringstream os;
    writeResultsJson(os, res);
    return os.str();
}

/** Arm the process-wide injector for one test, disarm on exit. */
class ArmedFaults
{
  public:
    explicit ArmedFaults(const std::string &spec)
    {
        FaultInjector::instance().arm(FaultInjector::parse(spec));
    }
    ~ArmedFaults() { FaultInjector::instance().disarm(); }
};

} // namespace

TEST(Service, HealthzAndUnknownPath)
{
    SweepService svc;
    svc.start();
    const HttpResponse hz = service::httpFetch(
        "127.0.0.1", svc.port(), "GET", "/healthz", {});
    EXPECT_EQ(hz.status, 200);
    EXPECT_EQ(hz.body, "ok\n");

    const HttpResponse nf = service::httpFetch(
        "127.0.0.1", svc.port(), "GET", "/nope", {});
    EXPECT_EQ(nf.status, 404);
    svc.stop();
}

TEST(Service, SweepStreamsByteIdenticalResults)
{
    const SweepSpec spec = tinySpec();
    const std::string expected = referenceBytes(spec);

    SweepService svc;
    svc.start();
    const HttpResponse r = service::httpFetch(
        "127.0.0.1", svc.port(), "POST", "/sweep", specBody(spec));
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, expected);

    // The streamed document is itself a valid elfsim-results-v2.
    const json::Value doc = json::parse(r.body);
    EXPECT_EQ(doc.at("schema").asString(), "elfsim-results-v2");
    EXPECT_EQ(doc.at("results").size(), 4u);
    svc.stop();
}

TEST(Service, ThreadCountDoesNotChangeTheBytes)
{
    const SweepSpec spec = tinySpec();
    std::string bytes[2];
    for (unsigned i = 0; i < 2; ++i) {
        ServiceConfig cfg;
        cfg.jobs = i == 0 ? 1 : 4;
        SweepService svc(cfg);
        svc.start();
        const HttpResponse r =
            service::httpFetch("127.0.0.1", svc.port(), "POST",
                               "/sweep", specBody(spec));
        EXPECT_EQ(r.status, 200);
        bytes[i] = r.body;
        svc.stop();
    }
    EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(Service, ConcurrentClientsShareTheWarmCaches)
{
    const SweepSpec spec = tinySpec();
    const std::string expected = referenceBytes(spec);
    const std::string body = specBody(spec);

    SweepService svc;
    svc.start();
    std::atomic<unsigned> bad{0};
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < 4; ++c)
        clients.emplace_back([&] {
            try {
                const HttpResponse r =
                    service::httpFetch("127.0.0.1", svc.port(),
                                       "POST", "/sweep", body);
                if (r.status != 200 || r.body != expected)
                    ++bad;
            } catch (const SimError &) {
                ++bad;
            }
        });
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(bad.load(), 0u);

    // Identical requests serialized through one runner: every sweep
    // after the first recompiles nothing. The sweeps counter is
    // incremented just after the last response byte goes out, so
    // poll briefly instead of racing it.
    std::uint64_t sweepsSeen = 0, traceHits = 0;
    for (int tries = 0; tries < 100; ++tries) {
        const HttpResponse st = service::httpFetch(
            "127.0.0.1", svc.port(), "GET", "/stats", {});
        ASSERT_EQ(st.status, 200);
        const json::Value doc = json::parse(st.body);
        EXPECT_EQ(doc.at("schema").asString(), "elfsimd-stats-v1");
        sweepsSeen = doc.at("service").at("service.sweeps").asU64();
        traceHits = doc.at("trace").at("trace.cache_hits").asU64();
        if (sweepsSeen >= 4)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_GE(sweepsSeen, 4u);
    EXPECT_GT(traceHits, 0u);
    svc.stop();
}

TEST(Service, MalformedRequestsGet400)
{
    SweepService svc;
    svc.start();

    const HttpResponse junk = service::httpFetch(
        "127.0.0.1", svc.port(), "POST", "/sweep", "not json");
    EXPECT_EQ(junk.status, 400);

    const HttpResponse badField = service::httpFetch(
        "127.0.0.1", svc.port(), "POST", "/sweep",
        "{\"schema\":\"elfsim-sweepspec-v1\",\"wrkloads\":[]}");
    EXPECT_EQ(badField.status, 400);

    const HttpResponse badWorkload = service::httpFetch(
        "127.0.0.1", svc.port(), "POST", "/sweep",
        "{\"schema\":\"elfsim-sweepspec-v1\","
        "\"workloads\":[{\"name\":\"no.such\"}],"
        "\"configs\":[{\"variant\":\"DCF\"}]}");
    EXPECT_EQ(badWorkload.status, 400);

    // The daemon is still perfectly serviceable afterwards.
    const SweepSpec spec = tinySpec();
    const HttpResponse ok = service::httpFetch(
        "127.0.0.1", svc.port(), "POST", "/sweep", specBody(spec));
    EXPECT_EQ(ok.status, 200);
    EXPECT_EQ(ok.body, referenceBytes(spec));
    svc.stop();
}

TEST(Service, ClientDisconnectDoesNotKillTheDaemon)
{
    const SweepSpec spec = tinySpec();
    const std::string body = specBody(spec);

    SweepService svc;
    svc.start();

    // Submit a sweep and hang up without reading the response.
    {
        const int fd = service::connectTcp("127.0.0.1", svc.port());
        std::ostringstream req;
        req << "POST /sweep HTTP/1.1\r\ncontent-length: "
            << body.size() << "\r\n\r\n"
            << body;
        ASSERT_TRUE(service::writeAll(fd, req.str()));
        ::close(fd);
    }

    // The next client still gets full, correct service.
    const HttpResponse r = service::httpFetch(
        "127.0.0.1", svc.port(), "POST", "/sweep", body);
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, referenceBytes(spec));

    const HttpResponse hz = service::httpFetch(
        "127.0.0.1", svc.port(), "GET", "/healthz", {});
    EXPECT_EQ(hz.status, 200);
    svc.stop();
}

TEST(Service, StatsExposeQueueDepthThroughputAndFleetCounters)
{
    SweepService svc;
    svc.start();

    const HttpResponse r = service::httpFetch(
        "127.0.0.1", svc.port(), "POST", "/sweep",
        specBody(tinySpec()));
    ASSERT_EQ(r.status, 200);

    // The sweep counters land just after the last response byte goes
    // out; poll briefly instead of racing them.
    json::Value doc;
    for (int tries = 0; tries < 100; ++tries) {
        const HttpResponse st = service::httpFetch(
            "127.0.0.1", svc.port(), "GET", "/stats", {});
        ASSERT_EQ(st.status, 200);
        doc = json::parse(st.body);
        if (doc.at("service").at("service.sweeps").asU64() >= 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const json::Value &service = doc.at("service");
    EXPECT_EQ(service.at("service.sweeps").asU64(), 1u);

    // Scheduling observability: an idle daemon reports an empty
    // queue and no in-flight cells, and the last finished sweep's
    // cell throughput is a positive rate.
    EXPECT_EQ(service.at("service.queue_depth").asU64(), 0u);
    EXPECT_EQ(service.at("service.inflight_cells").asU64(), 0u);
    EXPECT_GT(service.at("service.cells_per_sec").asDouble(), 0.0);

    // The distributed-fleet counters exist (and stay zero) on a
    // plain, non-worker daemon.
    EXPECT_EQ(service.at("service.shards").asU64(), 0u);
    EXPECT_EQ(service.at("service.artifacts").asU64(), 0u);
    svc.stop();
}

TEST(Service, InjectedFaultFlowsThroughKeepGoingPolicy)
{
    // Job 0 of every sweep throws; the spec's keep-going policy turns
    // that into one failed cell in an otherwise complete stream.
    ArmedFaults armed("throw:0:0");

    SweepSpec spec = tinySpec();
    spec.policy.keepGoing = true;

    SweepService svc;
    svc.start();
    const HttpResponse r = service::httpFetch(
        "127.0.0.1", svc.port(), "POST", "/sweep", specBody(spec));
    EXPECT_EQ(r.status, 200);

    const json::Value doc = json::parse(r.body);
    ASSERT_EQ(doc.at("results").size(), 4u);
    EXPECT_EQ(doc.at("results")[0].at("status").asString(),
              jobStatusName(JobStatus::Failed));
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_EQ(doc.at("results")[i].at("status").asString(),
                  jobStatusName(JobStatus::Ok));
    svc.stop();
}

TEST(Service, StrictPolicyCannotKillTheDaemon)
{
    // A request is free to ask for keep_going=false, but the daemon
    // must force keep-going: in strict mode the failing cell's
    // exception would escape the executor thread and terminate the
    // process (and cancellation would never be observed).
    ArmedFaults armed("throw:0:0");

    SweepSpec spec = tinySpec();
    spec.policy.keepGoing = false;

    SweepService svc;
    svc.start();
    const HttpResponse r = service::httpFetch(
        "127.0.0.1", svc.port(), "POST", "/sweep", specBody(spec));
    EXPECT_EQ(r.status, 200);

    const json::Value doc = json::parse(r.body);
    ASSERT_EQ(doc.at("results").size(), 4u);
    EXPECT_EQ(doc.at("results")[0].at("status").asString(),
              jobStatusName(JobStatus::Failed));

    const HttpResponse hz = service::httpFetch(
        "127.0.0.1", svc.port(), "GET", "/healthz", {});
    EXPECT_EQ(hz.status, 200);
    svc.stop();
}

TEST(Service, HalfClosedClientStillGetsTheStream)
{
    // Request/response idiom: send the request, shutdown(SHUT_WR) to
    // mark end-of-request, then read the whole response. The daemon
    // must not mistake the FIN for an abandoned client.
    const SweepSpec spec = tinySpec();
    const std::string body = specBody(spec);
    const std::string expected = referenceBytes(spec);

    SweepService svc;
    svc.start();

    const int fd = service::connectTcp("127.0.0.1", svc.port());
    std::ostringstream req;
    req << "POST /sweep HTTP/1.1\r\ncontent-length: " << body.size()
        << "\r\n\r\n"
        << body;
    ASSERT_TRUE(service::writeAll(fd, req.str()));
    ::shutdown(fd, SHUT_WR);

    const HttpResponse r = service::readHttpResponse(fd);
    ::close(fd);
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, expected);
    svc.stop();
}

TEST(Service, StopWhileIdleIsClean)
{
    SweepService svc;
    svc.start();
    svc.stop();
    svc.stop(); // idempotent
}
