#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "sim/export.hh"

namespace elfsim {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Monotonic milliseconds (watchdog bookkeeping). */
std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// Process-wide interrupt flag, set by the signal handler and polled
// by the watchdog monitor — async-signal-safe by construction.
std::atomic<int> interruptFlag{0};
std::atomic<bool> handlersInstalled{false};

void
interruptHandler(int sig)
{
    interruptFlag.store(sig, std::memory_order_relaxed);
}

/**
 * Per-job watchdog state. `control` and `phase`/`startMs` are shared
 * between the worker running the job and the monitor thread; seenBeat
 * / seenBeatMs are the monitor's private stall-detection memory.
 * Phases: 0 = pending, 1 = running, 2 = done.
 */
struct JobWatch
{
    JobControl control;
    std::atomic<int> phase{0};
    std::atomic<std::int64_t> startMs{0};

    std::uint64_t seenBeat = 0;
    std::int64_t seenBeatMs = 0;
};

/** Zeroed result recording a cell that did not complete ok. */
RunResult
degradedResult(const SweepJob &job, JobStatus status,
               const std::string &what, std::uint64_t attempts)
{
    RunResult r;
    r.workload = job.program->name();
    r.variant = variantName(job.cfg.variant);
    r.status = status;
    r.error = what;
    r.attempts = attempts;
    return r;
}

} // namespace

SweepJob
makeVariantJob(const Program &prog, FrontendVariant variant,
               const RunOptions &opts)
{
    SweepJob j;
    j.program = &prog;
    j.cfg = makeConfig(variant);
    j.opts = opts;
    return j;
}

unsigned
SweepRunner::resolveJobs(unsigned requested)
{
    if (requested)
        return requested;
    if (const char *env = std::getenv("ELFSIM_JOBS")) {
        const unsigned long n = std::strtoul(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
    }
    return ThreadPool::hardwareThreads();
}

SweepRunner::SweepRunner(unsigned threads)
    : threads(resolveJobs(threads))
{
}

void
SweepRunner::installSignalHandlers()
{
    std::signal(SIGINT, interruptHandler);
    std::signal(SIGTERM, interruptHandler);
    handlersInstalled.store(true);
}

bool
SweepRunner::interruptRequested()
{
    return interruptFlag.load(std::memory_order_relaxed) != 0;
}

void
SweepRunner::clearInterrupt()
{
    interruptFlag.store(0, std::memory_order_relaxed);
}

std::string
SweepRunner::jobKey(const SweepJob &job, std::size_t i) const
{
    return sweepJobKey(job, i, baseSeed);
}

std::string
sweepJobKey(const SweepJob &job, std::size_t i, std::uint64_t base_seed)
{
    const std::uint64_t seed =
        base_seed ? mix64(base_seed, i + 1) : job.cfg.rngSeed;
    std::string k = job.program->name();
    k += '|';
    k += variantName(job.cfg.variant);
    k += "|w" + std::to_string(job.opts.warmupInsts);
    k += "|m" + std::to_string(job.opts.measureInsts);
    k += "|i" + std::to_string(job.opts.intervalInsts);
    // Sampling schedule is part of a cell's identity: a sampled and a
    // full run of the same grid slot must never share manifest cells.
    if (job.opts.sampled()) {
        k += "|p" + std::to_string(job.opts.samplePeriodInsts);
        k += "|l" + std::to_string(job.opts.sampleLengthInsts);
        k += "|u" + std::to_string(job.opts.sampleWarmupInsts);
    }
    k += "|s" + std::to_string(seed);
    return k;
}

std::size_t
SweepRunner::failedCells() const
{
    std::size_t n = 0;
    for (const RunResult &r : lastResults)
        if (!r.ok())
            ++n;
    return n;
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepJob> &grid)
{
    return runSubset(grid, nullptr);
}

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepJob> &grid,
                 const std::vector<std::size_t> &only)
{
    return runSubset(grid, &only);
}

std::vector<RunResult>
SweepRunner::runSubset(const std::vector<SweepJob> &grid,
                       const std::vector<std::size_t> *only)
{
    std::vector<RunResult> results(grid.size());
    jobSeconds.assign(grid.size(), 0.0);

    // Completion observer: serialized, fired once per finished cell
    // (including resume-adopted cells) in completion order.
    std::mutex observerMtx;
    auto notify = [&](std::size_t i) {
        if (!cellObserver)
            return;
        std::lock_guard<std::mutex> lk(observerMtx);
        cellObserver(i, results[i]);
    };

    // Resume: adopt ok cells journaled by a previous (killed) run.
    // Identity check is index + jobKey, so a manifest from a
    // different grid or seed silently re-runs everything it cannot
    // vouch for.
    // Subset runs (a distributed shard) mark every unselected cell
    // done up front: global indices — and therefore seeds and
    // jobKeys — are preserved, but only the selected cells run.
    std::vector<char> done(grid.size(), only ? 1 : 0);
    std::size_t selected = grid.size();
    if (only) {
        selected = 0;
        for (std::size_t i : *only) {
            if (i < grid.size() && done[i]) {
                done[i] = 0;
                ++selected;
            }
        }
    }
    if (pol.resume && !pol.manifestPath.empty()) {
        std::ifstream in(pol.manifestPath);
        if (!in) {
            ELFSIM_WARN("resume: cannot read manifest '%s'; "
                        "running the full grid",
                        pol.manifestPath.c_str());
        } else {
            std::size_t reused = 0;
            for (ManifestEntry &e : readManifest(in)) {
                if (e.index >= grid.size())
                    continue;
                if (only && done[e.index])
                    continue; // not this shard's cell
                if (e.key != jobKey(grid[e.index], e.index)) {
                    ELFSIM_WARN(
                        "resume: manifest cell %zu key mismatch "
                        "(stale manifest?); re-running it",
                        e.index);
                    continue;
                }
                if (e.result.status != JobStatus::Ok)
                    continue;
                results[e.index] = std::move(e.result);
                done[e.index] = 1;
                notify(e.index);
                ++reused;
            }
            ELFSIM_INFORM("resume: reusing %zu of %zu cells from '%s'",
                          reused, grid.size(),
                          pol.manifestPath.c_str());
        }
    }

    std::ofstream manifest;
    std::mutex manifestMtx;
    if (!pol.manifestPath.empty()) {
        manifest.open(pol.manifestPath, pol.resume ? std::ios::app
                                                   : std::ios::trunc);
        if (!manifest)
            throw IoError(errorf("cannot open manifest '%s' for writing",
                                 pol.manifestPath.c_str()));
    }

    // Journal a finished cell; one flushed line per cell bounds the
    // loss of a crash to the cells in flight at that instant.
    auto journal = [&](std::size_t i) {
        if (!manifest.is_open())
            return;
        std::lock_guard<std::mutex> lk(manifestMtx);
        writeManifestLine(manifest,
                          ManifestEntry{i, jobKey(grid[i], i), results[i]});
        manifest.flush();
    };

    // deque: JobWatch holds atomics and must never move.
    std::deque<JobWatch> watches(grid.size());

    // Precompile: acquire each pending cell's compiled trace before
    // any per-job timer starts. The TraceCache memoizes by content,
    // so a grid of V variants over W workloads compiles (or loads)
    // exactly W traces and every cell shares them read-only; the
    // compilation cost never lands in jobSeconds. Null entries (cache
    // disabled) leave those cells on the lazy reference path.
    const TraceStats traceStart = TraceCache::instance().stats();
    const CkptStats ckptStart = CheckpointStore::instance().stats();
    const WarmStats warmStart = processWarmStats();
    std::vector<std::shared_ptr<const CompiledTrace>> traces(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (done[i] || !grid[i].program)
            continue;
        // Sampled cells compile a capped prefix: the batch warming
        // kernel fast-forwards over the compiled SoA, so the prefix
        // that covers warmup+measure (bounded by maxSampledTraceInsts
        // to keep the artifact finite) pays for itself many times
        // over. Anything past the cap degrades to the scalar path.
        const InstCount want =
            grid[i].opts.sampled()
                ? std::min(grid[i].opts.warmupInsts +
                               grid[i].opts.measureInsts,
                           maxSampledTraceInsts)
                : grid[i].opts.warmupInsts + grid[i].opts.measureInsts;
        traces[i] = grid[i].opts.trace
                        ? grid[i].opts.trace
                        : TraceCache::instance().acquire(
                              *grid[i].program, want);
    }

    const auto sweepStart = std::chrono::steady_clock::now();

    auto runOne = [&](std::size_t i) {
        JobWatch &watch = watches[i];

        if (!pol.keepGoing) {
            // Legacy strict mode: errors escape, panics abort. The
            // exec context still goes up (control-less) so injected
            // faults fire here too.
            SweepJob job = grid[i];
            job.opts.trace = traces[i];
            if (baseSeed)
                job.cfg.rngSeed = mix64(baseSeed, i + 1);
            ExecContext ctx;
            ctx.jobIndex = i;
            ScopedExecContext scope(ctx);
            const auto jobStart = std::chrono::steady_clock::now();
            results[i] = runSimulation(*job.program, job.cfg, job.opts);
            jobSeconds[i] += secondsSince(jobStart);
            watch.phase.store(2, std::memory_order_release);
            journal(i);
            notify(i);
            return;
        }

        if (interruptRequested() || pol.cancelRequested()) {
            results[i] = degradedResult(
                grid[i], JobStatus::Cancelled,
                "sweep interrupted before job started", 0);
            watch.phase.store(2, std::memory_order_release);
            journal(i);
            notify(i);
            return;
        }

        for (std::uint64_t attempt = 1;; ++attempt) {
            SweepJob job = grid[i];
            job.opts.trace = traces[i];
            if (baseSeed)
                job.cfg.rngSeed = mix64(baseSeed, i + 1);

            watch.control.reset();
            watch.startMs.store(nowMs(), std::memory_order_release);
            watch.phase.store(1, std::memory_order_release);

            ExecContext ctx;
            ctx.jobIndex = i;
            ctx.attempt = static_cast<unsigned>(attempt);
            ctx.control = &watch.control;

            const auto jobStart = std::chrono::steady_clock::now();
            try {
                ScopedRecoverableErrors recover;
                ScopedExecContext scope(ctx);
                RunResult r = runSimulation(*job.program, job.cfg,
                                            job.opts);
                jobSeconds[i] += secondsSince(jobStart);
                r.attempts = attempt;
                results[i] = std::move(r);
            } catch (const SimError &e) {
                jobSeconds[i] += secondsSince(jobStart);
                if (e.retryable() && attempt <= pol.maxRetries) {
                    ELFSIM_WARN("job %zu attempt %llu failed "
                                "transiently: %s (retrying)",
                                i, static_cast<unsigned long long>(
                                       attempt),
                                e.what());
                    continue;
                }
                results[i] = degradedResult(
                    grid[i], jobStatusForError(e), e.what(), attempt);
            } catch (const std::exception &e) {
                jobSeconds[i] += secondsSince(jobStart);
                results[i] = degradedResult(grid[i], JobStatus::Failed,
                                            e.what(), attempt);
            }
            break;
        }
        watch.phase.store(2, std::memory_order_release);
        journal(i);
        notify(i);
    };

    // Watchdog monitor: one background thread scanning every running
    // job's control block. The hot simulation loop only ever reads an
    // atomic flag; all clock arithmetic lives here.
    std::atomic<bool> stopMonitor{false};
    std::thread monitor;
    const bool needMonitor =
        pol.keepGoing && (pol.watchdogEnabled() ||
                          handlersInstalled.load() ||
                          pol.cancelFlag != nullptr);
    if (needMonitor) {
        monitor = std::thread([&] {
            while (!stopMonitor.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                const bool interrupted =
                    interruptRequested() || pol.cancelRequested();
                const std::int64_t now = nowMs();
                for (std::size_t i = 0; i < watches.size(); ++i) {
                    JobWatch &w = watches[i];
                    if (w.phase.load(std::memory_order_acquire) != 1)
                        continue;
                    if (interrupted)
                        w.control.requestCancel(
                            CancelReason::Interrupted);
                    const std::int64_t start =
                        w.startMs.load(std::memory_order_acquire);
                    const std::uint64_t beat =
                        w.control.heartbeat.load(
                            std::memory_order_relaxed);
                    if (beat != w.seenBeat) {
                        w.seenBeat = beat;
                        w.seenBeatMs = now;
                    }
                    if (pol.deadlineSeconds > 0 &&
                        double(now - start) / 1e3 > pol.deadlineSeconds)
                        w.control.requestCancel(CancelReason::Deadline);
                    if (pol.stallSeconds > 0) {
                        const std::int64_t alive =
                            std::max(w.seenBeatMs, start);
                        if (double(now - alive) / 1e3 > pol.stallSeconds)
                            w.control.requestCancel(
                                CancelReason::Stalled);
                    }
                }
            }
        });
    }

    try {
        if (threads <= 1 || grid.size() <= 1) {
            for (std::size_t i = 0; i < grid.size(); ++i)
                if (!done[i])
                    runOne(i);
        } else {
            ThreadPool pool(threads);
            for (std::size_t i = 0; i < grid.size(); ++i)
                if (!done[i])
                    pool.submit([&runOne, i] { runOne(i); });
            pool.wait();
        }
    } catch (...) {
        stopMonitor.store(true, std::memory_order_release);
        if (monitor.joinable())
            monitor.join();
        throw;
    }
    stopMonitor.store(true, std::memory_order_release);
    if (monitor.joinable())
        monitor.join();

    lastTraceStats = TraceCache::instance().stats().delta(traceStart);
    lastCkptStats = CheckpointStore::instance().stats().delta(ckptStart);
    lastWarmStats = processWarmStats().delta(warmStart);

    lastTiming = SweepTiming{};
    lastTiming.jobs = static_cast<unsigned>(only ? selected : grid.size());
    lastTiming.threads = threads;
    lastTiming.wallSeconds = secondsSince(sweepStart);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        lastTiming.serialSeconds += jobSeconds[i];
        lastTiming.simCycles += results[i].cycles;
        lastTiming.simInsts += results[i].insts;
    }
    lastResults = results;
    return results;
}

namespace {

std::ofstream
openOrDie(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        throw IoError(
            errorf("cannot open '%s' for writing", path.c_str()));
    return os;
}

} // namespace

void
SweepRunner::writeJson(const std::string &path) const
{
    std::ofstream os = openOrDie(path);
    writeSweepJson(os, lastResults, &lastTiming, &lastTraceStats);
}

void
SweepRunner::writeCsv(const std::string &path) const
{
    std::ofstream os = openOrDie(path);
    writeResultsCsv(os, lastResults);

    bool anyTimeline = false;
    for (const RunResult &r : lastResults)
        anyTimeline = anyTimeline || !r.timeline.empty();
    if (!anyTimeline)
        return;

    std::string tpath = path;
    const std::string suffix = ".csv";
    if (tpath.size() >= suffix.size() &&
        tpath.compare(tpath.size() - suffix.size(), suffix.size(),
                      suffix) == 0) {
        tpath.resize(tpath.size() - suffix.size());
    }
    tpath += ".timeline.csv";
    std::ofstream ts = openOrDie(tpath);
    writeTimelineCsv(ts, lastResults);
}

void
SweepRunner::printTimingSummary(std::ostream &os) const
{
    const SweepTiming &t = lastTiming;
    stats::StatGroup g("sweep");
    g.addCounter("jobs", "grid cells simulated") += t.jobs;
    g.addCounter("threads", "worker threads") += t.threads;
    g.addCounter("failed_cells", "cells that did not complete ok") +=
        failedCells();
    g.addFormula("wall_seconds", "whole-sweep wall-clock",
                 [&t] { return t.wallSeconds; });
    g.addFormula("serial_seconds", "sum of per-job wall-clocks",
                 [&t] { return t.serialSeconds; });
    g.addFormula("speedup", "serial_seconds / wall_seconds",
                 [&t] { return t.speedup(); });
    g.addCounter("sim_cycles", "aggregate measured cycles") +=
        t.simCycles;
    g.addCounter("sim_insts", "aggregate measured instructions") +=
        t.simInsts;
    g.addFormula("sim_cycles_per_second",
                 "simulated cycles per wall-clock second",
                 [&t] { return t.cyclesPerSecond(); });
    stats::Distribution &d =
        g.addDistribution("job_seconds", "per-job wall-clock");
    for (double s : jobSeconds)
        d.sample(s);
    g.dump(os);

    const TraceStats &tr = lastTraceStats;
    stats::StatGroup tg("trace");
    tg.addCounter("compiles", "traces built from the generator") +=
        tr.compiles;
    tg.addCounter("cache_hits", "memo or on-disk artifact reuse") +=
        tr.cacheHits;
    tg.addCounter("cache_misses", "acquisitions that had to compile") +=
        tr.cacheMisses;
    tg.addCounter("bytes_mapped", "trace file bytes mapped from disk") +=
        tr.bytesMapped;
    tg.addFormula("compile_seconds", "wall-clock spent compiling",
                  [&tr] { return tr.compileSeconds; });
    tg.dump(os);

    const CkptStats &ck = lastCkptStats;
    stats::StatGroup cg("ckpt");
    cg.addCounter("hits", "warm-state checkpoints restored") +=
        ck.hits;
    cg.addCounter("misses", "lookups that fast-forwarded instead") +=
        ck.misses;
    cg.addCounter("saves", "checkpoint artifacts written") += ck.saves;
    cg.addCounter("load_failures",
                  "corrupt/stale artifacts skipped") += ck.loadFailures;
    cg.addCounter("bytes_read", "artifact bytes restored") +=
        ck.bytesRead;
    cg.addCounter("bytes_written", "artifact bytes persisted") +=
        ck.bytesWritten;
    cg.dump(os);

    const WarmStats &w = lastWarmStats;
    stats::StatGroup wg("warm");
    wg.addCounter("kernel_insts",
                  "insts fast-forwarded by the batch kernel") +=
        w.kernelInsts;
    wg.addCounter("scalar_insts",
                  "insts fast-forwarded by the scalar loop") +=
        w.scalarInsts;
    wg.addCounter("branch_events", "branch events the kernel replayed") +=
        w.branchEvents;
    wg.addCounter("lines_touched", "I-side line fetches the kernel issued") +=
        w.linesTouched;
    wg.addFormula("kernel_seconds", "wall-clock inside the batch kernel",
                  [&w] { return w.kernelSeconds; });
    wg.dump(os);
}

} // namespace elfsim
