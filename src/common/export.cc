#include "common/export.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace elfsim {

std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

void
JsonWriter::indent()
{
    for (std::size_t i = 0; i < stack.size(); ++i)
        out << "  ";
}

void
JsonWriter::sep()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (stack.empty())
        return;
    if (!stack.back().first)
        out << ",";
    stack.back().first = false;
    if (pretty) {
        out << "\n";
        indent();
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    sep();
    out << "{";
    stack.push_back({true});
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    sep();
    out << "[";
    stack.push_back({true});
    return *this;
}

void
JsonWriter::close(char c)
{
    const bool empty = stack.back().first;
    stack.pop_back();
    if (!empty && pretty) {
        out << "\n";
        indent();
    }
    out << c;
    if (stack.empty() && pretty)
        out << "\n";
}

JsonWriter &
JsonWriter::endObject()
{
    close('}');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    close(']');
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    if (!stack.back().first)
        out << ",";
    stack.back().first = false;
    if (pretty) {
        out << "\n";
        indent();
    }
    writeString(k);
    out << (pretty ? ": " : ":");
    afterKey = true;
    return *this;
}

void
JsonWriter::writeString(std::string_view s)
{
    out << '"';
    for (const char c : s) {
        switch (c) {
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\n': out << "\\n"; break;
          case '\t': out << "\\t"; break;
          case '\r': out << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    sep();
    writeString(v);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    sep();
    out << formatDouble(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    sep();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    sep();
    out << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    sep();
    out << "null";
    return *this;
}

CsvWriter &
CsvWriter::cell(std::string_view v)
{
    if (!firstCell)
        out << ",";
    firstCell = false;
    if (v.find_first_of(",\"\n\r") != std::string_view::npos) {
        out << '"';
        for (const char c : v) {
            if (c == '"')
                out << '"';
            out << c;
        }
        out << '"';
    } else {
        out << v;
    }
    return *this;
}

CsvWriter &
CsvWriter::cell(double v)
{
    if (!firstCell)
        out << ",";
    firstCell = false;
    out << formatDouble(v);
    return *this;
}

CsvWriter &
CsvWriter::cell(std::uint64_t v)
{
    if (!firstCell)
        out << ",";
    firstCell = false;
    out << v;
    return *this;
}

void
CsvWriter::endRow()
{
    out << "\n";
    firstCell = true;
}

namespace stats {

void
writeJson(JsonWriter &w, const StatGroup &g)
{
    w.beginObject();
    g.forEach([&w](const Stat &s) {
        if (s.kind() == StatKind::Distribution) {
            const auto &d = static_cast<const Distribution &>(s);
            w.key(s.name());
            w.beginObject();
            w.field("mean", d.mean());
            w.field("samples", d.samples());
            w.field("sum", d.total());
            w.field("min", d.minimum());
            w.field("max", d.maximum());
            w.endObject();
        } else {
            w.field(s.name(), s.value());
        }
    });
    w.endObject();
}

void
writeCsv(CsvWriter &w, const StatGroup &g)
{
    g.forEach([&w](const Stat &s) {
        const char *kind = s.kind() == StatKind::Counter ? "counter"
                           : s.kind() == StatKind::Distribution
                               ? "distribution"
                               : "formula";
        w.cell(s.name()).cell(kind).cell(s.value());
        if (s.kind() == StatKind::Distribution) {
            const auto &d = static_cast<const Distribution &>(s);
            w.cell(d.samples()).cell(d.total()).cell(d.minimum())
                .cell(d.maximum());
        }
        w.endRow();
    });
}

} // namespace stats
} // namespace elfsim
