#include "common/error.hh"

#include <cstdarg>
#include <cstdio>

namespace elfsim {

const char *
errorKindName(ErrorKind k)
{
    switch (k) {
      case ErrorKind::Config: return "config";
      case ErrorKind::Io: return "io";
      case ErrorKind::Parse: return "parse";
      case ErrorKind::Internal: return "internal";
      case ErrorKind::Timeout: return "timeout";
      case ErrorKind::Cancelled: return "cancelled";
      case ErrorKind::Transient: return "transient";
      case ErrorKind::Injected: return "injected";
    }
    return "unknown";
}

std::string
errorf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (n > 0) {
        out.resize(std::size_t(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(std::size_t(n));
    }
    va_end(args);
    return out;
}

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Failed: return "failed";
      case JobStatus::Timeout: return "timeout";
      case JobStatus::Cancelled: return "cancelled";
    }
    return "unknown";
}

bool
parseJobStatus(std::string_view name, JobStatus &out)
{
    for (JobStatus s : {JobStatus::Ok, JobStatus::Failed,
                        JobStatus::Timeout, JobStatus::Cancelled}) {
        if (name == jobStatusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

JobStatus
jobStatusForError(const SimError &e)
{
    switch (e.kind()) {
      case ErrorKind::Timeout:
        return JobStatus::Timeout;
      case ErrorKind::Cancelled:
        return JobStatus::Cancelled;
      default:
        return JobStatus::Failed;
    }
}

} // namespace elfsim
