/**
 * @file
 * Process-wide cache of compiled architectural traces.
 *
 * The TraceCache is the sharing point of the trace-compilation layer:
 * every consumer that wants a workload's compiled stream asks it, and
 * each distinct (program content, instruction count) pair is compiled
 * at most once per process — the in-memory memo hands the same
 * immutable CompiledTrace to every sweep cell and every bench.
 *
 * With a cache directory configured (--trace-cache DIR on the benches,
 * $ELFSIM_TRACE_CACHE, or TraceCache::setDirectory), traces also
 * persist across processes as content-keyed "elfsim-trace-v2" files:
 * the first process of a campaign compiles and saves, the rest map the
 * file read-only. Staleness and corruption are detected by the file's
 * key and checksum; any load failure logs a warning and falls back to
 * recompiling, so a poisoned cache can slow a run down but never fail
 * it (the 'tracecache' fault-injection site tests exactly this).
 *
 * Tracing defaults to ON (in-memory memoization only). Set
 * $ELFSIM_TRACE=0 (or 'off') or call setEnabled(false) to force every
 * stream back to lazy per-instruction generation — the reference path
 * the compiled stream is tested against.
 */

#ifndef ELFSIM_WORKLOAD_TRACE_CACHE_HH
#define ELFSIM_WORKLOAD_TRACE_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "workload/compiled_trace.hh"
#include "workload/program.hh"

namespace elfsim {

/** Monotonic counters of trace-compilation activity (additive). */
struct TraceStats
{
    std::uint64_t compiles = 0;    ///< traces built from the generator
    std::uint64_t cacheHits = 0;   ///< memo or on-disk artifact reuse
    std::uint64_t cacheMisses = 0; ///< acquisitions that had to compile
    std::uint64_t bytesMapped = 0; ///< file bytes mapped from disk
    double compileSeconds = 0.0;   ///< wall-clock spent compiling

    /** Counters accumulated since the @a since snapshot. */
    TraceStats
    delta(const TraceStats &since) const
    {
        TraceStats d;
        d.compiles = compiles - since.compiles;
        d.cacheHits = cacheHits - since.cacheHits;
        d.cacheMisses = cacheMisses - since.cacheMisses;
        d.bytesMapped = bytesMapped - since.bytesMapped;
        d.compileSeconds = compileSeconds - since.compileSeconds;
        return d;
    }
};

/** Process-wide compiled-trace provider (see file comment). */
class TraceCache
{
  public:
    /** The process-wide cache, configured from $ELFSIM_TRACE_CACHE
     *  (directory) and $ELFSIM_TRACE (0/off disables) on first use. */
    static TraceCache &instance();

    /**
     * The compiled trace for the first @a count instructions of
     * @a prog: memoized, loaded from the cache directory, or compiled
     * (and saved back, best-effort) — in that order. Returns null when
     * trace compilation is disabled. Thread-safe; concurrent callers
     * asking for the same content get the same object.
     */
    std::shared_ptr<const CompiledTrace>
    acquire(const Program &prog, InstCount count);

    /**
     * Memoize an externally supplied trace under its own content key
     * (the distributed worker's install path: the coordinator ships a
     * validated elfsim-trace-v2 image, and every later acquire() of
     * the same content becomes a memo hit instead of a compile). An
     * existing memo entry for the key is kept — the contents are
     * identical by construction. No counters change: installs are
     * neither hits nor compiles.
     */
    void install(std::shared_ptr<const CompiledTrace> trace);

    /** Set (or clear, with "") the on-disk cache directory. */
    void setDirectory(std::string dir);
    std::string directory() const;

    /** Globally enable/disable trace compilation. */
    void setEnabled(bool on);
    bool enabled() const;

    /**
     * Cache-file path @a prog/@a count would use, empty when no
     * directory is configured (tests poison this file to exercise the
     * corrupt-artifact recovery path).
     */
    std::string filePath(const Program &prog, InstCount count) const;

    /** Snapshot of the activity counters. */
    TraceStats stats() const;

    /** Drop memoized traces and zero the counters (tests). Does not
     *  touch the on-disk artifacts. */
    void clearMemory();

  private:
    /** Reads $ELFSIM_TRACE_CACHE / $ELFSIM_TRACE (see instance()). */
    TraceCache();

    std::string pathForKey(const std::string &name,
                           std::uint64_t key) const;

    mutable std::mutex mtx;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const CompiledTrace>> memo;
    std::string dir;
    bool on = true;
    TraceStats counters;
};

} // namespace elfsim

#endif // ELFSIM_WORKLOAD_TRACE_CACHE_HH
