/**
 * @file
 * Small vector with inline storage, built for the per-cycle scratch
 * buffers of the tick loop (decode/fetch bundles). The first N
 * elements live inside the object; growing past N spills to a heap
 * block that is *retained* across clear(), so a buffer reused every
 * cycle performs no steady-state allocation regardless of how wide a
 * bundle ever got.
 */

#ifndef ELFSIM_COMMON_INLINE_VEC_HH
#define ELFSIM_COMMON_INLINE_VEC_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace elfsim {

/** Fixed-inline-capacity growable vector (see file comment). */
template <typename T, std::size_t N>
class InlineVec
{
    static_assert(N > 0, "inline capacity must be non-zero");

  public:
    InlineVec() = default;

    InlineVec(const InlineVec &) = delete;
    InlineVec &operator=(const InlineVec &) = delete;

    ~InlineVec()
    {
        destroyAll();
        if (elems != inlinePtr())
            ::operator delete(elems, std::align_val_t{alignof(T)});
    }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return cap; }

    T *begin() { return elems; }
    T *end() { return elems + count; }
    const T *begin() const { return elems; }
    const T *end() const { return elems + count; }
    T *data() { return elems; }
    const T *data() const { return elems; }

    T &
    operator[](std::size_t i)
    {
        ELFSIM_ASSERT(i < count, "InlineVec index out of range");
        return elems[i];
    }
    const T &
    operator[](std::size_t i) const
    {
        ELFSIM_ASSERT(i < count, "InlineVec index out of range");
        return elems[i];
    }

    T &front() { return (*this)[0]; }
    T &back() { return (*this)[count - 1]; }
    const T &front() const { return (*this)[0]; }
    const T &back() const { return (*this)[count - 1]; }

    /** Destroy all elements; spill capacity is kept for reuse. */
    void
    clear()
    {
        destroyAll();
        count = 0;
    }

    /** Ensure capacity for at least @a n elements. */
    void
    reserve(std::size_t n)
    {
        if (n > cap)
            grow(n);
    }

    void
    push_back(const T &v)
    {
        emplace_back(v);
    }

    void
    push_back(T &&v)
    {
        emplace_back(std::move(v));
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (count == cap)
            grow(cap * 2);
        T *p = ::new (static_cast<void *>(elems + count))
            T(std::forward<Args>(args)...);
        ++count;
        return *p;
    }

    void
    pop_back()
    {
        ELFSIM_ASSERT(count > 0, "pop_back on empty InlineVec");
        --count;
        elems[count].~T();
    }

  private:
    T *inlinePtr() { return reinterpret_cast<T *>(inlineStorage); }

    void
    destroyAll()
    {
        if constexpr (!std::is_trivially_destructible_v<T>) {
            for (std::size_t i = 0; i < count; ++i)
                elems[i].~T();
        }
    }

    void
    grow(std::size_t newCap)
    {
        if (newCap < cap * 2)
            newCap = cap * 2;
        T *fresh = static_cast<T *>(
            ::operator new(newCap * sizeof(T), std::align_val_t{alignof(T)}));
        for (std::size_t i = 0; i < count; ++i) {
            ::new (static_cast<void *>(fresh + i)) T(std::move(elems[i]));
            elems[i].~T();
        }
        if (elems != inlinePtr())
            ::operator delete(elems, std::align_val_t{alignof(T)});
        elems = fresh;
        cap = newCap;
    }

    alignas(T) unsigned char inlineStorage[N * sizeof(T)];
    T *elems = inlinePtr();
    std::size_t cap = N;
    std::size_t count = 0;
};

} // namespace elfsim

#endif // ELFSIM_COMMON_INLINE_VEC_HH
