/**
 * @file
 * Per-job cancellation plumbing and the deterministic fault-injection
 * harness that drives the sweep engine's recovery tests.
 *
 * JobControl is the shared control block between a sweep worker and
 * the watchdog monitor: the worker publishes a committed-instruction
 * heartbeat from the Core::run poll point; the monitor (or a SIGINT
 * handler path) raises the cooperative cancellation flag with a
 * reason, and the worker notices at its next poll and unwinds with a
 * typed error. ExecContext carries the block (plus the job's identity)
 * through a thread-local so the core's hot loop needs no new
 * parameters — a run outside any sweep has a null context and pays
 * nothing.
 *
 * FaultInjector is armed from the environment:
 *
 *   ELFSIM_FAULT=<site>:<job>:<tick>[,<site>:<job>:<tick>...]
 *
 * where <site> names the fault to raise when job <job> (submission
 * index, or '*' for every job) reaches simulated cycle <tick> at a
 * poll point:
 *
 *   throw      raise InjectedError (cell -> failed)
 *   panic      trip ELFSIM_PANIC (exercises the recoverable-panic
 *              path; cell -> failed)
 *   transient  raise TransientError on the first attempt only
 *              (cell -> ok after one retry when retries are enabled)
 *   hang       stop committing and spin until the watchdog cancels
 *              (cell -> timeout; requires --stall or --deadline)
 *   slow       sleep 1 ms at every subsequent poll (cell -> timeout
 *              when a deadline is set, otherwise just slow)
 *   tracecache corrupt compiled-trace cache reads: the TraceCache
 *              behaves as if every matching on-disk artifact failed
 *              its checksum, forcing the transparent recompile path
 *              (cell -> ok, just slower; proves a poisoned cache can
 *              never fail a cell). The <tick> field is ignored —
 *              cache loads happen before simulated time starts.
 *   ckptcache  corrupt warm-state checkpoint reads: the
 *              CheckpointStore behaves as if every matching artifact
 *              failed its checksum, forcing the transparent
 *              fast-forward fallback (cell -> ok, just slower). The
 *              <tick> field is ignored, like tracecache.
 *
 * Injection is deterministic: it keys on simulated cycles and the
 * job's submission index, never on wall-clock or thread identity.
 */

#ifndef ELFSIM_COMMON_FAULT_HH
#define ELFSIM_COMMON_FAULT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace elfsim {

/** Why a job was asked to stop (JobControl::reason). */
enum class CancelReason : int
{
    None = 0,
    Deadline,    ///< per-job wall-clock deadline exceeded
    Stalled,     ///< committed-instruction heartbeat stopped advancing
    Interrupted, ///< global interrupt (SIGINT/SIGTERM)
};

/** Shared control block between one sweep job and the watchdog. */
struct JobControl
{
    std::atomic<bool> cancel{false};
    std::atomic<int> reason{int(CancelReason::None)};
    /** Committed instructions, published from the core's poll point. */
    std::atomic<std::uint64_t> heartbeat{0};

    /** First reason wins; later requests keep the original cause. */
    void
    requestCancel(CancelReason r)
    {
        int expected = int(CancelReason::None);
        reason.compare_exchange_strong(expected, int(r));
        cancel.store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return cancel.load(std::memory_order_acquire);
    }

    CancelReason
    cancelReason() const
    {
        return CancelReason(reason.load());
    }

    /** Reset for a fresh attempt (bounded retries). */
    void
    reset()
    {
        cancel.store(false);
        reason.store(int(CancelReason::None));
        heartbeat.store(0);
    }
};

/**
 * Identity and control of the sweep job running on this thread.
 * Installed via ScopedExecContext around runSimulation; Core::run
 * polls it periodically (heartbeat, cancellation, fault injection).
 */
struct ExecContext
{
    std::size_t jobIndex = 0;
    unsigned attempt = 1; ///< 1-based; retries increment
    JobControl *control = nullptr;

    /**
     * Called from the core's run loop every few thousand cycles:
     * publishes the heartbeat, honors cancellation (throws
     * TimeoutError / CancelledError), and gives the fault injector
     * its deterministic hook. @a committed is the core's committed
     * instruction count, @a tick its cycle count.
     */
    void poll(std::uint64_t tick, std::uint64_t committed);
};

/** The context installed on this thread, or nullptr outside sweeps. */
ExecContext *currentExecContext();

/** RAII installer for the thread-local ExecContext. */
class ScopedExecContext
{
  public:
    explicit ScopedExecContext(ExecContext &ctx);
    ~ScopedExecContext();
    ScopedExecContext(const ScopedExecContext &) = delete;
    ScopedExecContext &operator=(const ScopedExecContext &) = delete;

  private:
    ExecContext *prev;
};

/** What an armed fault does when it fires. */
enum class FaultKind
{
    Throw,
    Panic,
    Transient,
    Hang,
    Slow,
    TraceCache,
    CkptCache
};

/** One armed fault: fire @a kind in job @a job at cycle @a tick. */
struct FaultSpec
{
    FaultKind kind = FaultKind::Throw;
    std::size_t job = 0;
    bool anyJob = false; ///< spec used '*' for the job field
    std::uint64_t tick = 0;
};

/** Deterministic fault-injection harness (see file comment). */
class FaultInjector
{
  public:
    /** Process-wide injector, armed from $ELFSIM_FAULT on first use
     *  (a malformed spec is a fatal user error). */
    static FaultInjector &instance();

    /** Parse a spec string; throws ConfigError on malformed input. */
    static std::vector<FaultSpec> parse(const std::string &spec);

    /** Replace the armed faults (tests; not thread-safe vs poll). */
    void arm(std::vector<FaultSpec> specs);

    /** Drop every armed fault and its fired state. */
    void disarm() { arm({}); }

    bool armed() const { return !armedFaults.empty(); }

    /** Deterministic hook called from ExecContext::poll. */
    void poll(const ExecContext &ctx, std::uint64_t tick);

    /**
     * Hook for the TraceCache's disk-read path: true when a
     * 'tracecache' fault is armed for the job on this thread (or for
     * every job, or when no job context is installed — precompilation
     * runs before any job starts). The tick field is ignored; see the
     * file comment.
     */
    bool shouldCorruptTraceRead() const;

    /** Same hook for the CheckpointStore's disk-read path ('ckptcache'
     *  faults; identical matching rules). */
    bool shouldCorruptCkptRead() const;

  private:
    FaultInjector() = default;

    /**
     * Firing is stateless: throw/panic/transient end the attempt the
     * moment they fire, hang blocks until cancelled and then ends the
     * attempt, and slow deliberately re-fires at every poll. Matching
     * keys only on (job index, attempt, simulated cycle), so the
     * armed list is read-only after arm().
     */
    void fire(const FaultSpec &s, const ExecContext &ctx);

    std::vector<FaultSpec> armedFaults;
};

} // namespace elfsim

#endif // ELFSIM_COMMON_FAULT_HH
