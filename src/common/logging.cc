#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace elfsim {

namespace {

void
vreport(const char *prefix, const char *file, int line, const char *fmt,
        va_list args)
{
    std::fflush(stdout);
    if (file)
        std::fprintf(stderr, "%s: %s:%d: ", prefix, file, line);
    else
        std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", file, line, fmt, args);
    va_end(args);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", nullptr, 0, fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", nullptr, 0, fmt, args);
    va_end(args);
}

} // namespace elfsim
