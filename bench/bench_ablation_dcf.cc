/**
 * @file
 * Ablation study of the decoupled fetcher itself — quantifying the
 * trade-offs the paper's introduction describes:
 *
 *  1. Decoupling depth (BP1->FE): deeper pipelines expose more flush
 *     latency (the cost ELF exists to hide).
 *  2. The L0 BTB: without it every taken branch pays the BP2 resteer
 *     bubble even in steady state.
 *  3. FAQ-directed instruction prefetch: the mechanism behind the
 *     paper's "server 1 improves 40% with DCF".
 *  4. FAQ depth: how much run-ahead the prefetcher and bubble-hiding
 *     can exploit.
 *
 * Run on the high-MPKI MCTS proxy (flush-sensitive) and the server-1
 * proxy (footprint-sensitive).
 */

#include <deque>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace elfsim;

namespace {

struct Row
{
    std::string label;
    SimConfig cfg;
};

/** Baseline first; every other row prints relative to it. */
std::vector<Row>
studyRows()
{
    const SimConfig base = makeConfig(FrontendVariant::Dcf);
    std::vector<Row> rows;
    rows.push_back({"baseline (Table II DCF)", base});
    for (Cycle depth : {Cycle(0), Cycle(1), Cycle(5), Cycle(8)}) {
        SimConfig c = base;
        c.bp1ToFe = depth;
        rows.push_back({"BP1->FE depth = " + std::to_string(depth) +
                            " cycles",
                        c});
    }
    {
        SimConfig c = base;
        c.btb.l0.entries = 1; // effectively no L0 BTB
        c.btb.l0.assoc = 0;
        rows.push_back({"no L0 BTB (every taken pays BP2 bubble)", c});
    }
    {
        SimConfig c = base;
        c.btb.l0.entries = 96;
        c.btb.l0.assoc = 0;
        rows.push_back({"4x L0 BTB (96 entries)", c});
    }
    {
        SimConfig c = base;
        c.maxInstPrefetch = 0; // FAQ-directed prefetch off
        rows.push_back({"no FAQ-directed I-prefetch", c});
    }
    {
        SimConfig c = base;
        c.faqEntries = 4;
        rows.push_back({"shallow FAQ (4 entries)", c});
    }
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner("Ablations — decoupled fetcher design choices",
                  "DCF IPC relative to the Table II baseline");

    // One grid covers both studies so the pool stays saturated.
    const char *workloads[] = {"641.leela", "srv1.subtest_1"};
    const std::vector<Row> rows = studyRows();

    std::deque<Program> programs;
    std::vector<SweepJob> grid;
    for (const char *name : workloads) {
        programs.push_back(buildWorkload(*findWorkload(name)));
        for (const Row &row : rows) {
            SweepJob j;
            j.program = &programs.back();
            j.cfg = row.cfg;
            j.opts = opt.runOptions();
            grid.push_back(j);
        }
    }

    SweepRunner runner(opt.jobs);
    bench::applyFaultPolicy(runner, opt);
    const std::vector<RunResult> res = runner.run(grid);

    for (std::size_t s = 0; s < std::size(workloads); ++s) {
        const std::size_t first = s * rows.size();
        const double baseIpc = res[first].ipc;
        std::printf("\n[%s]  baseline DCF IPC %.3f\n", workloads[s],
                    baseIpc);
        std::printf("  %-42s %10s\n", "configuration", "rel. IPC");
        for (std::size_t i = 1; i < rows.size(); ++i)
            std::printf("  %-42s %10.3f\n", rows[i].label.c_str(),
                        res[first + i].ipc / baseIpc);
    }

    std::printf("\nreading guide: the BP1->FE sweep is the cost ELF "
                "hides; the no-prefetch row is\nthe paper's server-1 "
                "'DCF +40%%' mechanism; the no-L0-BTB row is the "
                "steady-state\ntaken-branch bubble the decoupled L0 "
                "BTB removes.\n");
    bench::exportResults(opt, runner);
    bench::printSweepTiming(runner);
    return bench::exitCode(runner);
}
