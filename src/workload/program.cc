#include "workload/program.hh"

#include "common/logging.hh"
#include "workload/program_builder.hh"

namespace elfsim {

ProgramBuilder::SymBlock &
ProgramBuilder::current()
{
    ELFSIM_ASSERT(blockOpen && !blocks.empty(),
                  "no open block; call beginBlock() first");
    return blocks.back();
}

std::uint32_t
ProgramBuilder::beginBlock()
{
    ELFSIM_ASSERT(!blockOpen, "previous block not terminated");
    blocks.emplace_back();
    blockOpen = true;
    return static_cast<std::uint32_t>(blocks.size() - 1);
}

void
ProgramBuilder::addOp(InstClass cls, RegIndex dst, RegIndex src0,
                      RegIndex src1)
{
    ELFSIM_ASSERT(cls != InstClass::Branch && cls != InstClass::Load &&
                      cls != InstClass::Store,
                  "use the dedicated add/end methods for this class");
    current().body.push_back(SymInst{cls, dst, src0, src1, false, {}});
}

void
ProgramBuilder::addLoad(const MemSpec &spec, RegIndex dst,
                        RegIndex addr_src)
{
    current().body.push_back(
        SymInst{InstClass::Load, dst, addr_src, numArchRegs, true, spec});
}

void
ProgramBuilder::addStore(const MemSpec &spec, RegIndex data_src,
                         RegIndex addr_src)
{
    current().body.push_back(SymInst{InstClass::Store, numArchRegs,
                                     data_src, addr_src, true, spec});
}

void
ProgramBuilder::addFiller(unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        const RegIndex dst = static_cast<RegIndex>(i % 24);
        const RegIndex src = static_cast<RegIndex>((i + 7) % 24);
        addOp(InstClass::IntAlu, dst, src);
    }
}

void
ProgramBuilder::endBlock(TermKind kind)
{
    SymBlock &b = current();
    b.term = kind;
    blockOpen = false;
}

void
ProgramBuilder::endCond(const CondSpec &spec, std::uint32_t target_block)
{
    current().cond = spec;
    current().targets = {target_block};
    endBlock(TermKind::Cond);
}

void
ProgramBuilder::endJump(std::uint32_t target_block)
{
    current().targets = {target_block};
    endBlock(TermKind::Jump);
}

void
ProgramBuilder::endCall(std::uint32_t target_block)
{
    current().targets = {target_block};
    endBlock(TermKind::Call);
}

void
ProgramBuilder::endIndirectJump(const IndirectSpec &proto,
                                std::vector<std::uint32_t> target_blocks)
{
    ELFSIM_ASSERT(!target_blocks.empty(), "indirect jump with no targets");
    current().indirect = proto;
    current().targets = std::move(target_blocks);
    endBlock(TermKind::IndJump);
}

void
ProgramBuilder::endIndirectCall(const IndirectSpec &proto,
                                std::vector<std::uint32_t> target_blocks)
{
    ELFSIM_ASSERT(!target_blocks.empty(), "indirect call with no targets");
    current().indirect = proto;
    current().targets = std::move(target_blocks);
    endBlock(TermKind::IndCall);
}

void
ProgramBuilder::endReturn()
{
    endBlock(TermKind::Return);
}

void
ProgramBuilder::endFallthrough()
{
    endBlock(TermKind::Fallthrough);
}

InstCount
ProgramBuilder::instCount() const
{
    InstCount n = 0;
    for (const SymBlock &b : blocks) {
        n += b.body.size();
        if (b.term != TermKind::Open && b.term != TermKind::Fallthrough)
            ++n;
    }
    return n;
}

Program
ProgramBuilder::finalize(std::string name, std::uint32_t entry_block)
{
    ELFSIM_ASSERT(!blockOpen, "finalize with an open block");
    ELFSIM_ASSERT(entry_block < blocks.size(), "bad entry block");

    // Pass 1: compute block start indices (instruction granularity).
    std::vector<std::uint32_t> blockStart(blocks.size());
    std::uint32_t idx = 0;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        blockStart[i] = idx;
        idx += static_cast<std::uint32_t>(blocks[i].body.size());
        if (blocks[i].term != TermKind::Fallthrough)
            ++idx; // terminator branch instruction
    }
    const std::uint32_t total = idx;

    auto block_pc = [&](std::uint32_t b) {
        ELFSIM_ASSERT(b < blocks.size(), "terminator references block %u "
                      "but only %zu blocks exist", b, blocks.size());
        return base + instsToBytes(blockStart[b]);
    };

    Program prog;
    prog.base = base;
    prog.progName = std::move(name);
    prog.entry = block_pc(entry_block);
    prog.image.reserve(total);
    prog.blockTable.reserve(blocks.size());

    // Pass 2: emit instructions and register behaviours.
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
        const SymBlock &b = blocks[bi];
        BlockInfo info;
        info.firstInst = blockStart[bi];

        for (const SymInst &s : b.body) {
            StaticInst inst;
            inst.pc = base + instsToBytes(prog.image.size());
            inst.cls = s.cls;
            inst.destReg = s.dst;
            inst.srcRegs = {s.src0, s.src1};
            inst.blockIndex = static_cast<std::uint32_t>(bi);
            if (s.hasMem)
                inst.behavior = prog.behaviorSet.addMem(s.mem);
            prog.image.push_back(inst);
        }

        if (b.term != TermKind::Fallthrough) {
            StaticInst inst;
            inst.pc = base + instsToBytes(prog.image.size());
            inst.cls = InstClass::Branch;
            inst.blockIndex = static_cast<std::uint32_t>(bi);
            switch (b.term) {
              case TermKind::Cond:
                inst.branch = BranchKind::CondDirect;
                inst.directTarget = block_pc(b.targets[0]);
                inst.behavior = prog.behaviorSet.addCond(b.cond);
                break;
              case TermKind::Jump:
                inst.branch = BranchKind::UncondDirect;
                inst.directTarget = block_pc(b.targets[0]);
                break;
              case TermKind::Call:
                inst.branch = BranchKind::DirectCall;
                inst.directTarget = block_pc(b.targets[0]);
                break;
              case TermKind::IndJump:
              case TermKind::IndCall: {
                inst.branch = b.term == TermKind::IndJump
                                  ? BranchKind::IndirectJump
                                  : BranchKind::IndirectCall;
                IndirectSpec spec = b.indirect;
                spec.targets.clear();
                for (std::uint32_t t : b.targets)
                    spec.targets.push_back(block_pc(t));
                inst.behavior = prog.behaviorSet.addIndirect(spec);
                break;
              }
              case TermKind::Return:
                inst.branch = BranchKind::Return;
                break;
              default:
                ELFSIM_PANIC("unterminated block %zu", bi);
            }
            prog.image.push_back(inst);
        }

        info.numInsts = static_cast<std::uint32_t>(
            prog.image.size() - info.firstInst);
        prog.blockTable.push_back(info);
    }

    ELFSIM_ASSERT(prog.image.size() == total, "layout size mismatch");
    return prog;
}

} // namespace elfsim
