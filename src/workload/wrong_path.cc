#include "workload/wrong_path.hh"

namespace elfsim {

const StaticInst *
WrongPathWalker::instAt(Addr pc)
{
    if (pc % instBytes != 0)
        return nullptr;
    if (const StaticInst *si = prog.instAt(pc))
        return si;
    auto it = fabricated.find(pc);
    if (it == fabricated.end()) {
        StaticInst nop;
        nop.pc = pc;
        nop.cls = InstClass::Nop;
        it = fabricated.emplace(pc, nop).first;
    }
    return &it->second;
}

Addr
WrongPathWalker::wrongPathMemAddr(const StaticInst &si, SeqNum salt) const
{
    if (!si.isMemInst() || si.behavior == noBehavior)
        return invalidAddr;
    return prog.behaviors().mem(si.behavior).wrongPathAddress(salt);
}

} // namespace elfsim
