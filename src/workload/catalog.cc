#include "workload/catalog.hh"

#include <algorithm>

namespace elfsim {

namespace {

/**
 * Baseline integer-code parameter set; entries tweak from here.
 *
 * Calibration notes: ELF targets front-end-bound behaviour, so the
 * INT proxies keep their data mostly cache-resident (the branch
 * misprediction penalty is then exposed rather than hidden behind
 * memory stalls). Branch MPKI is set by the fraction and bias of
 * data-dependent (TakenProb) conditionals plus the patterned minority
 * rate; patterns are biased ~75-85% taken like real conditionals.
 */
CfgParams
intBase()
{
    CfgParams p;
    p.numFuncs = 24;
    p.blocksPerFunc = 10;
    p.instsPerBlockMin = 4;
    p.instsPerBlockMax = 12;
    p.fracLoopBranches = 0.45;
    p.fracPatternBranches = 0.40;
    p.patternBias = 0.80;
    p.randomTakenProb = 0.30;
    p.callBlockProb = 0.15;
    p.indirectCallFrac = 0.05;
    p.callSkew = 0.6;
    p.loadFrac = 0.22;
    p.storeFrac = 0.10;
    p.dataFootprint = 192ull << 10; // mostly L2-resident
    p.streamFrac = 0.6;
    return p;
}

/** Baseline FP-code parameter set: loopy, predictable, few calls. */
CfgParams
fpBase()
{
    CfgParams p;
    p.numFuncs = 12;
    p.blocksPerFunc = 6;
    p.instsPerBlockMin = 10;
    p.instsPerBlockMax = 24;
    p.fracLoopBranches = 0.8;
    p.fracPatternBranches = 0.15;
    p.patternBias = 0.85;
    p.loopPeriodMin = 16;
    p.loopPeriodMax = 128;
    p.callBlockProb = 0.06;
    p.indirectCallFrac = 0.0;
    p.loadFrac = 0.28;
    p.storeFrac = 0.12;
    p.fpFrac = 0.30;
    p.dataFootprint = 8ull << 20; // streaming through L3
    p.streamFrac = 0.9;
    return p;
}

std::vector<WorkloadSpec>
makeCatalog()
{
    std::vector<WorkloadSpec> cat;
    auto add = [&](std::string name, std::string suite, std::string notes,
                   CfgParams p, std::uint64_t seed) {
        cat.push_back({std::move(name), std::move(suite),
                       std::move(notes), p, seed});
    };

    // ---- SPEC2K17 INT speed (ELF-relevant subset of Figures 6-8) ----
    {
        CfgParams p = intBase();
        p.numFuncs = 64;
        p.blocksPerFunc = 12;
        p.fracLoopBranches = 0.45;
        p.fracPatternBranches = 0.42;
        p.patternLenMax = 48;
        p.dataFootprint = 512ull << 10;
        add("602.gcc", "2K17 INT",
            "compiler: larger footprint, moderate MPKI", p, 0x602);
    }
    {
        CfgParams p = intBase();
        p.numFuncs = 12;
        p.loadFrac = 0.30;
        p.dataFootprint = 256ull << 20;
        p.chaseFrac = 0.5;
        p.streamFrac = 0.2;
        p.fracLoopBranches = 0.40;
        p.fracPatternBranches = 0.30;
        p.randomTakenProb = 0.32;
        add("605.mcf", "2K17 INT",
            "memory-bound pointer chasing, high-ish MPKI", p, 0x605);
    }
    {
        CfgParams p = intBase();
        p.numFuncs = 32;
        p.fracLoopBranches = 0.25;
        p.fracPatternBranches = 0.85;
        // Biased enough that the coupled bimodal saturates and
        // speculates, yet wrong on the patterned minority TAGE
        // learns: COND-ELF pays divergences and wrong-path cache
        // pollution (the paper's omnetpp case).
        p.patternBias = 0.75;
        p.patternLenMin = 8;
        p.patternLenMax = 16;
        p.indirectCallFrac = 0.15;
        p.indirectFanout = 6;
        p.loadFrac = 0.26;
        p.dataFootprint = 30ull << 10; // L1D-resident: pollution hurts
        add("620.omnetpp", "2K17 INT",
            "discrete-event sim: weakly-biased patterned branches "
            "TAGE learns but a bimodal cannot (COND-ELF-hostile)",
            p, 0x620);
    }
    {
        CfgParams p = intBase();
        p.fracLoopBranches = 0.32;
        p.fracPatternBranches = 0.38;
        p.randomTakenProb = 0.34;
        p.recursionFrac = 0.3;
        p.recursionDepthPeriod = 12;
        p.dataFootprint = 96ull << 10;
        add("631.deepsjeng", "2K17 INT",
            "game tree search: high MPKI, recursion", p, 0x631);
    }
    {
        CfgParams p = intBase();
        p.fracLoopBranches = 0.26;
        p.fracPatternBranches = 0.36;
        p.randomTakenProb = 0.38;
        p.recursionFrac = 0.25;
        p.recursionDepthPeriod = 10;
        p.dataFootprint = 48ull << 10;
        add("641.leela", "2K17 INT",
            "MCTS: highest MPKI of the INT set; ELF's best case",
            p, 0x641);
    }
    {
        CfgParams p = intBase();
        p.fracLoopBranches = 0.70;
        p.fracPatternBranches = 0.25;
        p.loopPeriodMin = 6;
        p.loopPeriodMax = 24;
        p.dataFootprint = 64ull << 10;
        add("648.exchange2", "2K17 INT",
            "puzzle generator: predictable loopy code", p, 0x648);
    }
    {
        CfgParams p = intBase();
        p.fracLoopBranches = 0.55;
        p.fracPatternBranches = 0.30;
        p.randomTakenProb = 0.25;
        p.dataFootprint = 16ull << 20;
        p.streamFrac = 0.85;
        add("657.xz_s", "2K17 INT",
            "compression: moderate MPKI, streaming data", p, 0x657);
    }

    // ---- SPEC2K6 INT (ELF-relevant subset) ----
    {
        CfgParams p = intBase();
        p.fracLoopBranches = 0.40;
        p.fracPatternBranches = 0.45;
        p.dataFootprint = 2ull << 20;
        p.streamFrac = 0.85;
        add("401.bzip2", "2K6 INT", "compression, patterned branches",
            p, 0x401);
    }
    {
        CfgParams p = intBase();
        p.numFuncs = 72;
        p.blocksPerFunc = 12;
        p.fracLoopBranches = 0.42;
        p.fracPatternBranches = 0.42;
        p.dataFootprint = 512ull << 10;
        add("403.gcc", "2K6 INT", "compiler, larger footprint", p,
            0x403);
    }
    {
        CfgParams p = intBase();
        p.fracLoopBranches = 0.30;
        p.fracPatternBranches = 0.36;
        p.randomTakenProb = 0.36;
        p.recursionFrac = 0.2;
        p.dataFootprint = 96ull << 10;
        add("445.gobmk", "2K6 INT", "go engine: high MPKI", p, 0x445);
    }
    {
        CfgParams p = intBase();
        p.fracLoopBranches = 0.32;
        p.fracPatternBranches = 0.36;
        p.randomTakenProb = 0.34;
        p.recursionFrac = 0.3;
        p.recursionDepthPeriod = 14;
        p.dataFootprint = 64ull << 10;
        add("458.sjeng", "2K6 INT",
            "chess: high MPKI, recursion, some indirection", p, 0x458);
    }
    {
        CfgParams p = intBase();
        p.fracLoopBranches = 0.35;
        p.fracPatternBranches = 0.38;
        p.randomTakenProb = 0.35;
        p.dataFootprint = 96ull << 20;
        p.chaseFrac = 0.25;
        add("473.astar", "2K6 INT",
            "path-finding: high MPKI + big data side", p, 0x473);
    }

    // ---- SPEC2K6 FP (ELF-relevant subset) ----
    {
        CfgParams p = fpBase();
        p.callBlockProb = 0.20;
        p.recursionFrac = 0.25;
        p.recursionDepthPeriod = 6;
        p.loadFrac = 0.26;
        p.storeFrac = 0.16;
        p.dataFootprint = 28ull << 10; // L1D-resident: wrong-path
                                       // pollution visible
        p.streamFrac = 0.5;
        add("433.milc", "2K6 FP",
            "lattice QCD proxy: short calls/returns + store traffic "
            "(mem-dep-flush sensitive with RET-ELF)", p, 0x433);
    }
    {
        CfgParams p = fpBase();
        p.fracLoopBranches = 0.85;
        p.loopPeriodMin = 32;
        p.loopPeriodMax = 256;
        p.dataFootprint = 24ull << 20;
        add("437.leslie3d", "2K6 FP", "stencil: predictable, streaming",
            p, 0x437);
    }

    // ---- Server 1: large instruction footprint (proprietary proxy) ----
    for (int s = 1; s <= 3; ++s) {
        CfgParams p = intBase();
        p.numFuncs = 1100 + 100 * s;
        p.blocksPerFunc = 5;        // short functions
        p.instsPerBlockMin = 5;
        p.instsPerBlockMax = 12;
        p.loopPeriodMin = 2;
        p.loopPeriodMax = 6;        // brief loops: sweep the footprint
        // Main is the dispatcher (one call site per two functions);
        // nested calls are rare so the walk keeps returning to main
        // and sweeps the whole image instead of descending into a
        // static call cycle.
        p.callBlockProb = 0.08;
        p.indirectCallFrac = 0.15;
        p.indirectFanout = 6;
        p.callSkew = 0.05;          // flat profile: touches everything
        p.fracLoopBranches = 0.42;
        p.fracPatternBranches = 0.40;
        p.dataFootprint = 512ull << 10;
        add("srv1.subtest_" + std::to_string(s), "Server 1",
            "transaction server proxy: code footprint far beyond "
            "L1I/BTB reach", p, 0x1000 + s);
    }

    // ---- Server 2: branchy computation kernels (proprietary proxy) ----
    {
        CfgParams p = intBase();
        p.numFuncs = 20;
        p.fracLoopBranches = 0.28;
        p.fracPatternBranches = 0.32;
        p.randomTakenProb = 0.34;
        p.storeFrac = 0.16;
        p.dataFootprint = 320ull << 10;
        add("srv2.subtest_1", "Server 2",
            "branchy kernel with store pressure", p, 0x2001);
    }
    {
        CfgParams p = intBase();
        p.numFuncs = 16;
        p.blocksPerFunc = 6;
        p.recursionFrac = 0.9;
        p.recursionDepthPeriod = 14;
        p.callBlockProb = 0.25;
        p.fracLoopBranches = 0.25;
        p.fracPatternBranches = 0.35;
        p.patternBias = 0.70;
        p.randomTakenProb = 0.35;
        p.loadFrac = 0.26;
        p.storeFrac = 0.14;
        p.dataFootprint = 24ull << 10; // L1D-resident: wrong-path
                                       // D-pollution hurts COND/U-ELF
        p.streamFrac = 0.3;
        add("srv2.subtest_2", "Server 2",
            "recursion-dominated kernel (RET-ELF's best case; "
            "wrong-path D-pollution sensitive)", p, 0x2002);
    }
    {
        CfgParams p = intBase();
        p.numFuncs = 10;
        p.fracLoopBranches = 0.20;
        p.fracPatternBranches = 0.15;
        p.randomTakenProb = 0.45;
        p.loadFrac = 0.34;
        p.chaseFrac = 0.7;
        p.streamFrac = 0.1;
        p.dataFootprint = 768ull << 20;
        add("srv2.subtest_3", "Server 2",
            "graph processing proxy: extreme MPKI but memory-bound",
            p, 0x2003);
    }

    // ---- Fill out the suites for the Figure 9 geomeans ----
    {
        CfgParams p = fpBase();
        add("bwaves_like", "2K17 FP", "dense FP loops", p, 0x2101);
        p.dataFootprint = 64ull << 20;
        add("lbm_like", "2K17 FP", "streaming FP, big data", p, 0x2102);
        p.fracLoopBranches = 0.7;
        p.fracPatternBranches = 0.2;
        p.dataFootprint = 4ull << 20;
        add("cam4_like", "2K17 FP", "FP with some branchiness", p,
            0x2103);
        p.instsPerBlockMin = 16;
        p.instsPerBlockMax = 40;
        add("nab_like", "2K17 FP", "long FP blocks", p, 0x2104);
    }
    {
        CfgParams p = intBase();
        p.fracLoopBranches = 0.55;
        p.dataFootprint = 256ull << 10;
        add("perlbench_like", "2K17 INT", "interpreter-ish", p, 0x2201);
        p.indirectCallFrac = 0.2;
        p.indirectFanout = 8;
        add("x264_like", "2K17 INT", "media with indirect calls", p,
            0x2202);
    }
    {
        CfgParams p = intBase();
        p.fracLoopBranches = 0.55;
        p.randomTakenProb = 0.2;
        p.dataFootprint = 128ull << 10;
        add("hmmer_like", "2K6 INT", "predictable scoring loops", p,
            0x2301);
        p.fracPatternBranches = 0.5;
        p.fracLoopBranches = 0.35;
        add("h264ref_like", "2K6 INT", "media, patterned", p, 0x2302);
    }
    {
        CfgParams p = fpBase();
        add("gromacs_like", "2K6 FP", "MD loops", p, 0x2401);
        p.instsPerBlockMin = 14;
        p.instsPerBlockMax = 32;
        add("zeusmp_like", "2K6 FP", "long vector-ish blocks", p,
            0x2402);
    }

    return cat;
}

} // namespace

const std::vector<WorkloadSpec> &
workloadCatalog()
{
    static const std::vector<WorkloadSpec> cat = makeCatalog();
    return cat;
}

const WorkloadSpec *
findWorkload(const std::string &name)
{
    for (const WorkloadSpec &w : workloadCatalog()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

Program
buildWorkload(const WorkloadSpec &spec)
{
    return generateCfg(spec.params, spec.seed, spec.name);
}

std::vector<std::string>
elfRelevantWorkloads()
{
    return {
        "602.gcc",      "605.mcf",      "620.omnetpp",
        "631.deepsjeng", "641.leela",    "648.exchange2",
        "657.xz_s",     "srv1.subtest_1", "srv2.subtest_1",
        "srv2.subtest_2", "srv2.subtest_3", "433.milc",
        "437.leslie3d", "401.bzip2",    "403.gcc",
        "445.gobmk",    "458.sjeng",    "473.astar",
    };
}

std::vector<std::string>
catalogSuites()
{
    return {"2K17 FP", "2K17 INT", "2K6 FP", "2K6 INT",
            "Server 1", "Server 2"};
}

std::vector<std::string>
suiteWorkloads(const std::string &suite)
{
    std::vector<std::string> names;
    for (const WorkloadSpec &w : workloadCatalog()) {
        if (w.suite == suite)
            names.push_back(w.name);
    }
    return names;
}

} // namespace elfsim
