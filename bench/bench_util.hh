/**
 * @file
 * Shared plumbing for the experiment harnesses: option parsing and
 * table formatting. Each bench binary regenerates one table or figure
 * of the paper; rows print as aligned text so paper-vs-measured
 * comparison (EXPERIMENTS.md) is a copy-paste.
 */

#ifndef ELFSIM_BENCH_BENCH_UTIL_HH
#define ELFSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "workload/catalog.hh"

namespace elfsim {
namespace bench {

/** Common command-line options. */
struct Options
{
    InstCount warmupInsts = 100000;
    InstCount measureInsts = 200000;
    bool quick = false;
    unsigned jobs = 0; ///< sweep threads; 0 = $ELFSIM_JOBS / hardware

    RunOptions
    runOptions() const
    {
        RunOptions o;
        o.warmupInsts = quick ? warmupInsts / 4 : warmupInsts;
        o.measureInsts = quick ? measureInsts / 4 : measureInsts;
        return o;
    }
};

/** Parse --warmup N / --insts N / --quick / --jobs N. */
inline Options
parseOptions(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--warmup") && i + 1 < argc)
            o.warmupInsts = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--insts") && i + 1 < argc)
            o.measureInsts = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--quick"))
            o.quick = true;
        else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            o.jobs = unsigned(std::strtoul(argv[++i], nullptr, 10));
    }
    return o;
}

/** Print the runner's per-sweep timing summary to stdout. */
inline void
printSweepTiming(const SweepRunner &runner)
{
    std::ostringstream os;
    runner.printTimingSummary(os);
    std::printf("\n%s", os.str().c_str());
    std::fflush(stdout);
}

/** Print the experiment banner. */
inline void
banner(const char *experiment, const char *caption)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s\n  %s\n", experiment, caption);
    std::printf("==================================================="
                "=========================\n");
}

} // namespace bench
} // namespace elfsim

#endif // ELFSIM_BENCH_BENCH_UTIL_HH
