/**
 * @file
 * Compiled-trace correctness: per-instruction identity with the lazy
 * generator over every catalog workload (including the lazy tail past
 * the compiled prefix), on-disk round-trip byte identity, rejection of
 * stale/truncated/corrupt artifacts, TraceCache memoization and
 * disk-persistence semantics, and thread-safety of concurrent
 * acquisition (the asan/tsan presets run this binary).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "sim/sweep.hh"
#include "workload/builders.hh"
#include "workload/catalog.hh"
#include "workload/compiled_trace.hh"
#include "workload/oracle_stream.hh"
#include "workload/trace_cache.hh"

using namespace elfsim;

namespace {

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * Point the process-wide cache at a scratch state for one test. The
 * directory is wiped on entry so every test starts cold even when a
 * previous run left artifacts behind.
 */
class ScopedCacheDir
{
  public:
    explicit ScopedCacheDir(std::string dir)
        : prevDir(TraceCache::instance().directory()),
          prevOn(TraceCache::instance().enabled())
    {
        if (!dir.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(dir, ec);
        }
        TraceCache::instance().setDirectory(std::move(dir));
        TraceCache::instance().setEnabled(true);
        TraceCache::instance().clearMemory();
    }
    ~ScopedCacheDir()
    {
        TraceCache::instance().setDirectory(prevDir);
        TraceCache::instance().setEnabled(prevOn);
        TraceCache::instance().clearMemory();
    }

  private:
    std::string prevDir;
    bool prevOn;
};

void
expectSameInst(const OracleInst &a, const OracleInst &b, std::size_t i,
               const std::string &ctx)
{
    ASSERT_EQ(a.si, b.si) << ctx << " inst " << i;
    ASSERT_EQ(a.taken, b.taken) << ctx << " inst " << i;
    ASSERT_EQ(a.nextPC, b.nextPC) << ctx << " inst " << i;
    ASSERT_EQ(a.memAddr, b.memAddr) << ctx << " inst " << i;
}

} // namespace

// The core guarantee: for every catalog workload, a trace-backed
// stream is indistinguishable from the lazy reference stream at every
// index — inside the compiled prefix AND beyond it (the lazy tail
// resumed from the trace's saved end state).
TEST(CompiledTrace, MatchesLazyStreamForEveryCatalogWorkload)
{
    constexpr InstCount compiled = 6000;
    constexpr InstCount checked = 7500; // runs 1500 past the prefix
    for (const WorkloadSpec &spec : workloadCatalog()) {
        const Program prog = buildWorkload(spec);
        const auto trace = CompiledTrace::compile(prog, compiled);
        ASSERT_EQ(trace->size(), compiled);

        OracleStream lazy(prog);
        OracleStream backed(prog, defaultOracleWindowCap, trace);
        EXPECT_EQ(backed.backingTrace(), trace.get());
        for (std::size_t i = 1; i <= checked; ++i) {
            expectSameInst(backed.at(i), lazy.at(i), i, spec.name);
            // Retire as a real run would, so the window never grows
            // past its cap.
            if (i % 512 == 0) {
                lazy.retireUpTo(i - 256);
                backed.retireUpTo(i - 256);
            }
        }
    }
}

// Replay semantics survive the compiled backing store: a flush replays
// already-generated instructions from the window, not the trace.
TEST(CompiledTrace, ReplayWindowSemanticsAreKept)
{
    const Program prog = microRandomBranchLoop(8, 0.4);
    const auto trace = CompiledTrace::compile(prog, 2000);
    OracleStream s(prog, defaultOracleWindowCap, trace);

    const OracleInst first = s.at(100);
    s.at(600); // generate well ahead
    const OracleInst again = s.at(100); // replay without regeneration
    expectSameInst(first, again, 100, "replay");
    s.retireUpTo(50);
    EXPECT_EQ(s.oldest(), 51u);
}

TEST(CompiledTrace, KeyIsContentNotName)
{
    // Two content-identical builds share a key regardless of Program
    // instance; a different instruction budget changes it.
    const Program a = microSequentialLoop(30, 16);
    const Program b = microSequentialLoop(30, 16);
    const Program c = microSequentialLoop(31, 16);
    EXPECT_EQ(CompiledTrace::key(a, 1000), CompiledTrace::key(b, 1000));
    EXPECT_NE(CompiledTrace::key(a, 1000), CompiledTrace::key(a, 1001));
    EXPECT_NE(CompiledTrace::key(a, 1000), CompiledTrace::key(c, 1000));
}

TEST(CompiledTrace, SaveLoadRoundTripIsByteIdentical)
{
    const Program prog = microBtbMissChain(512, 6);
    const auto trace = CompiledTrace::compile(prog, 5000);
    const std::string p1 = tempPath("trace_rt1.etrace");
    const std::string p2 = tempPath("trace_rt2.etrace");
    trace->save(p1);

    const auto loaded = CompiledTrace::load(p1, trace->cacheKey());
    ASSERT_EQ(loaded->size(), trace->size());
    EXPECT_EQ(loaded->cacheKey(), trace->cacheKey());
    for (InstCount i = 0; i < trace->size(); ++i) {
        ASSERT_EQ(loaded->siIndex(i), trace->siIndex(i)) << i;
        ASSERT_EQ(loaded->taken(i), trace->taken(i)) << i;
        ASSERT_EQ(loaded->nextPC(i), trace->nextPC(i)) << i;
        ASSERT_EQ(loaded->memAddr(i), trace->memAddr(i)) << i;
    }
    // End state survives too: the lazy tails must be identical.
    EXPECT_EQ(loaded->endState().pc, trace->endState().pc);
    EXPECT_EQ(loaded->endState().callStack, trace->endState().callStack);
    EXPECT_EQ(loaded->endState().condCount, trace->endState().condCount);
    EXPECT_EQ(loaded->endState().indCount, trace->endState().indCount);
    EXPECT_EQ(loaded->endState().memCount, trace->endState().memCount);

    // Re-saving the loaded trace reproduces the file byte for byte.
    loaded->save(p2);
    EXPECT_EQ(slurp(p1), slurp(p2));
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST(CompiledTrace, LoadRejectsBadMagicStaleKeyAndTruncation)
{
    const Program prog = microSequentialLoop(30, 16);
    const auto trace = CompiledTrace::compile(prog, 1000);
    const std::string path = tempPath("trace_bad.etrace");
    trace->save(path);
    const std::string good = slurp(path);
    const std::uint64_t key = trace->cacheKey();

    // Unreadable file -> IoError.
    EXPECT_THROW(CompiledTrace::load(tempPath("nope.etrace"), key),
                 IoError);

    // Stale key (same file, different expectation) -> ParseError.
    EXPECT_THROW(CompiledTrace::load(path, key ^ 1), ParseError);

    const auto rewrite = [&](const std::string &bytes) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(), std::streamsize(bytes.size()));
    };

    // Bad magic.
    std::string bad = good;
    bad[0] = 'X';
    rewrite(bad);
    EXPECT_THROW(CompiledTrace::load(path, key), ParseError);

    // Truncation: shorter than the header, and shorter than the size
    // the header promises.
    rewrite(good.substr(0, 40));
    EXPECT_THROW(CompiledTrace::load(path, key), ParseError);
    rewrite(good.substr(0, good.size() - 8));
    EXPECT_THROW(CompiledTrace::load(path, key), ParseError);

    // Flipped payload byte -> checksum mismatch.
    bad = good;
    bad[bad.size() - 3] ^= 0x40;
    rewrite(bad);
    EXPECT_THROW(CompiledTrace::load(path, key), ParseError);

    // The pristine bytes still load (the guards above are not
    // over-eager).
    rewrite(good);
    EXPECT_NO_THROW(CompiledTrace::load(path, key));
    std::remove(path.c_str());
}

// The v2 warming side tables are a pure re-indexing of the per-inst
// arrays: re-derive all three from siIndex/taken/nextPC/memAddr and
// the static image, and require the stored tables — and the binary
// searches over them — to agree exactly, for every catalog workload
// and after a disk round trip.
TEST(CompiledTrace, SideTablesMatchPerInstArraysAcrossCatalog)
{
    for (const WorkloadSpec &w : workloadCatalog()) {
        const Program prog = buildWorkload(w);
        const auto compiled = CompiledTrace::compile(prog, 5000);
        const std::string path = tempPath("trace_side.etrace");
        compiled->save(path);
        const auto loaded =
            CompiledTrace::load(path, compiled->cacheKey());
        std::remove(path.c_str());

        const StaticInst *image = prog.instructions().data();
        for (const auto &t : {compiled, loaded}) {
            InstCount b = 0, r = 0, m = 0;
            bool newRun = true;
            for (InstCount i = 0; i < t->size(); ++i) {
                const StaticInst &si = image[t->siIndex(i)];
                if (newRun) {
                    ASSERT_LT(r, t->numRuns()) << w.name;
                    ASSERT_EQ(t->runPos(r), i) << w.name;
                    ASSERT_EQ(t->runPC(r), si.pc) << w.name;
                    ASSERT_EQ(t->runContaining(i), r) << w.name;
                    ++r;
                }
                ASSERT_EQ(t->runContaining(i), r - 1) << w.name;
                if (si.branch != BranchKind::None) {
                    ASSERT_LT(b, t->numBranchEvents()) << w.name;
                    ASSERT_EQ(t->firstBranchAtOrAfter(i), b) << w.name;
                    ASSERT_EQ(t->branchPos(b), i) << w.name;
                    ASSERT_EQ(t->branchPC(b), si.pc) << w.name;
                    ASSERT_EQ(t->branchTarget(b), t->nextPC(i))
                        << w.name;
                    ASSERT_EQ(t->branchKind(b), si.branch) << w.name;
                    ASSERT_EQ(t->branchTaken(b), t->taken(i)) << w.name;
                    ++b;
                }
                if (si.isMemInst()) {
                    ASSERT_LT(m, t->numMemEvents()) << w.name;
                    ASSERT_EQ(t->firstMemAtOrAfter(i), m) << w.name;
                    ASSERT_EQ(t->memPos(m), i) << w.name;
                    ASSERT_EQ(t->memPC(m), si.pc) << w.name;
                    ASSERT_EQ(t->memEvAddr(m), t->memAddr(i)) << w.name;
                    ASSERT_EQ(t->memIsStore(m), si.isStore()) << w.name;
                    ++m;
                }
                newRun = t->taken(i);
            }
            EXPECT_EQ(b, t->numBranchEvents()) << w.name;
            EXPECT_EQ(r, t->numRuns()) << w.name;
            EXPECT_EQ(m, t->numMemEvents()) << w.name;
        }
    }
}

// A v1-era artifact (the pre-side-table format) must demote to a
// transparent recompile — never a failed acquisition — and the
// recompile overwrites the stale file with a loadable v2 image.
TEST(TraceCache, V1ArtifactTransparentlyRecompiles)
{
    ScopedCacheDir scope(testing::TempDir() + "elfsim_trace_v1fb");
    TraceCache &cache = TraceCache::instance();
    const Program prog = microBtbMissChain(512, 6);

    const auto first = cache.acquire(prog, 3000);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(cache.stats().compiles, 1u);
    const std::string path = cache.filePath(prog, 3000);
    ASSERT_FALSE(path.empty());

    // Stamp the artifact with the retired v1 magic. Nothing else in
    // the file changes — magic rejection alone must trigger the
    // fallback.
    std::string bytes = slurp(path);
    ASSERT_GE(bytes.size(), std::size_t(16));
    ASSERT_NE(bytes.find("elfsim-trace-v2"), std::string::npos);
    bytes[14] = '1';
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(), std::streamsize(bytes.size()));
    }

    cache.clearMemory();  // also zeroes the stats counters
    const auto second = cache.acquire(prog, 3000);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(cache.stats().compiles, 1u);
    EXPECT_EQ(cache.stats().cacheHits, 0u);
    EXPECT_EQ(second->cacheKey(), first->cacheKey());
    EXPECT_EQ(second->size(), first->size());

    // The refreshed artifact is v2 again and loads cleanly.
    EXPECT_NE(slurp(path).find("elfsim-trace-v2"), std::string::npos);
    EXPECT_NO_THROW(CompiledTrace::load(path, first->cacheKey()));
}

TEST(TraceCache, MemoizesAndSharesOneTracePerContent)
{
    ScopedCacheDir scoped(""); // memory-only
    TraceCache &cache = TraceCache::instance();

    const Program a = microRandomBranchLoop(8, 0.4);
    const Program b = microRandomBranchLoop(8, 0.4); // same content
    const auto t1 = cache.acquire(a, 3000);
    const auto t2 = cache.acquire(b, 3000);
    const auto t3 = cache.acquire(a, 4000);
    ASSERT_NE(t1, nullptr);
    EXPECT_EQ(t1.get(), t2.get()); // shared by content
    EXPECT_NE(t1.get(), t3.get()); // different budget

    const TraceStats s = cache.stats();
    EXPECT_EQ(s.compiles, 2u);
    EXPECT_EQ(s.cacheMisses, 2u);
    EXPECT_EQ(s.cacheHits, 1u);
    EXPECT_GE(s.compileSeconds, 0.0);
}

TEST(TraceCache, DisabledCacheYieldsLazyStreams)
{
    ScopedCacheDir scoped("");
    TraceCache::instance().setEnabled(false);
    const Program a = microRandomBranchLoop(8, 0.4);
    EXPECT_EQ(TraceCache::instance().acquire(a, 3000), nullptr);
    EXPECT_EQ(TraceCache::instance().stats().compiles, 0u);
}

TEST(TraceCache, PersistsAndReloadsArtifacts)
{
    const std::string dir = tempPath("elfsim_trace_cache");
    ScopedCacheDir scoped(dir);
    TraceCache &cache = TraceCache::instance();

    const Program a = microSequentialLoop(30, 16);
    const auto compiled = cache.acquire(a, 2500);
    ASSERT_NE(compiled, nullptr);
    const std::string path = cache.filePath(a, 2500);
    ASSERT_FALSE(path.empty());
    EXPECT_TRUE(std::ifstream(path).good()) << path;

    // A fresh memo (new process, morally) loads the artifact instead
    // of compiling, and the loaded stream is the compiled stream.
    cache.clearMemory();
    const auto loaded = cache.acquire(a, 2500);
    ASSERT_NE(loaded, nullptr);
    EXPECT_NE(loaded.get(), compiled.get());
    const TraceStats s = cache.stats();
    EXPECT_EQ(s.compiles, 0u);
    EXPECT_EQ(s.cacheHits, 1u);
    EXPECT_GT(s.bytesMapped, 0u);
    ASSERT_EQ(loaded->size(), compiled->size());
    for (InstCount i = 0; i < loaded->size(); i += 97) {
        ASSERT_EQ(loaded->siIndex(i), compiled->siIndex(i)) << i;
        ASSERT_EQ(loaded->taken(i), compiled->taken(i)) << i;
        ASSERT_EQ(loaded->nextPC(i), compiled->nextPC(i)) << i;
        ASSERT_EQ(loaded->memAddr(i), compiled->memAddr(i)) << i;
    }

    // A stale artifact under the same path (content changed -> new
    // key -> new file name) never collides; corrupting the file in
    // place demotes the next cold acquire to a recompile.
    {
        std::ofstream os(path,
                         std::ios::binary | std::ios::in | std::ios::out);
        os.seekp(64);
        os.put('\xff');
    }
    cache.clearMemory();
    const auto recompiled = cache.acquire(a, 2500);
    ASSERT_NE(recompiled, nullptr);
    EXPECT_EQ(cache.stats().compiles, 1u);
}

// The tsan preset runs this: four threads race to acquire the same
// (and different) traces; everyone must agree and nothing may tear.
TEST(TraceCache, ConcurrentAcquireIsSafeAndDeduplicated)
{
    const std::string dir = tempPath("elfsim_trace_cache_mt");
    ScopedCacheDir scoped(dir);
    TraceCache &cache = TraceCache::instance();

    const Program a = microRandomBranchLoop(8, 0.4);
    const Program b = microSequentialLoop(30, 16);
    std::vector<std::shared_ptr<const CompiledTrace>> got(8);
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&, t] {
            got[t] = cache.acquire(a, 3000);
            got[4 + t] = cache.acquire(b, 3000);
        });
    }
    for (std::thread &w : workers)
        w.join();

    for (int t = 1; t < 4; ++t) {
        EXPECT_EQ(got[t].get(), got[0].get());
        EXPECT_EQ(got[4 + t].get(), got[4].get());
    }
    EXPECT_NE(got[0].get(), got[4].get());
    EXPECT_EQ(cache.stats().compiles, 2u);
}

// End-to-end under the sweep engine: a 4-thread sweep with a shared
// disk cache stays deterministic and cycle-identical to the fully
// lazy run of the same grid.
TEST(TraceCache, FourThreadSweepMatchesLazySweep)
{
    const std::string dir = tempPath("elfsim_trace_cache_sweep");
    ScopedCacheDir scoped(dir);

    Program a = microRandomBranchLoop(8, 0.4);
    Program b = microSequentialLoop(30, 16);
    RunOptions o;
    o.warmupInsts = 10000;
    o.measureInsts = 20000;
    const std::vector<SweepJob> grid = {
        makeVariantJob(a, FrontendVariant::Dcf, o),
        makeVariantJob(a, FrontendVariant::UElf, o),
        makeVariantJob(b, FrontendVariant::Dcf, o),
        makeVariantJob(b, FrontendVariant::UElf, o),
    };

    SweepRunner traced(4);
    const std::vector<RunResult> withTraces = traced.run(grid);
    EXPECT_EQ(traced.traceStats().compiles, 2u);
    EXPECT_EQ(traced.traceStats().cacheHits, 2u);

    TraceCache::instance().setEnabled(false);
    SweepRunner lazy(4);
    const std::vector<RunResult> without = lazy.run(grid);
    TraceCache::instance().setEnabled(true);

    ASSERT_EQ(withTraces.size(), without.size());
    for (std::size_t i = 0; i < withTraces.size(); ++i) {
        EXPECT_EQ(withTraces[i].cycles, without[i].cycles) << i;
        EXPECT_EQ(withTraces[i].insts, without[i].insts) << i;
        EXPECT_EQ(withTraces[i].ipc, without[i].ipc) << i;
    }
}
