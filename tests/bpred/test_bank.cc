#include <gtest/gtest.h>

#include "bpred/predictor_bank.hh"

using namespace elfsim;

TEST(PredictorBank, RasTrackedInBothModes)
{
    PredictorBank bank;
    // A call advances the speculative RAS; commit advances the
    // architectural RAS.
    bank.specBranch(0x400100, BranchKind::DirectCall, true);
    EXPECT_EQ(bank.peekReturn(), 0x400104u);
    bank.commitBranch(0x400100, BranchKind::DirectCall, true, 0x500000,
                      TagePrediction{}, IttagePrediction{});
    EXPECT_EQ(bank.archRas().top(), 0x400104u);
}

TEST(PredictorBank, ResetSpecToArchRecoversRas)
{
    PredictorBank bank;
    bank.specBranch(0x400100, BranchKind::DirectCall, true);
    bank.commitBranch(0x400100, BranchKind::DirectCall, true, 0x500000,
                      TagePrediction{}, IttagePrediction{});
    // Wrong path: a bogus return pops the speculative RAS.
    bank.specBranch(0x500100, BranchKind::Return, true);
    EXPECT_EQ(bank.peekReturn(), invalidAddr);
    bank.resetSpecToArch();
    EXPECT_EQ(bank.peekReturn(), 0x400104u);
}

TEST(PredictorBank, IndirectTrainedAtCommitIncludingBtc)
{
    PredictorBank bank;
    const Addr pc = 0x400200, target = 0x600000;
    EXPECT_EQ(bank.predictIndirectL0(pc), invalidAddr);
    for (int i = 0; i < 4; ++i) {
        const IttagePrediction ip = bank.predictIndirect(pc);
        bank.specBranch(pc, BranchKind::IndirectJump, true);
        bank.commitBranch(pc, BranchKind::IndirectJump, true, target,
                          TagePrediction{}, ip);
    }
    EXPECT_EQ(bank.predictIndirectL0(pc), target);
    EXPECT_EQ(bank.predictIndirect(pc).target, target);
}

TEST(PredictorBank, CondTrainedWithoutFetchPrediction)
{
    // Branches fetched in ELF coupled mode retire without a TAGE
    // prediction; the bank must still train via the arch history.
    PredictorBank bank;
    const Addr pc = 0x400300;
    for (int i = 0; i < 64; ++i) {
        bank.commitBranch(pc, BranchKind::CondDirect, true, 0x400400,
                          TagePrediction{}, IttagePrediction{});
    }
    EXPECT_TRUE(bank.predictCond(pc).taken);
}

TEST(PredictorBank, SpecAndCommitConvergeOnCorrectPath)
{
    PredictorBank bank;
    const Addr pc = 0x400400;
    for (int i = 0; i < 200; ++i) {
        const bool dir = (i % 4) != 3;
        const TagePrediction tp = bank.predictCond(pc);
        bank.specBranch(pc, BranchKind::CondDirect, dir);
        bank.commitBranch(pc, BranchKind::CondDirect, dir,
                          dir ? 0x400500 : pc + 4, tp,
                          IttagePrediction{});
    }
    // After identical spec/arch streams, resetSpecToArch must not
    // change the prediction.
    const bool before = bank.predictCond(pc).taken;
    bank.resetSpecToArch();
    EXPECT_EQ(bank.predictCond(pc).taken, before);
}

TEST(PredictorBank, StorageSumsComponents)
{
    PredictorBank bank;
    EXPECT_GT(bank.storageBytes(), 24.0 * 1024);
}
