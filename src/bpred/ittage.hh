/**
 * @file
 * ITTAGE indirect target predictor (Seznec, "A 64-Kbytes ITTAGE
 * indirect branch predictor", CBP-3 2011) — the paper's L1 indirect
 * predictor (4 tagged tables, 3-cycle access, 32KB budget), backed in
 * the front-end by the 1-cycle L0 Branch Target Cache.
 *
 * Uses the same speculative/architectural history split as Tage.
 */

#ifndef ELFSIM_BPRED_ITTAGE_HH
#define ELFSIM_BPRED_ITTAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/history.hh"
#include "common/random.hh"
#include "common/sat_counter.hh"
#include "common/serialize.hh"
#include "common/types.hh"

namespace elfsim {

/** Compile-time cap on ITTAGE tagged tables. */
constexpr unsigned ittageMaxTables = 8;

/** ITTAGE parameters. Defaults approximate the paper's 32KB budget. */
struct IttageParams
{
    unsigned numTables = 4;
    unsigned tableEntriesLog2 = 9;  ///< 512 entries per tagged table
    unsigned baseEntriesLog2 = 9;   ///< 512-entry tagless base table
    unsigned tagBits = 11;
    unsigned minHist = 4;
    unsigned maxHist = 128;
    unsigned uResetPeriod = 1 << 17;
    std::uint64_t allocSeed = 0x17a6; ///< allocation-RNG seed
};

/** Carried from predict() to update(). */
struct IttagePrediction
{
    Addr target = invalidAddr;   ///< predicted target (invalid = miss)
    int provider = -1;           ///< providing table; -1 = base
    bool baseHit = false;
    bool valid = false;          ///< a real prediction was made
    std::array<std::uint32_t, ittageMaxTables> indices{};
    std::array<std::uint32_t, ittageMaxTables> tags{};
    std::uint32_t baseIndex = 0;
};

/** The ITTAGE predictor. */
class Ittage
{
  public:
    explicit Ittage(const IttageParams &params = {});

    /** Predict the target of the indirect branch at @a pc. */
    IttagePrediction
    predict(Addr pc) const
    {
        return predictWith(spec, pc);
    }

    /** Predict with the architectural history (for commit training
     *  of branches that had no front-end prediction). */
    IttagePrediction
    predictArch(Addr pc) const
    {
        return predictWith(arch, pc);
    }

    /** Push one speculative history bit (same stream as TAGE). */
    void pushSpec(Addr pc, bool bit) { push(spec, pc, bit); ++specGen; }

    /** Push the resolved bit into the architectural history. */
    void pushArch(Addr pc, bool bit) { push(arch, pc, bit); ++archGen; }

    /** Restore the speculative history from the architectural one. */
    void resetSpecToArch() { spec = arch; ++specGen; }

    /** Train with the resolved target. */
    void update(Addr pc, const IttagePrediction &pred, Addr target);

    double storageBytes() const;

    /** Serialize the full warm state (tables, histories, RNG). */
    void saveState(Serializer &s) const;

    /** Restore state written by saveState against the same geometry.
     *  Throws ParseError on any layout mismatch. */
    void loadState(Deserializer &d);

    const IttageParams &config() const { return params; }

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        Addr target = invalidAddr;
        SatCounter conf;    ///< 2-bit hysteresis
        std::uint8_t useful = 0;
        bool valid = false;
    };

    struct HistState
    {
        GlobalHistory ghr{1024};
        std::uint64_t pathHist = 0;
        std::vector<FoldedHistory> indexFold;
        std::vector<FoldedHistory> tagFold;
    };

    /** Memoized predictWith result for one (history, pc) lookup. */
    struct PredMemo
    {
        Addr pc = invalidAddr;
        std::uint64_t gen = 0;
        IttagePrediction pred;
    };

    IttagePrediction predictWith(const HistState &h, Addr pc) const;
    void push(HistState &h, Addr pc, bool bit);
    void saveHist(Serializer &s, const HistState &h) const;
    void loadHist(Deserializer &d, HistState &h);
    void saveEntries(Serializer &s, const std::vector<Entry> &v) const;
    void loadEntries(Deserializer &d, std::vector<Entry> &v,
                     const char *what);
    std::uint32_t tableIndex(const HistState &h, Addr pc,
                             unsigned t) const;
    std::uint16_t tableTag(const HistState &h, Addr pc,
                           unsigned t) const;

    /** Tagged entry t/idx in the flat table-major array. */
    Entry &
    entry(unsigned t, std::uint32_t idx)
    {
        return tables[(std::size_t(t) << params.tableEntriesLog2) + idx];
    }
    const Entry &
    entry(unsigned t, std::uint32_t idx) const
    {
        return tables[(std::size_t(t) << params.tableEntriesLog2) + idx];
    }

    IttageParams params;
    std::vector<unsigned> histLengths;
    /** All tagged tables, table-major in one contiguous array. */
    std::vector<Entry> tables;
    std::vector<Entry> base; ///< tagless, always "hits" once trained

    HistState spec;
    HistState arch;

    std::uint64_t updateCount = 0;
    mutable Rng allocRng;

    /** Generation counters invalidating the lookup memos whenever the
     *  matching history or any table content changes. */
    std::uint64_t specGen = 1;
    std::uint64_t archGen = 1;
    mutable PredMemo specMemo;
    mutable PredMemo archMemo;
};

} // namespace elfsim

#endif // ELFSIM_BPRED_ITTAGE_HH
