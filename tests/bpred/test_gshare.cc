#include <gtest/gtest.h>

#include "bpred/gshare.hh"

using namespace elfsim;

TEST(Gshare, LearnsBiasedBranch)
{
    Gshare g;
    const Addr pc = 0x400100;
    for (int i = 0; i < 32; ++i)
        g.update(pc, true);
    EXPECT_TRUE(g.predict(pc));
}

TEST(Gshare, HistoryDisambiguatesAlternation)
{
    // A strictly alternating branch: the commit-history gshare can
    // learn it (two history contexts), a bimodal cannot.
    Gshare g;
    const Addr pc = 0x400200;
    for (int i = 0; i < 400; ++i)
        g.update(pc, i % 2 == 0);
    unsigned wrong = 0;
    for (int i = 400; i < 600; ++i) {
        if (g.predict(pc) != (i % 2 == 0))
            ++wrong;
        g.update(pc, i % 2 == 0);
    }
    EXPECT_LT(wrong, 20u);
}

TEST(Gshare, SaturationFilterWorks)
{
    Gshare g;
    const Addr pc = 0x400300;
    g.update(pc, true);
    // After a single update in one history context the counter is not
    // saturated yet.
    EXPECT_FALSE(g.saturated(pc) && g.predict(pc));
    for (int i = 0; i < 64; ++i)
        g.update(pc, true);
    EXPECT_TRUE(g.saturated(pc));
}

TEST(Gshare, ResetClears)
{
    Gshare g;
    for (int i = 0; i < 32; ++i)
        g.update(0x400400, true);
    g.reset();
    EXPECT_FALSE(g.saturated(0x400400));
}

TEST(Gshare, StorageMatchesConfig)
{
    GshareParams p;
    p.entries = 2048;
    p.counterBits = 3;
    Gshare g(p);
    EXPECT_DOUBLE_EQ(g.storageBytes(), 768.0);
}
