/**
 * @file
 * Error/status reporting helpers, following the gem5 fatal/panic split.
 *
 * panic() is for simulator bugs (aborts); fatal() is for user errors
 * (clean exit); warn()/inform() print status without stopping.
 *
 * Recoverable mode: a sweep worker running an isolated grid cell can
 * enable the thread-local "throws" mode (setPanicThrows), after which
 * panic() raises InternalError and fatal() raises ConfigError instead
 * of killing the process — the sweep engine catches the exception,
 * marks the one cell failed, and the rest of the grid survives. When
 * the mode is off (the default, and everywhere outside sweep jobs)
 * both still terminate, now after flushing and printing a best-effort
 * backtrace so CI logs of non-recoverable crashes are diagnosable.
 */

#ifndef ELFSIM_COMMON_LOGGING_HH
#define ELFSIM_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace elfsim {

/**
 * Enable/disable the thread-local recoverable-error mode (see file
 * comment). Returns the previous setting so scopes can nest; prefer
 * the RAII ScopedRecoverableErrors below.
 */
bool setPanicThrows(bool enable);

/** Is the calling thread in recoverable-error mode? */
bool panicThrows();

/** RAII: recoverable-error mode for the enclosing scope. */
class ScopedRecoverableErrors
{
  public:
    ScopedRecoverableErrors() : prev(setPanicThrows(true)) {}
    ~ScopedRecoverableErrors() { setPanicThrows(prev); }
    ScopedRecoverableErrors(const ScopedRecoverableErrors &) = delete;
    ScopedRecoverableErrors &
    operator=(const ScopedRecoverableErrors &) = delete;

  private:
    bool prev;
};

/** Print a formatted message and abort(); use for simulator bugs.
 *  In recoverable mode, throws InternalError instead. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted message and exit(1); use for user errors.
 *  In recoverable mode, throws ConfigError instead. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted warning to stderr. */
void warnImpl(const char *fmt, ...);

/** Print a formatted informational message to stderr. */
void informImpl(const char *fmt, ...);

} // namespace elfsim

#define ELFSIM_PANIC(...) \
    ::elfsim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define ELFSIM_FATAL(...) \
    ::elfsim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

#define ELFSIM_WARN(...) ::elfsim::warnImpl(__VA_ARGS__)

#define ELFSIM_INFORM(...) ::elfsim::informImpl(__VA_ARGS__)

/** Panic with a formatted message if a simulator invariant fails. */
#define ELFSIM_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::elfsim::warnImpl("assertion (" #cond ") failed");           \
            ::elfsim::panicImpl(__FILE__, __LINE__, __VA_ARGS__);         \
        }                                                                 \
    } while (0)

#endif // ELFSIM_COMMON_LOGGING_HH
