#!/usr/bin/env bash
# Quick simulator-throughput smoke (~15-30 s): every 3rd catalog
# workload at full-size windows, single job, schema check, and the
# >10% geomean-MIPS regression gate against the committed
# BENCH_throughput.json (matched on the common rows).
#
#   scripts/perf_smoke.sh           # uses ./build (default preset)
#   BUILD=build-native scripts/perf_smoke.sh   # host-tuned binaries
#
# Full windows (not --quick) keep per-run MIPS comparable with the
# baseline; a marginal pass here still deserves a full
# `build/bench/bench_throughput --jobs 1` before concluding anything
# regressed.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD:-build}"
BIN="$BUILD/bench/bench_throughput"
[ -x "$BIN" ] || {
    echo "$BIN not built (cmake --build $BUILD)" >&2
    exit 1
}

OUT="$BUILD/results"
mkdir -p "$OUT"

# Warm trace cache: repeat smokes map the compiled workload streams
# from disk instead of regenerating them (content-keyed; safe to keep
# across rebuilds).
TRACE_CACHE="$BUILD/trace-cache"
mkdir -p "$TRACE_CACHE"

"$BIN" --stride 3 --jobs 1 --trace-cache "$TRACE_CACHE" \
       --json "$OUT/perf_smoke.json"

if [ -f BENCH_throughput.json ]; then
    python3 scripts/check_results.py --throughput \
        --baseline BENCH_throughput.json "$OUT/perf_smoke.json"
else
    python3 scripts/check_results.py --throughput "$OUT/perf_smoke.json"
fi
