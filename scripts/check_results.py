#!/usr/bin/env python3
"""Validate elfsim-results-v2 JSON artifacts.

Usage:
    scripts/check_results.py FILE [FILE ...]
        Schema-check each exported results document. Any cell whose
        "status" is not "ok" fails the check unless --allow-failed N
        grants that many non-ok cells per document.

    scripts/check_results.py --compare A B
        Assert two documents carry identical simulated results,
        ignoring the wall-clock-dependent "timing" and "trace"
        blocks and each result's "sampling" block (its ckpt_* counters
        depend on checkpoint-cache warmth, not on the simulation).
        Use this to confirm --jobs 1 and --jobs N exports of the same
        grid match.

    scripts/check_results.py --throughput FILE [--baseline BASE]
        Schema-check an elfsim-throughput-v1 document (written by
        bench_throughput). With --baseline, additionally fail if
        geomean simulated MIPS regressed more than 10% versus the
        committed baseline document.

Exits non-zero on the first violation. Stdlib only.
"""

import argparse
import json
import sys

SCHEMA = "elfsim-results-v2"
THROUGHPUT_SCHEMA = "elfsim-throughput-v1"
# A >10% geomean-MIPS drop vs the committed baseline fails the gate;
# smaller swings are host noise.
REGRESSION_TOLERANCE = 0.10

THROUGHPUT_STR_FIELDS = ("workload", "variant")
THROUGHPUT_NUM_FIELDS = (
    "wall_seconds", "sim_insts", "sim_cycles", "mips",
    "cycles_per_host_us",
)

# Per-result scalar fields (RunResult::forEachField order).
RESULT_STR_FIELDS = ("workload", "variant", "error")
RESULT_NUM_FIELDS = (
    "cycles", "insts", "ipc", "branch_mpki", "cond_mpki",
    "exec_flushes", "mem_order_flushes", "decode_resteers",
    "divergence_flushes", "btb_hit_l0", "btb_hit_l1", "btb_hit_l2",
    "l0i_miss_rate", "l1d_mpki", "wrong_path_insts", "inst_prefetches",
    "avg_redirect_to_fetch", "avg_coupled_insts", "coupled_periods",
    "coupled_committed_frac", "pending_flush_waits", "attempts",
)
# v2 per-result status (sim/export.hh); non-ok cells carry zeroed
# metrics and a non-empty "error".
RESULT_STATUSES = ("ok", "failed", "timeout", "cancelled")
TIMELINE_FIELDS = (
    "start_inst", "insts", "cycles", "ipc", "cond_mispredicts",
    "target_mispredicts", "exec_flushes", "mem_order_flushes",
    "decode_resteers", "divergence_flushes", "coupled_frac",
)
# Optional trace-compilation activity block (sweep-wide, like timing).
TRACE_FIELDS = (
    "compiles", "cache_hits", "cache_misses", "bytes_mapped",
    "compile_seconds",
)
# Optional per-result sampled-execution block (present iff the cell
# ran in sampled mode; sim/runner.hh SamplingInfo).
SAMPLING_FIELDS = (
    "period_insts", "length_insts", "warmup_insts", "windows",
    "total_insts", "measured_insts", "ipc_rel_err_95",
    "est_total_cycles", "ckpt_hits", "ckpt_misses", "ckpt_saves",
)


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check_document(path, doc, allow_failed=0):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(path, f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(path, "missing or empty 'results' array")

    n_not_ok = 0
    for i, r in enumerate(results):
        where = f"results[{i}]"
        for k in RESULT_STR_FIELDS:
            if not isinstance(r.get(k), str):
                fail(path, f"{where}.{k} missing or not a string")
        for k in RESULT_NUM_FIELDS:
            if not isinstance(r.get(k), (int, float)):
                fail(path, f"{where}.{k} missing or not a number")
        status = r.get("status")
        if status not in RESULT_STATUSES:
            fail(path, f"{where}.status is {status!r}, expected one of "
                       f"{RESULT_STATUSES}")
        ok = status == "ok"
        if ok and r["error"]:
            fail(path, f"{where}: ok cell carries an error string")
        if ok and r["attempts"] < 1:
            fail(path, f"{where}: ok cell with attempts < 1")
        if not ok:
            n_not_ok += 1
            if not r["error"]:
                fail(path, f"{where}: {status} cell without an error")
        interval = r.get("interval_insts")
        timeline = r.get("timeline")
        if not isinstance(interval, int) or not isinstance(timeline, list):
            fail(path, f"{where}: bad interval_insts/timeline")
        if not ok:
            # A degraded cell carries no metrics; the tiling
            # invariants below only hold for completed runs.
            continue
        if interval > 0 and r["insts"] > 0 and not timeline:
            fail(path, f"{where}: interval sampling on but timeline empty")
        if interval == 0 and timeline:
            fail(path, f"{where}: timeline present without interval_insts")
        for j, row in enumerate(timeline):
            for k in TIMELINE_FIELDS:
                if not isinstance(row.get(k), (int, float)):
                    fail(path, f"{where}.timeline[{j}].{k} missing")
        if timeline:
            # The samples must tile the measurement window exactly.
            if sum(row["insts"] for row in timeline) != r["insts"]:
                fail(path, f"{where}: timeline insts do not sum to insts")
            if sum(row["cycles"] for row in timeline) != r["cycles"]:
                fail(path, f"{where}: timeline cycles do not sum to cycles")

        sampling = r.get("sampling")
        if sampling is not None:
            for k in SAMPLING_FIELDS:
                if not isinstance(sampling.get(k), (int, float)):
                    fail(path, f"{where}.sampling.{k} missing")
                if sampling[k] < 0:
                    fail(path, f"{where}.sampling.{k} is negative")
            if sampling["windows"] < 1:
                fail(path, f"{where}.sampling: no measured windows")
            if (sampling["length_insts"] == 0 or
                    sampling["warmup_insts"] + sampling["length_insts"]
                    > sampling["period_insts"]):
                fail(path, f"{where}.sampling: schedule does not fit "
                           "its period")
            if (sampling["total_insts"] !=
                    sampling["windows"] * sampling["period_insts"]):
                fail(path, f"{where}.sampling: total_insts is not "
                           "windows * period_insts")
            if sampling["measured_insts"] != r["insts"]:
                fail(path, f"{where}.sampling: measured_insts does "
                           "not match the result's insts")
            if interval != sampling["length_insts"]:
                fail(path, f"{where}: interval_insts does not match "
                           "the sample length")
            if len(timeline) != sampling["windows"]:
                fail(path, f"{where}: one timeline row per measured "
                           "window expected")
            if sampling["est_total_cycles"] < r["cycles"]:
                fail(path, f"{where}.sampling: extrapolated cycles "
                           "below the measured cycles")

    timing = doc.get("timing")
    if timing is not None:
        for k in ("jobs", "threads", "wall_seconds"):
            if not isinstance(timing.get(k), (int, float)):
                fail(path, f"timing.{k} missing or not a number")

    trace = doc.get("trace")
    if trace is not None:
        for k in TRACE_FIELDS:
            if not isinstance(trace.get(k), (int, float)):
                fail(path, f"trace.{k} missing or not a number")
            if trace[k] < 0:
                fail(path, f"trace.{k} is negative")

    if n_not_ok > allow_failed:
        for r in results:
            if r["status"] != "ok":
                print(f"{path}: {r['workload']}/{r['variant']} "
                      f"{r['status']}: {r['error']}", file=sys.stderr)
        fail(path, f"{n_not_ok} cells not ok (allowed {allow_failed})")

    n_timelines = sum(1 for r in results if r["timeline"])
    note = f", {n_not_ok} not ok" if n_not_ok else ""
    print(f"{path}: OK ({len(results)} results, "
          f"{n_timelines} with timelines{note})")


def check_throughput_document(path, doc):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != THROUGHPUT_SCHEMA:
        fail(path, f"schema is {doc.get('schema')!r}, "
                   f"expected {THROUGHPUT_SCHEMA!r}")
    geomean = doc.get("geomean_mips")
    if not isinstance(geomean, (int, float)) or geomean <= 0:
        fail(path, "geomean_mips missing or not positive")
    rows = doc.get("throughput")
    if not isinstance(rows, list) or not rows:
        fail(path, "missing or empty 'throughput' array")
    for i, r in enumerate(rows):
        where = f"throughput[{i}]"
        for k in THROUGHPUT_STR_FIELDS:
            if not isinstance(r.get(k), str):
                fail(path, f"{where}.{k} missing or not a string")
        for k in THROUGHPUT_NUM_FIELDS:
            if not isinstance(r.get(k), (int, float)):
                fail(path, f"{where}.{k} missing or not a number")
        if r["wall_seconds"] <= 0 or r["mips"] <= 0:
            fail(path, f"{where}: non-positive wall_seconds/mips")
    timing = doc.get("timing")
    if not isinstance(timing, dict):
        fail(path, "missing 'timing' block")
    for k in ("jobs", "threads", "wall_seconds"):
        if not isinstance(timing.get(k), (int, float)):
            fail(path, f"timing.{k} missing or not a number")
    print(f"{path}: OK ({len(rows)} throughput rows, "
          f"geomean {geomean:.3f} MIPS)")


def row_geomean(doc, keys):
    import math
    vals = [r["mips"] for r in doc["throughput"]
            if (r["workload"], r["variant"]) in keys]
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def compare_throughput(base_path, base, new_path, new):
    # Compare geomean MIPS over the rows present in BOTH documents, so
    # a strided smoke run (bench_throughput --stride N) gates against
    # the full-grid committed baseline without bias.
    keys = ({(r["workload"], r["variant"]) for r in base["throughput"]} &
            {(r["workload"], r["variant"]) for r in new["throughput"]})
    if not keys:
        fail(new_path, f"no rows in common with baseline {base_path}")
    old_g, new_g = row_geomean(base, keys), row_geomean(new, keys)
    ratio = new_g / old_g
    if ratio < 1.0 - REGRESSION_TOLERANCE:
        fail(new_path,
             f"geomean MIPS regressed {100 * (1 - ratio):.1f}% over "
             f"{len(keys)} common rows ({old_g:.3f} -> {new_g:.3f}, "
             f"baseline {base_path}); tolerance is "
             f"{100 * REGRESSION_TOLERANCE:.0f}%")
    print(f"baseline: geomean {old_g:.3f} -> {new_g:.3f} MIPS over "
          f"{len(keys)} common rows ({100 * (ratio - 1):+.1f}%) "
          f"within tolerance")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, str(e))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", metavar="FILE")
    ap.add_argument("--compare", action="store_true",
                    help="compare exactly two documents, ignoring "
                         "the 'timing', 'trace' and per-result "
                         "'sampling' blocks")
    ap.add_argument("--throughput", action="store_true",
                    help="validate elfsim-throughput-v1 documents "
                         "instead of results documents")
    ap.add_argument("--baseline", metavar="BASE",
                    help="with --throughput: fail on a >10%% geomean "
                         "MIPS regression versus this baseline")
    ap.add_argument("--allow-failed", type=int, default=0, metavar="N",
                    help="tolerate up to N non-ok cells per results "
                         "document (default 0)")
    args = ap.parse_args()

    if args.baseline and not args.throughput:
        ap.error("--baseline requires --throughput")

    if args.throughput:
        for path in args.files:
            doc = load(path)
            check_throughput_document(path, doc)
            if args.baseline:
                base = load(args.baseline)
                check_throughput_document(args.baseline, base)
                compare_throughput(args.baseline, base, path, doc)
        return

    docs = {p: load(p) for p in args.files}
    for path, doc in docs.items():
        check_document(path, doc, allow_failed=args.allow_failed)

    if args.compare:
        if len(args.files) != 2:
            ap.error("--compare takes exactly two files")
        a, b = (dict(docs[p]) for p in args.files)
        for d in (a, b):
            d.pop("timing", None)
            d.pop("trace", None)
            # ckpt_* counters track cache warmth, not simulation.
            for r in d.get("results", []):
                r.pop("sampling", None)
        if a != b:
            fail(args.files[1],
                 f"results differ from {args.files[0]} "
                 "(after ignoring 'timing', 'trace' and 'sampling')")
        print(f"compare: identical results ({args.files[0]} vs "
              f"{args.files[1]})")


if __name__ == "__main__":
    main()
