/**
 * @file
 * Property-based and failure-injection tests on the whole core.
 *
 * The central invariant: the front-end organization is a *timing*
 * choice — the committed architectural stream must be bit-identical
 * across NoDCF, DCF and every ELF variant, under any structure sizes.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/core.hh"
#include "sim/runner.hh"
#include "workload/builders.hh"
#include "workload/catalog.hh"

using namespace elfsim;

namespace {

struct CommitRecord
{
    Addr pc;
    bool taken;

    bool
    operator==(const CommitRecord &o) const
    {
        return pc == o.pc && taken == o.taken;
    }
};

std::vector<CommitRecord>
commitStream(const Program &p, const SimConfig &cfg, InstCount n)
{
    std::vector<CommitRecord> stream;
    stream.reserve(n);
    Core core(cfg, p);
    core.setCommitObserver([&](const DynInst &di) {
        if (stream.size() < n)
            stream.push_back({di.pc(), di.taken});
    });
    core.run(n);
    return stream;
}

Program
mixedWorkload()
{
    CfgParams params;
    params.numFuncs = 12;
    params.recursionFrac = 0.3;
    params.indirectCallFrac = 0.15;
    params.randomTakenProb = 0.35;
    params.dataFootprint = 128 << 10;
    return generateCfg(params, 0xfeed, "property_mix");
}

} // namespace

// ---------------------------------------------------------------------
// Architectural equivalence across front-ends.
// ---------------------------------------------------------------------

class StreamEquivalence
    : public ::testing::TestWithParam<FrontendVariant>
{};

TEST_P(StreamEquivalence, CommittedStreamMatchesDcf)
{
    Program p = mixedWorkload();
    const InstCount n = 30000;
    const auto ref =
        commitStream(p, makeConfig(FrontendVariant::Dcf), n);
    const auto got = commitStream(p, makeConfig(GetParam()), n);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_TRUE(ref[i] == got[i])
            << "streams diverge at committed instruction " << i
            << " under " << variantName(GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, StreamEquivalence,
    ::testing::Values(FrontendVariant::NoDcf, FrontendVariant::LElf,
                      FrontendVariant::RetElf, FrontendVariant::IndElf,
                      FrontendVariant::CondElf, FrontendVariant::UElf),
    [](const ::testing::TestParamInfo<FrontendVariant> &info) {
        std::string n = variantName(info.param);
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

// ---------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------

TEST(Determinism, IdenticalRunsIdenticalCycles)
{
    Program p = mixedWorkload();
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    Core a(cfg, p);
    a.run(40000);
    Core b(cfg, p);
    b.run(40000);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.committed(), b.committed());
    EXPECT_EQ(a.stats().execFlushes, b.stats().execFlushes);
}

// ---------------------------------------------------------------------
// Structure-size sweeps: any sizing must complete and stay sane.
// ---------------------------------------------------------------------

class SizeSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(SizeSweep, UElfCompletesUnderAnySizing)
{
    const auto [faq, vec] = GetParam();
    Program p = mixedWorkload();
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    cfg.faqEntries = faq;
    cfg.divergence.vecEntries = vec;
    cfg.divergence.targetEntries = std::max(2u, vec / 4);
    Core core(cfg, p);
    core.run(30000);
    EXPECT_GE(core.committed(), 30000u);
    EXPECT_GT(30000.0 / core.cycles(), 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SizeSweep,
    ::testing::Combine(::testing::Values(2u, 8u, 32u, 128u),
                       ::testing::Values(16u, 64u, 128u)));

class WidthSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(WidthSweep, FetchWidthScalesSanely)
{
    Program p = microSequentialLoop(60, 32);
    SimConfig cfg = makeConfig(FrontendVariant::Dcf);
    cfg.fetch.width = GetParam();
    Core core(cfg, p);
    core.run(30000);
    const double ipc = 30000.0 / core.cycles();
    // IPC can never exceed the narrower of fetch and issue width.
    EXPECT_LE(ipc, double(std::min(GetParam(),
                                   cfg.backend.issueWidth)) + 0.01);
    EXPECT_GT(ipc, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// ---------------------------------------------------------------------
// Payload-policy ablation sanity.
// ---------------------------------------------------------------------

TEST(PayloadPolicy, AllPoliciesCompleteAndIdealIsFastest)
{
    Program p = microRandomBranchLoop(8, 0.4);
    Cycle cyc[3];
    int i = 0;
    for (PayloadPolicy pol : {PayloadPolicy::FaqFill,
                              PayloadPolicy::RobHead,
                              PayloadPolicy::Ideal}) {
        SimConfig cfg = makeConfig(FrontendVariant::UElf);
        cfg.payloadPolicy = pol;
        Core core(cfg, p);
        core.run(40000);
        cyc[i++] = core.cycles();
    }
    // Ideal (no gating) can not be slower than waiting for the head.
    EXPECT_LE(cyc[2], cyc[1]);
}

// ---------------------------------------------------------------------
// Failure injection: pathologically small structures.
// ---------------------------------------------------------------------

TEST(FailureInjection, TinyCheckpointQueue)
{
    Program p = mixedWorkload();
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    cfg.checkpointEntries = 8; // fetch must stall, not wedge
    Core core(cfg, p);
    core.run(20000);
    EXPECT_GE(core.committed(), 20000u);
}

TEST(FailureInjection, TinyFetchBuffer)
{
    Program p = mixedWorkload();
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    cfg.fetchBufferEntries = 8;
    Core core(cfg, p);
    core.run(20000);
    EXPECT_GE(core.committed(), 20000u);
}

TEST(FailureInjection, TinyCoupledPredictors)
{
    Program p = mixedWorkload();
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    cfg.coupledPreds.bimodal.entries = 16;
    cfg.coupledPreds.btc.entries = 4;
    cfg.coupledPreds.rasEntries = 2;
    Core core(cfg, p);
    core.run(20000);
    EXPECT_GE(core.committed(), 20000u);
}

TEST(FailureInjection, ExtremeMemoryLatencies)
{
    Program p = microMemoryStream(1 << 20, MemKind::Random, 6);
    for (Cycle lat : {Cycle(1), Cycle(1000)}) {
        SimConfig cfg = makeConfig(FrontendVariant::UElf);
        cfg.mem.memLatency = lat;
        Core core(cfg, p);
        core.run(15000);
        EXPECT_GE(core.committed(), 15000u) << "latency " << lat;
    }
}

TEST(FailureInjection, SingleEntryBtbLevels)
{
    Program p = mixedWorkload();
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    cfg.btb.l0.entries = 1;
    cfg.btb.l0.assoc = 0;
    cfg.btb.l1.entries = 4;
    cfg.btb.l1.assoc = 4;
    cfg.btb.l2.entries = 16;
    cfg.btb.l2.assoc = 8;
    Core core(cfg, p);
    core.run(20000);
    EXPECT_GE(core.committed(), 20000u);
}

// ---------------------------------------------------------------------
// Cross-variant MPKI parity (the predictors must behave identically
// regardless of the front-end's timing organization).
// ---------------------------------------------------------------------

TEST(MpkiParity, ElfDoesNotInflateMispredictions)
{
    Program p = mixedWorkload();
    RunOptions o;
    o.warmupInsts = 60000;
    o.measureInsts = 60000;
    const RunResult dcf = runVariant(p, FrontendVariant::Dcf, o);
    const RunResult uelf = runVariant(p, FrontendVariant::UElf, o);
    const RunResult lelf = runVariant(p, FrontendVariant::LElf, o);
    // L-ELF makes no predictions of its own: parity must be tight.
    EXPECT_NEAR(lelf.branchMpki, dcf.branchMpki,
                0.10 * dcf.branchMpki + 0.5);
    // U-ELF's coupled bimodal legitimately adds some mispredictions
    // (the paper's omnetpp +2 MPKI effect); bound the damage.
    EXPECT_NEAR(uelf.branchMpki, dcf.branchMpki,
                0.30 * dcf.branchMpki + 0.5);
}
