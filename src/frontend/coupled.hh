/**
 * @file
 * Coupled fetch engine: the fetcher generates its own PCs, as in a
 * non-decoupled design. Used permanently by the NoDCF configuration
 * and transiently by ELF right after pipeline flushes and misfetch
 * recoveries.
 *
 * Control-flow capability is delegated to a CoupledPolicy:
 *  - NoDCF: the full decoupled predictor bank (TAGE/BTC+ITTAGE/RAS);
 *  - L-ELF: nothing — follows unconditional directs, stalls at any
 *    conditional/indirect decision;
 *  - RET/IND/COND/U-ELF: the small coupled predictors with the
 *    paper's filters (saturated bimodal counter, BTC hit, RAS).
 *
 * A predicted/followed taken branch inserts one bubble (the coupled
 * taken-branch penalty of Section III-B1); policies may add extra
 * bubbles (e.g. the multi-cycle ITTAGE in NoDCF).
 */

#ifndef ELFSIM_FRONTEND_COUPLED_HH
#define ELFSIM_FRONTEND_COUPLED_HH

#include <vector>

#include "bpred/checkpoint.hh"
#include "cache/hierarchy.hh"
#include "frontend/fetch.hh"
#include "frontend/pipeline_types.hh"
#include "frontend/supply.hh"

namespace elfsim {

/** Control-flow capability of the coupled fetcher. */
class CoupledPolicy
{
  public:
    virtual ~CoupledPolicy() = default;

    /**
     * Predict the conditional branch @a di (fill hasPrediction,
     * predTaken, predTarget and optionally tagePred).
     * @return false if the policy cannot speculate past it (stall).
     */
    virtual bool predictCond(DynInst &di) = 0;

    /** Predict a non-return indirect branch; false = stall. */
    virtual bool predictIndirect(DynInst &di) = 0;

    /** Predict a return; false = stall. */
    virtual bool predictReturn(DynInst &di) = 0;

    /** Observe a call fetched (push the policy's RAS, if any). */
    virtual void onCall(Addr ret_addr) = 0;

    /** Observe a followed plain unconditional direct jump. */
    virtual void onUncond(Addr pc) { (void)pc; }

    /** @return true iff this policy pushes the speculative global
     *  history itself (NoDCF); ELF policies leave history to the
     *  catching-up DCF. */
    virtual bool pushesHistory() const { return false; }

    /** Extra bubbles beyond the 1-cycle taken penalty for @a di. */
    virtual unsigned extraBubbles(const DynInst &di) const
    {
        (void)di;
        return 0;
    }
};

/** Coupled-fetch statistics. */
struct CoupledStats
{
    std::uint64_t insts = 0;
    std::uint64_t wrongPathInsts = 0;
    std::uint64_t controlStalls = 0;   ///< stalled-at-decision events
    std::uint64_t stallsCond = 0;      ///< ... at conditionals
    std::uint64_t stallsReturn = 0;    ///< ... at returns
    std::uint64_t stallsIndirect = 0;  ///< ... at other indirects
    std::uint64_t takenBubbleCycles = 0;
    std::uint64_t icacheStallCycles = 0;
};

/** The coupled fetch engine. */
class CoupledFetchEngine
{
  public:
    CoupledFetchEngine(const FetchParams &params, MemHierarchy &mem,
                       InstSupply &supply, CheckpointQueue &ckpts,
                       CoupledPolicy &policy);

    /** Begin coupled fetching at @a pc. */
    void start(Addr pc, Cycle now);

    /** Leave coupled mode (switch to decoupled). */
    void stop() { fetchPC = invalidAddr; stalledControl = false; }

    /** @return true iff the engine is driving fetch. */
    bool active() const { return fetchPC != invalidAddr; }

    /** @return true iff stalled at an unpredictable decision. */
    bool stalledOnControl() const { return stalledControl; }

    /** Next PC the engine will fetch (invalidAddr when stalled). */
    Addr nextPC() const { return fetchPC; }

    /** Unstall after an execute resteer (resume at @a pc). */
    void resumeAt(Addr pc, Cycle now);

    /**
     * Fetch up to width instructions into @a out.
     * @return instructions fetched (0 when stalled/inactive).
     */
    unsigned tick(Cycle now, FetchBundle &out);

    const CoupledStats &stats() const { return st; }

  private:
    FetchParams params;
    MemHierarchy &mem;
    InstSupply &supply;
    CheckpointQueue &ckpts;
    CoupledPolicy &policy;

    Addr fetchPC = invalidAddr;
    bool stalledControl = false;
    Cycle busyUntil = 0;
    CoupledStats st;
};

} // namespace elfsim

#endif // ELFSIM_FRONTEND_COUPLED_HH
