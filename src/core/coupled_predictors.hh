/**
 * @file
 * The ELF coupled predictor bank (paper Section IV-C1): a 2K-entry
 * 3-bit bimodal, a 64-entry branch target cache, and a 32-entry RAS —
 * under 2KB of total storage — plus the CoupledPolicy implementations
 * for each ELF variant and for the NoDCF baseline.
 */

#ifndef ELFSIM_CORE_COUPLED_PREDICTORS_HH
#define ELFSIM_CORE_COUPLED_PREDICTORS_HH

#include "bpred/bimodal.hh"
#include "bpred/btc.hh"
#include "bpred/gshare.hh"
#include "bpred/predictor_bank.hh"
#include "bpred/ras.hh"
#include "core/variant.hh"
#include "frontend/coupled.hh"

namespace elfsim {

/** Which conditional predictor the coupled fetcher uses. */
enum class CoupledCondKind : std::uint8_t {
    Bimodal, ///< the paper's 2K-entry 3-bit bimodal
    Gshare,  ///< extension: commit-history gshare (see bpred/gshare.hh)
};

/** Sizes of the coupled structures (paper Table II). */
struct CoupledPredictorParams
{
    BimodalParams bimodal{2048, 3};
    BtcParams btc{64, 12};
    unsigned rasEntries = 32;
    CoupledCondKind condKind = CoupledCondKind::Bimodal;
    GshareParams gshare{};
};

/** The coupled predictor storage. */
class CoupledPredictors
{
  public:
    explicit CoupledPredictors(const CoupledPredictorParams &params = {});

    Bimodal &bimodal() { return bimodalPred; }
    BranchTargetCache &btc() { return btcPred; }
    ReturnAddressStack &ras() { return rasStack; }

    /** Conditional prediction through whichever predictor is
     *  configured. */
    bool condPredict(Addr pc) const;
    /** Saturation state of the configured conditional predictor. */
    bool condSaturated(Addr pc) const;

    /**
     * Train at commit. Per the paper, the bimodal and BTC are only
     * trained on branches that were fetched in coupled mode; the RAS
     * carries no commit-time state.
     */
    void trainCommit(Addr pc, BranchKind kind, bool taken, Addr target,
                     FetchMode mode);

    /**
     * Restore the coupled RAS after a flush. Functionally the coupled
     * RAS mirrors the decoupled speculative RAS (both track the same
     * call stream), so it is rebuilt from it — the equivalent of the
     * paper's "restore the coupled top-of-stack pointer using the
     * decoupled checkpoint information".
     */
    void syncRasFrom(const ReturnAddressStack &other) { rasStack = other; }

    /** Total storage in bytes (< 2KB; Table II reporting). */
    double storageBytes() const;

    /** Serialize all coupled structures (warm-state checkpoints). */
    void
    saveState(Serializer &s) const
    {
        bimodalPred.saveState(s);
        gsharePred.saveState(s);
        btcPred.saveState(s);
        rasStack.saveState(s);
    }

    void
    loadState(Deserializer &d)
    {
        bimodalPred.loadState(d);
        gsharePred.loadState(d);
        btcPred.loadState(d);
        rasStack.loadState(d);
    }

  private:
    CoupledCondKind condKind;
    Bimodal bimodalPred;
    Gshare gsharePred;
    BranchTargetCache btcPred;
    ReturnAddressStack rasStack;
};

/** Coupled policy for the ELF variants. */
class ElfCoupledPolicy : public CoupledPolicy
{
  public:
    ElfCoupledPolicy(FrontendVariant variant, CoupledPredictors &preds,
                     bool cond_require_saturation = true);

    bool predictCond(DynInst &di) override;
    bool predictIndirect(DynInst &di) override;
    bool predictReturn(DynInst &di) override;
    void onCall(Addr ret_addr) override;

  private:
    FrontendVariant variant;
    CoupledPredictors &preds;
    bool condRequireSaturation;
};

/**
 * Coupled policy for the NoDCF baseline: the full decoupled predictor
 * bank accessed at fetch, with the speculative history advanced here
 * (there is no DCF to do it).
 */
class NoDcfPolicy : public CoupledPolicy
{
  public:
    explicit NoDcfPolicy(PredictorBank &bank) : bank(bank) {}

    bool predictCond(DynInst &di) override;
    bool predictIndirect(DynInst &di) override;
    bool predictReturn(DynInst &di) override;
    void onCall(Addr ret_addr) override;
    void onUncond(Addr pc) override;
    bool pushesHistory() const override { return true; }
    unsigned extraBubbles(const DynInst &di) const override;

  private:
    PredictorBank &bank;
    unsigned lastExtra = 0;
};

} // namespace elfsim

#endif // ELFSIM_CORE_COUPLED_PREDICTORS_HH
