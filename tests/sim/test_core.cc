#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/builders.hh"

using namespace elfsim;

namespace {

RunOptions
quick()
{
    RunOptions o;
    o.warmupInsts = 20000;
    o.measureInsts = 50000;
    return o;
}

} // namespace

class CoreAllVariants
    : public ::testing::TestWithParam<FrontendVariant>
{};

TEST_P(CoreAllVariants, RunsSequentialLoop)
{
    Program p = microSequentialLoop(30, 16);
    const RunResult r = runVariant(p, GetParam(), quick());
    // Commit retires up to commitWidth per cycle, so the measurement
    // window can overshoot the target by a few instructions.
    EXPECT_GE(r.insts, 50000u);
    EXPECT_LT(r.insts, 50016u);
    EXPECT_GT(r.ipc, 0.5) << variantName(GetParam());
    EXPECT_LT(r.ipc, 9.0);
}

TEST_P(CoreAllVariants, RunsTakenChain)
{
    Program p = microTakenChain(16, 6);
    const RunResult r = runVariant(p, GetParam(), quick());
    // Commit retires up to commitWidth per cycle, so the measurement
    // window can overshoot the target by a few instructions.
    EXPECT_GE(r.insts, 50000u);
    EXPECT_LT(r.insts, 50016u);
    EXPECT_GT(r.ipc, 0.3);
}

TEST_P(CoreAllVariants, RunsRandomBranches)
{
    Program p = microRandomBranchLoop(8, 0.4);
    const RunResult r = runVariant(p, GetParam(), quick());
    // Commit retires up to commitWidth per cycle, so the measurement
    // window can overshoot the target by a few instructions.
    EXPECT_GE(r.insts, 50000u);
    EXPECT_LT(r.insts, 50016u);
    EXPECT_GT(r.ipc, 0.1);
    EXPECT_GT(r.branchMpki, 1.0) << "random branches must mispredict";
}

TEST_P(CoreAllVariants, RunsRecursion)
{
    Program p = microRecursion(12, 6);
    const RunResult r = runVariant(p, GetParam(), quick());
    // Commit retires up to commitWidth per cycle, so the measurement
    // window can overshoot the target by a few instructions.
    EXPECT_GE(r.insts, 50000u);
    EXPECT_LT(r.insts, 50016u);
    EXPECT_GT(r.ipc, 0.2);
}

TEST_P(CoreAllVariants, RunsIndirect)
{
    Program p = microIndirect(4, IndirectKind::Phased, 6);
    const RunResult r = runVariant(p, GetParam(), quick());
    // Commit retires up to commitWidth per cycle, so the measurement
    // window can overshoot the target by a few instructions.
    EXPECT_GE(r.insts, 50000u);
    EXPECT_LT(r.insts, 50016u);
    EXPECT_GT(r.ipc, 0.2);
}

TEST_P(CoreAllVariants, RunsMemoryStream)
{
    Program p = microMemoryStream(1 << 20, MemKind::Stride, 8);
    const RunResult r = runVariant(p, GetParam(), quick());
    // Commit retires up to commitWidth per cycle, so the measurement
    // window can overshoot the target by a few instructions.
    EXPECT_GE(r.insts, 50000u);
    EXPECT_LT(r.insts, 50016u);
    EXPECT_GT(r.ipc, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CoreAllVariants,
    ::testing::Values(FrontendVariant::NoDcf, FrontendVariant::Dcf,
                      FrontendVariant::LElf, FrontendVariant::RetElf,
                      FrontendVariant::IndElf, FrontendVariant::CondElf,
                      FrontendVariant::UElf),
    [](const ::testing::TestParamInfo<FrontendVariant> &info) {
        std::string n = variantName(info.param);
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(CoreBehavior, PredictableLoopHasLowMpki)
{
    Program p = microSequentialLoop(30, 16);
    const RunResult r = runVariant(p, FrontendVariant::Dcf, quick());
    EXPECT_LT(r.branchMpki, 2.0);
}

TEST(CoreBehavior, WrongPathInstsAppearWithMispredicts)
{
    Program p = microRandomBranchLoop(8, 0.4);
    const RunResult r = runVariant(p, FrontendVariant::Dcf, quick());
    EXPECT_GT(r.wrongPathInsts, 100u);
}

TEST(CoreBehavior, BtbWarmAfterLoop)
{
    Program p = microTakenChain(8, 6);
    const RunResult r = runVariant(p, FrontendVariant::Dcf, quick());
    EXPECT_GT(r.btbHitL2, 0.9);
}

TEST(CoreBehavior, ElfSpendsMostCyclesDecoupled)
{
    Program p = microSequentialLoop(30, 16);
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    Core core(cfg, p);
    core.run(50000);
    const ElfStats &st = core.elf().stats();
    EXPECT_GT(st.decoupledCycles, st.coupledCycles)
        << "coupled mode is supposed to be transient";
}

TEST(CoreBehavior, ElfCoupledPeriodsTrackFlushes)
{
    Program p = microRandomBranchLoop(8, 0.4);
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    Core core(cfg, p);
    core.run(50000);
    EXPECT_GT(core.elf().stats().coupledPeriods, 10u);
    EXPECT_GT(core.elf().stats().switches, 10u);
}
