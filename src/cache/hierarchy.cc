#include "cache/hierarchy.hh"

namespace elfsim {

MemHierarchy::MemHierarchy(const MemHierarchyParams &params)
{
    mem = std::make_unique<FixedLatencyMemory>("mem", params.memLatency);
    l3Cache = std::make_unique<Cache>(params.l3, mem.get());
    l2Cache = std::make_unique<Cache>(params.l2, l3Cache.get());
    l1iCache = std::make_unique<Cache>(params.l1i, l2Cache.get());
    l1dCache = std::make_unique<Cache>(params.l1d, l2Cache.get());
    l0iCache = std::make_unique<Cache>(params.l0i, l1iCache.get());
    if (params.dataPrefetch)
        dpf = std::make_unique<StridePrefetcher>(params.stridePf,
                                                 *l1dCache);
}

Cycle
MemHierarchy::dataAccess(Addr pc, Addr addr, bool write, Cycle now)
{
    const Cycle lat = l1dCache->access(addr, write, now);
    if (dpf)
        dpf->train(pc, addr, now);
    return lat;
}

void
MemHierarchy::dumpStats(std::ostream &os) const
{
    forEachStatGroup(
        [&os](const stats::StatGroup &g) { g.dump(os); });
}

void
MemHierarchy::forEachStatGroup(
    const std::function<void(const stats::StatGroup &)> &fn) const
{
    fn(l0iCache->statGroup());
    fn(l1iCache->statGroup());
    fn(l1dCache->statGroup());
    fn(l2Cache->statGroup());
    fn(l3Cache->statGroup());
    fn(mem->statGroup());
}

void
MemHierarchy::saveState(Serializer &s) const
{
    l0iCache->saveState(s);
    l1iCache->saveState(s);
    l1dCache->saveState(s);
    l2Cache->saveState(s);
    l3Cache->saveState(s);
    mem->saveState(s);
    s.boolean(dpf != nullptr);
    if (dpf)
        dpf->saveState(s);
}

void
MemHierarchy::loadState(Deserializer &d)
{
    l0iCache->loadState(d);
    l1iCache->loadState(d);
    l1dCache->loadState(d);
    l2Cache->loadState(d);
    l3Cache->loadState(d);
    mem->loadState(d);
    if (d.boolean() != (dpf != nullptr))
        throw ParseError("hierarchy: prefetcher presence mismatch");
    if (dpf)
        dpf->loadState(d);
}

} // namespace elfsim
