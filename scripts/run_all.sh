#!/bin/sh
# Build, test, and regenerate every experiment.
#
#   scripts/run_all.sh          # full experiment windows
#   scripts/run_all.sh --quick  # quarter-size windows (smoke)
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "######## $b"
    "$b" "$@"
done
