/**
 * @file
 * Figure 7 equivalent: IPC of L-ELF and the restricted U-ELF variants
 * (RET/IND/COND-ELF) relative to the DCF baseline.
 */

#include <deque>
#include <vector>

#include "bench_util.hh"

using namespace elfsim;

int
main(int argc, char **argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::banner(
        "Figure 7 — L/RET/IND/COND-ELF IPC relative to DCF",
        "COND-ELF generally wins; RET-ELF shines on recursion "
        "(srv2.subtest_2); COND-ELF can lose on bimodal-hostile "
        "patterns (620.omnetpp)");

    const FrontendVariant variants[] = {
        FrontendVariant::Dcf, FrontendVariant::LElf,
        FrontendVariant::RetElf, FrontendVariant::IndElf,
        FrontendVariant::CondElf};

    const std::vector<std::string> names = elfRelevantWorkloads();
    std::deque<Program> programs;
    std::vector<SweepJob> grid;
    for (const std::string &name : names) {
        programs.push_back(buildWorkload(*findWorkload(name)));
        for (FrontendVariant v : variants)
            grid.push_back(
                makeVariantJob(programs.back(), v, opt.runOptions()));
    }

    SweepRunner runner(opt.jobs);
    bench::applyFaultPolicy(runner, opt);
    const std::vector<RunResult> res = runner.run(grid);

    std::printf("%-18s %8s %8s %8s %8s %8s\n", "workload", "DCF IPC",
                "L-ELF", "RET", "IND", "COND");

    for (std::size_t i = 0; i < names.size(); ++i) {
        const RunResult &dcf = res[5 * i];
        std::printf("%-18s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
                    names[i].c_str(), dcf.ipc,
                    res[5 * i + 1].ipc / dcf.ipc,
                    res[5 * i + 2].ipc / dcf.ipc,
                    res[5 * i + 3].ipc / dcf.ipc,
                    res[5 * i + 4].ipc / dcf.ipc);
        std::fflush(stdout);
    }
    bench::exportResults(opt, runner);
    bench::printSweepTiming(runner);
    return bench::exitCode(runner);
}
