/**
 * @file
 * Shared plumbing for the experiment harnesses: option parsing, table
 * formatting, and machine-readable export. Each bench binary
 * regenerates one table or figure of the paper; rows print as aligned
 * text so paper-vs-measured comparison (EXPERIMENTS.md) is a
 * copy-paste, and `--json` / `--csv` export the same results
 * losslessly for scripts (see sim/export.hh for the schema).
 */

#ifndef ELFSIM_BENCH_BENCH_UTIL_HH
#define ELFSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "sim/export.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "workload/catalog.hh"

namespace elfsim {
namespace bench {

/** Common command-line options. */
struct Options
{
    InstCount warmupInsts = 100000;
    InstCount measureInsts = 200000;
    bool quick = false;
    unsigned jobs = 0; ///< sweep threads; 0 = $ELFSIM_JOBS / hardware
    InstCount intervalInsts = 0; ///< timeline sampling period; 0 = off
    std::string jsonPath;        ///< --json target; empty = off
    std::string csvPath;         ///< --csv target; empty = off

    RunOptions
    runOptions() const
    {
        RunOptions o;
        o.warmupInsts = quick ? warmupInsts / 4 : warmupInsts;
        o.measureInsts = quick ? measureInsts / 4 : measureInsts;
        o.intervalInsts = intervalInsts;
        return o;
    }
};

/** Print --help text for the common options. */
inline void
printUsage(const char *argv0, std::FILE *to)
{
    std::fprintf(
        to,
        "usage: %s [options]\n"
        "  --warmup N      warmup instructions per run (default %llu)\n"
        "  --insts N       measured instructions per run (default "
        "%llu)\n"
        "  --quick         quarter-size windows (smoke run)\n"
        "  --jobs N        sweep threads (default: $ELFSIM_JOBS, then "
        "hardware)\n"
        "  --interval N    capture a timeline sample every N committed "
        "insts (0 = off)\n"
        "  --json PATH     write results + sweep timing as JSON "
        "(elfsim-results-v1)\n"
        "  --csv PATH      write results as CSV (timelines go to "
        "*.timeline.csv)\n"
        "  --help          this text\n",
        argv0, (unsigned long long)Options().warmupInsts,
        (unsigned long long)Options().measureInsts);
}

/**
 * Parse the common options, starting from @a defaults (benches with
 * non-standard windows seed their own). Unknown flags and missing
 * values are hard errors (exit 2); `--help` prints usage and exits 0.
 */
inline Options
parseOptions(int argc, char **argv, Options defaults = {})
{
    Options o = defaults;
    const auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: option '%s' needs a value\n",
                         argv[0], argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--warmup"))
            o.warmupInsts = std::strtoull(value(i), nullptr, 10);
        else if (!std::strcmp(argv[i], "--insts"))
            o.measureInsts = std::strtoull(value(i), nullptr, 10);
        else if (!std::strcmp(argv[i], "--quick"))
            o.quick = true;
        else if (!std::strcmp(argv[i], "--jobs"))
            o.jobs = unsigned(std::strtoul(value(i), nullptr, 10));
        else if (!std::strcmp(argv[i], "--interval"))
            o.intervalInsts = std::strtoull(value(i), nullptr, 10);
        else if (!std::strcmp(argv[i], "--json"))
            o.jsonPath = value(i);
        else if (!std::strcmp(argv[i], "--csv"))
            o.csvPath = value(i);
        else if (!std::strcmp(argv[i], "--help") ||
                 !std::strcmp(argv[i], "-h")) {
            printUsage(argv[0], stdout);
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         argv[i]);
            printUsage(argv[0], stderr);
            std::exit(2);
        }
    }
    return o;
}

/** Write the last sweep wherever --json / --csv asked. */
inline void
exportResults(const Options &o, const SweepRunner &runner)
{
    if (!o.jsonPath.empty()) {
        runner.writeJson(o.jsonPath);
        std::printf("wrote %s\n", o.jsonPath.c_str());
    }
    if (!o.csvPath.empty()) {
        runner.writeCsv(o.csvPath);
        std::printf("wrote %s\n", o.csvPath.c_str());
    }
}

/** For benches with no sweep results: warn if export was requested. */
inline void
warnNoExport(const Options &o, const char *why)
{
    if (!o.jsonPath.empty() || !o.csvPath.empty())
        std::fprintf(stderr,
                     "note: --json/--csv ignored here (%s)\n", why);
}

/** Print the runner's per-sweep timing summary to stdout. */
inline void
printSweepTiming(const SweepRunner &runner)
{
    std::ostringstream os;
    runner.printTimingSummary(os);
    std::printf("\n%s", os.str().c_str());
    std::fflush(stdout);
}

/** Print the experiment banner. */
inline void
banner(const char *experiment, const char *caption)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s\n  %s\n", experiment, caption);
    std::printf("==================================================="
                "=========================\n");
}

} // namespace bench
} // namespace elfsim

#endif // ELFSIM_BENCH_BENCH_UTIL_HH
