/**
 * @file
 * Three-level Branch Target Buffer (paper Table II):
 *   L0: 24-entry fully associative, 0-cycle (output drives next input)
 *   L1: 256-entry 4-way associative, 1 cycle
 *   L2: 4K-entry 8-way associative, 3 cycles
 *
 * Entries are established at retire (BtbBuilder) into L1+L2; hits at
 * an outer level promote the entry into the inner levels.
 */

#ifndef ELFSIM_BTB_BTB_HH
#define ELFSIM_BTB_BTB_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "btb/btb_entry.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace elfsim {

/** Geometry of one BTB level. */
struct BtbLevelParams
{
    std::string name = "btb";
    unsigned entries = 256;
    unsigned assoc = 4;       ///< 0 = fully associative
    Cycle latency = 1;
};

/** One set-associative (or fully associative) BTB level. */
class BtbLevel
{
  public:
    explicit BtbLevel(const BtbLevelParams &params);

    /** @return entry starting exactly at @a pc, or nullptr. */
    const BtbEntry *lookup(Addr pc);

    /** Side-effect-free presence probe. */
    bool present(Addr pc) const;

    /** Insert/overwrite the entry at its startPC. */
    void insert(const BtbEntry &entry);

    /**
     * Overwrite the entry only if this level already holds one at the
     * same startPC (used to keep inner levels coherent on amendment).
     * @return true iff an update happened.
     */
    bool updateIfPresent(const BtbEntry &entry);

    /** Drop all entries. */
    void reset();

    const BtbLevelParams &config() const { return params; }
    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }

    /** Serialize contents, recency state, and hit/miss counters. */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    struct Way
    {
        BtbEntry entry;
        std::uint64_t lastUse = 0;
    };

    unsigned numSets() const { return params.entries / assoc_; }

    /**
     * Set index with XOR-folded upper PC bits. Entry start addresses
     * cluster on 16-instruction strides (MaxInsts splits), so using
     * the low bits directly would leave most sets cold.
     */
    unsigned
    setOf(Addr pc) const
    {
        const std::uint64_t p = pc / instBytes;
        return (p ^ (p >> 9) ^ (p >> 17)) % numSets();
    }

    BtbLevelParams params;
    unsigned assoc_;
    std::vector<Way> ways; // set-major
    std::uint64_t useTick = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

/** Result of a hierarchical BTB probe. */
struct BtbLookupResult
{
    bool hit = false;
    int level = -1;          ///< 0/1/2; -1 on miss
    Cycle latency = 0;       ///< access latency of the hitting level
    BtbEntry entry{};        ///< copy of the hitting entry
};

/** Parameters of the 3-level hierarchy. */
struct MultiBtbParams
{
    BtbLevelParams l0{"btb.l0", 24, 0, 0};
    BtbLevelParams l1{"btb.l1", 256, 4, 1};
    BtbLevelParams l2{"btb.l2", 4096, 8, 3};
};

/** The 3-level BTB. */
class MultiBtb
{
  public:
    explicit MultiBtb(const MultiBtbParams &params = {});

    /**
     * Probe all levels for an entry starting at @a pc; promotes outer
     * hits into inner levels.
     */
    BtbLookupResult lookup(Addr pc);

    /** Establish (insert) an entry into L1 and L2. */
    void insert(const BtbEntry &entry);

    /** Drop all entries at all levels. */
    void reset();

    /** Side-effect-free presence probe (no stats, no promotion). */
    bool present(Addr pc) const;

    /** Total probes. */
    std::uint64_t lookups() const { return lookupCount; }

    /** Probes that hit at exactly level @a l. */
    std::uint64_t
    hitsAtLevel(unsigned l) const
    {
        return levelHitCount[l];
    }

    /** Fraction of probes hitting at level <= @a l (paper metric). */
    double cumulativeHitRate(unsigned l) const;

    BtbLevel &level(unsigned l) { return levels[l]; }
    const MultiBtbParams &config() const { return params; }

    /** Serialize all levels plus the hierarchy's probe counters. */
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);

  private:
    MultiBtbParams params;
    std::vector<BtbLevel> levels;
    std::uint64_t lookupCount = 0;
    std::array<std::uint64_t, 3> levelHitCount{};
};

} // namespace elfsim

#endif // ELFSIM_BTB_BTB_HH
