#!/usr/bin/env bash
# Build, test, and regenerate every experiment.
#
#   scripts/run_all.sh                  # full experiment windows
#   scripts/run_all.sh --quick          # quarter-size windows (smoke)
#   scripts/run_all.sh --jobs 8         # sweep threads per bench
#
# Sweep thread count: --jobs N beats $ELFSIM_JOBS beats nproc.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${ELFSIM_JOBS:-$(nproc 2>/dev/null || echo 1)}"
EXTRA=()
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs)
            JOBS="$2"
            shift 2
            ;;
        *)
            EXTRA+=("$1")
            shift
            ;;
    esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Sweep benches drop a machine-readable artifact per figure here.
RESULTS=build/results
mkdir -p "$RESULTS"

ARTIFACTS=()
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    name="$(basename "$b")"
    echo "######## $b"
    case "$name" in
        bench_micro_components)
            # google-benchmark binary: rejects unknown flags.
            "$b"
            ;;
        bench_fig2_timing|bench_table1_workloads|bench_table2_config)
            # Characterization tables: no RunResults to export.
            "$b" --jobs "$JOBS" ${EXTRA[@]+"${EXTRA[@]}"}
            ;;
        bench_throughput)
            # Simulator-speed gate: separate schema + regression
            # check against the committed baseline. Run single-job so
            # per-run wall clocks are not distorted by oversubscription
            # (scripts/perf_smoke.sh is the quick variant; build the
            # release-native preset for host-tuned numbers).
            "$b" --jobs 1 --json "$RESULTS/$name.json" \
                 ${EXTRA[@]+"${EXTRA[@]}"}
            if [ -f BENCH_throughput.json ]; then
                python3 scripts/check_results.py --throughput \
                    --baseline BENCH_throughput.json \
                    "$RESULTS/$name.json"
            else
                python3 scripts/check_results.py --throughput \
                    "$RESULTS/$name.json"
            fi
            ;;
        *)
            "$b" --jobs "$JOBS" --json "$RESULTS/$name.json" \
                 ${EXTRA[@]+"${EXTRA[@]}"}
            ARTIFACTS+=("$RESULTS/$name.json")
            ;;
    esac
done

if [ ${#ARTIFACTS[@]} -gt 0 ]; then
    echo "######## schema check"
    python3 scripts/check_results.py "${ARTIFACTS[@]}"
fi
