/**
 * @file
 * Machine-readable export of simulation results: RunResult (summary +
 * interval timeline) and sweep grids as JSON documents or flat CSV
 * tables. Field enumeration comes from RunResult::forEachField /
 * IntervalSample::forEachField, so exporters never drift from the
 * structs; doubles serialize with shortest-round-trip precision, so a
 * deterministic sweep exports to byte-identical output regardless of
 * thread count.
 *
 * JSON schema (validated by scripts/check_results.py):
 *
 *   {
 *     "schema": "elfsim-results-v2",
 *     "timing": { ... SweepTiming ... },      // optional
 *     "trace":  { ... TraceStats ... },       // optional
 *     "results": [
 *       { "workload": ..., "variant": ..., <summary scalars>,
 *         "error": "", "attempts": N, "status": "ok",
 *         "interval_insts": N,
 *         "timeline": [ { <IntervalSample fields> }, ... ] },
 *       ...
 *     ]
 *   }
 *
 * v1 -> v2: every result gained "status" (ok / failed / timeout /
 * cancelled), "error" (failure detail, empty when ok) and "attempts"
 * (runs of the bounded retry policy, >= 1) — fault-tolerant sweeps
 * degrade gracefully by marking a bad cell instead of aborting, so
 * the schema must distinguish a zeroed failed cell from real data.
 *
 * The optional "trace" block records the sweep's trace-compilation
 * activity (compiles, cache_hits, cache_misses, bytes_mapped,
 * compile_seconds). Like "timing" it is host-dependent bookkeeping,
 * so the deterministic byte-identity guarantee covers documents
 * written without it (writeResultsJson).
 *
 * The resume manifest (elfsim-manifest-v1) is JSONL: one compact
 * object per completed cell, appended and flushed as cells finish so
 * a killed sweep loses at most the in-flight cells:
 *
 *   {"manifest":"elfsim-manifest-v1","index":N,"key":"...",
 *    "status":"ok","result":{ <writeRunResult object> }}
 */

#ifndef ELFSIM_SIM_EXPORT_HH
#define ELFSIM_SIM_EXPORT_HH

#include <iosfwd>
#include <optional>
#include <ostream>
#include <vector>

#include "common/export.hh"
#include "common/json.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "workload/trace_cache.hh"

namespace elfsim {

/** Serialize one result (summary + status + timeline) as a JSON
 *  object. */
void writeRunResult(JsonWriter &w, const RunResult &r);

/** Rebuild a RunResult from a parsed writeRunResult object; throws
 *  ParseError on missing or ill-typed fields. Round trip is
 *  byte-exact: re-serializing the loaded result reproduces the
 *  original text. */
RunResult runResultFromJson(const json::Value &obj);

/**
 * Serialize a whole result set as the elfsim-results-v2 document.
 * @a timing and @a trace may be null; everything else in the document
 * depends only on the simulated results, so two deterministic sweeps
 * of the same grid serialize byte-identically when both are omitted.
 */
void writeSweepJson(std::ostream &os,
                    const std::vector<RunResult> &results,
                    const SweepTiming *timing = nullptr,
                    const TraceStats *trace = nullptr);

/** Results-only convenience: writeSweepJson without timing. */
void writeResultsJson(std::ostream &os,
                      const std::vector<RunResult> &results);

/**
 * Incremental writer for the results-only elfsim-results-v2 document:
 * the constructor opens the document ("schema" + the "results" array),
 * add() appends one result object, finish() closes the document. The
 * bytes accumulated after finish() are byte-identical to
 * writeResultsJson() of the same results in the same order — the
 * invariant the sweep service's streamed responses rely on
 * (writeResultsJson is implemented on top of this class). Results must
 * be added in submission order; the caller buffers out-of-order
 * completions.
 */
class ResultsStreamWriter
{
  public:
    explicit ResultsStreamWriter(std::ostream &os);

    /** Append the next result object (must not be finished). */
    void add(const RunResult &r);

    /** Close the document; idempotent. */
    void finish();

    bool finished() const { return done; }

  private:
    JsonWriter w;
    bool done = false;
};

/** Flat CSV: header from forEachField, one row per result. */
void writeResultsCsv(std::ostream &os,
                     const std::vector<RunResult> &results);

/** Timeline CSV: one row per (result, interval sample). */
void writeTimelineCsv(std::ostream &os,
                      const std::vector<RunResult> &results);

/**
 * Serialize a simulator-throughput measurement as an
 * elfsim-throughput-v1 document (validated by
 * scripts/check_results.py --throughput):
 *
 *   {
 *     "schema": "elfsim-throughput-v1",
 *     "timing": { ... SweepTiming ...,
 *                 "host_cpus": C, "host_jobs": J },
 *     "geomean_mips": G,
 *     "throughput": [
 *       { "workload": ..., "variant": ..., "wall_seconds": ...,
 *         "sim_insts": ..., "sim_cycles": ..., "mips": ...,
 *         "cycles_per_host_us": ... }, ...
 *     ]
 *   }
 *
 * Rows from sampled runs (RunResult::sampled) report *effective*
 * throughput: sim_insts is the whole stream covered (fast-forward +
 * detailed windows), sim_cycles the extrapolated total, so mips is
 * effective simulated MIPS — the figure the sampled perf gate reads.
 *
 * The timing block additionally records the host (CPU count and the
 * thread count the run effectively used) — MIPS figures are only
 * comparable with the machine attached. The results-v2 timing block
 * deliberately omits these: its bytes must not depend on the host.
 *
 * @a job_seconds must parallel @a results (SweepRunner::perJobSeconds).
 */
void writeThroughputJson(std::ostream &os,
                         const std::vector<RunResult> &results,
                         const std::vector<double> &job_seconds,
                         const SweepTiming &timing);

// --- crash-safe resume manifest (JSONL) ------------------------------

/** One journaled sweep cell. */
struct ManifestEntry
{
    std::size_t index = 0; ///< submission index in the sweep grid
    std::string key;       ///< job identity (SweepRunner::jobKey)
    RunResult result;
};

/** Append one completed cell as a single compact JSONL line; the
 *  caller flushes (crash safety is per-line). */
void writeManifestLine(std::ostream &os, const ManifestEntry &e);

/**
 * Read every well-formed manifest line from @a is. Malformed or
 * truncated lines (a crash mid-append) are skipped with a warning —
 * their cells simply re-run. When one index appears on several lines
 * (a resumed sweep appends), the last occurrence wins.
 */
std::vector<ManifestEntry> readManifest(std::istream &is);

} // namespace elfsim

#endif // ELFSIM_SIM_EXPORT_HH
