/**
 * @file
 * Saturating up/down counter, the workhorse of branch predictors.
 */

#ifndef ELFSIM_COMMON_SAT_COUNTER_HH
#define ELFSIM_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace elfsim {

/**
 * An n-bit saturating counter. The counter saturates at 0 and
 * (2^bits - 1). For direction prediction the MSB is the taken bit.
 *
 * Stored as two 16-bit halves (4 bytes total) so the large predictor
 * tables that embed one counter per entry stay cache-dense, and
 * updated branchlessly: the saturation clamp compiles to a compare
 * and an add, with no data-dependent branch for the predictor's
 * essentially random taken/not-taken stream to mispredict on.
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param bits Counter width in bits (1..16).
     * @param initial Initial counter value.
     */
    explicit SatCounter(unsigned bits, unsigned initial = 0)
        : maxVal(std::uint16_t((1u << bits) - 1)),
          value(std::uint16_t(initial))
    {
        ELFSIM_ASSERT(bits >= 1 && bits <= 16, "bad counter width");
        ELFSIM_ASSERT(initial <= maxVal, "initial value out of range");
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        value += std::uint16_t(value < maxVal);
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        value -= std::uint16_t(value > 0);
    }

    /** Move the counter towards taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        const std::uint16_t up = std::uint16_t(taken && value < maxVal);
        const std::uint16_t dn = std::uint16_t(!taken && value > 0);
        value = std::uint16_t(value + up - dn);
    }

    /** @return true iff the MSB is set (predict taken). */
    bool isTaken() const { return value > maxVal / 2; }

    /** @return true iff the counter is at either saturation point. */
    bool isSaturated() const { return value == 0 || value == maxVal; }

    /** @return true iff the counter is weakly confident (mid values). */
    bool
    isWeak() const
    {
        return value == maxVal / 2 || value == maxVal / 2 + 1;
    }

    /** Raw counter value. */
    unsigned raw() const { return value; }

    /** Directly set the raw value (clamped to range). */
    void
    set(unsigned v)
    {
        value = v > maxVal ? maxVal : std::uint16_t(v);
    }

    /** Reset to the weakly-not-taken midpoint. */
    void resetWeak() { value = maxVal / 2; }

    /** Maximum representable value. */
    unsigned max() const { return maxVal; }

  private:
    std::uint16_t maxVal = 3;
    std::uint16_t value = 0;
};

} // namespace elfsim

#endif // ELFSIM_COMMON_SAT_COUNTER_HH
