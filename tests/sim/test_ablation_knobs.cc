#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "workload/builders.hh"

using namespace elfsim;

namespace {

Program
branchy()
{
    CfgParams p;
    p.numFuncs = 10;
    p.randomTakenProb = 0.35;
    p.dataFootprint = 64 << 10;
    return generateCfg(p, 0x51, "knob_branchy");
}

} // namespace

TEST(AblationKnobs, RobHeadPolicyHoldsFlushes)
{
    Program p = branchy();
    SimConfig cfg = makeConfig(FrontendVariant::UElf);
    cfg.payloadPolicy = PayloadPolicy::RobHead;
    Core core(cfg, p);
    core.run(40000);
    EXPECT_GE(core.committed(), 40000u);
    // With payloads never filling early, coupled-branch flushes must
    // actually wait (the paper's IV-D1 "wait for ROB head" baseline).
    EXPECT_GT(core.stats().pendingFlushWaits, 0u);
}

TEST(AblationKnobs, FaqFillBeatsRobHead)
{
    Program p = branchy();
    Cycle cycFill, cycHead;
    {
        SimConfig cfg = makeConfig(FrontendVariant::UElf);
        Core core(cfg, p);
        core.run(60000);
        cycFill = core.cycles();
    }
    {
        SimConfig cfg = makeConfig(FrontendVariant::UElf);
        cfg.payloadPolicy = PayloadPolicy::RobHead;
        Core core(cfg, p);
        core.run(60000);
        cycHead = core.cycles();
    }
    // The paper's point: populating payloads from FAQ information
    // avoids the ROB-head wait.
    EXPECT_LE(cycFill, cycHead);
}

TEST(AblationKnobs, NoSaturationFilterSpeculatesMore)
{
    Program p = branchy();
    std::uint64_t withFilter, without;
    {
        SimConfig cfg = makeConfig(FrontendVariant::CondElf);
        Core core(cfg, p);
        core.run(50000);
        withFilter = core.elf().stats().coupledInsts;
    }
    {
        SimConfig cfg = makeConfig(FrontendVariant::CondElf);
        cfg.condElfRequireSaturation = false;
        Core core(cfg, p);
        core.run(50000);
        without = core.elf().stats().coupledInsts;
    }
    EXPECT_GT(without, withFilter)
        << "dropping the filter must lengthen coupled runs";
}
